open Hyder_tree
module Intention = Hyder_codec.Intention

type t = { last_writer : (Key.t, int) Hashtbl.t; mutable seq : int }

let create () = { last_writer = Hashtbl.create 1024; seq = 0 }
let next_seq t = t.seq

let written_after t snap k =
  match Hashtbl.find_opt t.last_writer k with
  | None -> false (* genesis data: written at seq -1 <= any snapshot *)
  | Some w -> w > snap

let decide t ~snapshot_seq ~isolation ~reads ~writes =
  let seq = t.seq in
  t.seq <- seq + 1;
  let validated =
    match isolation with
    | Intention.Serializable -> List.rev_append reads writes
    | Intention.Snapshot_isolation | Intention.Read_committed -> writes
  in
  let conflict = List.exists (written_after t snapshot_seq) validated in
  if not conflict then
    List.iter (fun k -> Hashtbl.replace t.last_writer k seq) writes;
  not conflict
