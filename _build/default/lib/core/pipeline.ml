open Hyder_tree
module Intention = Hyder_codec.Intention
module Codec = Hyder_codec.Codec
module Summary = Hyder_util.Stats.Summary

type config = {
  premeld : Premeld.config option;
  group_size : int;
}

let plain = { premeld = None; group_size = 1 }
let with_premeld = { premeld = Some Premeld.default_config; group_size = 1 }
let with_group_meld = { premeld = None; group_size = 2 }

let with_both =
  { premeld = Some Premeld.default_config; group_size = 2 }

type decided_at = At_premeld | At_group_meld | At_final_meld

type decision = {
  seq : int;
  pos : int;
  server : int;
  txn_seq : int;
  committed : bool;
  reason : Meld.abort_reason option;
  decided_at : decided_at;
}

type t = {
  config : config;
  counters : Counters.t;
  states : State_store.t;
  cache : Intention_cache.t;
  fm_alloc : Vn.Alloc.t;
  pm_allocs : Vn.Alloc.t array;
  gm_alloc : Vn.Alloc.t;
  mutable next_seq : int;
  mutable pending : Group_meld.group option;  (** group being assembled *)
  mutable pending_members : int;
}

let create ?(config = plain) ~genesis () =
  if config.group_size < 1 then invalid_arg "Pipeline.create: group_size";
  (match config.premeld with
  | Some { Premeld.threads; distance } when threads < 1 || distance < 1 ->
      invalid_arg "Pipeline.create: premeld config"
  | _ -> ());
  let pm_threads =
    match config.premeld with Some c -> c.Premeld.threads | None -> 0
  in
  {
    config;
    counters = Counters.create ();
    states = State_store.create ~genesis ();
    cache = Intention_cache.create ();
    fm_alloc = Vn.Alloc.create ~thread:0;
    pm_allocs =
      Array.init pm_threads (fun i -> Vn.Alloc.create ~thread:(i + 1));
    gm_alloc = Vn.Alloc.create ~thread:(pm_threads + 1);
    next_seq = 0;
    pending = None;
    pending_members = 0;
  }

let states t = t.states
let counters t = t.counters
let config t = t.config
let lcs t = State_store.latest t.states

let now () = Unix.gettimeofday ()

let timed (stage : Counters.stage) f =
  let t0 = now () in
  let r = f () in
  stage.seconds <- stage.seconds +. (now () -. t0);
  r

let decode t ~pos bytes =
  let ds = t.counters.deserialize in
  timed ds (fun () ->
      ds.intentions <- ds.intentions + 1;
      (* References resolve O(1) through the intention cache when they name
         a recently logged node, and fall back to a key lookup in the
         retained snapshot otherwise (genesis data, ephemeral nodes, or
         intentions beyond the cache horizon). *)
      let fallback = State_store.resolver t.states in
      let resolve ~snapshot ~key ~vn =
        match vn with
        | Vn.Logged { pos = p; idx } -> (
            match Intention_cache.find t.cache ~pos:p ~idx with
            | Some (Node.Node n as tree) when Key.equal n.Node.key key -> tree
            | Some _ | None -> fallback ~snapshot ~key ~vn)
        | Vn.Ephemeral _ -> fallback ~snapshot ~key ~vn
      in
      let i, nodes = Codec.decode_indexed ~pos ~resolve bytes in
      Intention_cache.add t.cache ~pos nodes;
      ds.nodes_visited <- ds.nodes_visited + i.Intention.node_count;
      Summary.add t.counters.intention_bytes (float_of_int i.Intention.byte_size);
      i)

(* Run final meld on a completed group and emit its decisions. *)
let final_meld t (group : Group_meld.group) =
  let fm = t.counters.final_meld in
  let lcs_seq, _lcs_pos, lcs_tree = State_store.latest t.states in
  let alive = List.length group.members in
  let nodes_before = fm.nodes_visited in
  let result =
    if alive = 0 then Meld.Merged lcs_tree
    else
      timed fm (fun () ->
          fm.intentions <- fm.intentions + alive;
          Meld.meld ~mode:Meld.Final ~members:group.member_positions
            ~alloc:t.fm_alloc ~counters:fm ~intention:group.root
            ~state:lcs_tree ())
  in
  let new_state, fate =
    match result with
    | Meld.Merged s -> (s, None)
    | Meld.Conflict reason -> (lcs_tree, Some reason)
  in

  if alive > 0 then begin
    let nodes = fm.nodes_visited - nodes_before in
    let per_member = float_of_int nodes /. float_of_int alive in
    List.iter
      (fun (m : Group_meld.member) ->
        Summary.add t.counters.fm_nodes_per_txn per_member;
        let effective_snap =
          match m.premeld_input with
          | Some s -> s
          | None -> State_store.seq_of_pos t.states m.intention.snapshot
        in
        Summary.add t.counters.conflict_zone
          (float_of_int (max 0 (lcs_seq - effective_snap))))
      group.members
  end;
  (* Decisions for every member, in sequence order; states recorded at each
     member's position so later snapshot references resolve. *)
  let decided =
    List.map
      (fun (m : Group_meld.member) ->
        match fate with
        | None -> (m, true, None, At_final_meld)
        | Some reason -> (m, false, Some reason, At_final_meld))
      group.members
    @ List.map
        (fun ((m : Group_meld.member), reason, stage) ->
          let decided_at =
            match stage with `Premeld -> At_premeld | `Group -> At_group_meld
          in
          (m, false, Some reason, decided_at))
        group.early_aborts
  in
  let decided =
    List.sort
      (fun ((a : Group_meld.member), _, _, _) (b, _, _, _) ->
        Int.compare a.seq b.seq)
      decided
  in
  List.map
    (fun ((m : Group_meld.member), committed, reason, decided_at) ->
      State_store.record t.states ~seq:m.seq ~pos:m.intention.pos new_state;
      if committed then t.counters.committed <- t.counters.committed + 1
      else t.counters.aborted <- t.counters.aborted + 1;
      {
        seq = m.seq;
        pos = m.intention.pos;
        server = m.intention.server;
        txn_seq = m.intention.txn_seq;
        committed;
        reason;
        decided_at;
      })
    decided

let submit t (intention : Intention.t) =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  (* Premeld stage. *)
  let unit_group =
    match t.config.premeld with
    | None -> Group_meld.single ~seq intention
    | Some pc -> (
        match
          timed t.counters.premeld (fun () ->
              Premeld.run pc ~allocs:t.pm_allocs ~counters:t.counters.premeld
                ~states:t.states ~seq intention)
        with
        | Premeld.Unchanged i -> Group_meld.single ~seq i
        | Premeld.Premelded (i, m) ->
            Group_meld.single ~premeld_input:m ~seq i
        | Premeld.Dead reason -> Group_meld.dead ~seq intention reason)
  in
  (* Group meld stage. *)
  if t.config.group_size <= 1 then final_meld t unit_group
  else begin
    let merged =
      match t.pending with
      | None -> unit_group
      | Some g ->
          timed t.counters.group_meld (fun () ->
              Group_meld.combine ~alloc:t.gm_alloc
                ~counters:t.counters.group_meld g unit_group)
    in
    t.pending_members <- t.pending_members + 1;
    if t.pending_members >= t.config.group_size then begin
      t.pending <- None;
      t.pending_members <- 0;
      final_meld t merged
    end
    else begin
      t.pending <- Some merged;
      []
    end
  end

let flush t =
  match t.pending with
  | None -> []
  | Some g ->
      t.pending <- None;
      t.pending_members <- 0;
      final_meld t g

let prune t ~keep =
  let floor_for_premeld =
    match t.config.premeld with
    | None -> 2
    | Some { Premeld.threads; distance } -> (threads * distance) + 2
  in
  State_store.prune t.states ~keep:(max keep floor_for_premeld)
