open Hyder_tree

(** The meld pipeline (Figure 2): deserialize → premeld → group meld →
    final meld.

    This is the {e deterministic semantic machine}: it processes intentions
    strictly in log order and produces, for every intention, the same
    commit/abort decision and the same (physically identical) sequence of
    database states on every server, whatever the physical thread
    interleaving would be.  Physical parallelism is modeled by the cluster
    simulator using the per-stage wall-clock timings this machine measures;
    the paper's determinism scheme (Section 3.4) exists precisely so that
    the stage interleaving cannot affect the results.

    Stage thread ids for ephemeral VNs: final meld = 0, premeld threads =
    1..t, group meld = t+1. *)

type config = {
  premeld : Premeld.config option;  (** [None] = premeld off *)
  group_size : int;  (** 1 = group meld off; the paper uses 2 *)
}

val plain : config
(** No optimizations: the original meld of [8]. *)

val with_premeld : config
val with_group_meld : config
val with_both : config

type decided_at = At_premeld | At_group_meld | At_final_meld

type decision = {
  seq : int;  (** dense intention sequence number *)
  pos : int;  (** log position *)
  server : int;
  txn_seq : int;
  committed : bool;
  reason : Meld.abort_reason option;
  decided_at : decided_at;
}

type t

val create : ?config:config -> genesis:Tree.t -> unit -> t

val decode : t -> pos:int -> string -> Hyder_codec.Intention.t
(** The ds stage: deserialize an encoded intention, resolving references
    against retained states.  Timed into the ds counters. *)

val submit : t -> Hyder_codec.Intention.t -> decision list
(** Feed the next intention in log order.  Returns the decisions that
    became final (possibly none while a group is filling, possibly several
    when a group completes), in sequence order. *)

val flush : t -> decision list
(** Force a partially filled group through final meld (stream end). *)

val lcs : t -> int * int * Tree.t
(** [(seq, pos, tree)] of the last committed state. *)

val states : t -> State_store.t
val counters : t -> Counters.t
val config : t -> config

val prune : t -> keep:int -> unit
(** Drop old retained states, but never below what premeld arithmetic
    needs. *)
