open Hyder_tree

(** Single-process Hyder: one executor, an in-memory log, and the meld
    pipeline, all in one address space — the setup of the original meld
    paper [8], and the harness tests and single-node benchmarks drive.

    With [use_codec:true] every transaction takes the full path —
    serialize → split into blocks → append to an in-memory log →
    reassemble → deserialize — before melding, so intention byte sizes and
    codec behaviour are exercised and recorded.  With [use_codec:false]
    (default) the draft is assigned its log identity directly, which is
    semantically identical (see {!Hyder_codec.Intention.assign}) and much
    faster for algorithmic experiments. *)

type t

val create :
  ?config:Pipeline.config ->
  ?use_codec:bool ->
  ?block_size:int ->
  genesis:Tree.t ->
  unit ->
  t

val txn :
  t ->
  ?isolation:Hyder_codec.Intention.isolation ->
  (Executor.t -> 'a) ->
  'a * Pipeline.decision list
(** Run one transaction against the current LCS and feed its intention (if
    any) through the pipeline.  Returns the transaction body's result and
    any decisions that became final (group meld may defer them).  Read-only
    transactions return no decisions: they are never logged or melded. *)

val submit_draft : t -> Hyder_codec.Intention.draft -> Pipeline.decision list
(** Lower-level entry: append and meld an explicit draft. *)

val flush : t -> Pipeline.decision list
(** Flush a pending partial group. *)

val lcs : t -> int * int * Tree.t
val pipeline : t -> Pipeline.t
val counters : t -> Counters.t
val log : t -> Hyder_log.Mem_log.t
(** The backing in-memory log ([use_codec:true] only appends blocks to
    it). *)
