open Hyder_tree

(** Reference OCC validator.

    Recomputes commit/abort decisions from readsets and writesets alone,
    with a per-key last-committed-writer table — the textbook backward
    validation that meld implements structurally.  Tests replay the same
    transaction stream through meld and through this oracle and require
    identical decisions (for point operations on existing keys; range scans
    and absent-key reads are deliberately conservative in meld and are
    tested separately). *)

type t

val create : unit -> t

val decide :
  t ->
  snapshot_seq:int ->
  isolation:Hyder_codec.Intention.isolation ->
  reads:Key.t list ->
  writes:Key.t list ->
  bool
(** Decide the next transaction in log order (the call sequence defines the
    order).  Under serializable isolation both reads and writes are
    validated against writers later than [snapshot_seq]; under snapshot
    isolation and read committed, writes only.  A committing transaction's
    writes are recorded at its own sequence number. *)

val next_seq : t -> int
(** Sequence number the next [decide] call will validate as. *)
