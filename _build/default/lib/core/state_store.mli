open Hyder_tree

(** Retained database states.

    Each server must keep recent committed states: premeld needs the state
    the index arithmetic of Algorithm 1 designates, the deserializer needs
    to resolve intention references against the originating transaction's
    snapshot, and executors need stable snapshots.  States are cheap to
    retain — consecutive states share all but O(log n) nodes.

    Two numberings coexist: the {e sequence number} (dense: the i-th
    intention melded, genesis = -1) and the {e log position} (sparse: the
    last-block position of that intention).  Premeld arithmetic uses
    sequence numbers; intention metadata uses log positions. *)

type t

val create : genesis:Tree.t -> unit -> t

val latest : t -> int * int * Tree.t
(** [(seq, pos, state)] of the current last committed state. *)

val record : t -> seq:int -> pos:int -> Tree.t -> unit
(** Record the state after melding intention [seq] at log position [pos]
    (for an aborted intention, the unchanged previous state).  [seq] must be
    consecutive and [pos] increasing. *)

val by_seq : t -> int -> Tree.t option
(** State after intention [seq]; [-1] is genesis.  [None] if pruned or not
    yet produced. *)

val by_pos : t -> int -> Tree.t option
(** State as of log position [pos]: the newest recorded state whose
    position is [<= pos].  [-1] is genesis. *)

val seq_of_pos : t -> int -> int
(** Sequence number of the newest intention with log position [<= pos]. *)

val resolver : t -> Hyder_codec.Codec.resolver
(** Resolver for the deserializer: looks the key up in the state at the
    intention's snapshot position. *)

val prune : t -> keep:int -> unit
(** Drop states older than the newest [keep] (genesis is always kept as the
    oldest retained state's stand-in). *)

val retained : t -> int
