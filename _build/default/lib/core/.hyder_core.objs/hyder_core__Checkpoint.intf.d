lib/core/checkpoint.mli: Hyder_tree Tree
