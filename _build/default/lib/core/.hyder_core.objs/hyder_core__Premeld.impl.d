lib/core/premeld.ml: Array Counters Hyder_codec Meld Printf State_store
