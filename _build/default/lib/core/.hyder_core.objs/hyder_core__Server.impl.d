lib/core/server.ml: Executor Hyder_codec List Meld Option Pipeline
