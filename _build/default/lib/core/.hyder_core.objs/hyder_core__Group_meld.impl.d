lib/core/group_meld.ml: Counters Hyder_codec Hyder_tree List Meld Node
