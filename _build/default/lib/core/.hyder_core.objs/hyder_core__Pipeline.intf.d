lib/core/pipeline.mli: Counters Hyder_codec Hyder_tree Meld Premeld State_store Tree
