lib/core/pipeline.ml: Array Counters Group_meld Hyder_codec Hyder_tree Hyder_util Int Intention_cache Key List Meld Node Premeld State_store Unix Vn
