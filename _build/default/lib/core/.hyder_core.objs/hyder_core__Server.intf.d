lib/core/server.mli: Counters Executor Hyder_codec Hyder_tree Meld Pipeline Tree
