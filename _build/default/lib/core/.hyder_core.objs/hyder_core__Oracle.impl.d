lib/core/oracle.ml: Hashtbl Hyder_codec Hyder_tree Key List
