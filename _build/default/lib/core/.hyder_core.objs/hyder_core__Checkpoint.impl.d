lib/core/checkpoint.ml: Array Hyder_tree Key List Node Payload Tree Vn
