lib/core/intention_cache.ml: Array Hashtbl Hyder_tree Node Queue Weak
