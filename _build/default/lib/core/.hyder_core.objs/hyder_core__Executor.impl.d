lib/core/executor.ml: Hyder_codec Hyder_tree Key Node Payload Printf Tree
