lib/core/counters.mli: Hyder_util
