lib/core/group_meld.mli: Counters Hyder_codec Hyder_tree Meld Node Vn
