lib/core/state_store.ml: Array Hyder_tree Node Printf Tree
