lib/core/meld.mli: Counters Hyder_tree Key Node Vn
