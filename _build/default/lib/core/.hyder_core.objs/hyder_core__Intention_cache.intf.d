lib/core/intention_cache.mli: Hyder_tree Node
