lib/core/oracle.mli: Hyder_codec Hyder_tree Key
