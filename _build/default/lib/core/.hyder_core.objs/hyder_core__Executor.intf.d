lib/core/executor.mli: Hyder_codec Hyder_tree Key Payload Tree
