lib/core/meld.ml: Counters Hyder_tree Key List Node Printf Vn
