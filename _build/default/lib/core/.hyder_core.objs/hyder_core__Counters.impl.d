lib/core/counters.ml: Hyder_util
