lib/core/local.mli: Counters Executor Hyder_codec Hyder_log Hyder_tree Pipeline Tree
