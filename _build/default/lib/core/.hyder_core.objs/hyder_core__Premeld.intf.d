lib/core/premeld.mli: Counters Hyder_codec Hyder_tree Meld State_store
