lib/core/state_store.mli: Hyder_codec Hyder_tree Tree
