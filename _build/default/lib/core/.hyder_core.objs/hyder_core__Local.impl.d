lib/core/local.ml: Executor Hyder_codec Hyder_log List Pipeline
