module Intention = Hyder_codec.Intention

type config = { threads : int; distance : int }

let default_config = { threads = 5; distance = 10 }

let thread_for config ~seq =
  if config.threads <= 0 then invalid_arg "Premeld.thread_for";
  1 + (seq mod config.threads)

let input_seq config ~seq = seq - (config.threads * config.distance) - 1

type outcome =
  | Unchanged of Intention.t
  | Premelded of Intention.t * int
  | Dead of Meld.abort_reason

let run config ~allocs ~counters ~states ~seq (intention : Intention.t) =
  let m = input_seq config ~seq in
  let snap_seq = State_store.seq_of_pos states intention.snapshot in
  if m <= snap_seq then Unchanged intention
  else begin
    let state =
      match State_store.by_seq states m with
      | Some s -> s
      | None ->
          failwith
            (Printf.sprintf "Premeld.run: state %d not retained (seq %d)" m
               seq)
    in
    let thread = thread_for config ~seq in
    let alloc = allocs.(thread - 1) in
    counters.Counters.intentions <- counters.Counters.intentions + 1;
    match
      Meld.meld
        ~mode:(Meld.Transaction { out_owner = intention.pos })
        ~members:[ intention.pos ] ~alloc ~counters ~intention:intention.root
        ~state ()
    with
    | Meld.Merged root -> Premelded ({ intention with root }, m)
    | Meld.Conflict reason -> Dead reason
  end
