open Hyder_tree

(** Checkpointing and tombstone compaction.

    Deletes leave tombstone nodes in the tree (DESIGN.md §2).  A checkpoint
    rewrites a database state as a fresh canonical tree without them —
    the moral equivalent of writing the state as one big intention at a
    checkpoint log position, which is how a production Hyder would truncate
    its log.  The output is a valid genesis-style state: every server
    loading the same checkpoint at the same position obtains a physically
    identical tree. *)

type stats = {
  live_nodes : int;
  tombstones_dropped : int;
}

val compact : pos:int -> Tree.t -> Tree.t * stats
(** [compact ~pos state] rebuilds [state] without tombstones.  Nodes get
    VNs [Logged (pos, idx)] in key order and keep their content versions,
    so later conflict checks against pre-checkpoint readers still work:
    a key's [cv] is preserved verbatim. *)
