module Intention = Hyder_codec.Intention
module Codec = Hyder_codec.Codec
module Mem_log = Hyder_log.Mem_log

type t = {
  pipeline : Pipeline.t;
  use_codec : bool;
  log : Mem_log.t;
  reassembler : Codec.Blocks.Reassembler.t;
  mutable next_txn_seq : int;
  mutable fake_pos : int;  (** position source when bypassing the codec *)
}

let create ?(config = Pipeline.plain) ?(use_codec = false)
    ?(block_size = 8192) ~genesis () =
  {
    pipeline = Pipeline.create ~config ~genesis ();
    use_codec;
    log = Mem_log.create ~block_size ();
    reassembler = Codec.Blocks.Reassembler.create ();
    next_txn_seq = 0;
    fake_pos = 0;
  }

let lcs t = Pipeline.lcs t.pipeline
let pipeline t = t.pipeline
let counters t = Pipeline.counters t.pipeline
let log t = t.log

let submit_draft t (draft : Intention.draft) =
  if t.use_codec then begin
    let bytes = Codec.encode draft in
    let blocks =
      Codec.Blocks.split ~block_size:(Mem_log.block_size t.log)
        ~server:draft.server ~txn_seq:draft.txn_seq bytes
    in
    let completed = ref None in
    List.iter
      (fun block ->
        let pos = Mem_log.append t.log block in
        match Codec.Blocks.Reassembler.feed t.reassembler ~pos block with
        | Some done_ -> completed := Some done_
        | None -> ())
      blocks;
    match !completed with
    | None -> failwith "Local.submit_draft: intention never completed"
    | Some (pos, bytes) ->
        let intention = Pipeline.decode t.pipeline ~pos bytes in
        Pipeline.submit t.pipeline intention
  end
  else begin
    (* Bypass the codec: hand out synthetic, strictly increasing log
       positions (two per intention, imitating the paper's ~2 blocks). *)
    t.fake_pos <- t.fake_pos + 2;
    let intention = Intention.assign ~pos:t.fake_pos draft in
    Pipeline.submit t.pipeline intention
  end

let txn t ?(isolation = Intention.Serializable) body =
  let _seq, pos, tree = Pipeline.lcs t.pipeline in
  let txn_seq = t.next_txn_seq in
  t.next_txn_seq <- txn_seq + 1;
  let current () =
    let _, _, t = Pipeline.lcs t.pipeline in
    t
  in
  let e =
    Executor.begin_txn ~current ~snapshot_pos:pos ~snapshot:tree ~server:0
      ~txn_seq ~isolation ()
  in
  let result = body e in
  match Executor.finish e with
  | None -> (result, [])
  | Some draft -> (result, submit_draft t draft)

let flush t = Pipeline.flush t.pipeline
