(** Premeld (Section 3, Algorithm 1).

    A trial meld of an intention against a committed state {e earlier} than
    its final input LCS.  If it finds a conflict the intention is dead and
    final meld skips it; otherwise its output — re-interpreted as an
    intention with refreshed metadata — substitutes for the original, and
    final meld only revalidates the short post-premeld conflict zone.

    Determinism (Section 3.4): with [threads = t] and [distance = d],
    intention number [v] is premelded by thread [v mod t] against the state
    produced by intention [v - t*d - 1].  Every server runs the same
    arithmetic, so every server premelds every intention against the same
    state with the same ephemeral-id stream. *)

type config = { threads : int; distance : int }

val default_config : config
(** 5 threads, distance 10 — the best setting found in Section 6.4.6. *)

val thread_for : config -> seq:int -> int
(** Pipeline thread id (1-based; 0 is final meld's). *)

val input_seq : config -> seq:int -> int
(** Sequence number of the state to premeld intention [seq] against. *)

type outcome =
  | Unchanged of Hyder_codec.Intention.t
      (** the designated state precedes the snapshot: nothing to do *)
  | Premelded of Hyder_codec.Intention.t * int
      (** substitute intention and the input state's sequence number *)
  | Dead of Meld.abort_reason  (** conflict found early *)

val run :
  config ->
  allocs:Hyder_tree.Vn.Alloc.t array ->
  counters:Counters.stage ->
  states:State_store.t ->
  seq:int ->
  Hyder_codec.Intention.t ->
  outcome
(** [allocs.(i)] is the ephemeral allocator of premeld thread [i+1]; the
    state store must already hold the designated input state (final meld is
    always ahead of it). *)
