(** Work counters for the meld pipeline.

    Figures 11, 13, 17, 19, 22 and 24 of the paper report exactly these
    quantities, so every stage keeps its own {!stage} record and the
    benchmark harness reads them after a run. *)

type stage = {
  mutable intentions : int;  (** intentions processed by this stage *)
  mutable nodes_visited : int;  (** tree nodes inspected by the meld operator *)
  mutable ephemerals : int;  (** ephemeral nodes created *)
  mutable grafts : int;  (** subtree grafts (early terminations) *)
  mutable aborts : int;  (** conflicts detected at this stage *)
  mutable seconds : float;  (** accumulated wall-clock time in the stage *)
}

val make_stage : unit -> stage
val reset_stage : stage -> unit
val add_stage : into:stage -> stage -> unit

type t = {
  deserialize : stage;
  premeld : stage;
  group_meld : stage;
  final_meld : stage;
  mutable committed : int;
  mutable aborted : int;
  conflict_zone : Hyder_util.Stats.Summary.t;
      (** intentions between (effective) snapshot and the LCS at final meld —
          the conflict zone length final meld observes (Figure 12) *)
  fm_nodes_per_txn : Hyder_util.Stats.Summary.t;
      (** nodes visited by final meld per intention (Figure 11) *)
  intention_bytes : Hyder_util.Stats.Summary.t;
      (** encoded intention sizes, when known (drives blocks-per-intention
          accounting in Figure 12) *)
}

val create : unit -> t
val reset : t -> unit
