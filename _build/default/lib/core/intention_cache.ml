open Hyder_tree

(* Weak arrays: the cache is an address book, not an owner.  Nodes stay
   resolvable exactly as long as something real (a retained state, a newer
   intention) keeps them alive; aborted intentions' nodes vanish with them. *)
type t = {
  capacity : int;
  table : (int, Node.tree Weak.t) Hashtbl.t;
  fifo : int Queue.t;
}

let create ?(capacity = 16384) () =
  if capacity <= 0 then invalid_arg "Intention_cache.create";
  { capacity; table = Hashtbl.create (2 * capacity); fifo = Queue.create () }

let add t ~pos nodes =
  if not (Hashtbl.mem t.table pos) then begin
    let w = Weak.create (Array.length nodes) in
    Array.iteri (fun i n -> Weak.set w i (Some n)) nodes;
    Hashtbl.replace t.table pos w;
    Queue.push pos t.fifo;
    while Queue.length t.fifo > t.capacity do
      Hashtbl.remove t.table (Queue.pop t.fifo)
    done
  end

let find t ~pos ~idx =
  match Hashtbl.find_opt t.table pos with
  | Some w when idx >= 0 && idx < Weak.length w -> Weak.get w idx
  | Some _ | None -> None

let cached t = Hashtbl.length t.table
