open Hyder_tree

(** Transaction execution (Section 5.2).

    A transaction runs optimistically, with no synchronization, against an
    immutable snapshot — the last committed state its server knew when it
    began.  Reads see the snapshot plus the transaction's own writes; writes
    copy-on-write the root-to-node path into a growing draft.  Finishing a
    transaction yields the intention draft to serialize and append (or
    nothing, for read-only transactions, which are never logged or melded).

    Isolation levels:
    - [Serializable]: point reads are validated ([depends_on_content]),
      reads of absent keys and range scans are structure-validated.
    - [Snapshot_isolation]: only writes are validated (first-committer
      wins); the readset is not recorded, which shrinks intentions by the
      whole readset (Section 6.4.4).
    - [Read_committed]: like snapshot isolation, but each read may observe
      a fresher committed state supplied by [current].  *)

type t

val begin_txn :
  ?current:(unit -> Tree.t) ->
  snapshot_pos:int ->
  snapshot:Tree.t ->
  server:int ->
  txn_seq:int ->
  isolation:Hyder_codec.Intention.isolation ->
  unit ->
  t
(** [current] is consulted by read-committed reads; it defaults to the
    snapshot. *)

val read : t -> Key.t -> Payload.t option
(** [None] for absent keys and tombstones. *)

val read_range : t -> lo:Key.t -> hi:Key.t -> (Key.t * Payload.t) list
val write : t -> Key.t -> string -> unit
val delete : t -> Key.t -> unit

val finish : t -> Hyder_codec.Intention.draft option
(** The intention draft, or [None] for a read-only transaction.  The
    transaction must not be used afterwards. *)

(** {1 Introspection (tests, oracle)} *)

val reads : t -> Key.t list
(** Keys point-read so far (own-write reads excluded), newest first. *)

val writes : t -> Key.t list
(** Keys written (including deletes), newest first. *)

val snapshot_pos : t -> int
val working_tree : t -> Tree.t
