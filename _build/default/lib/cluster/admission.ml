type config = {
  min_window : int;
  max_window : int;
  target_abort_rate : float;
  sample : int;
  increase : int;
  decrease : float;
}

let default_config =
  {
    min_window = 8;
    max_window = 160;
    target_abort_rate = 0.10;
    sample = 64;
    increase = 4;
    decrease = 0.6;
  }

type t = {
  config : config;
  mutable window : int;
  mutable seen : int;
  mutable aborted : int;
  mutable ups : int;
  mutable downs : int;
}

let create ?(config = default_config) () =
  if
    config.min_window <= 0
    || config.max_window < config.min_window
    || config.sample <= 0
  then invalid_arg "Admission.create";
  {
    config;
    window = (config.min_window + config.max_window) / 2;
    seen = 0;
    aborted = 0;
    ups = 0;
    downs = 0;
  }

let window t = t.window

let observe t ~committed =
  t.seen <- t.seen + 1;
  if not committed then t.aborted <- t.aborted + 1;
  if t.seen >= t.config.sample then begin
    let rate = float_of_int t.aborted /. float_of_int t.seen in
    if rate > t.config.target_abort_rate then begin
      t.window <-
        max t.config.min_window
          (int_of_float (float_of_int t.window *. t.config.decrease));
      t.downs <- t.downs + 1
    end
    else begin
      t.window <- min t.config.max_window (t.window + t.config.increase);
      t.ups <- t.ups + 1
    end;
    t.seen <- 0;
    t.aborted <- 0
  end

let adjustments t = (t.ups, t.downs)
