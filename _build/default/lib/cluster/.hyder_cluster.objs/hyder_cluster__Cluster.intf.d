lib/cluster/cluster.mli: Admission Format Hyder_core Hyder_log Hyder_workload
