lib/cluster/cluster.ml: Admission Array Format Fun Gc Hashtbl Hyder_codec Hyder_core Hyder_log Hyder_sim Hyder_util Hyder_workload Int Int64 List Option Printf String Sys Unix
