lib/cluster/admission.ml:
