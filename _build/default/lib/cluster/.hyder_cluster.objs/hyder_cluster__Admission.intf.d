lib/cluster/admission.mli:
