(** Adaptive admission control.

    The paper uses a fixed, empirically chosen in-flight cap per executor
    thread and notes that "ideally, the threshold ... should be dynamically
    determined by admission control logic, which is future work"
    (Section 5.2).  This module implements that future work: an AIMD
    controller that grows the window while the system is healthy and cuts
    it when the observed abort rate — the symptom of conflict-zone blow-up
    and meld overload — exceeds a target.

    One controller instance governs one server's executor threads. *)

type config = {
  min_window : int;
  max_window : int;
  target_abort_rate : float;  (** cut the window when recent aborts exceed this *)
  sample : int;  (** decisions per adjustment period *)
  increase : int;  (** additive increase per healthy period *)
  decrease : float;  (** multiplicative decrease on an unhealthy period *)
}

val default_config : config
(** window in [8, 160], target 10% aborts, adjust every 64 decisions. *)

type t

val create : ?config:config -> unit -> t

val window : t -> int
(** Current per-thread in-flight allowance. *)

val observe : t -> committed:bool -> unit
(** Feed one transaction outcome; adjusts the window at period boundaries. *)

val adjustments : t -> int * int
(** (increases, decreases) so far — for tests and reporting. *)
