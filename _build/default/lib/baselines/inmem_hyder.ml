module Local = Hyder_core.Local
module Executor = Hyder_core.Executor
module Pipeline = Hyder_core.Pipeline
module State_store = Hyder_core.State_store
module Counters = Hyder_core.Counters
module Ycsb = Hyder_workload.Ycsb
module Rng = Hyder_util.Rng

type result = {
  meld_us : float;
  meld_bound_tps : float;
  fm_nodes_per_txn : float;
  abort_rate : float;
}

let run ?(txns = 20_000) ?(zone_cap = 256) ?(seed = 77L) ~workload () =
  let wl = Ycsb.create ~seed workload in
  let h = Local.create ~genesis:(Ycsb.genesis wl) () in
  let states = Pipeline.states (Local.pipeline h) in
  let rng = Rng.create (Int64.add seed 1L) in
  let committed = ref 0 and aborted = ref 0 in
  let fm = (Local.counters h).Counters.final_meld in
  let t_warm = txns / 10 in
  let fm_seconds0 = ref 0.0 and fm_nodes0 = ref 0 and fm_count0 = ref 0 in
  for i = 1 to txns do
    if i = t_warm then begin
      fm_seconds0 := fm.Counters.seconds;
      fm_nodes0 := fm.Counters.nodes_visited;
      fm_count0 := fm.Counters.intentions
    end;
    (* Snapshot uniformly up to zone_cap intentions behind, as [8]'s
       generator did. *)
    let lcs_seq, _, _ = Local.lcs h in
    let lag = Rng.int rng (zone_cap + 1) in
    let snap_seq = max (-1) (lcs_seq - lag) in
    let snapshot = Option.get (State_store.by_seq states snap_seq) in
    (* Local's synthetic positions advance by 2 per intention, starting
       at 2; genesis is -1. *)
    let snap_pos = if snap_seq < 0 then -1 else 2 * (snap_seq + 1) in
    let e =
      Executor.begin_txn ~snapshot_pos:snap_pos ~snapshot ~server:0
        ~txn_seq:i ~isolation:workload.Ycsb.isolation ()
    in
    Ycsb.apply (Ycsb.next_write_txn wl) e;
    match Executor.finish e with
    | None -> ()
    | Some draft ->
        List.iter
          (fun (d : Pipeline.decision) ->
            if d.Pipeline.committed then incr committed else incr aborted)
          (Local.submit_draft h draft);
        Pipeline.prune (Local.pipeline h) ~keep:(zone_cap + 16)
  done;
  let melds = fm.Counters.intentions - !fm_count0 in
  let meld_us =
    (fm.Counters.seconds -. !fm_seconds0) /. float_of_int (max 1 melds) *. 1e6
  in
  {
    meld_us;
    meld_bound_tps = (if meld_us <= 0.0 then 0.0 else 1e6 /. meld_us);
    fm_nodes_per_txn =
      float_of_int (fm.Counters.nodes_visited - !fm_nodes0)
      /. float_of_int (max 1 melds);
    abort_rate =
      (let d = !committed + !aborted in
       if d = 0 then 0.0 else float_of_int !aborted /. float_of_int d);
  }
