(** The original in-memory Hyder of Bernstein et al. [8] (Section 6.4.2).

    [8] evaluated meld on a single server with an in-memory log and a
    workload generator that capped the conflict zone at 256 intentions.
    This baseline reproduces that setup on our meld: transactions execute
    against snapshots at most [zone_cap] intentions old and are melded by a
    plain (unoptimized) pipeline; throughput is meld-bound, so the reported
    rate is the reciprocal of the measured final-meld time. *)

type result = {
  meld_us : float;  (** mean final-meld microseconds per intention *)
  meld_bound_tps : float;  (** 1e6 / meld_us *)
  fm_nodes_per_txn : float;
  abort_rate : float;
}

val run :
  ?txns:int ->
  ?zone_cap:int ->
  ?seed:int64 ->
  workload:Hyder_workload.Ycsb.config ->
  unit ->
  result
