open Hyder_tree

type node =
  | Leaf of (Key.t * string) array
  | Internal of Key.t array * node array
      (* children.(i) holds keys < keys.(i); the last child holds the rest;
         |keys| = |children| - 1 *)

type t = { fanout : int; root : node; size : int }

type cow_stats = { nodes_copied : int; bytes_copied : int }

let node_header = 16 (* type tag + length words, serialized *)

let node_size = function
  | Leaf kvs ->
      Array.fold_left
        (fun acc (_, v) -> acc + 8 + 4 + String.length v)
        node_header kvs
  | Internal (keys, children) ->
      node_header + (8 * Array.length keys) + (8 * Array.length children)

let rec subtree_bytes = function
  | Leaf _ as n -> node_size n
  | Internal (_, children) as n ->
      Array.fold_left (fun acc c -> acc + subtree_bytes c) (node_size n) children

let node_bytes t = subtree_bytes t.root

(* ------------------------------------------------------------------ *)
(* Bulk load                                                            *)
(* ------------------------------------------------------------------ *)

let chunk ~target arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let pieces = max 1 ((n + target - 1) / target) in
    Array.init pieces (fun i ->
        let lo = i * n / pieces and hi = (i + 1) * n / pieces in
        Array.sub arr lo (hi - lo))
  end

let create ~fanout items =
  if fanout < 4 then invalid_arg "Cow_btree.create: fanout must be >= 4";
  for i = 1 to Array.length items - 1 do
    if Key.compare (fst items.(i - 1)) (fst items.(i)) >= 0 then
      invalid_arg "Cow_btree.create: keys must be strictly increasing"
  done;
  let target = max 2 (fanout * 3 / 4) in
  let min_key = function
    | Leaf kvs -> fst kvs.(0)
    | Internal _ -> assert false
  in
  (* build leaves, then reduce levels until a single root remains *)
  let rec reduce level mins =
    if Array.length level <= 1 then
      if Array.length level = 1 then level.(0) else Leaf [||]
    else begin
      let groups = chunk ~target:(max 2 (fanout * 3 / 4)) level in
      let group_mins = chunk ~target:(max 2 (fanout * 3 / 4)) mins in
      let parents =
        Array.mapi
          (fun gi g ->
            let keys = Array.sub group_mins.(gi) 1 (Array.length g - 1) in
            Internal (keys, g))
          groups
      in
      let parent_mins = Array.map (fun m -> m.(0)) group_mins in
      reduce parents parent_mins
    end
  in
  let leaves = chunk ~target items |> Array.map (fun kvs -> Leaf kvs) in
  let root =
    if Array.length leaves = 0 then Leaf [||]
    else reduce leaves (Array.map min_key leaves)
  in
  { fanout; root; size = Array.length items }

(* ------------------------------------------------------------------ *)
(* Queries                                                              *)
(* ------------------------------------------------------------------ *)

(* child index for a key: first i with key < keys.(i), else last child *)
let child_index keys key =
  let n = Array.length keys in
  let rec go lo hi =
    (* smallest i in [lo, hi] with key < keys.(i); hi = n means none *)
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if Key.compare key keys.(mid) < 0 then go lo mid else go (mid + 1) hi
    end
  in
  go 0 n

let rec find_leaf node key =
  match node with
  | Leaf kvs -> kvs
  | Internal (keys, children) -> find_leaf children.(child_index keys key) key

let lookup t key =
  let kvs = find_leaf t.root key in
  let n = Array.length kvs in
  let rec bin lo hi =
    if lo >= hi then None
    else begin
      let mid = (lo + hi) / 2 in
      let c = Key.compare key (fst kvs.(mid)) in
      if c = 0 then Some (snd kvs.(mid))
      else if c < 0 then bin lo mid
      else bin (mid + 1) hi
    end
  in
  bin 0 n

let mem t key = lookup t key <> None

let size t = t.size

let rec node_depth = function
  | Leaf _ -> 1
  | Internal (_, children) -> 1 + node_depth children.(0)

let depth t = node_depth t.root

let to_alist t =
  let acc = ref [] in
  let rec go = function
    | Leaf kvs ->
        for i = Array.length kvs - 1 downto 0 do
          acc := kvs.(i) :: !acc
        done
    | Internal (_, children) ->
        for i = Array.length children - 1 downto 0 do
          go children.(i)
        done
  in
  go t.root;
  !acc

(* ------------------------------------------------------------------ *)
(* Copy-on-write update                                                 *)
(* ------------------------------------------------------------------ *)

let update t key value =
  let copied = ref 0 and bytes = ref 0 in
  let account n =
    incr copied;
    bytes := !bytes + node_size n;
    n
  in
  let rec go node =
    match node with
    | Leaf kvs ->
        let idx =
          let n = Array.length kvs in
          let rec bin lo hi =
            if lo >= hi then raise Not_found
            else begin
              let mid = (lo + hi) / 2 in
              let c = Key.compare key (fst kvs.(mid)) in
              if c = 0 then mid else if c < 0 then bin lo mid else bin (mid + 1) hi
            end
          in
          bin 0 n
        in
        let kvs' = Array.copy kvs in
        kvs'.(idx) <- (key, value);
        account (Leaf kvs')
    | Internal (keys, children) ->
        let i = child_index keys key in
        let children' = Array.copy children in
        children'.(i) <- go children.(i);
        account (Internal (keys, children'))
  in
  let root = go t.root in
  ({ t with root }, { nodes_copied = !copied; bytes_copied = !bytes })

(* ------------------------------------------------------------------ *)
(* Copy-on-write insert with splits                                     *)
(* ------------------------------------------------------------------ *)

let array_insert arr idx x =
  let n = Array.length arr in
  Array.init (n + 1) (fun i ->
      if i < idx then arr.(i) else if i = idx then x else arr.(i - 1))

let insert t key value =
  let copied = ref 0 and bytes = ref 0 in
  let account n =
    incr copied;
    bytes := !bytes + node_size n;
    n
  in
  (* returns either a single new node, or (left, separator, right) after a
     split *)
  let rec go node =
    match node with
    | Leaf kvs ->
        let n = Array.length kvs in
        let rec pos lo hi =
          if lo >= hi then lo
          else begin
            let mid = (lo + hi) / 2 in
            let c = Key.compare key (fst kvs.(mid)) in
            if c = 0 then invalid_arg "Cow_btree.insert: key exists"
            else if c < 0 then pos lo mid
            else pos (mid + 1) hi
          end
        in
        let idx = pos 0 n in
        let kvs' = array_insert kvs idx (key, value) in
        if Array.length kvs' <= t.fanout then `One (account (Leaf kvs'))
        else begin
          let mid = Array.length kvs' / 2 in
          let left = Array.sub kvs' 0 mid in
          let right = Array.sub kvs' mid (Array.length kvs' - mid) in
          let sep = fst right.(0) in
          `Split (account (Leaf left), sep, account (Leaf right))
        end
    | Internal (keys, children) ->
        let i = child_index keys key in
        (match go children.(i) with
        | `One child ->
            let children' = Array.copy children in
            children'.(i) <- child;
            `One (account (Internal (keys, children')))
        | `Split (l, sep, r) ->
            let keys' = array_insert keys i sep in
            let children' =
              Array.init
                (Array.length children + 1)
                (fun j ->
                  if j < i then children.(j)
                  else if j = i then l
                  else if j = i + 1 then r
                  else children.(j - 1))
            in
            if Array.length children' <= t.fanout then
              `One (account (Internal (keys', children')))
            else begin
              let midc = Array.length children' / 2 in
              (* promote keys'.(midc - 1); left gets children [0, midc) *)
              let promoted = keys'.(midc - 1) in
              let lkeys = Array.sub keys' 0 (midc - 1) in
              let lchildren = Array.sub children' 0 midc in
              let rkeys =
                Array.sub keys' midc (Array.length keys' - midc)
              in
              let rchildren =
                Array.sub children' midc (Array.length children' - midc)
              in
              `Split
                ( account (Internal (lkeys, lchildren)),
                  promoted,
                  account (Internal (rkeys, rchildren)) )
            end)
  in
  let root =
    match go t.root with
    | `One n -> n
    | `Split (l, sep, r) -> account (Internal ([| sep |], [| l; r |]))
  in
  ( { t with root; size = t.size + 1 },
    { nodes_copied = !copied; bytes_copied = !bytes } )

(* ------------------------------------------------------------------ *)
(* Validation                                                           *)
(* ------------------------------------------------------------------ *)

let validate t =
  let exception Bad of string in
  let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
  let leaf_depth = ref (-1) in
  let rec go node lo hi d =
    (match node with
    | Leaf kvs ->
        if Array.length kvs > t.fanout then fail "overfull leaf";
        Array.iter
          (fun (k, _) ->
            (match lo with
            | Some l when Key.compare k l < 0 -> fail "key %d below bound" k
            | _ -> ());
            match hi with
            | Some h when Key.compare k h >= 0 -> fail "key %d above bound" k
            | _ -> ())
          kvs;
        for i = 1 to Array.length kvs - 1 do
          if Key.compare (fst kvs.(i - 1)) (fst kvs.(i)) >= 0 then
            fail "leaf keys out of order"
        done
    | Internal (keys, children) ->
        if Array.length children > t.fanout then fail "overfull internal";
        if Array.length children < 2 then fail "underfull internal";
        if Array.length keys <> Array.length children - 1 then
          fail "key/child arity mismatch";
        Array.iteri
          (fun i c ->
            let lo' = if i = 0 then lo else Some keys.(i - 1) in
            let hi' = if i = Array.length keys then hi else Some keys.(i) in
            go c lo' hi' (d + 1))
          children);
    match node with
    | Leaf _ ->
        (* all leaves at the same depth *)
        if !leaf_depth = -1 then leaf_depth := d
        else if !leaf_depth <> d then fail "ragged leaves"
    | Internal _ -> ()
  in
  match go t.root None None 0 with
  | () ->
      if List.length (to_alist t) <> t.size then Error "size mismatch"
      else Ok ()
  | exception Bad s -> Error s
