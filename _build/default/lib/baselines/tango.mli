open Hyder_tree

(** Tango-style baseline (Balakrishnan et al., SOSP 2013; Section 6.4.2).

    Tango builds distributed data structures over the same CORFU log that
    Hyder II uses, but with a {e hash} access method and per-key version
    validation instead of tree meld.  Its log roll-forward ("apply") is the
    sequential bottleneck analogous to final meld: each server deterministic-
    ally replays log entries, validating recorded read versions and
    installing writes.  Because the index is a hash table there is no tree
    maintenance and no range support — the paper's stated trade-off.

    The benchmark measures the real cost of [apply] per transaction, which
    bounds Tango's throughput the same way meld bounds Hyder II's. *)

type t

val create : genesis:(Key.t * string) array -> t

type entry
(** A transaction's log record: read versions and written values. *)

(** Optimistic transaction executing against the current committed state. *)
module Txn : sig
  type store := t
  type t

  val begin_ : store -> t
  val read : t -> Key.t -> string option
  val write : t -> Key.t -> string -> unit
  val finish : t -> entry
end

val apply : t -> entry -> bool
(** Roll one entry forward: commit (and install writes) iff every read
    version is still current — deterministic across replicas. *)

val encoded_size : entry -> int
(** Wire size of the entry, for log-bandwidth accounting. *)

val run_workload :
  ?seed:int64 ->
  records:int ->
  txns:int ->
  window:int ->
  reads_per_txn:int ->
  writes_per_txn:int ->
  unit ->
  float * float
(** Drive a YCSB-like stream with a bounded in-flight window (entries are
    created against the live store and applied [window] entries later).
    Returns (mean apply microseconds per txn, abort rate). *)

val size : t -> int
val lookup : t -> Key.t -> string option
val applied : t -> int
val committed : t -> int
