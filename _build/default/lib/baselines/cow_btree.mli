open Hyder_tree

(** Copy-on-write B-tree: the index design Hyder rejected.

    Section 2 of the paper: the database tree could be "a binary search
    tree or B-tree", but "since it operates on main memory structures and
    is serialized to a sequential log (rather than written out in
    fixed-size pages), a binary tree consumes less storage per record than
    a B-tree".  Under copy-on-write every update copies the whole
    root-to-leaf path; a B-tree path is short but each copied node carries
    [fanout] keys and pointers, so the bytes per update — and hence the
    intention size, the quantity meld's speed depends on — are much larger.

    This is a real, full B-tree (bulk load, lookup, update, insert with
    node splits), instrumented to report exactly the copied-path footprint
    so the `abl-index-size` benchmark can regenerate the design argument. *)

type t

val create : fanout:int -> (Key.t * string) array -> t
(** Bulk-load from a strictly increasing key array.  [fanout] is the
    maximum number of keys per node (>= 4). *)

val lookup : t -> Key.t -> string option
val mem : t -> Key.t -> bool

type cow_stats = {
  nodes_copied : int;  (** nodes rewritten by path copying *)
  bytes_copied : int;  (** serialized footprint of those nodes *)
}

val update : t -> Key.t -> string -> t * cow_stats
(** Copy-on-write update of an existing key (raises [Not_found]
    otherwise). *)

val insert : t -> Key.t -> string -> t * cow_stats
(** Copy-on-write insert of a fresh key, splitting full nodes as B-trees
    do.  Raises [Invalid_argument] if the key exists. *)

val size : t -> int
val depth : t -> int
val to_alist : t -> (Key.t * string) list

val validate : t -> (unit, string) result
(** Checks key ordering, node occupancy bounds and uniform leaf depth. *)

val node_bytes : t -> int
(** Serialized footprint of the whole tree (for per-record comparisons). *)
