lib/baselines/cow_btree.mli: Hyder_tree Key
