lib/baselines/cow_btree.ml: Array Hyder_tree Key List Printf String
