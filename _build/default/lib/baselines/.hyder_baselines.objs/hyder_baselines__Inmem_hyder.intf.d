lib/baselines/inmem_hyder.mli: Hyder_workload
