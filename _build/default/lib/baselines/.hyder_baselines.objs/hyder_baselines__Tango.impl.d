lib/baselines/tango.ml: Array Hashtbl Hyder_tree Hyder_util Key List Queue Unix
