lib/baselines/inmem_hyder.ml: Hyder_core Hyder_util Hyder_workload Int64 List Option
