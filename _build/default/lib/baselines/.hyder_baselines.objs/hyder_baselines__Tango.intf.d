lib/baselines/tango.mli: Hyder_tree Key
