open Hyder_tree
module Rng = Hyder_util.Rng
module Dist = Hyder_util.Dist
module Executor = Hyder_core.Executor

type key_distribution =
  | Uniform
  | Zipfian of float
  | Scrambled_zipfian of float
  | Hotspot of float
  | Latest

type config = {
  record_count : int;
  payload_size : int;
  ops_per_txn : int;
  update_fraction : float;
  insert_fraction : float;
  scan_fraction : float;
  scan_length : int;
  distribution : key_distribution;
  isolation : Hyder_codec.Intention.isolation;
}

let default =
  {
    record_count = 1_000_000;
    payload_size = 1024;
    ops_per_txn = 10;
    update_fraction = 0.2;
    insert_fraction = 0.0;
    scan_fraction = 0.0;
    scan_length = 10;
    distribution = Uniform;
    isolation = Hyder_codec.Intention.Serializable;
  }

let paper_scale c = { c with record_count = 10_000_000 }

type op =
  | Read of Key.t
  | Scan of Key.t * int
  | Update of Key.t * string
  | Insert of Key.t * string

type t = {
  config : config;
  rng : Rng.t;
  dist : Dist.t;
  mutable next_insert_key : int;
  mutable cached_genesis : Tree.t option;
}

let make_dist config =
  let n = config.record_count in
  match config.distribution with
  | Uniform -> Dist.uniform ~n
  | Zipfian theta -> Dist.zipfian ~theta ~n ()
  | Scrambled_zipfian theta -> Dist.scrambled_zipfian ~theta ~n ()
  | Hotspot x -> Dist.hotspot ~x ~n
  | Latest -> Dist.latest ~n

let create ?(seed = 0xC0FFEEL) config =
  if config.record_count <= 0 then invalid_arg "Ycsb.create: record_count";
  if config.ops_per_txn <= 0 then invalid_arg "Ycsb.create: ops_per_txn";
  {
    config;
    rng = Rng.create seed;
    dist = make_dist config;
    next_insert_key = config.record_count;
    cached_genesis = None;
  }

let config t = t.config

(* Deterministic payload for a key: cheap, compressible-looking, and of the
   configured size. *)
let payload_for config k =
  let base = Printf.sprintf "val-%d-" k in
  let pad = max 0 (config.payload_size - String.length base) in
  base ^ String.make pad 'x'

let genesis_array t =
  Array.init t.config.record_count (fun k ->
      (k, Payload.value (payload_for t.config k)))

(* Genesis states are immutable and depend only on (record_count,
   payload_size); share them process-wide so experiment sweeps do not
   rebuild multi-million-node trees per run. *)
let genesis_cache : (int * int, Tree.t) Hashtbl.t = Hashtbl.create 8

let genesis t =
  match t.cached_genesis with
  | Some g -> g
  | None ->
      let key = (t.config.record_count, t.config.payload_size) in
      let g =
        match Hashtbl.find_opt genesis_cache key with
        | Some g -> g
        | None ->
            let g = Tree.of_sorted_array (genesis_array t) in
            Hashtbl.replace genesis_cache key g;
            g
      in
      t.cached_genesis <- Some g;
      g

let sample_key t =
  Dist.sample t.dist t.rng

let fresh_value t =
  (* Updates write a full-size payload, like YCSB's field updates. *)
  payload_for t.config (Rng.int t.rng 1_000_000_000)

let read_op t =
  if
    t.config.scan_fraction > 0.0
    && Rng.unit_float t.rng < t.config.scan_fraction
  then Scan (sample_key t, t.config.scan_length)
  else Read (sample_key t)

let write_op t =
  if
    t.config.insert_fraction > 0.0
    && Rng.unit_float t.rng < t.config.insert_fraction
  then begin
    let k = t.next_insert_key in
    t.next_insert_key <- k + 1;
    Dist.set_max t.dist (k + 1);
    Insert (k, fresh_value t)
  end
  else Update (sample_key t, fresh_value t)

let next_write_txn t =
  let n = t.config.ops_per_txn in
  let writes =
    max 1 (int_of_float (Float.round (t.config.update_fraction *. float_of_int n)))
  in
  let writes = min writes n in
  (* Write positions are scattered through the transaction, as YCSB does. *)
  let slots = Array.init n (fun i -> i < writes) in
  Rng.shuffle t.rng slots;
  Array.to_list
    (Array.map (fun is_write -> if is_write then write_op t else read_op t) slots)

let next_read_only_txn t =
  List.init t.config.ops_per_txn (fun _ -> read_op t)

let apply ops e =
  List.iter
    (fun op ->
      match op with
      | Read k -> ignore (Executor.read e k)
      | Scan (k, len) -> ignore (Executor.read_range e ~lo:k ~hi:(k + len - 1))
      | Update (k, v) -> Executor.write e k v
      | Insert (k, v) -> Executor.write e k v)
    ops

let reads_of ops =
  List.filter_map (function Read k -> Some k | Scan _ | Update _ | Insert _ -> None) ops

let writes_of ops =
  List.filter_map
    (function Update (k, _) | Insert (k, _) -> Some k | Read _ | Scan _ -> None)
    ops
