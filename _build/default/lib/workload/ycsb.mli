open Hyder_tree

(** Transactional YCSB workload generator (Section 6.1).

    The paper adapted the Yahoo! Cloud Serving Benchmark with multi-operation
    transactions.  Knobs, with the paper's defaults: number of operations per
    transaction (10), reads vs writes within a transaction (8R + 2W), point
    vs range lookups, database size (10M items; scaled down by default here —
    see DESIGN.md), payload size (1K), and key-selection distribution
    (uniform by default; hotspot for Section 6.4.5). *)

type key_distribution =
  | Uniform
  | Zipfian of float  (** theta *)
  | Scrambled_zipfian of float
  | Hotspot of float  (** x: fraction of items receiving 1-x of accesses *)
  | Latest

type config = {
  record_count : int;
  payload_size : int;
  ops_per_txn : int;
  update_fraction : float;  (** fraction of a write transaction's ops that write *)
  insert_fraction : float;  (** fraction of writes that insert fresh keys *)
  scan_fraction : float;  (** fraction of reads that are short range scans *)
  scan_length : int;
  distribution : key_distribution;
  isolation : Hyder_codec.Intention.isolation;
}

val default : config
(** The Section 6.1 defaults (8 reads + 2 writes, uniform, serializable),
    with [record_count] scaled to 1M. *)

val paper_scale : config -> config
(** Restore the paper's 10M-item database (memory permitting). *)

type op =
  | Read of Key.t
  | Scan of Key.t * int  (** start key, length *)
  | Update of Key.t * string
  | Insert of Key.t * string

type t

val create : ?seed:int64 -> config -> t
val config : t -> config

val genesis : t -> Tree.t
(** Build (and cache) the initial database state: keys [0 .. record_count). *)

val genesis_array : t -> (Key.t * Payload.t) array
(** The raw load, for substrates that are not tree-based (baselines). *)

val next_write_txn : t -> op list
(** Generate the operations of one read-write transaction.  Deterministic
    given the seed and call sequence. *)

val next_read_only_txn : t -> op list
(** All-read transaction of [ops_per_txn] operations. *)

val apply : op list -> Hyder_core.Executor.t -> unit
(** Execute the operations through a transaction executor. *)

val reads_of : op list -> Key.t list
val writes_of : op list -> Key.t list
