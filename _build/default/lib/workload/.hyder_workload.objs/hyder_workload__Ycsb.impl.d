lib/workload/ycsb.ml: Array Float Hashtbl Hyder_codec Hyder_core Hyder_tree Hyder_util Key List Payload Printf String Tree
