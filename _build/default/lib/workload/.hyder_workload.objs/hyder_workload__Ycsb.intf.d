lib/workload/ycsb.mli: Hyder_codec Hyder_core Hyder_tree Key Payload Tree
