(** In-memory shared log: the reference implementation of {!Log_intf.SYNC}.

    This plays the role of [8]'s in-memory log and backs all unit tests; the
    distributed experiments use {!Corfu} instead.  It also records total
    bytes appended, which the benchmarks use for log-bandwidth accounting. *)

type t

include Log_intf.SYNC with type t := t

val create : ?block_size:int -> unit -> t
(** [block_size] is enforced as an upper bound on appended blocks (default
    8192, matching the paper's 8K pages). *)

val block_size : t -> int
val bytes_appended : t -> int

val iter : t -> from:Log_intf.position -> (Log_intf.position -> string -> unit) -> unit
(** Iterate blocks from a position to the current end, in order. *)
