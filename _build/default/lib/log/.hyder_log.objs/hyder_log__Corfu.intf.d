lib/log/corfu.mli: Hyder_sim Hyder_util Log_intf
