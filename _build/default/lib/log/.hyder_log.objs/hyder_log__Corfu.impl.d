lib/log/corfu.ml: Array Hyder_sim Hyder_util Mem_log
