lib/log/broadcast.ml: Array Hyder_sim
