lib/log/mem_log.mli: Log_intf
