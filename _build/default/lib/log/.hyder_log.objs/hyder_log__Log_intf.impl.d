lib/log/log_intf.ml:
