lib/log/broadcast.mli: Hyder_sim
