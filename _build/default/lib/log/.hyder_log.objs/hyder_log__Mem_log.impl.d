lib/log/mem_log.ml: Array Printf String
