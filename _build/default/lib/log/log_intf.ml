(** Signatures shared by log implementations.

    In Hyder the log *is* the database: a totally ordered, shared sequence of
    fixed-size intention blocks.  Appending is the only point of arbitration
    between servers (Section 1 of the paper). *)

type position = int
(** Index of a block in the log; dense, starting at 0. *)

(** Synchronous block log.  Used by the core library, unit tests and the
    single-process experiments; the distributed experiments wrap the
    simulated CORFU service instead. *)
module type SYNC = sig
  type t

  val append : t -> string -> position
  (** Append one block; returns the position it was assigned. *)

  val read : t -> position -> string
  (** Read the block at a position.  Raises [Invalid_argument] if out of
      range. *)

  val length : t -> int
  (** Number of blocks appended so far (= next position). *)
end
