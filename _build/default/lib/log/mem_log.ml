type t = {
  block_size : int;
  mutable blocks : string array;
  mutable len : int;
  mutable bytes : int;
}

let create ?(block_size = 8192) () =
  if block_size <= 0 then invalid_arg "Mem_log.create: block_size";
  { block_size; blocks = Array.make 1024 ""; len = 0; bytes = 0 }

let block_size t = t.block_size
let length t = t.len
let bytes_appended t = t.bytes

let append t block =
  if String.length block > t.block_size then
    invalid_arg
      (Printf.sprintf "Mem_log.append: block of %d bytes exceeds page size %d"
         (String.length block) t.block_size);
  if t.len = Array.length t.blocks then begin
    let bigger = Array.make (2 * t.len) "" in
    Array.blit t.blocks 0 bigger 0 t.len;
    t.blocks <- bigger
  end;
  let pos = t.len in
  t.blocks.(pos) <- block;
  t.len <- t.len + 1;
  t.bytes <- t.bytes + String.length block;
  pos

let read t pos =
  if pos < 0 || pos >= t.len then
    invalid_arg (Printf.sprintf "Mem_log.read: position %d out of range" pos);
  t.blocks.(pos)

let iter t ~from f =
  for pos = max 0 from to t.len - 1 do
    f pos t.blocks.(pos)
  done
