(** Discrete-event simulation engine.

    The cluster experiments replace the paper's 20-server rack with a
    simulation: algorithmic work (meld, premeld, ...) executes for real and
    its measured/counted cost is fed back in as event durations, while
    queueing at shared resources (log, network) is simulated here.

    Events fire in (time, insertion order) — ties break deterministically by
    insertion sequence, so a simulation is a pure function of its inputs. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulated time, in seconds. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Run a callback [delay] seconds from now.  Negative delays are clamped to
    zero. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** Run a callback at an absolute simulated time (>= now). *)

val step : t -> bool
(** Fire the earliest pending event.  Returns [false] when none remain. *)

val run : ?until:float -> t -> unit
(** Drain the event queue; with [until], stop once the clock passes it
    (pending later events remain queued). *)

val pending : t -> int
(** Number of queued events. *)
