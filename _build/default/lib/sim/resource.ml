type request = { service_time : float; k : unit -> unit }

type t = {
  engine : Engine.t;
  servers : int;
  queue : request Queue.t;
  mutable in_service : int;
  mutable busy_time : float;
  mutable completed : int;
}

let create engine ~servers =
  if servers <= 0 then invalid_arg "Resource.create: servers must be positive";
  { engine; servers; queue = Queue.create (); in_service = 0; busy_time = 0.0; completed = 0 }

let rec start t req =
  t.in_service <- t.in_service + 1;
  Engine.schedule t.engine ~delay:req.service_time (fun () ->
      t.in_service <- t.in_service - 1;
      t.busy_time <- t.busy_time +. req.service_time;
      t.completed <- t.completed + 1;
      req.k ();
      dispatch t)

and dispatch t =
  if t.in_service < t.servers && not (Queue.is_empty t.queue) then
    start t (Queue.pop t.queue)

let request t ~service_time k =
  let req = { service_time; k } in
  if t.in_service < t.servers then start t req else Queue.push req t.queue

let queue_length t = Queue.length t.queue
let in_service t = t.in_service
let busy_time t = t.busy_time
let completed t = t.completed
