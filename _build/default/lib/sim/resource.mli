(** Multi-server FIFO queueing resource for the simulator.

    Models a component with [servers] identical service units (e.g. an SSD
    storage unit with an internal queue, a NIC port, a CPU core).  Requests
    queue in arrival order; each occupies one unit for its service time and
    then fires its completion callback. *)

type t

val create : Engine.t -> servers:int -> t

val request : t -> service_time:float -> (unit -> unit) -> unit
(** Enqueue work taking [service_time] simulated seconds; the callback runs
    at completion time. *)

val queue_length : t -> int
(** Requests waiting (excluding those in service). *)

val in_service : t -> int
val busy_time : t -> float
(** Accumulated unit-seconds of service performed; divide by
    [servers * elapsed] for utilization. *)

val completed : t -> int
