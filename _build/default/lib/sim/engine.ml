type event = { time : float; seq : int; fn : unit -> unit }

(* Binary min-heap on (time, seq).  The seq tie-break makes event order — and
   therefore the whole simulation — deterministic. *)
type t = {
  mutable heap : event array;
  mutable size : int;
  mutable clock : float;
  mutable next_seq : int;
}

let dummy = { time = 0.0; seq = 0; fn = ignore }

let create () =
  { heap = Array.make 1024 dummy; size = 0; clock = 0.0; next_seq = 0 }

let now t = t.clock
let pending t = t.size

let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && earlier t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && earlier t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ev =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- ev;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  t.heap.(0) <- t.heap.(t.size);
  t.heap.(t.size) <- dummy;
  if t.size > 0 then sift_down t 0;
  top

let schedule_at t ~time fn =
  let time = if time < t.clock then t.clock else time in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  push t { time; seq; fn }

let schedule t ~delay fn =
  let delay = if delay < 0.0 then 0.0 else delay in
  schedule_at t ~time:(t.clock +. delay) fn

let step t =
  if t.size = 0 then false
  else begin
    let ev = pop t in
    t.clock <- ev.time;
    ev.fn ();
    true
  end

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some limit ->
      let continue = ref true in
      while !continue do
        if t.size = 0 then continue := false
        else if t.heap.(0).time > limit then begin
          t.clock <- limit;
          continue := false
        end
        else ignore (step t)
      done
