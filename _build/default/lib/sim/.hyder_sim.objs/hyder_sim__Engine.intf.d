lib/sim/engine.mli:
