lib/codec/intention.mli: Hyder_tree Node Vn
