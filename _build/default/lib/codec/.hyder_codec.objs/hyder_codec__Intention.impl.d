lib/codec/intention.ml: Hyder_tree Node Vn
