lib/codec/codec.mli: Hyder_tree Intention Key Node Vn
