lib/codec/codec.ml: Array Buffer Bytes Hashtbl Hyder_tree Hyder_util Int32 Int64 Intention Key List Node Payload Printf String Vn
