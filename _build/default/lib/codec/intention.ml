open Hyder_tree
open Node

type isolation = Serializable | Snapshot_isolation | Read_committed

let isolation_to_string = function
  | Serializable -> "serializable"
  | Snapshot_isolation -> "snapshot-isolation"
  | Read_committed -> "read-committed"

type draft = {
  snapshot : int;
  server : int;
  txn_seq : int;
  isolation : isolation;
  root : Node.tree;
}

type t = {
  pos : int;
  snapshot : int;
  server : int;
  txn_seq : int;
  isolation : isolation;
  root : Node.tree;
  node_count : int;
  byte_size : int;
}

let draft_owner = max_int
let draft_vn ~idx = Vn.logged ~pos:max_int ~idx

let assign ~pos ?(byte_size = 0) (d : draft) =
  let count = ref 0 in
  (* Post-order renumbering of draft nodes; shared (snapshot) subtrees are
     left untouched.  Must mirror the decoder exactly. *)
  let rec go t =
    match t with
    | Empty -> Empty
    | Node n ->
        if n.owner <> draft_owner then t
        else begin
          let left = go n.left in
          let right = go n.right in
          let idx = !count in
          incr count;
          let vn = Vn.logged ~pos ~idx in
          let cv = if n.altered then vn else n.cv in
          Node
            (Node.make ~key:n.key ~payload:n.payload ~left ~right ~vn ~cv
               ~ssv:n.ssv ~scv:n.scv ~altered:n.altered
               ~depends_on_content:n.depends_on_content
               ~depends_on_structure:n.depends_on_structure ~owner:pos)
        end
  in
  let root = go d.root in
  {
    pos;
    snapshot = d.snapshot;
    server = d.server;
    txn_seq = d.txn_seq;
    isolation = d.isolation;
    root;
    node_count = !count;
    byte_size;
  }

let node_count t = t.node_count
let inside t (n : Node.node) = n.owner = t.pos
