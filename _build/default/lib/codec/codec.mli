open Hyder_tree
(** Intention serialization (Section 5.2).

    An intention tree is serialized by a post-order traversal, so each node
    is written after its children and can refer to them by index; pointers
    to nodes outside the intention are written as (VN, key) references.  The
    byte stream is split into fixed-size {e intention blocks} for the log;
    an intention's blocks need not be contiguous in the log, and the
    intention's identity is the log position of its last block (Section
    5.1).  Deserialization swizzles references back to in-memory nodes via a
    caller-supplied resolver (the server's retained-state cache) and assigns
    node identities from the log address. *)

exception Corrupt of string
(** Raised on checksum mismatch or malformed input. *)

val encode : Intention.draft -> string
(** Serialize a draft intention to its wire form. *)

val encoded_size : Intention.draft -> int

type resolver = snapshot:int -> key:Key.t -> vn:Vn.t -> Node.tree
(** [resolve ~snapshot ~key ~vn] must return the node holding [key] in the
    database state at log position [snapshot]; [vn] is what the intention
    expects and can be used for integrity checking. *)

val decode : pos:int -> resolve:resolver -> string -> Intention.t
(** Rebuild the intention appended at log position [pos].  Inside nodes get
    owner [pos] and VNs [Logged (pos, idx)] in post-order, matching
    {!Intention.assign}. *)

val decode_indexed :
  pos:int -> resolve:resolver -> string -> Intention.t * Node.tree array
(** Like {!decode}, and also returns the decoded nodes indexed by their
    post-order position -- the object table that lets later intentions'
    references to this one be swizzled in O(1) (Section 5.2's "node pointer
    to object pointer" transformation). *)

(** Fragmentation of intention byte streams into log blocks. *)
module Blocks : sig
  val overhead : int
  (** Per-block framing bytes (upper bound). *)

  val split :
    block_size:int -> server:int -> txn_seq:int -> string -> string list
  (** Fragment an encoded intention into checksummed blocks of at most
      [block_size] bytes. *)

  val blocks_needed : block_size:int -> int -> int
  (** How many blocks a payload of the given size occupies. *)

  (** Reassembles interleaved block streams back into intentions.  Blocks
      from different servers interleave arbitrarily in the log; blocks of
      one intention arrive in order because each server appends them in
      order. *)
  module Reassembler : sig
    type t

    val create : unit -> t

    val feed : t -> pos:int -> string -> (int * string) option
    (** Offer the block at log position [pos].  Returns
        [Some (intention_pos, bytes)] when this block completes an
        intention; [intention_pos] is [pos] of this (last) block. *)

    val pending : t -> int
    (** Intentions with fragments outstanding. *)
  end
end
