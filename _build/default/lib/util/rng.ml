type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let hash64 = mix
let create seed = { state = seed }
let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = next_int64 t in
  { state = mix s }

(* Top 53 bits give a uniform float in [0,1). *)
let unit_float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. 0x1p-53

let float t bound = unit_float t *. bound

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible for
     bounds far below 2^62, which covers all simulation uses.  Keeping 62
     bits guarantees the value fits OCaml's native int. *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let exponential t ~mean =
  let u = 1.0 -. unit_float t in
  -.mean *. log u

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
