(* The Zipfian sampler follows Gray et al., "Quickly generating
   billion-record synthetic databases" (SIGMOD 1994), as used by YCSB:
   zeta-based inversion with constants precomputed for the key-space size. *)

type zipf = {
  n : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
}

type kind =
  | Uniform of int
  | Zipfian of zipf
  | Scrambled of zipf * int
  | Hotspot of { n : int; hot_keys : int; hot_prob : float }
  | Latest of { mutable max : int; zipf : zipf }

type t = kind ref

let zeta n theta =
  let acc = ref 0.0 in
  for i = 1 to n do
    acc := !acc +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !acc

let make_zipf n theta =
  if n <= 0 then invalid_arg "Dist.zipfian: n must be positive";
  let zetan = zeta n theta in
  let zeta2 = zeta 2 theta in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta =
    (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
    /. (1.0 -. (zeta2 /. zetan))
  in
  { n; theta; alpha; zetan; eta }

let sample_zipf z rng =
  let u = Rng.unit_float rng in
  let uz = u *. z.zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. Float.pow 0.5 z.theta then 1
  else
    let v =
      float_of_int z.n
      *. Float.pow ((z.eta *. u) -. z.eta +. 1.0) z.alpha
    in
    let k = int_of_float v in
    if k >= z.n then z.n - 1 else k

let uniform ~n =
  if n <= 0 then invalid_arg "Dist.uniform: n must be positive";
  ref (Uniform n)

let zipfian ?(theta = 0.99) ~n () = ref (Zipfian (make_zipf n theta))

let scrambled_zipfian ?(theta = 0.99) ~n () =
  ref (Scrambled (make_zipf n theta, n))

let hotspot ~x ~n =
  if not (x > 0.0 && x <= 1.0) then
    invalid_arg "Dist.hotspot: x must be in (0, 1]";
  let hot_keys = max 1 (int_of_float (Float.round (x *. float_of_int n))) in
  ref (Hotspot { n; hot_keys; hot_prob = 1.0 -. x })

let latest ~n = ref (Latest { max = n; zipf = make_zipf n 0.99 })

let set_max t m =
  match !t with
  | Latest l -> l.max <- max 1 m
  | Uniform _ | Zipfian _ | Scrambled _ | Hotspot _ -> ()

let sample t rng =
  match !t with
  | Uniform n -> Rng.int rng n
  | Zipfian z -> sample_zipf z rng
  | Scrambled (z, n) ->
      let rank = sample_zipf z rng in
      let h = Rng.hash64 (Int64.of_int rank) in
      Int64.to_int (Int64.rem (Int64.shift_right_logical h 1) (Int64.of_int n))
  | Hotspot { n; hot_keys; hot_prob } ->
      if hot_keys >= n then Rng.int rng n
      else if Rng.unit_float rng < hot_prob then Rng.int rng hot_keys
      else hot_keys + Rng.int rng (n - hot_keys)
  | Latest l ->
      let z = sample_zipf l.zipf rng in
      let k = l.max - 1 - (z mod l.max) in
      if k < 0 then 0 else k

let name t =
  match !t with
  | Uniform _ -> "uniform"
  | Zipfian _ -> "zipfian"
  | Scrambled _ -> "scrambled-zipfian"
  | Hotspot { hot_keys; n; _ } ->
      Printf.sprintf "hotspot(x=%.2f)" (float_of_int hot_keys /. float_of_int n)
  | Latest _ -> "latest"
