(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that every
    experiment is reproducible from a single integer seed.  The generator is
    SplitMix64 (Steele, Lea, Flood 2014): tiny state, excellent statistical
    quality for simulation purposes, and cheap splitting for deriving
    independent streams. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator.  Equal seeds give equal
    streams. *)

val copy : t -> t
(** [copy t] duplicates the state; the copy evolves independently. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t].  Streams from
    split generators are statistically independent. *)

val next_int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val unit_float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed value with the given mean; used for simulated
    service and inter-arrival times. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val hash64 : int64 -> int64
(** The SplitMix64 finalizer as a stateless 64-bit mixing function.  Used to
    derive canonical treap priorities and scrambled key spaces. *)
