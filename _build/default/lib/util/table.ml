type t = {
  title : string;
  columns : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row: expected %d cells, got %d"
         (List.length t.columns) (List.length cells));
  t.rows <- cells :: t.rows

let add_rowf t fmt =
  Printf.ksprintf
    (fun s -> add_row t (String.split_on_char '|' s |> List.map String.trim))
    fmt

let print t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      t.columns
  in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let line cells =
    String.concat "  " (List.map2 pad cells widths)
  in
  print_newline ();
  Printf.printf "== %s ==\n" t.title;
  print_endline (line t.columns);
  print_endline
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> print_endline (line row)) rows

let cell_float f =
  if Float.abs f >= 1000.0 then Printf.sprintf "%.0f" f
  else if Float.abs f >= 10.0 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.3f" f

let cell_int = string_of_int
