(** CRC-32 (IEEE 802.3 polynomial) over byte ranges.

    Used to checksum intention blocks so that a corrupted or torn log page is
    detected at deserialization time rather than silently melded. *)

val digest : Bytes.t -> pos:int -> len:int -> int32
(** Checksum of [len] bytes of [b] starting at [pos]. *)

val digest_string : string -> int32
