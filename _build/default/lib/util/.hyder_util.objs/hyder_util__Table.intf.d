lib/util/table.mli:
