lib/util/wire.ml: Bytes Char Int64 String
