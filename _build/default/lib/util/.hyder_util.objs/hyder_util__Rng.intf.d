lib/util/rng.mli:
