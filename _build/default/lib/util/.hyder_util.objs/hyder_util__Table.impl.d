lib/util/table.ml: Float List Printf String
