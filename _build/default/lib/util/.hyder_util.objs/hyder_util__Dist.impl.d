lib/util/dist.ml: Float Int64 Printf Rng
