lib/util/wire.mli: Bytes
