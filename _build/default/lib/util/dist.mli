(** Key-selection distributions for workload generation.

    These mirror the generators of the Yahoo! Cloud Serving Benchmark (YCSB)
    that the paper's workload generator was adapted from (Section 6.1), plus
    the hotspot distribution of Section 6.4.5. *)

type t
(** A sampler over the integer key space [\[0, n)]. *)

val uniform : n:int -> t
(** Every key equally likely. *)

val zipfian : ?theta:float -> n:int -> unit -> t
(** YCSB Zipfian: popularity rank follows a Zipf law with exponent [theta]
    (default 0.99).  Low-numbered keys are hottest. *)

val scrambled_zipfian : ?theta:float -> n:int -> unit -> t
(** Zipfian popularity, but hot keys are scattered over the whole key space
    by a 64-bit hash, as in YCSB's ScrambledZipfianGenerator. *)

val hotspot : x:float -> n:int -> t
(** The Section 6.4.5 hotspot: fraction [x] of the data items receives
    fraction [1 - x] of the accesses.  [x = 1.0] degenerates to uniform. *)

val latest : n:int -> t
(** Skewed towards the most recently inserted keys (YCSB "latest"): key
    [max - z] where [z] is Zipfian.  [set_max] moves the insertion front. *)

val set_max : t -> int -> unit
(** For [latest]: record that keys [\[0, max)] now exist.  Ignored by other
    distributions. *)

val sample : t -> Rng.t -> int
(** Draw a key. *)

val name : t -> string
(** Human-readable name for reports. *)
