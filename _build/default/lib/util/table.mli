(** Fixed-width text tables: the benchmark harness prints every reproduced
    figure as one of these so the series can be compared with the paper. *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** Row cells; must match the column count. *)

val add_rowf : t -> ('a, unit, string, unit) format4 -> 'a
(** Convenience: a single preformatted row split on ['|']. *)

val print : t -> unit
(** Render to stdout with aligned columns and a rule under the header. *)

val cell_float : float -> string
(** Standard numeric formatting used across benches. *)

val cell_int : int -> string
