type t = Value of string | Tombstone

let value s = Value s
let tombstone = Tombstone
let is_tombstone = function Tombstone -> true | Value _ -> false

let equal a b =
  match (a, b) with
  | Tombstone, Tombstone -> true
  | Value x, Value y -> String.equal x y
  | Tombstone, Value _ | Value _, Tombstone -> false

let size = function Tombstone -> 0 | Value s -> String.length s

let pp fmt = function
  | Tombstone -> Format.pp_print_string fmt "<tombstone>"
  | Value s ->
      if String.length s <= 16 then Format.fprintf fmt "%S" s
      else Format.fprintf fmt "%S..(%d bytes)" (String.sub s 0 16) (String.length s)
