(** Tree nodes and their meld metadata.

    The representation is concrete (and shared with [hyder_core]) because
    meld, premeld and group meld are defined structurally over it.

    Metadata per node (Section 2 / Appendix A of the paper, recast in the
    content-version formulation described in DESIGN.md):

    - [vn]: this version's identity.
    - [cv]: the {e content version} — the VN of the version that first
      generated this node's payload.  Appendix A calls the same information
      SCV when talking about the source node; carrying it on every node
      makes the conflict rules uniform:  a dependent access of key [k]
      conflicts iff the LCS's [cv] for [k] differs from the [scv] the
      intention recorded.
    - [ssv]: source structure version — the VN of the same-key node in the
      state this node was derived from ([None] for a fresh insert).
    - [scv]: source content version — the [cv] of that same-key source node.
    - [altered]: the producing transaction changed the payload.
    - [depends_on_content]: the transaction read the payload and runs at an
      isolation level that validates reads (the paper's DependsOn flag).
    - [depends_on_structure]: the transaction depends on the whole subtree
      under this node being unchanged — used for range scans and reads of
      absent keys (phantom avoidance; the paper defers this metadata
      to [8]).
    - [owner]: log position of the intention this node belongs to, or
      [state_owner] for nodes of melded states (including genesis and
      ephemeral nodes created by final meld).  Meld uses it to decide
      whether a node is "inside" the intention being melded.
    - [has_writes]: subtree summary — true iff this node or any descendant
      {e belonging to the same intention} was altered or inserted.  Drives
      the Section 3.3 read-only-subtree rule. *)

type tree = Empty | Node of node

and node = {
  key : Key.t;
  payload : Payload.t;
  left : tree;
  right : tree;
  vn : Vn.t;
  cv : Vn.t;
  ssv : Vn.t option;
  scv : Vn.t option;
  altered : bool;
  depends_on_content : bool;
  depends_on_structure : bool;
  owner : int;
  has_writes : bool;
}

val state_owner : int
(** The [owner] value (-1) marking nodes that belong to a database state
    rather than to a pending intention. *)

val make :
  key:Key.t ->
  payload:Payload.t ->
  left:tree ->
  right:tree ->
  vn:Vn.t ->
  cv:Vn.t ->
  ssv:Vn.t option ->
  scv:Vn.t option ->
  altered:bool ->
  depends_on_content:bool ->
  depends_on_structure:bool ->
  owner:int ->
  node
(** Smart constructor; computes [has_writes] from the fields and the
    same-owner children. *)

val with_children : node -> left:tree -> right:tree -> vn:Vn.t -> node
(** Copy-on-write: same key/payload/metadata, new children and identity. *)

val size : tree -> int
(** Total nodes (including tombstones). *)

val live_size : tree -> int
(** Nodes whose payload is not a tombstone. *)

val depth : tree -> int

val pp : Format.formatter -> tree -> unit
(** Multi-line structural dump, for debugging and golden tests. *)
