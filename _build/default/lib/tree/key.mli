(** Database keys.

    Keys are 63-bit integers, as in the paper's YCSB-derived workloads
    (Section 6.1 uses 4-byte integer keys).  The canonical treap priority of
    a key is a stateless 64-bit hash of it, so the *shape* of the database
    tree is a pure function of the key set — the property the determinism of
    meld rests on in this implementation (see DESIGN.md §5). *)

type t = int

val compare : t -> t -> int
val equal : t -> t -> bool

val priority : t -> int64
(** Canonical treap priority.  Heap order compares [(priority, key)]
    lexicographically so ties are impossible. *)

val priority_greater : t -> t -> bool
(** [priority_greater a b] is true when [a] must sit above [b] in the
    canonical treap. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
