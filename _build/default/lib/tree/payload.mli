(** Node payloads.

    A deletion is represented as a tombstone payload rather than a structural
    removal: the node stays in the tree and reads treat the key as absent.
    This keeps meld a pure merge of canonical treaps (see DESIGN.md §2) while
    giving deletes the exact OCC semantics of writes. *)

type t =
  | Value of string
  | Tombstone

val value : string -> t
val tombstone : t

val is_tombstone : t -> bool
val equal : t -> t -> bool

val size : t -> int
(** Bytes the payload occupies when serialized (tombstones are 0). *)

val pp : Format.formatter -> t -> unit
