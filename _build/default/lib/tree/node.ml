type tree = Empty | Node of node

and node = {
  key : Key.t;
  payload : Payload.t;
  left : tree;
  right : tree;
  vn : Vn.t;
  cv : Vn.t;
  ssv : Vn.t option;
  scv : Vn.t option;
  altered : bool;
  depends_on_content : bool;
  depends_on_structure : bool;
  owner : int;
  has_writes : bool;
}

let state_owner = -1

let child_has_writes owner = function
  | Empty -> false
  | Node n -> n.owner = owner && n.has_writes

let make ~key ~payload ~left ~right ~vn ~cv ~ssv ~scv ~altered
    ~depends_on_content ~depends_on_structure ~owner =
  let has_writes =
    altered || ssv = None
    || child_has_writes owner left
    || child_has_writes owner right
  in
  {
    key;
    payload;
    left;
    right;
    vn;
    cv;
    ssv;
    scv;
    altered;
    depends_on_content;
    depends_on_structure;
    owner;
    has_writes;
  }

let with_children n ~left ~right ~vn =
  let has_writes =
    n.altered || n.ssv = None
    || child_has_writes n.owner left
    || child_has_writes n.owner right
  in
  { n with left; right; vn; has_writes }

let rec size = function
  | Empty -> 0
  | Node n -> 1 + size n.left + size n.right

let rec live_size = function
  | Empty -> 0
  | Node n ->
      (if Payload.is_tombstone n.payload then 0 else 1)
      + live_size n.left + live_size n.right

let rec depth = function
  | Empty -> 0
  | Node n -> 1 + max (depth n.left) (depth n.right)

let pp fmt tree =
  let rec go indent = function
    | Empty -> ()
    | Node n ->
        go (indent ^ "  ") n.right;
        Format.fprintf fmt "%s%a=%a vn=%a cv=%a%s%s%s own=%d@." indent Key.pp
          n.key Payload.pp n.payload Vn.pp n.vn Vn.pp n.cv
          (if n.altered then " W" else "")
          (if n.depends_on_content then " Rc" else "")
          (if n.depends_on_structure then " Rs" else "")
          n.owner;
        go (indent ^ "  ") n.left
  in
  go "" tree
