type t = int

let compare = Int.compare
let equal = Int.equal
let priority k = Hyder_util.Rng.hash64 (Int64.of_int k)

let priority_greater a b =
  let pa = priority a and pb = priority b in
  let c = Int64.unsigned_compare pa pb in
  if c <> 0 then c > 0 else a < b

let pp fmt k = Format.fprintf fmt "%d" k
let to_string = string_of_int
