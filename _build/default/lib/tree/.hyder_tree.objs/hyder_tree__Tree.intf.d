lib/tree/tree.mli: Key Node Payload Vn
