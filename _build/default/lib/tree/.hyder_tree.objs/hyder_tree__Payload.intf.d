lib/tree/payload.mli: Format
