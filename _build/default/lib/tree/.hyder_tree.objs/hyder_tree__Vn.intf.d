lib/tree/vn.mli: Format
