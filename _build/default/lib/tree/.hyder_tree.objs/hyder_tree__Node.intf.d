lib/tree/node.mli: Format Key Payload Vn
