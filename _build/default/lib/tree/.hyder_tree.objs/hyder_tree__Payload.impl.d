lib/tree/payload.ml: Format String
