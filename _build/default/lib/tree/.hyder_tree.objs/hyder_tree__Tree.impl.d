lib/tree/tree.ml: Array Key Node Option Payload Printf Vn
