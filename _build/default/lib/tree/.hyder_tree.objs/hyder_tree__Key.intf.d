lib/tree/key.mli: Format
