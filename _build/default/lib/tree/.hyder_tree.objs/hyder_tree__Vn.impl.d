lib/tree/vn.ml: Format Int
