lib/tree/node.ml: Format Key Payload Vn
