lib/tree/key.ml: Format Hyder_util Int Int64
