examples/quickstart.mli:
