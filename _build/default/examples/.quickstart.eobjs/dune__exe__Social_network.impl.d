examples/social_network.ml: Array Hyder_codec Hyder_core Hyder_tree Hyder_util List Payload Printf Tree
