examples/analytics_snapshot.mli:
