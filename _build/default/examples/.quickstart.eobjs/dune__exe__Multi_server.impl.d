examples/multi_server.ml: Array Fun Hashtbl Hyder_core Hyder_log Hyder_tree Hyder_util List Payload Printf Tree
