examples/quickstart.ml: Array Hyder_codec Hyder_core Hyder_tree List Payload Printf Tree
