examples/analytics_snapshot.ml: Array Hyder_core Hyder_tree Hyder_util List Option Payload Printf String Tree
