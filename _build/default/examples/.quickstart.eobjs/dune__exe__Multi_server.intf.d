examples/multi_server.mli:
