(* Snapshot analytics alongside a write-heavy OLTP stream.

   Queries in Hyder execute against an immutable snapshot — a log position —
   so they are never logged or melded and scale out freely (Section 1).
   This example runs range-scan analytics over an order table while
   concurrent transactions keep mutating it, and shows that each query sees
   a perfectly consistent frozen state.

   Run with: dune exec examples/analytics_snapshot.exe
*)

open Hyder_tree
module Local = Hyder_core.Local
module Executor = Hyder_core.Executor
module Pipeline = Hyder_core.Pipeline
module Rng = Hyder_util.Rng

(* Orders: key = order id, value = "<customer>:<amount>". *)
let orders = 5_000

let amount_of = function
  | Payload.Value v -> (
      match String.split_on_char ':' v with
      | [ _; a ] -> int_of_string a
      | _ -> 0)
  | Payload.Tombstone -> 0

let () =
  let rng = Rng.create 7L in
  let genesis =
    Tree.of_sorted_array
      (Array.init orders (fun id ->
           (id, Payload.value (Printf.sprintf "c%d:%d" (id mod 97) 100))))
  in
  let db = Local.create ~genesis () in

  (* The OLTP stream: each transaction moves value between two orders, so
     the GRAND TOTAL is invariant — any consistent snapshot sums to the
     same number; a torn read would not. *)
  let grand_total = orders * 100 in
  let mutate () =
    let a = Rng.int rng orders and b = Rng.int rng orders in
    if a <> b then
      ignore
        (Local.txn db (fun t ->
             let va = amount_of (Option.get (Executor.read t a)) in
             let vb = amount_of (Option.get (Executor.read t b)) in
             let delta = min va (Rng.int rng 20) in
             Executor.write t a (Printf.sprintf "c%d:%d" (a mod 97) (va - delta));
             Executor.write t b (Printf.sprintf "c%d:%d" (b mod 97) (vb + delta))))
  in

  (* The analytics query: a full scan via range reads on a frozen snapshot.
     Note it runs on `snapshot` captured once — mutations committed after
     that log position are invisible to it. *)
  let scan_total snapshot =
    let total = ref 0 in
    let chunk = 500 in
    let lo = ref 0 in
    while !lo < orders do
      List.iter
        (fun (_, p) -> total := !total + amount_of p)
        (Tree.range_items snapshot ~lo:!lo ~hi:(!lo + chunk - 1));
      lo := !lo + chunk
    done;
    !total
  in

  let queries = 20 in
  let consistent = ref 0 in
  for q = 1 to queries do
    (* Freeze a snapshot... *)
    let _, pos, snapshot = Local.lcs db in
    (* ...run 200 mutations "during" the query... *)
    for _ = 1 to 200 do
      mutate ()
    done;
    (* ...and scan the frozen snapshot interleaved with more mutations. *)
    let total = scan_total snapshot in
    for _ = 1 to 50 do
      mutate ()
    done;
    let total2 = scan_total snapshot in
    if total = grand_total && total2 = grand_total then incr consistent
    else
      Printf.printf "query %d: INCONSISTENT (%d then %d, expected %d)\n" q
        total total2 grand_total;
    ignore pos
  done;
  Printf.printf "%d/%d snapshot queries saw a consistent total of %d\n"
    !consistent queries grand_total;

  (* The current state has drifted from every snapshot, but still conserves
     the total. *)
  let _, _, live = Local.lcs db in
  Printf.printf "live state total: %d; live keys: %d\n" (scan_total live)
    (Tree.live_size live);
  let c = Local.counters db in
  Printf.printf
    "OLTP stream: %d committed, %d aborted; queries logged zero intentions\n"
    c.Hyder_core.Counters.committed c.Hyder_core.Counters.aborted
