(* The paper's motivating workload (Section 1): a friend-status relation.

   A social network's friend/status data cannot be partitioned well: if the
   relation is partitioned by user, a user's status must be visible to all
   friends, so a status change touches many partitions.  Hyder scales out
   WITHOUT partitioning: every server can run any transaction, and the
   shared log orders them.

   Key layout (one key space, no partitions):
     user u's status            -> key  u
     friendship edge (u, v)     -> key  EDGE_BASE + u * MAX_USERS + v

   Transactions:
     post_status u      : write u's status                  (1 write)
     read_timeline u    : read the statuses of u's friends  (serializable)
     befriend u v       : insert both edges transactionally

   Run with: dune exec examples/social_network.exe
*)

open Hyder_tree
module Local = Hyder_core.Local
module Executor = Hyder_core.Executor
module Pipeline = Hyder_core.Pipeline
module Rng = Hyder_util.Rng

let max_users = 1000
let edge_base = 1_000_000
let edge_key u v = edge_base + (u * max_users) + v

let () =
  let users = 200 in
  let rng = Rng.create 2024L in

  (* Genesis: every user has an empty status; no friendships yet. *)
  let genesis =
    Tree.of_sorted_array
      (Array.init users (fun u -> (u, Payload.value "(no status)")))
  in
  let db = Local.create ~config:Pipeline.with_premeld ~genesis () in

  (* Build a random friendship graph, two edges per transaction so the
     relation stays symmetric even under concurrency. *)
  let friends = Array.make users [] in
  let edges = ref 0 in
  for _ = 1 to 600 do
    let u = Rng.int rng users and v = Rng.int rng users in
    if u <> v && not (List.mem v friends.(u)) then begin
      let _, ds =
        Local.txn db (fun t ->
            Executor.write t (edge_key u v) "friend";
            Executor.write t (edge_key v u) "friend")
      in
      if List.for_all (fun d -> d.Pipeline.committed) ds then begin
        friends.(u) <- v :: friends.(u);
        friends.(v) <- u :: friends.(v);
        edges := !edges + 1
      end
    end
  done;
  Printf.printf "befriended: %d symmetric edges\n" !edges;

  (* Users post statuses while timelines are read concurrently.  Timeline
     reads are serializable: if a friend's status changes under a reader,
     the reader aborts rather than observing a torn timeline. *)
  let posts = ref 0 and timelines = ref 0 and aborted_timelines = ref 0 in
  for round = 1 to 500 do
    let u = Rng.int rng users in
    (* A reader starts on the current snapshot... *)
    let _, pos, snapshot = Local.lcs db in
    let reader =
      Executor.begin_txn ~snapshot_pos:pos ~snapshot ~server:0
        ~txn_seq:(10_000 + round)
        ~isolation:Hyder_codec.Intention.Serializable ()
    in
    let timeline =
      List.filter_map
        (fun f ->
          match Executor.read reader f with
          | Some (Payload.Value s) -> Some (f, s)
          | _ -> None)
        friends.(u)
    in
    ignore timeline;
    (* ...while a friend posts concurrently. *)
    let poster = Rng.int rng users in
    let _, _ =
      Local.txn db (fun t ->
          Executor.write t poster (Printf.sprintf "status #%d" round))
    in
    incr posts;
    (* The reader also bumps a read-marker so its readset is validated. *)
    Executor.write reader (edge_key u u) "timeline-read";
    (match Executor.finish reader with
    | Some draft ->
        let ds = Local.submit_draft db draft in
        incr timelines;
        if List.exists (fun d -> not d.Pipeline.committed) ds then begin
          incr aborted_timelines
          (* a friend posted mid-read: rerun on a fresh snapshot *)
        end
    | None -> incr timelines)
  done;
  ignore (Local.flush db);
  Printf.printf "posted %d statuses; %d timeline reads, %d re-run due to \
                 concurrent posts by friends\n"
    !posts !timelines !aborted_timelines;

  (* Verify the friendship relation stayed symmetric. *)
  let _, _, lcs = Local.lcs db in
  let asymmetric = ref 0 in
  for u = 0 to users - 1 do
    List.iter
      (fun v ->
        let uv = Tree.mem lcs (edge_key u v)
        and vu = Tree.mem lcs (edge_key v u) in
        if uv <> vu then incr asymmetric)
      friends.(u)
  done;
  Printf.printf "asymmetric edges in the committed state: %d\n" !asymmetric;
  let c = Local.counters db in
  Printf.printf "total: %d committed, %d aborted transactions\n"
    c.Hyder_core.Counters.committed c.Hyder_core.Counters.aborted
