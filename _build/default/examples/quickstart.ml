(* Quickstart: a single-process Hyder II database.

   Builds a small database, runs a few transactions through the full
   optimistic-concurrency-control path (execute -> intention -> meld), and
   shows how conflicts are detected.  Run with:

     dune exec examples/quickstart.exe
*)

open Hyder_tree
module Local = Hyder_core.Local
module Executor = Hyder_core.Executor
module Pipeline = Hyder_core.Pipeline
module Meld = Hyder_core.Meld

let () =
  (* 1. Load a genesis database: keys 0..999 with initial values. *)
  let genesis =
    Tree.of_sorted_array
      (Array.init 1000 (fun k -> (k, Payload.value (Printf.sprintf "init-%d" k))))
  in
  (* Premeld and group meld on, as in the optimized Hyder II pipeline. *)
  let db = Local.create ~config:Pipeline.with_premeld ~genesis () in

  (* 2. A simple read-write transaction. *)
  let balance, decisions =
    Local.txn db (fun t ->
        let v = Executor.read t 42 in
        Executor.write t 42 "updated-42";
        Executor.write t 43 "updated-43";
        v)
  in
  Printf.printf "read key 42 -> %s\n"
    (match balance with Some (Payload.Value v) -> v | _ -> "<absent>");
  List.iter
    (fun (d : Pipeline.decision) ->
      Printf.printf "transaction at log position %d: %s\n" d.Pipeline.pos
        (if d.Pipeline.committed then "COMMITTED" else "aborted"))
    decisions;

  (* 3. Read-only transactions run on a snapshot and are never logged. *)
  let v, ds = Local.txn db (fun t -> Executor.read t 42) in
  Printf.printf "snapshot read of 42 -> %s (logged %d intentions)\n"
    (match v with Some (Payload.Value v) -> v | _ -> "<absent>")
    (List.length ds);

  (* 4. Two concurrent transactions touching the same key: the one appended
     to the log first wins; meld aborts the other. *)
  let _, pos, snapshot = Local.lcs db in
  let t1 =
    Executor.begin_txn ~snapshot_pos:pos ~snapshot ~server:0 ~txn_seq:100
      ~isolation:Hyder_codec.Intention.Serializable ()
  and t2 =
    Executor.begin_txn ~snapshot_pos:pos ~snapshot ~server:0 ~txn_seq:101
      ~isolation:Hyder_codec.Intention.Serializable ()
  in
  Executor.write t1 7 "from-t1";
  Executor.write t2 7 "from-t2";
  let submit t =
    match Executor.finish t with
    | Some draft -> Local.submit_draft db draft
    | None -> []
  in
  let d1 = submit t1 and d2 = submit t2 in
  let outcome ds =
    match ds with
    | [ (d : Pipeline.decision) ] ->
        if d.Pipeline.committed then "committed"
        else
          Printf.sprintf "aborted (%s)"
            (match d.Pipeline.reason with
            | Some r -> Meld.abort_reason_to_string r
            | None -> "?")
    | _ -> "?"
  in
  Printf.printf "t1: %s\nt2: %s\n" (outcome d1) (outcome d2);
  let _, _, lcs = Local.lcs db in
  Printf.printf "key 7 is now %s\n"
    (match Tree.lookup lcs 7 with
    | Some (Payload.Value v) -> v
    | _ -> "<absent>");

  (* 5. Deletes are writes too (tombstones). *)
  let _, ds = Local.txn db (fun t -> Executor.delete t 42) in
  ignore ds;
  let _ = Local.flush db in
  let _, _, lcs = Local.lcs db in
  Printf.printf "key 42 after delete: %s\n"
    (match Tree.lookup lcs 42 with
    | Some (Payload.Value v) -> v
    | _ -> "<absent>");

  (* 6. Pipeline work counters. *)
  let c = Local.counters db in
  Printf.printf
    "pipeline: %d committed, %d aborted; final meld visited %d nodes, \
     created %d ephemeral nodes\n"
    c.Hyder_core.Counters.committed c.Hyder_core.Counters.aborted
    c.Hyder_core.Counters.final_meld.Hyder_core.Counters.nodes_visited
    c.Hyder_core.Counters.final_meld.Hyder_core.Counters.ephemerals
