(* Serializable money transfers with optimistic retry.

   Classic OCC demonstration on Hyder II: concurrent transfers between
   random accounts, each reading two balances and writing two.  Conflicting
   transfers abort at meld and are retried; the total balance is conserved
   exactly.

   Run with: dune exec examples/bank_transfer.exe
*)

open Hyder_tree
module Local = Hyder_core.Local
module Executor = Hyder_core.Executor
module Pipeline = Hyder_core.Pipeline
module Rng = Hyder_util.Rng

let accounts = 100
let initial_balance = 1_000

let balance_of = function
  | Some (Payload.Value v) -> int_of_string v
  | Some Payload.Tombstone | None -> failwith "missing account"

let () =
  let genesis =
    Tree.of_sorted_array
      (Array.init accounts (fun a -> (a, Payload.value (string_of_int initial_balance))))
  in
  let db = Local.create ~config:Pipeline.with_premeld ~genesis () in
  let rng = Rng.create 4242L in

  let transfers = 1_000 in
  let committed = ref 0 and retries = ref 0 and rejected = ref 0 in

  (* Two "clients" run concurrently: each round both start from the same
     snapshot, so transfers touching a common account conflict. *)
  let attempt ~src ~dst ~amount =
    let _, pos, snapshot = Local.lcs db in
    let t =
      Executor.begin_txn ~snapshot_pos:pos ~snapshot ~server:0
        ~txn_seq:(Rng.int rng 1_000_000)
        ~isolation:Hyder_codec.Intention.Serializable ()
    in
    let from_balance = balance_of (Executor.read t src) in
    let to_balance = balance_of (Executor.read t dst) in
    if from_balance < amount then begin
      incr rejected;
      ignore (Executor.finish t);
      `Rejected
    end
    else begin
      Executor.write t src (string_of_int (from_balance - amount));
      Executor.write t dst (string_of_int (to_balance + amount));
      match Executor.finish t with
      | None -> `Rejected
      | Some draft -> (
          match Local.submit_draft db draft with
          | [ d ] when d.Pipeline.committed -> `Committed
          | _ -> `Aborted)
    end
  in
  let rec transfer_with_retry ~src ~dst ~amount attempts =
    match attempt ~src ~dst ~amount with
    | `Committed -> incr committed
    | `Rejected -> ()
    | `Aborted ->
        incr retries;
        if attempts < 10 then transfer_with_retry ~src ~dst ~amount (attempts + 1)
  in
  for _ = 1 to transfers / 2 do
    (* Round: two concurrent transfers from the same snapshot. *)
    let pick () = (Rng.int rng accounts, Rng.int rng accounts) in
    let s1, d1 = pick () and s2, d2 = pick () in
    let amount () = 1 + Rng.int rng 50 in
    if s1 <> d1 then begin
      let a1 = amount () and a2 = amount () in
      (* Start both on the same snapshot to force real concurrency. *)
      let _, pos, snapshot = Local.lcs db in
      let t1 =
        Executor.begin_txn ~snapshot_pos:pos ~snapshot ~server:0 ~txn_seq:1
          ~isolation:Hyder_codec.Intention.Serializable ()
      and t2 =
        Executor.begin_txn ~snapshot_pos:pos ~snapshot ~server:0 ~txn_seq:2
          ~isolation:Hyder_codec.Intention.Serializable ()
      in
      let run t src dst amt =
        let fb = balance_of (Executor.read t src) in
        let tb = balance_of (Executor.read t dst) in
        if fb >= amt && src <> dst then begin
          Executor.write t src (string_of_int (fb - amt));
          Executor.write t dst (string_of_int (tb + amt));
          true
        end
        else false
      in
      let ok1 = run t1 s1 d1 a1 and ok2 = run t2 s2 d2 a2 in
      let submit ok t =
        if ok then
          match Executor.finish t with
          | Some draft ->
              List.for_all
                (fun (d : Pipeline.decision) -> d.Pipeline.committed)
                (Local.submit_draft db draft)
          | None -> false
        else begin
          ignore (Executor.finish t);
          false
        end
      in
      if submit ok1 t1 then incr committed;
      (* The second transfer conflicts whenever it shares an account with
         the first; retry it on a fresh snapshot. *)
      if ok2 then begin
        if submit true t2 then incr committed
        else if s2 <> d2 then transfer_with_retry ~src:s2 ~dst:d2 ~amount:a2 1
      end
    end
  done;
  ignore (Local.flush db);

  (* Invariant: money is conserved. *)
  let _, _, lcs = Local.lcs db in
  let total = ref 0 in
  for a = 0 to accounts - 1 do
    total := !total + balance_of (Tree.lookup lcs a)
  done;
  Printf.printf "transfers committed: %d (retried %d, rejected-insufficient %d)\n"
    !committed !retries !rejected;
  Printf.printf "total balance: %d (expected %d) -- %s\n" !total
    (accounts * initial_balance)
    (if !total = accounts * initial_balance then "CONSERVED" else "VIOLATED!");
  let c = Local.counters db in
  Printf.printf "meld decisions: %d commits, %d aborts\n"
    c.Hyder_core.Counters.committed c.Hyder_core.Counters.aborted
