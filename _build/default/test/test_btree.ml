(* Copy-on-write B-tree baseline (the rejected index design of Section 2). *)
module B = Hyder_baselines.Cow_btree
module Rng = Hyder_util.Rng
module I = Hyder_codec.Intention
open Hyder_tree

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let load n = Array.init n (fun k -> (k * 2, "v" ^ string_of_int (k * 2)))

let test_bulk_load_and_lookup () =
  let t = B.create ~fanout:8 (load 1000) in
  (match B.validate t with Ok () -> () | Error e -> Alcotest.failf "invalid: %s" e);
  check_int "size" 1000 (B.size t);
  for k = 0 to 999 do
    Alcotest.(check (option string))
      "present" (Some ("v" ^ string_of_int (k * 2)))
      (B.lookup t (k * 2));
    check "absent between" true (B.lookup t ((k * 2) + 1) = None)
  done;
  check "depth much smaller than binary" true (B.depth t <= 5)

let test_update_cow () =
  let t0 = B.create ~fanout:16 (load 500) in
  let t1, stats = B.update t0 100 "updated" in
  Alcotest.(check (option string)) "new value" (Some "updated") (B.lookup t1 100);
  Alcotest.(check (option string)) "old tree untouched" (Some "v100")
    (B.lookup t0 100);
  check_int "path-depth nodes copied" (B.depth t0) stats.B.nodes_copied;
  check "bytes accounted" true (stats.B.bytes_copied > 0);
  check "still valid" true (Result.is_ok (B.validate t1))

let test_update_missing_raises () =
  let t = B.create ~fanout:8 (load 100) in
  Alcotest.check_raises "not found" Not_found (fun () ->
      ignore (B.update t 1 "nope"))

let test_insert_with_splits () =
  let t = ref (B.create ~fanout:4 (load 4)) in
  for k = 0 to 199 do
    let key = (k * 2) + 1 in
    let t', _ = B.insert !t key ("i" ^ string_of_int key) in
    t := t'
  done;
  check_int "grown" 204 (B.size !t);
  (match B.validate !t with Ok () -> () | Error e -> Alcotest.failf "invalid: %s" e);
  check "depth grew via root splits" true (B.depth !t > 2);
  for k = 0 to 199 do
    check "inserted key present" true (B.mem !t ((k * 2) + 1))
  done

let test_insert_duplicate_rejected () =
  let t = B.create ~fanout:8 (load 10) in
  try
    ignore (B.insert t 4 "dup");
    Alcotest.fail "expected rejection"
  with Invalid_argument _ -> ()

let prop_model_agreement =
  QCheck2.Test.make ~name:"btree agrees with Map model" ~count:100
    QCheck2.Gen.(pair (int_range 4 32) (list_size (int_range 1 150) (int_bound 2000)))
    (fun (fanout, keys) ->
      let module M = Map.Make (Int) in
      let t = ref (B.create ~fanout (load 50)) in
      let model =
        ref (Array.fold_left (fun m (k, v) -> M.add k v m) M.empty (load 50))
      in
      List.iter
        (fun k ->
          let v = "x" ^ string_of_int k in
          if M.mem k !model then begin
            let t', _ = B.update !t k v in
            t := t'
          end
          else begin
            let t', _ = B.insert !t k v in
            t := t'
          end;
          model := M.add k v !model)
        keys;
      Result.is_ok (B.validate !t)
      && M.bindings !model = B.to_alist !t)

let test_btree_intentions_bigger_than_binary () =
  (* The Section 2 design argument: under copy-on-write, per-update bytes
     are far larger with a B-tree than with a binary tree. *)
  let n = 50_000 in
  let items = Array.init n (fun k -> (k, "0123456789abcdef" (* 16B *))) in
  let btree = B.create ~fanout:64 items in
  let treap =
    Tree.of_sorted_array
      (Array.map (fun (k, v) -> (k, Payload.value v)) items)
  in
  let rng = Rng.create 4L in
  let b_bytes = ref 0 and t_bytes = ref 0 in
  let c = ref 0 in
  let fresh () = incr c; I.draft_vn ~idx:!c in
  for _ = 1 to 200 do
    let k = Rng.int rng n in
    let _, stats = B.update btree k "new-value-xxxxxx" in
    b_bytes := !b_bytes + stats.B.bytes_copied;
    (* binary-tree copied path: nodes on the search path, ~40B each + value *)
    let path = Tree.path_length treap k in
    t_bytes := !t_bytes + (path * 40) + 16;
    ignore (Tree.upsert treap ~owner:I.draft_owner ~fresh k (Payload.value "new-value-xxxxxx"))
  done;
  check
    (Printf.sprintf "B-tree copies more bytes per update (%d vs %d)" !b_bytes
       !t_bytes)
    true
    (!b_bytes > !t_bytes)

let () =
  Alcotest.run "btree"
    [
      ( "cow-btree",
        [
          Alcotest.test_case "bulk load" `Quick test_bulk_load_and_lookup;
          Alcotest.test_case "update CoW" `Quick test_update_cow;
          Alcotest.test_case "update missing" `Quick test_update_missing_raises;
          Alcotest.test_case "insert splits" `Quick test_insert_with_splits;
          Alcotest.test_case "duplicate insert" `Quick
            test_insert_duplicate_rejected;
          Alcotest.test_case "design argument" `Quick
            test_btree_intentions_bigger_than_binary;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_model_agreement ] );
    ]
