test/test_workload.ml: Alcotest Hyder_codec Hyder_core Hyder_tree Hyder_workload List Payload String Tree
