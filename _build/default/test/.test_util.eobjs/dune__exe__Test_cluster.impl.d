test/test_cluster.ml: Alcotest Hyder_cluster Hyder_codec Hyder_core Hyder_workload List Printf
