test/test_core_units.ml: Alcotest Array Gc Helpers Hyder_codec Hyder_core Hyder_tree List Node Option Payload Tree Vn
