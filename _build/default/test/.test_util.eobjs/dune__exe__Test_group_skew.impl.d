test/test_group_skew.ml: Alcotest Helpers Hyder_codec Hyder_core Hyder_tree List Option Payload Tree
