test/test_meld.mli:
