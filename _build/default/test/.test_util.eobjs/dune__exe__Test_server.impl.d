test/test_server.ml: Alcotest Array Hashtbl Helpers Hyder_codec Hyder_core Hyder_log Hyder_tree Hyder_util List Option Payload Printf String Tree
