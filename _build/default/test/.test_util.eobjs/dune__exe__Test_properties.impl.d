test/test_properties.ml: Alcotest Array Bytes Char Hashtbl Helpers Hyder_codec Hyder_core Hyder_tree Hyder_util Int Int64 List Option Payload Printf QCheck2 QCheck_alcotest Result String Tree
