test/test_log.ml: Alcotest Array Hyder_log Hyder_sim Hyder_util List Printf String
