test/test_tree.ml: Alcotest Array Helpers Hyder_codec Hyder_tree Hyder_util Int Int64 List Map Node Option Payload Printf QCheck2 QCheck_alcotest String Tree
