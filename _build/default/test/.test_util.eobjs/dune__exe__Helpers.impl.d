test/helpers.ml: Alcotest Array Format Hyder_codec Hyder_core Hyder_tree List Node Payload Printf String Tree
