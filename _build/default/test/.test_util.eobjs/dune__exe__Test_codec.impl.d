test/test_codec.ml: Alcotest Bytes Char Helpers Hyder_codec Hyder_core Hyder_tree List Node Printf QCheck2 QCheck_alcotest String Tree
