test/test_admission.ml: Alcotest Hyder_cluster Hyder_workload Printf
