test/test_btree.ml: Alcotest Array Hyder_baselines Hyder_codec Hyder_tree Hyder_util Int List Map Payload Printf QCheck2 QCheck_alcotest Result Tree
