test/test_baselines.ml: Alcotest Array Hyder_baselines Hyder_workload Printf
