test/test_isolation.mli:
