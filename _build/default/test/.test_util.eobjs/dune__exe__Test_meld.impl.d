test/test_meld.ml: Alcotest Hashtbl Helpers Hyder_codec Hyder_core Hyder_tree Hyder_util List Printf Tree
