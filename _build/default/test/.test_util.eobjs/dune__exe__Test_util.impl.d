test/test_util.ml: Alcotest Array Hashtbl Hyder_util Int32 Int64 List Option Printf QCheck2 QCheck_alcotest
