test/test_admission.mli:
