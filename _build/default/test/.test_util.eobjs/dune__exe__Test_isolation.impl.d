test/test_isolation.ml: Alcotest Helpers Hyder_codec Hyder_core Hyder_tree Hyder_util List Payload Tree
