test/test_group_skew.mli:
