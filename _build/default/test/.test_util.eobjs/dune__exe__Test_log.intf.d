test/test_log.mli:
