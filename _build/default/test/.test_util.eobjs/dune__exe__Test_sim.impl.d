test/test_sim.ml: Alcotest Hyder_sim Hyder_util List Printf
