test/test_pipeline.ml: Alcotest Array Hashtbl Helpers Hyder_codec Hyder_core Hyder_tree Hyder_util Int Int64 Key List Printf Tree
