module Engine = Hyder_sim.Engine
module Resource = Hyder_sim.Resource

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let test_event_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:3.0 (fun () -> log := "c" :: !log);
  Engine.schedule e ~delay:1.0 (fun () -> log := "a" :: !log);
  Engine.schedule e ~delay:2.0 (fun () -> log := "b" :: !log);
  Engine.run e;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  check_float "clock at last event" 3.0 (Engine.now e)

let test_tie_break_by_insertion () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "insertion order on ties"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (List.rev !log)

let test_nested_scheduling () =
  let e = Engine.create () in
  let hits = ref [] in
  Engine.schedule e ~delay:1.0 (fun () ->
      hits := Engine.now e :: !hits;
      Engine.schedule e ~delay:0.5 (fun () -> hits := Engine.now e :: !hits));
  Engine.run e;
  (match List.rev !hits with
  | [ a; b ] ->
      check_float "first" 1.0 a;
      check_float "nested" 1.5 b
  | _ -> Alcotest.fail "expected two events");
  check_int "drained" 0 (Engine.pending e)

let test_run_until () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Engine.schedule e ~delay:(float_of_int i) (fun () -> incr count)
  done;
  Engine.run ~until:5.5 e;
  check_int "five fired" 5 !count;
  check_int "five left" 5 (Engine.pending e);
  check_float "clock clamped" 5.5 (Engine.now e);
  Engine.run e;
  check_int "all fired" 10 !count

let test_negative_delay_clamped () =
  let e = Engine.create () in
  Engine.schedule e ~delay:5.0 (fun () ->
      Engine.schedule e ~delay:(-3.0) (fun () ->
          check_float "fires now, not in the past" 5.0 (Engine.now e)));
  Engine.run e

let test_many_events_heap () =
  let e = Engine.create () in
  let rng = Hyder_util.Rng.create 1L in
  let last = ref 0.0 in
  let n = 20_000 in
  for _ = 1 to n do
    Engine.schedule e ~delay:(Hyder_util.Rng.float rng 100.0) (fun () ->
        check "monotone clock" true (Engine.now e >= !last);
        last := Engine.now e)
  done;
  Engine.run e;
  check_int "all drained" 0 (Engine.pending e)

(* --- resource ----------------------------------------------------------- *)

let test_single_server_fifo () =
  let e = Engine.create () in
  let r = Resource.create e ~servers:1 in
  let done_at = ref [] in
  for _ = 1 to 3 do
    Resource.request r ~service_time:2.0 (fun () ->
        done_at := Engine.now e :: !done_at)
  done;
  check_int "two queued" 2 (Resource.queue_length r);
  Engine.run e;
  Alcotest.(check (list (float 1e-9))) "serialized" [ 2.0; 4.0; 6.0 ]
    (List.rev !done_at);
  check_int "completed" 3 (Resource.completed r);
  check_float "busy time" 6.0 (Resource.busy_time r)

let test_parallel_servers () =
  let e = Engine.create () in
  let r = Resource.create e ~servers:3 in
  let done_at = ref [] in
  for _ = 1 to 6 do
    Resource.request r ~service_time:1.0 (fun () ->
        done_at := Engine.now e :: !done_at)
  done;
  Engine.run e;
  Alcotest.(check (list (float 1e-9))) "3-wide batches"
    [ 1.0; 1.0; 1.0; 2.0; 2.0; 2.0 ] (List.rev !done_at)

let test_resource_utilization () =
  let e = Engine.create () in
  let r = Resource.create e ~servers:2 in
  for _ = 1 to 10 do
    Resource.request r ~service_time:1.0 ignore
  done;
  Engine.run e;
  (* 10 unit-seconds over 2 servers -> finishes at t=5. *)
  check_float "clock" 5.0 (Engine.now e);
  check_float "busy" 10.0 (Resource.busy_time r)

let test_mmc_queueing_matches_theory () =
  (* M/M/1 with rho = 0.5: mean number in system = rho/(1-rho) = 1, so mean
     sojourn time = 1/(mu - lambda).  Check within 10%. *)
  let e = Engine.create () in
  let r = Resource.create e ~servers:1 in
  let rng = Hyder_util.Rng.create 99L in
  let lambda = 0.5 and mu = 1.0 in
  let sojourn = Hyder_util.Stats.Summary.create () in
  let rec arrival t_arr n =
    if n > 0 then begin
      Engine.schedule_at e ~time:t_arr (fun () ->
          let started = Engine.now e in
          Resource.request r
            ~service_time:(Hyder_util.Rng.exponential rng ~mean:(1.0 /. mu))
            (fun () ->
              Hyder_util.Stats.Summary.add sojourn (Engine.now e -. started)));
      arrival (t_arr +. Hyder_util.Rng.exponential rng ~mean:(1.0 /. lambda))
        (n - 1)
    end
  in
  arrival 0.0 50_000;
  Engine.run e;
  let mean = Hyder_util.Stats.Summary.mean sojourn in
  let expected = 1.0 /. (mu -. lambda) in
  check
    (Printf.sprintf "M/M/1 sojourn %.3f vs %.3f" mean expected)
    true
    (abs_float (mean -. expected) /. expected < 0.1)

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "event order" `Quick test_event_order;
          Alcotest.test_case "tie break" `Quick test_tie_break_by_insertion;
          Alcotest.test_case "nested" `Quick test_nested_scheduling;
          Alcotest.test_case "run until" `Quick test_run_until;
          Alcotest.test_case "negative delay" `Quick
            test_negative_delay_clamped;
          Alcotest.test_case "many events" `Quick test_many_events_heap;
        ] );
      ( "resource",
        [
          Alcotest.test_case "fifo" `Quick test_single_server_fifo;
          Alcotest.test_case "parallel" `Quick test_parallel_servers;
          Alcotest.test_case "utilization" `Quick test_resource_utilization;
          Alcotest.test_case "M/M/1 theory" `Slow
            test_mmc_queueing_matches_theory;
        ] );
    ]
