module Tango = Hyder_baselines.Tango
module Inmem = Hyder_baselines.Inmem_hyder
module Ycsb = Hyder_workload.Ycsb

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let store () = Tango.create ~genesis:(Array.init 100 (fun k -> (k, "v" ^ string_of_int k)))

let test_tango_read_write () =
  let s = store () in
  let t = Tango.Txn.begin_ s in
  Alcotest.(check (option string)) "read" (Some "v5") (Tango.Txn.read t 5);
  Tango.Txn.write t 5 "new";
  Alcotest.(check (option string)) "read own write" (Some "new")
    (Tango.Txn.read t 5);
  let e = Tango.Txn.finish t in
  check "applies cleanly" true (Tango.apply s e);
  Alcotest.(check (option string)) "installed" (Some "new") (Tango.lookup s 5)

let test_tango_conflict_detection () =
  let s = store () in
  (* two concurrent txns, both read-modify-write key 7 *)
  let t1 = Tango.Txn.begin_ s and t2 = Tango.Txn.begin_ s in
  ignore (Tango.Txn.read t1 7);
  ignore (Tango.Txn.read t2 7);
  Tango.Txn.write t1 7 "one";
  Tango.Txn.write t2 7 "two";
  let e1 = Tango.Txn.finish t1 and e2 = Tango.Txn.finish t2 in
  check "first commits" true (Tango.apply s e1);
  check "second aborts" false (Tango.apply s e2);
  Alcotest.(check (option string)) "first wins" (Some "one") (Tango.lookup s 7)

let test_tango_blind_writes_dont_conflict () =
  let s = store () in
  let t1 = Tango.Txn.begin_ s and t2 = Tango.Txn.begin_ s in
  Tango.Txn.write t1 7 "one";
  Tango.Txn.write t2 7 "two";
  check "both blind writes commit" true
    (Tango.apply s (Tango.Txn.finish t1) && Tango.apply s (Tango.Txn.finish t2));
  Alcotest.(check (option string)) "last wins" (Some "two") (Tango.lookup s 7)

let test_tango_absent_key_read_validated () =
  let s = store () in
  let t1 = Tango.Txn.begin_ s and t2 = Tango.Txn.begin_ s in
  check "absent" true (Tango.Txn.read t1 999 = None);
  Tango.Txn.write t1 50 "acted-on-absence";
  Tango.Txn.write t2 999 "now present";
  check "inserter commits" true (Tango.apply s (Tango.Txn.finish t2));
  check "reader aborts" false (Tango.apply s (Tango.Txn.finish t1))

let test_tango_counters () =
  let s = store () in
  let t = Tango.Txn.begin_ s in
  Tango.Txn.write t 1 "x";
  ignore (Tango.apply s (Tango.Txn.finish t));
  check_int "applied" 1 (Tango.applied s);
  check_int "committed" 1 (Tango.committed s);
  check_int "size" 100 (Tango.size s);
  let t = Tango.Txn.begin_ s in
  Tango.Txn.write t 500 "new-key";
  ignore (Tango.apply s (Tango.Txn.finish t));
  check_int "insert grows" 101 (Tango.size s)

let test_tango_entry_size () =
  let s = store () in
  let t = Tango.Txn.begin_ s in
  ignore (Tango.Txn.read t 1);
  Tango.Txn.write t 2 "abcdef";
  let e = Tango.Txn.finish t in
  check "encoded size positive and small" true
    (Tango.encoded_size e > 5 && Tango.encoded_size e < 100)

let test_inmem_hyder_runs () =
  let workload =
    { Ycsb.default with Ycsb.record_count = 5_000; payload_size = 32 }
  in
  let r = Inmem.run ~txns:2_000 ~zone_cap:64 ~workload () in
  check "meld time positive" true (r.Inmem.meld_us > 0.0);
  check "tps sane" true (r.Inmem.meld_bound_tps > 1_000.0);
  check "some nodes visited" true (r.Inmem.fm_nodes_per_txn > 1.0);
  check "abort rate small" true (r.Inmem.abort_rate < 0.3)

let test_inmem_hyder_zone_sensitivity () =
  let workload =
    { Ycsb.default with Ycsb.record_count = 5_000; payload_size = 32 }
  in
  let small = Inmem.run ~txns:2_000 ~zone_cap:8 ~workload () in
  let large = Inmem.run ~txns:2_000 ~zone_cap:512 ~workload () in
  check
    (Printf.sprintf "bigger zone, more meld work (%.1f vs %.1f)"
       small.Inmem.fm_nodes_per_txn large.Inmem.fm_nodes_per_txn)
    true
    (large.Inmem.fm_nodes_per_txn > small.Inmem.fm_nodes_per_txn)

let () =
  Alcotest.run "baselines"
    [
      ( "tango",
        [
          Alcotest.test_case "read/write" `Quick test_tango_read_write;
          Alcotest.test_case "conflicts" `Quick test_tango_conflict_detection;
          Alcotest.test_case "blind writes" `Quick
            test_tango_blind_writes_dont_conflict;
          Alcotest.test_case "absent reads" `Quick
            test_tango_absent_key_read_validated;
          Alcotest.test_case "counters" `Quick test_tango_counters;
          Alcotest.test_case "entry size" `Quick test_tango_entry_size;
        ] );
      ( "in-memory hyder",
        [
          Alcotest.test_case "runs" `Quick test_inmem_hyder_runs;
          Alcotest.test_case "zone sensitivity" `Quick
            test_inmem_hyder_zone_sensitivity;
        ] );
    ]
