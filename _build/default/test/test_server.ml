(* Multi-server integration: the architecture's core claim.

   Several servers share one log.  Each runs its own meld pipeline over the
   same block sequence.  Whatever the interleaving of transaction execution
   (including stale snapshots, because servers only advance as they observe
   blocks), all servers must make identical commit/abort decisions and
   converge to PHYSICALLY identical states (Section 3.4). *)

open Hyder_tree
module Server = Hyder_core.Server
module Executor = Hyder_core.Executor
module Pipeline = Hyder_core.Pipeline
module Mem_log = Hyder_log.Mem_log
module Rng = Hyder_util.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A tiny deployment: [n] servers, one shared in-memory log, and a pump
   that delivers appended blocks to every server in log order. *)
type deployment = {
  servers : Server.t array;
  log : Mem_log.t;
  mutable delivered : int;
  decisions : (int * int, Server.outcome) Hashtbl.t;  (* (server, txn_seq) *)
}

let deploy ?(config = Pipeline.plain) n ~genesis_size =
  let genesis = Helpers.genesis ~gap:10 genesis_size in
  let servers =
    Array.init n (fun server_id ->
        Server.create ~config ~block_size:512 ~server_id ~genesis ())
  in
  let d =
    {
      servers;
      log = Mem_log.create ~block_size:512 ();
      delivered = 0;
      decisions = Hashtbl.create 64;
    }
  in
  Array.iter
    (fun s ->
      Server.on_decision s (fun ~txn_seq outcome ->
          Hashtbl.replace d.decisions (Server.server_id s, txn_seq) outcome))
    servers;
  d

let append_blocks d blocks =
  List.iter (fun b -> ignore (Mem_log.append d.log b)) blocks

(* Deliver every not-yet-delivered block to every server; decisions must
   agree across servers. *)
let pump d =
  let len = Mem_log.length d.log in
  for pos = d.delivered to len - 1 do
    let block = Mem_log.read d.log pos in
    let all =
      Array.map (fun s -> Server.observe_block s ~pos block) d.servers
    in
    (* Every server sees the same decisions, in the same order. *)
    Array.iter
      (fun ds ->
        let strip =
          List.map
            (fun (x : Pipeline.decision) ->
              (x.Pipeline.seq, x.Pipeline.pos, x.Pipeline.committed))
            ds
        in
        let strip0 =
          List.map
            (fun (x : Pipeline.decision) ->
              (x.Pipeline.seq, x.Pipeline.pos, x.Pipeline.committed))
            all.(0)
        in
        check "identical decisions across servers" true (strip = strip0))
      all
  done;
  d.delivered <- len

let assert_converged d =
  let _, _, s0 = Server.lcs d.servers.(0) in
  Array.iter
    (fun s ->
      let _, _, t = Server.lcs s in
      check "physically identical LCS" true (Tree.physically_equal s0 t))
    d.servers

let test_two_servers_sequential () =
  let d = deploy 2 ~genesis_size:100 in
  for i = 0 to 19 do
    let s = d.servers.(i mod 2) in
    let _, r = Server.txn s (fun e -> Executor.write e (i * 10) "x") in
    (match r with
    | Some (_, blocks) -> append_blocks d blocks
    | None -> Alcotest.fail "expected blocks");
    pump d
  done;
  assert_converged d;
  check_int "all delivered decisions" 20 (Hashtbl.length d.decisions);
  Hashtbl.iter
    (fun _ outcome -> check "all commit" true (outcome = Server.Committed))
    d.decisions

let test_conflicting_concurrent_servers () =
  let d = deploy 3 ~genesis_size:100 in
  (* All three servers update the same key before any block circulates:
     genuine cross-server conflict; exactly one can win. *)
  let pending =
    Array.to_list
      (Array.map
         (fun s ->
           let _, r =
             Server.txn s (fun e ->
                 ignore (Executor.read e 50);
                 Executor.write e 50 (Printf.sprintf "from-%d" (Server.server_id s)))
           in
           Option.get r)
         d.servers)
  in
  List.iter (fun (_, blocks) -> append_blocks d blocks) pending;
  pump d;
  assert_converged d;
  let outcomes = Hashtbl.fold (fun _ o acc -> o :: acc) d.decisions [] in
  check_int "three decisions" 3 (List.length outcomes);
  check_int "exactly one winner" 1
    (List.length (List.filter (fun o -> o = Server.Committed) outcomes));
  let _, _, lcs = Server.lcs d.servers.(0) in
  match Tree.lookup lcs 50 with
  | Some (Payload.Value v) ->
      check "winner's value installed" true
        (String.length v > 5 && String.sub v 0 5 = "from-")
  | _ -> Alcotest.fail "key 50 lost"

let test_random_multi_server_convergence () =
  List.iter
    (fun config ->
      let d = deploy ~config 4 ~genesis_size:200 in
      let rng = Rng.create 77L in
      let buffered = ref [] in
      for round = 1 to 120 do
        (* each round: 1-4 concurrent txns on random servers, then blocks hit
           the log in a random order of transactions (blocks of one txn stay
           ordered), and only sometimes get pumped (so snapshots go stale) *)
        let txns = 1 + Rng.int rng 4 in
        for _ = 1 to txns do
          let s = d.servers.(Rng.int rng 4) in
          let _, r =
            Server.txn s
              ~isolation:
                (if Rng.int rng 4 = 0 then
                   Hyder_codec.Intention.Snapshot_isolation
                 else Hyder_codec.Intention.Serializable)
              (fun e ->
                for _ = 1 to 1 + Rng.int rng 3 do
                  let k = 10 * Rng.int rng 250 in
                  if Rng.bool rng then ignore (Executor.read e k)
                  else Executor.write e k (Printf.sprintf "r%d" round)
                done;
                (* guarantee a write so the txn is logged *)
                Executor.write e (10 * Rng.int rng 250) "w")
          in
          match r with
          | Some (_, blocks) -> buffered := blocks :: !buffered
          | None -> ()
        done;
        (* shuffle transaction order into the log *)
        let batch = Array.of_list !buffered in
        buffered := [];
        Rng.shuffle rng batch;
        Array.iter (fun blocks -> append_blocks d blocks) batch;
        if Rng.int rng 3 <> 0 then pump d
      done;
      pump d;
      assert_converged d;
      (* sanity: a decent number of both outcomes occurred *)
      let outcomes = Hashtbl.fold (fun _ o acc -> o :: acc) d.decisions [] in
      check "many decisions" true (List.length outcomes > 200))
    [ Pipeline.plain; Pipeline.with_premeld; Pipeline.with_both ]

let test_interleaved_multiblock_intentions () =
  (* Big payloads force multi-block intentions; blocks from different
     servers interleave in the log and must reassemble correctly. *)
  let d = deploy 2 ~genesis_size:50 in
  let big = String.make 900 'p' in
  let r0 =
    snd (Server.txn d.servers.(0) (fun e -> Executor.write e 100 big))
  and r1 =
    snd (Server.txn d.servers.(1) (fun e -> Executor.write e 200 big))
  in
  let b0 = snd (Option.get r0) and b1 = snd (Option.get r1) in
  check "multi-block" true (List.length b0 > 1 && List.length b1 > 1);
  (* interleave block streams *)
  let rec weave a b =
    match (a, b) with
    | [], rest | rest, [] -> rest
    | x :: xs, y :: ys -> x :: y :: weave xs ys
  in
  append_blocks d (weave b0 b1);
  pump d;
  assert_converged d;
  let _, _, lcs = Server.lcs d.servers.(0) in
  check "both inserts present" true (Tree.mem lcs 100 && Tree.mem lcs 200)

let () =
  Alcotest.run "server"
    [
      ( "multi-server",
        [
          Alcotest.test_case "sequential convergence" `Quick
            test_two_servers_sequential;
          Alcotest.test_case "conflicting servers" `Quick
            test_conflicting_concurrent_servers;
          Alcotest.test_case "random convergence" `Quick
            test_random_multi_server_convergence;
          Alcotest.test_case "interleaved multiblock" `Quick
            test_interleaved_multiblock_intentions;
        ] );
    ]
