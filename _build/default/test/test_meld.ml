open Hyder_tree
module Local = Hyder_core.Local
module Executor = Hyder_core.Executor
module Pipeline = Hyder_core.Pipeline
module Meld = Hyder_core.Meld
module I = Hyder_codec.Intention

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let harness ?config ?(n = 200) () =
  Local.create ?config ~genesis:(Helpers.genesis ~gap:10 n) ()

let read_current h k =
  let _, _, t = Local.lcs h in
  Tree.lookup t k

(* --- basic commit paths ------------------------------------------------ *)

let test_single_write_commits () =
  let h = harness () in
  let _, ds = Local.txn h (fun e -> Executor.write e 10 "hello") in
  check_int "one decision" 1 (List.length ds);
  check "committed" true (List.hd ds).Pipeline.committed;
  check_str "visible" "hello" (Helpers.value_exn (read_current h 10))

let test_read_only_not_logged () =
  let h = harness () in
  let v, ds = Local.txn h (fun e -> Executor.read e 10) in
  check_str "value" "v10" (Helpers.value_exn v);
  check_int "no decision" 0 (List.length ds)

let test_sequential_writes_all_commit () =
  let h = harness () in
  for i = 0 to 49 do
    let _, ds = Local.txn h (fun e -> Executor.write e (i * 10) "x") in
    check "committed" true (List.hd ds).Pipeline.committed
  done;
  let c = Local.counters h in
  check_int "50 commits" 50 c.Hyder_core.Counters.committed;
  check_int "0 aborts" 0 c.Hyder_core.Counters.aborted

let test_read_own_write () =
  let h = harness () in
  let v, _ =
    Local.txn h (fun e ->
        Executor.write e 10 "mine";
        Executor.read e 10)
  in
  check_str "own write" "mine" (Helpers.value_exn v)

(* --- conflict semantics ------------------------------------------------ *)

let test_write_write_conflict () =
  let h = harness () in
  let t1 = Helpers.begin_txn h in
  let t2 = Helpers.begin_txn h in
  Executor.write t1 10 "a";
  Executor.write t2 10 "b";
  check "t1 commits" true (Helpers.commit1 h t1);
  check "t2 aborts" false (Helpers.commit1 h t2);
  check_str "t1 wins" "a" (Helpers.value_exn (read_current h 10))

let test_disjoint_writes_both_commit () =
  let h = harness () in
  let t1 = Helpers.begin_txn h in
  let t2 = Helpers.begin_txn h in
  Executor.write t1 10 "a";
  Executor.write t2 20 "b";
  check "t1 commits" true (Helpers.commit1 h t1);
  check "t2 commits" true (Helpers.commit1 h t2);
  check_str "a" "a" (Helpers.value_exn (read_current h 10));
  check_str "b" "b" (Helpers.value_exn (read_current h 20))

let test_read_write_conflict_serializable () =
  let h = harness () in
  let reader = Helpers.begin_txn h in
  let writer = Helpers.begin_txn h in
  ignore (Executor.read reader 10);
  Executor.write reader 20 "r";
  Executor.write writer 10 "w";
  check "writer commits" true (Helpers.commit1 h writer);
  check "reader aborts" false (Helpers.commit1 h reader)

let test_read_write_no_conflict_snapshot_isolation () =
  let h = harness () in
  let reader = Helpers.begin_txn ~isolation:I.Snapshot_isolation h in
  let writer = Helpers.begin_txn h in
  ignore (Executor.read reader 10);
  Executor.write reader 20 "r";
  Executor.write writer 10 "w";
  check "writer commits" true (Helpers.commit1 h writer);
  check "reader commits under SI" true (Helpers.commit1 h reader)

let test_si_write_write_still_conflicts () =
  let h = harness () in
  let t1 = Helpers.begin_txn ~isolation:I.Snapshot_isolation h in
  let t2 = Helpers.begin_txn ~isolation:I.Snapshot_isolation h in
  Executor.write t1 10 "a";
  Executor.write t2 10 "b";
  check "t1 commits" true (Helpers.commit1 h t1);
  check "t2 aborts" false (Helpers.commit1 h t2)

let test_insert_insert_conflict () =
  let h = harness () in
  let t1 = Helpers.begin_txn h in
  let t2 = Helpers.begin_txn h in
  Executor.write t1 15 "a";
  Executor.write t2 15 "b";
  check "t1 commits" true (Helpers.commit1 h t1);
  check "t2 aborts" false (Helpers.commit1 h t2);
  check_str "t1's insert" "a" (Helpers.value_exn (read_current h 15))

let test_disjoint_inserts_both_commit () =
  let h = harness () in
  let t1 = Helpers.begin_txn h in
  let t2 = Helpers.begin_txn h in
  Executor.write t1 15 "a";
  Executor.write t2 25 "b";
  check "t1 commits" true (Helpers.commit1 h t1);
  check "t2 commits" true (Helpers.commit1 h t2);
  check_str "a" "a" (Helpers.value_exn (read_current h 15));
  check_str "b" "b" (Helpers.value_exn (read_current h 25))

let test_delete_write_conflict () =
  let h = harness () in
  let t1 = Helpers.begin_txn h in
  let t2 = Helpers.begin_txn h in
  Executor.delete t1 10;
  Executor.write t2 10 "b";
  check "deleter commits" true (Helpers.commit1 h t1);
  check "writer aborts" false (Helpers.commit1 h t2);
  check "gone" true (read_current h 10 = None)

let test_write_after_commit_no_conflict () =
  (* A transaction whose snapshot already includes the writer does not
     conflict with it. *)
  let h = harness () in
  let _, _ = Local.txn h (fun e -> Executor.write e 10 "first") in
  let t = Helpers.begin_txn h in
  ignore (Executor.read t 10);
  Executor.write t 10 "second";
  check "commits" true (Helpers.commit1 h t);
  check_str "value" "second" (Helpers.value_exn (read_current h 10))

let test_phantom_insert_into_scanned_range () =
  let h = harness () in
  let scanner = Helpers.begin_txn h in
  let inserter = Helpers.begin_txn h in
  let items = Executor.read_range scanner ~lo:10 ~hi:50 in
  check_int "scan sees 5" 5 (List.length items);
  Executor.write scanner 1000 "result";
  Executor.write inserter 15 "phantom";
  check "inserter commits" true (Helpers.commit1 h inserter);
  check "scanner aborts" false (Helpers.commit1 h scanner)

let test_phantom_absent_read () =
  let h = harness () in
  let reader = Helpers.begin_txn h in
  let inserter = Helpers.begin_txn h in
  check "absent" true (Executor.read reader 15 = None);
  Executor.write reader 1000 "acted-on-absence";
  Executor.write inserter 15 "now-present";
  check "inserter commits" true (Helpers.commit1 h inserter);
  check "reader aborts" false (Helpers.commit1 h reader)

let test_deep_conflict_zone () =
  (* A transaction with a long conflict zone still validates correctly. *)
  let h = harness ~n:500 () in
  let t = Helpers.begin_txn h in
  ignore (Executor.read t 10);
  Executor.write t 20 "mine";
  (* 200 unrelated committed writes land in the conflict zone. *)
  for i = 50 to 249 do
    ignore (Local.txn h (fun e -> Executor.write e (i * 10) "z"))
  done;
  check "still commits" true (Helpers.commit1 h t);
  (* Same, but one of them touches the read key. *)
  let t2 = Helpers.begin_txn h in
  ignore (Executor.read t2 10);
  Executor.write t2 20 "mine2";
  for i = 50 to 149 do
    ignore (Local.txn h (fun e -> Executor.write e (i * 10) "w"))
  done;
  ignore (Local.txn h (fun e -> Executor.write e 10 "overwrite"));
  check "aborts" false (Helpers.commit1 h t2)

(* --- abort reasons ------------------------------------------------------ *)

let abort_reason ds =
  match ds with
  | [ d ] -> d.Pipeline.reason
  | _ -> Alcotest.fail "expected one decision"

let test_abort_reasons () =
  let h = harness () in
  let t1 = Helpers.begin_txn h in
  let t2 = Helpers.begin_txn h in
  let t3 = Helpers.begin_txn h in
  Executor.write t1 10 "a";
  Executor.write t2 10 "b";
  ignore (Executor.read t3 10);
  Executor.write t3 30 "c";
  ignore (Helpers.commit h t1);
  (match abort_reason (Helpers.commit h t2) with
  | Some (Meld.Write_conflict 10) -> ()
  | r ->
      Alcotest.failf "expected write conflict on 10, got %s"
        (match r with
        | Some x -> Meld.abort_reason_to_string x
        | None -> "commit"));
  match abort_reason (Helpers.commit h t3) with
  | Some (Meld.Read_conflict 10) -> ()
  | r ->
      Alcotest.failf "expected read conflict on 10, got %s"
        (match r with
        | Some x -> Meld.abort_reason_to_string x
        | None -> "commit")

(* --- ephemeral nodes and counters --------------------------------------- *)

let test_ephemeral_nodes_created () =
  let h = harness ~n:1000 () in
  let t1 = Helpers.begin_txn h in
  let t2 = Helpers.begin_txn h in
  Executor.write t1 10 "a";
  Executor.write t2 5010 "b";
  ignore (Helpers.commit h t1);
  ignore (Helpers.commit h t2);
  let c = Local.counters h in
  (* Melding t2 against the state that already contains t1's update must
     have created ephemeral ancestors. *)
  check "ephemerals created" true
    (c.Hyder_core.Counters.final_meld.Hyder_core.Counters.ephemerals > 0)

let test_graft_fast_path () =
  let h = harness ~n:1000 () in
  (* Sequential non-conflicting transactions: meld should graft, visiting
     far fewer nodes than the tree holds. *)
  for i = 0 to 19 do
    ignore (Local.txn h (fun e -> Executor.write e (i * 10) "x"))
  done;
  let c = Local.counters h in
  let fm = c.Hyder_core.Counters.final_meld in
  check "visits bounded" true
    (fm.Hyder_core.Counters.nodes_visited < 20 * Tree.depth (let _, _, t = Local.lcs h in t) * 2);
  check "grafts happened" true (fm.Hyder_core.Counters.grafts > 0)

(* --- state integrity ----------------------------------------------------- *)

let test_lcs_matches_committed_history () =
  let h = harness ~n:100 () in
  let reference = Hashtbl.create 64 in
  for i = 0 to 99 do
    Hashtbl.replace reference (i * 10) ("v" ^ string_of_int (i * 10))
  done;
  let rng = Hyder_util.Rng.create 7L in
  for _ = 1 to 200 do
    let t = Helpers.begin_txn h in
    let k = 10 * Hyder_util.Rng.int rng 150 in
    let v = "w" ^ string_of_int (Hyder_util.Rng.int rng 10000) in
    Executor.write t k v;
    let ds = Helpers.commit h t in
    if (List.hd ds).Pipeline.committed then Hashtbl.replace reference k v
  done;
  let _, _, lcs = Local.lcs h in
  Helpers.check_tree_valid "lcs" lcs;
  Hashtbl.iter
    (fun k v ->
      check_str (Printf.sprintf "key %d" k) v
        (Helpers.value_exn (Tree.lookup lcs k)))
    reference;
  check_int "live size" (Hashtbl.length reference) (Tree.live_size lcs)

let () =
  Alcotest.run "meld"
    [
      ( "basics",
        [
          Alcotest.test_case "single write commits" `Quick
            test_single_write_commits;
          Alcotest.test_case "read-only not logged" `Quick
            test_read_only_not_logged;
          Alcotest.test_case "sequential writes" `Quick
            test_sequential_writes_all_commit;
          Alcotest.test_case "read own write" `Quick test_read_own_write;
        ] );
      ( "conflicts",
        [
          Alcotest.test_case "write-write" `Quick test_write_write_conflict;
          Alcotest.test_case "disjoint writes" `Quick
            test_disjoint_writes_both_commit;
          Alcotest.test_case "read-write SR" `Quick
            test_read_write_conflict_serializable;
          Alcotest.test_case "read-write SI" `Quick
            test_read_write_no_conflict_snapshot_isolation;
          Alcotest.test_case "write-write SI" `Quick
            test_si_write_write_still_conflicts;
          Alcotest.test_case "insert-insert" `Quick test_insert_insert_conflict;
          Alcotest.test_case "disjoint inserts" `Quick
            test_disjoint_inserts_both_commit;
          Alcotest.test_case "delete-write" `Quick test_delete_write_conflict;
          Alcotest.test_case "write after commit" `Quick
            test_write_after_commit_no_conflict;
          Alcotest.test_case "phantom range" `Quick
            test_phantom_insert_into_scanned_range;
          Alcotest.test_case "phantom absent read" `Quick
            test_phantom_absent_read;
          Alcotest.test_case "deep conflict zone" `Quick test_deep_conflict_zone;
          Alcotest.test_case "abort reasons" `Quick test_abort_reasons;
        ] );
      ( "mechanics",
        [
          Alcotest.test_case "ephemerals" `Quick test_ephemeral_nodes_created;
          Alcotest.test_case "graft fast path" `Quick test_graft_fast_path;
          Alcotest.test_case "state integrity" `Quick
            test_lcs_matches_committed_history;
        ] );
    ]
