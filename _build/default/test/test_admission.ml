module Admission = Hyder_cluster.Admission
module Cluster = Hyder_cluster.Cluster
module Ycsb = Hyder_workload.Ycsb

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_window_grows_when_healthy () =
  let a = Admission.create () in
  let w0 = Admission.window a in
  for _ = 1 to 256 do
    Admission.observe a ~committed:true
  done;
  check "window grew" true (Admission.window a > w0);
  let ups, downs = Admission.adjustments a in
  check_int "four healthy periods" 4 ups;
  check_int "no cuts" 0 downs

let test_window_shrinks_on_aborts () =
  let a = Admission.create () in
  let w0 = Admission.window a in
  for i = 1 to 128 do
    Admission.observe a ~committed:(i mod 3 = 0) (* ~67% aborts *)
  done;
  check "window cut" true (Admission.window a < w0);
  let _, downs = Admission.adjustments a in
  check "cuts happened" true (downs >= 2)

let test_window_bounded () =
  let config =
    { Admission.default_config with Admission.min_window = 4; max_window = 16 }
  in
  let a = Admission.create ~config () in
  for _ = 1 to 10_000 do
    Admission.observe a ~committed:true
  done;
  check_int "capped at max" 16 (Admission.window a);
  for _ = 1 to 10_000 do
    Admission.observe a ~committed:false
  done;
  check_int "floored at min" 4 (Admission.window a)

let test_adaptive_cluster_cuts_aborts () =
  let base =
    {
      Cluster.default_config with
      Cluster.servers = 4;
      write_threads = 8;
      inflight_per_thread = 80;
      workload =
        { Ycsb.default with Ycsb.record_count = 8_000; payload_size = 32 };
      duration = 0.12;
      warmup = 0.06;
    }
  in
  let fixed = Cluster.run base in
  let adaptive =
    Cluster.run
      { base with Cluster.adaptive_admission = Some Admission.default_config }
  in
  check
    (Printf.sprintf "adaptive lowers abort rate (%.1f%% -> %.1f%%)"
       (100.0 *. fixed.Cluster.abort_rate)
       (100.0 *. adaptive.Cluster.abort_rate))
    true
    (adaptive.Cluster.abort_rate < fixed.Cluster.abort_rate);
  check "still commits plenty" true
    (adaptive.Cluster.write_tps > fixed.Cluster.write_tps /. 2.0)

let () =
  Alcotest.run "admission"
    [
      ( "controller",
        [
          Alcotest.test_case "grows" `Quick test_window_grows_when_healthy;
          Alcotest.test_case "shrinks" `Quick test_window_shrinks_on_aborts;
          Alcotest.test_case "bounded" `Quick test_window_bounded;
        ] );
      ( "in cluster",
        [
          Alcotest.test_case "cuts aborts" `Quick
            test_adaptive_cluster_cuts_aborts;
        ] );
    ]
