(* Isolation-level semantics end to end. *)

open Hyder_tree
module Local = Hyder_core.Local
module Executor = Hyder_core.Executor
module Pipeline = Hyder_core.Pipeline
module I = Hyder_codec.Intention

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let harness () = Local.create ~genesis:(Helpers.genesis ~gap:10 100) ()

let value = function
  | Some (Payload.Value v) -> v
  | Some Payload.Tombstone -> "<dead>"
  | None -> "<absent>"

(* --- write skew: the classic SI anomaly, prevented by SR ----------------- *)

let write_skew isolation h =
  (* Invariant the application wants: at least one of keys 10, 20 is "on".
     Each txn reads both and turns one off if the other is on. *)
  ignore (Local.txn h (fun e -> Executor.write e 10 "on"));
  ignore (Local.txn h (fun e -> Executor.write e 20 "on"));
  let t1 = Helpers.begin_txn ~isolation h in
  let t2 = Helpers.begin_txn ~isolation h in
  let run t my_key other_key =
    if value (Executor.read t other_key) = "on" then
      Executor.write t my_key "off"
  in
  run t1 10 20;
  run t2 20 10;
  let d1 = Helpers.commit1 h t1 in
  let d2 = Helpers.commit1 h t2 in
  let _, _, lcs = Local.lcs h in
  (d1, d2, value (Tree.lookup lcs 10), value (Tree.lookup lcs 20))

let test_write_skew_prevented_sr () =
  let d1, d2, v10, v20 = write_skew I.Serializable (harness ()) in
  check "first commits" true d1;
  check "second aborts (read validated)" false d2;
  check "invariant holds" true (v10 = "on" || v20 = "on")

let test_write_skew_allowed_si () =
  let d1, d2, v10, v20 = write_skew I.Snapshot_isolation (harness ()) in
  check "first commits" true d1;
  check "second commits too (SI does not validate reads)" true d2;
  check "anomaly: both off" true (v10 = "off" && v20 = "off")

(* --- lost update: prevented by both SR and SI ----------------------------- *)

let test_lost_update_prevented_both () =
  List.iter
    (fun isolation ->
      let h = harness () in
      ignore (Local.txn h (fun e -> Executor.write e 30 "0"));
      let t1 = Helpers.begin_txn ~isolation h in
      let t2 = Helpers.begin_txn ~isolation h in
      let incr t =
        let v = int_of_string (value (Executor.read t 30)) in
        Executor.write t 30 (string_of_int (v + 1))
      in
      incr t1;
      incr t2;
      let d1 = Helpers.commit1 h t1 in
      let d2 = Helpers.commit1 h t2 in
      check "one of the increments aborts" true (d1 <> d2 || not d2);
      check "exactly one applied" true (d1 && not d2);
      let _, _, lcs = Local.lcs h in
      check_str "no lost update" "1" (value (Tree.lookup lcs 30)))
    [ I.Serializable; I.Snapshot_isolation ]

(* --- read committed ------------------------------------------------------- *)

let test_read_committed_non_repeatable () =
  let h = harness () in
  let rc, _ =
    Local.txn h ~isolation:I.Read_committed (fun e ->
        let before = value (Executor.read e 40) in
        (* a concurrent transaction commits between the two reads *)
        ignore (Local.txn h (fun e2 -> Executor.write e2 40 "changed"));
        let after = value (Executor.read e 40) in
        Executor.write e 50 "rc-was-here";
        (before, after))
  in
  let before, after = rc in
  check_str "first read saw original" "v40" before;
  check_str "second read saw the new commit (non-repeatable)" "changed" after;
  let _, _, lcs = Local.lcs h in
  check_str "rc txn committed" "rc-was-here" (value (Tree.lookup lcs 50))

let test_snapshot_reads_are_repeatable () =
  List.iter
    (fun isolation ->
      let h = harness () in
      let (before, after), _ =
        Local.txn h ~isolation (fun e ->
            let before = value (Executor.read e 40) in
            ignore (Local.txn h (fun e2 -> Executor.write e2 40 "changed"));
            let after = value (Executor.read e 40) in
            (before, after))
      in
      check_str "repeatable" before after)
    [ I.Serializable; I.Snapshot_isolation ]

(* --- SR full serializability on a random history -------------------------- *)

let test_sr_histories_are_serializable () =
  (* Run randomized concurrent counters under SR with retries and check the
     result equals the number of successful increments: i.e., the history
     was equivalent to SOME serial order. *)
  let h = harness () in
  ignore (Local.txn h (fun e -> Executor.write e 60 "0"));
  let rng = Hyder_util.Rng.create 5L in
  let succeeded = ref 0 in
  for _ = 1 to 100 do
    (* a pair of racing increments per round *)
    let t1 = Helpers.begin_txn h in
    let t2 = Helpers.begin_txn h in
    let stage t =
      let v = int_of_string (value (Executor.read t 60)) in
      (* touch some unrelated keys too *)
      ignore (Executor.read t (10 * Hyder_util.Rng.int rng 10));
      Executor.write t 60 (string_of_int (v + 1))
    in
    stage t1;
    stage t2;
    if Helpers.commit1 h t1 then incr succeeded;
    if Helpers.commit1 h t2 then incr succeeded
  done;
  let _, _, lcs = Local.lcs h in
  check_str "count equals committed increments"
    (string_of_int !succeeded)
    (value (Tree.lookup lcs 60))

let () =
  Alcotest.run "isolation"
    [
      ( "anomalies",
        [
          Alcotest.test_case "write skew prevented (SR)" `Quick
            test_write_skew_prevented_sr;
          Alcotest.test_case "write skew allowed (SI)" `Quick
            test_write_skew_allowed_si;
          Alcotest.test_case "lost update prevented" `Quick
            test_lost_update_prevented_both;
          Alcotest.test_case "RC non-repeatable reads" `Quick
            test_read_committed_non_repeatable;
          Alcotest.test_case "snapshot reads repeatable" `Quick
            test_snapshot_reads_are_repeatable;
          Alcotest.test_case "SR histories serializable" `Quick
            test_sr_histories_are_serializable;
        ] );
    ]
