module Cluster = Hyder_cluster.Cluster
module Ycsb = Hyder_workload.Ycsb
module Pipeline = Hyder_core.Pipeline

let check = Alcotest.(check bool)

let tiny_config ?(pipeline = Pipeline.plain) ?(servers = 2) () =
  {
    Cluster.default_config with
    Cluster.servers;
    write_threads = 4;
    inflight_per_thread = 10;
    pipeline;
    workload =
      { Ycsb.default with Ycsb.record_count = 10_000; payload_size = 32 };
    duration = 0.1;
    warmup = 0.05;
  }

let test_cluster_runs_and_commits () =
  let r = Cluster.run (tiny_config ()) in
  check
    (Printf.sprintf "committed transactions flow (%d)" r.Cluster.commit_count)
    true
    (r.Cluster.commit_count > 100);
  check "write tps positive" true (r.Cluster.write_tps > 0.0);
  check "appends happened" true (r.Cluster.appends_per_sec > 0.0);
  check "abort rate sane" true
    (r.Cluster.abort_rate >= 0.0 && r.Cluster.abort_rate < 1.0);
  check "stages measured" true
    (let ds, _, _, fm = r.Cluster.stage_us in
     ds > 0.0 && fm > 0.0)

let test_cluster_all_pipelines_run () =
  List.iter
    (fun pipeline ->
      let r = Cluster.run (tiny_config ~pipeline ()) in
      check "commits" true (r.Cluster.commit_count > 50))
    [
      Pipeline.plain;
      Pipeline.with_premeld;
      Pipeline.with_group_meld;
      Pipeline.with_both;
    ]

let test_premeld_shrinks_zone_in_cluster () =
  let plain = Cluster.run (tiny_config ~servers:4 ()) in
  let pre =
    Cluster.run (tiny_config ~servers:4 ~pipeline:Pipeline.with_premeld ())
  in
  check
    (Printf.sprintf "zone shrinks (%.0f -> %.0f)"
       plain.Cluster.conflict_zone_intentions
       pre.Cluster.conflict_zone_intentions)
    true
    (pre.Cluster.conflict_zone_intentions
    < plain.Cluster.conflict_zone_intentions /. 2.0);
  check "fm work shrinks" true
    (pre.Cluster.fm_nodes_per_txn < plain.Cluster.fm_nodes_per_txn)

let test_read_threads_add_throughput () =
  let without = Cluster.run (tiny_config ()) in
  let with_reads =
    Cluster.run { (tiny_config ()) with Cluster.read_threads = 4 }
  in
  check "read tps appears" true (with_reads.Cluster.read_tps > 0.0);
  check "no read tps without readers" true (without.Cluster.read_tps = 0.0);
  check "total exceeds writes" true
    (with_reads.Cluster.total_tps > with_reads.Cluster.write_tps)

let test_more_servers_more_offered_load () =
  let one = Cluster.run (tiny_config ~servers:1 ()) in
  let four = Cluster.run (tiny_config ~servers:4 ()) in
  (* With tiny in-flight windows the system is latency-bound, so more
     servers must raise throughput. *)
  check
    (Printf.sprintf "scaling (%.0f -> %.0f)" one.Cluster.write_tps
       four.Cluster.write_tps)
    true
    (four.Cluster.write_tps > one.Cluster.write_tps *. 1.5)

let test_snapshot_isolation_cheaper () =
  let sr = Cluster.run (tiny_config ~servers:4 ()) in
  let si =
    Cluster.run
      {
        (tiny_config ~servers:4 ()) with
        Cluster.workload =
          {
            Ycsb.default with
            Ycsb.record_count = 10_000;
            payload_size = 32;
            isolation = Hyder_codec.Intention.Snapshot_isolation;
          };
      }
  in
  check
    (Printf.sprintf "SI intentions smaller (%.0f vs %.0f bytes)"
       si.Cluster.intention_bytes sr.Cluster.intention_bytes)
    true
    (si.Cluster.intention_bytes < sr.Cluster.intention_bytes /. 2.0);
  check "SI melds fewer nodes" true
    (si.Cluster.fm_nodes_per_txn < sr.Cluster.fm_nodes_per_txn)

let () =
  Alcotest.run "cluster"
    [
      ( "simulation",
        [
          Alcotest.test_case "runs and commits" `Quick
            test_cluster_runs_and_commits;
          Alcotest.test_case "all pipelines" `Quick
            test_cluster_all_pipelines_run;
          Alcotest.test_case "premeld shrinks zone" `Quick
            test_premeld_shrinks_zone_in_cluster;
          Alcotest.test_case "read threads" `Quick
            test_read_threads_add_throughput;
          Alcotest.test_case "server scaling" `Quick
            test_more_servers_more_offered_load;
          Alcotest.test_case "snapshot isolation" `Quick
            test_snapshot_isolation_cheaper;
        ] );
    ]
