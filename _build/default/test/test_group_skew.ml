(* Group meld snapshot-skew corner cases (DESIGN.md §6.2).

   The two members of a group are adjacent in the log but their snapshots
   can be ordered either way.  These tests pin the deferral logic directly:

   - NEWER-second: I2's snapshot includes commits I1's predates.  Data that
     I2 read from those commits must not false-conflict against I1's older
     view — the check defers to final meld.
   - OLDER-second: I2's snapshot predates I1's.  Changes committed between
     the snapshots are genuinely inside I2's conflict zone and must abort
     it even though its partner saw them. *)

open Hyder_tree
module Local = Hyder_core.Local
module Executor = Hyder_core.Executor
module Pipeline = Hyder_core.Pipeline
module State_store = Hyder_core.State_store
module I = Hyder_codec.Intention

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let group_harness () =
  Local.create ~config:Pipeline.with_group_meld
    ~genesis:(Helpers.genesis ~gap:10 200) ()

let value lcs k =
  match Tree.lookup lcs k with
  | Some (Payload.Value v) -> v
  | Some Payload.Tombstone -> "<dead>"
  | None -> "<absent>"

(* Begin a transaction pinned to an explicit past state (by lag in
   sequence numbers). *)
let begin_at h ~lag ?(isolation = I.Serializable) () =
  let states = Pipeline.states (Local.pipeline h) in
  let lcs_seq, lcs_pos, _ = Local.lcs h in
  let seq = max (-1) (lcs_seq - lag) in
  let snapshot = Option.get (State_store.by_seq states seq) in
  let pos = if seq < 0 then -1 else lcs_pos - (2 * (lcs_seq - seq)) in
  Helpers.txn_counter := !Helpers.txn_counter + 1;
  Executor.begin_txn ~snapshot_pos:pos ~snapshot ~server:0
    ~txn_seq:!Helpers.txn_counter ~isolation ()

let test_newer_second_member_no_false_conflict () =
  let h = group_harness () in
  (* C commits a write to key 100 (as its own full group). *)
  ignore (Local.txn h (fun e -> Executor.write e 100 "from-C"));
  ignore (Local.txn h (fun e -> Executor.write e 110 "filler"));
  (* I1 runs on a snapshot OLDER than C's commit but touches nothing of
     C's; I2 runs on the newest snapshot and READS C's key. *)
  let i1 = begin_at h ~lag:2 () in
  let i2 = begin_at h ~lag:0 () in
  Executor.write i1 120 "i1";
  check_str "I2 sees C's write" "from-C"
    (match Executor.read i2 100 with
    | Some (Payload.Value v) -> v
    | _ -> "?");
  Executor.write i2 130 "i2";
  let ds = Helpers.commit h i1 @ Helpers.commit h i2 in
  check "both decided" true (List.length ds = 2);
  List.iter
    (fun (d : Pipeline.decision) ->
      check "no false conflict from snapshot skew" true d.Pipeline.committed)
    ds;
  let _, _, lcs = Local.lcs h in
  check_str "i1 applied" "i1" (value lcs 120);
  check_str "i2 applied" "i2" (value lcs 130)

let test_older_second_member_genuine_conflict () =
  let h = group_harness () in
  (* C commits a write to key 100. *)
  ignore (Local.txn h (fun e -> Executor.write e 100 "from-C"));
  ignore (Local.txn h (fun e -> Executor.write e 110 "filler"));
  (* I1 on the newest snapshot; I2 pinned BEFORE C and reading C's key:
     C is in I2's conflict zone, so I2 must abort — even though its group
     partner's snapshot already includes C. *)
  let i1 = begin_at h ~lag:0 () in
  let i2 = begin_at h ~lag:2 () in
  Executor.write i1 120 "i1";
  check_str "I2 reads the stale value" "v100"
    (match Executor.read i2 100 with
    | Some (Payload.Value v) -> v
    | _ -> "?");
  Executor.write i2 130 "i2";
  let ds = Helpers.commit h i1 @ Helpers.commit h i2 in
  check "both decided" true (List.length ds = 2);
  (* I2's conflict is against committed history (not against its partner),
     so it is found at FINAL meld and fate-shares the whole group: both
     abort.  (With premeld enabled, the conflict would be found early and
     I1 would be spared — see the premeld pipeline tests.) *)
  List.iter
    (fun (d : Pipeline.decision) ->
      check "fate shared: aborts" false d.Pipeline.committed;
      check "decided at final meld" true
        (d.Pipeline.decided_at = Pipeline.At_final_meld))
    ds;
  let _, _, lcs = Local.lcs h in
  check_str "i2's write not applied" "v130" (value lcs 130);
  check_str "i1 dragged down too" "v120" (value lcs 120)

let test_skewed_insert_visibility () =
  let h = group_harness () in
  (* C inserts a brand-new key. *)
  ignore (Local.txn h (fun e -> Executor.write e 105 "new-key"));
  ignore (Local.txn h (fun e -> Executor.write e 110 "filler"));
  (* I1 pinned before the insert (cannot see key 105), I2 on the newest
     snapshot UPDATES it.  Group meld must splice I2's update through
     I1's older view without declaring an insert-insert conflict. *)
  let i1 = begin_at h ~lag:2 () in
  let i2 = begin_at h ~lag:0 () in
  Executor.write i1 120 "i1";
  Executor.write i2 105 "updated-new-key";
  let ds = Helpers.commit h i1 @ Helpers.commit h i2 in
  List.iter
    (fun (d : Pipeline.decision) -> check "both commit" true d.Pipeline.committed)
    ds;
  let _, _, lcs = Local.lcs h in
  check_str "update applied over the skew" "updated-new-key" (value lcs 105)

let test_skew_matches_plain_when_conflict_free () =
  (* With no conflicts anywhere, fate sharing has nothing to couple and
     group meld must agree with plain meld despite the snapshot skew. *)
  let run config =
    let h =
      Local.create ~config ~genesis:(Helpers.genesis ~gap:10 200) ()
    in
    ignore (Local.txn h (fun e -> Executor.write e 100 "from-C"));
    ignore (Local.txn h (fun e -> Executor.write e 110 "filler"));
    let i1 = begin_at h ~lag:2 () in
    let i2 = begin_at h ~lag:0 () in
    ignore (Executor.read i1 150);
    Executor.write i1 120 "i1";
    ignore (Executor.read i2 100) (* fresh snapshot: sees C, no conflict *);
    Executor.write i2 130 "i2";
    let ds = Helpers.commit h i1 @ Helpers.commit h i2 @ Local.flush h in
    List.map (fun (d : Pipeline.decision) -> d.Pipeline.committed) ds
  in
  check "plain and group agree here" true
    (run Pipeline.plain = run Pipeline.with_group_meld)

let () =
  Alcotest.run "group skew"
    [
      ( "snapshot skew",
        [
          Alcotest.test_case "newer second member" `Quick
            test_newer_second_member_no_false_conflict;
          Alcotest.test_case "older second member" `Quick
            test_older_second_member_genuine_conflict;
          Alcotest.test_case "insert visibility" `Quick
            test_skewed_insert_visibility;
          Alcotest.test_case "matches plain when conflict-free" `Quick
            test_skew_matches_plain_when_conflict_free;
        ] );
    ]
