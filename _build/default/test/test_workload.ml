open Hyder_tree
module Ycsb = Hyder_workload.Ycsb
module Executor = Hyder_core.Executor
module Local = Hyder_core.Local
module I = Hyder_codec.Intention

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let small_config =
  {
    Ycsb.default with
    Ycsb.record_count = 1_000;
    payload_size = 32;
    ops_per_txn = 10;
    update_fraction = 0.2;
  }

let test_genesis_shape () =
  let wl = Ycsb.create small_config in
  let g = Ycsb.genesis wl in
  check_int "record count" 1000 (Tree.live_size g);
  (match Tree.validate g with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid genesis: %s" e);
  (match Tree.lookup g 500 with
  | Some (Payload.Value v) ->
      check "payload size" true (String.length v = 32);
      check "payload content" true (String.length v > 8 && String.sub v 0 4 = "val-")
  | _ -> Alcotest.fail "missing key");
  check "cached" true (Ycsb.genesis wl == g)

let test_write_txn_composition () =
  let wl = Ycsb.create small_config in
  for _ = 1 to 100 do
    let ops = Ycsb.next_write_txn wl in
    check_int "ops per txn" 10 (List.length ops);
    let writes = Ycsb.writes_of ops in
    check_int "2 writes of 10 at 0.2" 2 (List.length writes);
    check_int "8 reads" 8 (List.length (Ycsb.reads_of ops))
  done

let test_read_only_txn () =
  let wl = Ycsb.create small_config in
  let ops = Ycsb.next_read_only_txn wl in
  check_int "all ops read" 10 (List.length (Ycsb.reads_of ops));
  check_int "no writes" 0 (List.length (Ycsb.writes_of ops))

let test_deterministic_given_seed () =
  let a = Ycsb.create ~seed:9L small_config in
  let b = Ycsb.create ~seed:9L small_config in
  for _ = 1 to 50 do
    check "same stream" true (Ycsb.next_write_txn a = Ycsb.next_write_txn b)
  done;
  let c = Ycsb.create ~seed:10L small_config in
  check "different seed" false
    (List.init 10 (fun _ -> Ycsb.next_write_txn a)
    = List.init 10 (fun _ -> Ycsb.next_write_txn c))

let test_update_fraction_extremes () =
  let all_writes =
    Ycsb.create { small_config with Ycsb.update_fraction = 1.0 }
  in
  let ops = Ycsb.next_write_txn all_writes in
  check_int "all writes" 10 (List.length (Ycsb.writes_of ops));
  let one_write =
    Ycsb.create { small_config with Ycsb.update_fraction = 0.0 }
  in
  (* write transactions always carry at least one write *)
  check_int "at least one write" 1
    (List.length (Ycsb.writes_of (Ycsb.next_write_txn one_write)))

let test_inserts_extend_keyspace () =
  let wl =
    Ycsb.create
      { small_config with Ycsb.insert_fraction = 1.0; update_fraction = 0.5 }
  in
  let ops = Ycsb.next_write_txn wl in
  let inserts =
    List.filter_map
      (function Ycsb.Insert (k, _) -> Some k | _ -> None)
      ops
  in
  check "inserts beyond keyspace" true
    (List.for_all (fun k -> k >= 1000) inserts);
  check "fresh keys distinct" true
    (List.length (List.sort_uniq compare inserts) = List.length inserts)

let test_apply_executes () =
  let wl = Ycsb.create small_config in
  let h = Local.create ~genesis:(Ycsb.genesis wl) () in
  let committed = ref 0 in
  for _ = 1 to 50 do
    let _, ds = Local.txn h (fun e -> Ycsb.apply (Ycsb.next_write_txn wl) e) in
    List.iter
      (fun (d : Hyder_core.Pipeline.decision) ->
        if d.Hyder_core.Pipeline.committed then incr committed)
      ds
  done;
  check "sequential txns all commit" true (!committed = 50)

let test_scan_ops () =
  let wl =
    Ycsb.create { small_config with Ycsb.scan_fraction = 1.0; scan_length = 5 }
  in
  let ops = Ycsb.next_write_txn wl in
  let scans =
    List.filter (function Ycsb.Scan _ -> true | _ -> false) ops
  in
  check "reads became scans" true (List.length scans = 8);
  (* scans execute through the executor *)
  let h = Local.create ~genesis:(Ycsb.genesis wl) () in
  let _, ds = Local.txn h (fun e -> Ycsb.apply ops e) in
  check "scan txn decided" true (List.length ds = 1)

let test_distributions_hit_configured_space () =
  List.iter
    (fun dist ->
      let wl = Ycsb.create { small_config with Ycsb.distribution = dist } in
      for _ = 1 to 50 do
        List.iter
          (fun k -> check "key in range" true (k >= 0 && k < 1000))
          (Ycsb.reads_of (Ycsb.next_write_txn wl))
      done)
    [ Ycsb.Uniform; Ycsb.Zipfian 0.99; Ycsb.Hotspot 0.1; Ycsb.Latest ]

let () =
  Alcotest.run "workload"
    [
      ( "ycsb",
        [
          Alcotest.test_case "genesis" `Quick test_genesis_shape;
          Alcotest.test_case "txn composition" `Quick
            test_write_txn_composition;
          Alcotest.test_case "read-only txn" `Quick test_read_only_txn;
          Alcotest.test_case "deterministic" `Quick
            test_deterministic_given_seed;
          Alcotest.test_case "update extremes" `Quick
            test_update_fraction_extremes;
          Alcotest.test_case "inserts" `Quick test_inserts_extend_keyspace;
          Alcotest.test_case "apply" `Quick test_apply_executes;
          Alcotest.test_case "scans" `Quick test_scan_ops;
          Alcotest.test_case "distributions" `Quick
            test_distributions_hit_configured_space;
        ] );
    ]
