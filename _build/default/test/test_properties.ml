(* Randomized end-to-end properties, complementing the fixed-seed scenarios
   in test_pipeline.ml:

   - arbitrary transaction streams (mixed isolation, stale snapshots,
     inserts, deletes) decided by meld == decided by the OCC oracle, and the
     final state equals the committed-writes replay;
   - the decisions are identical with premeld on;
   - block streams survive arbitrary single-byte corruption (CRC) and
     truncation without undefined behaviour;
   - tree mutators never break the structural invariants. *)

open Hyder_tree
module Executor = Hyder_core.Executor
module Pipeline = Hyder_core.Pipeline
module Premeld = Hyder_core.Premeld
module Oracle = Hyder_core.Oracle
module Codec = Hyder_codec.Codec
module I = Hyder_codec.Intention

(* ---------------- random stream vs oracle, via qcheck ---------------- *)

type op = R of int | W of int | D of int

type spec = { lag : int; ops : op list; si : bool }

let genesis_n = 150

let spec_gen =
  QCheck2.Gen.(
    let op =
      oneof
        [
          map (fun k -> R k) (int_bound (genesis_n - 1));
          map (fun k -> W k) (int_bound (genesis_n - 1));
          (* deletes target a small key range so delete/write/delete chains
             actually collide *)
          map (fun k -> D k) (int_bound 20);
        ]
    in
    map3
      (fun lag ops si -> { lag; ops; si })
      (int_bound 8)
      (list_size (int_range 1 6) op)
      bool)

let has_write spec =
  List.exists (function W _ | D _ -> true | R _ -> false) spec.ops

let replay ~config specs =
  let genesis = Helpers.genesis genesis_n in
  let p = Pipeline.create ~config ~genesis () in
  let history = ref [ (-1, -1, genesis) ] in
  let next_pos = ref 0 in
  let results = ref [] in
  let oracle = Oracle.create () in
  let model = Hashtbl.create 64 in
  for k = 0 to genesis_n - 1 do
    Hashtbl.replace model k (Payload.value ("v" ^ string_of_int k))
  done;
  let decisions = ref [] in
  List.iter
    (fun spec ->
      if has_write spec then begin
        let hist = !history in
        let lag = min spec.lag (List.length hist - 1) in
        let snapshot_seq, snapshot_pos, snapshot = List.nth hist lag in
        let isolation =
          if spec.si then I.Snapshot_isolation else I.Serializable
        in
        let e =
          Executor.begin_txn ~snapshot_pos ~snapshot ~server:0 ~txn_seq:0
            ~isolation ()
        in
        (* reads of genesis keys that might be deleted: restrict validated
           reads to keys >= 30, which are never deleted, so the oracle
           comparison stays exact (absent-key reads are conservative). *)
        let reads = ref [] and writes = ref [] in
        List.iter
          (function
            | R k ->
                let k = 30 + (k mod (genesis_n - 30)) in
                ignore (Executor.read e k);
                reads := k :: !reads
            | W k ->
                Executor.write e k "w";
                writes := (k, Some "w") :: !writes
            | D k ->
                Executor.delete e k;
                writes := (k, None) :: !writes)
          spec.ops;
        match Executor.finish e with
        | None -> ()
        | Some draft ->
            next_pos := !next_pos + 2;
            let intention = I.assign ~pos:!next_pos draft in
            let expected =
              Oracle.decide oracle ~snapshot_seq ~isolation ~reads:!reads
                ~writes:(List.map fst !writes)
            in
            if expected then
              List.iter
                (fun (k, v) ->
                  match v with
                  | Some s -> Hashtbl.replace model k (Payload.value s)
                  | None -> Hashtbl.remove model k)
                (List.rev !writes);
            results := expected :: !results;
            decisions := Pipeline.submit p intention @ !decisions
      end;
      let seq, pos, tree = Pipeline.lcs p in
      history := (seq, pos, tree) :: !history)
    specs;
  decisions := Pipeline.flush p @ !decisions;
  let got =
    List.map
      (fun (d : Pipeline.decision) -> d.Pipeline.committed)
      (List.sort
         (fun (a : Pipeline.decision) b -> Int.compare a.Pipeline.seq b.Pipeline.seq)
         !decisions)
  in
  let _, _, final = Pipeline.lcs p in
  (List.rev !results, got, final, model)

let prop_stream_matches_oracle config =
  QCheck2.Test.make
    ~name:
      (Printf.sprintf "random stream == oracle (%s)"
         (match config.Pipeline.premeld with
         | Some _ -> "premeld"
         | None -> "plain"))
    ~count:60
    QCheck2.Gen.(list_size (int_range 1 60) spec_gen)
    (fun specs ->
      let expected, got, final, model = replay ~config specs in
      if expected <> got then
        QCheck2.Test.fail_reportf "decision mismatch: %s vs %s"
          (String.concat "" (List.map (fun b -> if b then "C" else "a") expected))
          (String.concat "" (List.map (fun b -> if b then "C" else "a") got));
      (* state equals model *)
      Hashtbl.iter
        (fun k v ->
          match Tree.lookup final k with
          | Some p when Payload.equal p v -> ()
          | other ->
              QCheck2.Test.fail_reportf "key %d: model %s, tree %s" k
                (match v with Payload.Value s -> s | _ -> "?")
                (match other with
                | Some (Payload.Value s) -> s
                | Some Payload.Tombstone -> "<dead>"
                | None -> "<absent>"))
        model;
      Tree.live_size final = Hashtbl.length model
      && Result.is_ok (Tree.validate final))

let prop_premeld_equals_plain =
  QCheck2.Test.make ~name:"premeld decisions == plain decisions" ~count:40
    QCheck2.Gen.(list_size (int_range 5 50) spec_gen)
    (fun specs ->
      let _, plain, final_plain, _ = replay ~config:Pipeline.plain specs in
      let _, pre, final_pre, _ =
        replay
          ~config:
            {
              Pipeline.premeld = Some { Premeld.threads = 3; distance = 2 };
              group_size = 1;
            }
          specs
      in
      plain = pre
      && Tree.to_alist final_plain = Tree.to_alist final_pre)

(* ---------------- codec robustness ---------------- *)

let make_blocks seed =
  let rng = Hyder_util.Rng.create (Int64.of_int seed) in
  let snapshot = Helpers.genesis 200 in
  let e =
    Executor.begin_txn ~snapshot_pos:(-1) ~snapshot ~server:1 ~txn_seq:seed
      ~isolation:I.Serializable ()
  in
  for _ = 1 to 5 do
    ignore (Executor.read e (Hyder_util.Rng.int rng 200));
    Executor.write e (Hyder_util.Rng.int rng 200) "x"
  done;
  let draft = Option.get (Executor.finish e) in
  Codec.Blocks.split ~block_size:256 ~server:1 ~txn_seq:seed
    (Codec.encode draft)

let prop_block_corruption_detected =
  QCheck2.Test.make ~name:"flipping any block byte raises Corrupt" ~count:200
    QCheck2.Gen.(triple (int_bound 1000) (int_bound 10_000) (int_range 1 255))
    (fun (seed, byte_pos, delta) ->
      let blocks = make_blocks seed in
      let blocks = Array.of_list blocks in
      let bi = byte_pos mod Array.length blocks in
      let b = Bytes.of_string blocks.(bi) in
      let off = byte_pos mod Bytes.length b in
      Bytes.set b off
        (Char.chr ((Char.code (Bytes.get b off) + delta) land 0xFF));
      blocks.(bi) <- Bytes.to_string b;
      let r = Codec.Blocks.Reassembler.create () in
      try
        Array.iteri
          (fun pos block ->
            ignore (Codec.Blocks.Reassembler.feed r ~pos block))
          blocks;
        false (* corruption must not slip through *)
      with Codec.Corrupt _ -> true)

let prop_block_truncation_detected =
  QCheck2.Test.make ~name:"truncating a block raises Corrupt" ~count:100
    QCheck2.Gen.(pair (int_bound 1000) (int_bound 10_000))
    (fun (seed, cut) ->
      let blocks = Array.of_list (make_blocks seed) in
      let bi = cut mod Array.length blocks in
      let b = blocks.(bi) in
      let keep = cut mod max 1 (String.length b - 1) in
      blocks.(bi) <- String.sub b 0 keep;
      let r = Codec.Blocks.Reassembler.create () in
      try
        Array.iteri
          (fun pos block ->
            ignore (Codec.Blocks.Reassembler.feed r ~pos block))
          blocks;
        false
      with Codec.Corrupt _ -> true)

(* ---------------- tree invariants under mixed mutation ---------------- *)

let prop_mutators_preserve_invariants =
  QCheck2.Test.make ~name:"mutators preserve tree invariants" ~count:150
    QCheck2.Gen.(
      list_size (int_range 1 80)
        (pair (int_bound 5) (pair (int_bound 300) (int_bound 300))))
    (fun script ->
      let c = ref 0 in
      let fresh () =
        incr c;
        I.draft_vn ~idx:!c
      in
      let owner = I.draft_owner in
      let t =
        List.fold_left
          (fun t (kind, (a, b)) ->
            match kind with
            | 0 -> Tree.upsert t ~owner ~fresh a (Payload.value "v")
            | 1 -> Tree.upsert t ~owner ~fresh a Payload.tombstone
            | 2 -> Tree.touch_read t ~owner ~fresh a
            | 3 ->
                Tree.touch_range t ~owner ~fresh ~lo:(min a b) ~hi:(max a b)
            | 4 -> (
                match Tree.pred t a with
                | Some _ | None -> t)
            | _ -> (
                ignore (Tree.range_items t ~lo:(min a b) ~hi:(max a b));
                t))
          (Helpers.genesis ~gap:3 60)
          script
      in
      Result.is_ok (Tree.validate t))

let () =
  Alcotest.run "properties"
    [
      ( "end-to-end",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_stream_matches_oracle Pipeline.plain;
            prop_stream_matches_oracle
              {
                Pipeline.premeld = Some { Premeld.threads = 2; distance = 3 };
                group_size = 1;
              };
            prop_premeld_equals_plain;
          ] );
      ( "codec robustness",
        List.map QCheck_alcotest.to_alcotest
          [ prop_block_corruption_detected; prop_block_truncation_detected ] );
      ( "tree invariants",
        List.map QCheck_alcotest.to_alcotest
          [ prop_mutators_preserve_invariants ] );
    ]
