.PHONY: all build test check bench-smoke bench clean

all: build

build:
	dune build

test:
	dune runtest

# Tier-1 gate: everything compiles and the full test suite passes.
check:
	dune build && dune runtest

# ~60-second smoke of the benchmark harness: the runtime-backends
# cross-check replays one premeld-bound history through the sequential
# and domain-parallel schedulers and verifies bit-identical results,
# pipeline-overlap replays one wire stream through seq/par:4/pipe:4 and
# records per-stage stage_us plus the pipelined backend's offload stats,
# and fig11 (nodes visited by final meld per optimization) contributes
# four cluster runs so BENCH_SMOKE.json carries real perf data
# (write_tps, stage_us, conflict-zone stats) for the trajectory.  The
# gate script then enforces the pipelining regression contract: pipe:4
# bit-identical to seq with a strictly lower driver critical path.
bench-smoke:
	dune exec bench/main.exe -- --json=BENCH_SMOKE.json --quick runtime pipeline-overlap fig11
	python3 scripts/check_bench_smoke.py BENCH_SMOKE.json

bench:
	dune exec bench/main.exe

clean:
	dune clean
