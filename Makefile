.PHONY: all build test check bench-smoke bench-macro bench-macro-baseline bench clean

all: build

build:
	dune build

test:
	dune runtest

# Tier-1 gate: everything compiles and the full test suite passes.
check:
	dune build && dune runtest

# ~60-second smoke of the benchmark harness: the runtime-backends
# cross-check replays one premeld-bound history through the sequential
# and domain-parallel schedulers and verifies bit-identical results,
# pipeline-overlap replays one wire stream through seq/par:4/pipe:4 and
# records per-stage stage_us plus the pipelined backend's offload stats,
# and fig11 (nodes visited by final meld per optimization) contributes
# four cluster runs so BENCH_SMOKE.json carries real perf data
# (write_tps, stage_us, conflict-zone stats) for the trajectory.  The
# gate script then enforces the pipelining regression contract: pipe:4
# bit-identical to seq with a strictly lower driver critical path.
bench-smoke:
	dune exec bench/main.exe -- --json=BENCH_SMOKE.json --quick runtime pipeline-overlap fig11
	python3 scripts/check_bench_smoke.py BENCH_SMOKE.json

# Tracked macro-benchmark: replays one mixed read/write history through
# seq, par:4 and pipe:4, measuring the final-meld critical path
# (fm_ns_per_txn) and exact per-stage GC words/txn.  The fresh run is
# gated against the committed BENCH_MACRO.json baseline: any backend
# diverging from sequential, the fm loop allocating more minor words/txn
# (tight tolerance — the number is deterministic) or a large fm-ns/txn
# regression (loose tolerance — wall clock on shared CI) fails the make.
# A second, flight-recorded run (kept out of the gated timing run so the
# recorder cannot touch the tracked melds/s) then feeds the analyzer,
# whose per-stage wait/service waterfall (FLIGHT_REPORT.json) is itself
# gated: no negative waits, stage sums bounded by end-to-end time, and
# the p50 stage-sum covering the p50 end-to-end latency within 5%.
bench-macro:
	dune exec bench/main.exe -- --json=BENCH_MACRO.run.json macro
	python3 scripts/check_bench_smoke.py --macro BENCH_MACRO.run.json BENCH_MACRO.json
	dune exec bench/main.exe -- --flight=FLIGHT.jsonl macro
	dune exec bin/hyder_cli.exe -- analyze FLIGHT.jsonl --json FLIGHT_REPORT.json
	python3 scripts/check_bench_smoke.py --flight FLIGHT_REPORT.json

# Refresh the committed baseline (run on a quiet machine, then commit).
bench-macro-baseline:
	dune exec bench/main.exe -- --json=BENCH_MACRO.json macro
	python3 scripts/check_bench_smoke.py --macro BENCH_MACRO.json

bench:
	dune exec bench/main.exe

clean:
	dune clean
