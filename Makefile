.PHONY: all build test check bench-smoke bench clean

all: build

build:
	dune build

test:
	dune runtest

# Tier-1 gate: everything compiles and the full test suite passes.
check:
	dune build && dune runtest

# ~30-second smoke of the benchmark harness: the runtime-backends
# cross-check replays one premeld-bound history through the sequential
# and domain-parallel schedulers and verifies bit-identical results, and
# fig11 (nodes visited by final meld per optimization) contributes four
# cluster runs so BENCH_SMOKE.json carries real perf data (write_tps,
# stage_us, conflict-zone stats) for the trajectory.
bench-smoke:
	dune exec bench/main.exe -- --json=BENCH_SMOKE.json --quick runtime fig11

bench:
	dune exec bench/main.exe

clean:
	dune clean
