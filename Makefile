.PHONY: all build test check bench-smoke bench clean

all: build

build:
	dune build

test:
	dune runtest

# Tier-1 gate: everything compiles and the full test suite passes.
check:
	dune build && dune runtest

# ~5-second smoke of the benchmark harness: the runtime-backends
# cross-check replays one premeld-bound history through the sequential
# and domain-parallel schedulers and verifies bit-identical results.
bench-smoke:
	dune exec bench/main.exe -- --quick runtime

bench:
	dune exec bench/main.exe

clean:
	dune clean
