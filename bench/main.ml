(* Benchmark harness: regenerates every figure of the paper's evaluation
   (Section 6 and Appendix B).

   Usage:
     dune exec bench/main.exe                 -- all figures, default scale
     dune exec bench/main.exe -- fig10 fig11  -- selected figures
     dune exec bench/main.exe -- --quick      -- fast smoke of everything
     dune exec bench/main.exe -- --paper      -- larger scale (slower)
     dune exec bench/main.exe -- --runtime=par:4 fig10
                                              -- cluster runs use the
                                                 domain-parallel premeld
                                                 backend (see "runtime")
     dune exec bench/main.exe -- --json=report.json --quick runtime
                                              -- also write a machine-readable
                                                 JSON run report

   Absolute numbers depend on this machine (the substrate is a calibrated
   simulation; see DESIGN.md); the SHAPES — who wins, by what factor, where
   crossovers fall — are the reproduction targets, recorded against the
   paper in EXPERIMENTS.md. *)

module Cluster = Hyder_cluster.Cluster
module Ycsb = Hyder_workload.Ycsb
module Pipeline = Hyder_core.Pipeline
module Premeld = Hyder_core.Premeld
module Runtime = Hyder_core.Runtime
module Counters = Hyder_core.Counters
module Clock = Hyder_util.Clock
module Corfu = Hyder_log.Corfu
module Engine = Hyder_sim.Engine
module Stats = Hyder_util.Stats
module Table = Hyder_util.Table
module I = Hyder_codec.Intention
module Json = Hyder_obs.Json
module Metrics = Hyder_obs.Metrics
module Flight = Hyder_obs.Flight

(* ---------------------------------------------------------------------- *)
(* Scale                                                                    *)
(* ---------------------------------------------------------------------- *)

type scale = {
  records : int;
  payload : int;
  duration : float;
  warmup : float;
  server_counts : int list;
  label : string;
}

let default_scale =
  {
    records = 1_000_000;
    payload = 128;
    duration = 0.25;
    warmup = 0.12;
    server_counts = [ 1; 2; 4; 6; 8; 10 ];
    label = "default (1M items, 128B payloads; paper: 10M x 1KB)";
  }

let quick_scale =
  {
    records = 50_000;
    payload = 64;
    duration = 0.08;
    warmup = 0.05;
    server_counts = [ 2; 6 ];
    label = "quick smoke (50K items)";
  }

let paper_scale =
  {
    records = 5_000_000;
    payload = 256;
    duration = 0.4;
    warmup = 0.2;
    server_counts = [ 1; 2; 4; 6; 8; 10 ];
    label = "large (5M items, 256B payloads)";
  }

let scale = ref default_scale

(* Stage runtime for the real pipeline inside cluster runs (see
   Cluster.config.runtime); settable with --runtime=par:<n>. *)
let runtime = ref Runtime.sequential

(* ---------------------------------------------------------------------- *)
(* Machine-readable run report (--json=FILE)                                *)
(* ---------------------------------------------------------------------- *)

let json_path : string option ref = ref None

(* Flight-record sink (--flight=FILE): the macro figure records every
   transaction's per-stage wait/service flight, one recorder per backend
   (labels "seq"/"par:4"/"pipe:4") multiplexed into this JSON-lines file
   for [hyder-cli analyze]. *)
let flight_path : string option ref = ref None

(* --adaptive: run the macro/overlap pipe rows with the adaptive handoff
   controller on (the baseline shape stays non-adaptive so tracked
   numbers compare like with like; results are bit-identical anyway). *)
let adaptive = ref false

let pipe4 () =
  Runtime.Pipelined
    { domains = 4; batch = Runtime.default_batch; adaptive = !adaptive }

let current_figure = ref ""
let report_runs : Json.t list ref = ref [] (* newest first *)
let report_seen : (string * string, unit) Hashtbl.t = Hashtbl.create 64

(* One entry per (figure, cluster-config key): the figure name ties a run
   back to the table it fed, the key is the memoization key (a stable
   fingerprint of the full cluster config), and the result carries
   write_tps, stage_us, the conflict-zone stats and the abort breakdown. *)
let note_run key r =
  if !json_path <> None then begin
    let id = (!current_figure, key) in
    if not (Hashtbl.mem report_seen id) then begin
      Hashtbl.add report_seen id ();
      report_runs :=
        Json.Obj
          [
            ("figure", Json.String !current_figure);
            ("config_key", Json.String key);
            ("result", Cluster.result_to_json r);
          ]
        :: !report_runs
    end
  end

(* ---------------------------------------------------------------------- *)
(* Memoized cluster runs                                                    *)
(* ---------------------------------------------------------------------- *)

let results : (string, Cluster.result) Hashtbl.t = Hashtbl.create 64

let pipeline_name (c : Pipeline.config) =
  match (c.Pipeline.premeld, c.Pipeline.group_size) with
  | None, 1 -> "Hyder II"
  | None, _ -> Printf.sprintf "Hyder II-Grp%d" c.Pipeline.group_size
  | Some pc, 1 ->
      if pc = Premeld.default_config then "Hyder II-Pre"
      else Printf.sprintf "Hyder II-Pre(t=%d,d=%d)" pc.Premeld.threads pc.Premeld.distance
  | Some _, _ -> "Hyder II-Opt"

let run_cluster ?(servers = 6) ?(pipeline = Pipeline.plain) ?(read_threads = 0)
    ?(write_threads = 20) ?workload () =
  let s = !scale in
  let workload =
    match workload with
    | Some w -> w
    | None ->
        { Ycsb.default with Ycsb.record_count = s.records; payload_size = s.payload }
  in
  let cfg =
    {
      Cluster.default_config with
      Cluster.servers;
      pipeline;
      runtime = !runtime;
      read_threads;
      write_threads;
      workload;
      duration = s.duration;
      warmup = s.warmup;
    }
  in
  let key =
    Printf.sprintf "s%d|%s|%s|r%d|w%d|%d/%d/%.2f/%.2f/%d/%s|%d" servers
      (pipeline_name pipeline)
      (Runtime.to_string !runtime)
      read_threads write_threads
      workload.Ycsb.record_count workload.Ycsb.ops_per_txn
      workload.Ycsb.update_fraction workload.Ycsb.scan_fraction
      workload.Ycsb.payload_size
      (I.isolation_to_string workload.Ycsb.isolation)
      (match workload.Ycsb.distribution with
      | Ycsb.Uniform -> 0
      | Ycsb.Zipfian _ -> 1
      | Ycsb.Scrambled_zipfian _ -> 2
      | Ycsb.Hotspot x -> 100 + int_of_float (x *. 1000.)
      | Ycsb.Latest -> 3)
  in
  let r =
    match Hashtbl.find_opt results key with
    | Some r -> r
    | None ->
        Printf.printf "  running %s ...%!" key;
        let t0 = Hyder_util.Clock.now () in
        let r = Cluster.run cfg in
        Printf.printf " %.0f wtps (%.0fs)\n%!" r.Cluster.write_tps
          (Hyder_util.Clock.elapsed t0);
        Hashtbl.replace results key r;
        r
  in
  note_run key r;
  r

let all_pipelines =
  [
    Pipeline.plain;
    Pipeline.with_group_meld;
    Pipeline.with_premeld;
    Pipeline.with_both;
  ]

let f = Table.cell_float
let i = Table.cell_int

(* ---------------------------------------------------------------------- *)
(* Figure 9: log service append throughput and latency                      *)
(* ---------------------------------------------------------------------- *)

let fig9 () =
  List.iter
    (fun threads_per_client ->
      let t =
        Table.create
          ~title:
            (Printf.sprintf
               "Figure 9(%s): shared-log appends, %d threads/client \
                [paper: peak >140K appends/s, p99 < 10ms]"
               (if threads_per_client = 20 then "a" else "b")
               threads_per_client)
          ~columns:[ "clients"; "appends/s"; "p50 ms"; "p95 ms"; "p99 ms" ]
      in
      List.iter
        (fun clients ->
          let eng = Engine.create () in
          let corfu = Corfu.create eng in
          let seconds = 2.0 in
          let block = String.make 4000 'x' in
          let rec loop () =
            if Engine.now eng < seconds then
              Corfu.append corfu block (fun _ -> loop ())
          in
          for _ = 1 to clients * threads_per_client do
            loop ()
          done;
          Engine.run ~until:seconds eng;
          let lat = Corfu.append_latencies corfu in
          let p pct = 1000.0 *. Stats.Sample.percentile lat pct in
          Table.add_row t
            [
              i clients;
              f (float_of_int (Corfu.appends_completed corfu) /. seconds);
              f (p 50.0);
              f (p 95.0);
              f (p 99.0);
            ])
        [ 1; 2; 4; 6; 8; 10 ];
      Table.print t)
    [ 20; 30 ]

(* ---------------------------------------------------------------------- *)
(* Figure 10: write throughput vs servers, per optimization                 *)
(* ---------------------------------------------------------------------- *)

let fig10 () =
  let t =
    Table.create
      ~title:
        "Figure 10: committed write txns/s vs servers (all-write workload, \
         SR) [paper peaks: Hyder II 15K, -Grp 23.5K, -Pre 45.3K, -Opt 44.8K \
         => Grp 1.6x, Pre 3x]"
      ~columns:
        ("servers" :: List.map pipeline_name all_pipelines)
  in
  List.iter
    (fun servers ->
      Table.add_row t
        (i servers
        :: List.map
             (fun p ->
               f (run_cluster ~servers ~pipeline:p ()).Cluster.write_tps)
             all_pipelines))
    !scale.server_counts;
  Table.print t;
  (* Ratios at the 6-server point, the paper's headline comparison. *)
  let at p = (run_cluster ~servers:6 ~pipeline:p ()).Cluster.write_tps in
  let base = at Pipeline.plain in
  Printf.printf
    "speedups at 6 servers: Grp %.2fx, Pre %.2fx, Opt %.2fx (paper: 1.6x, \
     3x, ~3x)\n"
    (at Pipeline.with_group_meld /. base)
    (at Pipeline.with_premeld /. base)
    (at Pipeline.with_both /. base)

(* ---------------------------------------------------------------------- *)
(* Figures 11-13: final-meld work breakdown at 6 servers                    *)
(* ---------------------------------------------------------------------- *)

let fig11 () =
  let t =
    Table.create
      ~title:
        "Figure 11: tree nodes visited by FINAL MELD per txn [paper: Grp \
         ~2x fewer, Pre 8-10x fewer]"
      ~columns:[ "config"; "fm nodes/txn"; "vs Hyder II" ]
  in
  let base =
    (run_cluster ~pipeline:Pipeline.plain ()).Cluster.fm_nodes_per_txn
  in
  List.iter
    (fun p ->
      let v = (run_cluster ~pipeline:p ()).Cluster.fm_nodes_per_txn in
      Table.add_row t
        [ pipeline_name p; f v; Printf.sprintf "%.2fx" (base /. v) ])
    all_pipelines;
  Table.print t

let fig12 () =
  let t =
    Table.create
      ~title:
        "Figure 12: conflict zone observed by final meld, in intention \
         blocks [paper: premeld shrinks it 40x-500x; group meld unchanged]"
      ~columns:[ "config"; "zone (intentions)"; "zone (blocks)"; "vs Hyder II" ]
  in
  let base =
    (run_cluster ~pipeline:Pipeline.plain ()).Cluster.conflict_zone_blocks
  in
  List.iter
    (fun p ->
      let r = run_cluster ~pipeline:p () in
      Table.add_row t
        [
          pipeline_name p;
          f r.Cluster.conflict_zone_intentions;
          f r.Cluster.conflict_zone_blocks;
          Printf.sprintf "%.0fx" (base /. max 1.0 r.Cluster.conflict_zone_blocks);
        ])
    all_pipelines;
  Table.print t

let fig13 () =
  let t =
    Table.create
      ~title:
        "Figure 13: nodes visited per txn in each pipeline stage [paper: \
         fm work falls with each optimization; pm+gm aggregate exceeds \
         plain fm]"
      ~columns:[ "config"; "fm"; "pm (all threads)"; "gm"; "total" ]
  in
  List.iter
    (fun p ->
      let r = run_cluster ~pipeline:p () in
      let fm = r.Cluster.fm_nodes_per_txn
      and pm = r.Cluster.pm_nodes_per_txn
      and gm = r.Cluster.gm_nodes_per_txn in
      Table.add_row t [ pipeline_name p; f fm; f pm; f gm; f (fm +. pm +. gm) ])
    all_pipelines;
  Table.print t

(* ---------------------------------------------------------------------- *)
(* Section 6.4.2: comparison with Tango and in-memory Hyder                 *)
(* ---------------------------------------------------------------------- *)

let tango () =
  let t =
    Table.create
      ~title:
        "Section 6.4.2: 100K-item comparison [paper: Hyder II ~20K tps, \
         Tango 15-25K tps, in-memory Hyder [8] 50-60K tps, Hyder II-Pre \
         beats Tango]"
      ~columns:[ "system"; "throughput (tps)"; "note" ]
  in
  let wl =
    { Ycsb.default with Ycsb.record_count = 100_000; payload_size = !scale.payload }
  in
  let r_plain = run_cluster ~pipeline:Pipeline.plain ~workload:wl () in
  let r_pre = run_cluster ~pipeline:Pipeline.with_premeld ~workload:wl () in
  Table.add_row t
    [ "Hyder II (6 servers)"; f r_plain.Cluster.write_tps; "tree index, SR" ];
  Table.add_row t
    [ "Hyder II-Pre (6 servers)"; f r_pre.Cluster.write_tps; "tree index, SR" ];
  (* Tango: hash index, apply-bound.  Note our substrate only models the
     hash apply loop, which is far cheaper than Tango's published end-to-end
     numbers (15-25K tps including RPC and client costs we do not model);
     the comparable quantities are the ordering and the index trade-off. *)
  let module Tango = Hyder_baselines.Tango in
  let apply_us, tango_aborts =
    Tango.run_workload ~records:100_000 ~txns:50_000 ~window:2_000
      ~reads_per_txn:8 ~writes_per_txn:2 ()
  in
  Table.add_row t
    [
      "Tango (hash index)";
      f (1e6 /. apply_us);
      Printf.sprintf
        "apply-bound ceiling, %.1fus/txn, %.1f%% aborts, no range queries"
        apply_us (100.0 *. tango_aborts);
    ];
  (* In-memory Hyder [8]: single node, conflict zone capped at 256. *)
  let r8 = Hyder_baselines.Inmem_hyder.run ~txns:15_000 ~workload:wl () in
  Table.add_row t
    [
      "in-memory Hyder [8]";
      f r8.Hyder_baselines.Inmem_hyder.meld_bound_tps;
      Printf.sprintf "meld-bound, %.1fus/txn, zone<=256"
        r8.Hyder_baselines.Inmem_hyder.meld_us;
    ];
  Table.print t

(* ---------------------------------------------------------------------- *)
(* Figure 14: read-only scaling                                             *)
(* ---------------------------------------------------------------------- *)

let fig14 () =
  let t =
    Table.create
      ~title:
        "Figure 14: total and write txns/s with 6 write + {0,1,2,4} read \
         executors per server (premeld) [paper: total scales ~linearly to \
         670K tps at 10 servers/4R; write tps dips slightly as read \
         executors steal cores]"
      ~columns:
        [ "servers"; "mix"; "write tps"; "read tps"; "total tps" ]
  in
  let server_counts =
    List.filter (fun s -> s >= 2) !scale.server_counts
  in
  List.iter
    (fun servers ->
      List.iter
        (fun read_threads ->
          let r =
            run_cluster ~servers ~pipeline:Pipeline.with_premeld
              ~write_threads:6 ~read_threads ()
          in
          Table.add_row t
            [
              i servers;
              Printf.sprintf "6W-%dR" read_threads;
              f r.Cluster.write_tps;
              f r.Cluster.read_tps;
              f r.Cluster.total_tps;
            ])
        [ 0; 1; 2; 4 ])
    server_counts;
  Table.print t

(* ---------------------------------------------------------------------- *)
(* Figures 15-17: snapshot isolation                                        *)
(* ---------------------------------------------------------------------- *)

let si_workload () =
  {
    Ycsb.default with
    Ycsb.record_count = !scale.records;
    payload_size = !scale.payload;
    isolation = I.Snapshot_isolation;
  }

let fig15 () =
  let t =
    Table.create
      ~title:
        "Figure 15: serializable vs snapshot isolation, no optimizations \
         [paper: SI gives ~2.5x tps from ~4x smaller intentions and 3-4x \
         fewer nodes melded]"
      ~columns:
        [ "isolation"; "write tps"; "fm nodes/txn"; "intention bytes" ]
  in
  let sr = run_cluster ~pipeline:Pipeline.plain () in
  let si = run_cluster ~pipeline:Pipeline.plain ~workload:(si_workload ()) () in
  List.iter
    (fun (name, (r : Cluster.result)) ->
      Table.add_row t
        [
          name;
          f r.Cluster.write_tps;
          f r.Cluster.fm_nodes_per_txn;
          f r.Cluster.intention_bytes;
        ])
    [ ("serializable", sr); ("snapshot isolation", si) ];
  Table.print t;
  Printf.printf
    "SI/SR: %.2fx tps, %.2fx fewer fm nodes, %.2fx smaller intentions \
     (paper: ~2.5x, 3-4x, ~4x)\n"
    (si.Cluster.write_tps /. sr.Cluster.write_tps)
    (sr.Cluster.fm_nodes_per_txn /. si.Cluster.fm_nodes_per_txn)
    (sr.Cluster.intention_bytes /. si.Cluster.intention_bytes)

let fig16 () =
  let t =
    Table.create
      ~title:
        "Figure 16: optimizations under snapshot isolation [paper: premeld \
         still 2x-3x; group meld insignificant]"
      ~columns:[ "config"; "write tps"; "vs plain" ]
  in
  let base =
    (run_cluster ~pipeline:Pipeline.plain ~workload:(si_workload ()) ())
      .Cluster.write_tps
  in
  List.iter
    (fun p ->
      let r = run_cluster ~pipeline:p ~workload:(si_workload ()) () in
      Table.add_row t
        [
          pipeline_name p;
          f r.Cluster.write_tps;
          Printf.sprintf "%.2fx" (r.Cluster.write_tps /. base);
        ])
    all_pipelines;
  Table.print t

let fig17 () =
  let t =
    Table.create
      ~title:
        "Figure 17: fm nodes visited under SI [paper: only premeld reduces \
         them; group meld ~10% because 2-write intentions barely overlap]"
      ~columns:[ "config"; "fm nodes/txn"; "vs plain" ]
  in
  let base =
    (run_cluster ~pipeline:Pipeline.plain ~workload:(si_workload ()) ())
      .Cluster.fm_nodes_per_txn
  in
  List.iter
    (fun p ->
      let r = run_cluster ~pipeline:p ~workload:(si_workload ()) () in
      Table.add_row t
        [
          pipeline_name p;
          f r.Cluster.fm_nodes_per_txn;
          Printf.sprintf "%.2fx" (base /. r.Cluster.fm_nodes_per_txn);
        ])
    all_pipelines;
  Table.print t

(* ---------------------------------------------------------------------- *)
(* Figures 18-19: skewed access                                             *)
(* ---------------------------------------------------------------------- *)

let fig18_19 () =
  let t =
    Table.create
      ~title:
        "Figures 18-19: hotspot skew x (x of the items get 1-x of accesses) \
         [paper: plain tps RISES with skew (meld terminates higher); \
         premeld flat at ~3.5x plain; abort rate grows slightly]"
      ~columns:
        [
          "x"; "Hyder II tps"; "II fm nodes"; "II aborts %";
          "Pre tps"; "Pre fm nodes"; "Pre aborts %";
        ]
  in
  List.iter
    (fun x ->
      let wl dist =
        {
          Ycsb.default with
          Ycsb.record_count = !scale.records;
          payload_size = !scale.payload;
          distribution = dist;
        }
      in
      let dist = if x >= 1.0 then Ycsb.Uniform else Ycsb.Hotspot x in
      let plain = run_cluster ~pipeline:Pipeline.plain ~workload:(wl dist) () in
      let pre =
        run_cluster ~pipeline:Pipeline.with_premeld ~workload:(wl dist) ()
      in
      Table.add_row t
        [
          f x;
          f plain.Cluster.write_tps;
          f plain.Cluster.fm_nodes_per_txn;
          f (100.0 *. plain.Cluster.abort_rate);
          f pre.Cluster.write_tps;
          f pre.Cluster.fm_nodes_per_txn;
          f (100.0 *. pre.Cluster.abort_rate);
        ])
    [ 0.05; 0.1; 0.25; 0.5; 1.0 ];
  Table.print t

(* ---------------------------------------------------------------------- *)
(* Figure 20: premeld distance                                              *)
(* ---------------------------------------------------------------------- *)

let fig20 () =
  let t =
    Table.create
      ~title:
        "Figure 20: throughput vs premeld distance d (5 threads) [paper: \
         best at d=10, declining as d grows]"
      ~columns:[ "d"; "write tps"; "fm zone (intentions)" ]
  in
  List.iter
    (fun d ->
      let pipeline =
        {
          Pipeline.premeld = Some { Premeld.threads = 5; distance = d };
          group_size = 1;
        }
      in
      let r = run_cluster ~pipeline () in
      Table.add_row t
        [ i d; f r.Cluster.write_tps; f r.Cluster.conflict_zone_intentions ])
    [ 1; 5; 10; 50; 100; 400 ];
  Table.print t

(* ---------------------------------------------------------------------- *)
(* Figures 21-22: transaction size                                          *)
(* ---------------------------------------------------------------------- *)

let fig21_22 () =
  let t =
    Table.create
      ~title:
        "Figures 21-22: ops per txn (20% updates) [paper: tps falls \
         ~proportionally with txn size; premeld stays ~3x with ~7x fewer \
         fm nodes]"
      ~columns:
        [ "ops"; "Hyder II tps"; "II fm nodes"; "Pre tps"; "Pre fm nodes"; "Pre/II" ]
  in
  List.iter
    (fun ops ->
      let wl =
        {
          Ycsb.default with
          Ycsb.record_count = !scale.records;
          payload_size = !scale.payload;
          ops_per_txn = ops;
        }
      in
      let plain = run_cluster ~pipeline:Pipeline.plain ~workload:wl () in
      let pre = run_cluster ~pipeline:Pipeline.with_premeld ~workload:wl () in
      Table.add_row t
        [
          i ops;
          f plain.Cluster.write_tps;
          f plain.Cluster.fm_nodes_per_txn;
          f pre.Cluster.write_tps;
          f pre.Cluster.fm_nodes_per_txn;
          Printf.sprintf "%.2fx" (pre.Cluster.write_tps /. plain.Cluster.write_tps);
        ])
    [ 4; 8; 16; 32 ];
  Table.print t

(* ---------------------------------------------------------------------- *)
(* Figures 23-24: update fraction                                           *)
(* ---------------------------------------------------------------------- *)

let fig23_24 () =
  let t =
    Table.create
      ~title:
        "Figures 23-24: update fraction of a 10-op txn [paper: tps falls as \
         updates grow; ephemeral nodes created grow with update fraction, \
         premeld/gm create slightly more]"
      ~columns:
        [
          "updates"; "Hyder II tps"; "II eph/txn"; "Pre tps"; "Pre eph/txn";
        ]
  in
  List.iter
    (fun u ->
      let wl =
        {
          Ycsb.default with
          Ycsb.record_count = !scale.records;
          payload_size = !scale.payload;
          update_fraction = u;
        }
      in
      let plain = run_cluster ~pipeline:Pipeline.plain ~workload:wl () in
      let pre = run_cluster ~pipeline:Pipeline.with_premeld ~workload:wl () in
      Table.add_row t
        [
          f u;
          f plain.Cluster.write_tps;
          f plain.Cluster.ephemerals_per_txn;
          f pre.Cluster.write_tps;
          f pre.Cluster.ephemerals_per_txn;
        ])
    [ 0.1; 0.2; 0.5; 1.0 ];
  Table.print t

(* ---------------------------------------------------------------------- *)
(* Ablations beyond the paper                                               *)
(* ---------------------------------------------------------------------- *)

let abl_premeld_threads () =
  let t =
    Table.create
      ~title:
        "Ablation: premeld thread count at d=10 (paper used 5) — premeld \
         capacity scales with threads until another stage binds"
      ~columns:[ "threads"; "write tps"; "pm us/txn" ]
  in
  List.iter
    (fun threads ->
      let pipeline =
        {
          Pipeline.premeld = Some { Premeld.threads; distance = 10 };
          group_size = 1;
        }
      in
      let r = run_cluster ~pipeline () in
      let _, pm, _, _ = r.Cluster.stage_us in
      Table.add_row t [ i threads; f r.Cluster.write_tps; f pm ])
    [ 1; 2; 5; 8 ];
  Table.print t

let abl_group_size () =
  let t =
    Table.create
      ~title:
        "Ablation: group size (paper pairs; larger groups amortize more but \
         widen fate sharing)"
      ~columns:[ "group size"; "write tps"; "abort %"; "fm nodes/txn" ]
  in
  List.iter
    (fun g ->
      let pipeline = { Pipeline.premeld = None; group_size = g } in
      let r = run_cluster ~pipeline () in
      Table.add_row t
        [
          i g;
          f r.Cluster.write_tps;
          f (100.0 *. r.Cluster.abort_rate);
          f r.Cluster.fm_nodes_per_txn;
        ])
    [ 1; 2; 4; 8 ];
  Table.print t

let abl_admission () =
  let t =
    Table.create
      ~title:
        "Ablation: adaptive admission control (the paper's future work,          Section 5.2) under heavy contention — AIMD trades a little          throughput headroom for far fewer aborts"
      ~columns:[ "admission"; "write tps"; "abort %" ]
  in
  let wl =
    { Ycsb.default with Ycsb.record_count = 100_000; payload_size = !scale.payload }
  in
  List.iter
    (fun (name, adaptive) ->
      let cfg =
        {
          Cluster.default_config with
          Cluster.servers = 6;
          workload = wl;
          duration = !scale.duration;
          warmup = !scale.warmup;
          adaptive_admission = adaptive;
        }
      in
      let r = Cluster.run cfg in
      note_run ("admission=" ^ name) r;
      Table.add_row t
        [ name; f r.Cluster.write_tps; f (100.0 *. r.Cluster.abort_rate) ])
    [
      ("fixed 80/thread", None);
      ("adaptive AIMD", Some Hyder_cluster.Admission.default_config);
    ];
  Table.print t

let abl_index_size () =
  let t =
    Table.create
      ~title:
        "Ablation: binary tree vs B-tree under copy-on-write (the Section 2          design argument: a binary tree consumes less storage per update,          so intentions are smaller and meld faster)"
      ~columns:
        [ "index"; "depth"; "bytes copied / 10-op txn"; "vs binary" ]
  in
  let module B = Hyder_baselines.Cow_btree in
  let n = 200_000 in
  let payload = String.make 64 'v' in
  let items = Array.init n (fun k -> (k, payload)) in
  let treap =
    Hyder_tree.Tree.of_sorted_array
      (Array.map (fun (k, v) -> (k, Hyder_tree.Payload.value v)) items)
  in
  let rng = Hyder_util.Rng.create 12L in
  (* binary baseline: measure real serialized intention bytes *)
  let binary_bytes =
    let total = ref 0 in
    for i = 1 to 100 do
      let e =
        Hyder_core.Executor.begin_txn ~snapshot_pos:(-1) ~snapshot:treap
          ~server:0 ~txn_seq:i ~isolation:I.Snapshot_isolation ()
      in
      for _ = 1 to 10 do
        Hyder_core.Executor.write e (Hyder_util.Rng.int rng n) payload
      done;
      (match Hyder_core.Executor.finish e with
      | Some d -> total := !total + Hyder_codec.Codec.encoded_size d
      | None -> ());
      ()
    done;
    float_of_int !total /. 100.0
  in
  Table.add_row t
    [
      "binary (treap, as shipped)";
      i (Hyder_tree.Tree.depth treap);
      f binary_bytes;
      "1.00x";
    ];
  List.iter
    (fun fanout ->
      let btree = B.create ~fanout items in
      let total = ref 0 in
      for _ = 1 to 100 do
        for _ = 1 to 10 do
          let _, st = B.update btree (Hyder_util.Rng.int rng n) payload in
          total := !total + st.B.bytes_copied
        done
      done;
      let per_txn = float_of_int !total /. 100.0 in
      Table.add_row t
        [
          Printf.sprintf "B-tree fanout %d" fanout;
          i (B.depth btree);
          f per_txn;
          Printf.sprintf "%.1fx" (per_txn /. binary_bytes);
        ])
    [ 16; 64; 256 ];
  Table.print t

(* ---------------------------------------------------------------------- *)
(* Runtime backends: real domain-parallel premeld vs the sequential         *)
(* scheduler on one identical intention stream                              *)
(* ---------------------------------------------------------------------- *)

let runtime_backends () =
  let module Tree = Hyder_tree.Tree in
  let module Payload = Hyder_tree.Payload in
  let module Executor = Hyder_core.Executor in
  let txns = if !scale.records <= 100_000 then 1_500 else 6_000 in
  let n = 50_000 in
  let config =
    { Pipeline.premeld = Some { Premeld.threads = 5; distance = 10 };
      group_size = 2 }
  in
  let genesis =
    Tree.of_sorted_array
      (Array.init n (fun k -> (k, Payload.value ("v" ^ string_of_int k))))
  in
  (* Phase 1: record a premeld-bound intention history with a sequential
     pipeline.  Snapshots lag far enough behind the log that every
     intention's designated input state (seq - t*d - 1) postdates its
     snapshot, so premeld really melds. *)
  let rng = Hyder_util.Rng.create 424242L in
  let gen = Pipeline.create ~config ~genesis () in
  let history = ref [ (-1, genesis) ] (* newest first *) in
  let hist_len = ref 1 in
  let intentions = ref [] in
  let next_pos = ref 0 in
  for txn_seq = 0 to txns - 1 do
    let lag = min (60 + Hyder_util.Rng.int rng 40) (!hist_len - 1) in
    let snapshot_pos, snapshot = List.nth !history lag in
    let e =
      Executor.begin_txn ~snapshot_pos ~snapshot ~server:0 ~txn_seq
        ~isolation:I.Serializable ()
    in
    for _ = 1 to 2 do
      ignore (Executor.read e (Hyder_util.Rng.int rng n))
    done;
    for _ = 1 to 2 do
      Executor.write e (Hyder_util.Rng.int rng n) ("u" ^ string_of_int txn_seq)
    done;
    match Executor.finish e with
    | None -> ()
    | Some draft ->
        next_pos := !next_pos + 2;
        let intention = I.assign ~pos:!next_pos draft in
        intentions := intention :: !intentions;
        ignore (Pipeline.submit gen intention);
        let _, pos, tree = Pipeline.lcs gen in
        history := (pos, tree) :: !history;
        incr hist_len
  done;
  ignore (Pipeline.flush gen);
  let intentions = List.rev !intentions in
  (* Phase 2: replay the identical stream under each backend, feeding
     submit_batch in slabs so the parallel backend gets full premeld
     windows to fan out. *)
  let slab = 256 in
  let batches =
    let rec take k acc = function
      | x :: tl when k > 0 -> take (k - 1) (x :: acc) tl
      | rest -> (List.rev acc, rest)
    in
    let rec go = function
      | [] -> []
      | l ->
          let s, rest = take slab [] l in
          s :: go rest
    in
    go intentions
  in
  let run backend =
    let p = Pipeline.create ~config ~runtime:backend ~genesis () in
    let t0 = Clock.now () in
    let decisions =
      List.concat_map (fun b -> Pipeline.submit_batch p b) batches
      @ Pipeline.flush p
    in
    let wall = Clock.elapsed t0 in
    let pm = (Counters.premeld_total (Pipeline.counters p)).Counters.seconds in
    let _, _, final = Pipeline.lcs p in
    Pipeline.shutdown p;
    (decisions, final, wall, pm)
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Runtime backends: %d premeld-bound txns (t=5, d=10, groups of \
            2) replayed through identical pipelines — the Parallel backend \
            must be bit-identical to Sequential (Section 3.4)"
           (List.length intentions))
      ~columns:[ "runtime"; "wall s"; "pm busy s"; "speedup"; "same as seq" ]
  in
  let base = run Runtime.sequential in
  let report name (decisions, final, wall, pm) =
    let bd, bfinal, bwall, _ = base in
    let same =
      List.length decisions = List.length bd
      && List.for_all2
           (fun (a : Pipeline.decision) (b : Pipeline.decision) ->
             a.Pipeline.seq = b.Pipeline.seq
             && a.Pipeline.committed = b.Pipeline.committed
             && a.Pipeline.decided_at = b.Pipeline.decided_at)
           decisions bd
      && Tree.physically_equal final bfinal
    in
    Table.add_row t
      [
        name; f wall; f pm;
        Printf.sprintf "%.2fx" (bwall /. wall);
        (if same then "yes" else "NO");
      ]
  in
  report "seq" base;
  List.iter
    (fun d ->
      report (Printf.sprintf "par:%d" d) (run (Runtime.parallel ~domains:d)))
    [ 2; 4 ];
  Table.print t;
  Printf.printf
    "(pm busy is summed across premeld shards and so stays ~constant; \
     wall-clock speedup needs free physical cores — the load-bearing \
     column is 'same as seq', checked down to ephemeral node ids)\n"

(* ---------------------------------------------------------------------- *)
(* Pipeline overlap: how much of the pre-fm pipeline the pipelined          *)
(* backend moves off the driver's critical path, on one wire stream         *)
(* ---------------------------------------------------------------------- *)

(* Record a deterministic wire stream for replay figures.  The generator
   is wire-fed, like a real replica — it melds what it decodes — so the
   encoder's payload elisions and version references resolve on any
   replay of the same bytes.  Returns the (pos, bytes) list in log
   order. *)
let record_wire_stream ~seed ~txns ~n ~config ~genesis =
  let module Executor = Hyder_core.Executor in
  let module Codec = Hyder_codec.Codec in
  let rng = Hyder_util.Rng.create seed in
  let gen = Pipeline.create ~config ~genesis () in
  let history = ref [ (-1, genesis) ] (* newest first *) in
  let hist_len = ref 1 in
  let wires = ref [] in
  let next_pos = ref 0 in
  for txn_seq = 0 to txns - 1 do
    let lag = min (Hyder_util.Rng.int rng 80) (!hist_len - 1) in
    let snapshot_pos, snapshot = List.nth !history lag in
    let e =
      Executor.begin_txn ~snapshot_pos ~snapshot ~server:0 ~txn_seq
        ~isolation:I.Serializable ()
    in
    for _ = 1 to 2 do
      ignore (Executor.read e (Hyder_util.Rng.int rng n))
    done;
    for _ = 1 to 2 do
      Executor.write e (Hyder_util.Rng.int rng n) ("u" ^ string_of_int txn_seq)
    done;
    match Executor.finish e with
    | None -> ()
    | Some draft ->
        next_pos := !next_pos + 2;
        let src = Codec.encode draft in
        let intention = Pipeline.decode gen ~pos:!next_pos src in
        wires := (!next_pos, src) :: !wires;
        ignore (Pipeline.submit gen intention);
        let _, pos, tree = Pipeline.lcs gen in
        history := (pos, tree) :: !history;
        incr hist_len
  done;
  ignore (Pipeline.flush gen);
  List.rev !wires

let batches_of ~slab wires =
  let rec take k acc = function
    | x :: tl when k > 0 -> take (k - 1) (x :: acc) tl
    | rest -> (List.rev acc, rest)
  in
  let rec go = function
    | [] -> []
    | l ->
        let s, rest = take slab [] l in
        s :: go rest
  in
  go wires

let pipeline_overlap () =
  let module Tree = Hyder_tree.Tree in
  let module Payload = Hyder_tree.Payload in
  let txns = if !scale.records <= 100_000 then 1_500 else 6_000 in
  let n = 50_000 in
  let config =
    { Pipeline.premeld = Some { Premeld.threads = 5; distance = 10 };
      group_size = 2 }
  in
  let genesis =
    Tree.of_sorted_array
      (Array.init n (fun k -> (k, Payload.value ("v" ^ string_of_int k))))
  in
  let wires = record_wire_stream ~seed:171717L ~txns ~n ~config ~genesis in
  let count = List.length wires in
  let batches = batches_of ~slab:256 wires in
  (* Phase 2: replay the identical bytes under each backend through
     submit_wire_batch.  The driver's critical path per intention is the
     stage seconds it executed itself: total stage time minus what worker
     domains absorbed. *)
  let run backend =
    let p = Pipeline.create ~config ~runtime:backend ~genesis () in
    let t0 = Clock.now () in
    let decisions =
      List.concat_map (fun b -> Pipeline.submit_wire_batch p b) batches
      @ Pipeline.flush p
    in
    let wall = Clock.elapsed t0 in
    let c = Pipeline.counters p in
    let ds = c.Counters.deserialize.Counters.seconds in
    let pm = (Counters.premeld_total c).Counters.seconds in
    let gm = c.Counters.group_meld.Counters.seconds in
    let fm = c.Counters.final_meld.Counters.seconds in
    let off = Pipeline.offload p in
    let _, _, final = Pipeline.lcs p in
    Pipeline.shutdown p;
    (decisions, final, wall, (ds, pm, gm, fm), off)
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Pipeline overlap: %d intentions replayed from wire bytes — \
            driver-executed stage time per intention (fm critical path) \
            under the staged ds/pm/gm worker fabric vs inline decoding"
           count)
      ~columns:
        [ "runtime"; "wall s"; "driver us/int"; "ds offload"; "gm offload";
          "same as seq" ]
  in
  let base = run Runtime.sequential in
  let fcount = float_of_int count in
  let driver_us (ds, pm, gm, fm) off =
    let wds, wpm, wgm =
      match off with
      | Some o ->
          ( o.Pipeline.worker_ds_seconds,
            o.Pipeline.worker_pm_seconds,
            o.Pipeline.worker_gm_seconds )
      | None -> (0.0, 0.0, 0.0)
    in
    (ds -. wds +. (pm -. wpm) +. (gm -. wgm) +. fm) /. fcount *. 1e6
  in
  let report name (decisions, final, wall, stages, off) =
    let bd, bfinal, _, _, _ = base in
    let same =
      List.length decisions = List.length bd
      && List.for_all2
           (fun (a : Pipeline.decision) (b : Pipeline.decision) ->
             a.Pipeline.seq = b.Pipeline.seq
             && a.Pipeline.committed = b.Pipeline.committed
             && a.Pipeline.decided_at = b.Pipeline.decided_at)
           decisions bd
      && Tree.physically_equal final bfinal
    in
    let ds_off, gm_off =
      match off with
      | Some o ->
          let dsr = float_of_int o.Pipeline.ds_offloaded /. fcount in
          let (dss, _, gms, _) = stages in
          let gmr = if gms > 0.0 then o.Pipeline.worker_gm_seconds /. gms else 0.0 in
          ignore dss;
          (dsr, gmr)
      | None -> (0.0, 0.0)
    in
    let dus = driver_us stages off in
    Table.add_row t
      [
        name; f wall;
        Printf.sprintf "%.2f" dus;
        Printf.sprintf "%.0f%%" (100.0 *. ds_off);
        Printf.sprintf "%.0f%%" (100.0 *. gm_off);
        (if same then "yes" else "NO");
      ];
    (* feed the machine-readable report (BENCH_SMOKE regression gate) *)
    if !json_path <> None then begin
      let ds, pm, gm, fm = stages in
      let us x = Json.Float (x /. fcount *. 1e6) in
      report_runs :=
        Json.Obj
          [
            ("figure", Json.String "pipeline-overlap");
            ("runtime", Json.String name);
            ("intentions", Json.Int count);
            ("wall_s", Json.Float wall);
            ( "stage_us",
              Json.Obj
                [
                  ("ds", us ds); ("pm", us pm); ("gm", us gm); ("fm", us fm);
                  ("driver_critical_path", Json.Float dus);
                ] );
            ( "offload",
              match off with
              | None -> Json.Null
              | Some o ->
                  Json.Obj
                    [
                      ("ds_offloaded", Json.Int o.Pipeline.ds_offloaded);
                      ("ds_inline", Json.Int o.Pipeline.ds_inline);
                      ("worker_ds_s", Json.Float o.Pipeline.worker_ds_seconds);
                      ("worker_pm_s", Json.Float o.Pipeline.worker_pm_seconds);
                      ("worker_gm_s", Json.Float o.Pipeline.worker_gm_seconds);
                      ("max_queue_depth", Json.Int o.Pipeline.max_queue_depth);
                      ("queue_capacity", Json.Int o.Pipeline.queue_capacity);
                      ("handoff_batches", Json.Int o.Pipeline.handoff_batches);
                      ("handoff_items", Json.Int o.Pipeline.handoff_items);
                      ( "doorbell_wakeups",
                        Json.Int o.Pipeline.doorbell_wakeups );
                      ("driver_steals", Json.Int o.Pipeline.driver_steals);
                      ("adaptive_batch", Json.Int o.Pipeline.adaptive_batch);
                      ("adaptive_window", Json.Int o.Pipeline.adaptive_window);
                    ] );
            ("same_as_seq", Json.Bool same);
          ]
        :: !report_runs
    end
  in
  report "seq" base;
  report "par:4" (run (Runtime.parallel ~domains:4));
  report "pipe:4" (run (pipe4 ()));
  Table.print t;
  Printf.printf
    "(driver us/int = (ds+pm+gm+fm seconds the driver itself executed) / \
     intentions; on a free-core machine the wall column drops too — on a \
     loaded one the offload columns carry the signal)\n"

(* ---------------------------------------------------------------------- *)
(* Macro benchmark: the tracked perf trajectory (BENCH_MACRO.json)          *)
(* ---------------------------------------------------------------------- *)

(* Steady-state numbers for the final-meld critical path, tracked across
   PRs via `make bench-macro` → BENCH_MACRO.json and gated by
   scripts/check_bench_smoke.py.  A fixed-seed wire stream (identical
   bytes run to run, so gate movement is code, not workload) is replayed
   under seq/par:4/pipe:4; the first [warm_txns] intentions are warmup —
   counters, metrics and offload stats are snapshotted at the boundary
   and diffed at the end.  Per-stage GC words come from the pipeline's
   Fcounter instruments (Gc.counters deltas around the stage work; each
   sample covers the stage work executed on the domain that owns the
   stage — see Pipeline's instruments for the exact coverage; under
   pipe:<n>, fm on the driver is precisely what the figure is about). *)
let macro () =
  let module Tree = Hyder_tree.Tree in
  let module Payload = Hyder_tree.Payload in
  let txns = 6_000 in
  let warm_txns = 1_000 in
  let n = 50_000 in
  let config =
    { Pipeline.premeld = Some { Premeld.threads = 5; distance = 10 };
      group_size = 2 }
  in
  let genesis =
    Tree.of_sorted_array
      (Array.init n (fun k -> (k, Payload.value ("v" ^ string_of_int k))))
  in
  let wires = record_wire_stream ~seed:271828L ~txns ~n ~config ~genesis in
  let count = List.length wires in
  let warm, rest =
    let rec split k acc = function
      | x :: tl when k > 0 -> split (k - 1) (x :: acc) tl
      | tl -> (List.rev acc, tl)
    in
    split warm_txns [] wires
  in
  let warm_batches = batches_of ~slab:256 warm in
  let meas_batches = batches_of ~slab:256 rest in
  let fval snap name =
    match List.assoc_opt name snap with
    | Some (Metrics.Fcounter_v x) -> x
    | _ -> 0.0
  in
  let flight_sink =
    match !flight_path with None -> None | Some path -> Some (open_out path)
  in
  let run ?(lazy_decode = true) name backend =
    let metrics = Metrics.create () in
    let flight =
      match flight_sink with
      | None -> Flight.disabled
      | Some oc -> Flight.create ~label:name ~metrics ~sink:oc ()
    in
    let p =
      Pipeline.create ~config ~runtime:backend ~lazy_decode ~metrics ~flight
        ~genesis ()
    in
    let warm_decisions =
      List.concat_map (fun b -> Pipeline.submit_wire_batch p b) warm_batches
    in
    let c0 = Counters.copy (Pipeline.counters p) in
    let m0 = Metrics.snapshot metrics in
    let off0 = Pipeline.offload p in
    (* Driver-domain allocation bracket: Gc.minor_words is per-domain in
       OCaml 5, so this measures exactly the driver's share — worker-side
       stage allocation never shows up here.  The handoff-allocation gate
       in check_bench_smoke.py lives on this number. *)
    let mw0 = Gc.minor_words () in
    let t0 = Clock.now () in
    let decisions =
      List.concat_map (fun b -> Pipeline.submit_wire_batch p b) meas_batches
      @ Pipeline.flush p
    in
    let wall = Clock.elapsed t0 in
    let driver_minor_w = Gc.minor_words () -. mw0 in
    let c1 = Pipeline.counters p in
    let gc = Metrics.diff ~base:m0 (Metrics.snapshot metrics) in
    let off1 = Pipeline.offload p in
    let _, _, final = Pipeline.lcs p in
    Flight.export_percentiles flight;
    Pipeline.shutdown p;
    (warm_decisions @ decisions, List.length decisions, final, wall,
     (c0, c1), gc, (off0, off1), driver_minor_w)
  in
  let base = run "seq" Runtime.sequential in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Macro: %d intentions (last %d measured, warmup excluded) — \
            melds/s, fm critical path and GC words per txn"
           count (count - warm_txns))
      ~columns:
        [ "runtime"; "melds/s"; "fm ns/txn"; "driver us/int";
          "ds minor w/txn"; "mz minor w/txn"; "fm minor w/txn"; "same as seq" ]
  in
  let report ?(lazy_decode = true) name
      (decisions, melded, final, wall, (c0, c1), gc, (off0, off1),
       driver_minor_w) =
    let bdecisions, _, bfinal, _, _, _, _, _ = base in
    let same =
      List.length decisions = List.length bdecisions
      && List.for_all2
           (fun (a : Pipeline.decision) (b : Pipeline.decision) ->
             a.Pipeline.seq = b.Pipeline.seq
             && a.Pipeline.committed = b.Pipeline.committed
             && a.Pipeline.decided_at = b.Pipeline.decided_at)
           decisions bdecisions
      && Tree.physically_equal final bfinal
    in
    let meldedf = float_of_int melded in
    let sdelta f = f c1 -. f c0 in
    let ds = sdelta (fun c -> c.Counters.deserialize.Counters.seconds) in
    let pm = sdelta (fun c -> (Counters.premeld_total c).Counters.seconds) in
    let gm = sdelta (fun c -> c.Counters.group_meld.Counters.seconds) in
    let fm = sdelta (fun c -> c.Counters.final_meld.Counters.seconds) in
    let wds, wpm, wgm =
      match (off0, off1) with
      | Some a, Some b ->
          ( b.Pipeline.worker_ds_seconds -. a.Pipeline.worker_ds_seconds,
            b.Pipeline.worker_pm_seconds -. a.Pipeline.worker_pm_seconds,
            b.Pipeline.worker_gm_seconds -. a.Pipeline.worker_gm_seconds )
      | _ -> (0.0, 0.0, 0.0)
    in
    let driver_s = ds -. wds +. (pm -. wpm) +. (gm -. wgm) +. fm in
    let melds_per_s = meldedf /. wall in
    let fm_ns = fm /. meldedf *. 1e9 in
    let driver_us = driver_s /. meldedf *. 1e6 in
    let per_txn name = fval gc name /. meldedf in
    let fm_minor = per_txn "pipeline_fm_gc_minor_words" in
    let ds_minor = per_txn "pipeline_ds_gc_minor_words" in
    let mz_minor = per_txn "pipeline_mz_gc_minor_words" in
    Table.add_row t
      [
        name;
        Printf.sprintf "%.0f" melds_per_s;
        Printf.sprintf "%.0f" fm_ns;
        Printf.sprintf "%.2f" driver_us;
        Printf.sprintf "%.1f" ds_minor;
        Printf.sprintf "%.1f" mz_minor;
        Printf.sprintf "%.1f" fm_minor;
        (if same then "yes" else "NO");
      ];
    if !json_path <> None then begin
      let us x = Json.Float (x /. meldedf *. 1e6) in
      report_runs :=
        Json.Obj
          [
            ("figure", Json.String "macro");
            ("runtime", Json.String name);
            ("lazy_decode", Json.Bool lazy_decode);
            ("cores", Json.Int (Domain.recommended_domain_count ()));
            ("intentions_total", Json.Int count);
            ("intentions_measured", Json.Int melded);
            ("wall_s", Json.Float wall);
            ("melds_per_s", Json.Float melds_per_s);
            ("fm_ns_per_txn", Json.Float fm_ns);
            ("driver_critical_path_us", Json.Float driver_us);
            ("driver_share_of_wall", Json.Float (driver_s /. wall));
            ( "driver_minor_w_per_txn",
              Json.Float (driver_minor_w /. meldedf) );
            ( "handoff",
              match (off0, off1) with
              | Some a, Some b ->
                  (* Publication/doorbell/steal counters are cumulative;
                     the measured window is the diff.  The adaptive
                     batch/window are last-observation settings, so the
                     end-of-run value is the one reported. *)
                  Json.Obj
                    [
                      ( "batches",
                        Json.Int
                          (b.Pipeline.handoff_batches
                          - a.Pipeline.handoff_batches) );
                      ( "items",
                        Json.Int
                          (b.Pipeline.handoff_items
                          - a.Pipeline.handoff_items) );
                      ( "doorbell_wakeups",
                        Json.Int
                          (b.Pipeline.doorbell_wakeups
                          - a.Pipeline.doorbell_wakeups) );
                      ( "driver_steals",
                        Json.Int
                          (b.Pipeline.driver_steals
                          - a.Pipeline.driver_steals) );
                      ("adaptive_batch", Json.Int b.Pipeline.adaptive_batch);
                      ("adaptive_window", Json.Int b.Pipeline.adaptive_window);
                      ( "adaptive_adjustments",
                        Json.Int b.Pipeline.adaptive_adjustments );
                    ]
              | _ -> Json.Null );
            ( "stage_us",
              Json.Obj
                [ ("ds", us ds); ("pm", us pm); ("gm", us gm); ("fm", us fm) ]
            );
            ( "gc_words_per_txn",
              Json.Obj
                [
                  ("ds_minor", Json.Float (per_txn "pipeline_ds_gc_minor_words"));
                  ( "ds_promoted",
                    Json.Float (per_txn "pipeline_ds_gc_promoted_words") );
                  ("pm_minor", Json.Float (per_txn "pipeline_pm_gc_minor_words"));
                  ( "pm_promoted",
                    Json.Float (per_txn "pipeline_pm_gc_promoted_words") );
                  ("gm_minor", Json.Float (per_txn "pipeline_gm_gc_minor_words"));
                  ( "gm_promoted",
                    Json.Float (per_txn "pipeline_gm_gc_promoted_words") );
                  ("fm_minor", Json.Float fm_minor);
                  ( "fm_promoted",
                    Json.Float (per_txn "pipeline_fm_gc_promoted_words") );
                  ("mz_minor", Json.Float mz_minor);
                ] );
            ("same_as_seq", Json.Bool same);
          ]
        :: !report_runs
    end
  in
  report "seq" base;
  (* Eager reference row, same machine same run: the lazy-vs-eager
     speedup gate compares against this instead of cross-machine
     absolute numbers, and its decisions double as a lazy≡eager
     bit-identity check. *)
  report ~lazy_decode:false "seq-eager"
    (run ~lazy_decode:false "seq-eager" Runtime.sequential);
  report "par:4" (run "par:4" (Runtime.parallel ~domains:4));
  report "pipe:4" (run "pipe:4" (pipe4 ()));
  (match (flight_sink, !flight_path) with
  | Some oc, Some path ->
      close_out oc;
      Printf.printf "flight records -> %s\n" path
  | _ -> ());
  Table.print t;
  Printf.printf
    "(fm minor w/txn = minor-heap words allocated by the driver's final \
     meld per measured intention; under pipe:4 the ds/pm GC columns in \
     the JSON cover only the driver-inline share of those stages)\n"

(* ---------------------------------------------------------------------- *)
(* Bechamel micro-benchmarks of the meld operator                           *)
(* ---------------------------------------------------------------------- *)

let micro () =
  print_endline "\n== Microbenchmarks (Bechamel): core operator costs ==";
  let open Bechamel in
  let wl =
    Ycsb.create
      { Ycsb.default with Ycsb.record_count = 100_000; payload_size = 64 }
  in
  let genesis = Ycsb.genesis wl in
  let make_draft snapshot pos =
    let e =
      Hyder_core.Executor.begin_txn ~snapshot_pos:pos ~snapshot ~server:0
        ~txn_seq:0 ~isolation:I.Serializable ()
    in
    Ycsb.apply (Ycsb.next_write_txn wl) e;
    Option.get (Hyder_core.Executor.finish e)
  in
  let test_exec =
    Test.make ~name:"execute+intend (10 ops)"
      (Staged.stage (fun () -> ignore (make_draft genesis (-1))))
  in
  let draft = make_draft genesis (-1) in
  let test_encode =
    Test.make ~name:"serialize intention"
      (Staged.stage (fun () -> ignore (Hyder_codec.Codec.encode draft)))
  in
  let bytes = Hyder_codec.Codec.encode draft in
  let resolve ~snapshot:_ ~key ~vn:_ =
    match Hyder_tree.Tree.find genesis key with
    | Some n -> n
    | None -> Hyder_tree.Node.empty
  in
  let test_decode =
    Test.make ~name:"deserialize intention"
      (Staged.stage (fun () ->
           ignore (Hyder_codec.Codec.decode ~pos:1 ~resolve bytes)))
  in
  let intention = I.assign ~pos:2 draft in
  let counters = Hyder_core.Counters.make_stage () in
  let alloc = Hyder_tree.Vn.Alloc.create ~thread:9 in
  let test_meld =
    Test.make ~name:"meld vs snapshot (graft-heavy)"
      (Staged.stage (fun () ->
           ignore
             (Hyder_core.Meld.meld ~mode:Hyder_core.Meld.Final
                ~members:[ 2 ] ~alloc ~counters ~intention:intention.I.root
                ~state:genesis ())))
  in
  let benchmark test =
    let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) () in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let res = Benchmark.all cfg instances test in
    let results =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:false
           ~predictors:[| Measure.run |])
        Toolkit.Instance.monotonic_clock res
    in
    Hashtbl.iter
      (fun name ols ->
        match Analyze.OLS.estimates ols with
        | Some [ est ] -> Printf.printf "  %-40s %10.2f ns/op\n" name est
        | _ -> ())
      results
  in
  List.iter benchmark [ test_exec; test_encode; test_decode; test_meld ]

(* ---------------------------------------------------------------------- *)
(* Driver                                                                   *)
(* ---------------------------------------------------------------------- *)

let figures =
  [
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("tango", tango);
    ("fig14", fig14);
    ("fig15", fig15);
    ("fig16", fig16);
    ("fig17", fig17);
    ("fig18", fig18_19);
    ("fig19", fig18_19);
    ("fig20", fig20);
    ("fig21", fig21_22);
    ("fig22", fig21_22);
    ("fig23", fig23_24);
    ("fig24", fig23_24);
    ("abl-premeld-threads", abl_premeld_threads);
    ("abl-group-size", abl_group_size);
    ("abl-admission", abl_admission);
    ("abl-index-size", abl_index_size);
    ("runtime", runtime_backends);
    ("pipeline-overlap", pipeline_overlap);
    ("macro", macro);
    ("micro", micro);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let selected = ref [] in
  List.iter
    (fun a ->
      match a with
      | "--quick" -> scale := quick_scale
      | "--paper" -> scale := paper_scale
      | a when String.length a > 10 && String.sub a 0 10 = "--runtime=" -> (
          let spec = String.sub a 10 (String.length a - 10) in
          match Runtime.parse spec with
          | Ok b -> runtime := b
          | Error msg ->
              Printf.eprintf "bad --runtime %S: %s\n" spec msg;
              exit 2)
      | "--adaptive" -> adaptive := true
      | a when String.length a > 7 && String.sub a 0 7 = "--json=" ->
          json_path := Some (String.sub a 7 (String.length a - 7))
      | a when String.length a > 9 && String.sub a 0 9 = "--flight=" ->
          flight_path := Some (String.sub a 9 (String.length a - 9))
      | name when List.mem_assoc name figures ->
          if not (List.mem name !selected) then selected := name :: !selected
      | other ->
          Printf.eprintf "unknown argument %S (figures: %s)\n" other
            (String.concat " " (List.map fst figures));
          exit 2)
    args;
  let to_run =
    if !selected = [] then
      (* dedupe shared implementations *)
      [ "fig9"; "fig10"; "fig11"; "fig12"; "fig13"; "tango"; "fig14";
        "fig15"; "fig16"; "fig17"; "fig18"; "fig20"; "fig21"; "fig23";
        "abl-premeld-threads"; "abl-group-size"; "abl-admission";
        "abl-index-size"; "runtime"; "pipeline-overlap"; "micro" ]
    else List.rev !selected
  in
  Printf.printf "Hyder II benchmark harness — scale: %s\n" !scale.label;
  Printf.printf
    "(shapes, not absolute numbers, are the reproduction target; see \
     EXPERIMENTS.md)\n";
  List.iter
    (fun name ->
      print_newline ();
      Printf.printf "### %s\n%!" name;
      current_figure := name;
      (List.assoc name figures) ())
    to_run;
  match !json_path with
  | None -> ()
  | Some path ->
      let report =
        Json.Obj
          [
            ("harness", Json.String "hyder-bench");
            ("scale", Json.String !scale.label);
            ("runtime", Json.String (Runtime.to_string !runtime));
            ( "figures_run",
              Json.List (List.map (fun n -> Json.String n) to_run) );
            ("runs", Json.List (List.rev !report_runs));
          ]
      in
      let oc = open_out path in
      Json.to_channel oc report;
      close_out oc;
      Printf.printf "\nwrote run report (%d cluster runs) to %s\n"
        (List.length !report_runs) path
