open Hyder_tree
open Node

type isolation = Serializable | Snapshot_isolation | Read_committed

let isolation_to_string = function
  | Serializable -> "serializable"
  | Snapshot_isolation -> "snapshot-isolation"
  | Read_committed -> "read-committed"

type draft = {
  snapshot : int;
  server : int;
  txn_seq : int;
  isolation : isolation;
  root : Node.tree;
}

type t = {
  pos : int;
  snapshot : int;
  server : int;
  txn_seq : int;
  isolation : isolation;
  root : Node.tree;
  node_count : int;
  byte_size : int;
  view : View.t option;
}

(* The draft owner must outrank every real log position and still leave
   [Meta.owner_bits draft_owner] an immediate int (owner + 1 shifted left
   by [Meta.owner_shift] has to fit in 62 bits — [max_int] would wrap to
   the state owner's zero bits). *)
let draft_owner = 1 lsl 53
let draft_vn ~idx = Vn.logged ~pos:max_int ~idx
let draft_owner_bits = Meta.owner_bits draft_owner

let assign ~pos ?(byte_size = 0) (d : draft) =
  let count = ref 0 in
  let ob = Meta.owner_bits pos in
  (* Post-order renumbering of draft nodes; shared (snapshot) subtrees are
     left untouched.  Must mirror the decoder exactly. *)
  let rec go t =
    (* The sentinel's meta (0) never carries the draft owner bits, so the
       same-owner test also stops the recursion at empty. *)
    if t.meta land Meta.owner_mask <> draft_owner_bits then t
    else begin
      let left = go t.left in
      let right = go t.right in
      let idx = !count in
      incr count;
      let vn = Vn.logged ~pos ~idx in
      let cv = if t.meta land Meta.altered <> 0 then vn else t.cv in
      Node.pack ~key:t.key ~payload:t.payload ~left ~right ~vn ~cv
        ~meta:(ob lor (t.meta land Meta.carry_mask))
        ~ssv_a:t.ssv_a ~ssv_b:t.ssv_b ~scv_a:t.scv_a ~scv_b:t.scv_b
    end
  in
  let root = go d.root in
  {
    pos;
    snapshot = d.snapshot;
    server = d.server;
    txn_seq = d.txn_seq;
    isolation = d.isolation;
    root;
    node_count = !count;
    byte_size;
    view = None;
  }

let node_count t = t.node_count
let inside t (n : Node.node) = Node.owner n = t.pos
