(* Flyweight intention view: the wire encoding read in place.

   [parse] makes one linear pass over an intention's encoding and keeps,
   per node, only small arrays of immediate ints (key, packed meta word,
   child descriptors, byte offset) plus the bound external references —
   no heap [Node] is built.  Meld walks the view through the accessors
   below and calls [materialize] only for the nodes it actually grafts
   into its output; everything else never allocates a node.

   External references (ref children and elided payloads) are bound
   during the parse against the snapshot tree the intention names — an
   O(log n) key descent per reference, falling back to the caller's
   resolver with exactly the eager decoder's integrity checks and error
   messages.  Because every reference is bound up front, [materialize]
   is total: it can run at any later stage, on any domain, and never
   consults a resolver or fails.

   Lifetime: a view pins [bytes] (an immutable OCaml string, possibly a
   shared batch slab) for as long as it lives.  Decode-side buffers are
   therefore never pooled — pools are for encode-side scratch only.

   Thread safety: one walker at a time.  [cur] is a scratch cursor for
   the cold re-reads and the [nodes] memo is unsynchronized; views are
   handed between pipeline stages through queues (which order the
   accesses), never walked concurrently. *)

open Hyder_tree
module Wire = Hyder_util.Wire

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

type resolver = snapshot:int -> key:Key.t -> vn:Vn.t -> Node.tree

(* Child descriptor codes in [hot]: [>= 0] inside node index, [-1] empty,
   [<= -2] bound external reference in slot [-c - 2]. *)
let kid_empty = -1
let[@inline] kid_is_inside c = c >= 0
let[@inline] kid_is_empty c = c = -1
let[@inline] kid_slot c = -c - 2

(* Physically-unique sentinel marking an unmaterialized payload slot; the
   block identity is what matters, the contents are never read. *)
let unbound : Payload.t = Payload.Value (String.make 1 '\255')

type t = {
  pos : int;
  snapshot : int;
  server : int;
  txn_seq : int;
  isolation : int;  (** wire code 0..2; [Codec] converts *)
  node_count : int;
  byte_size : int;
  bytes : string;  (** backing buffer, read in place (never pooled) *)
  hot : int array;  (** stride 4 per node: key, meta, kid_l, kid_r *)
  offs : int array;  (** absolute offset of each node's flags byte *)
  refs : Node.tree array;  (** bound external references, by slot *)
  pays : Payload.t array;  (** payload memo; [unbound] until forced *)
  mutable nodes : Node.tree array;
      (** materialization memo; empty until first use *)
  mutable cur : int;  (** scratch cursor for cold re-reads (single walker) *)
}

let pos v = v.pos
let snapshot v = v.snapshot
let server v = v.server
let txn_seq v = v.txn_seq
let isolation_code v = v.isolation
let node_count v = v.node_count
let byte_size v = v.byte_size
let root_index v = v.node_count - 1
let[@inline] key v idx = Array.unsafe_get v.hot (idx * 4)
let[@inline] meta v idx = Array.unsafe_get v.hot ((idx * 4) + 1)
let[@inline] kid_l v idx = Array.unsafe_get v.hot ((idx * 4) + 2)
let[@inline] kid_r v idx = Array.unsafe_get v.hot ((idx * 4) + 3)
let[@inline] ref_of v c = Array.unsafe_get v.refs (-c - 2)
let[@inline] vn v idx = Vn.logged ~pos:v.pos ~idx

(* ---- cold re-reads off the wire bytes -------------------------------- *)
(* The parse below validates the whole encoding, so these re-readers can
   use unchecked accesses: they only revisit byte ranges the parse read. *)

let[@inline] u8 v =
  let b = Char.code (String.unsafe_get v.bytes v.cur) in
  v.cur <- v.cur + 1;
  b

let rvarint v =
  let x = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    let b = u8 v in
    x := !x lor ((b land 0x7F) lsl !shift);
    shift := !shift + 7;
    if b land 0x80 = 0 then continue := false
  done;
  !x

let[@inline] rzint v =
  let u = rvarint v in
  u lsr 1 lxor - (u land 1)

let[@inline] flags v idx = Char.code (String.unsafe_get v.bytes v.offs.(idx))

(* Position [cur] at the node's source-version section (after the flags
   byte and any inline payload); returns the wire flags. *)
let seek_sources v idx =
  let f = flags v idx in
  v.cur <- v.offs.(idx) + 1;
  if f land (32 lor 64) = 0 then begin
    let len = rvarint v in
    v.cur <- v.cur + len
  end;
  f

let skip_vn v =
  let eph = u8 v = 1 in
  (if eph then ignore (rvarint v) else ignore (rzint v));
  ignore (rvarint v)

(* Mirrors [Node.ssv_equals] over the packed wire words: presence and
   value class come from the meta word, the version words are re-read in
   place.  No allocation — this runs once per meld visit. *)
let ssv_equals v idx (x : Vn.t) =
  let m = meta v idx in
  match x with
  | Vn.Logged { pos; idx = i } ->
      m land (Node.Meta.ssv_present lor Node.Meta.ssv_ephemeral)
      = Node.Meta.ssv_present
      &&
      (let _ = seek_sources v idx in
       let _tag = u8 v in
       rzint v = pos && rvarint v = i)
  | Vn.Ephemeral { thread; seq } ->
      m land (Node.Meta.ssv_present lor Node.Meta.ssv_ephemeral)
      = Node.Meta.ssv_present lor Node.Meta.ssv_ephemeral
      &&
      (let _ = seek_sources v idx in
       let _tag = u8 v in
       rvarint v = thread && rvarint v = seq)

let seek_scv v idx =
  let f = seek_sources v idx in
  if f land 8 <> 0 then skip_vn v

let scv_equals v idx (x : Vn.t) =
  let m = meta v idx in
  match x with
  | Vn.Logged { pos; idx = i } ->
      m land (Node.Meta.scv_present lor Node.Meta.scv_ephemeral)
      = Node.Meta.scv_present
      &&
      (seek_scv v idx;
       let _tag = u8 v in
       rzint v = pos && rvarint v = i)
  | Vn.Ephemeral { thread; seq } ->
      m land (Node.Meta.scv_present lor Node.Meta.scv_ephemeral)
      = Node.Meta.scv_present lor Node.Meta.scv_ephemeral
      &&
      (seek_scv v idx;
       let _tag = u8 v in
       rvarint v = thread && rvarint v = seq)

(* Packed source-version words, exactly as the eager decoder stores them
   ([0, 0] when absent).  One tuple of immediates — callers are
   node-construction paths that allocate anyway. *)
let sources v idx =
  let f = seek_sources v idx in
  let ssv_a, ssv_b =
    if f land 8 <> 0 then begin
      let eph = u8 v = 1 in
      let a = if eph then rvarint v else rzint v in
      (a, rvarint v)
    end
    else (0, 0)
  in
  let scv_a, scv_b =
    if f land 16 <> 0 then begin
      let eph = u8 v = 1 in
      let a = if eph then rvarint v else rzint v in
      (a, rvarint v)
    end
    else (0, 0)
  in
  (ssv_a, ssv_b, scv_a, scv_b)

let payload v idx =
  let p = v.pays.(idx) in
  if p != unbound then p
  else begin
    let f = flags v idx in
    let p =
      if f land 32 <> 0 then Payload.Tombstone
      else begin
        (* elided slots (flag bit 64) were bound during the parse, so only
           an inline wire payload can still be unbound here *)
        v.cur <- v.offs.(idx) + 1;
        let len = rvarint v in
        Payload.Value (String.sub v.bytes v.cur len)
      end
    in
    v.pays.(idx) <- p;
    p
  end

(* Content version as the eager decoder computes it: an altered node's cv
   is its own vn; an unaltered node's comes from its scv (whose presence
   the parse enforced). *)
let cv v idx =
  let m = meta v idx in
  if m land Node.Meta.altered <> 0 then Vn.logged ~pos:v.pos ~idx
  else begin
    seek_scv v idx;
    let eph = u8 v = 1 in
    let a = if eph then rvarint v else rzint v in
    let b = rvarint v in
    if eph then Vn.ephemeral ~thread:a ~seq:b else Vn.logged ~pos:a ~idx:b
  end

(* Option view of the ssv — cold paths only (corrupt-intention reports). *)
let ssv v idx =
  let m = meta v idx in
  if m land Node.Meta.ssv_present = 0 then None
  else begin
    let _ = seek_sources v idx in
    let eph = u8 v = 1 in
    let a = if eph then rvarint v else rzint v in
    let b = rvarint v in
    Some
      (if eph then Vn.ephemeral ~thread:a ~seq:b else Vn.logged ~pos:a ~idx:b)
  end

(* ---- materialization -------------------------------------------------- *)

let rec materialize v idx =
  if Array.length v.nodes = 0 then
    v.nodes <- Array.make (max 1 v.node_count) Node.empty;
  let n = v.nodes.(idx) in
  if n != Node.empty then n
  else begin
    let h = idx * 4 in
    let key = v.hot.(h) and meta = v.hot.(h + 1) in
    let left = mat_kid v v.hot.(h + 2) in
    let right = mat_kid v v.hot.(h + 3) in
    let payload = payload v idx in
    let ssv_a, ssv_b, scv_a, scv_b = sources v idx in
    let vn = Vn.logged ~pos:v.pos ~idx in
    let cv =
      if meta land Node.Meta.altered <> 0 then vn
      else if meta land Node.Meta.scv_ephemeral <> 0 then
        Vn.ephemeral ~thread:scv_a ~seq:scv_b
      else Vn.logged ~pos:scv_a ~idx:scv_b
    in
    let n =
      Node.pack ~key ~payload ~left ~right ~vn ~cv ~meta ~ssv_a ~ssv_b ~scv_a
        ~scv_b
    in
    v.nodes.(idx) <- n;
    n
  end

and mat_kid v c =
  if c >= 0 then materialize v c
  else if c = kid_empty then Node.empty
  else v.refs.(-c - 2)

let materialize_root v =
  if v.node_count = 0 then Node.empty else materialize v (v.node_count - 1)

(* ---- parse + bind ----------------------------------------------------- *)

(* BST descent to the unique same-key node of the snapshot tree — the
   same physical object the eager decoder's state-first resolver returns. *)
let rec find_peer (p : Node.tree) k =
  if p == Node.empty then p
  else
    let c = Key.compare k p.key in
    if c = 0 then p
    else if c < 0 then find_peer p.left k
    else find_peer p.right k

let[@inline] vn_matches (x : Vn.t) ~eph ~a ~b =
  match x with
  | Vn.Logged { pos; idx } -> (not eph) && pos = a && idx = b
  | Vn.Ephemeral { thread; seq } -> eph && thread = a && seq = b

(* One pass: validate the whole encoding (the eager decoder's checks, in
   the eager decoder's order, with its error messages), record per-node
   offsets and packed meta words, and bind every external reference and
   elided payload — first by key descent of [peer] (the snapshot tree
   this intention executed against, [Node.empty] when unavailable), then
   through [resolve] for anything the snapshot cannot answer.

   The byte layer below is local on purpose: the same reads through
   [Wire.Reader] cost a non-inlined cross-module call per byte plus a
   boxed [Int64] fold per varint, which together were the bulk of the
   old ds bracket.  Semantics are identical — same bounds checks, same
   [Truncated] condition before every byte, and the varint reader
   matches [Int64.to_int (Wire.Reader.varint64 r)] exactly, including
   the modulo-2^63 wrap (the shift-63 byte can only contribute bit 63,
   which [Int64.to_int] drops, so its contribution is skipped rather
   than shifted — an [lsl] by 63 is unspecified on 63-bit ints). *)
let parse ~pos ?(off = 0) ?len ~peer ~(resolve : resolver) s =
  let len = match len with Some l -> l | None -> String.length s - off in
  let limit = off + len in
  if off < 0 || limit > String.length s then
    invalid_arg "Wire.Reader.of_string: range out of bounds";
  let p = ref off in
  try
    let u8 () =
      if !p >= limit then raise Wire.Truncated;
      let b = Char.code (String.unsafe_get s !p) in
      incr p;
      b
    in
    let skip n =
      if n < 0 || !p + n > limit then raise Wire.Truncated;
      p := !p + n
    in
    let r_uint_rest b0 =
      let x = ref (b0 land 0x7F) and shift = ref 7 and continue = ref true in
      while !continue do
        if !shift > 63 then raise Wire.Truncated;
        let b = u8 () in
        if !shift < 63 then x := !x lor ((b land 0x7F) lsl !shift);
        shift := !shift + 7;
        if b land 0x80 = 0 then continue := false
      done;
      !x
    in
    (* Single-byte fast path: most wire integers (child indexes, version
       counters, payload lengths) fit in seven bits. *)
    let r_uint () =
      let b = u8 () in
      if b < 0x80 then b else r_uint_rest b
    in
    (* Zigzag decode over that 63-bit wrap.  Writer-produced encodings
       never set bit 63 (the zigzag of a 63-bit int fits in 63 bits), so
       this agrees with the eager decoder's Int64 path on every buffer
       the encoder can emit. *)
    let r_zint () =
      let u = r_uint () in
      u lsr 1 lxor - (u land 1)
    in
    let snapshot = r_zint () in
    let server = r_uint () in
    let txn_seq = r_uint () in
    let isolation = u8 () in
    if isolation > 2 then corrupt "bad isolation %d" isolation;
    let node_count = r_uint () in
    if node_count < 0 || node_count > len then
      corrupt "implausible node count %d" node_count;
    let hot = Array.make (node_count * 4) 0 in
    let offs = Array.make (max 1 node_count) 0 in
    let pays = Array.make (max 1 node_count) unbound in
    (* The structural pass only numbers the ref slots; the binding pass
       below fills them.  Deferring the array lets it be allocated at its
       exact final size. *)
    let nrefs = ref 0 in
    let push_ref () =
      incr nrefs;
      !nrefs - 1
    in
    (* VN parts land in these scratch cells instead of a returned tuple:
       two VNs per node would otherwise dominate the parse's footprint. *)
    let vp_eph = ref false and vp_a = ref 0 and vp_b = ref 0 in
    let r_vn_parts () =
      (match u8 () with
      | 0 ->
          vp_eph := false;
          vp_a := r_zint ()
      | 1 ->
          vp_eph := true;
          vp_a := r_uint ()
      | tag -> corrupt "bad VN tag %d" tag);
      vp_b := r_uint ()
    in
    (* Structural pass only: binding of ref children and elided payloads
       is deferred to the top-down pass below, which finds each node's
       snapshot peer inside its parent's peer subtree instead of paying a
       root descent per reference — the descents were the bulk of the
       parse cost on path-copy intentions. *)
    let r_child self =
      match u8 () with
      | 0 -> kid_empty
      | 1 ->
          let i = r_uint () in
          if i < 0 || i >= self then corrupt "child index %d out of order" i;
          i
      | 2 ->
          r_vn_parts ();
          ignore (r_zint ());
          (* slot number only; the binding pass fills it *)
          -push_ref () - 2
      | tag -> corrupt "bad child tag %d" tag
    in
    let ob = Node.Meta.owner_bits pos in
    let obh = ob lor Node.Meta.has_writes in
    let kid_hw c =
      if c >= 0 then hot.((c * 4) + 1) land Node.Meta.hw_mask = obh
      else
        (* empty kids never carry this intention's writes, and neither do
           refs: a ref resolves to a node owned by an earlier log
           position, so its owner bits can never equal [ob] (the eager
           decoder computes the same test against the resolved node and
           always gets false) — which is why the placeholder slots above
           are sound here *)
        false
    in
    for idx = 0 to node_count - 1 do
      let key = r_zint () in
      offs.(idx) <- !p;
      let flags = u8 () in
      if flags land (32 lor 64) = 0 then skip (r_uint ());
      let has_ssv = flags land 8 <> 0 in
      if has_ssv then r_vn_parts ();
      let ssv_eph = !vp_eph in
      let has_scv = flags land 16 <> 0 in
      let scv_eph =
        has_scv
        &&
        (r_vn_parts ();
         !vp_eph)
      in
      if flags land 64 <> 0 && flags land 32 = 0 && not has_ssv then
        corrupt "elided payload on a node without a source";
      let kl = r_child idx in
      let kr = r_child idx in
      if flags land 1 = 0 && not has_scv then
        corrupt "unaltered node %d lacks a content version" key;
      let m =
        ob lor (flags land 0x7)
        lor (if has_ssv then
               if ssv_eph then Node.Meta.ssv_present lor Node.Meta.ssv_ephemeral
               else Node.Meta.ssv_present
             else 0)
        lor (if has_scv then
               if scv_eph then Node.Meta.scv_present lor Node.Meta.scv_ephemeral
               else Node.Meta.scv_present
             else 0)
        (* bottom-up [Node.pack] has-writes rule: children precede parents
           in post-order, so their meta words are already final *)
        lor
        if flags land 1 <> 0 || (not has_ssv) || kid_hw kl || kid_hw kr then
          Node.Meta.has_writes
        else 0
      in
      let h = idx * 4 in
      hot.(h) <- key;
      hot.(h + 1) <- m;
      hot.(h + 2) <- kl;
      hot.(h + 3) <- kr
    done;
    if !p <> limit then corrupt "trailing bytes";
    let refs = Array.make !nrefs Node.empty in
    (* ---- binding pass: top-down from the root ------------------------ *)
    (* Re-walk the (now validated) records from the root downward,
       threading each node's snapshot-peer subtree: a node's peer is
       searched inside its parent's peer's matching child — depth 0 in
       the aligned common case — so binding costs O(1) tree touches per
       node.  Checks, fallback resolver calls and error messages are the
       eager decoder's; a candidate miss (rotation near an altered node,
       or a dishonestly-shaped buffer) simply falls through to [resolve],
       which is all the eager decoder ever uses.  Visited nodes are
       marked by flipping [offs] negative, so sharing in a hand-crafted
       buffer cannot blow up the walk; nodes unreachable from the root
       (never emitted by the executor) are swept afterwards against the
       snapshot root, and the marks are restored before returning. *)
    let bind_elided idx key m ~eph ~a ~b =
      if m != Node.empty && vn_matches m.Node.vn ~eph ~a ~b then
        pays.(idx) <- m.Node.payload
      else begin
        let source_vn =
          if eph then Vn.ephemeral ~thread:a ~seq:b
          else Vn.logged ~pos:a ~idx:b
        in
        let m = resolve ~snapshot ~key ~vn:source_vn in
        if m == Node.empty then
          corrupt "elided payload: key %d missing from snapshot" key
        else if not (Vn.equal m.Node.vn source_vn) then
          corrupt "elided payload: source of key %d is version %s" key
            (Vn.to_string m.Node.vn);
        pays.(idx) <- m.Node.payload
      end
    in
    let bind_ref slot key sub ~eph ~a ~b =
      let n0 = find_peer sub key in
      let n =
        if n0 != Node.empty && vn_matches n0.Node.vn ~eph ~a ~b then n0
        else begin
          let x =
            if eph then Vn.ephemeral ~thread:a ~seq:b
            else Vn.logged ~pos:a ~idx:b
          in
          let resolved = resolve ~snapshot ~key ~vn:x in
          if resolved == Node.empty then
            corrupt "unresolvable reference to key %d" key
          else if not (Vn.equal resolved.Node.vn x) then
            corrupt "reference to key %d resolved to wrong version" key;
          resolved
        end
      in
      refs.(slot) <- n
    in
    (* [bind_child]/[kid_sub] are part of the recursive group (not inner
       lets) so their closures are built once per parse, not per node. *)
    let rec bind_down idx sub =
      let off0 = offs.(idx) in
      if off0 >= 0 then begin
        offs.(idx) <- -off0 - 1;
        let h = idx * 4 in
        let key = hot.(h) in
        let m = find_peer sub key in
        let flags = Char.code (String.unsafe_get s off0) in
        p := off0 + 1;
        if flags land (32 lor 64) = 0 then skip (r_uint ());
        if flags land 8 <> 0 then begin
          r_vn_parts ();
          if flags land 64 <> 0 && flags land 32 = 0 then
            bind_elided idx key m ~eph:!vp_eph ~a:!vp_a ~b:!vp_b
        end;
        if flags land 16 <> 0 then r_vn_parts ();
        let kl = hot.(h + 2) and kr = hot.(h + 3) in
        bind_child kl key m sub;
        bind_child kr key m sub;
        if kl >= 0 then bind_down kl (kid_sub kl key m sub);
        if kr >= 0 then bind_down kr (kid_sub kr key m sub)
      end
    and bind_child c key m sub =
      match u8 () with
      | 0 -> ()
      | 1 -> ignore (r_uint ())
      | _ ->
          r_vn_parts ();
          let eph = !vp_eph and a = !vp_a and b = !vp_b in
          let key_r = r_zint () in
          let sub_r =
            if m == Node.empty then sub
            else if Key.compare key_r key < 0 then m.Node.left
            else m.Node.right
          in
          bind_ref (-c - 2) key_r sub_r ~eph ~a ~b
    and kid_sub c key m sub =
      if m == Node.empty then sub
      else if Key.compare (Array.unsafe_get hot (c * 4)) key < 0 then
        m.Node.left
      else m.Node.right
    in
    if node_count > 0 then bind_down (node_count - 1) peer;
    for idx = node_count - 1 downto 0 do
      if offs.(idx) >= 0 then bind_down idx peer
    done;
    for idx = 0 to node_count - 1 do
      offs.(idx) <- -offs.(idx) - 1
    done;
    {
      pos;
      snapshot;
      server;
      txn_seq;
      isolation;
      node_count;
      byte_size = len;
      bytes = s;
      hot;
      offs;
      refs;
      pays;
      nodes = [||];
      cur = 0;
    }
  with Wire.Truncated -> corrupt "truncated intention"
