open Hyder_tree
(** Intention serialization (Section 5.2).

    An intention tree is serialized by a post-order traversal, so each node
    is written after its children and can refer to them by index; pointers
    to nodes outside the intention are written as (VN, key) references.  The
    byte stream is split into fixed-size {e intention blocks} for the log;
    an intention's blocks need not be contiguous in the log, and the
    intention's identity is the log position of its last block (Section
    5.1).  Deserialization swizzles references back to in-memory nodes via a
    caller-supplied resolver (the server's retained-state cache) and assigns
    node identities from the log address. *)

exception Corrupt of string
(** Raised on checksum mismatch or malformed input. *)

val encode : Intention.draft -> string
(** Serialize a draft intention to its wire form.  The snapshot position
    is the first field of the encoding, so {!peek_snapshot} can read it
    without decoding. *)

val encoded_size : Intention.draft -> int

(** Reusable encoder: one growable writer (optionally backed by a
    per-domain {!Hyder_util.Buf_pool}) serves every encode, so the steady
    state allocates only the result string.  Single-owner: one encoder
    per domain. *)
module Encoder : sig
  type t

  val create : ?pool:Hyder_util.Buf_pool.t -> unit -> t

  val encode : t -> Intention.draft -> string
  (** Byte-identical to {!val:Codec.encode}. *)

  val free : t -> unit
  (** Release the backing buffer to the pool (if any). *)
end

type resolver = snapshot:int -> key:Key.t -> vn:Vn.t -> Node.tree
(** [resolve ~snapshot ~key ~vn] must return the node holding [key] in the
    database state at log position [snapshot]; [vn] is what the intention
    expects and can be used for integrity checking. *)

val peek_snapshot : ?off:int -> string -> int
(** The snapshot log position of the encoded intention at [off], read
    from the header without decoding.  The pipelined runtime uses this to
    decide whether a decode can be offloaded to a worker domain (its
    snapshot state is already recorded) or must wait for final meld to
    catch up.  Raises {!Corrupt} on a truncated header. *)

val decode : pos:int -> resolve:resolver -> string -> Intention.t
(** Rebuild the intention appended at log position [pos].  Inside nodes get
    owner [pos] and VNs [Logged (pos, idx)] in post-order, matching
    {!Intention.assign}. *)

val decode_indexed :
  pos:int -> resolve:resolver -> string -> Intention.t * Node.tree array
(** Like {!decode}, and also returns the decoded nodes indexed by their
    post-order position -- the object table that lets later intentions'
    references to this one be swizzled in O(1) (Section 5.2's "node pointer
    to object pointer" transformation). *)

(** Reusable decode scratch: the per-intention swizzle table is the one
    allocation {!decode_indexed} makes beyond the nodes themselves, and
    on the pipelined hot path it is reused across intentions instead.
    Single-owner: one scratch per domain. *)
module Scratch : sig
  type t

  val create : unit -> t

  val export : t -> Node.tree array
  (** Fresh copy of the most recent decode's node table, shaped exactly
      like {!decode_indexed}'s second component (for cache insertion). *)

  val clear : t -> unit
  (** Drop retained node references (GC hygiene between batches). *)
end

val decode_pooled :
  scratch:Scratch.t ->
  pos:int ->
  ?off:int ->
  ?len:int ->
  resolve:resolver ->
  string ->
  Intention.t
(** Like {!decode}, but decodes the [off]/[len] slice of [s] in place
    (no substring copy — the reader walks the slice directly) and
    swizzles through [scratch]'s reused table.  [byte_size] is the slice
    length.  The result is physically identical node-for-node to what
    {!decode} returns for the same bytes and resolver. *)

val decode_lazy :
  pos:int ->
  ?off:int ->
  ?len:int ->
  ?peer:Node.tree ->
  resolve:resolver ->
  string ->
  Intention.t
(** Flyweight decode of the [off]/[len] slice: one validation pass (same
    checks and {!Corrupt} messages as {!decode}), binding every external
    reference and elided payload — against [peer], the snapshot tree the
    intention executed under, with [resolve] as fallback — but building
    no heap nodes.  The result carries [view = Some v] and a placeholder
    [root]; meld walks the view directly and
    {!View.materialize_root} recovers the eager tree on demand. *)

(** Fragmentation of intention byte streams into log blocks. *)
module Blocks : sig
  val overhead : int
  (** Per-block framing bytes (upper bound). *)

  val split :
    ?pool:Hyder_util.Buf_pool.t ->
    block_size:int ->
    server:int ->
    txn_seq:int ->
    string ->
    string list
  (** Fragment an encoded intention into checksummed blocks of at most
      [block_size] bytes.  [pool] supplies (and takes back) the staging
      buffers, eliminating two buffer allocations per fragment. *)

  val blocks_needed : block_size:int -> int -> int
  (** How many blocks a payload of the given size occupies. *)

  (** Reassembles interleaved block streams back into intentions.  Blocks
      from different servers interleave arbitrarily in the log; blocks of
      one intention arrive in order because each server appends them in
      order. *)
  module Reassembler : sig
    type t

    val create : unit -> t

    val feed : t -> pos:int -> string -> (int * string) option
    (** Offer the block at log position [pos].  Returns
        [Some (intention_pos, bytes)] when this block completes an
        intention; [intention_pos] is [pos] of this (last) block. *)

    val pending : t -> int
    (** Intentions with fragments outstanding. *)
  end
end
