open Hyder_tree
open Node
module Wire = Hyder_util.Wire
module Crc32 = Hyder_util.Crc32

(* The canonical corruption exception lives in [View] (the lazy parser);
   eager and lazy decoders raise the same constructor so callers can
   catch either path uniformly. *)
exception Corrupt = View.Corrupt

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* Zigzag mapping so small negative values (genesis positions, sentinel
   snapshots) stay one byte. *)
let zigzag v = Int64.logxor (Int64.shift_left v 1) (Int64.shift_right v 63)

let unzigzag v =
  Int64.logxor
    (Int64.shift_right_logical v 1)
    (Int64.neg (Int64.logand v 1L))

let w_zint w v =
  (* Unboxed fast path: for |v| < 2^60 the native zigzag equals the
     64-bit one, and the non-negative result takes Writer.varint's
     allocation-free loop.  Larger magnitudes (never produced by log
     positions or keys, but the format must stay total) keep the exact
     Int64 semantics. *)
  let s = v asr 60 in
  if s = 0 || s = -1 then Wire.Writer.varint w (v lsl 1 lxor (v asr 62))
  else Wire.Writer.varint64 w (zigzag (Int64.of_int v))
let r_zint r = Int64.to_int (unzigzag (Wire.Reader.varint64 r))

let w_vn w = function
  | Vn.Logged { pos; idx } ->
      Wire.Writer.u8 w 0;
      w_zint w pos;
      Wire.Writer.varint w idx
  | Vn.Ephemeral { thread; seq } ->
      Wire.Writer.u8 w 1;
      Wire.Writer.varint w thread;
      Wire.Writer.varint w seq

let r_vn r =
  match Wire.Reader.u8 r with
  | 0 ->
      let pos = r_zint r in
      let idx = Wire.Reader.varint r in
      Vn.logged ~pos ~idx
  | 1 ->
      let thread = Wire.Reader.varint r in
      let seq = Wire.Reader.varint r in
      Vn.ephemeral ~thread ~seq
  | tag -> corrupt "bad VN tag %d" tag

(* [w_vn] over the packed source-version words — same bytes, no boxed
   [Vn.t] in between. *)
let w_vn_parts w ~eph ~a ~b =
  if eph then begin
    Wire.Writer.u8 w 1;
    Wire.Writer.varint w a;
    Wire.Writer.varint w b
  end
  else begin
    Wire.Writer.u8 w 0;
    w_zint w a;
    Wire.Writer.varint w b
  end

let isolation_to_int = function
  | Intention.Serializable -> 0
  | Intention.Snapshot_isolation -> 1
  | Intention.Read_committed -> 2

let isolation_of_int = function
  | 0 -> Intention.Serializable
  | 1 -> Intention.Snapshot_isolation
  | 2 -> Intention.Read_committed
  | i -> corrupt "bad isolation %d" i

(* Child descriptor tags. *)
let tag_empty = 0
let tag_inside = 1
let tag_ref = 2

(* The snapshot position is deliberately the FIRST field: schedulers can
   tell from one varint whether an intention's references resolve against
   already-recorded state (see [peek_snapshot]) without decoding it. *)
let encode_onto w (d : Intention.draft) =
  w_zint w d.snapshot;
  Wire.Writer.varint w d.server;
  Wire.Writer.varint w d.txn_seq;
  Wire.Writer.u8 w (isolation_to_int d.isolation);
  (* Count inside nodes first so the decoder can size its index table. *)
  let rec count t =
    if t == Node.empty || Node.owner t <> Intention.draft_owner then 0
    else 1 + count t.left + count t.right
  in
  Wire.Writer.varint w (count d.root);
  let next_idx = ref 0 in
  let w_child c =
    if c == Node.empty then Wire.Writer.u8 w tag_empty
    else if Node.owner c = Intention.draft_owner then corrupt "child before parent"
    else begin
      Wire.Writer.u8 w tag_ref;
      w_vn w c.vn;
      w_zint w c.key
    end
  in
  (* Post-order: children first; an inside child's index is the value the
     recursion returns ([-1]: not an inside node, the child is written as
     a ref — kept as a plain int so the walk allocates nothing). *)
  let rec go n =
    if n == Node.empty || Node.owner n <> Intention.draft_owner then -1
    else begin
          let li = go n.left in
          let ri = go n.right in
          w_zint w n.key;
          (* An unaltered node's payload equals its source version's, so it
             is not shipped: the decoder recovers it through ssv.  This is
             what keeps serializable-isolation intentions metadata-sized
             despite carrying the whole readset (Section 6.4.4). *)
          let elide_payload =
            n.meta land Meta.altered = 0 && n.meta land Meta.ssv_present <> 0
          in
          (* The low three meta bits are the low three wire flag bits. *)
          let flags =
            n.meta land 0x7
            lor (if n.meta land Meta.ssv_present <> 0 then 8 else 0)
            lor (if n.meta land Meta.scv_present <> 0 then 16 else 0)
            lor (if Payload.is_tombstone n.payload then 32 else 0)
            lor (if elide_payload then 64 else 0)
          in
          Wire.Writer.u8 w flags;
          (match n.payload with
          | Payload.Tombstone -> ()
          | Payload.Value _ when elide_payload -> ()
          | Payload.Value s -> Wire.Writer.bytes w s);
          if n.meta land Meta.ssv_present <> 0 then
            w_vn_parts w
              ~eph:(n.meta land Meta.ssv_ephemeral <> 0)
              ~a:n.ssv_a ~b:n.ssv_b;
          if n.meta land Meta.scv_present <> 0 then
            w_vn_parts w
              ~eph:(n.meta land Meta.scv_ephemeral <> 0)
              ~a:n.scv_a ~b:n.scv_b;
          (if li >= 0 then begin
             Wire.Writer.u8 w tag_inside;
             Wire.Writer.varint w li
           end
           else w_child n.left);
          (if ri >= 0 then begin
             Wire.Writer.u8 w tag_inside;
             Wire.Writer.varint w ri
           end
           else w_child n.right);
          let idx = !next_idx in
          incr next_idx;
          idx
        end
  in
  if go d.root < 0 then
    (* Empty intention trees (pure read-only txns under SI produce no
       nodes) are legal; nothing more to write. *)
    if d.root != Node.empty then corrupt "intention root is not a draft node"

let encode (d : Intention.draft) =
  let w = Wire.Writer.create ~capacity:8192 () in
  encode_onto w d;
  Wire.Writer.contents w

let encoded_size d = String.length (encode d)

(* A pooled encoder reuses one growable writer (optionally backed by a
   per-domain Buf_pool), so steady-state encoding allocates only the
   result string. *)
module Encoder = struct
  type t = Wire.Writer.t

  let create ?pool () = Wire.Writer.create ?pool ~capacity:8192 ()

  let encode t d =
    Wire.Writer.clear t;
    encode_onto t d;
    Wire.Writer.contents t

  let free t = Wire.Writer.free t
end

type resolver = snapshot:int -> key:Key.t -> vn:Vn.t -> Node.tree

let peek_snapshot ?(off = 0) s =
  let r = Wire.Reader.of_string ~pos:off s in
  try r_zint r with Wire.Truncated -> corrupt "truncated intention header"

(* Shared decode core.  [r] is positioned at the start of an intention
   encoding spanning [len] bytes; [get_nodes count] supplies the swizzle
   table (length >= max 1 count) — a fresh array for [decode_indexed], a
   reused scratch table for [decode_pooled]. *)
let decode_core r ~len ~pos ~resolve ~get_nodes =
  try
    let snapshot = r_zint r in
    let server = Wire.Reader.varint r in
    let txn_seq = Wire.Reader.varint r in
    let isolation = isolation_of_int (Wire.Reader.u8 r) in
    let node_count = Wire.Reader.varint r in
    if node_count < 0 || node_count > len then
      corrupt "implausible node count %d" node_count;
    let nodes : Node.tree array = get_nodes node_count in
    let r_child self =
      match Wire.Reader.u8 r with
      | t when t = tag_empty -> Node.empty
      | t when t = tag_inside ->
          let i = Wire.Reader.varint r in
          if i < 0 || i >= self then corrupt "child index %d out of order" i;
          nodes.(i)
      | t when t = tag_ref ->
          let vn = r_vn r in
          let key = r_zint r in
          let resolved = resolve ~snapshot ~key ~vn in
          if resolved == Node.empty then
            corrupt "unresolvable reference to key %d" key
          else if not (Vn.equal resolved.vn vn) then
            corrupt "reference to key %d resolved to wrong version" key;
          resolved
      | t -> corrupt "bad child tag %d" t
    in
    let ob = Meta.owner_bits pos in
    for idx = 0 to node_count - 1 do
      let key = r_zint r in
      let flags = Wire.Reader.u8 r in
      (* Straight-line part reads into plain ints — no option or boxed VN
         per source version; the same wire bytes in the same order. *)
      let payload_str =
        if flags land (32 lor 64) = 0 then Wire.Reader.bytes r else ""
      in
      let has_ssv = flags land 8 <> 0 in
      let ssv_eph =
        has_ssv
        &&
        match Wire.Reader.u8 r with
        | 0 -> false
        | 1 -> true
        | tag -> corrupt "bad VN tag %d" tag
      in
      let ssv_a =
        if has_ssv then if ssv_eph then Wire.Reader.varint r else r_zint r
        else 0
      in
      let ssv_b = if has_ssv then Wire.Reader.varint r else 0 in
      let has_scv = flags land 16 <> 0 in
      let scv_eph =
        has_scv
        &&
        match Wire.Reader.u8 r with
        | 0 -> false
        | 1 -> true
        | tag -> corrupt "bad VN tag %d" tag
      in
      let scv_a =
        if has_scv then if scv_eph then Wire.Reader.varint r else r_zint r
        else 0
      in
      let scv_b = if has_scv then Wire.Reader.varint r else 0 in
      let payload =
        if flags land 32 <> 0 then Payload.Tombstone
        else if flags land 64 = 0 then Payload.Value payload_str
        else begin
          (* elided: recovered via ssv *)
          if not has_ssv then
            corrupt "elided payload on a node without a source";
          let source_vn =
            if ssv_eph then Vn.ephemeral ~thread:ssv_a ~seq:ssv_b
            else Vn.logged ~pos:ssv_a ~idx:ssv_b
          in
          let m = resolve ~snapshot ~key ~vn:source_vn in
          if m == Node.empty then
            corrupt "elided payload: key %d missing from snapshot" key
          else if not (Vn.equal m.vn source_vn) then
            corrupt "elided payload: source of key %d is version %s" key
              (Vn.to_string m.vn);
          m.payload
        end
      in
      let left = r_child idx in
      let right = r_child idx in
      let altered = flags land 1 <> 0 in
      let vn = Vn.logged ~pos ~idx in
      let cv =
        if altered then vn
        else begin
          if not has_scv then
            corrupt "unaltered node %d lacks a content version" key;
          if scv_eph then Vn.ephemeral ~thread:scv_a ~seq:scv_b
          else Vn.logged ~pos:scv_a ~idx:scv_b
        end
      in
      let meta =
        ob lor (flags land 0x7)
        lor (if has_ssv then
               if ssv_eph then Meta.ssv_present lor Meta.ssv_ephemeral
               else Meta.ssv_present
             else 0)
        lor
        if has_scv then
          if scv_eph then Meta.scv_present lor Meta.scv_ephemeral
          else Meta.scv_present
        else 0
      in
      nodes.(idx) <-
        Node.pack ~key ~payload ~left ~right ~vn ~cv ~meta ~ssv_a ~ssv_b
          ~scv_a ~scv_b
    done;
    if Wire.Reader.remaining r <> 0 then corrupt "trailing bytes";
    let root = if node_count = 0 then Node.empty else nodes.(node_count - 1) in
    {
      Intention.pos;
      snapshot;
      server;
      txn_seq;
      isolation;
      root;
      node_count;
      byte_size = len;
      view = None;
    }
  with Wire.Truncated -> corrupt "truncated intention"

let decode_indexed ~pos ~resolve s =
  let nodes = ref [||] in
  let i =
    decode_core
      (Wire.Reader.of_string s)
      ~len:(String.length s) ~pos ~resolve
      ~get_nodes:(fun count ->
        nodes := Array.make (max 1 count) Node.empty;
        !nodes)
  in
  (i, !nodes)

(* Reusable decode scratch: the swizzle table survives across intentions,
   so steady-state deserialization allocates only the nodes themselves.
   One scratch per domain — the table is single-owner mutable state. *)
module Scratch = struct
  type t = { mutable nodes : Node.tree array; mutable last_count : int }

  let create () = { nodes = Array.make 64 Node.empty; last_count = 0 }

  let table t count =
    let need = max 1 count in
    if Array.length t.nodes < need then begin
      let cap = ref (Array.length t.nodes) in
      while !cap < need do
        cap := 2 * !cap
      done;
      t.nodes <- Array.make !cap Node.empty
    end;
    t.last_count <- count;
    t.nodes

  let export t = Array.sub t.nodes 0 (max 1 t.last_count)

  let clear t =
    Array.fill t.nodes 0 (Array.length t.nodes) Node.empty;
    t.last_count <- 0
end

let decode_pooled ~scratch ~pos ?(off = 0) ?len ~resolve s =
  let len = match len with Some l -> l | None -> String.length s - off in
  decode_core
    (Wire.Reader.of_string ~pos:off ~len s)
    ~len ~pos ~resolve
    ~get_nodes:(Scratch.table scratch)

module Blocks = struct
  (* Framing: crc32 | server | txn_seq | frag_idx | last flag | payload. *)
  let overhead = 4 + 10 + 10 + 10 + 1 + 10

  let split ?pool ~block_size ~server ~txn_seq s =
    if block_size <= overhead then invalid_arg "Codec.Blocks.split: tiny block";
    let chunk = block_size - overhead in
    let total = String.length s in
    let nfrags = max 1 ((total + chunk - 1) / chunk) in
    List.init nfrags (fun i ->
        let off = i * chunk in
        let len = min chunk (total - off) in
        let body = Wire.Writer.create ?pool ~capacity:(len + 32) () in
        Wire.Writer.varint body server;
        Wire.Writer.varint body txn_seq;
        Wire.Writer.varint body i;
        Wire.Writer.u8 body (if i = nfrags - 1 then 1 else 0);
        Wire.Writer.substring body s ~pos:off ~len;
        let payload = Wire.Writer.contents body in
        Wire.Writer.free body;
        let framed =
          Wire.Writer.create ?pool ~capacity:(String.length payload + 4) ()
        in
        Wire.Writer.u32 framed (Crc32.digest_string payload);
        Wire.Writer.raw framed
          (Bytes.unsafe_of_string payload)
          ~pos:0 ~len:(String.length payload);
        let block = Wire.Writer.contents framed in
        Wire.Writer.free framed;
        block)

  let blocks_needed ~block_size size =
    let chunk = block_size - overhead in
    max 1 ((size + chunk - 1) / chunk)

  module Reassembler = struct
    type partial = { buf : Buffer.t; mutable next_frag : int }
    type t = { partials : (int * int, partial) Hashtbl.t }

    let create () = { partials = Hashtbl.create 64 }

    let feed t ~pos block =
      let r = Wire.Reader.of_string block in
      try
        let crc = Wire.Reader.u32 r in
        let body_off = Wire.Reader.pos r in
        let body_len = String.length block - body_off in
        let actual =
          Crc32.digest (Bytes.unsafe_of_string block) ~pos:body_off ~len:body_len
        in
        if not (Int32.equal crc actual) then
          corrupt "block %d checksum mismatch" pos;
        let server = Wire.Reader.varint r in
        let txn_seq = Wire.Reader.varint r in
        let frag_idx = Wire.Reader.varint r in
        let last = Wire.Reader.u8 r = 1 in
        let payload = Wire.Reader.bytes r in
        let key = (server, txn_seq) in
        let partial =
          match Hashtbl.find_opt t.partials key with
          | Some p -> p
          | None ->
              let p = { buf = Buffer.create 1024; next_frag = 0 } in
              Hashtbl.add t.partials key p;
              p
        in
        if frag_idx <> partial.next_frag then
          corrupt "block %d: fragment %d arrived out of order (expected %d)"
            pos frag_idx partial.next_frag;
        Buffer.add_string partial.buf payload;
        partial.next_frag <- partial.next_frag + 1;
        if last then begin
          Hashtbl.remove t.partials key;
          Some (pos, Buffer.contents partial.buf)
        end
        else None
      with Wire.Truncated -> corrupt "block %d truncated" pos

    let pending t = Hashtbl.length t.partials
  end
end

let decode ~pos ~resolve s = fst (decode_indexed ~pos ~resolve s)

(* Lazy decode: validate + bind in one pass, build no nodes.  [root] is a
   placeholder; the flyweight in [view] carries the tree, and whoever
   needs heap nodes calls [View.materialize_root]. *)
let decode_lazy ~pos ?off ?len ?(peer = Node.empty) ~resolve s =
  let v = View.parse ~pos ?off ?len ~peer ~resolve s in
  {
    Intention.pos;
    snapshot = View.snapshot v;
    server = View.server v;
    txn_seq = View.txn_seq v;
    isolation = isolation_of_int (View.isolation_code v);
    root = Node.empty;
    node_count = View.node_count v;
    byte_size = View.byte_size v;
    view = Some v;
  }
