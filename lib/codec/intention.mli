open Hyder_tree
(** Intention records.

    An intention is the log's unit: one transaction's produced state,
    physically the new node versions it created (root-to-changed-node paths,
    plus readset annotations under serializable isolation), with references
    to the unchanged subtrees of its snapshot (Section 2).

    A {e draft} is the in-memory intention a transaction executor builds:
    its nodes carry the placeholder owner {!draft_owner} and placeholder
    VNs.  Real identities exist only once a log position is known — either
    via {!assign} (in-process experiments and tests) or by the
    encode → append → decode path (the distributed pipeline) — because VNs
    are calculated from log addresses and must agree on every server. *)

type isolation = Serializable | Snapshot_isolation | Read_committed

val isolation_to_string : isolation -> string

type draft = {
  snapshot : int;  (** log position of the input snapshot; -1 = genesis *)
  server : int;  (** originating server *)
  txn_seq : int;  (** per-server transaction sequence number *)
  isolation : isolation;
  root : Node.tree;  (** draft nodes owned by {!draft_owner} *)
}

type t = {
  pos : int;  (** log position (of the last block) = the intention's id *)
  snapshot : int;
  server : int;
  txn_seq : int;
  isolation : isolation;
  root : Node.tree;  (** materialized tree; inside nodes owned by [pos] *)
  node_count : int;  (** nodes belonging to the intention *)
  byte_size : int;  (** encoded size in bytes (0 if never encoded) *)
  view : View.t option;
      (** lazily-decoded flyweight, when this intention came off the wire
          via [Codec.decode_lazy]; [Some v] implies [root] is a
          placeholder ([Node.empty]) until someone materializes [v] *)
}

val draft_owner : int
(** Owner tag of not-yet-appended draft nodes. *)

val draft_vn : idx:int -> Vn.t
(** Placeholder VN for the [idx]-th draft node of a transaction. *)

val assign : pos:int -> ?byte_size:int -> draft -> t
(** Renumber a draft as the intention at log position [pos]: every draft
    node receives owner [pos] and VN [Logged (pos, post-order index)], and
    content versions of altered nodes follow.  This is exactly the identity
    assignment the decoder performs, so [assign ~pos d] and
    [decode (encode d)] agree. *)

val node_count : t -> int
val inside : t -> Node.node -> bool
(** Does the node belong to this intention (vs its snapshot)? *)
