(** Flyweight intention view: the wire encoding read in place.

    A view is what the download stage produces instead of a decoded
    [Node] tree: per node, a handful of immediate ints (key, packed meta
    word, child descriptors, byte offset into the wire buffer) plus the
    already-bound external references.  Meld walks it through the
    accessors below — which read the original wire bytes in place and
    allocate nothing — and {!materialize}s only the nodes it actually
    grafts into its output.

    Invariants established by {!parse}:
    - the whole encoding is validated up front (same checks, order and
      error messages as the eager decoder), so accessors never fail;
    - every ref child and elided payload is bound to a real resolved
      node, so {!materialize} is total and never consults a resolver;
    - the backing string is immutable and never pooled — a view pins it.

    One walker at a time: the cold accessors share a scratch cursor and
    the materialization memo is unsynchronized.  Views migrate between
    pipeline stages through queues, which order the accesses. *)

open Hyder_tree

exception Corrupt of string

type resolver = snapshot:int -> key:Key.t -> vn:Vn.t -> Node.tree

type t

val parse :
  pos:int ->
  ?off:int ->
  ?len:int ->
  peer:Node.tree ->
  resolve:resolver ->
  string ->
  t
(** Validate the encoding at [s.[off .. off+len)] and bind its external
    references.  [pos] is the log position the intention is (or will be)
    appended at — the owner stamped into every node.  [peer] is the root
    of the snapshot tree the intention executed against ([Node.empty]
    when unavailable); references are first looked up there by key and
    only fall back to [resolve] when the snapshot cannot answer.
    Raises {!Corrupt} exactly when the eager decoder would. *)

(** {1 Header} *)

val pos : t -> int
val snapshot : t -> int
val server : t -> int
val txn_seq : t -> int

val isolation_code : t -> int
(** Raw wire code 0..2 (validated); [Codec.isolation_of_int] converts. *)

val node_count : t -> int
val byte_size : t -> int

val root_index : t -> int
(** [node_count - 1]; negative for an empty intention. *)

(** {1 Per-node accessors}

    Nodes are indexed [0 .. node_count - 1] in post order (children
    before parents, root last).  Child descriptors are ints: [>= 0] an
    inside node index, [-1] empty, [<= -2] a bound external reference
    (see {!kid_slot}).  None of these allocate. *)

val key : t -> int -> Key.t
val meta : t -> int -> int

val kid_l : t -> int -> int
val kid_r : t -> int -> int
val kid_empty : int
val kid_is_inside : int -> bool
val kid_is_empty : int -> bool

val kid_slot : int -> int
(** Reference slot of a [<= -2] child descriptor. *)

val ref_of : t -> int -> Node.tree
(** The bound reference behind a [<= -2] child descriptor. *)

val vn : t -> int -> Vn.t
(** The node's version — [Vn.logged ~pos ~idx].  Allocates the vn. *)

val ssv_equals : t -> int -> Vn.t -> bool
(** Mirrors [Node.ssv_equals], re-reading the wire words in place. *)

val scv_equals : t -> int -> Vn.t -> bool
(** Mirrors [Node.scv_equals]. *)

val sources : t -> int -> int * int * int * int
(** [(ssv_a, ssv_b, scv_a, scv_b)] packed words, [0, 0] when absent —
    exactly what the eager decoder passes to [Node.pack]. *)

val payload : t -> int -> Payload.t
(** Memoized: tombstones and bound elided payloads are immediate; an
    inline wire payload is copied out once on first use. *)

val cv : t -> int -> Vn.t
(** Content version as the eager decoder computes it. *)

val ssv : t -> int -> Vn.t option
(** Boxed ssv; cold paths only (corrupt-intention reports). *)

(** {1 Materialization} *)

val materialize : t -> int -> Node.tree
(** The heap node for [idx], field-identical to the eager decoder's —
    same key, payload object (for bound references), versions, meta and
    children.  Memoized, so repeated calls (and parent/child calls)
    share physical nodes. *)

val materialize_root : t -> Node.tree
(** [materialize] of the root; [Node.empty] for an empty intention. *)
