(* Per-node OCC metadata lives in one immediate int ([meta]) plus four
   plain int words for the source-version payloads, so the meld hot loops
   test flags with masks instead of option allocation + caml_equal.  See
   node.mli and DESIGN.md §11 for the layout.

   The empty tree is a statically-allocated sentinel node ([empty],
   self-referential children) rather than a variant constructor: child
   links point straight at node records, so constructing an ephemeral
   node is ONE 12-word block — no per-node [Node of node] wrapper — and
   traversal follows one pointer per child instead of two. *)

type tree = node

and node = {
  key : Key.t;
  payload : Payload.t;
  left : tree;
  right : tree;
  vn : Vn.t;
  cv : Vn.t;
  meta : int;
  ssv_a : int;
  ssv_b : int;
  scv_a : int;
  scv_b : int;
}

let state_owner = -1

module Meta = struct
  (* The low three bits deliberately equal the wire flag byte's low bits
     (Codec), so encode is [meta land 0x7] and decode ORs the wire flags
     straight in. *)
  let altered = 0x01
  let dep_content = 0x02
  let dep_structure = 0x04
  let has_writes = 0x08
  let ssv_present = 0x10
  let ssv_ephemeral = 0x20
  let scv_present = 0x40
  let scv_ephemeral = 0x80
  let flags_mask = 0xff

  let dependent_mask = altered lor dep_content lor dep_structure
  let source_mask = ssv_present lor ssv_ephemeral lor scv_present lor scv_ephemeral

  (* Flag bits that survive [Intention.assign]'s owner rewrite: everything
     but [has_writes], which is recomputed against the new owner. *)
  let carry_mask = flags_mask land lnot has_writes

  (* Owner (a log position, or [state_owner]) in the bits above the flags,
     biased by one so state nodes have zero owner bits. *)
  let owner_shift = 8
  let owner_mask = -1 lsl owner_shift
  let owner_bits owner = (owner + 1) lsl owner_shift
  let owner_of meta = (meta asr owner_shift) - 1

  (* [meta land hw_mask = owner_bits o lor has_writes] tests "same owner
     and has writes" in one compare. *)
  let hw_mask = owner_mask lor has_writes
end

(* The empty sentinel.  [meta = 0] can never satisfy a same-owner
   has-writes test ([hw_mask] compares always carry the has_writes bit),
   so [pack]'s child summaries need no emptiness branch.  Its fields are
   never otherwise read: every traversal stops on [t == empty]. *)
let rec empty =
  {
    key = 0;
    payload = Payload.tombstone;
    left = empty;
    right = empty;
    vn = Vn.logged ~pos:min_int ~idx:0;
    cv = Vn.logged ~pos:min_int ~idx:0;
    meta = 0;
    ssv_a = 0;
    ssv_b = 0;
    scv_a = 0;
    scv_b = 0;
  }

let[@inline] is_empty t = t == empty

(* Low-level constructor over the packed representation.  [meta] supplies
   the flag and owner bits; the [has_writes] bit is recomputed here from
   the other bits and the same-owner children, so callers never carry it
   across structural edits. *)
let pack ~key ~payload ~left ~right ~vn ~cv ~meta ~ssv_a ~ssv_b ~scv_a ~scv_b
    =
  let obh = (meta land Meta.owner_mask) lor Meta.has_writes in
  let hw =
    meta land Meta.altered <> 0
    || meta land Meta.ssv_present = 0
    || left.meta land Meta.hw_mask = obh
    || right.meta land Meta.hw_mask = obh
  in
  let meta =
    if hw then meta lor Meta.has_writes else meta land lnot Meta.has_writes
  in
  { key; payload; left; right; vn; cv; meta; ssv_a; ssv_b; scv_a; scv_b }

(* Flag accessors. *)
let owner n = Meta.owner_of n.meta
let altered n = n.meta land Meta.altered <> 0
let depends_on_content n = n.meta land Meta.dep_content <> 0
let depends_on_structure n = n.meta land Meta.dep_structure <> 0
let has_writes n = n.meta land Meta.has_writes <> 0
let has_ssv n = n.meta land Meta.ssv_present <> 0
let has_scv n = n.meta land Meta.scv_present <> 0

(* Option views of the packed source versions — cold paths only (tests,
   pretty-printing, reference checks); the hot loops use the [_equals]
   tests below. *)
let ssv n =
  if n.meta land Meta.ssv_present = 0 then None
  else if n.meta land Meta.ssv_ephemeral <> 0 then
    Some (Vn.ephemeral ~thread:n.ssv_a ~seq:n.ssv_b)
  else Some (Vn.logged ~pos:n.ssv_a ~idx:n.ssv_b)

let scv n =
  if n.meta land Meta.scv_present = 0 then None
  else if n.meta land Meta.scv_ephemeral <> 0 then
    Some (Vn.ephemeral ~thread:n.scv_a ~seq:n.scv_b)
  else Some (Vn.logged ~pos:n.scv_a ~idx:n.scv_b)

(* Allocation-free equality of a packed source version against a boxed
   [Vn.t]; false when the source version is absent. *)
let ssv_equals n (vn : Vn.t) =
  match vn with
  | Vn.Logged { pos; idx } ->
      n.meta land (Meta.ssv_present lor Meta.ssv_ephemeral) = Meta.ssv_present
      && n.ssv_a = pos && n.ssv_b = idx
  | Vn.Ephemeral { thread; seq } ->
      n.meta land (Meta.ssv_present lor Meta.ssv_ephemeral)
      = Meta.ssv_present lor Meta.ssv_ephemeral
      && n.ssv_a = thread && n.ssv_b = seq

let scv_equals n (vn : Vn.t) =
  match vn with
  | Vn.Logged { pos; idx } ->
      n.meta land (Meta.scv_present lor Meta.scv_ephemeral) = Meta.scv_present
      && n.scv_a = pos && n.scv_b = idx
  | Vn.Ephemeral { thread; seq } ->
      n.meta land (Meta.scv_present lor Meta.scv_ephemeral)
      = Meta.scv_present lor Meta.scv_ephemeral
      && n.scv_a = thread && n.scv_b = seq

(* Packed-word views of a boxed VN: the payload words and the
   presence/class bits for storing it as a source version.  Pure int
   extraction — no allocation. *)
let vn_a = function
  | Vn.Logged { pos; _ } -> pos
  | Vn.Ephemeral { thread; _ } -> thread

let vn_b = function
  | Vn.Logged { idx; _ } -> idx
  | Vn.Ephemeral { seq; _ } -> seq

let ssv_class = function
  | Vn.Logged _ -> Meta.ssv_present
  | Vn.Ephemeral _ -> Meta.ssv_present lor Meta.ssv_ephemeral

let scv_class = function
  | Vn.Logged _ -> Meta.scv_present
  | Vn.Ephemeral _ -> Meta.scv_present lor Meta.scv_ephemeral

(* Compatibility smart constructor over the unpacked field view; cold
   paths (bulk load, checkpoint compaction, tests). *)
let make ~key ~payload ~left ~right ~vn ~cv ~ssv ~scv ~altered
    ~depends_on_content ~depends_on_structure ~owner =
  let meta = Meta.owner_bits owner in
  let meta = if altered then meta lor Meta.altered else meta in
  let meta = if depends_on_content then meta lor Meta.dep_content else meta in
  let meta =
    if depends_on_structure then meta lor Meta.dep_structure else meta
  in
  let meta, ssv_a, ssv_b =
    match ssv with
    | None -> (meta, 0, 0)
    | Some (Vn.Logged { pos; idx }) -> (meta lor Meta.ssv_present, pos, idx)
    | Some (Vn.Ephemeral { thread; seq }) ->
        (meta lor Meta.ssv_present lor Meta.ssv_ephemeral, thread, seq)
  in
  let meta, scv_a, scv_b =
    match scv with
    | None -> (meta, 0, 0)
    | Some (Vn.Logged { pos; idx }) -> (meta lor Meta.scv_present, pos, idx)
    | Some (Vn.Ephemeral { thread; seq }) ->
        (meta lor Meta.scv_present lor Meta.scv_ephemeral, thread, seq)
  in
  pack ~key ~payload ~left ~right ~vn ~cv ~meta ~ssv_a ~ssv_b ~scv_a ~scv_b

let with_children n ~left ~right ~vn =
  pack ~key:n.key ~payload:n.payload ~left ~right ~vn ~cv:n.cv ~meta:n.meta
    ~ssv_a:n.ssv_a ~ssv_b:n.ssv_b ~scv_a:n.scv_a ~scv_b:n.scv_b

let rec size t = if t == empty then 0 else 1 + size t.left + size t.right

let rec live_size t =
  if t == empty then 0
  else
    (if Payload.is_tombstone t.payload then 0 else 1)
    + live_size t.left + live_size t.right

let rec depth t =
  if t == empty then 0 else 1 + max (depth t.left) (depth t.right)

let pp fmt tree =
  let rec go indent t =
    if t == empty then ()
    else begin
      go (indent ^ "  ") t.right;
      Format.fprintf fmt "%s%a=%a vn=%a cv=%a%s%s%s own=%d@." indent Key.pp
        t.key Payload.pp t.payload Vn.pp t.vn Vn.pp t.cv
        (if altered t then " W" else "")
        (if depends_on_content t then " Rc" else "")
        (if depends_on_structure t then " Rs" else "")
        (owner t);
      go (indent ^ "  ") t.left
    end
  in
  go "" tree
