(** The multi-versioned, copy-on-write canonical treap.

    The database index of Hyder II.  The paper uses an immutable red-black
    tree; we use a treap whose priorities are a stateless hash of the key,
    so the tree {e shape} is a pure function of the key set (DESIGN.md §2).
    All mutating operations are copy-on-write: they return a new root and
    share all untouched subtrees, and every copied node records how it
    relates to its source version (ssv/scv), which is exactly the metadata
    meld needs.

    Mutators take an [owner] (the intention id under construction, or
    {!Node.state_owner} for bootstrap) and a [fresh] VN supplier.  A node
    whose [owner] equals the mutator's is an in-progress draft of the same
    transaction and keeps its snapshot-relative metadata when copied again;
    any other node is a snapshot node and the copy's ssv/scv are derived
    from it. *)

type t = Node.tree

val empty : t

(** {1 Queries} *)

val find : t -> Key.t -> Node.node option
(** The node currently holding the key, tombstone or not. *)

val lookup : t -> Key.t -> Payload.t option
(** Live payload: [None] for absent keys {e and} tombstones. *)

val mem : t -> Key.t -> bool

val pred : t -> Key.t -> Node.node option
(** Greatest strictly-smaller live-or-tombstone node. *)

val succ : t -> Key.t -> Node.node option

val range_items : t -> lo:Key.t -> hi:Key.t -> (Key.t * Payload.t) list
(** Live pairs with [lo <= key <= hi], ascending. *)

val iter : t -> (Node.node -> unit) -> unit
(** In-order over all nodes, tombstones included. *)

val to_alist : t -> (Key.t * Payload.t) list
(** Live pairs, ascending. *)

(** {1 Copy-on-write mutators (intention building)} *)

val upsert :
  t -> owner:int -> fresh:(unit -> Vn.t) -> Key.t -> Payload.t -> t
(** Insert or update; writing {!Payload.tombstone} is a delete.  Copies the
    root-to-node path (and the split path, for a fresh insert) as draft
    nodes of [owner]. *)

val touch_read : t -> owner:int -> fresh:(unit -> Vn.t) -> Key.t -> t
(** Record a validated point read: materializes the path to the key and
    marks the node [depends_on_content].  A read of an absent key marks the
    node where the search ended [depends_on_structure] (phantom guard).
    Reading the transaction's own write is a no-op. *)

val touch_range :
  t -> owner:int -> fresh:(unit -> Vn.t) -> lo:Key.t -> hi:Key.t -> t
(** Record a validated range read: marks every in-range node visited
    [depends_on_structure]; if the range is empty, marks its neighbours
    instead.  Conservative but sound (see DESIGN.md). *)

(** {1 Bootstrap} *)

val of_sorted_array : (Key.t * Payload.t) array -> t
(** Build the genesis state from a strictly-increasing key array.  Nodes are
    state-owned with genesis VNs; every server calling this with the same
    array obtains a physically identical tree. *)

(** {1 Validation and statistics (tests, benches)} *)

val validate : t -> (unit, string) result
(** Checks BST order, canonical heap order, priority/key agreement, and
    has_writes summaries.  Returns [Error reason] on the first violation. *)

val size : t -> int
val live_size : t -> int
val depth : t -> int

val path_length : t -> Key.t -> int
(** Nodes on the search path of the key (whether present or not). *)

val physically_equal : t -> t -> bool
(** Deep structural + metadata equality, requiring identical VNs everywhere:
    the determinism criterion of Section 3.4. *)

val digest : t -> string
(** Hex fingerprint of the full physical tree (shape, payloads, VNs, flags,
    owners): [digest a = digest b] iff [physically_equal a b].  The chaos
    suite compares whole-cluster convergence by this fingerprint. *)
