type t =
  | Logged of { pos : int; idx : int }
  | Ephemeral of { thread : int; seq : int }

let logged ~pos ~idx = Logged { pos; idx }
let ephemeral ~thread ~seq = Ephemeral { thread; seq }
let genesis ~idx = Logged { pos = -1; idx }

let equal a b =
  match (a, b) with
  | Logged x, Logged y -> x.pos = y.pos && x.idx = y.idx
  | Ephemeral x, Ephemeral y -> x.thread = y.thread && x.seq = y.seq
  | Logged _, Ephemeral _ | Ephemeral _, Logged _ -> false

let compare a b =
  match (a, b) with
  | Logged x, Logged y ->
      let c = Int.compare x.pos y.pos in
      if c <> 0 then c else Int.compare x.idx y.idx
  | Ephemeral x, Ephemeral y ->
      let c = Int.compare x.thread y.thread in
      if c <> 0 then c else Int.compare x.seq y.seq
  | Logged _, Ephemeral _ -> -1
  | Ephemeral _, Logged _ -> 1

let intention_pos = function
  | Logged { pos; _ } -> Some pos
  | Ephemeral _ -> None

let is_ephemeral = function Ephemeral _ -> true | Logged _ -> false

let pp fmt = function
  | Logged { pos; idx } -> Format.fprintf fmt "L(%d,%d)" pos idx
  | Ephemeral { thread; seq } -> Format.fprintf fmt "E(%d,%d)" thread seq

let to_string v = Format.asprintf "%a" pp v

module Alloc = struct
  type vn = t
  type nonrec t = { thread : int; mutable seq : int }

  let create ~thread = { thread; seq = 0 }
  let thread t = t.thread

  let next t : vn =
    let seq = t.seq in
    t.seq <- seq + 1;
    Ephemeral { thread = t.thread; seq }

  let issued t = t.seq
  let reset t = t.seq <- 0

  let resume t ~issued =
    if issued < 0 then invalid_arg "Vn.Alloc.resume";
    t.seq <- issued
end
