(** Tree nodes and their meld metadata.

    The representation is concrete (and shared with [hyder_core]) because
    meld, premeld and group meld are defined structurally over it.

    Metadata per node (Section 2 / Appendix A of the paper, recast in the
    content-version formulation described in DESIGN.md):

    - [vn]: this version's identity.
    - [cv]: the {e content version} — the VN of the version that first
      generated this node's payload.  Appendix A calls the same information
      SCV when talking about the source node; carrying it on every node
      makes the conflict rules uniform:  a dependent access of key [k]
      conflicts iff the LCS's [cv] for [k] differs from the [scv] the
      intention recorded.
    - ssv: source structure version — the VN of the same-key node in the
      state this node was derived from (absent for a fresh insert).
    - scv: source content version — the [cv] of that same-key source node.
    - altered: the producing transaction changed the payload.
    - depends_on_content: the transaction read the payload and runs at an
      isolation level that validates reads (the paper's DependsOn flag).
    - depends_on_structure: the transaction depends on the whole subtree
      under this node being unchanged — used for range scans and reads of
      absent keys (phantom avoidance; the paper defers this metadata
      to [8]).
    - owner: log position of the intention this node belongs to, or
      [state_owner] for nodes of melded states (including genesis and
      ephemeral nodes created by final meld).  Meld uses it to decide
      whether a node is "inside" the intention being melded.
    - has_writes: subtree summary — true iff this node or any descendant
      {e belonging to the same intention} was altered or inserted.  Drives
      the Section 3.3 read-only-subtree rule.

    {2 Packed representation}

    All of the above except [vn]/[cv] is packed into one immediate [int]
    ([meta]) plus four plain int words, so the meld/premeld/group-meld hot
    loops test metadata with masks — no option allocation, no [caml_equal]
    — and constructing an ephemeral node allocates exactly one block:

    - [meta] bits 0..7 are flags (see {!Meta}; the low three equal the
      wire codec's flag-byte bits), bits 8.. hold [owner + 1] so state
      nodes ([owner = -1]) have zero owner bits.
    - [ssv_a]/[ssv_b] hold the ssv's payload when the
      {!Meta.ssv_present} bit is set: [(pos, idx)] of a logged VN, or
      [(thread, seq)] of an ephemeral one ({!Meta.ssv_ephemeral} selects
      which).  [scv_a]/[scv_b] likewise for the scv.

    The packing is a pure re-encoding of the old record — the wire format
    and all meld decisions are unchanged (DESIGN.md §11).

    {2 Sentinel empty}

    The empty tree is the statically-allocated sentinel {!empty} (its
    children point to itself) rather than a variant constructor: child
    links reference node records directly, so an ephemeral node is one
    12-word block with no [Node of node] wrapper, and traversals follow
    one pointer per child.  Test emptiness with {!is_empty} (physical
    equality); recursions must check it before touching children — the
    sentinel's children are the sentinel itself. *)

type tree = node

and node = {
  key : Key.t;
  payload : Payload.t;
  left : tree;
  right : tree;
  vn : Vn.t;
  cv : Vn.t;
  meta : int;  (** flag bits + biased owner; see {!Meta} *)
  ssv_a : int;
  ssv_b : int;
  scv_a : int;
  scv_b : int;
}

val state_owner : int
(** The owner value (-1) marking nodes that belong to a database state
    rather than to a pending intention. *)

val empty : tree
(** The empty tree: a unique sentinel node.  Its [meta] is 0 (so it never
    matches a same-owner has-writes mask test) and its children are
    itself; no other field may be read. *)

val is_empty : tree -> bool
(** Physical equality with {!empty}. *)

(** Bit layout of {!node.meta}. *)
module Meta : sig
  val altered : int  (** 0x01 — also the wire flag bit *)

  val dep_content : int  (** 0x02 — also the wire flag bit *)

  val dep_structure : int  (** 0x04 — also the wire flag bit *)

  val has_writes : int  (** 0x08; recomputed by {!pack}, never carried *)

  val ssv_present : int  (** 0x10 *)

  val ssv_ephemeral : int  (** 0x20 — value class of [ssv_a]/[ssv_b] *)

  val scv_present : int  (** 0x40 *)

  val scv_ephemeral : int  (** 0x80 *)

  val flags_mask : int  (** 0xff *)

  val dependent_mask : int
  (** [altered lor dep_content lor dep_structure]: non-zero meta
      intersection ⇔ the node is dependent (read or written). *)

  val source_mask : int
  (** The four ssv/scv presence + class bits. *)

  val carry_mask : int
  (** Flag bits that survive an owner rewrite ([flags_mask] minus
      [has_writes]). *)

  val owner_shift : int

  val owner_mask : int
  (** All bits above the flags. *)

  val owner_bits : int -> int
  (** [(owner + 1) lsl owner_shift]. *)

  val owner_of : int -> int

  val hw_mask : int
  (** [owner_mask lor has_writes]: [meta land hw_mask = owner_bits o lor
      has_writes] tests "same owner and has writes" in one compare. *)
end

val pack :
  key:Key.t ->
  payload:Payload.t ->
  left:tree ->
  right:tree ->
  vn:Vn.t ->
  cv:Vn.t ->
  meta:int ->
  ssv_a:int ->
  ssv_b:int ->
  scv_a:int ->
  scv_b:int ->
  node
(** Low-level constructor over the packed representation: [meta] supplies
    flag and owner bits, and the [has_writes] bit is recomputed from the
    other bits and the same-owner children (any [has_writes] bit in the
    given [meta] is ignored).  This is the hot-path constructor — one
    block allocated, no closures. *)

val make :
  key:Key.t ->
  payload:Payload.t ->
  left:tree ->
  right:tree ->
  vn:Vn.t ->
  cv:Vn.t ->
  ssv:Vn.t option ->
  scv:Vn.t option ->
  altered:bool ->
  depends_on_content:bool ->
  depends_on_structure:bool ->
  owner:int ->
  node
(** Smart constructor over the unpacked field view; computes [has_writes]
    from the fields and the same-owner children.  Cold paths only. *)

val with_children : node -> left:tree -> right:tree -> vn:Vn.t -> node
(** Copy-on-write: same key/payload/metadata, new children and identity. *)

(** {2 Metadata accessors} *)

val owner : node -> int
val altered : node -> bool
val depends_on_content : node -> bool
val depends_on_structure : node -> bool
val has_writes : node -> bool
val has_ssv : node -> bool
val has_scv : node -> bool

val ssv : node -> Vn.t option
(** Option view of the packed ssv — allocates; cold paths only. *)

val scv : node -> Vn.t option

val ssv_equals : node -> Vn.t -> bool
(** Allocation-free [ssv n = Some vn]; false when the ssv is absent. *)

val scv_equals : node -> Vn.t -> bool

(** {2 Packed-word views of a boxed VN}

    For storing a [Vn.t] as a source version without allocating:
    [vn_a]/[vn_b] extract the two payload words ([pos]/[idx] of a logged
    VN, [thread]/[seq] of an ephemeral one); [ssv_class]/[scv_class] give
    the matching presence + value-class meta bits. *)

val vn_a : Vn.t -> int
val vn_b : Vn.t -> int
val ssv_class : Vn.t -> int
val scv_class : Vn.t -> int

val size : tree -> int
(** Total nodes (including tombstones). *)

val live_size : tree -> int
(** Nodes whose payload is not a tombstone. *)

val depth : tree -> int

val pp : Format.formatter -> tree -> unit
(** Multi-line structural dump, for debugging and golden tests. *)
