open Node

type t = Node.tree

let empty = Empty

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let rec find t key =
  match t with
  | Empty -> None
  | Node n ->
      let c = Key.compare key n.key in
      if c = 0 then Some n else if c < 0 then find n.left key else find n.right key

let lookup t key =
  match find t key with
  | None -> None
  | Some n -> if Payload.is_tombstone n.payload then None else Some n.payload

let mem t key = lookup t key <> None

let rec pred t key =
  match t with
  | Empty -> None
  | Node n ->
      if Key.compare n.key key < 0 then
        match pred n.right key with None -> Some n | Some m -> Some m
      else pred n.left key

let rec succ t key =
  match t with
  | Empty -> None
  | Node n ->
      if Key.compare n.key key > 0 then
        match succ n.left key with None -> Some n | Some m -> Some m
      else succ n.right key

let range_items t ~lo ~hi =
  let rec go t acc =
    match t with
    | Empty -> acc
    | Node n ->
        let acc = if Key.compare n.key hi < 0 then go n.right acc else acc in
        let acc =
          if Key.compare lo n.key <= 0 && Key.compare n.key hi <= 0
             && not (Payload.is_tombstone n.payload)
          then (n.key, n.payload) :: acc
          else acc
        in
        if Key.compare lo n.key < 0 then go n.left acc else acc
  in
  go t []

let rec iter t f =
  match t with
  | Empty -> ()
  | Node n ->
      iter n.left f;
      f n;
      iter n.right f

let to_alist t =
  let acc = ref [] in
  let rec go = function
    | Empty -> ()
    | Node n ->
        go n.right;
        if not (Payload.is_tombstone n.payload) then
          acc := (n.key, n.payload) :: !acc;
        go n.left
  in
  go t;
  !acc

(* ------------------------------------------------------------------ *)
(* Copy-on-write mutators                                              *)
(* ------------------------------------------------------------------ *)

(* ssv/scv of a new draft derived from [old]: a node already owned by this
   intention keeps its snapshot-relative metadata; a snapshot node becomes
   the source. *)
let source_meta ~owner (old : node) =
  if old.owner = owner then (old.ssv, old.scv) else (Some old.vn, Some old.cv)

(* Structural copy: same payload and access flags, new children. *)
let copy ~owner ~fresh (old : node) ~left ~right =
  let ssv, scv = source_meta ~owner old in
  let mine = old.owner = owner in
  Node.make ~key:old.key ~payload:old.payload ~left ~right ~vn:(fresh ())
    ~cv:old.cv ~ssv ~scv
    ~altered:(mine && old.altered)
    ~depends_on_content:(mine && old.depends_on_content)
    ~depends_on_structure:(mine && old.depends_on_structure)
    ~owner

(* Split a subtree around an absent key, copying the split path. *)
let rec split t key ~owner ~fresh =
  match t with
  | Empty -> (Empty, Empty)
  | Node n ->
      if Key.compare n.key key < 0 then begin
        let l2, r2 = split n.right key ~owner ~fresh in
        (Node (copy ~owner ~fresh n ~left:n.left ~right:l2), r2)
      end
      else begin
        let l2, r2 = split n.left key ~owner ~fresh in
        (l2, Node (copy ~owner ~fresh n ~left:r2 ~right:n.right))
      end

let upsert t ~owner ~fresh key payload =
  let fresh_insert ~left ~right =
    let vn = fresh () in
    Node.make ~key ~payload ~left ~right ~vn ~cv:vn ~ssv:None ~scv:None
      ~altered:true ~depends_on_content:false ~depends_on_structure:false
      ~owner
  in
  let rec go t =
    match t with
    | Empty -> Node (fresh_insert ~left:Empty ~right:Empty)
    | Node n ->
        let c = Key.compare key n.key in
        if c = 0 then begin
          (* Payload update in place (copy-on-write). *)
          let ssv, scv = source_meta ~owner n in
          let mine = n.owner = owner in
          let vn = fresh () in
          Node
            (Node.make ~key ~payload ~left:n.left ~right:n.right ~vn ~cv:vn
               ~ssv ~scv ~altered:true
               ~depends_on_content:(mine && n.depends_on_content)
               ~depends_on_structure:(mine && n.depends_on_structure)
               ~owner)
        end
        else if Key.priority_greater key n.key then begin
          (* The new key outranks this subtree's root: splice it here. *)
          let left, right = split t key ~owner ~fresh in
          Node (fresh_insert ~left ~right)
        end
        else if c < 0 then Node (copy ~owner ~fresh n ~left:(go n.left) ~right:n.right)
        else Node (copy ~owner ~fresh n ~left:n.left ~right:(go n.right))
  in
  go t

(* Mark the node (copying it) with extra dependency flags; keep payload. *)
let mark ~owner ~fresh (n : node) ~content ~structure =
  let ssv, scv = source_meta ~owner n in
  let mine = n.owner = owner in
  Node.make ~key:n.key ~payload:n.payload ~left:n.left ~right:n.right
    ~vn:(fresh ()) ~cv:n.cv ~ssv ~scv ~altered:(mine && n.altered)
    ~depends_on_content:((mine && n.depends_on_content) || content)
    ~depends_on_structure:((mine && n.depends_on_structure) || structure)
    ~owner

let touch_read t ~owner ~fresh key =
  (* Returns the rebuilt subtree, or physically the same subtree when no
     marking was needed (so repeated reads do not churn versions). *)
  let rec go t =
    match t with
    | Empty -> Empty
    | Node n ->
        let c = Key.compare key n.key in
        if c = 0 then
          if n.owner = owner && (n.altered || n.depends_on_content) then t
          else Node (mark ~owner ~fresh n ~content:true ~structure:false)
        else begin
          let child = if c < 0 then n.left else n.right in
          match child with
          | Empty ->
              (* Absent key: the transaction depends on this gap staying
                 empty — guard the node where the search ended. *)
              if n.owner = owner && n.depends_on_structure then t
              else Node (mark ~owner ~fresh n ~content:false ~structure:true)
          | Node _ ->
              let child' = go child in
              if child' == child then t
              else if c < 0 then
                Node (copy ~owner ~fresh n ~left:child' ~right:n.right)
              else Node (copy ~owner ~fresh n ~left:n.left ~right:child')
        end
  in
  go t

(* Materialize the path to an existing key and set depends_on_structure on
   it; used as the phantom guard for empty-range neighbours. *)
let mark_structure t ~owner ~fresh key =
  let rec go t =
    match t with
    | Empty -> Empty
    | Node n ->
        let c = Key.compare key n.key in
        if c = 0 then
          if n.owner = owner && n.depends_on_structure then t
          else Node (mark ~owner ~fresh n ~content:false ~structure:true)
        else begin
          let child = if c < 0 then n.left else n.right in
          let child' = go child in
          if child' == child then t
          else if c < 0 then Node (copy ~owner ~fresh n ~left:child' ~right:n.right)
          else Node (copy ~owner ~fresh n ~left:n.left ~right:child')
        end
  in
  go t

let touch_range t ~owner ~fresh ~lo ~hi =
  let found = ref false in
  let rec go t =
    match t with
    | Empty -> Empty
    | Node n ->
        let below = Key.compare n.key lo < 0 in
        let above = Key.compare n.key hi > 0 in
        if below then begin
          let r = go n.right in
          if r == n.right then t else Node (copy ~owner ~fresh n ~left:n.left ~right:r)
        end
        else if above then begin
          let l = go n.left in
          if l == n.left then t else Node (copy ~owner ~fresh n ~left:l ~right:n.right)
        end
        else begin
          (* In range: the scan's result depends on this node's subtree. *)
          found := true;
          let l = go n.left in
          let r = go n.right in
          if n.owner = owner && n.depends_on_structure && l == n.left
             && r == n.right
          then t
          else
            Node
              (mark ~owner ~fresh
                 { n with left = l; right = r }
                 ~content:true ~structure:true)
        end
  in
  let t' = go t in
  if !found then t'
  else begin
    (* Empty range: guard its neighbours so a concurrent insert into the
       gap is detected. *)
    let t' =
      match pred t' lo with
      | None -> t'
      | Some p -> mark_structure t' ~owner ~fresh p.key
    in
    match succ t' hi with
    | None -> t'
    | Some s -> mark_structure t' ~owner ~fresh s.key
  end

(* ------------------------------------------------------------------ *)
(* Bootstrap                                                           *)
(* ------------------------------------------------------------------ *)

let of_sorted_array items =
  let n = Array.length items in
  for i = 1 to n - 1 do
    if Key.compare (fst items.(i - 1)) (fst items.(i)) >= 0 then
      invalid_arg "Tree.of_sorted_array: keys must be strictly increasing"
  done;
  (* Recursive canonical construction: the root of a segment is its
     maximum-priority key.  In-order index is the genesis VN index. *)
  let rec build lo hi =
    if lo >= hi then Empty
    else begin
      let best = ref lo in
      for i = lo + 1 to hi - 1 do
        if Key.priority_greater (fst items.(i)) (fst items.(!best)) then
          best := i
      done;
      let key, payload = items.(!best) in
      let left = build lo !best in
      let right = build (!best + 1) hi in
      let vn = Vn.genesis ~idx:!best in
      Node
        (Node.make ~key ~payload ~left ~right ~vn ~cv:vn ~ssv:None ~scv:None
           ~altered:false ~depends_on_content:false ~depends_on_structure:false
           ~owner:state_owner)
    end
  in
  build 0 n

(* ------------------------------------------------------------------ *)
(* Validation and statistics                                           *)
(* ------------------------------------------------------------------ *)

let validate t =
  let exception Bad of string in
  let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
  let rec go t lo hi =
    match t with
    | Empty -> ()
    | Node n ->
        (match lo with
        | Some l when Key.compare n.key l <= 0 ->
            fail "BST violation at key %s" (Key.to_string n.key)
        | _ -> ());
        (match hi with
        | Some h when Key.compare n.key h >= 0 ->
            fail "BST violation at key %s" (Key.to_string n.key)
        | _ -> ());
        let check_child = function
          | Empty -> ()
          | Node c ->
              if not (Key.priority_greater n.key c.key) then
                fail "heap violation: %s under %s" (Key.to_string c.key)
                  (Key.to_string n.key)
        in
        check_child n.left;
        check_child n.right;
        let expect =
          n.altered || n.ssv = None
          || (match n.left with
             | Node c -> c.owner = n.owner && c.has_writes
             | Empty -> false)
          || match n.right with
             | Node c -> c.owner = n.owner && c.has_writes
             | Empty -> false
        in
        if n.has_writes <> expect then
          fail "has_writes summary wrong at key %s" (Key.to_string n.key);
        go n.left lo (Some n.key);
        go n.right (Some n.key) hi
  in
  match go t None None with () -> Ok () | exception Bad s -> Error s

let size = Node.size
let live_size = Node.live_size
let depth = Node.depth

let path_length t key =
  let rec go t acc =
    match t with
    | Empty -> acc
    | Node n ->
        let c = Key.compare key n.key in
        if c = 0 then acc + 1
        else if c < 0 then go n.left (acc + 1)
        else go n.right (acc + 1)
  in
  go t 0

(* MD5 over a parenthesized pre-order serialization of every field
   [physically_equal] compares — two trees digest equally iff they are
   physically equal (VNs, flags and owners included), which lets the
   chaos harness compare whole-cluster convergence by fingerprint. *)
let digest t =
  let b = Buffer.create 4096 in
  let vn b v =
    match (v : Vn.t) with
    | Vn.Logged { pos; idx } -> Printf.bprintf b "L%d.%d" pos idx
    | Vn.Ephemeral { thread; seq } -> Printf.bprintf b "E%d.%d" thread seq
  in
  let vn_opt b = function
    | None -> Buffer.add_char b '-'
    | Some v -> vn b v
  in
  let rec go = function
    | Empty -> Buffer.add_char b '.'
    | Node n ->
        Buffer.add_char b '(';
        Printf.bprintf b "%d|" n.key;
        (match n.payload with
        | Payload.Tombstone -> Buffer.add_char b 'T'
        | Payload.Value v ->
            Printf.bprintf b "V%d:" (String.length v);
            Buffer.add_string b v);
        Buffer.add_char b '|';
        vn b n.vn;
        Buffer.add_char b '|';
        vn b n.cv;
        Buffer.add_char b '|';
        vn_opt b n.ssv;
        Buffer.add_char b '|';
        vn_opt b n.scv;
        Printf.bprintf b "|%b%b%b|%d" n.altered n.depends_on_content
          n.depends_on_structure n.owner;
        go n.left;
        go n.right;
        Buffer.add_char b ')'
  in
  go t;
  Digest.to_hex (Digest.string (Buffer.contents b))

let rec physically_equal a b =
  match (a, b) with
  | Empty, Empty -> true
  | Node x, Node y ->
      x == y
      || Key.equal x.key y.key
         && Payload.equal x.payload y.payload
         && Vn.equal x.vn y.vn && Vn.equal x.cv y.cv
         && Option.equal Vn.equal x.ssv y.ssv
         && Option.equal Vn.equal x.scv y.scv
         && x.altered = y.altered
         && x.depends_on_content = y.depends_on_content
         && x.depends_on_structure = y.depends_on_structure
         && x.owner = y.owner
         && physically_equal x.left y.left
         && physically_equal x.right y.right
  | Empty, Node _ | Node _, Empty -> false
