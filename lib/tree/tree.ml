open Node

type t = Node.tree

let empty = Node.empty

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

(* All recursions test [== empty] before touching children: the sentinel's
   children are the sentinel itself (see node.mli). *)

let rec find t key =
  if t == empty then None
  else
    let c = Key.compare key t.key in
    if c = 0 then Some t else if c < 0 then find t.left key else find t.right key

let lookup t key =
  match find t key with
  | None -> None
  | Some n -> if Payload.is_tombstone n.payload then None else Some n.payload

let mem t key = match lookup t key with None -> false | Some _ -> true

let rec pred t key =
  if t == empty then None
  else if Key.compare t.key key < 0 then
    match pred t.right key with None -> Some t | Some m -> Some m
  else pred t.left key

let rec succ t key =
  if t == empty then None
  else if Key.compare t.key key > 0 then
    match succ t.left key with None -> Some t | Some m -> Some m
  else succ t.right key

let range_items t ~lo ~hi =
  let rec go t acc =
    if t == empty then acc
    else begin
      let acc = if Key.compare t.key hi < 0 then go t.right acc else acc in
      let acc =
        if Key.compare lo t.key <= 0 && Key.compare t.key hi <= 0
           && not (Payload.is_tombstone t.payload)
        then (t.key, t.payload) :: acc
        else acc
      in
      if Key.compare lo t.key < 0 then go t.left acc else acc
    end
  in
  go t []

let rec iter t f =
  if t == empty then ()
  else begin
    iter t.left f;
    f t;
    iter t.right f
  end

let to_alist t =
  let acc = ref [] in
  let rec go t =
    if t == empty then ()
    else begin
      go t.right;
      if not (Payload.is_tombstone t.payload) then
        acc := (t.key, t.payload) :: !acc;
      go t.left
    end
  in
  go t;
  !acc

(* ------------------------------------------------------------------ *)
(* Copy-on-write mutators                                              *)
(* ------------------------------------------------------------------ *)

(* A new draft node derived from [old]: a node already owned by this
   intention keeps its snapshot-relative metadata (flags and packed
   source versions); a snapshot node becomes the source — ssv := its vn,
   scv := its cv, access flags cleared.  Both arms are single packed
   constructions, no option or tuple allocation. *)

(* Structural copy: same payload and access flags, new children. *)
let copy ~owner ~fresh (old : node) ~left ~right =
  if Node.owner old = owner then
    Node.pack ~key:old.key ~payload:old.payload ~left ~right ~vn:(fresh ())
      ~cv:old.cv ~meta:old.meta ~ssv_a:old.ssv_a ~ssv_b:old.ssv_b
      ~scv_a:old.scv_a ~scv_b:old.scv_b
  else
    let meta =
      Meta.owner_bits owner lor Node.ssv_class old.vn lor Node.scv_class old.cv
    in
    Node.pack ~key:old.key ~payload:old.payload ~left ~right ~vn:(fresh ())
      ~cv:old.cv ~meta ~ssv_a:(Node.vn_a old.vn) ~ssv_b:(Node.vn_b old.vn)
      ~scv_a:(Node.vn_a old.cv) ~scv_b:(Node.vn_b old.cv)

(* Split a subtree around an absent key, copying the split path. *)
let rec split t key ~owner ~fresh =
  if t == empty then (empty, empty)
  else if Key.compare t.key key < 0 then begin
    let l2, r2 = split t.right key ~owner ~fresh in
    (copy ~owner ~fresh t ~left:t.left ~right:l2, r2)
  end
  else begin
    let l2, r2 = split t.left key ~owner ~fresh in
    (l2, copy ~owner ~fresh t ~left:r2 ~right:t.right)
  end

let upsert t ~owner ~fresh key payload =
  let fresh_insert ~left ~right =
    let vn = fresh () in
    Node.pack ~key ~payload ~left ~right ~vn ~cv:vn
      ~meta:(Meta.owner_bits owner lor Meta.altered)
      ~ssv_a:0 ~ssv_b:0 ~scv_a:0 ~scv_b:0
  in
  let rec go t =
    if t == empty then fresh_insert ~left:empty ~right:empty
    else
      let c = Key.compare key t.key in
      if c = 0 then begin
        (* Payload update in place (copy-on-write). *)
        let vn = fresh () in
        if Node.owner t = owner then
          Node.pack ~key ~payload ~left:t.left ~right:t.right ~vn ~cv:vn
            ~meta:(t.meta lor Meta.altered)
            ~ssv_a:t.ssv_a ~ssv_b:t.ssv_b ~scv_a:t.scv_a ~scv_b:t.scv_b
        else
          let meta =
            Meta.owner_bits owner lor Meta.altered lor Node.ssv_class t.vn
            lor Node.scv_class t.cv
          in
          Node.pack ~key ~payload ~left:t.left ~right:t.right ~vn ~cv:vn ~meta
            ~ssv_a:(Node.vn_a t.vn) ~ssv_b:(Node.vn_b t.vn)
            ~scv_a:(Node.vn_a t.cv) ~scv_b:(Node.vn_b t.cv)
      end
      else if Key.priority_greater key t.key then begin
        (* The new key outranks this subtree's root: splice it here. *)
        let left, right = split t key ~owner ~fresh in
        fresh_insert ~left ~right
      end
      else if c < 0 then copy ~owner ~fresh t ~left:(go t.left) ~right:t.right
      else copy ~owner ~fresh t ~left:t.left ~right:(go t.right)
  in
  go t

(* Mark the node (copying it) with extra dependency flags; keep payload. *)
let mark ~owner ~fresh (n : node) ~content ~structure =
  let extra =
    (if content then Meta.dep_content else 0)
    lor if structure then Meta.dep_structure else 0
  in
  if Node.owner n = owner then
    Node.pack ~key:n.key ~payload:n.payload ~left:n.left ~right:n.right
      ~vn:(fresh ()) ~cv:n.cv ~meta:(n.meta lor extra)
      ~ssv_a:n.ssv_a ~ssv_b:n.ssv_b ~scv_a:n.scv_a ~scv_b:n.scv_b
  else
    let meta =
      Meta.owner_bits owner lor extra lor Node.ssv_class n.vn
      lor Node.scv_class n.cv
    in
    Node.pack ~key:n.key ~payload:n.payload ~left:n.left ~right:n.right
      ~vn:(fresh ()) ~cv:n.cv ~meta
      ~ssv_a:(Node.vn_a n.vn) ~ssv_b:(Node.vn_b n.vn)
      ~scv_a:(Node.vn_a n.cv) ~scv_b:(Node.vn_b n.cv)

let touch_read t ~owner ~fresh key =
  (* Returns the rebuilt subtree, or physically the same subtree when no
     marking was needed (so repeated reads do not churn versions). *)
  let ob = Meta.owner_bits owner in
  let rec go t =
    if t == empty then empty
    else
      let c = Key.compare key t.key in
      if c = 0 then
        if
          t.meta land Meta.owner_mask = ob
          && t.meta land (Meta.altered lor Meta.dep_content) <> 0
        then t
        else mark ~owner ~fresh t ~content:true ~structure:false
      else begin
        let child = if c < 0 then t.left else t.right in
        if child == empty then begin
          (* Absent key: the transaction depends on this gap staying
             empty — guard the node where the search ended. *)
          if
            t.meta land (Meta.owner_mask lor Meta.dep_structure)
            = ob lor Meta.dep_structure
          then t
          else mark ~owner ~fresh t ~content:false ~structure:true
        end
        else begin
          let child' = go child in
          if child' == child then t
          else if c < 0 then copy ~owner ~fresh t ~left:child' ~right:t.right
          else copy ~owner ~fresh t ~left:t.left ~right:child'
        end
      end
  in
  go t

(* Materialize the path to an existing key and set depends_on_structure on
   it; used as the phantom guard for empty-range neighbours. *)
let mark_structure t ~owner ~fresh key =
  let ob = Meta.owner_bits owner in
  let rec go t =
    if t == empty then empty
    else
      let c = Key.compare key t.key in
      if c = 0 then
        if
          t.meta land (Meta.owner_mask lor Meta.dep_structure)
          = ob lor Meta.dep_structure
        then t
        else mark ~owner ~fresh t ~content:false ~structure:true
      else begin
        let child = if c < 0 then t.left else t.right in
        let child' = go child in
        if child' == child then t
        else if c < 0 then copy ~owner ~fresh t ~left:child' ~right:t.right
        else copy ~owner ~fresh t ~left:t.left ~right:child'
      end
  in
  go t

let touch_range t ~owner ~fresh ~lo ~hi =
  let found = ref false in
  let ob = Meta.owner_bits owner in
  let rec go t =
    if t == empty then empty
    else begin
      let below = Key.compare t.key lo < 0 in
      let above = Key.compare t.key hi > 0 in
      if below then begin
        let r = go t.right in
        if r == t.right then t else copy ~owner ~fresh t ~left:t.left ~right:r
      end
      else if above then begin
        let l = go t.left in
        if l == t.left then t else copy ~owner ~fresh t ~left:l ~right:t.right
      end
      else begin
        (* In range: the scan's result depends on this node's subtree. *)
        found := true;
        let l = go t.left in
        let r = go t.right in
        if
          t.meta land (Meta.owner_mask lor Meta.dep_structure)
          = ob lor Meta.dep_structure
          && l == t.left && r == t.right
        then t
        else
          mark ~owner ~fresh
            { t with left = l; right = r }
            ~content:true ~structure:true
      end
    end
  in
  let t' = go t in
  if !found then t'
  else begin
    (* Empty range: guard its neighbours so a concurrent insert into the
       gap is detected. *)
    let t' =
      match pred t' lo with
      | None -> t'
      | Some p -> mark_structure t' ~owner ~fresh p.key
    in
    match succ t' hi with
    | None -> t'
    | Some s -> mark_structure t' ~owner ~fresh s.key
  end

(* ------------------------------------------------------------------ *)
(* Bootstrap                                                           *)
(* ------------------------------------------------------------------ *)

let of_sorted_array items =
  let n = Array.length items in
  for i = 1 to n - 1 do
    if Key.compare (fst items.(i - 1)) (fst items.(i)) >= 0 then
      invalid_arg "Tree.of_sorted_array: keys must be strictly increasing"
  done;
  (* Recursive canonical construction: the root of a segment is its
     maximum-priority key.  In-order index is the genesis VN index. *)
  let rec build lo hi =
    if lo >= hi then empty
    else begin
      let best = ref lo in
      for i = lo + 1 to hi - 1 do
        if Key.priority_greater (fst items.(i)) (fst items.(!best)) then
          best := i
      done;
      let key, payload = items.(!best) in
      let left = build lo !best in
      let right = build (!best + 1) hi in
      let vn = Vn.genesis ~idx:!best in
      Node.make ~key ~payload ~left ~right ~vn ~cv:vn ~ssv:None ~scv:None
        ~altered:false ~depends_on_content:false ~depends_on_structure:false
        ~owner:state_owner
    end
  in
  build 0 n

(* ------------------------------------------------------------------ *)
(* Validation and statistics                                           *)
(* ------------------------------------------------------------------ *)

let validate t =
  let exception Bad of string in
  let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
  let rec go t lo hi =
    if t == empty then ()
    else begin
      (match lo with
      | Some l when Key.compare t.key l <= 0 ->
          fail "BST violation at key %s" (Key.to_string t.key)
      | _ -> ());
      (match hi with
      | Some h when Key.compare t.key h >= 0 ->
          fail "BST violation at key %s" (Key.to_string t.key)
      | _ -> ());
      let check_child c =
        if c == empty then ()
        else if not (Key.priority_greater t.key c.key) then
          fail "heap violation: %s under %s" (Key.to_string c.key)
            (Key.to_string t.key)
      in
      check_child t.left;
      check_child t.right;
      let same_owner_writes c =
        c != empty && Node.owner c = Node.owner t && Node.has_writes c
      in
      let expect =
        Node.altered t
        || (not (Node.has_ssv t))
        || same_owner_writes t.left
        || same_owner_writes t.right
      in
      if Node.has_writes t <> expect then
        fail "has_writes summary wrong at key %s" (Key.to_string t.key);
      go t.left lo (Some t.key);
      go t.right (Some t.key) hi
    end
  in
  match go t None None with () -> Ok () | exception Bad s -> Error s

let size = Node.size
let live_size = Node.live_size
let depth = Node.depth

let path_length t key =
  let rec go t acc =
    if t == empty then acc
    else
      let c = Key.compare key t.key in
      if c = 0 then acc + 1
      else if c < 0 then go t.left (acc + 1)
      else go t.right (acc + 1)
  in
  go t 0

(* MD5 over a parenthesized pre-order serialization of every field
   [physically_equal] compares — two trees digest equally iff they are
   physically equal (VNs, flags and owners included), which lets the
   chaos harness compare whole-cluster convergence by fingerprint. *)
let digest t =
  let b = Buffer.create 4096 in
  let vn b v =
    match (v : Vn.t) with
    | Vn.Logged { pos; idx } -> Printf.bprintf b "L%d.%d" pos idx
    | Vn.Ephemeral { thread; seq } -> Printf.bprintf b "E%d.%d" thread seq
  in
  let vn_opt b = function
    | None -> Buffer.add_char b '-'
    | Some v -> vn b v
  in
  let rec go t =
    if t == empty then Buffer.add_char b '.'
    else begin
      Buffer.add_char b '(';
      Printf.bprintf b "%d|" t.key;
      (match t.payload with
      | Payload.Tombstone -> Buffer.add_char b 'T'
      | Payload.Value v ->
          Printf.bprintf b "V%d:" (String.length v);
          Buffer.add_string b v);
      Buffer.add_char b '|';
      vn b t.vn;
      Buffer.add_char b '|';
      vn b t.cv;
      Buffer.add_char b '|';
      vn_opt b (Node.ssv t);
      Buffer.add_char b '|';
      vn_opt b (Node.scv t);
      Printf.bprintf b "|%b%b%b|%d" (Node.altered t)
        (Node.depends_on_content t)
        (Node.depends_on_structure t)
        (Node.owner t);
      go t.left;
      go t.right;
      Buffer.add_char b ')'
    end
  in
  go t;
  Digest.to_hex (Digest.string (Buffer.contents b))

let rec physically_equal a b =
  a == b
  || a != empty && b != empty
     && Key.equal a.key b.key
     && Payload.equal a.payload b.payload
     && Vn.equal a.vn b.vn && Vn.equal a.cv b.cv
     && a.meta = b.meta
     && a.ssv_a = b.ssv_a && a.ssv_b = b.ssv_b
     && a.scv_a = b.scv_a && a.scv_b = b.scv_b
     && physically_equal a.left b.left
     && physically_equal a.right b.right
