(** Version numbers (VNs).

    Every node version carries a unique identity (Appendix A of the paper):

    - [Logged] versions are calculated from the log address: the log
      position of the intention that wrote the node, plus the node's
      post-order index within that intention.  All servers deserialize the
      same log, so logged VNs agree everywhere by construction.  The
      pseudo-position [-1] is reserved for the genesis state loaded before
      the log starts.
    - [Ephemeral] versions identify nodes created by meld itself, which are
      never written to the log.  Per Section 3.4 they are two-part ids —
      (generating pipeline thread, per-thread sequence number) — so that
      premeld threads and final meld allocate identical ids on every server
      regardless of physical interleaving. *)

type t =
  | Logged of { pos : int; idx : int }
  | Ephemeral of { thread : int; seq : int }

val logged : pos:int -> idx:int -> t
val ephemeral : thread:int -> seq:int -> t

val genesis : idx:int -> t
(** VN of a node in the initial database load. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val intention_pos : t -> int option
(** The log position of the intention that logged this version, if any. *)

val is_ephemeral : t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Deterministic per-thread allocator for ephemeral VNs. *)
module Alloc : sig
  type vn := t
  type t

  val create : thread:int -> t
  val thread : t -> int
  val next : t -> vn
  val issued : t -> int
  val reset : t -> unit

  val resume : t -> issued:int -> unit
  (** Restore the allocator cursor to a checkpointed {!issued} count, so a
      restarted pipeline continues the exact ephemeral-id stream the
      crashed one would have produced. *)
end
