(** Sharded span recorder for the meld pipeline.

    {2 Sharding invariant}

    Span records live in per-writer fixed-capacity ring buffers, sharded
    exactly like [Hyder_core.Counters.premeld_shards]: ring 0 belongs to
    the pipeline's sequential tail (deserialize, group meld, final meld —
    always written by the submitting thread), and ring [i] (1-based)
    belongs to paper premeld thread [i], written only by whichever worker
    is currently impersonating that thread.  A recorder created with
    [~workers:n] additionally owns rings [shards+1 .. shards+n], one per
    pipelined worker domain, carrying the ds decode and gm combine spans
    that the [Pipelined] backend moves off the tail; each is again written
    by exactly one domain.  Recording is therefore lock-free and
    atomics-free on the hot path under every runtime backend.

    {2 Inertness}

    A disabled recorder ({!disabled}) makes {!record} a single branch.
    Call sites gate their own timestamp collection on {!enabled} so a
    traced-off run performs no extra clock reads.  Recording never feeds
    back into pipeline decisions: spans only {e read} counters and clocks,
    so decisions, ephemeral node identities and per-shard counter values
    are bit-identical with tracing on or off (asserted by
    [test/test_obs.ml]).

    {2 Overflow}

    When a ring wraps, the oldest spans are overwritten and counted in
    {!dropped}; accounting is exact. *)

type stage =
  | Deserialize
  | Premeld  (** one trial meld; [detail]: 1 = premelded, 2 = dead *)
  | Premeld_window
      (** a parallel backend pool task: one thread's slice of a premeld
          window; [nodes] carries the member count, [detail] the task
          index *)
  | Group_meld
  | Final_meld  (** [detail]: 1 = group committed, 0 = aborted *)

val stage_to_string : stage -> string

type span = {
  track : int;
      (** ring index: 0 = pipeline tail, 1..shards = premeld shards,
          shards+1.. = pipelined worker domains *)
  stage : stage;
  seq : int;  (** intention sequence number (first of the group for fm) *)
  t0 : float;  (** [Hyder_util.Clock] seconds *)
  t1 : float;
  nodes : int;  (** tree nodes visited (stage-specific; see {!stage}) *)
  detail : int;  (** stage-specific decision/annotation code *)
}

type t

val disabled : t
(** The no-op recorder: {!enabled} is [false], {!record} is one branch. *)

val create : ?capacity:int -> ?workers:int -> shards:int -> unit -> t
(** [shards] premeld rings plus the tail ring, plus [workers] (default 0)
    pipelined worker-domain rings.  [capacity] is per ring, rounded up to
    a power of two (default 32768 spans). *)

val enabled : t -> bool

val shards : t -> int
(** Number of premeld shard rings (0 for {!disabled}). *)

val workers : t -> int
(** Number of pipelined worker-domain rings (0 for {!disabled}). *)

val capacity : t -> int

val record :
  t ->
  track:int ->
  stage:stage ->
  seq:int ->
  t0:float ->
  t1:float ->
  nodes:int ->
  detail:int ->
  unit

val recorded : t -> int
(** Spans ever recorded, including overwritten ones. *)

val dropped : t -> int
(** Spans lost to ring wrap. *)

val spans : t -> span list
(** Retained spans, globally sorted by start time. *)

val to_chrome : ?origin:float -> t -> Json.t
(** Chrome trace-event JSON (load in Perfetto / [chrome://tracing]).
    Final meld, group meld, deserialize, each premeld shard and each
    pipelined worker domain get their own named track, so stage overlap
    under [par:<n>] / [pipe:<n>] is visually auditable.  Timestamps are
    microseconds relative to [origin] (default: the earliest retained
    span).  When any ring overflowed ({!dropped} [> 0]) the export leads
    with a global instant event naming the dropped-span count, so a
    truncated trace is never silently read as complete. *)

val to_chrome_string : ?origin:float -> t -> string
