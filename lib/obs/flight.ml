type stage = Ds | Pm | Gm | Fm

let stage_index = function Ds -> 0 | Pm -> 1 | Gm -> 2 | Fm -> 3
let stage_name = function Ds -> "ds" | Pm -> "pm" | Gm -> "gm" | Fm -> "fm"
let stage_names = [| "ds"; "pm"; "gm"; "fm" |]
let n_stages = 4

type record = {
  pos : int;
  mutable seq : int;
  mutable server : int;
  mutable txn_seq : int;
  mutable t_submit : float;
  mutable t_last : float;
  mutable t_done : float;
  wait : float array;
  service : float array;
  mutable committed : bool;
  mutable abort_reason : string;
  mutable decided_at : string;
  mutable conflict_zone : int;
  mutable sim_submit : float;
  mutable sim_append : float;
  mutable sim_deliver : float;
}

(* Metrics instruments, resolved once at create time (same idiom as the
   pipeline's).  Histograms are in microseconds: the registry's log2
   buckets floor at 2^-16 ≈ 15µs, which would fold every sub-15µs stage
   time into bucket 0 if observed in seconds. *)
type instruments = {
  i_wait : Metrics.Histogram.t array;  (* per stage *)
  i_service : Metrics.Histogram.t array;
  i_e2e : Metrics.Histogram.t;
  i_total : Metrics.Counter.t;
  i_p50 : Metrics.Gauge.t;
  i_p95 : Metrics.Gauge.t;
  i_p99 : Metrics.Gauge.t;
}

type t = {
  on : bool;
  lbl : string;
  records : (int, record) Hashtbl.t;
  inst : instruments option;
  sink : out_channel option;
  e2e : Hyder_util.Stats.Sample.t;  (* seconds; exact percentiles *)
  mutable done_n : int;
}

let disabled =
  {
    on = false;
    lbl = "";
    records = Hashtbl.create 1;
    inst = None;
    sink = None;
    e2e = Hyder_util.Stats.Sample.create ();
    done_n = 0;
  }

let make_instruments m =
  {
    i_wait =
      Array.map
        (fun s -> Metrics.histogram m (Printf.sprintf "flight_%s_wait_us" s))
        stage_names;
    i_service =
      Array.map
        (fun s -> Metrics.histogram m (Printf.sprintf "flight_%s_service_us" s))
        stage_names;
    i_e2e = Metrics.histogram m "flight_e2e_us";
    i_total = Metrics.counter m "flight_records_total";
    i_p50 = Metrics.gauge m "flight_e2e_p50_us";
    i_p95 = Metrics.gauge m "flight_e2e_p95_us";
    i_p99 = Metrics.gauge m "flight_e2e_p99_us";
  }

let create ?(label = "") ?metrics ?sink () =
  {
    on = true;
    lbl = label;
    records = Hashtbl.create 1024;
    inst = Option.map make_instruments metrics;
    sink;
    e2e = Hyder_util.Stats.Sample.create ();
    done_n = 0;
  }

let enabled t = t.on
let label t = t.lbl
let in_flight t = Hashtbl.length t.records
let completed t = t.done_n

let fresh ~pos ~now =
  {
    pos;
    seq = -1;
    server = -1;
    txn_seq = -1;
    t_submit = now;
    t_last = now;
    t_done = Float.nan;
    wait = Array.make n_stages 0.0;
    service = Array.make n_stages 0.0;
    committed = false;
    abort_reason = "";
    decided_at = "";
    conflict_zone = 0;
    sim_submit = -1.0;
    sim_append = -1.0;
    sim_deliver = -1.0;
  }

let find_or_open t ~pos ~now =
  match Hashtbl.find_opt t.records pos with
  | Some r -> r
  | None ->
      let r = fresh ~pos ~now in
      Hashtbl.add t.records pos r;
      r

let touch t ~pos ~now = if t.on then ignore (find_or_open t ~pos ~now)

let note_identity t ~pos ~server ~txn_seq =
  if t.on then
    match Hashtbl.find_opt t.records pos with
    | None -> ()
    | Some r ->
        r.server <- server;
        r.txn_seq <- txn_seq

let edge t ~pos ~stage ~t0 ~t1 =
  if t.on then begin
    let r = find_or_open t ~pos ~now:t0 in
    let s = stage_index stage in
    r.wait.(s) <- r.wait.(s) +. Float.max 0.0 (t0 -. r.t_last);
    r.service.(s) <- r.service.(s) +. Float.max 0.0 (t1 -. t0);
    r.t_last <- Float.max r.t_last t1
  end

let sim_edge t ~pos ~at x =
  if t.on then
    match Hashtbl.find_opt t.records pos with
    | None -> ()
    | Some r -> (
        match at with
        | `Submit -> r.sim_submit <- x
        | `Append -> r.sim_append <- x
        | `Deliver -> if r.sim_deliver < 0.0 then r.sim_deliver <- x)

let us x = 1e6 *. x

let stage_obj arr =
  Json.Obj
    (Array.to_list (Array.mapi (fun i s -> (s, Json.Float arr.(i))) stage_names))

let record_to_json ~label (r : record) =
  let base =
    [
      ("pos", Json.Int r.pos);
      ("seq", Json.Int r.seq);
      ("server", Json.Int r.server);
      ("txn_seq", Json.Int r.txn_seq);
      ("label", Json.String label);
      ("committed", Json.Bool r.committed);
      ( "abort_reason",
        if r.abort_reason = "" then Json.Null else Json.String r.abort_reason );
      ("decided_at", Json.String r.decided_at);
      ("conflict_zone", Json.Int r.conflict_zone);
      ("t_submit", Json.Float r.t_submit);
      ("t_done", Json.Float r.t_done);
      ("e2e", Json.Float (r.t_done -. r.t_submit));
      ("wait", stage_obj r.wait);
      ("service", stage_obj r.service);
    ]
  in
  let sim =
    if r.sim_submit < 0.0 && r.sim_append < 0.0 && r.sim_deliver < 0.0 then []
    else
      [
        ( "sim",
          Json.Obj
            [
              ("submit", Json.Float r.sim_submit);
              ("append", Json.Float r.sim_append);
              ("deliver", Json.Float r.sim_deliver);
            ] );
      ]
  in
  Json.Obj (base @ sim)

let complete t ~pos ~now ~seq ~committed ~reason ~decided_at ~conflict_zone =
  if t.on then
    match Hashtbl.find_opt t.records pos with
    | None -> ()
    | Some r ->
        Hashtbl.remove t.records pos;
        r.seq <- seq;
        r.t_done <- Float.max r.t_last now;
        r.committed <- committed;
        r.abort_reason <- reason;
        r.decided_at <- decided_at;
        r.conflict_zone <- conflict_zone;
        t.done_n <- t.done_n + 1;
        let e2e = r.t_done -. r.t_submit in
        Hyder_util.Stats.Sample.add t.e2e e2e;
        (match t.inst with
        | None -> ()
        | Some i ->
            Metrics.Counter.incr i.i_total;
            Metrics.Histogram.observe i.i_e2e (us e2e);
            for s = 0 to n_stages - 1 do
              Metrics.Histogram.observe i.i_wait.(s) (us r.wait.(s));
              Metrics.Histogram.observe i.i_service.(s) (us r.service.(s))
            done);
        (match t.sink with
        | None -> ()
        | Some oc ->
            Json.to_channel oc (record_to_json ~label:t.lbl r);
            output_char oc '\n')

let export_percentiles t =
  match t.inst with
  | None -> ()
  | Some i ->
      if Hyder_util.Stats.Sample.count t.e2e > 0 then begin
        let p q = us (Hyder_util.Stats.Sample.percentile t.e2e q) in
        Metrics.Gauge.set i.i_p50 (p 50.0);
        Metrics.Gauge.set i.i_p95 (p 95.0);
        Metrics.Gauge.set i.i_p99 (p 99.0)
      end
