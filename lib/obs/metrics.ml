module Counter = struct
  type t = { mutable v : int }

  let incr ?(by = 1) c = c.v <- c.v + by
  let value c = c.v
end

module Gauge = struct
  type t = { mutable v : float }

  let set g x = g.v <- x
  let value g = g.v
end

module Fcounter = struct
  type t = { mutable v : float }

  let add c x = c.v <- c.v +. x
  let value c = c.v
end

module Histogram = struct
  let n_buckets = 64
  let min_exp = -16

  type t = { counts : int array; mutable n : int; mutable sum : float }

  let bucket_of x =
    if x <= 0.0 then 0
    else begin
      (* frexp: x = m * 2^e with 0.5 <= m < 1, so 2^(e-1) <= x < 2^e. *)
      let _, e = Float.frexp x in
      let i = e - 1 - min_exp in
      if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i
    end

  let lower_bound i = Float.ldexp 1.0 (i + min_exp)

  let observe h x =
    h.counts.(bucket_of x) <- h.counts.(bucket_of x) + 1;
    h.n <- h.n + 1;
    h.sum <- h.sum +. x

  let count h = h.n
  let sum h = h.sum
  let bucket_counts h = Array.copy h.counts
end

type instrument =
  | C of Counter.t
  | G of Gauge.t
  | F of Fcounter.t
  | H of Histogram.t

type t = { items : (string, instrument) Hashtbl.t }

let create () = { items = Hashtbl.create 32 }

let kind_name = function
  | C _ -> "counter"
  | G _ -> "gauge"
  | F _ -> "fcounter"
  | H _ -> "histogram"

let resolve t name make match_ =
  match Hashtbl.find_opt t.items name with
  | Some i -> (
      match match_ i with
      | Some x -> x
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S is already a %s" name (kind_name i)))
  | None ->
      let i = make () in
      Hashtbl.add t.items name i;
      (match match_ i with Some x -> x | None -> assert false)

let counter t name =
  resolve t name
    (fun () -> C { Counter.v = 0 })
    (function C c -> Some c | _ -> None)

let gauge t name =
  resolve t name
    (fun () -> G { Gauge.v = 0.0 })
    (function G g -> Some g | _ -> None)

let fcounter t name =
  resolve t name
    (fun () -> F { Fcounter.v = 0.0 })
    (function F c -> Some c | _ -> None)

let histogram t name =
  resolve t name
    (fun () ->
      H { Histogram.counts = Array.make Histogram.n_buckets 0; n = 0; sum = 0.0 })
    (function H h -> Some h | _ -> None)

(* ------------------------------------------------------------------ *)
(* Snapshots                                                            *)
(* ------------------------------------------------------------------ *)

type value =
  | Counter_v of int
  | Gauge_v of float
  | Fcounter_v of float
  | Histogram_v of { counts : int array; count : int; sum : float }

type snapshot = (string * value) list

let snapshot t =
  Hashtbl.fold
    (fun name i acc ->
      let v =
        match i with
        | C c -> Counter_v c.Counter.v
        | G g -> Gauge_v g.Gauge.v
        | F c -> Fcounter_v c.Fcounter.v
        | H h ->
            Histogram_v
              { counts = Array.copy h.Histogram.counts; count = h.n; sum = h.sum }
      in
      (name, v) :: acc)
    t.items []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let diff ~base current =
  List.map
    (fun (name, v) ->
      let v' =
        match (v, List.assoc_opt name base) with
        | Counter_v n, Some (Counter_v n0) -> Counter_v (n - n0)
        | Fcounter_v x, Some (Fcounter_v x0) -> Fcounter_v (x -. x0)
        | ( Histogram_v { counts; count; sum },
            Some (Histogram_v { counts = c0; count = n0; sum = s0 }) ) ->
            Histogram_v
              {
                counts = Array.mapi (fun i c -> c - c0.(i)) counts;
                count = count - n0;
                sum = sum -. s0;
              }
        | v, _ -> v (* gauge, or name absent from base *)
      in
      (name, v'))
    current

(* ------------------------------------------------------------------ *)
(* Exporters                                                            *)
(* ------------------------------------------------------------------ *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let to_prometheus snap =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let name = sanitize name in
      match v with
      | Counter_v n ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" name);
          Buffer.add_string buf (Printf.sprintf "%s %d\n" name n)
      | Gauge_v x ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" name);
          Buffer.add_string buf (Printf.sprintf "%s %.12g\n" name x)
      | Fcounter_v x ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" name);
          Buffer.add_string buf (Printf.sprintf "%s %.12g\n" name x)
      | Histogram_v { counts; count; sum } ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" name);
          let cumulative = ref 0 in
          Array.iteri
            (fun i c ->
              cumulative := !cumulative + c;
              if c > 0 then
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket{le=\"%.12g\"} %d\n" name
                     (Histogram.lower_bound (i + 1))
                     !cumulative))
            counts;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name count);
          Buffer.add_string buf (Printf.sprintf "%s_sum %.12g\n" name sum);
          Buffer.add_string buf (Printf.sprintf "%s_count %d\n" name count))
    snap;
  Buffer.contents buf

let to_json snap =
  Json.Obj
    (List.map
       (fun (name, v) ->
         let j =
           match v with
           | Counter_v n -> Json.Int n
           | Gauge_v x -> Json.Float x
           | Fcounter_v x -> Json.Float x
           | Histogram_v { counts; count; sum } ->
               let buckets = ref [] in
               Array.iteri
                 (fun i c ->
                   if c > 0 then
                     buckets :=
                       Json.List
                         [ Json.Float (Histogram.lower_bound i); Json.Int c ]
                       :: !buckets)
                 counts;
               Json.Obj
                 [
                   ("count", Json.Int count);
                   ("sum", Json.Float sum);
                   ( "mean",
                     Json.Float (if count = 0 then 0.0 else sum /. float_of_int count)
                   );
                   ("buckets", Json.List (List.rev !buckets));
                 ]
         in
         (name, j))
       snap)
