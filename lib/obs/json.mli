(** Minimal JSON document builder, serializer and parser.

    The observability exporters (Chrome trace events, run reports, metric
    dumps) emit JSON, and the flight-record analyzer ({!Analyze}) reads
    back the JSON-lines dumps they produce; a tiny value type with a
    writer and a recursive-descent reader keep the repository free of
    external JSON dependencies. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
      (** non-finite floats serialize as [null] (JSON has no NaN/infinity) *)
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
(** Compact (single-line) serialization. *)

val to_string : t -> string

val to_channel : out_channel -> t -> unit

exception Parse_error of string
(** Byte offset and cause of a rejected input. *)

val of_string : string -> t
(** Parse one JSON document (the whole input, surrounding whitespace
    allowed).  Numbers parse to [Int] when they are integral and fit,
    [Float] otherwise; [\u] escapes decode to UTF-8.  Raises
    {!Parse_error} on malformed input.  Round-trips everything this
    repository emits ([to_string] output included). *)

val of_string_opt : string -> t option
