(** Minimal JSON document builder and serializer.

    The observability exporters (Chrome trace events, run reports, metric
    dumps) need to {e emit} JSON, never parse it, so a tiny value type and
    a writer keep the repository free of external JSON dependencies. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
      (** non-finite floats serialize as [null] (JSON has no NaN/infinity) *)
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
(** Compact (single-line) serialization. *)

val to_string : t -> string

val to_channel : out_channel -> t -> unit
