(** Offline analyzer for flight-record dumps.

    Reads the JSON-lines sink written by {!Flight} and answers the
    questions the aggregate metrics cannot: where a transaction's
    end-to-end wall-clock goes (per-stage queue-wait vs. service), which
    stage bounds the run (critical-path decomposition), how abort
    reasons distribute across deciding stages, and which individual
    transactions were slowest.  Records carry their recorder's label
    (backend string), so a single dump from a multi-backend run is
    grouped into one analysis section per label. *)

(** One parsed flight record.  [wait]/[service] are indexed by
    {!Flight.stage} order (ds, pm, gm, fm); times in seconds. *)
type txn = {
  pos : int;
  seq : int;
  server : int;
  txn_seq : int;
  label : string;
  committed : bool;
  abort_reason : string option;
  decided_at : string;
  conflict_zone : int;
  t_submit : float;
  t_done : float;
  e2e : float;
  wait : float array;
  service : float array;
}

val txn_of_json : Json.t -> txn option
(** [None] when the document is not a flight record (missing fields). *)

val load_channel : in_channel -> txn list
(** Parse a JSON-lines stream, skipping blank and malformed lines. *)

val load_file : string -> txn list

val report : ?top_k:int -> txn list -> Json.t
(** The machine-readable report ([top_k] slowest transactions per
    backend, default 10).  Per backend label: transaction/commit/abort
    counts, end-to-end percentiles, the per-stage wait/service waterfall
    with each stage's share of total attributed time, the critical-path
    stage (largest total service share), the abort-reason ×
    deciding-stage matrix, the [top_k] drill-down, and two gate fields —
    [coverage_p50] (p50 of per-record stage sums over p50 end-to-end;
    1.0 up to clock jitter by the {!Flight} chain invariant) and
    [negative_waits] (count of negative wait entries; 0 by
    construction).  All durations in microseconds. *)

val print_report : ?top_k:int -> txn list -> unit
(** Human-readable rendering to stdout: one waterfall table, critical
    path line, abort matrix and slowest-transaction table per backend. *)
