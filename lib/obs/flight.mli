(** Per-transaction flight recorder: end-to-end latency attribution.

    Aggregate instruments ({!Metrics}) say how much time each pipeline
    stage consumed in total; per-stage spans ({!Trace}) say when each
    stage ran.  Neither ties one intention's life together from submit
    to commit/abort, so neither can answer "where does a transaction's
    wall-clock actually go — queueing or service, and in which stage?".
    The flight recorder does: every intention carries a {!record} keyed
    by its log position (a pure function of the deterministic schedule),
    and each lifecycle edge — decode, premeld trial, group-meld combine,
    final meld, decision — appends a wait/service pair to it.

    {2 Wait/service decomposition}

    A record chains a cursor [t_last] through its edges.  For an edge
    of stage [s] bracketed by monotonic timestamps [(t0, t1)]:

    - [wait.(s)  += max 0 (t0 - t_last)]  — time spent queued between
      the previous edge and this stage starting (SPSC queue residency
      under [pipe:<n>], window/batch latency under [par:<n>], zero by
      construction under [seq]);
    - [service.(s) += max 0 (t1 - t0)]    — time the stage actually
      worked on the intention;
    - [t_last <- max t_last t1].

    Because the chain is gapless, [Σ (wait + service) = t_last - t_submit]
    {e exactly}, so the analyzer's per-stage waterfall decomposes the
    measured end-to-end latency by construction (group stages — gm
    combine, final meld — attribute the full group operation to every
    member: this is latency attribution, not CPU accounting, so the
    per-stage sums across {e different} records may exceed wall-clock).

    {2 Inertness}

    Same contract as {!Trace}: a disabled recorder makes every entry
    point a single branch, call sites gate their own clock reads on
    {!enabled}, and recording never feeds back into meld decisions —
    decisions, trees, ephemeral ids and counters are bit-identical with
    the recorder on or off (asserted by [test/test_obs.ml]).

    {2 Threading}

    Single-writer: only the pipeline driver (the thread calling
    [submit]/[submit_batch]) may touch a recorder.  Worker-domain stage
    timestamps ride back to the driver inside the runtime's result
    messages and are stamped there; [CLOCK_MONOTONIC] is system-wide,
    so cross-domain differences are meaningful. *)

type stage = Ds | Pm | Gm | Fm

val stage_name : stage -> string
(** ["ds"], ["pm"], ["gm"], ["fm"]. *)

(** One intention's flight record.  Fields are exposed read-only in
    spirit (tests and exporters inspect them); mutate only through the
    recorder API. *)
type record = {
  pos : int;  (** log position — the record key *)
  mutable seq : int;  (** dense sequence number, [-1] until decided *)
  mutable server : int;
  mutable txn_seq : int;
  mutable t_submit : float;  (** first time the recorder saw this pos *)
  mutable t_last : float;  (** wait/service chain cursor *)
  mutable t_done : float;  (** decision time, [nan] while in flight *)
  wait : float array;  (** per-{!stage} queue-wait seconds (length 4) *)
  service : float array;  (** per-{!stage} service seconds (length 4) *)
  mutable committed : bool;
  mutable abort_reason : string;  (** [""] = committed / undecided *)
  mutable decided_at : string;
      (** ["premeld"] / ["group_meld"] / ["final_meld"] *)
  mutable conflict_zone : int;
  mutable sim_submit : float;
      (** cluster-simulation clock edges; [-1.0] = unset *)
  mutable sim_append : float;
  mutable sim_deliver : float;
}

type t

val disabled : t
(** The no-op recorder: {!enabled} is [false], every call one branch. *)

val create :
  ?label:string -> ?metrics:Metrics.t -> ?sink:out_channel -> unit -> t
(** [label] names the run (backend string, replica id, ...) and is
    carried on every emitted record so one sink can multiplex several
    recorders.  [metrics] registers per-stage wait/service histograms
    ([flight_<stage>_wait_us] / [flight_<stage>_service_us]), the
    end-to-end histogram [flight_e2e_us], the [flight_records_total]
    counter and — refreshed by {!export_percentiles} — the
    [flight_e2e_p{50,95,99}_us] gauges (microseconds: the registry's
    log2 buckets floor at [2^-16], too coarse for sub-15µs stage times
    in seconds).  [sink], when given, receives one JSON line per
    completed record. *)

val enabled : t -> bool
val label : t -> string

val touch : t -> pos:int -> now:float -> unit
(** Open the record for [pos] if absent, stamping [t_submit = now].
    Idempotent: a second touch (batch entry after decode already opened
    the record) is a no-op. *)

val note_identity : t -> pos:int -> server:int -> txn_seq:int -> unit
(** Attach origin metadata when the decoded intention is first seen. *)

val edge : t -> pos:int -> stage:stage -> t0:float -> t1:float -> unit
(** Append a wait/service pair (see the decomposition above).  Opens the
    record if absent ([t_submit = t0]). *)

val sim_edge : t -> pos:int -> at:[ `Submit | `Append | `Deliver ] -> float -> unit
(** Stamp a cluster-simulation clock edge on an open record (no-op on an
    unknown [pos]): transaction creation, CORFU append, broadcast
    delivery.  [`Deliver] is first-wins — the earliest delivery stamped
    sticks, so re-deliveries to other servers never overwrite it. *)

val complete :
  t ->
  pos:int ->
  now:float ->
  seq:int ->
  committed:bool ->
  reason:string ->
  decided_at:string ->
  conflict_zone:int ->
  unit
(** Close the record: stamp the decision, feed the metrics instruments,
    stream the JSON line to the sink, and drop the record from the
    in-flight table.  No-op on an unknown [pos] (e.g. the recorder was
    enabled mid-run). *)

val in_flight : t -> int
(** Records opened but not yet completed. *)

val completed : t -> int
(** Records completed since creation. *)

val export_percentiles : t -> unit
(** Refresh the [flight_e2e_p{50,95,99}_us] gauges from the exact
    end-to-end sample (call once at end of run; no-op without
    [metrics] or before the first completion). *)

val record_to_json : label:string -> record -> Json.t
(** The sink line schema (exposed for tests and the analyzer golden):
    times in seconds, [e2e = t_done - t_submit], [wait]/[service] keyed
    by stage name, [sim] only when any simulation edge was stamped. *)
