type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_float buf f =
  match Float.classify_float f with
  | FP_nan | FP_infinite -> Buffer.add_string buf "null"
  | FP_zero -> Buffer.add_string buf "0"
  | FP_normal | FP_subnormal ->
      (* %.12g is compact for integers ("500000") and round-trips every
         magnitude this repo emits (microsecond timestamps, counts). *)
      Buffer.add_string buf (Printf.sprintf "%.12g" f)

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | String s ->
      Buffer.add_char buf '"';
      add_escaped buf s;
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (name, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          add_escaped buf name;
          Buffer.add_string buf "\":";
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

let to_channel oc j = output_string oc (to_string j)

(* ------------------------------------------------------------------ *)
(* Parsing (recursive descent)                                          *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let fail pos msg =
  raise (Parse_error (Printf.sprintf "byte %d: %s" pos msg))

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail !pos (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail !pos (Printf.sprintf "expected %s" word)
  in
  (* UTF-8 encode a code point (surrogate pairs already combined). *)
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail !pos "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail !pos "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          if !pos >= n then fail !pos "truncated escape";
          let c = s.[!pos] in
          incr pos;
          (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
              let cp = hex4 () in
              let cp =
                (* high surrogate: combine with the (required) low half *)
                if cp >= 0xD800 && cp <= 0xDBFF then begin
                  if
                    !pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                  then begin
                    pos := !pos + 2;
                    let lo = hex4 () in
                    if lo < 0xDC00 || lo > 0xDFFF then
                      fail !pos "invalid low surrogate";
                    0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                  end
                  else fail !pos "unpaired high surrogate"
                end
                else cp
              in
              add_utf8 buf cp
          | c -> fail (!pos - 1) (Printf.sprintf "bad escape %C" c));
          go ()
      | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      incr pos
    done;
    let tok = String.sub s start (!pos - start) in
    let integral =
      not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok)
    in
    if integral then
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          (* out of native int range: degrade to float *)
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail start "malformed number")
    else
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail start "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ()
            | Some '}' -> incr pos
            | _ -> fail !pos "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elements ()
            | Some ']' -> incr pos
            | _ -> fail !pos "expected ',' or ']'"
          in
          elements ();
          List (List.rev !items)
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail !pos (Printf.sprintf "unexpected %C" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail !pos "trailing garbage";
  v

let of_string_opt s = match of_string s with
  | v -> Some v
  | exception Parse_error _ -> None

