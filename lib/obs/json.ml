type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_float buf f =
  match Float.classify_float f with
  | FP_nan | FP_infinite -> Buffer.add_string buf "null"
  | FP_zero -> Buffer.add_string buf "0"
  | FP_normal | FP_subnormal ->
      (* %.12g is compact for integers ("500000") and round-trips every
         magnitude this repo emits (microsecond timestamps, counts). *)
      Buffer.add_string buf (Printf.sprintf "%.12g" f)

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | String s ->
      Buffer.add_char buf '"';
      add_escaped buf s;
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (name, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          add_escaped buf name;
          Buffer.add_string buf "\":";
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

let to_channel oc j = output_string oc (to_string j)
