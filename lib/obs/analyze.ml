module Sample = Hyder_util.Stats.Sample
module Table = Hyder_util.Table

let stage_names = [| "ds"; "pm"; "gm"; "fm" |]
let n_stages = Array.length stage_names

type txn = {
  pos : int;
  seq : int;
  server : int;
  txn_seq : int;
  label : string;
  committed : bool;
  abort_reason : string option;
  decided_at : string;
  conflict_zone : int;
  t_submit : float;
  t_done : float;
  e2e : float;
  wait : float array;
  service : float array;
}

(* --- parsing ------------------------------------------------------- *)

let field obj k = match obj with Json.Obj l -> List.assoc_opt k l | _ -> None

let as_int = function
  | Some (Json.Int i) -> Some i
  | Some (Json.Float f) -> Some (int_of_float f)
  | _ -> None

let as_float = function
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

let as_string = function Some (Json.String s) -> Some s | _ -> None
let as_bool = function Some (Json.Bool b) -> Some b | _ -> None

let stage_array j =
  match j with
  | Some (Json.Obj _ as o) ->
      let arr = Array.make n_stages 0.0 in
      let ok = ref true in
      Array.iteri
        (fun i s ->
          match as_float (field o s) with
          | Some v -> arr.(i) <- v
          | None -> ok := false)
        stage_names;
      if !ok then Some arr else None
  | _ -> None

let txn_of_json j =
  match
    ( as_int (field j "pos"),
      as_float (field j "e2e"),
      stage_array (field j "wait"),
      stage_array (field j "service") )
  with
  | Some pos, Some e2e, Some wait, Some service ->
      Some
        {
          pos;
          seq = Option.value ~default:(-1) (as_int (field j "seq"));
          server = Option.value ~default:(-1) (as_int (field j "server"));
          txn_seq = Option.value ~default:(-1) (as_int (field j "txn_seq"));
          label = Option.value ~default:"" (as_string (field j "label"));
          committed =
            Option.value ~default:false (as_bool (field j "committed"));
          abort_reason = as_string (field j "abort_reason");
          decided_at =
            Option.value ~default:"" (as_string (field j "decided_at"));
          conflict_zone =
            Option.value ~default:0 (as_int (field j "conflict_zone"));
          t_submit = Option.value ~default:0.0 (as_float (field j "t_submit"));
          t_done = Option.value ~default:0.0 (as_float (field j "t_done"));
          e2e;
          wait;
          service;
        }
  | _ -> None

let load_channel ic =
  let txns = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" then
         match Json.of_string_opt line with
         | Some j -> (
             match txn_of_json j with
             | Some t -> txns := t :: !txns
             | None -> ())
         | None -> ()
     done
   with End_of_file -> ());
  List.rev !txns

let load_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> load_channel ic)

(* --- aggregation --------------------------------------------------- *)

let us x = 1e6 *. x

type stage_agg = {
  s_wait : Sample.t;
  s_service : Sample.t;
  mutable s_wait_total : float;
  mutable s_service_total : float;
}

type backend_agg = {
  b_label : string;
  mutable b_txns : txn list;  (* newest first *)
  mutable b_commits : int;
  mutable b_aborts : int;
  b_e2e : Sample.t;
  b_sum : Sample.t;  (* per-record Σ (wait + service) *)
  b_stages : stage_agg array;
  mutable b_neg_waits : int;
  (* abort reason -> decided_at -> count *)
  b_abort_matrix : (string, (string, int) Hashtbl.t) Hashtbl.t;
}

let aggregate txns =
  let backends : (string, backend_agg) Hashtbl.t = Hashtbl.create 4 in
  let order = ref [] in
  List.iter
    (fun t ->
      let b =
        match Hashtbl.find_opt backends t.label with
        | Some b -> b
        | None ->
            let b =
              {
                b_label = t.label;
                b_txns = [];
                b_commits = 0;
                b_aborts = 0;
                b_e2e = Sample.create ();
                b_sum = Sample.create ();
                b_stages =
                  Array.init n_stages (fun _ ->
                      {
                        s_wait = Sample.create ();
                        s_service = Sample.create ();
                        s_wait_total = 0.0;
                        s_service_total = 0.0;
                      });
                b_neg_waits = 0;
                b_abort_matrix = Hashtbl.create 4;
              }
            in
            Hashtbl.add backends t.label b;
            order := t.label :: !order;
            b
      in
      b.b_txns <- t :: b.b_txns;
      if t.committed then b.b_commits <- b.b_commits + 1
      else b.b_aborts <- b.b_aborts + 1;
      Sample.add b.b_e2e t.e2e;
      let sum = ref 0.0 in
      for s = 0 to n_stages - 1 do
        let a = b.b_stages.(s) in
        Sample.add a.s_wait t.wait.(s);
        Sample.add a.s_service t.service.(s);
        a.s_wait_total <- a.s_wait_total +. t.wait.(s);
        a.s_service_total <- a.s_service_total +. t.service.(s);
        if t.wait.(s) < 0.0 || t.service.(s) < 0.0 then
          b.b_neg_waits <- b.b_neg_waits + 1;
        sum := !sum +. t.wait.(s) +. t.service.(s)
      done;
      Sample.add b.b_sum !sum;
      if not t.committed then begin
        let reason = Option.value ~default:"unknown" t.abort_reason in
        let row =
          match Hashtbl.find_opt b.b_abort_matrix reason with
          | Some r -> r
          | None ->
              let r = Hashtbl.create 4 in
              Hashtbl.add b.b_abort_matrix reason r;
              r
        in
        Hashtbl.replace row t.decided_at
          (1 + Option.value ~default:0 (Hashtbl.find_opt row t.decided_at))
      end)
    txns;
  List.rev_map (Hashtbl.find backends) !order

let pct s p = if Sample.count s = 0 then 0.0 else Sample.percentile s p

let sample_obj s =
  Json.Obj
    [
      ("mean", Json.Float (us (if Sample.count s = 0 then 0.0 else Sample.mean s)));
      ("p50", Json.Float (us (pct s 50.0)));
      ("p95", Json.Float (us (pct s 95.0)));
      ("p99", Json.Float (us (pct s 99.0)));
    ]

let dominant_stage t =
  let best = ref 0 and best_v = ref neg_infinity in
  for s = 0 to n_stages - 1 do
    let v = t.wait.(s) +. t.service.(s) in
    if v > !best_v then begin
      best := s;
      best_v := v
    end
  done;
  (stage_names.(!best), !best_v)

let slowest ~top_k txns =
  let arr = Array.of_list txns in
  Array.sort (fun a b -> Float.compare b.e2e a.e2e) arr;
  Array.to_list (Array.sub arr 0 (min top_k (Array.length arr)))

let abort_matrix_json b =
  Hashtbl.fold
    (fun reason row acc ->
      let cells =
        Hashtbl.fold (fun at n acc -> (at, Json.Int n) :: acc) row []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      let total = Hashtbl.fold (fun _ n acc -> acc + n) row 0 in
      Json.Obj
        [
          ("reason", Json.String reason);
          ("total", Json.Int total);
          ("decided_at", Json.Obj cells);
        ]
      :: acc)
    b.b_abort_matrix []
  |> List.sort (fun a b ->
         match (a, b) with
         | Json.Obj af, Json.Obj bf -> (
             match (List.assoc "reason" af, List.assoc "reason" bf) with
             | Json.String x, Json.String y -> String.compare x y
             | _ -> 0)
         | _ -> 0)

let backend_json ~top_k b =
  let total_attr =
    Array.fold_left
      (fun acc a -> acc +. a.s_wait_total +. a.s_service_total)
      0.0 b.b_stages
  in
  let stages =
    Array.to_list
      (Array.mapi
         (fun s a ->
           Json.Obj
             [
               ("stage", Json.String stage_names.(s));
               ("wait_us", sample_obj a.s_wait);
               ("service_us", sample_obj a.s_service);
               ("wait_total_us", Json.Float (us a.s_wait_total));
               ("service_total_us", Json.Float (us a.s_service_total));
               ( "share",
                 Json.Float
                   (if total_attr <= 0.0 then 0.0
                    else (a.s_wait_total +. a.s_service_total) /. total_attr) );
             ])
         b.b_stages)
  in
  (* Critical path: the stage whose total service bounds throughput (the
     wait share points at queueing, the service share at work). *)
  let crit = ref 0 in
  Array.iteri
    (fun s a ->
      if a.s_service_total > b.b_stages.(!crit).s_service_total then crit := s)
    b.b_stages;
  let e2e_p50 = pct b.b_e2e 50.0 in
  let coverage_p50 =
    if e2e_p50 <= 0.0 then 1.0 else pct b.b_sum 50.0 /. e2e_p50
  in
  let slow =
    List.map
      (fun t ->
        let dom, dom_s = dominant_stage t in
        Json.Obj
          [
            ("pos", Json.Int t.pos);
            ("seq", Json.Int t.seq);
            ("e2e_us", Json.Float (us t.e2e));
            ("committed", Json.Bool t.committed);
            ("dominant_stage", Json.String dom);
            ("dominant_us", Json.Float (us dom_s));
            ( "wait_us",
              Json.Obj
                (Array.to_list
                   (Array.mapi
                      (fun s name -> (name, Json.Float (us t.wait.(s))))
                      stage_names)) );
            ( "service_us",
              Json.Obj
                (Array.to_list
                   (Array.mapi
                      (fun s name -> (name, Json.Float (us t.service.(s))))
                      stage_names)) );
          ])
      (slowest ~top_k b.b_txns)
  in
  Json.Obj
    [
      ("label", Json.String b.b_label);
      ("txns", Json.Int (Sample.count b.b_e2e));
      ("commits", Json.Int b.b_commits);
      ("aborts", Json.Int b.b_aborts);
      ("e2e_us", sample_obj b.b_e2e);
      ("stage_sum_us", sample_obj b.b_sum);
      ("coverage_p50", Json.Float coverage_p50);
      ("negative_waits", Json.Int b.b_neg_waits);
      ("stages", Json.List stages);
      ( "critical_path",
        Json.Obj
          [
            ("stage", Json.String stage_names.(!crit));
            ( "service_share",
              Json.Float
                (if total_attr <= 0.0 then 0.0
                 else b.b_stages.(!crit).s_service_total /. total_attr) );
          ] );
      ("abort_reasons", Json.List (abort_matrix_json b));
      ("slowest", Json.List slow);
    ]

let report ?(top_k = 10) txns =
  let backends = aggregate txns in
  Json.Obj
    [
      ("total", Json.Int (List.length txns));
      ("backends", Json.List (List.map (backend_json ~top_k) backends));
    ]

(* --- human rendering ----------------------------------------------- *)

let fus x = Printf.sprintf "%.1f" (us x)

let print_backend ~top_k b =
  let n = Sample.count b.b_e2e in
  Printf.printf "\n=== %s: %d txns (%d commits, %d aborts) ===\n"
    (if b.b_label = "" then "(unlabeled)" else b.b_label)
    n b.b_commits b.b_aborts;
  Printf.printf
    "e2e latency us: p50 %s  p95 %s  p99 %s   (stage-sum p50 %s, coverage %.3f)\n"
    (fus (pct b.b_e2e 50.0))
    (fus (pct b.b_e2e 95.0))
    (fus (pct b.b_e2e 99.0))
    (fus (pct b.b_sum 50.0))
    (if pct b.b_e2e 50.0 <= 0.0 then 1.0
     else pct b.b_sum 50.0 /. pct b.b_e2e 50.0);
  let total_attr =
    Array.fold_left
      (fun acc a -> acc +. a.s_wait_total +. a.s_service_total)
      0.0 b.b_stages
  in
  let tbl =
    Table.create
      ~title:(Printf.sprintf "stage waterfall (%s)" b.b_label)
      ~columns:
        [
          "stage";
          "wait mean us";
          "wait p95 us";
          "svc mean us";
          "svc p95 us";
          "share %";
        ]
  in
  Array.iteri
    (fun s a ->
      Table.add_row tbl
        [
          stage_names.(s);
          fus (if Sample.count a.s_wait = 0 then 0.0 else Sample.mean a.s_wait);
          fus (pct a.s_wait 95.0);
          fus
            (if Sample.count a.s_service = 0 then 0.0
             else Sample.mean a.s_service);
          fus (pct a.s_service 95.0);
          Printf.sprintf "%.1f"
            (if total_attr <= 0.0 then 0.0
             else
               100.0
               *. (a.s_wait_total +. a.s_service_total)
               /. total_attr);
        ])
    b.b_stages;
  Table.print tbl;
  let crit = ref 0 in
  Array.iteri
    (fun s a ->
      if a.s_service_total > b.b_stages.(!crit).s_service_total then crit := s)
    b.b_stages;
  Printf.printf "critical path: %s (%.1f%% of attributed service time)\n"
    stage_names.(!crit)
    (if total_attr <= 0.0 then 0.0
     else 100.0 *. b.b_stages.(!crit).s_service_total /. total_attr);
  if Hashtbl.length b.b_abort_matrix > 0 then begin
    let tbl =
      Table.create ~title:"abort reasons x deciding stage"
        ~columns:[ "reason"; "premeld"; "group_meld"; "final_meld"; "total" ]
    in
    let reasons =
      Hashtbl.fold (fun r _ acc -> r :: acc) b.b_abort_matrix []
      |> List.sort String.compare
    in
    List.iter
      (fun r ->
        let row = Hashtbl.find b.b_abort_matrix r in
        let cell at =
          string_of_int (Option.value ~default:0 (Hashtbl.find_opt row at))
        in
        let total = Hashtbl.fold (fun _ n acc -> acc + n) row 0 in
        Table.add_row tbl
          [
            r;
            cell "premeld";
            cell "group_meld";
            cell "final_meld";
            string_of_int total;
          ])
      reasons;
    Table.print tbl
  end;
  let tbl =
    Table.create
      ~title:(Printf.sprintf "top %d slowest" top_k)
      ~columns:[ "pos"; "seq"; "e2e us"; "dominant"; "dominant us"; "fate" ]
  in
  List.iter
    (fun t ->
      let dom, dom_s = dominant_stage t in
      Table.add_row tbl
        [
          string_of_int t.pos;
          string_of_int t.seq;
          fus t.e2e;
          dom;
          fus dom_s;
          (if t.committed then "commit"
           else "abort:" ^ Option.value ~default:"?" t.abort_reason);
        ])
    (slowest ~top_k b.b_txns);
  Table.print tbl

let print_report ?(top_k = 10) txns =
  if txns = [] then print_endline "no flight records"
  else List.iter (print_backend ~top_k) (aggregate txns)
