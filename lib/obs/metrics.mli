(** Metrics registry: named counters, gauges and log₂-bucketed histograms.

    Instruments are resolved {e once} by name (at wiring time) and then
    updated through direct record mutation, so the hot path never touches
    the registry's table.  Snapshots are immutable copies with
    subtraction semantics, which is how the cluster harness scopes
    measurements to a warmed-up window: snapshot at window start, snapshot
    at window end, {!diff}.

    Histograms bucket by powers of two ([2^i, 2^{i+1})), covering
    [2^-16 .. 2^48) — microsecond-scale latencies in seconds up to large
    queue depths — with clamping at both ends.  Observation is a
    [frexp] plus two array writes. *)

module Counter : sig
  type t

  val incr : ?by:int -> t -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val value : t -> float
end

module Fcounter : sig
  type t
  (** A monotonically accumulating float counter — for quantities that are
      naturally fractional sums, like GC word deltas ([Gc.counters]
      returns floats).  Diffs like an integer counter. *)

  val add : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val n_buckets : int
  (** 64 *)

  val bucket_of : float -> int
  (** Bucket index of a value: [i] such that
      [lower_bound i <= x < lower_bound (i+1)], clamped to
      [\[0, n_buckets)]; non-positive values land in bucket 0. *)

  val lower_bound : int -> float
  (** [lower_bound i = 2^(i - 16)]. *)

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float

  val bucket_counts : t -> int array
  (** A copy. *)
end

type t

val create : unit -> t

val counter : t -> string -> Counter.t
val gauge : t -> string -> Gauge.t
val fcounter : t -> string -> Fcounter.t
val histogram : t -> string -> Histogram.t
(** Find-or-create by name.  Raises [Invalid_argument] if the name is
    already registered as a different instrument kind. *)

(** {2 Snapshots} *)

type value =
  | Counter_v of int
  | Gauge_v of float
  | Fcounter_v of float
  | Histogram_v of { counts : int array; count : int; sum : float }

type snapshot = (string * value) list
(** Sorted by name; immutable. *)

val snapshot : t -> snapshot

val diff : base:snapshot -> snapshot -> snapshot
(** Per-name subtraction of counters and histograms (a name missing from
    [base] subtracts zero); gauges keep the current reading.  Names only
    in [base] are dropped. *)

(** {2 Exporters} *)

val to_prometheus : snapshot -> string
(** Prometheus text exposition format v0.0.4: [# TYPE] headers, cumulative
    [_bucket{le="..."}] series with a [+Inf] bucket, [_sum] and [_count]
    for histograms.  Metric names are sanitized to [[a-zA-Z0-9_:]]. *)

val to_json : snapshot -> Json.t
(** One object keyed by metric name; histograms carry count/sum/mean and
    the non-empty buckets as [[lower_bound, count]] pairs. *)
