type stage =
  | Deserialize
  | Premeld
  | Premeld_window
  | Group_meld
  | Final_meld

let stage_to_string = function
  | Deserialize -> "deserialize"
  | Premeld -> "premeld"
  | Premeld_window -> "premeld window"
  | Group_meld -> "group meld"
  | Final_meld -> "final meld"

let stage_code = function
  | Deserialize -> 0
  | Premeld -> 1
  | Premeld_window -> 2
  | Group_meld -> 3
  | Final_meld -> 4

let stage_of_code = function
  | 0 -> Deserialize
  | 1 -> Premeld
  | 2 -> Premeld_window
  | 3 -> Group_meld
  | 4 -> Final_meld
  | c -> invalid_arg (Printf.sprintf "Trace.stage_of_code %d" c)

type span = {
  track : int;
  stage : stage;
  seq : int;
  t0 : float;
  t1 : float;
  nodes : int;
  detail : int;
}

(* One single-writer ring: parallel arrays of unboxed fields, no record
   allocation per span on the hot path. *)
type ring = {
  stages : int array;
  seqs : int array;
  t0s : float array;
  t1s : float array;
  nodes_ : int array;
  details : int array;
  mutable head : int;  (** spans ever written to this ring *)
}

type t = {
  enabled : bool;
  cap : int;  (** power of two *)
  mask : int;
  shards_ : int;  (** premeld shard rings: tracks 1..shards_ *)
  rings : ring array;
      (** track 0 = pipeline tail, 1..shards_ = premeld shards,
          shards_+1.. = pipelined worker domains *)
}

let disabled = { enabled = false; cap = 0; mask = 0; shards_ = 0; rings = [||] }

let make_ring cap =
  {
    stages = Array.make cap 0;
    seqs = Array.make cap 0;
    t0s = Array.make cap 0.0;
    t1s = Array.make cap 0.0;
    nodes_ = Array.make cap 0;
    details = Array.make cap 0;
    head = 0;
  }

let create ?(capacity = 32768) ?(workers = 0) ~shards () =
  if shards < 0 || workers < 0 || capacity < 1 then invalid_arg "Trace.create";
  let cap = ref 1 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  let cap = !cap in
  {
    enabled = true;
    cap;
    mask = cap - 1;
    shards_ = shards;
    rings = Array.init (shards + workers + 1) (fun _ -> make_ring cap);
  }

let enabled t = t.enabled
let shards t = t.shards_
let workers t = max 0 (Array.length t.rings - 1 - t.shards_)
let capacity t = t.cap

let record t ~track ~stage ~seq ~t0 ~t1 ~nodes ~detail =
  if t.enabled then begin
    let r = t.rings.(track) in
    let i = r.head land t.mask in
    r.stages.(i) <- stage_code stage;
    r.seqs.(i) <- seq;
    r.t0s.(i) <- t0;
    r.t1s.(i) <- t1;
    r.nodes_.(i) <- nodes;
    r.details.(i) <- detail;
    r.head <- r.head + 1
  end

let recorded t = Array.fold_left (fun acc r -> acc + r.head) 0 t.rings

let dropped t =
  Array.fold_left (fun acc r -> acc + max 0 (r.head - t.cap)) 0 t.rings

let spans t =
  let out = ref [] in
  Array.iteri
    (fun track r ->
      let kept = min r.head t.cap in
      (* newest first so the consing yields oldest-first per ring *)
      for k = 0 to kept - 1 do
        let i = (r.head - 1 - k) land t.mask in
        out :=
          {
            track;
            stage = stage_of_code r.stages.(i);
            seq = r.seqs.(i);
            t0 = r.t0s.(i);
            t1 = r.t1s.(i);
            nodes = r.nodes_.(i);
            detail = r.details.(i);
          }
          :: !out
      done)
    t.rings;
  List.stable_sort (fun a b -> Float.compare a.t0 b.t0) !out

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                            *)
(* ------------------------------------------------------------------ *)

(* Track (tid) layout: the pipeline-tail ring fans out into one track per
   stage so final meld, group meld and deserialize are separately visible;
   premeld shard i keeps its own track; pipelined worker domains (which
   carry offloaded ds and gm spans) get their own track block at 40+. *)
let tid_of ~shards s =
  if s.track > shards then 40 + (s.track - shards - 1)
  else
    match s.stage with
    | Final_meld -> 0
    | Deserialize -> 1
    | Group_meld -> 2
    | Premeld | Premeld_window -> 9 + s.track

let pid = 1

let thread_meta ~tid ~name =
  Json.Obj
    [
      ("name", Json.String "thread_name");
      ("ph", Json.String "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.String name) ]);
    ]

let to_chrome ?origin t =
  let sp = spans t in
  let origin =
    match origin with
    | Some o -> o
    | None -> ( match sp with [] -> 0.0 | s :: _ -> s.t0)
  in
  let metas =
    thread_meta ~tid:0 ~name:"final meld"
    :: thread_meta ~tid:1 ~name:"deserialize"
    :: thread_meta ~tid:2 ~name:"group meld"
    :: (List.init (shards t) (fun i ->
            thread_meta ~tid:(10 + i)
              ~name:(Printf.sprintf "premeld shard %d" (i + 1)))
       @ List.init (workers t) (fun i ->
             thread_meta ~tid:(40 + i)
               ~name:(Printf.sprintf "pipe worker %d" i)))
  in
  (* A wrapped ring silently reads as a complete trace otherwise: surface
     the loss inside the artifact itself, as a global instant event at the
     start of the view plus a dropped-span count in its args. *)
  let overflow =
    let d = dropped t in
    if d = 0 then []
    else
      [
        Json.Obj
          [
            ( "name",
              Json.String
                (Printf.sprintf "TRUNCATED: %d spans dropped (ring overflow)" d)
            );
            ("cat", Json.String "meld");
            ("ph", Json.String "i");
            ("s", Json.String "g");
            ("ts", Json.Float 0.0);
            ("pid", Json.Int pid);
            ("tid", Json.Int 0);
            ( "args",
              Json.Obj
                [
                  ("dropped", Json.Int d);
                  ("recorded", Json.Int (recorded t));
                  ("capacity", Json.Int t.cap);
                ] );
          ];
      ]
  in
  let events =
    List.map
      (fun s ->
        Json.Obj
          [
            ("name", Json.String (stage_to_string s.stage));
            ("cat", Json.String "meld");
            ("ph", Json.String "X");
            ("ts", Json.Float ((s.t0 -. origin) *. 1e6));
            ("dur", Json.Float ((s.t1 -. s.t0) *. 1e6));
            ("pid", Json.Int pid);
            ("tid", Json.Int (tid_of ~shards:t.shards_ s));
            ( "args",
              Json.Obj
                [
                  ("seq", Json.Int s.seq);
                  ("nodes", Json.Int s.nodes);
                  ("detail", Json.Int s.detail);
                ] );
          ])
      sp
  in
  Json.Obj
    [
      ("traceEvents", Json.List (metas @ overflow @ events));
      ("displayTimeUnit", Json.String "ms");
    ]

let to_chrome_string ?origin t = Json.to_string (to_chrome ?origin t)
