(** Deterministic, seeded fault schedule.

    Fault injection for the simulated cluster: message drops, duplicates
    and delays per (sender, receiver, message), storage-unit stalls and
    transient read failures, and server crash/restart times.  Every
    decision is a {e pure function of the seed and the event's identity} —
    no wall clock, no sequential RNG stream — so a faulty run is exactly
    replayable and the schedule is independent of event-loop
    interleaving.  The same [t] can be consulted by the broadcast, the
    log service and the cluster harness without coordinating. *)

type fate =
  | Deliver
  | Drop
  | Duplicate of float  (** deliver twice; the copy arrives this much later *)
  | Delay of float  (** deliver once, this much later *)

type crash = { server : int; at : float; restart_after : float }

type t

val none : t
(** No faults; [delivery] always answers [Deliver]. *)

val is_none : t -> bool

val create :
  ?drop:float ->
  ?dup:float ->
  ?dup_delay:float ->
  ?delay_p:float ->
  ?delay:float ->
  ?stall_p:float ->
  ?stall:float ->
  ?read_fail:float ->
  ?crashes:crash list ->
  seed:int ->
  unit ->
  t
(** Probabilities must lie in [0,1]; durations are simulated seconds.
    [Invalid_argument] otherwise. *)

val of_string : string -> (t, string) result
(** Parse a ["SEED:item,..."] spec: [drop=P], [dup=P\[@D\]], [delay=P@D],
    [stall=P@D], [readfail=P], [crash=SERVER@AT+DOWN] (repeatable).
    Example: ["7:drop=0.02,dup=0.01,stall=0.01@0.002,crash=1@0.05+0.03"]. *)

val to_string : t -> string
(** A spec string that parses back to the same schedule. *)

val seed : t -> int
val crashes : t -> crash list

val delivery : t -> from:int -> receiver:int -> msg:int -> fate
(** Fate of broadcast message number [msg] (the sender's global send
    counter) from [from] to [receiver].  Pure in all arguments. *)

val stall : t -> unit_id:int -> pos:int -> write:bool -> float
(** Extra service time injected into the storage-unit operation on log
    position [pos] (0 when the event is not selected). *)

val read_fails : t -> pos:int -> attempt:int -> bool
(** Whether read attempt number [attempt] (0-based) of position [pos]
    fails transiently.  Independent draws per attempt, so retries
    terminate with probability 1 for any failure rate < 1. *)
