(* Deterministic fault schedule.

   Every decision is a pure function of (seed, event identity): the event's
   integer coordinates are folded into the seed through a splitmix64-style
   finalizer and the resulting 53 high bits become a uniform draw in [0,1).
   No wall clock, no sequential RNG stream — two components asking about
   the same event always get the same answer, and the answer for one event
   never depends on how many other events were asked about first.  That is
   what makes a faulty simulation replayable: the schedule commutes with
   any event-loop interleaving. *)

type fate = Deliver | Drop | Duplicate of float | Delay of float

type crash = { server : int; at : float; restart_after : float }

type t = {
  seed : int64;
  drop : float;  (** per (sender, receiver, message) drop probability *)
  dup : float;
  dup_delay : float;  (** extra delay before the duplicate copy *)
  delay_p : float;
  delay : float;  (** extra latency added to a delayed message *)
  stall_p : float;  (** per storage-unit operation stall probability *)
  stall : float;  (** stall duration, seconds *)
  read_fail : float;  (** per-attempt transient read failure probability *)
  crashes : crash list;
}

let none =
  {
    seed = 0L;
    drop = 0.0;
    dup = 0.0;
    dup_delay = 5e-4;
    delay_p = 0.0;
    delay = 5e-4;
    stall_p = 0.0;
    stall = 2e-3;
    read_fail = 0.0;
    crashes = [];
  }

let is_none t =
  t.drop = 0.0 && t.dup = 0.0 && t.delay_p = 0.0 && t.stall_p = 0.0
  && t.read_fail = 0.0 && t.crashes = []

let create ?(drop = 0.0) ?(dup = 0.0) ?(dup_delay = 5e-4) ?(delay_p = 0.0)
    ?(delay = 5e-4) ?(stall_p = 0.0) ?(stall = 2e-3) ?(read_fail = 0.0)
    ?(crashes = []) ~seed () =
  let prob name p =
    if p < 0.0 || p > 1.0 then
      invalid_arg (Printf.sprintf "Faults.create: %s not in [0,1]" name)
  in
  prob "drop" drop;
  prob "dup" dup;
  prob "delay" delay_p;
  prob "stall" stall_p;
  prob "read_fail" read_fail;
  List.iter
    (fun c ->
      if c.server < 0 || c.at < 0.0 || c.restart_after <= 0.0 then
        invalid_arg "Faults.create: crash")
    crashes;
  {
    seed = Int64.of_int seed;
    drop;
    dup;
    dup_delay;
    delay_p;
    delay;
    stall_p;
    stall;
    read_fail;
    crashes;
  }

let crashes t = t.crashes
let seed t = Int64.to_int t.seed

(* --- hashing ------------------------------------------------------------ *)

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

(* Fold one coordinate into the running hash; the golden-ratio increment
   keeps zero coordinates from collapsing into each other. *)
let fold h x =
  mix64 (Int64.add (Int64.logxor h (Int64.of_int x)) 0x9e3779b97f4a7c15L)

(* Uniform in [0,1) from the event identity (tag, a, b, c). *)
let u01 t ~tag ~a ~b ~c =
  let h = fold (fold (fold (fold t.seed tag) a) b) c in
  let bits = Int64.to_int (Int64.shift_right_logical h 11) in
  float_of_int bits /. 9007199254740992.0 (* 2^53 *)

(* Event tags: distinct decision kinds about the same event must draw
   independent uniforms. *)
let tag_drop = 1
let tag_dup = 2
let tag_delay = 3
let tag_stall = 4
let tag_read_fail = 5

let delivery t ~from ~receiver ~msg =
  if u01 t ~tag:tag_drop ~a:from ~b:receiver ~c:msg < t.drop then Drop
  else if u01 t ~tag:tag_dup ~a:from ~b:receiver ~c:msg < t.dup then
    Duplicate t.dup_delay
  else if u01 t ~tag:tag_delay ~a:from ~b:receiver ~c:msg < t.delay_p then
    Delay t.delay
  else Deliver

let stall t ~unit_id ~pos ~write =
  let k = if write then 1 else 0 in
  if u01 t ~tag:tag_stall ~a:unit_id ~b:pos ~c:k < t.stall_p then t.stall
  else 0.0

let read_fails t ~pos ~attempt =
  u01 t ~tag:tag_read_fail ~a:pos ~b:attempt ~c:0 < t.read_fail

(* --- spec parsing ------------------------------------------------------- *)

(* "SEED:item,item,..." where items are
     drop=P | dup=P[@D] | delay=P@D | stall=P@D | readfail=P
     | crash=SERVER@AT+DOWN                                     *)

let of_string s =
  let ( let* ) = Result.bind in
  let float_of name v =
    match float_of_string_opt v with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "faults: bad %s %S" name v)
  in
  let int_of name v =
    match int_of_string_opt v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "faults: bad %s %S" name v)
  in
  match String.index_opt s ':' with
  | None -> Error "faults: expected SEED:spec"
  | Some i ->
      let* seed = int_of "seed" (String.sub s 0 i) in
      let spec = String.sub s (i + 1) (String.length s - i - 1) in
      let items =
        if spec = "" then []
        else String.split_on_char ',' spec
      in
      List.fold_left
        (fun acc item ->
          let* t = acc in
          match String.index_opt item '=' with
          | None -> Error (Printf.sprintf "faults: bad item %S" item)
          | Some j -> (
              let key = String.sub item 0 j in
              let v = String.sub item (j + 1) (String.length item - j - 1) in
              let prob_at name v =
                match String.split_on_char '@' v with
                | [ p ] ->
                    let* p = float_of name p in
                    Ok (p, None)
                | [ p; d ] ->
                    let* p = float_of name p in
                    let* d = float_of (name ^ " duration") d in
                    Ok (p, Some d)
                | _ -> Error (Printf.sprintf "faults: bad %s %S" name v)
              in
              match key with
              | "drop" ->
                  let* p = float_of "drop" v in
                  Ok { t with drop = p }
              | "dup" ->
                  let* p, d = prob_at "dup" v in
                  Ok
                    {
                      t with
                      dup = p;
                      dup_delay = Option.value ~default:t.dup_delay d;
                    }
              | "delay" ->
                  let* p, d = prob_at "delay" v in
                  Ok
                    {
                      t with
                      delay_p = p;
                      delay = Option.value ~default:t.delay d;
                    }
              | "stall" ->
                  let* p, d = prob_at "stall" v in
                  Ok
                    {
                      t with
                      stall_p = p;
                      stall = Option.value ~default:t.stall d;
                    }
              | "readfail" ->
                  let* p = float_of "readfail" v in
                  Ok { t with read_fail = p }
              | "crash" -> (
                  (* SERVER@AT+DOWN *)
                  match String.split_on_char '@' v with
                  | [ srv; rest ] -> (
                      let* server = int_of "crash server" srv in
                      match String.split_on_char '+' rest with
                      | [ at; down ] ->
                          let* at = float_of "crash time" at in
                          let* restart_after = float_of "crash downtime" down in
                          Ok
                            {
                              t with
                              crashes =
                                t.crashes @ [ { server; at; restart_after } ];
                            }
                      | _ -> Error (Printf.sprintf "faults: bad crash %S" v))
                  | _ -> Error (Printf.sprintf "faults: bad crash %S" v))
              | _ -> Error (Printf.sprintf "faults: unknown item %S" key)))
        (Ok { none with seed = Int64.of_int seed })
        items
      |> fun r ->
      let* t = r in
      (* same bounds [create] enforces, as a parse error rather than an
         exception *)
      let prob name p =
        if p < 0.0 || p > 1.0 then
          Error (Printf.sprintf "faults: %s %g not in [0,1]" name p)
        else Ok ()
      in
      let* () = prob "drop" t.drop in
      let* () = prob "dup" t.dup in
      let* () = prob "delay" t.delay_p in
      let* () = prob "stall" t.stall_p in
      let* () = prob "readfail" t.read_fail in
      let* () =
        if
          List.for_all
            (fun c -> c.server >= 0 && c.at >= 0.0 && c.restart_after > 0.0)
            t.crashes
        then Ok ()
        else Error "faults: bad crash (server >= 0, at >= 0, downtime > 0)"
      in
      Ok t

let to_string t =
  let b = Buffer.create 64 in
  Buffer.add_string b (Printf.sprintf "%d:" (Int64.to_int t.seed));
  let items = ref [] in
  let add s = items := s :: !items in
  if t.drop > 0.0 then add (Printf.sprintf "drop=%g" t.drop);
  if t.dup > 0.0 then add (Printf.sprintf "dup=%g@%g" t.dup t.dup_delay);
  if t.delay_p > 0.0 then add (Printf.sprintf "delay=%g@%g" t.delay_p t.delay);
  if t.stall_p > 0.0 then add (Printf.sprintf "stall=%g@%g" t.stall_p t.stall);
  if t.read_fail > 0.0 then add (Printf.sprintf "readfail=%g" t.read_fail);
  List.iter
    (fun c ->
      add (Printf.sprintf "crash=%d@%g+%g" c.server c.at c.restart_after))
    t.crashes;
  Buffer.add_string b (String.concat "," (List.rev !items));
  Buffer.contents b
