external now : unit -> float = "hyder_clock_monotonic_seconds"

let elapsed t0 = Float.max 0.0 (now () -. t0)
