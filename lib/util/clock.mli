(** Monotonic time source for stage timing.

    [Unix.gettimeofday] follows the wall clock, which NTP or an operator
    can step backwards; a duration computed from two wall-clock readings
    can then come out negative and poison per-stage accounting.  This
    module reads [CLOCK_MONOTONIC] instead: only differences of readings
    are meaningful, and they are guaranteed non-negative.

    Thread-safe: [now] is a plain syscall with no shared state, so any
    domain may call it concurrently. *)

val now : unit -> float
(** Seconds from an arbitrary fixed origin, monotonically non-decreasing. *)

val elapsed : float -> float
(** [elapsed t0] is [now () -. t0], clamped at [0.] for safety. *)
