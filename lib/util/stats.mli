(** Measurement accumulators used by benchmarks and the cluster simulator. *)

(** Streaming mean / variance / extrema (Welford's algorithm); O(1) space. *)
module Summary : sig
  type t

  val create : unit -> t
  val clear : t -> unit

  val copy : t -> t
  (** Independent duplicate of the accumulator (the Welford state is a
      handful of scalars), for snapshotting at a measurement-window edge:
      further [add]s to either side leave the other untouched. *)

  val add : t -> float -> unit
  val count : t -> int
  val total : t -> float
  val mean : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
end

(** Sample set retaining every observation; supports exact percentiles.
    Intended for latency distributions of bounded experiments. *)
module Sample : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float

  val percentile : t -> float -> float
  (** [percentile s p] with [p] in [\[0, 100\]]; nearest-rank on the sorted
      sample.  Raises [Invalid_argument] on an empty sample. *)
end

(** Fixed-bucket histogram for work counters (e.g. nodes visited). *)
module Histogram : sig
  type t

  val create : bucket_width:float -> buckets:int -> t
  val add : t -> float -> unit
  val count : t -> int
  val bucket_counts : t -> int array
  val pp : Format.formatter -> t -> unit
end

(** Counter with a rate: events per simulated or real second. *)
module Meter : sig
  type t

  val create : unit -> t
  val mark : ?n:int -> t -> unit
  val count : t -> int
  val rate : t -> elapsed:float -> float
end
