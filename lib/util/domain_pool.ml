type t = {
  mutex : Mutex.t;
  work : Condition.t;  (** signalled when a batch is published or on stop *)
  done_ : Condition.t;  (** signalled when the last task of a batch ends *)
  mutable task : int -> unit;
  mutable count : int;  (** tasks in the current batch *)
  mutable next : int;  (** next unclaimed task index *)
  mutable finished : int;  (** tasks completed in the current batch *)
  mutable generation : int;  (** bumped per batch so idle workers wake once *)
  mutable failure : (exn * Printexc.raw_backtrace) option;
  mutable stop : bool;
  mutable workers : unit Domain.t array;  (** set once, right after spawn *)
}

let worker pool () =
  let seen = ref 0 in
  Mutex.lock pool.mutex;
  while not pool.stop do
    if pool.generation <> !seen then
      if pool.next < pool.count then begin
        let i = pool.next in
        pool.next <- i + 1;
        Mutex.unlock pool.mutex;
        let failed =
          try
            pool.task i;
            None
          with e -> Some (e, Printexc.get_raw_backtrace ())
        in
        Mutex.lock pool.mutex;
        (match failed with
        | Some _ when pool.failure = None -> pool.failure <- failed
        | _ -> ());
        pool.finished <- pool.finished + 1;
        if pool.finished = pool.count then Condition.broadcast pool.done_
      end
      else
        (* Batch drained by others; remember it so we sleep until the
           next one instead of spinning. *)
        seen := pool.generation
    else Condition.wait pool.work pool.mutex
  done;
  Mutex.unlock pool.mutex

let create ~domains =
  if domains < 1 then invalid_arg "Domain_pool.create: domains";
  let pool =
    {
      mutex = Mutex.create ();
      work = Condition.create ();
      done_ = Condition.create ();
      task = ignore;
      count = 0;
      next = 0;
      finished = 0;
      generation = 0;
      failure = None;
      stop = false;
      workers = [||];
    }
  in
  pool.workers <- Array.init domains (fun _ -> Domain.spawn (worker pool));
  pool

let size pool = Array.length pool.workers

let run pool ~tasks f =
  if tasks < 0 then invalid_arg "Domain_pool.run: tasks";
  if tasks > 0 then begin
    Mutex.lock pool.mutex;
    if pool.stop then begin
      Mutex.unlock pool.mutex;
      invalid_arg "Domain_pool.run: pool is shut down"
    end;
    pool.task <- f;
    pool.count <- tasks;
    pool.next <- 0;
    pool.finished <- 0;
    pool.failure <- None;
    pool.generation <- pool.generation + 1;
    Condition.broadcast pool.work;
    while pool.finished < pool.count do
      Condition.wait pool.done_ pool.mutex
    done;
    let failure = pool.failure in
    pool.task <- ignore;
    pool.count <- 0;
    Mutex.unlock pool.mutex;
    match failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let shutdown pool =
  Mutex.lock pool.mutex;
  let was_stopped = pool.stop in
  pool.stop <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.mutex;
  if not was_stopped then Array.iter Domain.join pool.workers
