(** A small persistent pool of OCaml 5 domains for fork/join batches.

    The pool owns [size] worker domains that sleep on a condition variable
    between batches.  {!run} publishes an indexed batch of tasks; workers
    self-schedule by claiming the next unclaimed index under the pool lock
    (a shared-queue variant of work stealing: the queue is the single
    index counter, and whichever worker is free steals the next task).
    [run] returns once every task has finished.

    Guarantees:
    - every task index in [0 .. n-1] is executed exactly once;
    - tasks may run concurrently on distinct domains, in any order, so
      they must be pairwise independent (the premeld scheduler gives each
      task its own allocator and counter shard to satisfy this);
    - if a task raises, the batch still drains, and [run] re-raises the
      first exception in the caller's domain.

    [run] is not reentrant: one batch at a time, driven by one owner
    domain.  This matches the meld pipeline, where a single log-order
    driver fans premeld windows out and joins before final meld. *)

type t

val create : domains:int -> t
(** Spawn [domains] worker domains (>= 1, [Invalid_argument] otherwise).
    The workers idle until the first {!run}. *)

val size : t -> int
(** Number of worker domains. *)

val run : t -> tasks:int -> (int -> unit) -> unit
(** [run pool ~tasks f] executes [f 0 .. f (tasks - 1)] on the pool and
    blocks until all calls have returned.  [tasks = 0] is a no-op. *)

val shutdown : t -> unit
(** Stop and join the workers.  Idempotent; [run] after [shutdown]
    raises [Invalid_argument]. *)
