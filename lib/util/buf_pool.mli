(** Single-owner freelist of [Bytes.t] scratch buffers.

    The codec hot path allocates a fresh backing buffer per encode and a
    fresh swizzle table per decode; under a pipelined runtime that churn
    lands on every worker's minor heap and poisons the calibrated stage
    costs (DESIGN.md §6.6).  A pool turns it into pointer bumps on a
    per-domain freelist.

    {b Not thread-safe by design}: one pool per domain.  Buffers cross
    domains only while checked out, never while pooled. *)

type t

val create : unit -> t

val acquire : t -> int -> Bytes.t
(** A buffer of at least the requested size (rounded up to a power of
    two, 16-byte floor).  Contents are unspecified. *)

val release : t -> Bytes.t -> unit
(** Return a buffer to the pool.  Only power-of-two sizes from
    {!acquire} are retained (bounded per bucket); anything else is left
    to the GC.  Using a buffer after release is a caller bug.  Releasing
    the same buffer twice while its first release is still parked, or
    releasing more pool-eligible buffers than were acquired, raises
    [Invalid_argument] — cheap canaries for lifetime bugs. *)

val hits : t -> int
(** Acquires served from the freelist. *)

val misses : t -> int
(** Acquires that had to allocate. *)

val pooled : t -> int
(** Buffers currently parked in the freelist. *)

val in_flight : t -> int
(** Pool-eligible buffers acquired and not yet released.  A fully
    drained pipeline must bring this back to zero; a positive residue is
    a leak, a negative one an extra release. *)
