(** Byte-level encoding primitives shared by the intention codec and the log.

    Writers append to a growable buffer; readers consume from a byte range
    with bounds checks.  Integers use LEB128 varints (intention trees are
    full of small structural integers, so varints materially shrink
    intentions, which the paper identifies as the quantity that drives meld
    cost). *)

exception Truncated
(** Raised by readers on premature end of input. *)

module Writer : sig
  type t

  val create : ?pool:Buf_pool.t -> ?capacity:int -> unit -> t
  (** With [pool], the backing buffer comes from (and grows through) the
      given per-domain {!Buf_pool}; call {!free} to hand it back. *)

  val length : t -> int
  val clear : t -> unit

  val free : t -> unit
  (** Release the backing buffer to the writer's pool (no-op without
      one) and reset to empty.  The writer stays usable — the next
      append allocates afresh. *)

  val u8 : t -> int -> unit
  val u32 : t -> int32 -> unit
  val varint : t -> int -> unit
  (** Non-negative values only. *)

  val varint64 : t -> int64 -> unit
  val bytes : t -> string -> unit
  (** Length-prefixed byte string. *)

  val substring : t -> string -> pos:int -> len:int -> unit
  (** Length-prefixed slice of [s], blitted straight from the source —
      equivalent to [bytes t (String.sub s pos len)] without the
      intermediate allocation. *)

  val raw : t -> Bytes.t -> pos:int -> len:int -> unit
  val contents : t -> string
  val blit_into : t -> Bytes.t -> dst_pos:int -> unit
end

module Reader : sig
  type t

  val of_string : ?pos:int -> ?len:int -> string -> t
  val pos : t -> int
  val remaining : t -> int
  val u8 : t -> int
  val u32 : t -> int32
  val varint : t -> int
  val varint64 : t -> int64
  val bytes : t -> string
  val skip : t -> int -> unit
end
