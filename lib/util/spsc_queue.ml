(* Bounded single-producer / single-consumer ring queue.

   The slot array is plain (no per-slot atomics): publication rides on the
   sequentially-consistent [head]/[tail] indices.  The producer only writes
   a slot after observing [head] past its previous occupant (so the
   consumer's reads of it happened-before), and the consumer only reads a
   slot after observing [tail] past it (so the producer's write
   happened-before).  Slots are reset to [dummy] on pop so the ring never
   pins popped values against the GC.

   Blocking pops spin briefly (the common case under load), then park on a
   mutex/condvar doorbell.  The sleeper-registration / post-publish check
   is the standard Dekker handshake: the consumer registers in [sleepers]
   {e before} re-checking emptiness, the producer publishes [tail]
   {e before} reading [sleepers] — both with SC atomics — so a wakeup can
   never be lost. *)

type 'a t = {
  slots : 'a array;
  mask : int;
  dummy : 'a;
  head : int Atomic.t;  (** next slot to pop; written by the consumer *)
  tail : int Atomic.t;  (** next slot to push; written by the producer *)
  sleepers : int Atomic.t;  (** consumers parked (0 or 1) *)
  mutable wakeups : int;
      (** doorbell broadcasts that found a sleeper; producer-written *)
  lock : Mutex.t;
  nonempty : Condition.t;
}

let create ?(capacity = 64) ~dummy () =
  if capacity < 1 then invalid_arg "Spsc_queue.create: capacity";
  let cap = ref 1 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  {
    slots = Array.make !cap dummy;
    mask = !cap - 1;
    dummy;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    sleepers = Atomic.make 0;
    wakeups = 0;
    lock = Mutex.create ();
    nonempty = Condition.create ();
  }

let capacity t = t.mask + 1
(* Read [head] first: [tail] can only grow in between, so the difference
   over-counts at worst — reading [tail] first lets a pop land in between
   and a third-domain observer (the metrics queue-depth sampler) would see
   a negative length.  The clamp covers the symmetric tear (a push between
   the reads racing a concurrent pop). *)
let length t =
  let head = Atomic.get t.head in
  let tail = Atomic.get t.tail in
  max 0 (tail - head)

let signal t =
  if Atomic.get t.sleepers > 0 then begin
    t.wakeups <- t.wakeups + 1;
    Mutex.lock t.lock;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.lock
  end

let wakeups t = t.wakeups

let try_push t x =
  let tail = Atomic.get t.tail in
  if tail - Atomic.get t.head > t.mask then false
  else begin
    t.slots.(tail land t.mask) <- x;
    Atomic.set t.tail (tail + 1);
    signal t;
    true
  end

(* Batched transfer: one index publication and at most one doorbell ring
   per batch, however many elements move.  The slot writes/reads inside a
   batch need no per-element ordering — they are all covered by the single
   SC [tail] (resp. [head]) store that publishes them, exactly as in the
   single-element case. *)

let push_batch t buf ~len =
  if len < 0 || len > Array.length buf then
    invalid_arg "Spsc_queue.push_batch";
  let tail = Atomic.get t.tail in
  let free = t.mask + 1 - (tail - Atomic.get t.head) in
  let n = min len free in
  if n > 0 then begin
    for i = 0 to n - 1 do
      t.slots.((tail + i) land t.mask) <- buf.(i)
    done;
    Atomic.set t.tail (tail + n);
    signal t
  end;
  n

let try_pop t =
  let head = Atomic.get t.head in
  if Atomic.get t.tail - head <= 0 then None
  else begin
    let i = head land t.mask in
    let x = t.slots.(i) in
    t.slots.(i) <- t.dummy;
    Atomic.set t.head (head + 1);
    Some x
  end

let pop_batch t buf ~max:m =
  if m < 0 || m > Array.length buf then invalid_arg "Spsc_queue.pop_batch";
  let head = Atomic.get t.head in
  let avail = Atomic.get t.tail - head in
  let n = min m avail in
  if n > 0 then begin
    for i = 0 to n - 1 do
      let j = (head + i) land t.mask in
      buf.(i) <- t.slots.(j);
      t.slots.(j) <- t.dummy
    done;
    Atomic.set t.head (head + n)
  end;
  n

let wake t =
  Mutex.lock t.lock;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock

(* Short spin before parking: long spins on an oversubscribed machine only
   steal cycles from the producer we are waiting for. *)
let spin_budget = 32

let rec pop t ~cancel =
  match try_pop t with
  | Some _ as r -> r
  | None ->
      if cancel () then None
      else begin
        let spun = ref 0 in
        while
          !spun < spin_budget
          && Atomic.get t.tail = Atomic.get t.head
          && not (cancel ())
        do
          Domain.cpu_relax ();
          incr spun
        done;
        if Atomic.get t.tail = Atomic.get t.head && not (cancel ()) then begin
          Mutex.lock t.lock;
          Atomic.incr t.sleepers;
          while Atomic.get t.tail = Atomic.get t.head && not (cancel ()) do
            Condition.wait t.nonempty t.lock
          done;
          Atomic.decr t.sleepers;
          Mutex.unlock t.lock
        end;
        pop t ~cancel
      end
