/* Monotonic clock binding for Hyder_util.Clock.

   CLOCK_MONOTONIC never jumps backwards under NTP slew or manual
   wall-clock adjustment, so stage durations derived from differences of
   this clock are always non-negative. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value hyder_clock_monotonic_seconds(value unit)
{
  struct timespec ts;
#ifdef CLOCK_MONOTONIC
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  (void)unit;
  return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
}
