(** Bounded single-producer / single-consumer ring queue.

    The backbone of the pipelined meld runtime: the driver feeds each
    worker domain through one of these (jobs) and drains another
    (results).  Exactly one domain may push and exactly one may pop —
    the SPSC restriction is what lets the hot path be two plain array
    accesses plus two SC-atomic index updates, with no per-slot atomics
    and no allocation.

    Capacity is fixed at creation (rounded up to a power of two), so a
    full queue pushes back on the producer: {!try_push} returns [false]
    and the caller decides whether to drain, spin, or do the work
    inline.  Memory therefore stays bounded under burst.

    Popped slots are overwritten with the [dummy] element so the queue
    never retains references to values already consumed. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [capacity] (default 64, rounded up to a power of two) bounds the
    number of unconsumed elements.  [dummy] fills empty slots; it is
    never returned by a pop. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Elements currently queued.  Exact for the producer and the consumer;
    a torn read from any other domain (the metrics queue-depth sampler)
    may over-count by in-flight operations but is never negative: [head]
    is read before [tail] and the difference is clamped at 0. *)

val try_push : 'a t -> 'a -> bool
(** Producer only.  [false] iff the queue is full. *)

val try_pop : 'a t -> 'a option
(** Consumer only.  [None] iff the queue is empty. *)

val push_batch : 'a t -> 'a array -> len:int -> int
(** Producer only.  Push [buf.(0 .. len-1)] — as many as currently fit —
    with a {e single} [tail] publication and at most one doorbell ring,
    and return the number accepted (0 iff the queue is full or [len] is
    0).  The buffer is caller-owned and never retained, so steady-state
    batched handoff allocates nothing. *)

val pop_batch : 'a t -> 'a array -> max:int -> int
(** Consumer only.  Pop up to [max] elements into [buf.(0 ..)] with a
    single [head] publication, resetting the vacated slots to [dummy],
    and return the number popped (0 iff the queue is empty).  FIFO order
    is preserved with respect to both single and batched pushes. *)

val wakeups : 'a t -> int
(** Doorbell broadcasts that found a parked consumer, cumulative.  Exact
    for the producer; other domains may see a slightly stale value. *)

val pop : 'a t -> cancel:(unit -> bool) -> 'a option
(** Consumer only.  Block until an element arrives ([Some]) or
    [cancel ()] is observed true while the queue is empty ([None]).
    Spins briefly, then parks on a condvar; {!try_push} wakes a parked
    consumer, and {!wake} forces a recheck of [cancel]. *)

val wake : 'a t -> unit
(** Wake a consumer parked in {!pop} so it re-evaluates [cancel].  Any
    domain may call this (it only touches the doorbell, not the ring). *)
