module Summary = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable total : float;
    mutable min : float;
    mutable max : float;
  }

  let create () =
    { n = 0; mean = 0.0; m2 = 0.0; total = 0.0; min = infinity; max = neg_infinity }

  let clear t =
    t.n <- 0;
    t.mean <- 0.0;
    t.m2 <- 0.0;
    t.total <- 0.0;
    t.min <- infinity;
    t.max <- neg_infinity

  let copy t = { t with n = t.n }

  let add t x =
    t.n <- t.n + 1;
    t.total <- t.total +. x;
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.n
  let total t = t.total
  let mean t = if t.n = 0 then 0.0 else t.mean

  let stddev t =
    if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))

  let min t = t.min
  let max t = t.max
end

module Sample = struct
  type t = {
    mutable data : float array;
    mutable n : int;
    mutable sorted : bool;
  }

  let create () = { data = Array.make 1024 0.0; n = 0; sorted = false }

  let add t x =
    if t.n = Array.length t.data then begin
      let bigger = Array.make (2 * t.n) 0.0 in
      Array.blit t.data 0 bigger 0 t.n;
      t.data <- bigger
    end;
    t.data.(t.n) <- x;
    t.n <- t.n + 1;
    t.sorted <- false

  let count t = t.n

  let mean t =
    if t.n = 0 then 0.0
    else begin
      let acc = ref 0.0 in
      for i = 0 to t.n - 1 do
        acc := !acc +. t.data.(i)
      done;
      !acc /. float_of_int t.n
    end

  let ensure_sorted t =
    if not t.sorted then begin
      let view = Array.sub t.data 0 t.n in
      Array.sort Float.compare view;
      Array.blit view 0 t.data 0 t.n;
      t.sorted <- true
    end

  let percentile t p =
    if t.n = 0 then invalid_arg "Stats.Sample.percentile: empty sample";
    if p < 0.0 || p > 100.0 then
      invalid_arg "Stats.Sample.percentile: p out of range";
    ensure_sorted t;
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) in
    let idx = if rank <= 0 then 0 else Stdlib.min (t.n - 1) (rank - 1) in
    t.data.(idx)
end

module Histogram = struct
  type t = { bucket_width : float; counts : int array; mutable n : int }

  let create ~bucket_width ~buckets =
    if bucket_width <= 0.0 || buckets <= 0 then
      invalid_arg "Stats.Histogram.create";
    { bucket_width; counts = Array.make buckets 0; n = 0 }

  let add t x =
    let b = int_of_float (x /. t.bucket_width) in
    let b = if b < 0 then 0 else Stdlib.min b (Array.length t.counts - 1) in
    t.counts.(b) <- t.counts.(b) + 1;
    t.n <- t.n + 1

  let count t = t.n
  let bucket_counts t = Array.copy t.counts

  let pp fmt t =
    Array.iteri
      (fun i c ->
        if c > 0 then
          Format.fprintf fmt "[%8.1f, %8.1f): %d@."
            (float_of_int i *. t.bucket_width)
            (float_of_int (i + 1) *. t.bucket_width)
            c)
      t.counts
end

module Meter = struct
  type t = { mutable n : int }

  let create () = { n = 0 }
  let mark ?(n = 1) t = t.n <- t.n + n
  let count t = t.n

  let rate t ~elapsed =
    if elapsed <= 0.0 then 0.0 else float_of_int t.n /. elapsed
end
