(* Single-owner freelist of byte buffers, bucketed by power-of-two size.

   No synchronization: a pool belongs to one domain (each pipeline worker
   and the driver keep their own).  Buckets are LIFO so the hottest buffer
   — still warm in cache — is reused first. *)

let min_log = 4 (* 16-byte floor, matching Wire.Writer's minimum *)
let max_log = 30

type t = {
  free : Bytes.t list array;  (** bucket [i] holds buffers of 2^(i+min_log) *)
  mutable hits : int;
  mutable misses : int;
  mutable outstanding : int;
      (** pool-eligible buffers acquired and not yet released; the
          balance a drained run must bring back to zero *)
}

let create () =
  { free = Array.make (max_log - min_log + 1) []; hits = 0; misses = 0;
    outstanding = 0 }

let bucket_of size =
  let b = ref 0 in
  while 1 lsl (!b + min_log) < size do
    incr b
  done;
  !b

let acquire t size =
  if size < 0 || size > 1 lsl max_log then invalid_arg "Buf_pool.acquire";
  let b = bucket_of size in
  t.outstanding <- t.outstanding + 1;
  match t.free.(b) with
  | buf :: rest ->
      t.free.(b) <- rest;
      t.hits <- t.hits + 1;
      buf
  | [] ->
      t.misses <- t.misses + 1;
      Bytes.create (1 lsl (b + min_log))

let release t buf =
  let len = Bytes.length buf in
  (* Only pool the exact power-of-two sizes acquire hands out; anything
     else (a buffer the caller made itself) is left to the GC. *)
  if len >= 1 lsl min_log && len <= 1 lsl max_log && len land (len - 1) = 0
  then begin
    let b = bucket_of len in
    (* Buckets are shallow (≤ 8 deep), so a physical scan is cheap and
       catches the classic lifetime bug: releasing the same buffer twice
       would let two later acquires alias one buffer. *)
    if List.exists (fun parked -> parked == buf) t.free.(b) then
      invalid_arg "Buf_pool.release: buffer released twice";
    if t.outstanding <= 0 then
      invalid_arg "Buf_pool.release: more releases than acquires";
    t.outstanding <- t.outstanding - 1;
    (* Keep buckets shallow: a deep freelist is just a leak with extra
       steps when a burst subsides. *)
    if List.length t.free.(b) < 8 then t.free.(b) <- buf :: t.free.(b)
  end

let hits t = t.hits
let misses t = t.misses

let pooled t =
  Array.fold_left (fun acc l -> acc + List.length l) 0 t.free

let in_flight t = t.outstanding
