exception Truncated

module Writer = struct
  type t = { mutable buf : Bytes.t; mutable len : int; pool : Buf_pool.t option }

  let alloc pool size =
    match pool with
    | None -> Bytes.create size
    | Some p -> Buf_pool.acquire p size

  let create ?pool ?(capacity = 256) () =
    { buf = alloc pool (max 16 capacity); len = 0; pool }

  let length t = t.len
  let clear t = t.len <- 0

  let free t =
    (match t.pool with None -> () | Some p -> Buf_pool.release p t.buf);
    t.buf <- Bytes.empty;
    t.len <- 0

  let ensure t extra =
    let needed = t.len + extra in
    if needed > Bytes.length t.buf then begin
      let cap = ref (max 16 (2 * Bytes.length t.buf)) in
      while !cap < needed do
        cap := 2 * !cap
      done;
      let bigger = alloc t.pool !cap in
      Bytes.blit t.buf 0 bigger 0 t.len;
      (match t.pool with None -> () | Some p -> Buf_pool.release p t.buf);
      t.buf <- bigger
    end

  let u8 t v =
    ensure t 1;
    Bytes.unsafe_set t.buf t.len (Char.unsafe_chr (v land 0xFF));
    t.len <- t.len + 1

  let u32 t v =
    ensure t 4;
    Bytes.set_int32_le t.buf t.len v;
    t.len <- t.len + 4

  let varint64 t v =
    let v = ref v in
    let continue = ref true in
    while !continue do
      let low = Int64.to_int (Int64.logand !v 0x7FL) in
      v := Int64.shift_right_logical !v 7;
      if !v = 0L then begin
        u8 t low;
        continue := false
      end
      else u8 t (low lor 0x80)
    done

  let varint t v =
    if v < 0 then invalid_arg "Wire.Writer.varint: negative";
    (* Unboxed: a non-negative int zero-extends to 64 bits, so this
       writes exactly varint64's bytes without boxing an Int64 per
       7-bit group. *)
    let v = ref v in
    let continue = ref true in
    while !continue do
      let low = !v land 0x7F in
      v := !v lsr 7;
      if !v = 0 then begin
        u8 t low;
        continue := false
      end
      else u8 t (low lor 0x80)
    done

  let raw t b ~pos ~len =
    ensure t len;
    Bytes.blit b pos t.buf t.len len;
    t.len <- t.len + len

  let bytes t s =
    varint t (String.length s);
    raw t (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

  let substring t s ~pos ~len =
    if pos < 0 || len < 0 || pos + len > String.length s then
      invalid_arg "Wire.Writer.substring: range out of bounds";
    varint t len;
    ensure t len;
    Bytes.blit_string s pos t.buf t.len len;
    t.len <- t.len + len

  let contents t = Bytes.sub_string t.buf 0 t.len

  let blit_into t dst ~dst_pos = Bytes.blit t.buf 0 dst dst_pos t.len
end

module Reader = struct
  type t = { src : string; limit : int; mutable pos : int }

  let of_string ?(pos = 0) ?len src =
    let limit =
      match len with None -> String.length src | Some l -> pos + l
    in
    if pos < 0 || limit > String.length src then
      invalid_arg "Wire.Reader.of_string: range out of bounds";
    { src; limit; pos }

  let pos t = t.pos
  let remaining t = t.limit - t.pos

  let u8 t =
    if t.pos >= t.limit then raise Truncated;
    let v = Char.code (String.unsafe_get t.src t.pos) in
    t.pos <- t.pos + 1;
    v

  let u32 t =
    if t.pos + 4 > t.limit then raise Truncated;
    let v = String.get_int32_le t.src t.pos in
    t.pos <- t.pos + 4;
    v

  let varint64 t =
    let result = ref 0L in
    let shift = ref 0 in
    let continue = ref true in
    while !continue do
      if !shift > 63 then raise Truncated;
      let b = u8 t in
      result :=
        Int64.logor !result
          (Int64.shift_left (Int64.of_int (b land 0x7F)) !shift);
      shift := !shift + 7;
      if b land 0x80 = 0 then continue := false
    done;
    !result

  let varint t = Int64.to_int (varint64 t)

  let bytes t =
    let len = varint t in
    if len < 0 || t.pos + len > t.limit then raise Truncated;
    let s = String.sub t.src t.pos len in
    t.pos <- t.pos + len;
    s

  let skip t n =
    if n < 0 || t.pos + n > t.limit then raise Truncated;
    t.pos <- t.pos + n
end
