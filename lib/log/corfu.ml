module Engine = Hyder_sim.Engine
module Resource = Hyder_sim.Resource
module Faults = Hyder_sim.Faults
module Stats = Hyder_util.Stats

type config = {
  storage_units : int;
  storage_parallelism : int;
      (** concurrent flash operations per unit (channel/NCQ parallelism) *)
  block_size : int;
  sequencer_time : float;
  write_time : float;  (** mean; actual draws are exponential *)
  read_time : float;
  network_hop : float;
}

(* Calibration: the sequencer saturates near 145K tokens/s; each stripe
   write is an SSD program (~0.65 ms) but units run 16 deep, so the six
   units jointly sustain ~147K writes/s.  Peak append rate lands a little
   above 140K/s with sub-millisecond unloaded latency, matching Figure 9
   and the paper's Section 6.3. *)
let default_config =
  {
    storage_units = 6;
    storage_parallelism = 16;
    block_size = 8192;
    sequencer_time = 6.9e-6;
    write_time = 0.65e-3;
    read_time = 0.55e-3;
    network_hop = 22.0e-6;
  }

type t = {
  engine : Engine.t;
  config : config;
  faults : Faults.t;
  sequencer : Resource.t;
  units : Resource.t array;
  store : Mem_log.t;
  latencies : Stats.Sample.t;
  rng : Hyder_util.Rng.t;
  mutable completed : int;
  mutable read_retries : int;
  mutable stalls : int;
}

let create ?(config = default_config) ?(faults = Faults.none) engine =
  {
    engine;
    config;
    faults;
    sequencer = Resource.create engine ~servers:1;
    units =
      Array.init config.storage_units (fun _ ->
          Resource.create engine ~servers:config.storage_parallelism);
    store = Mem_log.create ~block_size:config.block_size ();
    latencies = Stats.Sample.create ();
    rng = Hyder_util.Rng.create 0xC0FF33L;
    completed = 0;
    read_retries = 0;
    stalls = 0;
  }

let config t = t.config
let length t = Mem_log.length t.store
let append_latencies t = t.latencies
let appends_completed t = t.completed
let appends_inflight t = Mem_log.length t.store - t.completed
let sequencer_queue t = Resource.queue_length t.sequencer

let max_unit_queue t =
  Array.fold_left (fun acc u -> max acc (Resource.queue_length u)) 0 t.units

(* Fault-injected extra service time for the storage operation on [pos];
   bumps the stall counter when the schedule selects the event. *)
let stall_for t ~unit_id ~pos ~write =
  let extra = Faults.stall t.faults ~unit_id ~pos ~write in
  if extra > 0.0 then t.stalls <- t.stalls + 1;
  extra

let append t block k =
  let started = Engine.now t.engine in
  (* Client -> sequencer hop, token grant, then the stripe write on the unit
     owning (pos mod stripes), then the acknowledgement hop back. *)
  Engine.schedule t.engine ~delay:t.config.network_hop (fun () ->
      Resource.request t.sequencer ~service_time:t.config.sequencer_time
        (fun () ->
          let pos = Mem_log.append t.store block in
          let unit_id = pos mod Array.length t.units in
          let unit = t.units.(unit_id) in
          let service =
            Hyder_util.Rng.exponential t.rng ~mean:t.config.write_time
            +. stall_for t ~unit_id ~pos ~write:true
          in
          Resource.request unit ~service_time:service (fun () ->
              Engine.schedule t.engine ~delay:t.config.network_hop (fun () ->
                  t.completed <- t.completed + 1;
                  Stats.Sample.add t.latencies (Engine.now t.engine -. started);
                  k pos))))

(* Transient read failures retry with doubling backoff.  The failure draw
   is pure per (pos, attempt), so any fixed failure probability < 1
   terminates with probability 1; the backoff keeps a flaky unit from
   being hammered in simulated time. *)
let read_backoff_base = 0.5e-3
let read_backoff_cap = 8.0e-3

let read t pos k =
  let rec attempt n =
    Engine.schedule t.engine ~delay:t.config.network_hop (fun () ->
        let unit_id = pos mod Array.length t.units in
        let unit = t.units.(unit_id) in
        let service =
          Hyder_util.Rng.exponential t.rng ~mean:t.config.read_time
          +. stall_for t ~unit_id ~pos ~write:false
        in
        Resource.request unit ~service_time:service (fun () ->
            if Faults.read_fails t.faults ~pos ~attempt:n then begin
              t.read_retries <- t.read_retries + 1;
              let backoff =
                Float.min read_backoff_cap
                  (read_backoff_base *. Float.of_int (1 lsl min n 10))
              in
              Engine.schedule t.engine ~delay:backoff (fun () ->
                  attempt (n + 1))
            end
            else begin
              let block = Mem_log.read t.store pos in
              Engine.schedule t.engine ~delay:t.config.network_hop (fun () ->
                  k block)
            end))
  in
  attempt 0

let read_retries t = t.read_retries
let stalls_injected t = t.stalls
