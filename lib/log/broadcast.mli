(** Simulated intention broadcast between transaction servers.

    After a server appends an intention it broadcasts the blocks to its
    peers (Section 5.2).  Section 5.3 reports that the UDP simulation lost
    packets under load and the switch to TCP — in-order, reliable, slightly
    more expensive — was a significant win.  We model the TCP variant: each
    (sender, receiver) pair is an ordered channel with a per-message service
    time (bandwidth share) plus propagation latency, so messages from one
    sender never arrive out of order.

    A {!Hyder_sim.Faults} schedule can drop, duplicate or delay individual
    remote deliveries — the broadcast is an optimization, so a receiver
    that misses a message must repair the gap from the shared log.  Local
    delivery (sender to itself) is never subject to faults but does go
    through the event loop, at zero delay, so it cannot reenter ahead of
    already-scheduled events. *)

type config = {
  propagation : float;  (** one-way wire latency, seconds *)
  per_byte : float;  (** serialization cost per byte on the sender NIC *)
  per_message : float;  (** fixed per-message CPU/NIC overhead *)
}

val default_config : config

type t

val create :
  ?config:config ->
  ?faults:Hyder_sim.Faults.t ->
  Hyder_sim.Engine.t ->
  senders:int ->
  receivers:int ->
  t

val send :
  t -> from:int -> size:int -> (receiver:int -> unit) -> unit
(** Broadcast a message of [size] bytes from server [from]; the callback
    fires once per receiver.  The sender's own delivery is scheduled at
    zero delay (not synchronously) and is exempt from faults; remote
    deliveries pay NIC service plus propagation and are subject to the
    fault schedule. *)

val messages_sent : t -> int
(** Remote messages handed to a NIC (local self-deliveries and dropped
    messages are not counted). *)

val messages_dropped : t -> int
val messages_duplicated : t -> int
val messages_delayed : t -> int

val max_nic_queue : t -> int
(** Deepest egress-NIC queue at the current simulated time. *)
