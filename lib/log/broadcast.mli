(** Simulated intention broadcast between transaction servers.

    After a server appends an intention it broadcasts the blocks to its
    peers (Section 5.2).  Section 5.3 reports that the UDP simulation lost
    packets under load and the switch to TCP — in-order, reliable, slightly
    more expensive — was a significant win.  We model the TCP variant: each
    (sender, receiver) pair is an ordered channel with a per-message service
    time (bandwidth share) plus propagation latency, so messages from one
    sender never arrive out of order. *)

type config = {
  propagation : float;  (** one-way wire latency, seconds *)
  per_byte : float;  (** serialization cost per byte on the sender NIC *)
  per_message : float;  (** fixed per-message CPU/NIC overhead *)
}

val default_config : config

type t

val create :
  ?config:config -> Hyder_sim.Engine.t -> senders:int -> receivers:int -> t

val send :
  t -> from:int -> size:int -> (receiver:int -> unit) -> unit
(** Broadcast a message of [size] bytes from server [from]; the callback
    fires once per receiver (including the sender itself, at zero cost, so
    every server observes the same stream). *)

val messages_sent : t -> int

val max_nic_queue : t -> int
(** Deepest egress-NIC queue at the current simulated time. *)
