(** Simulated CORFU shared-log service (Balakrishnan et al., TOCS 2013).

    The paper's log is CORFU: a sequencer hands out log positions, and blocks
    are striped round-robin across storage units (SSDs attached to log
    servers).  We reproduce the service's *queueing behaviour* with the
    discrete-event engine: a sequencer resource, one resource per storage
    unit, and network hops with configurable latency.  Block contents are
    stored for real, so reads return exactly what was appended.

    This is the substrate for Figure 9 (append throughput/latency) and for
    the cluster experiments, where it bounds achievable append bandwidth. *)

type config = {
  storage_units : int;  (** stripes; the paper uses 6 disk servers *)
  storage_parallelism : int;
      (** concurrent flash operations per unit (channel/NCQ parallelism) *)
  block_size : int;  (** page size in bytes; the paper uses 8K *)
  sequencer_time : float;  (** sequencer service time per token, seconds *)
  write_time : float;  (** mean storage time per block write (exponential) *)
  read_time : float;  (** mean storage time per block read (exponential) *)
  network_hop : float;  (** one-way client<->service latency *)
}

val default_config : config
(** Calibrated so the simulated service peaks a little above 140K
    appends/sec with sub-10ms p99, matching Section 6.3. *)

type t

val create :
  ?config:config -> ?faults:Hyder_sim.Faults.t -> Hyder_sim.Engine.t -> t
(** [faults] (default {!Hyder_sim.Faults.none}) injects storage-unit
    stalls into append/read service times and transient read failures;
    failed reads retry with doubling backoff until they succeed. *)

val config : t -> config

val append : t -> string -> (Log_intf.position -> unit) -> unit
(** Asynchronous append; the callback fires (in simulated time) when the
    block is durable, with its assigned position. *)

val read : t -> Log_intf.position -> (string -> unit) -> unit
(** Asynchronous read of a previously appended block.  Under an injected
    transient failure the read retries with doubling backoff (bounded);
    the callback always eventually fires, in simulated time. *)

val length : t -> int
(** Positions handed out so far. *)

val append_latencies : t -> Hyder_util.Stats.Sample.t
(** Completed-append latencies (simulated seconds), for Figure 9. *)

val appends_completed : t -> int

val appends_inflight : t -> int
(** Positions assigned whose durability callback has not fired yet. *)

val sequencer_queue : t -> int
(** Requests queued at the sequencer at the current simulated time. *)

val max_unit_queue : t -> int
(** Deepest storage-unit queue at the current simulated time. *)

val read_retries : t -> int
(** Read attempts that failed transiently and were retried. *)

val stalls_injected : t -> int
(** Storage operations that drew an injected stall. *)
