module Engine = Hyder_sim.Engine
module Resource = Hyder_sim.Resource
module Faults = Hyder_sim.Faults

type config = {
  propagation : float;
  per_byte : float;
  per_message : float;
}

(* 10 GbE: ~0.8 ns/byte on the wire; per-message overhead dominated by the
   TCP send path. *)
let default_config =
  { propagation = 20.0e-6; per_byte = 0.9e-9; per_message = 3.0e-6 }

type t = {
  engine : Engine.t;
  config : config;
  faults : Faults.t;
  nics : Resource.t array;  (** one egress NIC per sender *)
  receivers : int;
  mutable sent : int;  (** remote messages handed to a NIC *)
  mutable casts : int;  (** send calls; the fault schedule's message id *)
  mutable dropped : int;
  mutable duplicated : int;
  mutable delayed : int;
}

let create ?(config = default_config) ?(faults = Faults.none) engine ~senders
    ~receivers =
  if senders <= 0 || receivers <= 0 then invalid_arg "Broadcast.create";
  {
    engine;
    config;
    faults;
    nics = Array.init senders (fun _ -> Resource.create engine ~servers:1);
    receivers;
    sent = 0;
    casts = 0;
    dropped = 0;
    duplicated = 0;
    delayed = 0;
  }

let send t ~from ~size k =
  if from < 0 || from >= Array.length t.nics then
    invalid_arg "Broadcast.send: unknown sender";
  let msg = t.casts in
  t.casts <- msg + 1;
  (* Local delivery costs nothing — the sender already has the intention —
     but must still go through the event loop: a synchronous callback would
     reenter the server ahead of events already scheduled for this instant.
     It is also never dropped: losing your own intention is not a network
     fault. *)
  Engine.schedule t.engine ~delay:0.0 (fun () -> k ~receiver:from);
  let cost_per_peer =
    t.config.per_message +. (t.config.per_byte *. float_of_int size)
  in
  let nic = t.nics.(from) in
  for receiver = 0 to t.receivers - 1 do
    if receiver <> from then begin
      let fate = Faults.delivery t.faults ~from ~receiver ~msg in
      match fate with
      | Faults.Drop -> t.dropped <- t.dropped + 1
      | Faults.Deliver | Faults.Duplicate _ | Faults.Delay _ ->
          t.sent <- t.sent + 1;
          (* Occupy the egress NIC once per peer (unicast fan-out, as the
             TCP "broadcast" in the paper); propagation added after send
             completes. *)
          Resource.request nic ~service_time:cost_per_peer (fun () ->
              let deliver extra =
                Engine.schedule t.engine
                  ~delay:(t.config.propagation +. extra)
                  (fun () -> k ~receiver)
              in
              match fate with
              | Faults.Drop -> assert false
              | Faults.Deliver -> deliver 0.0
              | Faults.Delay d ->
                  t.delayed <- t.delayed + 1;
                  deliver d
              | Faults.Duplicate d ->
                  t.duplicated <- t.duplicated + 1;
                  deliver 0.0;
                  deliver d)
    end
  done

let messages_sent t = t.sent
let messages_dropped t = t.dropped
let messages_duplicated t = t.duplicated
let messages_delayed t = t.delayed

let max_nic_queue t =
  Array.fold_left (fun acc nic -> max acc (Resource.queue_length nic)) 0 t.nics
