module Engine = Hyder_sim.Engine
module Resource = Hyder_sim.Resource

type config = {
  propagation : float;
  per_byte : float;
  per_message : float;
}

(* 10 GbE: ~0.8 ns/byte on the wire; per-message overhead dominated by the
   TCP send path. *)
let default_config =
  { propagation = 20.0e-6; per_byte = 0.9e-9; per_message = 3.0e-6 }

type t = {
  engine : Engine.t;
  config : config;
  nics : Resource.t array;  (** one egress NIC per sender *)
  receivers : int;
  mutable sent : int;
}

let create ?(config = default_config) engine ~senders ~receivers =
  if senders <= 0 || receivers <= 0 then invalid_arg "Broadcast.create";
  {
    engine;
    config;
    nics = Array.init senders (fun _ -> Resource.create engine ~servers:1);
    receivers;
    sent = 0;
  }

let send t ~from ~size k =
  if from < 0 || from >= Array.length t.nics then
    invalid_arg "Broadcast.send: unknown sender";
  t.sent <- t.sent + 1;
  (* Local delivery is immediate: the sender already has the intention. *)
  k ~receiver:from;
  let cost_per_peer =
    t.config.per_message +. (t.config.per_byte *. float_of_int size)
  in
  let nic = t.nics.(from) in
  for receiver = 0 to t.receivers - 1 do
    if receiver <> from then
      (* Occupy the egress NIC once per peer (unicast fan-out, as the TCP
         "broadcast" in the paper); propagation added after send completes. *)
      Resource.request nic ~service_time:cost_per_peer (fun () ->
          Engine.schedule t.engine ~delay:t.config.propagation (fun () ->
              k ~receiver))
  done

let messages_sent t = t.sent

let max_nic_queue t =
  Array.fold_left (fun acc nic -> max acc (Resource.queue_length nic)) 0 t.nics
