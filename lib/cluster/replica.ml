module Engine = Hyder_sim.Engine
module Faults = Hyder_sim.Faults
module Corfu = Hyder_log.Corfu
module Broadcast = Hyder_log.Broadcast
module Tree = Hyder_tree.Tree
module Codec = Hyder_codec.Codec
module Executor = Hyder_core.Executor
module Pipeline = Hyder_core.Pipeline
module Premeld = Hyder_core.Premeld
module Runtime = Hyder_core.Runtime
module Counters = Hyder_core.Counters
module Checkpoint = Hyder_core.Checkpoint
module Ycsb = Hyder_workload.Ycsb
module Stats = Hyder_util.Stats
module Metrics = Hyder_obs.Metrics
module Flight = Hyder_obs.Flight
module Json = Hyder_obs.Json

type config = {
  servers : int;
  txns : int;
  wave : int;
  pipeline : Pipeline.config;
  runtime : Runtime.backend;
  workload : Ycsb.config;
  corfu : Corfu.config;
  broadcast : Broadcast.config;
  faults : Faults.t;
  checkpoint_every : int;
  prune_every : int;
  prune_keep : int;
  repair_after : float;
  append_gap : float;
  seed : int64;
  metrics : Metrics.t option;
  flight_sink : out_channel option;
  flight_label : string;
}

let default_config =
  {
    servers = 3;
    txns = 600;
    wave = 16;
    pipeline =
      {
        Pipeline.premeld = Some { Premeld.threads = 2; distance = 4 };
        group_size = 2;
      };
    runtime = Runtime.sequential;
    workload =
      {
        Ycsb.default with
        record_count = 10_000;
        payload_size = 32;
        ops_per_txn = 8;
        update_fraction = 0.5;
      };
    (* one intention = one log block, so a broadcast gap is repairable
       with a single CORFU read *)
    corfu = { Corfu.default_config with block_size = 65536 };
    broadcast = Broadcast.default_config;
    faults = Faults.none;
    checkpoint_every = 64;
    prune_every = 32;
    prune_keep = 64;
    repair_after = 1.0e-3;
    append_gap = 2.0e-5;
    seed = 0xC0FFEEL;
    metrics = None;
    flight_sink = None;
    flight_label = "chaos";
  }

type replica_report = {
  id : int;
  alive : bool;
  melded : int;
  tree_digest : string;
  counters_digest : string;
  commits : int;
  aborts : int;
  crashes : int;
  checkpoints : int;
  last_checkpoint_pos : int;
  restarted_from_pos : int;
  replayed : int;
  repair_reads : int;
  duplicates_ignored : int;
  missed_while_down : int;
  caught_up_in : float;
  decision_mismatches : int;
}

type result = {
  log_length : int;
  converged : bool;
  baseline_tree_digest : string;
  baseline_counters_digest : string;
  baseline_commits : int;
  baseline_aborts : int;
  replicas : replica_report list;
  dropped : int;
  duplicated : int;
  delayed : int;
  read_retries : int;
  stalls : int;
  sim_seconds : float;
}

(* Digest of everything in the counters that must be bit-identical across
   replicas, backends and crash/recovery — i.e. everything except wall-clock
   seconds, which measure the host, not the computation. *)
let counters_digest (c : Counters.t) =
  let b = Buffer.create 256 in
  let stage name (s : Counters.stage) =
    Printf.bprintf b "%s:%d/%d/%d/%d/%d;" name s.Counters.intentions
      s.Counters.nodes_visited s.Counters.ephemerals s.Counters.grafts
      s.Counters.aborts
  in
  let summary name s =
    Printf.bprintf b "%s:%d/%.17g;" name (Stats.Summary.count s)
      (Stats.Summary.total s)
  in
  stage "ds" c.Counters.deserialize;
  Array.iteri
    (fun i s -> stage (Printf.sprintf "pm%d" (i + 1)) s)
    c.Counters.premeld_shards;
  stage "gm" c.Counters.group_meld;
  stage "fm" c.Counters.final_meld;
  Printf.bprintf b "committed:%d;aborted:%d;" c.Counters.committed
    c.Counters.aborted;
  summary "conflict_zone" c.Counters.conflict_zone;
  summary "fm_nodes" c.Counters.fm_nodes_per_txn;
  summary "bytes" c.Counters.intention_bytes;
  Digest.to_hex (Digest.string (Buffer.contents b))

let premeld_window (cfg : config) =
  match cfg.pipeline.Pipeline.premeld with
  | None -> 0
  | Some p -> p.Premeld.threads * p.Premeld.distance

let validate (cfg : config) =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  if cfg.servers < 1 then fail "Replica: servers must be >= 1";
  if cfg.txns < 1 then fail "Replica: txns must be >= 1";
  if cfg.wave < 1 then fail "Replica: wave must be >= 1";
  if cfg.checkpoint_every < 1 then fail "Replica: checkpoint_every must be >= 1";
  if cfg.prune_every < 1 then fail "Replica: prune_every must be >= 1";
  if cfg.append_gap <= 0.0 then fail "Replica: append_gap must be > 0";
  if cfg.repair_after <= 0.0 then fail "Replica: repair_after must be > 0";
  let floor =
    cfg.wave + premeld_window cfg + cfg.pipeline.Pipeline.group_size + 2
  in
  if cfg.prune_keep < floor then
    fail
      "Replica: prune_keep = %d starves decode/premeld arithmetic; need >= \
       wave + premeld window + group_size + 2 = %d"
      cfg.prune_keep floor

(* The prune/checkpoint cadence is a pure function of the melded log
   position, so every replica — including one rebuilt from a checkpoint —
   maintains a bit-identical retention window.  Any drift here would show
   up as diverging premeld snapshot arithmetic and break convergence. *)
let due ~every pos = (pos + 1) mod every = 0

(* {1 Phase A: deterministic workload generation + fault-free baseline}

   One sequential pipeline plays "the cluster without faults": waves of
   transactions execute concurrently against the wave-start LCS (so they
   genuinely conflict), are encoded, framed and melded through the same
   wire path the replicas use.  Its decisions, final tree and counters are
   the ground truth every faulty replica must reproduce bit-for-bit. *)

type generated = {
  genesis : Tree.t;
  blocks : string array;  (** framed wire block per log position *)
  origins : int array;  (** issuing server per log position *)
  baseline : (int * int * bool) array;
      (** per position: (server, txn_seq, committed) *)
  base_tree_digest : string;
  base_counters_digest : string;
  base_commits : int;
  base_aborts : int;
}

let generate (cfg : config) =
  let workload = Ycsb.create ~seed:cfg.seed cfg.workload in
  let genesis = Ycsb.genesis workload in
  let pl = Pipeline.create ~config:cfg.pipeline ~genesis () in
  let blocks = ref [] and origins = ref [] in
  let decisions : (int, int * int * bool) Hashtbl.t = Hashtbl.create 64 in
  let record ds =
    List.iter
      (fun (d : Pipeline.decision) ->
        Hashtbl.replace decisions d.Pipeline.pos
          (d.Pipeline.server, d.Pipeline.txn_seq, d.Pipeline.committed))
      ds
  in
  let npos = ref 0 and txn_seq = ref 0 and appended = ref 0 in
  while !appended < cfg.txns do
    let _, lcs_pos, lcs_tree = Pipeline.lcs pl in
    let want = min cfg.wave (cfg.txns - !appended) in
    (* Execute the whole wave against the wave-start state before melding
       any member, the way concurrently issuing servers would. *)
    let drafts = ref [] in
    for i = 0 to want - 1 do
      let origin = (!appended + i) mod cfg.servers in
      let ts = !txn_seq in
      incr txn_seq;
      let e =
        Executor.begin_txn ~snapshot_pos:lcs_pos ~snapshot:lcs_tree
          ~server:origin ~txn_seq:ts ~isolation:cfg.workload.Ycsb.isolation ()
      in
      Ycsb.apply (Ycsb.next_write_txn workload) e;
      match Executor.finish e with
      | Some draft -> drafts := (origin, ts, draft) :: !drafts
      | None ->
          failwith
            "Replica.generate: read-only draft; the workload needs \
             update_fraction > 0"
    done;
    List.iter
      (fun (origin, ts, draft) ->
        let bytes = Codec.encode draft in
        let framed =
          match
            Codec.Blocks.split ~block_size:cfg.corfu.Corfu.block_size
              ~server:origin ~txn_seq:ts bytes
          with
          | [ b ] -> b
          | l ->
              failwith
                (Printf.sprintf
                   "Replica.generate: intention of %d bytes needs %d blocks; \
                    raise corfu.block_size"
                   (String.length bytes) (List.length l))
        in
        let pos = !npos in
        incr npos;
        incr appended;
        blocks := framed :: !blocks;
        origins := origin :: !origins;
        record (Pipeline.submit_wire_batch pl [ (pos, bytes) ]);
        if due ~every:cfg.prune_every pos then
          Pipeline.prune pl ~keep:cfg.prune_keep)
      (List.rev !drafts)
  done;
  record (Pipeline.flush pl);
  let n = !npos in
  let baseline =
    Array.init n (fun pos ->
        match Hashtbl.find_opt decisions pos with
        | Some d -> d
        | None ->
            failwith
              (Printf.sprintf "Replica.generate: position %d never decided" pos))
  in
  let _, _, tree = Pipeline.lcs pl in
  let c = Pipeline.counters pl in
  {
    genesis;
    blocks = Array.of_list (List.rev !blocks);
    origins = Array.of_list (List.rev !origins);
    baseline;
    base_tree_digest = Tree.digest tree;
    base_counters_digest = counters_digest c;
    base_commits = c.Counters.committed;
    base_aborts = c.Counters.aborted;
  }

(* {1 Phase B: the faulty cluster} *)

type rep = {
  id : int;
  mutable pl : Pipeline.t;
  mutable reasm : Codec.Blocks.Reassembler.t;
  buffer : (int, string) Hashtbl.t;
      (** reassembled intentions at positions > the next to meld *)
  mutable next_pos : int;
  mutable down : bool;
  mutable pending_restarts : int;
  mutable replaying : bool;
  mutable replay_target : int;
  mutable restart_time : float;
  mutable repair_in_flight : bool;
  mutable gap_timer : bool;
  mutable last_ckpt : Checkpoint.t option;
  mutable restarted_from : int;
  mutable checkpoints : int;
  mutable crashes : int;
  mutable replayed : int;
  mutable repair_reads : int;
  mutable dup_ignored : int;
  mutable missed_down : int;
  mutable caught_up_in : float;
  mutable mismatches : int;
  decided : (int, bool) Hashtbl.t;
  flight : Flight.t;
      (** per-replica recorder: records are keyed by log position and every
          replica melds every position, so replicas sharing one recorder
          would stamp each other's records; the sink is shared, the label
          disambiguates ([<flight_label>/r<id>]).  Survives crash/restart —
          the rebuilt pipeline reuses it, so a replayed position emits a
          second record (the replay is real work). *)
}

let run (cfg : config) =
  validate cfg;
  let g = generate cfg in
  let n = Array.length g.blocks in
  let eng = Engine.create () in
  let corfu = Corfu.create ~config:cfg.corfu ~faults:cfg.faults eng in
  let bcast =
    Broadcast.create ~config:cfg.broadcast ~faults:cfg.faults eng
      ~senders:cfg.servers ~receivers:cfg.servers
  in
  let fresh_pipeline ?(flight = Flight.disabled) () =
    Pipeline.create ~config:cfg.pipeline ~runtime:cfg.runtime ~flight
      ~genesis:g.genesis ()
  in
  let flight_for id =
    match cfg.flight_sink with
    | None -> Flight.disabled
    | Some oc ->
        Flight.create
          ~label:(Printf.sprintf "%s/r%d" cfg.flight_label id)
          ?metrics:cfg.metrics ~sink:oc ()
  in
  let reps =
    Array.init cfg.servers (fun id ->
        let flight = flight_for id in
        {
          id;
          pl = fresh_pipeline ~flight ();
          reasm = Codec.Blocks.Reassembler.create ();
          buffer = Hashtbl.create 16;
          next_pos = 0;
          down = false;
          pending_restarts = 0;
          replaying = false;
          replay_target = -1;
          restart_time = 0.0;
          repair_in_flight = false;
          gap_timer = false;
          last_ckpt = None;
          restarted_from = -2;
          checkpoints = 0;
          crashes = 0;
          replayed = 0;
          repair_reads = 0;
          dup_ignored = 0;
          missed_down = 0;
          caught_up_in = 0.0;
          mismatches = 0;
          decided = Hashtbl.create 64;
          flight;
        })
  in
  let record_decisions r ds =
    List.iter
      (fun (d : Pipeline.decision) ->
        let pos = d.Pipeline.pos in
        (if pos >= 0 && pos < n then
           let bs, bt, bc = g.baseline.(pos) in
           if
             bs <> d.Pipeline.server || bt <> d.Pipeline.txn_seq
             || bc <> d.Pipeline.committed
           then r.mismatches <- r.mismatches + 1);
        (* re-melding after a crash must reproduce the same decision *)
        match Hashtbl.find_opt r.decided pos with
        | Some prev ->
            if prev <> d.Pipeline.committed then
              r.mismatches <- r.mismatches + 1
        | None -> Hashtbl.replace r.decided pos d.Pipeline.committed)
      ds
  in
  let maintenance r pos =
    if due ~every:cfg.prune_every pos then
      Pipeline.prune r.pl ~keep:cfg.prune_keep;
    if due ~every:cfg.checkpoint_every pos then
      match Pipeline.checkpoint r.pl with
      | Some c ->
          r.last_ckpt <- Some c;
          r.checkpoints <- r.checkpoints + 1
      | None -> () (* mid-group; next boundary will do *)
  in
  let rec drain r =
    if not r.down then
      match Hashtbl.find_opt r.buffer r.next_pos with
      | Some bytes ->
          let pos = r.next_pos in
          Hashtbl.remove r.buffer pos;
          record_decisions r (Pipeline.submit_wire_batch r.pl [ (pos, bytes) ]);
          if r.replaying then r.replayed <- r.replayed + 1;
          r.next_pos <- pos + 1;
          maintenance r pos;
          if r.replaying && r.next_pos > r.replay_target then begin
            r.replaying <- false;
            r.caught_up_in <-
              r.caught_up_in +. (Engine.now eng -. r.restart_time)
          end;
          drain r
      | None -> arm_gap_timer r
  and arm_gap_timer r =
    (* A later position is buffered but the next one is missing: give the
       broadcast [repair_after] to close the gap by itself (out-of-order
       durability is routine), then fall back to the log. *)
    if
      (not r.down) && (not r.replaying) && (not r.gap_timer) && r.next_pos < n
      && Hashtbl.length r.buffer > 0
    then begin
      r.gap_timer <- true;
      let target = r.next_pos in
      Engine.schedule eng ~delay:cfg.repair_after (fun () ->
          r.gap_timer <- false;
          if
            (not r.down) && (not r.replaying) && r.next_pos = target
            && not (Hashtbl.mem r.buffer target)
          then repair r;
          arm_gap_timer r)
    end
  and repair r =
    if (not r.repair_in_flight) && r.next_pos < Corfu.length corfu then begin
      r.repair_in_flight <- true;
      let target = r.next_pos in
      r.repair_reads <- r.repair_reads + 1;
      Corfu.read corfu target (fun block ->
          r.repair_in_flight <- false;
          if (not r.down) && (not r.replaying) && r.next_pos = target then
            ingest r ~pos:target block)
    end
  and ingest r ~pos block =
    if r.down then r.missed_down <- r.missed_down + 1
    else if pos < r.next_pos || Hashtbl.mem r.buffer pos then
      r.dup_ignored <- r.dup_ignored + 1
    else begin
      (match Codec.Blocks.Reassembler.feed r.reasm ~pos block with
      | Some (ipos, bytes) ->
          assert (ipos = pos);
          Hashtbl.replace r.buffer pos bytes
      | None ->
          failwith
            "Replica: multi-block intention on the wire (raise \
             corfu.block_size)");
      drain r
    end
  and replay_step r =
    if (not r.down) && r.replaying then
      if r.next_pos > r.replay_target then () (* drain cleared the flag *)
      else begin
        let target = r.next_pos in
        Corfu.read corfu target (fun block ->
            if (not r.down) && r.replaying then begin
              (* a live delivery may have melded [target] meanwhile *)
              if r.next_pos = target then ingest r ~pos:target block;
              replay_step r
            end)
      end
  and restart r =
    r.pending_restarts <- r.pending_restarts - 1;
    if r.down then begin
      r.down <- false;
      r.restart_time <- Engine.now eng;
      let pl, start_pos =
        match r.last_ckpt with
        | Some c ->
            ( Pipeline.restore ~config:cfg.pipeline ~runtime:cfg.runtime
                ~flight:r.flight c,
              c.Checkpoint.pos + 1 )
        | None -> (fresh_pipeline ~flight:r.flight (), 0)
      in
      r.restarted_from <- start_pos - 1;
      r.pl <- pl;
      r.reasm <- Codec.Blocks.Reassembler.create ();
      Hashtbl.reset r.buffer;
      r.next_pos <- start_pos;
      let tail = Corfu.length corfu - 1 in
      r.replay_target <- tail;
      if tail >= start_pos then begin
        r.replaying <- true;
        replay_step r
      end
    end
  in
  let crash r =
    if not r.down then begin
      r.down <- true;
      r.crashes <- r.crashes + 1;
      r.replaying <- false;
      Pipeline.shutdown r.pl;
      Hashtbl.reset r.buffer;
      r.reasm <- Codec.Blocks.Reassembler.create ()
    end
  in
  (* publisher: appends paced on the simulated clock; the constant
     client->sequencer hop preserves schedule order, so position = index *)
  Array.iteri
    (fun pos block ->
      Engine.schedule_at eng
        ~time:(Float.of_int pos *. cfg.append_gap)
        (fun () ->
          Corfu.append corfu block (fun assigned ->
              if assigned <> pos then failwith "Replica: log position drift";
              Broadcast.send bcast ~from:g.origins.(pos)
                ~size:(String.length block) (fun ~receiver ->
                  ingest reps.(receiver) ~pos block))))
    g.blocks;
  (* crash/restart schedule *)
  List.iter
    (fun (c : Faults.crash) ->
      if c.Faults.server >= 0 && c.Faults.server < cfg.servers then begin
        let r = reps.(c.Faults.server) in
        r.pending_restarts <- r.pending_restarts + 1;
        Engine.schedule_at eng ~time:c.Faults.at (fun () -> crash r);
        Engine.schedule_at eng
          ~time:(c.Faults.at +. c.Faults.restart_after)
          (fun () -> restart r)
      end)
    (Faults.crashes cfg.faults);
  (* tail sweep: once the publisher is done, a dropped delivery with no
     later arrival leaves no gap signal — poll the log until caught up *)
  let sweep_start = (Float.of_int n *. cfg.append_gap) +. cfg.repair_after in
  Array.iter
    (fun r ->
      let rec sweep () =
        if r.next_pos < n && ((not r.down) || r.pending_restarts > 0) then begin
          if
            (not r.down) && (not r.replaying)
            && not (Hashtbl.mem r.buffer r.next_pos)
          then repair r;
          Engine.schedule eng ~delay:cfg.repair_after sweep
        end
      in
      Engine.schedule_at eng ~time:sweep_start sweep)
    reps;
  Engine.run eng;
  let sim_seconds = Engine.now eng in
  Array.iter
    (fun r -> if not r.down then record_decisions r (Pipeline.flush r.pl))
    reps;
  let reports =
    Array.to_list
      (Array.map
         (fun r ->
           let _, _, tree = Pipeline.lcs r.pl in
           let c = Pipeline.counters r.pl in
           {
             id = r.id;
             alive = not r.down;
             melded = r.next_pos;
             tree_digest = Tree.digest tree;
             counters_digest = counters_digest c;
             commits = c.Counters.committed;
             aborts = c.Counters.aborted;
             crashes = r.crashes;
             checkpoints = r.checkpoints;
             last_checkpoint_pos =
               (match r.last_ckpt with
               | Some c -> c.Checkpoint.pos
               | None -> -1);
             restarted_from_pos = r.restarted_from;
             replayed = r.replayed;
             repair_reads = r.repair_reads;
             duplicates_ignored = r.dup_ignored;
             missed_while_down = r.missed_down;
             caught_up_in = r.caught_up_in;
             decision_mismatches = r.mismatches;
           })
         reps)
  in
  let converged =
    Array.for_all
      (fun r -> (not r.down) && r.next_pos = n && r.mismatches = 0)
      reps
    && List.for_all
         (fun rep ->
           rep.tree_digest = g.base_tree_digest
           && rep.counters_digest = g.base_counters_digest)
         reports
  in
  (match cfg.metrics with
  | None -> ()
  | Some m ->
      let add name v = Metrics.Counter.incr ~by:v (Metrics.counter m name) in
      let sum f = Array.fold_left (fun acc r -> acc + f r) 0 reps in
      add "recovery_repair_reads" (sum (fun r -> r.repair_reads));
      add "recovery_duplicates_ignored" (sum (fun r -> r.dup_ignored));
      add "recovery_crashes" (sum (fun r -> r.crashes));
      add "recovery_checkpoints" (sum (fun r -> r.checkpoints));
      add "broadcast_messages_dropped" (Broadcast.messages_dropped bcast);
      add "broadcast_messages_duplicated" (Broadcast.messages_duplicated bcast);
      add "broadcast_messages_delayed" (Broadcast.messages_delayed bcast);
      add "corfu_read_retries" (Corfu.read_retries corfu);
      add "corfu_stalls_injected" (Corfu.stalls_injected corfu);
      Array.iter
        (fun r ->
          if r.crashes > 0 then begin
            Metrics.Histogram.observe
              (Metrics.histogram m "recovery_replay_length")
              (Float.of_int r.replayed);
            Metrics.Histogram.observe
              (Metrics.histogram m "recovery_time_to_caught_up_seconds")
              r.caught_up_in
          end)
        reps);
  Array.iter (fun r -> Flight.export_percentiles r.flight) reps;
  Array.iter (fun r -> Pipeline.shutdown r.pl) reps;
  {
    log_length = n;
    converged;
    baseline_tree_digest = g.base_tree_digest;
    baseline_counters_digest = g.base_counters_digest;
    baseline_commits = g.base_commits;
    baseline_aborts = g.base_aborts;
    replicas = reports;
    dropped = Broadcast.messages_dropped bcast;
    duplicated = Broadcast.messages_duplicated bcast;
    delayed = Broadcast.messages_delayed bcast;
    read_retries = Corfu.read_retries corfu;
    stalls = Corfu.stalls_injected corfu;
    sim_seconds;
  }

let replica_to_json (r : replica_report) =
  Json.Obj
    [
      ("id", Json.Int r.id);
      ("alive", Json.Bool r.alive);
      ("melded", Json.Int r.melded);
      ("tree_digest", Json.String r.tree_digest);
      ("counters_digest", Json.String r.counters_digest);
      ("commits", Json.Int r.commits);
      ("aborts", Json.Int r.aborts);
      ("crashes", Json.Int r.crashes);
      ("checkpoints", Json.Int r.checkpoints);
      ("last_checkpoint_pos", Json.Int r.last_checkpoint_pos);
      ("restarted_from_pos", Json.Int r.restarted_from_pos);
      ("replayed", Json.Int r.replayed);
      ("repair_reads", Json.Int r.repair_reads);
      ("duplicates_ignored", Json.Int r.duplicates_ignored);
      ("missed_while_down", Json.Int r.missed_while_down);
      ("caught_up_in_seconds", Json.Float r.caught_up_in);
      ("decision_mismatches", Json.Int r.decision_mismatches);
    ]

let result_to_json (t : result) =
  Json.Obj
    [
      ("log_length", Json.Int t.log_length);
      ("converged", Json.Bool t.converged);
      ("baseline_tree_digest", Json.String t.baseline_tree_digest);
      ("baseline_counters_digest", Json.String t.baseline_counters_digest);
      ("baseline_commits", Json.Int t.baseline_commits);
      ("baseline_aborts", Json.Int t.baseline_aborts);
      ("messages_dropped", Json.Int t.dropped);
      ("messages_duplicated", Json.Int t.duplicated);
      ("messages_delayed", Json.Int t.delayed);
      ("corfu_read_retries", Json.Int t.read_retries);
      ("corfu_stalls_injected", Json.Int t.stalls);
      ("sim_seconds", Json.Float t.sim_seconds);
      ("replicas", Json.List (List.map replica_to_json t.replicas));
    ]

let pp ppf (t : result) =
  Format.fprintf ppf
    "chaos: %d positions, %s | dropped %d dup %d delayed %d retries %d \
     stalls %d | sim %.4fs@\n"
    t.log_length
    (if t.converged then "CONVERGED" else "DIVERGED")
    t.dropped t.duplicated t.delayed t.read_retries t.stalls t.sim_seconds;
  Format.fprintf ppf "baseline: commits %d aborts %d tree %s@\n"
    t.baseline_commits t.baseline_aborts t.baseline_tree_digest;
  List.iter
    (fun (r : replica_report) ->
      Format.fprintf ppf
        "  server %d: %s melded %d commits %d aborts %d crashes %d ckpts %d \
         replayed %d repairs %d dups %d caught-up %.4fs tree %s%s@\n"
        r.id
        (if r.alive then "up" else "DOWN")
        r.melded r.commits r.aborts r.crashes r.checkpoints r.replayed
        r.repair_reads r.duplicates_ignored r.caught_up_in r.tree_digest
        (if r.decision_mismatches > 0 then
           Printf.sprintf " MISMATCHES %d" r.decision_mismatches
         else ""))
    t.replicas
