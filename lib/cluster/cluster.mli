(** Hyder II cluster simulation.

    Replaces the paper's 20-server / 10 GbE / CORFU-on-SSD testbed
    (Section 6.1) with a hybrid of real execution and discrete-event
    simulation:

    - {b Semantics run for real.}  Transactions execute against real
      retained snapshots, intentions are really serialized, and one shared
      {!Hyder_core.Pipeline} really melds every intention in log order.
      Because the pipeline is deterministic (Section 3.4), all simulated
      servers would compute identical results, so running it once suffices;
      its measured per-stage CPU times parameterize every server's stage
      model.
    - {b Queueing is simulated.}  Per-server resources (general-purpose
      cores shared by executors / deserialization / broadcast handling, plus
      core-pinned premeld / group-meld / final-meld threads, Section 5.2),
      the CORFU log (sequencer + striped storage units) and the TCP-style
      broadcast mesh are discrete-event queueing stations.  The log order —
      and hence every commit/abort decision — emerges from simulated
      contention, exactly as conflict-zone lengths do in the real system.

    Executor threads are closed-loop with a bounded in-flight window
    (the paper's 20 threads x 80 in-flight admission control). *)

type config = {
  servers : int;
  write_threads : int;  (** update executor threads per server (paper: 20) *)
  read_threads : int;  (** read-only executor threads per server (Fig 14) *)
  inflight_per_thread : int;  (** admission window per thread (paper: 80) *)
  adaptive_admission : Admission.config option;
      (** [Some _] enables the AIMD admission controller (the paper's
          "future work" §5.2) instead of the fixed window *)
  cores_per_server : int;  (** paper: 16 physical cores / 32 logical *)
  pipeline : Hyder_core.Pipeline.config;
  runtime : Hyder_core.Runtime.backend;
      (** stage runtime for the real meld pipeline driving the simulation
          ([Sequential] by default).  [Parallel _] runs the real premeld
          trial melds on domains; decisions are identical by construction,
          so this knob exists to cross-check measured parallel premeld
          time against the simulator's modelled stage overlap *)
  corfu : Hyder_log.Corfu.config;
  broadcast : Hyder_log.Broadcast.config;
  workload : Hyder_workload.Ycsb.config;
  duration : float;  (** simulated seconds of measurement *)
  warmup : float;  (** simulated seconds before measurement starts *)
  seed : int64;
  trace : Hyder_obs.Trace.t;
      (** span recorder for the real pipeline's stages
          ({!Hyder_obs.Trace.disabled} by default — one branch per stage).
          Spans are timestamped in wall-clock seconds, the pipeline's own
          time base. *)
  metrics : Hyder_obs.Metrics.t option;
      (** when set, registers pipeline/runtime instruments, a
          [cluster_commit_latency_seconds] histogram (simulated seconds,
          draft to origin-server decision), a [cluster_log_appends]
          counter, per-reason [cluster_aborts_*] counters, the
          [trace_spans_dropped_total] counter (set at end of run from
          the recorder's exact drop accounting), and a periodic sampler
          of simulated queue depths (CORFU sequencer / storage units,
          broadcast NICs, blocked executor threads) plus process GC
          gauges ([gc_minor_collections], [gc_major_collections],
          [gc_promoted_words], [gc_heap_words], with
          [gc_sample_wall_seconds] carrying the wall-clock sample time
          for correlation with flight-record timestamps) *)
  flight : Hyder_obs.Flight.t;
      (** per-transaction flight recorder threaded into the real
          pipeline ({!Hyder_obs.Flight.disabled} by default).  Stage
          edges are wall-clock; the simulation additionally stamps its
          own clock onto each record (draft creation, log-order append,
          origin-server broadcast delivery) under the [sim] key. *)
}

val default_config : config
(** 6 servers, the Section 6.1 workload defaults, premeld off. *)

type result = {
  write_tps : float;  (** committed write transactions per simulated second *)
  read_tps : float;
  total_tps : float;
  commit_count : int;
  abort_count : int;
  abort_rate : float;
  fm_nodes_per_txn : float;  (** Figure 11 *)
  pm_nodes_per_txn : float;  (** Figure 13 *)
  gm_nodes_per_txn : float;
  conflict_zone_intentions : float;
  conflict_zone_blocks : float;  (** Figure 12 *)
  ephemerals_per_txn : float;  (** Figure 24 *)
  intention_bytes : float;
  blocks_per_intention : float;
  appends_per_sec : float;
  stage_us : float * float * float * float;
      (** mean (ds, pm, gm, fm) CPU microseconds per intention *)
  gc_minor_words_per_txn : float;
      (** process-wide minor-heap words allocated per melded intention
          over the measurement window (exact: from [Gc.minor_words]) *)
  gc_promoted_words_per_txn : float;
      (** words promoted to the major heap per melded intention (from
          [Gc.quick_stat]; advances only at minor collections) *)
  gc_major_words_per_txn : float;
      (** words allocated directly on the major heap per melded
          intention (same quantization) *)
  abort_reasons : (string * int) list;
      (** in-window aborts at their origin server, keyed by conflict kind
          ([write_conflict] / [read_conflict] / [phantom_conflict]),
          most frequent first *)
  handoff : Hyder_core.Pipeline.offload_stats option;
      (** stage-handoff accounting ([None] unless the runtime backend is
          [Pipelined]): ring publications vs items carried, doorbell
          wakeups actually paid, driver steals, and the adaptive
          controller's final batch/window *)
}

val run : config -> result
(** Run one experiment.  Wall-clock cost is dominated by really executing
    the write transactions and really melding their intentions once. *)

val pp_result : Format.formatter -> result -> unit

val result_to_json : result -> Hyder_obs.Json.t
(** Machine-readable form of {!result}, one key per field ([stage_us] and
    [abort_reasons] become nested objects). *)
