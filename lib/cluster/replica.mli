open Hyder_core

(** Chaos harness: crash recovery and gap repair under a seeded fault
    schedule.

    The architecture's claim under test: the CORFU log is the {e ground
    truth} and the broadcast merely an optimization, so any combination of
    dropped, duplicated or delayed deliveries, storage stalls, transient
    read failures and server crashes must leave every server — including
    one restarted from a checkpoint — with {e bit-identical} trees,
    ephemeral node ids and work counters, equal to a fault-free run's.

    The harness runs in two phases.  {b Phase A} generates the workload
    deterministically and melds it through one fault-free sequential
    pipeline: waves of transactions execute against the wave-start
    last-committed state (so they genuinely conflict), are encoded, framed
    into single log blocks and melded via the same wire path the replicas
    use.  Its decisions, final tree digest and counters digest are the
    baseline.  {b Phase B} replays the same blocks through the simulated
    cluster: a paced publisher appends them to CORFU and broadcasts each
    block on durability; every replica melds in log order, buffering
    out-of-order arrivals, repairing gaps from the log ({!Corfu.read})
    after [repair_after] of no progress, checkpointing every
    [checkpoint_every] melds and pruning every [prune_every] — both pure
    functions of log position, so all replicas (and a replica rebuilt from
    a checkpoint) keep identical retention windows.  A crashed replica
    loses everything but its last checkpoint; on restart it rebuilds the
    pipeline with {!Pipeline.restore} and replays the log suffix before
    rejoining the live feed. *)

type config = {
  servers : int;
  txns : int;  (** intentions appended to the log *)
  wave : int;  (** transactions executed against one snapshot *)
  pipeline : Pipeline.config;
  runtime : Runtime.backend;  (** replicas' meld backend *)
  workload : Hyder_workload.Ycsb.config;
  corfu : Hyder_log.Corfu.config;
  broadcast : Hyder_log.Broadcast.config;
  faults : Hyder_sim.Faults.t;
  checkpoint_every : int;
      (** capture a checkpoint after melding every this-many positions;
          multiples of [group_size] land on group boundaries *)
  prune_every : int;
  prune_keep : int;
  repair_after : float;
      (** simulated seconds a gap may age before a CORFU repair read *)
  append_gap : float;  (** publisher pacing between appends *)
  seed : int64;  (** workload seed (fault seed lives in [faults]) *)
  metrics : Hyder_obs.Metrics.t option;
      (** when given, recovery counters and histograms are registered *)
  flight_sink : out_channel option;
      (** when given, each replica gets its own flight recorder (records
          are keyed by log position and every replica melds every
          position, so a shared recorder would conflate them) streaming
          JSON lines to this shared channel, labeled
          [<flight_label>/r<id>].  Recorders survive crash/restart, so a
          replayed position emits a second record.  [None] (default) is
          the inert path. *)
  flight_label : string;
}

val default_config : config

type replica_report = {
  id : int;
  alive : bool;
  melded : int;  (** log positions melded (= log length when caught up) *)
  tree_digest : string;
  counters_digest : string;
  commits : int;
  aborts : int;
  crashes : int;
  checkpoints : int;
  last_checkpoint_pos : int;  (** -1 if none captured *)
  restarted_from_pos : int;
      (** checkpoint position the last restart resumed from: -1 when it
          restarted from scratch, -2 when it never restarted *)
  replayed : int;
      (** positions re-melded while catching up after restarts; bounded by
          the log suffix after [restarted_from_pos] *)
  repair_reads : int;  (** gap-repair reads from the log *)
  duplicates_ignored : int;
  missed_while_down : int;
  caught_up_in : float;  (** simulated seconds from restart to caught-up *)
  decision_mismatches : int;
      (** decisions disagreeing with the baseline or with this replica's
          own earlier decision for the same position — always 0 on a
          correct run *)
}

type result = {
  log_length : int;
  converged : bool;
      (** every replica alive, fully melded, mismatch-free, with tree and
          counters digests equal to the fault-free baseline's *)
  baseline_tree_digest : string;
  baseline_counters_digest : string;
  baseline_commits : int;
  baseline_aborts : int;
  replicas : replica_report list;
  dropped : int;
  duplicated : int;
  delayed : int;
  read_retries : int;
  stalls : int;
  sim_seconds : float;
}

val run : config -> result
(** Deterministic: a pure function of [config] (including the fault
    schedule), identical across runs and across runtime backends. *)

val counters_digest : Counters.t -> string
(** Digest over every deterministic counter — stage work records, commit
    and abort totals, summary counts and totals — excluding wall-clock
    seconds.  Equal digests mean the two pipelines did bit-identical
    work. *)

val result_to_json : result -> Hyder_obs.Json.t
val pp : Format.formatter -> result -> unit
