module Engine = Hyder_sim.Engine
module Resource = Hyder_sim.Resource
module Corfu = Hyder_log.Corfu
module Broadcast = Hyder_log.Broadcast
module Pipeline = Hyder_core.Pipeline
module Premeld = Hyder_core.Premeld
module Executor = Hyder_core.Executor
module State_store = Hyder_core.State_store
module Counters = Hyder_core.Counters
module Meld = Hyder_core.Meld
module I = Hyder_codec.Intention
module Codec = Hyder_codec.Codec
module Ycsb = Hyder_workload.Ycsb
module Summary = Hyder_util.Stats.Summary
module Trace = Hyder_obs.Trace
module Metrics = Hyder_obs.Metrics
module Flight = Hyder_obs.Flight
module Json = Hyder_obs.Json

type config = {
  servers : int;
  write_threads : int;
  read_threads : int;
  inflight_per_thread : int;
  adaptive_admission : Admission.config option;
      (** [Some _] replaces the fixed window with the AIMD controller *)
  cores_per_server : int;
  pipeline : Pipeline.config;
  runtime : Hyder_core.Runtime.backend;
      (** backend for the {e real} meld pipeline this simulation drives;
          the simulator's own stage-time model is unaffected, so [par:n]
          here lets measured parallel premeld be compared against the
          modelled stage overlap *)
  corfu : Corfu.config;
  broadcast : Broadcast.config;
  workload : Ycsb.config;
  duration : float;
  warmup : float;
  seed : int64;
  trace : Trace.t;
      (** span recorder threaded into the real pipeline; {!Trace.disabled}
          (the default) costs one branch per stage *)
  metrics : Metrics.t option;
      (** registry for pipeline/runtime instruments, the commit-latency
          histogram and the simulated queue-depth sampler *)
  flight : Flight.t;
      (** per-transaction flight recorder threaded into the real
          pipeline; {!Flight.disabled} (the default) costs one branch
          per lifecycle edge *)
}

let default_config =
  {
    servers = 6;
    write_threads = 20;
    read_threads = 0;
    inflight_per_thread = 80;
    adaptive_admission = None;
    (* The paper's servers have 16 physical cores / 32 logical processors
       (Section 6.1); stage threads pin to their own hardware threads and
       the general pool gets the rest. *)
    cores_per_server = 32;
    pipeline = Pipeline.plain;
    runtime = Hyder_core.Runtime.sequential;
    corfu = Corfu.default_config;
    broadcast = Broadcast.default_config;
    workload = Ycsb.default;
    duration = 1.0;
    warmup = 0.3;
    seed = 0x5EEDL;
    trace = Trace.disabled;
    metrics = None;
    flight = Flight.disabled;
  }

type result = {
  write_tps : float;
  read_tps : float;
  total_tps : float;
  commit_count : int;
  abort_count : int;
  abort_rate : float;
  fm_nodes_per_txn : float;
  pm_nodes_per_txn : float;
  gm_nodes_per_txn : float;
  conflict_zone_intentions : float;
  conflict_zone_blocks : float;
  ephemerals_per_txn : float;
  intention_bytes : float;
  blocks_per_intention : float;
  appends_per_sec : float;
  stage_us : float * float * float * float;
  gc_minor_words_per_txn : float;
  gc_promoted_words_per_txn : float;
  gc_major_words_per_txn : float;
  abort_reasons : (string * int) list;
  handoff : Pipeline.offload_stats option;
}

(* Per-intention bookkeeping shared between the real pipeline and the
   per-server stage models. *)
type info = {
  origin : int;
  thread : int;
  t_created : float;  (** simulated time the executor produced the draft *)
  snap_seq : int;  (** tracked so the snapshot state survives until decode *)
  mutable bytes : string;  (** encoded intention; dropped after decode *)
  byte_size : int;
  blocks : int;
  mutable seq : int;  (** -1 until the real pipeline accepted it *)
  mutable t_ds : float;
  mutable t_pm : float;
  mutable t_gm : float;
  mutable t_fm : float;  (** whole group's final meld, on the last member *)
  mutable premelded : bool;
  mutable decisions : Pipeline.decision list;  (** on the last member *)
  mutable pending_arrivals : int list;  (** servers whose ds awaits submit *)
}

type thread_state = { mutable inflight : int; mutable blocked : bool }

(* Cluster-level instruments, resolved once per run. *)
type cluster_inst = {
  h_commit_latency : Metrics.Histogram.t;
      (** simulated seconds from draft to origin-server commit delivery *)
  c_appends : Metrics.Counter.t;
  (* Abort-reason breakdown as scrapeable counters (the registry
     sanitizes label syntax away, so the reason is suffix-encoded). *)
  c_ab_write : Metrics.Counter.t;
  c_ab_read : Metrics.Counter.t;
  c_ab_phantom : Metrics.Counter.t;
  c_ab_unknown : Metrics.Counter.t;
}

type group_progress = {
  mutable done_members : int;
  mutable members : info list;  (** in seq order, reversed *)
}

type server = {
  general : Resource.t;
  pm_res : Resource.t array;
  gm_res : Resource.t;
  fm_res : Resource.t;
  mutable fm_done_seq : int;
  mutable next_fm_group : int;  (** first seq of the next group to meld *)
  admission : Admission.t option;
  fm_stash : (int, float * info list) Hashtbl.t;
  groups : (int, group_progress) Hashtbl.t;
  pm_blocked : (int, (unit -> unit) list) Hashtbl.t;
      (** premeld starts waiting for fm progress, bucketed by the state seq
          they need (Algorithm 1's wait) *)
  threads : thread_state array;
}

let now_wall () = Hyder_util.Clock.now ()

let run cfg =
  if cfg.servers <= 0 || cfg.write_threads < 0 || cfg.read_threads < 0 then
    invalid_arg "Cluster.run: bad config";
  (* The measured stage times parameterize the simulation, so GC pauses
     inflate them directly.  Like the paper's implementation (Section 5.3),
     we trade memory for predictability: a large minor heap and a lazier
     major collector. *)
  let prev_gc = Gc.get () in
  Gc.set { prev_gc with Gc.minor_heap_size = 16 * 1024 * 1024; space_overhead = 300 };
  Fun.protect ~finally:(fun () -> Gc.set prev_gc) @@ fun () ->
  let eng = Engine.create () in
  let corfu = Corfu.create ~config:cfg.corfu eng in
  let bcast =
    Broadcast.create ~config:cfg.broadcast eng ~senders:cfg.servers
      ~receivers:cfg.servers
  in
  let workload = Ycsb.create ~seed:cfg.seed cfg.workload in
  let genesis = Ycsb.genesis workload in
  let pipeline =
    Pipeline.create ~config:cfg.pipeline ~runtime:cfg.runtime ~trace:cfg.trace
      ~flight:cfg.flight ?metrics:cfg.metrics ~genesis ()
  in
  let inst =
    Option.map
      (fun m ->
        {
          h_commit_latency = Metrics.histogram m "cluster_commit_latency_seconds";
          c_appends = Metrics.counter m "cluster_log_appends";
          c_ab_write = Metrics.counter m "cluster_aborts_write_conflict";
          c_ab_read = Metrics.counter m "cluster_aborts_read_conflict";
          c_ab_phantom = Metrics.counter m "cluster_aborts_phantom_conflict";
          c_ab_unknown = Metrics.counter m "cluster_aborts_unknown";
        })
      cfg.metrics
  in
  Fun.protect ~finally:(fun () -> Pipeline.shutdown pipeline) @@ fun () ->
  (* All executor encodes run on the simulator's single driver thread, so
     one pooled encoder serves every server: each encode reuses the same
     power-of-two backing buffer instead of growing a fresh [Buffer]. *)
  let enc_pool = Hyder_util.Buf_pool.create () in
  let encoder = Codec.Encoder.create ~pool:enc_pool () in
  (* Return the encoder's backing buffer on every exit path and verify
     the pool's books balance: a run must end with zero pool-eligible
     buffers still checked out (leak) and never a negative balance
     (double release) — [Buf_pool] raises on the latter. *)
  Fun.protect ~finally:(fun () ->
      Codec.Encoder.free encoder;
      assert (Hyder_util.Buf_pool.in_flight enc_pool = 0))
  @@ fun () ->
  let states = Pipeline.states pipeline in
  let counters = Pipeline.counters pipeline in
  let pm_threads, pm_distance =
    match cfg.pipeline.Pipeline.premeld with
    | Some { Premeld.threads; distance } -> (threads, distance)
    | None -> (0, 0)
  in
  let group_size = cfg.pipeline.Pipeline.group_size in
  let rng = Hyder_util.Rng.create (Int64.lognot cfg.seed) in
  let stop_time = cfg.warmup +. cfg.duration in

  (* Per-server resources.  Premeld, group meld and final meld threads are
     core-pinned (Section 5.2); everything else shares the remaining
     cores. *)
  let dedicated = pm_threads + (if group_size > 1 then 1 else 0) + 1 in
  let general_cores = max 1 (cfg.cores_per_server - dedicated) in
  let servers =
    Array.init cfg.servers (fun _ ->
        {
          general = Resource.create eng ~servers:general_cores;
          pm_res =
            Array.init (max 1 pm_threads) (fun _ ->
                Resource.create eng ~servers:1);
          gm_res = Resource.create eng ~servers:1;
          fm_res = Resource.create eng ~servers:1;
          fm_done_seq = -1;
          next_fm_group = 0;
          admission =
            Option.map (fun c -> Admission.create ~config:c ())
              cfg.adaptive_admission;
          fm_stash = Hashtbl.create 64;
          groups = Hashtbl.create 64;
          pm_blocked = Hashtbl.create 256;
          threads =
            Array.init cfg.write_threads (fun _ ->
                { inflight = 0; blocked = false });
        })
  in

  (* seq -> log position of that intention, for executor snapshots. *)
  let pos_of_seq : (int, int) Hashtbl.t = Hashtbl.create 4096 in
  (* Outstanding snapshot seqs (for pruning retained states). *)
  let outstanding : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let track_snapshot seq =
    Hashtbl.replace outstanding seq
      (1 + Option.value ~default:0 (Hashtbl.find_opt outstanding seq))
  in
  let untrack_snapshot seq =
    match Hashtbl.find_opt outstanding seq with
    | Some 1 -> Hashtbl.remove outstanding seq
    | Some n -> Hashtbl.replace outstanding seq (n - 1)
    | None -> ()
  in
  let submit_count = ref 0 in
  let maybe_prune () =
    if !submit_count land 1023 = 0 then begin
      let lcs_seq, _, _ = Pipeline.lcs pipeline in
      let min_out =
        Hashtbl.fold (fun s _ acc -> min s acc) outstanding lcs_seq
      in
      let min_out = Array.fold_left (fun acc s -> min acc s.fm_done_seq) min_out servers in
      Pipeline.prune pipeline ~keep:(lcs_seq - min_out + 8)
    end
  in

  (* Measurement window counters. *)
  let in_window () =
    let t = Engine.now eng in
    t >= cfg.warmup && t < stop_time
  in
  let commits = ref 0 and aborts = ref 0 and reads_done = ref 0 in
  let abort_reasons_tbl : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let note_abort reason =
    let k =
      match reason with
      | None -> "unknown"
      | Some (Meld.Write_conflict _) -> "write_conflict"
      | Some (Meld.Read_conflict _) -> "read_conflict"
      | Some (Meld.Phantom_conflict _) -> "phantom_conflict"
    in
    (match inst with
    | None -> ()
    | Some i ->
        Metrics.Counter.incr
          (match reason with
          | None -> i.c_ab_unknown
          | Some (Meld.Write_conflict _) -> i.c_ab_write
          | Some (Meld.Read_conflict _) -> i.c_ab_read
          | Some (Meld.Phantom_conflict _) -> i.c_ab_phantom));
    Hashtbl.replace abort_reasons_tbl k
      (1 + Option.value ~default:0 (Hashtbl.find_opt abort_reasons_tbl k))
  in
  let appends = ref 0 and appends_in_window = ref 0 in
  let counters_at_window_start = ref None in
  let gc_at_window_start = ref None in
  let stage_sums = Array.make 4 0.0 in
  let stage_counts = Array.make 4 0 in
  let blocks_sum = ref 0 and blocks_count = ref 0 and bytes_sum = ref 0 in

  (* ---------------- real pipeline feeding (log order) ---------------- *)
  let next_feed_pos = ref 0 in
  let feed_buffer : (int, info option) Hashtbl.t = Hashtbl.create 256 in
  (* forward declaration for the per-server stage model *)
  let start_ds_ref = ref (fun _ _ -> ()) in

  (* Wall-clock measurements occasionally absorb a major-GC pause; the
     paper's implementation avoided this with per-thread memory pools
     (Section 5.3).  Clamp outliers so one pause cannot poison the
     simulated pipeline. *)
  let clamp_stage t = if t > 0.002 then 0.002 else t in
  let real_submit (info : info) pos =
    let ds0 = counters.Counters.deserialize.Counters.seconds in
    let intention = Pipeline.decode pipeline ~pos info.bytes in
    untrack_snapshot info.snap_seq;
    info.bytes <- "";
    (* The decode opened the flight record; stamp the simulated clock
       onto it before submit can complete (and close) it: when the
       executor drafted the transaction and when the log order reached
       its append. *)
    if Flight.enabled cfg.flight then begin
      Flight.sim_edge cfg.flight ~pos ~at:`Submit info.t_created;
      Flight.sim_edge cfg.flight ~pos ~at:`Append (Engine.now eng)
    end;
    info.t_ds <- clamp_stage (counters.Counters.deserialize.Counters.seconds -. ds0);
    let pm_before = Counters.premeld_total counters in
    let pm0 = pm_before.Counters.seconds in
    let pm_n0 = pm_before.Counters.intentions in
    let gm0 = counters.Counters.group_meld.Counters.seconds in
    let fm0 = counters.Counters.final_meld.Counters.seconds in
    let seq = !submit_count in
    incr submit_count;
    info.seq <- seq;
    (* submit_batch so a [Parallel] runtime's premeld really runs on its
       domain pool; under [Sequential] this is exactly [submit].  For any
       given log prefix the decisions are identical across backends, but
       the *measured* stage seconds parameterize the queueing model, so a
       backend's real scheduling cost shows up in the modelled throughput
       — which is what the --runtime knob exists to cross-check. *)
    let decisions = Pipeline.submit_batch pipeline [ intention ] in
    let pm_after = Counters.premeld_total counters in
    info.t_pm <- clamp_stage (pm_after.Counters.seconds -. pm0);
    info.premelded <- pm_after.Counters.intentions > pm_n0;
    info.t_gm <- clamp_stage (counters.Counters.group_meld.Counters.seconds -. gm0);
    info.t_fm <- clamp_stage (counters.Counters.final_meld.Counters.seconds -. fm0);
    info.decisions <- decisions;
    Hashtbl.replace pos_of_seq seq pos;
    if in_window () then begin
      stage_sums.(0) <- stage_sums.(0) +. info.t_ds;
      stage_sums.(1) <- stage_sums.(1) +. info.t_pm;
      stage_sums.(2) <- stage_sums.(2) +. info.t_gm;
      stage_sums.(3) <- stage_sums.(3) +. info.t_fm;
      for i = 0 to 3 do
        stage_counts.(i) <- stage_counts.(i) + 1
      done;
      blocks_sum := !blocks_sum + info.blocks;
      bytes_sum := !bytes_sum + info.byte_size;
      incr blocks_count
    end;
    maybe_prune ();
    (* Deserialization can now be modeled at every server whose broadcast
       copy arrived before the log order caught up. *)
    let waiters = info.pending_arrivals in
    info.pending_arrivals <- [];
    List.iter (fun s -> !start_ds_ref s info) waiters
  in
  let feed_block ~pos ~(last : info option) =
    Hashtbl.replace feed_buffer pos last;
    let continue = ref true in
    while !continue do
      match Hashtbl.find_opt feed_buffer !next_feed_pos with
      | None -> continue := false
      | Some entry ->
          Hashtbl.remove feed_buffer !next_feed_pos;
          (match entry with
          | Some info -> real_submit info !next_feed_pos
          | None -> ());
          incr next_feed_pos
    done
  in

  (* ---------------- per-server stage model ---------------- *)
  let thread_loop_ref = ref (fun _ _ -> ()) in
  let deliver_decisions s_idx (members : info list) =
    List.iter
      (fun (last : info) ->
        List.iter
          (fun (d : Pipeline.decision) ->
            (* Decisions live on the group's last member; route each to its
               origin thread when that origin's own fm reaches it. *)
            let member =
              List.find_opt (fun (m : info) -> m.seq = d.Pipeline.seq) members
            in
            match member with
            | Some m when m.origin = s_idx ->
                if in_window () then
                  if d.Pipeline.committed then incr commits
                  else begin
                    incr aborts;
                    note_abort d.Pipeline.reason
                  end;
                (match inst with
                | Some i when d.Pipeline.committed ->
                    Metrics.Histogram.observe i.h_commit_latency
                      (Engine.now eng -. m.t_created)
                | _ -> ());
                (match servers.(s_idx).admission with
                | Some a -> Admission.observe a ~committed:d.Pipeline.committed
                | None -> ());
                let th = servers.(s_idx).threads.(m.thread) in
                th.inflight <- th.inflight - 1;
                if th.blocked then begin
                  th.blocked <- false;
                  Engine.schedule eng ~delay:0.0 (fun () ->
                      !thread_loop_ref s_idx m.thread)
                end
            | _ -> ())
          last.decisions)
      members
  in

  let rec fm_try_start s_idx =
    let s = servers.(s_idx) in
    match Hashtbl.find_opt s.fm_stash s.next_fm_group with
    | None -> ()
    | Some (t_fm, members) ->
        Hashtbl.remove s.fm_stash s.next_fm_group;
        Resource.request s.fm_res ~service_time:t_fm (fun () ->
            let last_seq =
              List.fold_left (fun acc (m : info) -> max acc m.seq) (-1) members
            in
            let prev_done = s.fm_done_seq in
            s.fm_done_seq <- last_seq;
            s.next_fm_group <- last_seq + 1;
            deliver_decisions s_idx members;
            (* wake premelds waiting on state availability *)
            for m = prev_done + 1 to last_seq do
              match Hashtbl.find_opt s.pm_blocked m with
              | Some ks ->
                  Hashtbl.remove s.pm_blocked m;
                  List.iter (fun k -> k ()) ks
              | None -> ()
            done;
            fm_try_start s_idx)
  in
  let group_member_done s_idx (info : info) =
    let s = servers.(s_idx) in
    let first = info.seq / group_size * group_size in
    let g =
      match Hashtbl.find_opt s.groups first with
      | Some g -> g
      | None ->
          let g = { done_members = 0; members = [] } in
          Hashtbl.add s.groups first g;
          g
    in
    g.done_members <- g.done_members + 1;
    g.members <- info :: g.members;
    if g.done_members = group_size then begin
      Hashtbl.remove s.groups first;
      let members =
        List.sort (fun (a : info) b -> Int.compare a.seq b.seq) g.members
      in
      let t_fm =
        List.fold_left (fun acc (m : info) -> acc +. m.t_fm) 0.0 members
      in
      Hashtbl.replace s.fm_stash first (t_fm, members);
      fm_try_start s_idx
    end
  in
  let after_pm s_idx (info : info) =
    let s = servers.(s_idx) in
    if group_size <= 1 then begin
      Hashtbl.replace s.fm_stash info.seq (info.t_fm, [ info ]);
      fm_try_start s_idx
    end
    else
      Resource.request s.gm_res ~service_time:info.t_gm (fun () ->
          group_member_done s_idx info)
  in
  let pm_stage s_idx (info : info) =
    let s = servers.(s_idx) in
    if pm_threads = 0 || not info.premelded then after_pm s_idx info
    else begin
      let m = info.seq - (pm_threads * pm_distance) - 1 in
      let start () =
        let res = s.pm_res.(info.seq mod pm_threads) in
        Resource.request res ~service_time:info.t_pm (fun () ->
            after_pm s_idx info)
      in
      if m <= s.fm_done_seq then start ()
      else
        Hashtbl.replace s.pm_blocked m
          (start
          :: Option.value ~default:[] (Hashtbl.find_opt s.pm_blocked m))
    end
  in
  let start_ds s_idx (info : info) =
    let s = servers.(s_idx) in
    Resource.request s.general ~service_time:info.t_ds (fun () ->
        pm_stage s_idx info)
  in
  start_ds_ref := start_ds;

  let on_arrival s_idx (info : info) =
    if info.seq >= 0 then begin
      (* First post-append broadcast delivery: the earliest simulated time
         any server held both the payload and its log position.  [sim_edge]
         is first-wins for [`Deliver] and no-ops once the decision closed
         the record, so later copies never overwrite it. *)
      if Flight.enabled cfg.flight then
        (match Hashtbl.find_opt pos_of_seq info.seq with
        | Some pos ->
            Flight.sim_edge cfg.flight ~pos ~at:`Deliver (Engine.now eng)
        | None -> ());
      start_ds s_idx info
    end
    else info.pending_arrivals <- s_idx :: info.pending_arrivals
  in

  (* ---------------- executors ---------------- *)
  let measure_read_txn () =
    let seq, pos, tree = Pipeline.lcs pipeline in
    ignore seq;
    let t0 = now_wall () in
    let e =
      Executor.begin_txn ~snapshot_pos:pos ~snapshot:tree ~server:0 ~txn_seq:0
        ~isolation:cfg.workload.Ycsb.isolation ()
    in
    Ycsb.apply (Ycsb.next_read_only_txn workload) e;
    ignore (Executor.finish e);
    now_wall () -. t0
  in
  let read_time_estimate = ref 0.0 in
  let read_samples = ref 0 in

  let rec read_thread_loop s_idx () =
    if Engine.now eng < stop_time then begin
      let service =
        if !read_samples < 32 || !read_samples land 63 = 0 then begin
          let t = measure_read_txn () in
          incr read_samples;
          read_time_estimate :=
            !read_time_estimate +. ((t -. !read_time_estimate) /. 8.0);
          t
        end
        else begin
          incr read_samples;
          !read_time_estimate
        end
      in
      Resource.request servers.(s_idx).general ~service_time:service (fun () ->
          if in_window () then incr reads_done;
          read_thread_loop s_idx ())
    end
  in

  let txn_counter = ref 0 in
  let rec append_blocks info remaining k =
    if remaining = 0 then k ()
    else
      Corfu.append corfu "" (fun pos ->
          incr appends;
          (match inst with
          | Some i -> Metrics.Counter.incr i.c_appends
          | None -> ());
          if in_window () then incr appends_in_window;
          if remaining = 1 then begin
            (* Last block: its position names the intention. *)
            feed_block ~pos ~last:(Some info);
            k ();
            Broadcast.send bcast ~from:info.origin ~size:info.byte_size
              (fun ~receiver -> on_arrival receiver info)
          end
          else begin
            feed_block ~pos ~last:None;
            append_blocks info (remaining - 1) k
          end)
  in

  let rec write_thread_loop s_idx th_idx =
    if Engine.now eng < stop_time then begin
      let s = servers.(s_idx) in
      let th = s.threads.(th_idx) in
      let limit =
        match s.admission with
        | Some a -> Admission.window a
        | None -> cfg.inflight_per_thread
      in
      if th.inflight >= limit then th.blocked <- true
      else begin
        (* Execute the transaction for real against this server's current
           last-committed state. *)
        let snap_seq = s.fm_done_seq in
        let snap_pos =
          if snap_seq < 0 then -1
          else Option.value ~default:(-1) (Hashtbl.find_opt pos_of_seq snap_seq)
        in
        let snapshot =
          match State_store.by_seq states snap_seq with
          | Some t -> t
          | None -> failwith "Cluster: snapshot state pruned too early"
        in
        let t0 = now_wall () in
        incr txn_counter;
        let e =
          Executor.begin_txn ~snapshot_pos:snap_pos ~snapshot ~server:s_idx
            ~txn_seq:!txn_counter ~isolation:cfg.workload.Ycsb.isolation ()
        in
        Ycsb.apply (Ycsb.next_write_txn workload) e;
        match Executor.finish e with
        | None ->
            (* degenerate all-read spec: treat as a read txn *)
            let t_exec = now_wall () -. t0 in
            Resource.request s.general ~service_time:t_exec (fun () ->
                write_thread_loop s_idx th_idx)
        | Some draft ->
            let bytes = Codec.Encoder.encode encoder draft in
            let t_exec = clamp_stage (now_wall () -. t0) in
            let byte_size = String.length bytes in
            let blocks =
              Codec.Blocks.blocks_needed
                ~block_size:cfg.corfu.Corfu.block_size byte_size
            in
            let info =
              {
                origin = s_idx;
                thread = th_idx;
                t_created = Engine.now eng;
                snap_seq;
                bytes;
                byte_size;
                blocks;
                seq = -1;
                t_ds = 0.0;
                t_pm = 0.0;
                t_gm = 0.0;
                t_fm = 0.0;
                premelded = false;
                decisions = [];
                pending_arrivals = [];
              }
            in
            th.inflight <- th.inflight + 1;
            track_snapshot snap_seq;
            Resource.request s.general ~service_time:t_exec (fun () ->
                append_blocks info info.blocks (fun () -> ());
                (* The executor moves on without waiting for the append or
                   the commit decision (Section 5.2). *)
                write_thread_loop s_idx th_idx)
      end
    end
  in
  thread_loop_ref := (fun s th -> write_thread_loop s th);

  (* Stagger thread start times slightly so the log order is not trivially
     round-robin. *)
  Array.iteri
    (fun s_idx s ->
      Array.iteri
        (fun th_idx _ ->
          Engine.schedule eng
            ~delay:(Hyder_util.Rng.float rng 0.0002)
            (fun () -> write_thread_loop s_idx th_idx))
        s.threads;
      for _ = 1 to cfg.read_threads do
        Engine.schedule eng
          ~delay:(Hyder_util.Rng.float rng 0.0002)
          (fun () -> read_thread_loop s_idx ())
      done)
    servers;

  (* Periodic queue-depth sampler (simulated time): gauges hold the last
     sample, histograms the distribution over the measurement window. *)
  (match cfg.metrics with
  | None -> ()
  | Some m ->
      let g_seq = Metrics.gauge m "corfu_sequencer_queue" in
      let g_unit = Metrics.gauge m "corfu_unit_queue_max" in
      let g_nic = Metrics.gauge m "broadcast_nic_queue_max" in
      let g_inflight = Metrics.gauge m "corfu_appends_inflight" in
      let g_blocked = Metrics.gauge m "cluster_blocked_threads" in
      let h_seq = Metrics.histogram m "corfu_sequencer_queue_depth" in
      let h_unit = Metrics.histogram m "corfu_unit_queue_depth_max" in
      (* GC observer (same cadence as the queue-depth sampler): collection
         counts and promoted/heap words as gauges, plus the wall clock of
         the latest sample so GC activity can be correlated with
         flight-record timestamps (both use {!Hyder_util.Clock.now}). *)
      let g_gc_minor = Metrics.gauge m "gc_minor_collections" in
      let g_gc_major = Metrics.gauge m "gc_major_collections" in
      let g_gc_promoted = Metrics.gauge m "gc_promoted_words" in
      let g_gc_heap = Metrics.gauge m "gc_heap_words" in
      let g_gc_wall = Metrics.gauge m "gc_sample_wall_seconds" in
      let period = Float.max 1e-4 (cfg.duration /. 200.0) in
      let rec sample () =
        let sq = Corfu.sequencer_queue corfu in
        let uq = Corfu.max_unit_queue corfu in
        Metrics.Gauge.set g_seq (float_of_int sq);
        Metrics.Gauge.set g_unit (float_of_int uq);
        Metrics.Gauge.set g_nic (float_of_int (Broadcast.max_nic_queue bcast));
        Metrics.Gauge.set g_inflight
          (float_of_int (Corfu.appends_inflight corfu));
        let blocked =
          Array.fold_left
            (fun acc s ->
              Array.fold_left
                (fun a th -> if th.blocked then a + 1 else a)
                acc s.threads)
            0 servers
        in
        Metrics.Gauge.set g_blocked (float_of_int blocked);
        Metrics.Histogram.observe h_seq (float_of_int sq);
        Metrics.Histogram.observe h_unit (float_of_int uq);
        let gst = Gc.quick_stat () in
        Metrics.Gauge.set g_gc_minor (float_of_int gst.Gc.minor_collections);
        Metrics.Gauge.set g_gc_major (float_of_int gst.Gc.major_collections);
        Metrics.Gauge.set g_gc_promoted gst.Gc.promoted_words;
        Metrics.Gauge.set g_gc_heap (float_of_int gst.Gc.heap_words);
        Metrics.Gauge.set g_gc_wall (now_wall ());
        if Engine.now eng +. period < stop_time then
          Engine.schedule eng ~delay:period sample
      in
      Engine.schedule eng ~delay:cfg.warmup sample);

  (* Snapshot the work counters at the start of the measurement window so
     per-transaction statistics exclude warmup. *)
  Engine.schedule eng ~delay:cfg.warmup (fun () ->
      counters_at_window_start := Some (Counters.copy counters);
      (* [Gc.minor_words] is exact to the word (it adds the allocations
         made since the last minor collection); [quick_stat]'s promoted
         and major words advance only at collections, a quantization
         that is negligible over a whole measurement window. *)
      let st = Gc.quick_stat () in
      gc_at_window_start :=
        Some (Gc.minor_words (), st.Gc.promoted_words, st.Gc.major_words));

  Engine.run ~until:stop_time eng;

  (* Surface ring overflow as a metric so a truncated trace is never read
     as complete from the Prometheus side either (the Perfetto export
     carries its own in-band TRUNCATED marker). *)
  (match cfg.metrics with
  | Some m when Trace.enabled cfg.trace ->
      Metrics.Counter.incr
        (Metrics.counter m "trace_spans_dropped_total")
        ~by:(Trace.dropped cfg.trace)
  | _ -> ());
  Flight.export_percentiles cfg.flight;

  if Sys.getenv_opt "HYDER_CLUSTER_DEBUG" <> None then begin
    Printf.eprintf
      "DEBUG: t=%.3f pending=%d submits=%d feed_next=%d feed_buf=%d appends=%d\n"
      (Engine.now eng) (Engine.pending eng) !submit_count !next_feed_pos
      (Hashtbl.length feed_buffer) !appends;
    Array.iteri
      (fun i s ->
        let blocked =
          Array.fold_left
            (fun acc th -> if th.blocked then acc + 1 else acc)
            0 s.threads
        in
        Printf.eprintf
          "DEBUG: srv %d fm_done=%d next_fm_group=%d stash=%d groups=%d            pm_blocked=%d blocked_threads=%d gen_q=%d fm_q=%d\n"
          i s.fm_done_seq s.next_fm_group (Hashtbl.length s.fm_stash)
          (Hashtbl.length s.groups) (Hashtbl.length s.pm_blocked) blocked
          (Resource.queue_length s.general) (Resource.queue_length s.fm_res))
      servers
  end;

  (* ---------------- results ---------------- *)
  let base =
    match !counters_at_window_start with
    | Some c -> c
    | None -> Counters.create ()
  in
  let melded =
    counters.Counters.final_meld.Counters.intentions
    - base.Counters.final_meld.Counters.intentions
  in
  let melded_f = float_of_int (max 1 melded) in
  let per_txn stage base_stage =
    float_of_int (stage.Counters.nodes_visited - base_stage.Counters.nodes_visited)
    /. melded_f
  in
  let gc_minor_w, gc_promoted_w, gc_major_w =
    match !gc_at_window_start with
    | None -> (0.0, 0.0, 0.0)
    | Some (mw0, pw0, jw0) ->
        let st = Gc.quick_stat () in
        (Gc.minor_words () -. mw0, st.Gc.promoted_words -. pw0,
         st.Gc.major_words -. jw0)
  in
  let decided = !commits + !aborts in
  let write_tps = float_of_int !commits /. cfg.duration in
  let read_tps = float_of_int !reads_done /. cfg.duration in
  let avg_blocks =
    if !blocks_count = 0 then 0.0
    else float_of_int !blocks_sum /. float_of_int !blocks_count
  in
  let windowed_mean live base_summary =
    (* Counters.copy preserves the streaming summaries, so the window's
       own mean is the difference of the two accumulators. *)
    let n = Summary.count live - Summary.count base_summary in
    if n <= 0 then Summary.mean live
    else (Summary.total live -. Summary.total base_summary) /. float_of_int n
  in
  let cz =
    windowed_mean counters.Counters.conflict_zone base.Counters.conflict_zone
  in
  let stage_mean i =
    if stage_counts.(i) = 0 then 0.0
    else stage_sums.(i) /. float_of_int stage_counts.(i) *. 1e6
  in
  {
    write_tps;
    read_tps;
    total_tps = write_tps +. read_tps;
    commit_count = !commits;
    abort_count = !aborts;
    abort_rate =
      (if decided = 0 then 0.0
       else float_of_int !aborts /. float_of_int decided);
    fm_nodes_per_txn = per_txn counters.Counters.final_meld base.Counters.final_meld;
    pm_nodes_per_txn =
      per_txn (Counters.premeld_total counters) (Counters.premeld_total base);
    gm_nodes_per_txn = per_txn counters.Counters.group_meld base.Counters.group_meld;
    conflict_zone_intentions = cz;
    conflict_zone_blocks = cz *. avg_blocks;
    ephemerals_per_txn =
      float_of_int
        (counters.Counters.final_meld.Counters.ephemerals
        + (Counters.premeld_total counters).Counters.ephemerals
        + counters.Counters.group_meld.Counters.ephemerals
        - base.Counters.final_meld.Counters.ephemerals
        - (Counters.premeld_total base).Counters.ephemerals
        - base.Counters.group_meld.Counters.ephemerals)
      /. melded_f;
    intention_bytes =
      (if !blocks_count = 0 then 0.0
       else float_of_int !bytes_sum /. float_of_int !blocks_count);
    blocks_per_intention = avg_blocks;
    appends_per_sec = float_of_int !appends_in_window /. cfg.duration;
    stage_us = (stage_mean 0, stage_mean 1, stage_mean 2, stage_mean 3);
    gc_minor_words_per_txn = gc_minor_w /. melded_f;
    gc_promoted_words_per_txn = gc_promoted_w /. melded_f;
    gc_major_words_per_txn = gc_major_w /. melded_f;
    abort_reasons =
      Hashtbl.fold (fun k n acc -> (k, n) :: acc) abort_reasons_tbl []
      |> List.sort (fun (ka, na) (kb, nb) ->
             match Int.compare nb na with
             | 0 -> String.compare ka kb
             | c -> c);
    handoff = Pipeline.offload pipeline;
  }

let pp_result fmt r =
  let ds, pm, gm, fm = r.stage_us in
  Format.fprintf fmt
    "write %.0f tps, read %.0f tps, total %.0f tps; aborts %.2f%%; fm \
     %.1f nodes/txn; zone %.1f intentions (%.1f blocks); eph %.1f/txn; \
     intention %.0fB in %.1f blocks; %.0f appends/s; stages ds=%.1fus \
     pm=%.1fus gm=%.1fus fm=%.1fus; gc %.0f minor w/txn (%.0f promoted, \
     %.0f major)"
    r.write_tps r.read_tps r.total_tps
    (100.0 *. r.abort_rate)
    r.fm_nodes_per_txn r.conflict_zone_intentions r.conflict_zone_blocks
    r.ephemerals_per_txn r.intention_bytes r.blocks_per_intention
    r.appends_per_sec ds pm gm fm r.gc_minor_words_per_txn
    r.gc_promoted_words_per_txn r.gc_major_words_per_txn;
  (match r.abort_reasons with
  | [] -> ()
  | reasons ->
      Format.fprintf fmt "; abort reasons:";
      List.iter (fun (k, n) -> Format.fprintf fmt " %s=%d" k n) reasons);
  match r.handoff with
  | None -> ()
  | Some h ->
      Format.fprintf fmt
        "; handoff %d batches/%d items (%.1f per publication), %d doorbell \
         wakeups, %d steals, batch=%d window=%d (%d adjustments)"
        h.Pipeline.handoff_batches h.Pipeline.handoff_items
        (if h.Pipeline.handoff_batches = 0 then 0.0
         else
           float_of_int h.Pipeline.handoff_items
           /. float_of_int h.Pipeline.handoff_batches)
        h.Pipeline.doorbell_wakeups h.Pipeline.driver_steals
        h.Pipeline.adaptive_batch h.Pipeline.adaptive_window
        h.Pipeline.adaptive_adjustments

let result_to_json r =
  let ds, pm, gm, fm = r.stage_us in
  Json.Obj
    [
      ("write_tps", Json.Float r.write_tps);
      ("read_tps", Json.Float r.read_tps);
      ("total_tps", Json.Float r.total_tps);
      ("commit_count", Json.Int r.commit_count);
      ("abort_count", Json.Int r.abort_count);
      ("abort_rate", Json.Float r.abort_rate);
      ( "abort_reasons",
        Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) r.abort_reasons) );
      ("fm_nodes_per_txn", Json.Float r.fm_nodes_per_txn);
      ("pm_nodes_per_txn", Json.Float r.pm_nodes_per_txn);
      ("gm_nodes_per_txn", Json.Float r.gm_nodes_per_txn);
      ("conflict_zone_intentions", Json.Float r.conflict_zone_intentions);
      ("conflict_zone_blocks", Json.Float r.conflict_zone_blocks);
      ("ephemerals_per_txn", Json.Float r.ephemerals_per_txn);
      ("intention_bytes", Json.Float r.intention_bytes);
      ("blocks_per_intention", Json.Float r.blocks_per_intention);
      ("appends_per_sec", Json.Float r.appends_per_sec);
      ( "stage_us",
        Json.Obj
          [
            ("ds", Json.Float ds);
            ("pm", Json.Float pm);
            ("gm", Json.Float gm);
            ("fm", Json.Float fm);
          ] );
      ( "gc_words_per_txn",
        Json.Obj
          [
            ("minor", Json.Float r.gc_minor_words_per_txn);
            ("promoted", Json.Float r.gc_promoted_words_per_txn);
            ("major", Json.Float r.gc_major_words_per_txn);
          ] );
      ( "handoff",
        match r.handoff with
        | None -> Json.Null
        | Some h ->
            Json.Obj
              [
                ("batches", Json.Int h.Pipeline.handoff_batches);
                ("items", Json.Int h.Pipeline.handoff_items);
                ("doorbell_wakeups", Json.Int h.Pipeline.doorbell_wakeups);
                ("driver_steals", Json.Int h.Pipeline.driver_steals);
                ("ds_offloaded", Json.Int h.Pipeline.ds_offloaded);
                ("ds_inline", Json.Int h.Pipeline.ds_inline);
                ("max_queue_depth", Json.Int h.Pipeline.max_queue_depth);
                ("queue_capacity", Json.Int h.Pipeline.queue_capacity);
                ("adaptive_batch", Json.Int h.Pipeline.adaptive_batch);
                ("adaptive_window", Json.Int h.Pipeline.adaptive_window);
                ( "adaptive_adjustments",
                  Json.Int h.Pipeline.adaptive_adjustments );
              ] );
    ]
