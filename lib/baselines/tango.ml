open Hyder_tree
module Wire = Hyder_util.Wire

type record = { mutable value : string; mutable version : int }

type t = {
  table : (Key.t, record) Hashtbl.t;
  mutable next_version : int;
  mutable applied : int;
  mutable committed : int;
}

let create ~genesis =
  let table = Hashtbl.create (2 * Array.length genesis) in
  Array.iter
    (fun (k, v) -> Hashtbl.replace table k { value = v; version = 0 })
    genesis;
  { table; next_version = 1; applied = 0; committed = 0 }

type entry = {
  reads : (Key.t * int) list;  (** key, version observed *)
  writes : (Key.t * string) list;
}

module Txn = struct
  type store = t

  type t = {
    store : store;
    mutable reads : (Key.t * int) list;
    mutable writes : (Key.t * string) list;
  }

  let begin_ store = { store; reads = []; writes = [] }

  let read t k =
    match List.assoc_opt k t.writes with
    | Some v -> Some v
    | None -> (
        match Hashtbl.find_opt t.store.table k with
        | Some r ->
            t.reads <- (k, r.version) :: t.reads;
            Some r.value
        | None ->
            t.reads <- (k, -1) :: t.reads;
            None)

  let write t k v = t.writes <- (k, v) :: t.writes

  let finish t = { reads = List.rev t.reads; writes = List.rev t.writes }
end

let apply t entry =
  t.applied <- t.applied + 1;
  let current_version k =
    match Hashtbl.find_opt t.table k with Some r -> r.version | None -> -1
  in
  let valid =
    List.for_all (fun (k, v) -> current_version k = v) entry.reads
  in
  if valid then begin
    let version = t.next_version in
    t.next_version <- version + 1;
    List.iter
      (fun (k, value) ->
        match Hashtbl.find_opt t.table k with
        | Some r ->
            r.value <- value;
            r.version <- version
        | None -> Hashtbl.replace t.table k { value; version })
      entry.writes;
    t.committed <- t.committed + 1
  end;
  valid

let encoded_size entry =
  let w = Wire.Writer.create () in
  Wire.Writer.varint w (List.length entry.reads);
  List.iter
    (fun (k, v) ->
      Wire.Writer.varint w k;
      Wire.Writer.varint w (v + 1))
    entry.reads;
  Wire.Writer.varint w (List.length entry.writes);
  List.iter
    (fun (k, value) ->
      Wire.Writer.varint w k;
      Wire.Writer.bytes w value)
    entry.writes;
  Wire.Writer.length w

let size t = Hashtbl.length t.table

let lookup t k =
  match Hashtbl.find_opt t.table k with Some r -> Some r.value | None -> None

let applied t = t.applied
let committed t = t.committed

(* Windowed workload driver: entries are created against the current store
   and applied [window] entries later, modeling a bounded in-flight
   population the way the cluster's admission control does. *)
let run_workload ?(seed = 11L) ~records ~txns ~window ~reads_per_txn
    ~writes_per_txn () =
  let rng = Hyder_util.Rng.create seed in
  let store =
    create
      ~genesis:(Array.init records (fun k -> (k, "v" ^ string_of_int k)))
  in
  let pending = Queue.create () in
  let apply_seconds = ref 0.0 in
  let submitted = ref 0 in
  let apply_one () =
    let entry = Queue.pop pending in
    let t0 = Hyder_util.Clock.now () in
    ignore (apply store entry);
    apply_seconds := !apply_seconds +. Hyder_util.Clock.elapsed t0
  in
  while !submitted < txns do
    let txn = Txn.begin_ store in
    for _ = 1 to reads_per_txn do
      ignore (Txn.read txn (Hyder_util.Rng.int rng records))
    done;
    for _ = 1 to writes_per_txn do
      Txn.write txn (Hyder_util.Rng.int rng records) "updated"
    done;
    Queue.push (Txn.finish txn) pending;
    incr submitted;
    if Queue.length pending > window then apply_one ()
  done;
  while not (Queue.is_empty pending) do
    apply_one ()
  done;
  let apply_us = !apply_seconds /. float_of_int txns *. 1e6 in
  let abort_rate =
    float_of_int (applied store - committed store) /. float_of_int (applied store)
  in
  (apply_us, abort_rate)
