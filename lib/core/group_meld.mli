open Hyder_tree

(** Group meld (Section 4).

    Combines adjacent intentions into one {e group intention} so final meld
    processes their overlapping root paths once instead of twice.  Groups
    are formed deterministically by position in the intention sequence
    (numbers [g*k .. g*k + g - 1] form group [k]).

    Fate sharing: the group commits or aborts as a unit — except that when
    an earlier member's update conflicts with a later member, the later
    member alone aborts (it would have aborted anyway: the earlier member
    is inside its conflict zone, Figure 8) and the survivors form the
    group. *)

type member = {
  seq : int;
  intention : Hyder_codec.Intention.t;
  premeld_input : int option;
      (** input-state seq if the member was premelded *)
}

type group = {
  members : member list;  (** surviving members, in log order *)
  early_aborts : (member * Meld.abort_reason * [ `Premeld | `Group ]) list;
      (** members killed while forming the group, and by which stage *)
  root : Node.tree;  (** Empty iff no survivors *)
  member_positions : int list;  (** "inside" owners for final meld *)
  snapshot : int;  (** earliest member snapshot (log position) *)
  view : Hyder_codec.View.t option;
      (** flyweight of a still-unmaterialized singleton; [root] is a
          placeholder while set.  {!combine} walks the second group's
          view in place; the {e first} group must carry a real tree. *)
}

val single : ?premeld_input:int -> seq:int -> Hyder_codec.Intention.t -> group
(** A trivial group (group meld off, or a lone trailing intention). *)

val dead :
  ?premeld_input:int ->
  seq:int ->
  Hyder_codec.Intention.t ->
  Meld.abort_reason ->
  group
(** A group whose only member was already killed by premeld. *)

val combine :
  ?mz:(float -> unit) ->
  alloc:Vn.Alloc.t ->
  counters:Counters.stage ->
  group ->
  group ->
  group
(** Meld the second group's intention into the first's, in log order.
    The second group may still be a lazy view (walked in place); the
    first must be materialized.  [mz] observes view-materialization
    minor words (forwarded to {!Meld.meld}). *)
