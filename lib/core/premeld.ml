module Intention = Hyder_codec.Intention
module Trace = Hyder_obs.Trace
module Clock = Hyder_util.Clock

type config = { threads : int; distance : int }

let default_config = { threads = 5; distance = 10 }

let thread_for config ~seq =
  if config.threads <= 0 then invalid_arg "Premeld.thread_for";
  1 + (seq mod config.threads)

let input_seq config ~seq = seq - (config.threads * config.distance) - 1

type outcome =
  | Unchanged of Intention.t
  | Premelded of Intention.t * int
  | Dead of Meld.abort_reason

(* Pure trial-meld core: everything it touches is either owned by the
   caller's premeld thread (alloc, counters shard) or immutable (the input
   state tree, the intention), so it can run on any domain. *)
let trial ?(trace = Trace.disabled) ?mz config ~snap_seq ~lookup ~alloc
    ~counters ~seq (intention : Intention.t) =
  let m = input_seq config ~seq in
  if m <= snap_seq then Unchanged intention
  else begin
    let state =
      match lookup m with
      | Some s -> s
      | None ->
          failwith
            (Printf.sprintf "Premeld.trial: state %d not retained (seq %d)" m
               seq)
    in
    counters.Counters.intentions <- counters.Counters.intentions + 1;
    (* Tracing is observational only: it reads the clock and the counter
       shard, never the meld inputs, so the outcome is unchanged. *)
    let traced = Trace.enabled trace in
    let t0 = if traced then Clock.now () else 0.0 in
    let nodes_before = counters.Counters.nodes_visited in
    let outcome =
      match
        Meld.meld
          ~mode:(Meld.Transaction { out_owner = intention.pos })
          ?intention_view:intention.view ?mz ~members:[ intention.pos ] ~alloc
          ~counters ~intention:intention.root ~state ()
      with
      (* A premelded intention is a real tree from here on — drop the
         view so no one walks stale wire bytes. *)
      | Meld.Merged root -> Premelded ({ intention with root; view = None }, m)
      | Meld.Conflict reason -> Dead reason
    in
    if traced then
      Trace.record trace
        ~track:(thread_for config ~seq)
        ~stage:Trace.Premeld ~seq ~t0 ~t1:(Clock.now ())
        ~nodes:(counters.Counters.nodes_visited - nodes_before)
        ~detail:(match outcome with Premelded _ -> 1 | Dead _ | Unchanged _ -> 2);
    outcome
  end

(* Scheduling shell for the inline (sequential) path: resolve the snapshot
   sequence number and the designated input state against the live store. *)
let run ?trace ?mz config ~allocs ~shards ~states ~seq (intention : Intention.t)
    =
  let snap_seq = State_store.seq_of_pos states intention.snapshot in
  let thread = thread_for config ~seq in
  trial ?trace ?mz config ~snap_seq
    ~lookup:(fun m -> Some (State_store.require states ~stage:"premeld" m))
    ~alloc:allocs.(thread - 1)
    ~counters:shards.(thread - 1) ~seq intention
