open Hyder_tree
module Intention = Hyder_codec.Intention
module Codec = Hyder_codec.Codec
module Summary = Hyder_util.Stats.Summary
module Clock = Hyder_util.Clock
module Trace = Hyder_obs.Trace
module Metrics = Hyder_obs.Metrics

type config = {
  premeld : Premeld.config option;
  group_size : int;
}

let plain = { premeld = None; group_size = 1 }
let with_premeld = { premeld = Some Premeld.default_config; group_size = 1 }
let with_group_meld = { premeld = None; group_size = 2 }

let with_both =
  { premeld = Some Premeld.default_config; group_size = 2 }

type decided_at = At_premeld | At_group_meld | At_final_meld

type decision = {
  seq : int;
  pos : int;
  server : int;
  txn_seq : int;
  committed : bool;
  reason : Meld.abort_reason option;
  decided_at : decided_at;
}

(* Pipeline-level metrics, resolved once at create time so the hot path
   never does a registry lookup. *)
type instruments = {
  m_conflict_zone : Metrics.Histogram.t;
  m_fm_nodes : Metrics.Histogram.t;
  m_commits : Metrics.Counter.t;
  m_aborts : Metrics.Counter.t;
}

type t = {
  config : config;
  runtime : Runtime.t;
  trace : Trace.t;
  inst : instruments option;
  counters : Counters.t;
  states : State_store.t;
  cache : Intention_cache.t;
  fm_alloc : Vn.Alloc.t;
  pm_allocs : Vn.Alloc.t array;
  gm_alloc : Vn.Alloc.t;
  mutable next_seq : int;
  mutable pending : Group_meld.group option;  (** group being assembled *)
  mutable pending_members : int;
}

let create ?(config = plain) ?(runtime = Runtime.sequential)
    ?(trace = Trace.disabled) ?metrics ~genesis () =
  if config.group_size < 1 then invalid_arg "Pipeline.create: group_size";
  (match config.premeld with
  | Some { Premeld.threads; distance } when threads < 1 || distance < 1 ->
      invalid_arg "Pipeline.create: premeld config"
  | _ -> ());
  let pm_threads =
    match config.premeld with Some c -> c.Premeld.threads | None -> 0
  in
  if Trace.enabled trace && Trace.shards trace < pm_threads then
    invalid_arg "Pipeline.create: trace has fewer shards than premeld threads";
  let inst =
    Option.map
      (fun m ->
        {
          m_conflict_zone =
            Metrics.histogram m "pipeline_conflict_zone_intentions";
          m_fm_nodes = Metrics.histogram m "pipeline_fm_nodes_per_txn";
          m_commits = Metrics.counter m "pipeline_commits";
          m_aborts = Metrics.counter m "pipeline_aborts";
        })
      metrics
  in
  {
    config;
    runtime = Runtime.create ?metrics runtime;
    trace;
    inst;
    counters = Counters.create ~premeld_shards:(max 1 pm_threads) ();
    states = State_store.create ~genesis ();
    cache = Intention_cache.create ();
    fm_alloc = Vn.Alloc.create ~thread:0;
    pm_allocs =
      Array.init pm_threads (fun i -> Vn.Alloc.create ~thread:(i + 1));
    gm_alloc = Vn.Alloc.create ~thread:(pm_threads + 1);
    next_seq = 0;
    pending = None;
    pending_members = 0;
  }

let states t = t.states
let counters t = t.counters
let config t = t.config
let runtime t = Runtime.backend t.runtime
let lcs t = State_store.latest t.states
let shutdown t = Runtime.shutdown t.runtime

let decode t ~pos bytes =
  let ds = t.counters.deserialize in
  let t0 = Clock.now () in
  ds.intentions <- ds.intentions + 1;
  (* References resolve O(1) through the intention cache when they name
     a recently logged node, and fall back to a key lookup in the
     retained snapshot otherwise (genesis data, ephemeral nodes, or
     intentions beyond the cache horizon). *)
  let fallback = State_store.resolver t.states in
  let resolve ~snapshot ~key ~vn =
    match vn with
    | Vn.Logged { pos = p; idx } -> (
        match Intention_cache.find t.cache ~pos:p ~idx with
        | Some (Node.Node n as tree) when Key.equal n.Node.key key -> tree
        | Some _ | None -> fallback ~snapshot ~key ~vn)
    | Vn.Ephemeral _ -> fallback ~snapshot ~key ~vn
  in
  let i, nodes = Codec.decode_indexed ~pos ~resolve bytes in
  Intention_cache.add t.cache ~pos nodes;
  ds.nodes_visited <- ds.nodes_visited + i.Intention.node_count;
  Summary.add t.counters.intention_bytes (float_of_int i.Intention.byte_size);
  let t1 = Clock.now () in
  ds.seconds <- ds.seconds +. (t1 -. t0);
  (* [next_seq] is the sequence number this intention receives if it is
     the next one submitted — true for the decode-then-submit loops the
     cluster and bench drivers run; batch decoding tags all spans with
     the batch's first seq, which is still a faithful timeline. *)
  if Trace.enabled t.trace then
    Trace.record t.trace ~track:0 ~stage:Trace.Deserialize ~seq:t.next_seq ~t0
      ~t1 ~nodes:i.Intention.node_count ~detail:i.Intention.byte_size;
  i

(* Run final meld on a completed group and emit its decisions. *)
let final_meld t (group : Group_meld.group) =
  let fm = t.counters.final_meld in
  let lcs_seq, _lcs_pos, lcs_tree = State_store.latest t.states in
  let alive = List.length group.members in
  let nodes_before = fm.nodes_visited in
  let result =
    if alive = 0 then Meld.Merged lcs_tree
    else begin
      let t0 = Clock.now () in
      fm.intentions <- fm.intentions + alive;
      let r =
        Meld.meld ~mode:Meld.Final ~members:group.member_positions
          ~alloc:t.fm_alloc ~counters:fm ~intention:group.root ~state:lcs_tree
          ()
      in
      let t1 = Clock.now () in
      fm.seconds <- fm.seconds +. (t1 -. t0);
      if Trace.enabled t.trace then begin
        let first_seq =
          List.fold_left
            (fun acc (m : Group_meld.member) -> min acc m.seq)
            max_int group.members
        in
        Trace.record t.trace ~track:0 ~stage:Trace.Final_meld ~seq:first_seq
          ~t0 ~t1
          ~nodes:(fm.nodes_visited - nodes_before)
          ~detail:(match r with Meld.Merged _ -> 1 | Meld.Conflict _ -> 0)
      end;
      r
    end
  in
  let new_state, fate =
    match result with
    | Meld.Merged s -> (s, None)
    | Meld.Conflict reason -> (lcs_tree, Some reason)
  in

  if alive > 0 then begin
    let nodes = fm.nodes_visited - nodes_before in
    let per_member = float_of_int nodes /. float_of_int alive in
    List.iter
      (fun (m : Group_meld.member) ->
        Summary.add t.counters.fm_nodes_per_txn per_member;
        let effective_snap =
          match m.premeld_input with
          | Some s -> s
          | None -> State_store.seq_of_pos t.states m.intention.snapshot
        in
        let cz = float_of_int (max 0 (lcs_seq - effective_snap)) in
        Summary.add t.counters.conflict_zone cz;
        match t.inst with
        | None -> ()
        | Some i ->
            Metrics.Histogram.observe i.m_fm_nodes per_member;
            Metrics.Histogram.observe i.m_conflict_zone cz)
      group.members
  end;
  (* Decisions for every member, in sequence order; states recorded at each
     member's position so later snapshot references resolve. *)
  let decided =
    List.map
      (fun (m : Group_meld.member) ->
        match fate with
        | None -> (m, true, None, At_final_meld)
        | Some reason -> (m, false, Some reason, At_final_meld))
      group.members
    @ List.map
        (fun ((m : Group_meld.member), reason, stage) ->
          let decided_at =
            match stage with `Premeld -> At_premeld | `Group -> At_group_meld
          in
          (m, false, Some reason, decided_at))
        group.early_aborts
  in
  let decided =
    List.sort
      (fun ((a : Group_meld.member), _, _, _) (b, _, _, _) ->
        Int.compare a.seq b.seq)
      decided
  in
  List.map
    (fun ((m : Group_meld.member), committed, reason, decided_at) ->
      State_store.record t.states ~seq:m.seq ~pos:m.intention.pos new_state;
      if committed then t.counters.committed <- t.counters.committed + 1
      else t.counters.aborted <- t.counters.aborted + 1;
      (match t.inst with
      | None -> ()
      | Some i ->
          Metrics.Counter.incr (if committed then i.m_commits else i.m_aborts));
      {
        seq = m.seq;
        pos = m.intention.pos;
        server = m.intention.server;
        txn_seq = m.intention.txn_seq;
        committed;
        reason;
        decided_at;
      })
    decided

(* Group-meld + final-meld tail: sequential in log order under every
   backend.  [unit_group] is the single-intention group produced by the
   premeld stage (or the raw intention when premeld is off). *)
let tail t ~seq (unit_group : Group_meld.group) =
  if t.config.group_size <= 1 then final_meld t unit_group
  else begin
    let merged =
      match t.pending with
      | None -> unit_group
      | Some g ->
          let gm = t.counters.group_meld in
          let nodes_before = gm.nodes_visited in
          let t0 = Clock.now () in
          let merged =
            Group_meld.combine ~alloc:t.gm_alloc ~counters:gm g unit_group
          in
          let t1 = Clock.now () in
          gm.seconds <- gm.seconds +. (t1 -. t0);
          if Trace.enabled t.trace then
            Trace.record t.trace ~track:0 ~stage:Trace.Group_meld ~seq ~t0 ~t1
              ~nodes:(gm.nodes_visited - nodes_before)
              ~detail:(t.pending_members + 1);
          merged
    in
    t.pending_members <- t.pending_members + 1;
    if t.pending_members >= t.config.group_size then begin
      t.pending <- None;
      t.pending_members <- 0;
      final_meld t merged
    end
    else begin
      t.pending <- Some merged;
      []
    end
  end

let group_of_outcome ~seq intention = function
  | Premeld.Unchanged i -> Group_meld.single ~seq i
  | Premeld.Premelded (i, m) -> Group_meld.single ~premeld_input:m ~seq i
  | Premeld.Dead reason -> Group_meld.dead ~seq intention reason

let submit t (intention : Intention.t) =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  (* Premeld stage, inline (the Sequential backend's scheduler). *)
  let unit_group =
    match t.config.premeld with
    | None -> Group_meld.single ~seq intention
    | Some pc ->
        let shard =
          t.counters.premeld_shards.(Premeld.thread_for pc ~seq - 1)
        in
        let t0 = Clock.now () in
        let outcome =
          Premeld.run ~trace:t.trace pc ~allocs:t.pm_allocs
            ~shards:t.counters.premeld_shards ~states:t.states ~seq intention
        in
        shard.Counters.seconds <- shard.Counters.seconds +. Clock.elapsed t0;
        group_of_outcome ~seq intention outcome
  in
  tail t ~seq unit_group

(* ------------------------------------------------------------------ *)
(* Parallel premeld windows                                             *)
(* ------------------------------------------------------------------ *)

(* Run one premeld window in parallel and then drain its tail in log
   order.  Preconditions established by [submit_batch]: premeld is on,
   [Array.length window <= threads * distance + 1 - pending_members]
   (so every member's designated input state is already recorded at
   window start — group assembly delays recording by up to
   [group_size - 1] states), and the intentions are the next ones in
   log order. *)
let run_window t (pc : Premeld.config) (window : Intention.t array) =
  let b = Array.length window in
  let s0 = t.next_seq in
  t.next_seq <- s0 + b;
  let snap = State_store.snapshot t.states in
  (* Per-member snapshot sequence numbers, exactly as the sequential
     scheduler would compute them at each member's own submit time.  A
     member's snapshot position may name an *earlier window member*; the
     sequential scheduler would see that member's state recorded iff its
     group has already completed, which is pure arithmetic on the group
     assembly state at window start. *)
  let g = max 1 t.config.group_size in
  let p0 = t.pending_members in
  (* (seq, pos) of the group members already pending at window start: the
     first group completion inside the window records their states too. *)
  let pending_positions =
    match t.pending with
    | None -> [||]
    | Some grp ->
        let all =
          List.map (fun (m : Group_meld.member) -> (m.seq, m.intention.pos))
            grp.members
          @ List.map
              (fun ((m : Group_meld.member), _, _) -> (m.seq, m.intention.pos))
              grp.early_aborts
        in
        let arr = Array.of_list all in
        Array.sort (fun (a, _) (b, _) -> Int.compare a b) arr;
        arr
  in
  let snap_seqs = Array.make b (-1) in
  let visible = ref (-1) in
  (* window index of the newest member whose state is visible *)
  for i = 0 to b - 1 do
    let pos = window.(i).Intention.snapshot in
    let rec member_at k =
      if k < 0 then None
      else if window.(k).Intention.pos <= pos then Some k
      else member_at (k - 1)
    in
    let rec pending_at k =
      if k < 0 then None
      else if snd pending_positions.(k) <= pos then
        Some (fst pending_positions.(k))
      else pending_at (k - 1)
    in
    snap_seqs.(i) <-
      (match member_at !visible with
      | Some k -> s0 + k
      | None -> (
          (* Once any group has completed inside the window, the members
             pending at window start are recorded as well. *)
          match
            if !visible >= 0 then
              pending_at (Array.length pending_positions - 1)
            else None
          with
          | Some seq -> seq
          | None -> State_store.Snapshot.seq_of_pos snap pos));
    if (p0 + i + 1) mod g = 0 then visible := i
  done;
  (* Fan the trial melds out, sharded by paper thread id: pool task [k]
     impersonates premeld thread [threads.(k)] and owns its allocator and
     counter shard, processing that thread's members in log order. *)
  let outcomes = Array.make b (Premeld.Unchanged window.(0)) in
  let by_thread = Array.make pc.Premeld.threads [] in
  for i = b - 1 downto 0 do
    let th = Premeld.thread_for pc ~seq:(s0 + i) in
    by_thread.(th - 1) <- i :: by_thread.(th - 1)
  done;
  let active =
    Array.of_seq
      (Seq.filter
         (fun k -> by_thread.(k) <> [])
         (Seq.init pc.Premeld.threads Fun.id))
  in
  let lookup = State_store.Snapshot.by_seq snap in
  Runtime.run_tasks t.runtime ~tasks:(Array.length active) (fun task ->
      let k = active.(task) in
      let shard = t.counters.premeld_shards.(k) in
      let t0 = Clock.now () in
      List.iter
        (fun i ->
          outcomes.(i) <-
            Premeld.trial ~trace:t.trace pc ~snap_seq:snap_seqs.(i) ~lookup
              ~alloc:t.pm_allocs.(k) ~counters:shard ~seq:(s0 + i)
              window.(i))
        by_thread.(k);
      let t1 = Clock.now () in
      shard.Counters.seconds <- shard.Counters.seconds +. (t1 -. t0);
      (* Envelope span for the whole pool task, on the same ring the
         task's trial melds write to (same impersonated thread = same
         single writer). *)
      if Trace.enabled t.trace then
        Trace.record t.trace ~track:(k + 1) ~stage:Trace.Premeld_window
          ~seq:s0 ~t0 ~t1
          ~nodes:(List.length by_thread.(k))
          ~detail:task);
  (* Merge back in submission order: group meld and final meld are the
     same sequential tail the inline scheduler uses. *)
  let decisions = ref [] in
  for i = 0 to b - 1 do
    let dgroup = group_of_outcome ~seq:(s0 + i) window.(i) outcomes.(i) in
    decisions := List.rev_append (tail t ~seq:(s0 + i) dgroup) !decisions
  done;
  List.rev !decisions

let submit_batch t (intentions : Intention.t list) =
  match (Runtime.is_parallel t.runtime, t.config.premeld) with
  | false, _ | _, None ->
      (* Sequential backend (or nothing to parallelize): the original
         inline scheduler, one intention at a time. *)
      List.concat_map (submit t) intentions
  | true, Some pc ->
      let arr = Array.of_list intentions in
      let n = Array.length arr in
      let decisions = ref [] in
      let off = ref 0 in
      while !off < n do
        (* The designated input state of the window's last member must
           already be recorded: states lag submissions by the group
           members still being assembled, so the window shrinks by
           [pending_members] (it re-widens as soon as a group inside
           this window completes). *)
        let cap =
          (pc.Premeld.threads * pc.Premeld.distance) + 1 - t.pending_members
        in
        if cap < 1 then begin
          (* Pathological config (group_size > threads*distance + 1):
             no window is safe, fall back to the inline scheduler for
             one intention and retry. *)
          decisions := List.rev_append (submit t arr.(!off)) !decisions;
          incr off
        end
        else begin
          let b = min cap (n - !off) in
          let window = Array.sub arr !off b in
          decisions := List.rev_append (run_window t pc window) !decisions;
          off := !off + b
        end
      done;
      List.rev !decisions

let flush t =
  match t.pending with
  | None -> []
  | Some g ->
      t.pending <- None;
      t.pending_members <- 0;
      final_meld t g

let prune t ~keep =
  let floor_for_premeld =
    match t.config.premeld with
    | None -> 2
    | Some { Premeld.threads; distance } -> (threads * distance) + 2
  in
  State_store.prune t.states ~keep:(max keep floor_for_premeld)
