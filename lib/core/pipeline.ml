open Hyder_tree
module Intention = Hyder_codec.Intention
module Codec = Hyder_codec.Codec
module View = Hyder_codec.View
module Summary = Hyder_util.Stats.Summary
module Clock = Hyder_util.Clock
module Trace = Hyder_obs.Trace
module Metrics = Hyder_obs.Metrics
module Flight = Hyder_obs.Flight

type config = {
  premeld : Premeld.config option;
  group_size : int;
}

let plain = { premeld = None; group_size = 1 }
let with_premeld = { premeld = Some Premeld.default_config; group_size = 1 }
let with_group_meld = { premeld = None; group_size = 2 }

let with_both =
  { premeld = Some Premeld.default_config; group_size = 2 }

type decided_at = At_premeld | At_group_meld | At_final_meld

(* Short machine labels shared by the abort-reason metric counters and
   the flight-record sink (the cluster simulator uses the same slugs). *)
let reason_slug = function
  | Meld.Write_conflict _ -> "write_conflict"
  | Meld.Read_conflict _ -> "read_conflict"
  | Meld.Phantom_conflict _ -> "phantom_conflict"

let decided_at_slug = function
  | At_premeld -> "premeld"
  | At_group_meld -> "group_meld"
  | At_final_meld -> "final_meld"

type decision = {
  seq : int;
  pos : int;
  server : int;
  txn_seq : int;
  committed : bool;
  reason : Meld.abort_reason option;
  decided_at : decided_at;
}

(* Pipeline-level metrics, resolved once at create time so the hot path
   never does a registry lookup. *)
type instruments = {
  m_conflict_zone : Metrics.Histogram.t;
  m_fm_nodes : Metrics.Histogram.t;
  m_commits : Metrics.Counter.t;
  m_aborts : Metrics.Counter.t;
  (* Abort-reason breakdown (the registry sanitizes names to
     [a-zA-Z0-9_:], so the label is suffix-encoded into the name). *)
  m_aborts_write : Metrics.Counter.t;
  m_aborts_read : Metrics.Counter.t;
  m_aborts_phantom : Metrics.Counter.t;
  (* Per-stage GC deltas ([Gc.counters] minor/promoted words), sampled
     around the stage work executed on the domain that owns the stage:
     fm on the driver (every backend), ds/pm on the driver's inline path,
     gm wherever the single gm writer runs (the driver inline, or the
     dedicated gm worker under the pipelined backend — GC counters are
     domain-local, so the worker's sample measures exactly the gm work).
     Fan-out stages (worker ds, parallel premeld windows) are not
     sampled: several domains would race on one accumulator. *)
  m_ds_gc_minor : Metrics.Fcounter.t;
  m_ds_gc_promoted : Metrics.Fcounter.t;
  m_pm_gc_minor : Metrics.Fcounter.t;
  m_pm_gc_promoted : Metrics.Fcounter.t;
  m_gm_gc_minor : Metrics.Fcounter.t;
  m_gm_gc_promoted : Metrics.Fcounter.t;
  m_fm_gc_minor : Metrics.Fcounter.t;
  m_fm_gc_promoted : Metrics.Fcounter.t;
  (* Minor words spent materializing flyweight view nodes into heap
     nodes.  Lazy decoding moves node allocation out of the ds bracket
     and into whichever stage first needs the node; without this split,
     the move would be misbooked as pm/gm/fm allocation growth.  It is
     not a bracket of its own: meld reports materialization deltas
     through its [?mz] hook, which adds here and subtracts from the
     enclosing stage's minor counter, keeping each stage honest and the
     total unchanged.  Driver-written only (workers never walk views on
     the wire path, and worker-side gm forcing goes unsampled like every
     other fan-out stage). *)
  m_mz_gc_minor : Metrics.Fcounter.t;
  (* Batched-handoff instruments (pipelined backend, driver-written):
     every job-ring publication and every result drain observes its size,
     so the histogram shows how well the doorbell cost amortizes. *)
  m_spsc_batch : Metrics.Histogram.t;
  m_doorbells : Metrics.Counter.t;
  m_steals : Metrics.Counter.t;
  m_adaptive_window : Metrics.Gauge.t;
}

(* GC sampling around a stage, inert when metrics are off: one branch,
   no allocation (the off-branch pair is a static constant).

   Minor words come from [Gc.minor_words] — the only cumulative-allocation
   reading that includes words allocated since the last minor collection
   (on OCaml 5.1, [Gc.counters] and [Gc.quick_stat] update their
   minor_words only AT minor collections, which turns small bracket
   deltas into collection-timing noise).  Promoted words have no such
   exact reading — promotion only happens at minor collections — so that
   column is naturally quantized to the collections that fired inside
   the bracket. *)
let gc_begin inst =
  match inst with
  | None -> (0.0, 0.0)
  | Some _ ->
      (* Promoted first: [Gc.counters]'s own result tuple then lands
         before the minor reading, outside the measured span. *)
      let _, pw, _ = Gc.counters () in
      let mw = Gc.minor_words () in
      (mw, pw)

let gc_end inst ~stage (mw0, pw0) =
  match inst with
  | None -> ()
  | Some i ->
      (* Minor first, for the same reason. *)
      let mw1 = Gc.minor_words () in
      let _, pw1, _ = Gc.counters () in
      let minor, promoted =
        match stage with
        | `Ds -> (i.m_ds_gc_minor, i.m_ds_gc_promoted)
        | `Pm -> (i.m_pm_gc_minor, i.m_pm_gc_promoted)
        | `Gm -> (i.m_gm_gc_minor, i.m_gm_gc_promoted)
        | `Fm -> (i.m_fm_gc_minor, i.m_fm_gc_promoted)
      in
      Metrics.Fcounter.add minor (mw1 -. mw0);
      Metrics.Fcounter.add promoted (pw1 -. pw0)

(* ------------------------------------------------------------------ *)
(* Pipelined backend: job/result plumbing types                         *)
(* ------------------------------------------------------------------ *)

(* A work item for the pipelined backend: either an already-decoded
   intention or a wire-form slice still to be deserialized.  [psnap] is
   the snapshot log position peeked from the encoding header — it gates
   whether the decode can be offloaded (snapshot state already recorded
   at window start) or must wait on the driver for final meld to catch
   up. *)
type witem =
  | Wi of Intention.t
  | Ww of { pos : int; src : string; off : int; len : int; psnap : int }

(* Stage handoff rides on pooled mutable carriers instead of per-item
   job/result variants.  A carrier cycles

     driver free list -> job ring -> worker (result fields written in
     place) -> result ring -> driver free list

   so a steady-state handoff round allocates nothing and — unlike the
   old [Rds]/[Rpm]/[Rgm] records, freshly allocated on a worker minor
   heap and promoted the moment the driver read them — never churns
   promoted words.  Each worker pair owns [qcap] carriers; the driver's
   outstanding-[<= qcap] budget doubles as the free-list availability
   proof.  The driver clears payload references when it recycles a
   carrier, so the pool pins nothing between rounds.

   Stage timestamps travel as integer nanoseconds: a float field in a
   mixed record is boxed, and re-boxing three floats per item on the
   worker would reintroduce exactly the promoted-word churn the pool
   exists to kill. *)
type ckind = Cnone | Cds | Cpm | Cgm

type carrier = {
  mutable kind : ckind;
  mutable c_idx : int;  (** window member index *)
  mutable c_seq : int;
  (* ds job input: the wire slice *)
  mutable c_pos : int;
  mutable c_src : string;
  mutable c_off : int;
  mutable c_len : int;
  (* pm job input ([c_intention] doubles as the ds result output) *)
  mutable c_thread : int;
  mutable c_snap_seq : int;
  mutable c_intention : Intention.t option;
      (** ds out — [None]: the cache-free worker decode hit a reference
          only the driver's intention cache can resolve (a merged-away
          node); the driver redoes the decode inline *)
  (* gm job input / result output *)
  mutable c_group : Group_meld.group option;
  mutable c_completed : Group_meld.group option;
  (* result outputs *)
  mutable c_nodes : Node.tree array;
      (** ds out: the decoded node table, for the driver to index into
          its intention cache ([[||]] on failure) *)
  mutable c_outcome : Premeld.outcome option;
  mutable c_seconds_ns : int;
  mutable c_t0_ns : int;
      (** worker-side stage start ([CLOCK_MONOTONIC] is system-wide, so
          the driver stamps flight edges from it directly) *)
  mutable c_t1_ns : int;
}

let fresh_carrier () =
  {
    kind = Cnone;
    c_idx = -1;
    c_seq = -1;
    c_pos = 0;
    c_src = "";
    c_off = 0;
    c_len = 0;
    c_thread = 0;
    c_snap_seq = 0;
    c_intention = None;
    c_group = None;
    c_completed = None;
    c_nodes = [||];
    c_outcome = None;
    c_seconds_ns = 0;
    c_t0_ns = 0;
    c_t1_ns = 0;
  }

let ns_of_s s = int_of_float (s *. 1e9)
let s_of_ns n = float_of_int n *. 1e-9

let null_resolver : Codec.resolver =
 fun ~snapshot:_ ~key:_ ~vn:_ ->
  failwith "Pipeline: ds resolver used before window publication"

(* Per-window worker context.  The driver writes these fields between
   windows (before any job of the window is pushed); workers only read
   them.  Publication rides on the SPSC queue's SC-atomic indices: the
   driver's writes happen before the job push, the worker's reads after
   the pop. *)
type wctx = {
  mutable wsnap : State_store.Snapshot.t;
  wresolvers : Codec.resolver array;  (** one memoizing resolver per worker *)
  scratches : Codec.Scratch.t array;  (** one decode scratch per worker *)
  dscratch : Codec.Scratch.t;  (** the driver's own scratch (inline decodes) *)
}

type pctx = {
  ppool : (carrier, carrier) Runtime.Stage_pool.t;
  pdomains : int;
  qcap : int;
  outstanding : int array;
      (** jobs staged-or-submitted minus results drained, per worker;
          kept [<= qcap] so a flush and a worker's result push can never
          fail *)
  wctx : wctx;
  adapt : Runtime.Adaptive.t;
  free : carrier array array;  (** per-worker carrier free stacks *)
  free_top : int array;
  stage_buf : carrier array array;
      (** jobs staged per worker, published as one batch on flush *)
  stage_n : int array;
  drain_buf : carrier array;  (** scratch for batched result drains *)
  mutable ds_offloaded : int;
  mutable ds_inline_n : int;
  mutable worker_ds_seconds : float;
  mutable worker_pm_seconds : float;
  mutable worker_gm_seconds : float;
  mutable max_depth : int;
  mutable handoff_batches : int;  (** job-ring publications (flushes) *)
  mutable handoff_items : int;  (** jobs published through those *)
  mutable driver_steals : int;
  mutable doorbells_seen : int;  (** scrape cursor for the wakeup counter *)
}

type offload_stats = {
  ds_offloaded : int;
  ds_inline : int;
  worker_ds_seconds : float;
  worker_pm_seconds : float;
  worker_gm_seconds : float;
  max_queue_depth : int;
  queue_capacity : int;
  handoff_batches : int;
  handoff_items : int;
  doorbell_wakeups : int;
  driver_steals : int;
  adaptive_batch : int;  (** flush threshold at last observation *)
  adaptive_window : int;  (** in-flight window at last observation *)
  adaptive_adjustments : int;
}

type t = {
  config : config;
  lazy_decode : bool;
      (** decode wire bytes into flyweight views (materialized only as
          meld needs the nodes) instead of eager heap trees *)
  runtime : Runtime.t;
  trace : Trace.t;
  flight : Flight.t;
      (** per-transaction lifecycle recorder; only ever touched by the
          driver thread — worker-domain stage timestamps ride back in
          the {!presult} messages and are stamped on result handling *)
  inst : instruments option;
  counters : Counters.t;
  states : State_store.t;
  cache : Intention_cache.t;
  fm_alloc : Vn.Alloc.t;
  pm_allocs : Vn.Alloc.t array;
  gm_alloc : Vn.Alloc.t;
  mutable next_seq : int;
  mutable pending : Group_meld.group option;  (** group being assembled *)
  mutable pending_members : int;
  mutable pstate : pctx option;  (** worker fabric, [Pipelined] only *)
}

let states t = t.states
let counters t = t.counters
let config t = t.config
let runtime t = Runtime.backend t.runtime
let lcs t = State_store.latest t.states

let shutdown t =
  (match t.pstate with
  | Some p -> Runtime.Stage_pool.shutdown p.ppool
  | None -> ());
  Runtime.shutdown t.runtime

let offload t =
  Option.map
    (fun (p : pctx) ->
      {
        ds_offloaded = p.ds_offloaded;
        ds_inline = p.ds_inline_n;
        worker_ds_seconds = p.worker_ds_seconds;
        worker_pm_seconds = p.worker_pm_seconds;
        worker_gm_seconds = p.worker_gm_seconds;
        max_queue_depth = p.max_depth;
        queue_capacity = p.qcap;
        handoff_batches = p.handoff_batches;
        handoff_items = p.handoff_items;
        doorbell_wakeups = Runtime.Stage_pool.doorbell_wakeups p.ppool;
        driver_steals = p.driver_steals;
        adaptive_batch = Runtime.Adaptive.batch p.adapt;
        adaptive_window = Runtime.Adaptive.window p.adapt;
        adaptive_adjustments = Runtime.Adaptive.adjustments p.adapt;
      })
    t.pstate

(* References resolve against the retained snapshot state first, and only
   fall back to the intention cache when the state cannot answer (a
   logged node that melding replaced in the state before the snapshot
   was recorded).  Order matters for determinism, not just speed: meld's
   graft checks compare node objects *physically*, so the decoder must
   return the same object for the same reference on every backend, every
   replica, and every garbage-collection schedule.  The snapshot state
   is that canonical source — it is exactly what worker-domain decodes
   (which have no cache) resolve against, and it is reconstructed
   verbatim by crash recovery.  The cache, by contrast, holds *weak*
   references: resolving through it first made decode results depend on
   which entries the GC had collected, which skewed graft decisions and
   ephemeral numbering under memory pressure (caught by the chaos
   suite's pipelined runs).  It now serves only references the state
   lookup cannot satisfy, where any surviving object is better than a
   corrupt-stream error. *)
let cached_resolver t : Codec.resolver =
  let fallback = State_store.resolver t.states in
  fun ~snapshot ~key ~vn ->
    let from_state =
      let tree = fallback ~snapshot ~key ~vn in
      if (not (Node.is_empty tree)) && Vn.equal tree.Node.vn vn then Some tree
      else
        (* wrong version (or absent): the state at [snapshot] no longer
           holds this node — only the cache can still name it *)
        match vn with
        | Vn.Logged _ -> None
        | Vn.Ephemeral _ -> Some tree
    in
    match from_state with
    | Some tree -> tree
    | None -> (
        match vn with
        | Vn.Logged { pos = p; idx } -> (
            match Intention_cache.find t.cache ~pos:p ~idx with
            | Some tree
              when (not (Node.is_empty tree)) && Key.equal tree.Node.key key
              -> tree
            | Some _ | None -> fallback ~snapshot ~key ~vn)
        | Vn.Ephemeral _ -> fallback ~snapshot ~key ~vn)

(* Materialization ("mz") accounting helpers.  [mz_note] books an
   explicit delta; [mz_hook] builds the meld-side hook that also
   subtracts the delta from the enclosing stage bracket (which sampled
   those words too).  Both are driver-side single-writer — never hand
   the hook to a worker domain. *)
let mz_note t d =
  match t.inst with
  | None -> ()
  | Some i -> Metrics.Fcounter.add i.m_mz_gc_minor d

let mz_hook t ~stage =
  match t.inst with
  | None -> None
  | Some i ->
      let enclosing =
        match stage with
        | `Pm -> i.m_pm_gc_minor
        | `Gm -> i.m_gm_gc_minor
        | `Fm -> i.m_fm_gc_minor
      in
      Some
        (fun d ->
          Metrics.Fcounter.add i.m_mz_gc_minor d;
          Metrics.Fcounter.add enclosing (-.d))

(* Force a still-lazy group to a real tree (the pending state side of the
   next combine needs one).  [note] observes the materialization words —
   [mz_note t] on the driver, [ignore] on the gm worker (fan-out stages
   are unsampled). *)
let force_tree ~note (g : Group_meld.group) =
  match g.Group_meld.view with
  | None -> g
  | Some v ->
      let mw0 = Gc.minor_words () in
      let root = View.materialize_root v in
      note (Gc.minor_words () -. mw0);
      { g with Group_meld.root; view = None }

let decode t ~pos bytes =
  let ds = t.counters.deserialize in
  let t0 = Clock.now () in
  let gc0 = gc_begin t.inst in
  ds.intentions <- ds.intentions + 1;
  let resolve = cached_resolver t in
  let i =
    if t.lazy_decode then begin
      (* Zero-copy path: index the wire record in place.  The snapshot
         state is the binding peer — the same source [cached_resolver]
         consults first, so references and elided payloads bind to the
         same physical objects either way. *)
      let peer =
        match State_store.by_pos t.states (Codec.peek_snapshot bytes) with
        | Some tree -> tree
        | None -> Node.empty
      in
      let i = Codec.decode_lazy ~pos ~peer ~resolve bytes in
      (match i.Intention.view with
      | Some v -> Intention_cache.add_view t.cache v
      | None -> ());
      i
    end
    else begin
      let i, nodes = Codec.decode_indexed ~pos ~resolve bytes in
      Intention_cache.add t.cache ~pos nodes;
      i
    end
  in
  ds.nodes_visited <- ds.nodes_visited + i.Intention.node_count;
  Summary.add t.counters.intention_bytes (float_of_int i.Intention.byte_size);
  gc_end t.inst ~stage:`Ds gc0;
  let t1 = Clock.now () in
  ds.seconds <- ds.seconds +. (t1 -. t0);
  (* [next_seq] is the sequence number this intention receives if it is
     the next one submitted — true for the decode-then-submit loops the
     cluster and bench drivers run; batch decoding tags all spans with
     the batch's first seq, which is still a faithful timeline. *)
  if Trace.enabled t.trace then
    Trace.record t.trace ~track:0 ~stage:Trace.Deserialize ~seq:t.next_seq ~t0
      ~t1 ~nodes:i.Intention.node_count ~detail:i.Intention.byte_size;
  if Flight.enabled t.flight then begin
    Flight.touch t.flight ~pos ~now:t0;
    Flight.note_identity t.flight ~pos ~server:i.Intention.server
      ~txn_seq:i.Intention.txn_seq;
    Flight.edge t.flight ~pos ~stage:Flight.Ds ~t0 ~t1
  end;
  i

(* Driver-side slice decode for the pipelined backend: the full inline
   ds stage (cache fast path, cache insertion, counters, tail-ring
   span), but reading the wire slice in place through the driver's
   scratch. *)
let decode_slice t ~scratch ~seq ~pos ~off ~len src =
  let ds = t.counters.deserialize in
  let t0 = Clock.now () in
  let gc0 = gc_begin t.inst in
  ds.intentions <- ds.intentions + 1;
  let resolve = cached_resolver t in
  let i =
    if t.lazy_decode then
      let peer =
        match State_store.by_pos t.states (Codec.peek_snapshot ~off src) with
        | Some tree -> tree
        | None -> Node.empty
      in
      Codec.decode_lazy ~pos ~off ~len ~peer ~resolve src
    else begin
      let i = Codec.decode_pooled ~scratch ~pos ~off ~len ~resolve src in
      Intention_cache.add t.cache ~pos (Codec.Scratch.export scratch);
      i
    end
  in
  ds.nodes_visited <- ds.nodes_visited + i.Intention.node_count;
  Summary.add t.counters.intention_bytes (float_of_int i.Intention.byte_size);
  gc_end t.inst ~stage:`Ds gc0;
  (* A pipelined-driver decode feeds stage queues consumed on worker
     domains, and a view must only ever have one walker: materialize
     immediately (booked as mz, not ds) and strip the view before the
     intention crosses a queue.  The view still enters the cache so later
     references resolve to the materialized (memo-shared) objects. *)
  let i =
    match i.Intention.view with
    | None -> i
    | Some v ->
        let mw0 = Gc.minor_words () in
        let root = View.materialize_root v in
        mz_note t (Gc.minor_words () -. mw0);
        Intention_cache.add_view t.cache v;
        { i with Intention.root; view = None }
  in
  let t1 = Clock.now () in
  ds.seconds <- ds.seconds +. (t1 -. t0);
  if Trace.enabled t.trace then
    Trace.record t.trace ~track:0 ~stage:Trace.Deserialize ~seq ~t0 ~t1
      ~nodes:i.Intention.node_count ~detail:i.Intention.byte_size;
  if Flight.enabled t.flight then begin
    Flight.touch t.flight ~pos ~now:t0;
    Flight.note_identity t.flight ~pos ~server:i.Intention.server
      ~txn_seq:i.Intention.txn_seq;
    Flight.edge t.flight ~pos ~stage:Flight.Ds ~t0 ~t1
  end;
  i

(* Run final meld on a completed group and emit its decisions. *)
let final_meld t (group : Group_meld.group) =
  let fm = t.counters.final_meld in
  let lcs_seq, _lcs_pos, lcs_tree = State_store.latest t.states in
  let alive = List.length group.members in
  let nodes_before = fm.nodes_visited in
  let flighted = Flight.enabled t.flight in
  (* Flight attribution brackets the whole final-meld operation; every
     member of the group (early aborts included) gets the same edge, so
     each record's wait/service chain stays gapless through decision
     time. *)
  let fm_t0 = ref 0.0 and fm_t1 = ref 0.0 in
  let result =
    if alive = 0 then begin
      if flighted then begin
        let now = Clock.now () in
        fm_t0 := now;
        fm_t1 := now
      end;
      Meld.Merged lcs_tree
    end
    else begin
      let mz = mz_hook t ~stage:`Fm in
      let t0 = Clock.now () in
      let gc0 = gc_begin t.inst in
      fm.intentions <- fm.intentions + alive;
      let r =
        Meld.meld ~mode:Meld.Final ~members:group.member_positions
          ?intention_view:group.view ?mz ~alloc:t.fm_alloc ~counters:fm
          ~intention:group.root ~state:lcs_tree ()
      in
      gc_end t.inst ~stage:`Fm gc0;
      let t1 = Clock.now () in
      fm.seconds <- fm.seconds +. (t1 -. t0);
      fm_t0 := t0;
      fm_t1 := t1;
      if Trace.enabled t.trace then begin
        let first_seq =
          List.fold_left
            (fun acc (m : Group_meld.member) -> min acc m.seq)
            max_int group.members
        in
        Trace.record t.trace ~track:0 ~stage:Trace.Final_meld ~seq:first_seq
          ~t0 ~t1
          ~nodes:(fm.nodes_visited - nodes_before)
          ~detail:(match r with Meld.Merged _ -> 1 | Meld.Conflict _ -> 0)
      end;
      r
    end
  in
  let new_state, fate =
    match result with
    | Meld.Merged s -> (s, None)
    | Meld.Conflict reason -> (lcs_tree, Some reason)
  in

  if alive > 0 then begin
    let nodes = fm.nodes_visited - nodes_before in
    let per_member = float_of_int nodes /. float_of_int alive in
    List.iter
      (fun (m : Group_meld.member) ->
        Summary.add t.counters.fm_nodes_per_txn per_member;
        let effective_snap =
          match m.premeld_input with
          | Some s -> s
          | None -> State_store.seq_of_pos t.states m.intention.snapshot
        in
        let cz = float_of_int (max 0 (lcs_seq - effective_snap)) in
        Summary.add t.counters.conflict_zone cz;
        match t.inst with
        | None -> ()
        | Some i ->
            Metrics.Histogram.observe i.m_fm_nodes per_member;
            Metrics.Histogram.observe i.m_conflict_zone cz)
      group.members
  end;
  (* Decisions for every member, in sequence order; states recorded at each
     member's position so later snapshot references resolve. *)
  let decided =
    List.map
      (fun (m : Group_meld.member) ->
        match fate with
        | None -> (m, true, None, At_final_meld)
        | Some reason -> (m, false, Some reason, At_final_meld))
      group.members
    @ List.map
        (fun ((m : Group_meld.member), reason, stage) ->
          let decided_at =
            match stage with `Premeld -> At_premeld | `Group -> At_group_meld
          in
          (m, false, Some reason, decided_at))
        group.early_aborts
  in
  let decided =
    List.sort
      (fun ((a : Group_meld.member), _, _, _) (b, _, _, _) ->
        Int.compare a.seq b.seq)
      decided
  in
  List.map
    (fun ((m : Group_meld.member), committed, reason, decided_at) ->
      State_store.record t.states ~seq:m.seq ~pos:m.intention.pos new_state;
      if committed then t.counters.committed <- t.counters.committed + 1
      else t.counters.aborted <- t.counters.aborted + 1;
      (match t.inst with
      | None -> ()
      | Some i ->
          Metrics.Counter.incr (if committed then i.m_commits else i.m_aborts);
          (match reason with
          | Some (Meld.Write_conflict _) ->
              Metrics.Counter.incr i.m_aborts_write
          | Some (Meld.Read_conflict _) -> Metrics.Counter.incr i.m_aborts_read
          | Some (Meld.Phantom_conflict _) ->
              Metrics.Counter.incr i.m_aborts_phantom
          | None -> ()));
      if flighted then begin
        let pos = m.intention.pos in
        Flight.edge t.flight ~pos ~stage:Flight.Fm ~t0:!fm_t0 ~t1:!fm_t1;
        let effective_snap =
          match m.premeld_input with
          | Some s -> s
          | None -> State_store.seq_of_pos t.states m.intention.snapshot
        in
        Flight.complete t.flight ~pos ~now:!fm_t1 ~seq:m.seq ~committed
          ~reason:(match reason with None -> "" | Some r -> reason_slug r)
          ~decided_at:(decided_at_slug decided_at)
          ~conflict_zone:(max 0 (lcs_seq - effective_snap))
      end;
      {
        seq = m.seq;
        pos = m.intention.pos;
        server = m.intention.server;
        txn_seq = m.intention.txn_seq;
        committed;
        reason;
        decided_at;
      })
    decided

(* Group-meld step: fold [unit_group] into the group being assembled.
   Returns the completed group when it fills (always, with group meld
   off), [None] while it is still filling.  [track] selects the trace
   ring: 0 for the inline tail, the gm worker's ring under the pipelined
   backend (same single-writer either way). *)
(* Stamp a group-meld flight edge on every member the incoming unit
   group carries (the combine's work is attributed to the member being
   folded in; the waiting members' gm time shows up as fm wait).  Driver
   thread only — the pipelined backend stamps from the [Rgm] result
   instead. *)
let flight_gm_edge t ~t0 ~t1 (g : Group_meld.group) =
  List.iter
    (fun (m : Group_meld.member) ->
      Flight.edge t.flight ~pos:m.intention.pos ~stage:Flight.Gm ~t0 ~t1)
    g.members;
  List.iter
    (fun ((m : Group_meld.member), _, _) ->
      Flight.edge t.flight ~pos:m.intention.pos ~stage:Flight.Gm ~t0 ~t1)
    g.early_aborts

let gm_step t ~track ~seq (unit_group : Group_meld.group) =
  if t.config.group_size <= 1 then Some unit_group
  else begin
    let merged =
      match t.pending with
      | None -> unit_group
      | Some g ->
          let gm = t.counters.group_meld in
          let nodes_before = gm.nodes_visited in
          (* [track = 0] ⟺ inline on the driver: only there may the
             materialization hook touch the (single-writer) mz counter. *)
          let mz = if track = 0 then mz_hook t ~stage:`Gm else None in
          let t0 = Clock.now () in
          let gc0 = gc_begin t.inst in
          let merged =
            Group_meld.combine ?mz ~alloc:t.gm_alloc ~counters:gm g unit_group
          in
          gc_end t.inst ~stage:`Gm gc0;
          let t1 = Clock.now () in
          gm.seconds <- gm.seconds +. (t1 -. t0);
          if Trace.enabled t.trace then
            Trace.record t.trace ~track ~stage:Trace.Group_meld ~seq ~t0 ~t1
              ~nodes:(gm.nodes_visited - nodes_before)
              ~detail:(t.pending_members + 1);
          (* [track = 0] ⟺ this gm step runs inline on the driver; the
             pipelined backend's gm worker must not touch the recorder. *)
          if track = 0 && Flight.enabled t.flight then
            flight_gm_edge t ~t0 ~t1 unit_group;
          merged
    in
    t.pending_members <- t.pending_members + 1;
    if t.pending_members >= t.config.group_size then begin
      t.pending <- None;
      t.pending_members <- 0;
      Some merged
    end
    else begin
      (* The pending group becomes the state side of the next combine,
         which needs a real tree: force a still-lazy singleton now. *)
      let note = if track = 0 then mz_note t else ignore in
      t.pending <- Some (force_tree ~note merged);
      None
    end
  end

(* Group-meld + final-meld tail: sequential in log order under every
   backend.  [unit_group] is the single-intention group produced by the
   premeld stage (or the raw intention when premeld is off). *)
let tail t ~seq (unit_group : Group_meld.group) =
  match gm_step t ~track:0 ~seq unit_group with
  | Some g -> final_meld t g
  | None -> []

let group_of_outcome ~seq intention = function
  | Premeld.Unchanged i -> Group_meld.single ~seq i
  | Premeld.Premelded (i, m) -> Group_meld.single ~premeld_input:m ~seq i
  | Premeld.Dead reason -> Group_meld.dead ~seq intention reason

let submit t (intention : Intention.t) =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let flighted = Flight.enabled t.flight in
  (* Open the flight record at submit time when decode did not already
     (pre-decoded batch entry); idempotent otherwise. *)
  if flighted then begin
    let now = Clock.now () in
    Flight.touch t.flight ~pos:intention.pos ~now;
    Flight.note_identity t.flight ~pos:intention.pos
      ~server:intention.server ~txn_seq:intention.txn_seq
  end;
  (* Premeld stage, inline (the Sequential backend's scheduler). *)
  let unit_group =
    match t.config.premeld with
    | None -> Group_meld.single ~seq intention
    | Some pc ->
        let shard =
          t.counters.premeld_shards.(Premeld.thread_for pc ~seq - 1)
        in
        let mz = mz_hook t ~stage:`Pm in
        let t0 = Clock.now () in
        let gc0 = gc_begin t.inst in
        let outcome =
          Premeld.run ~trace:t.trace ?mz pc ~allocs:t.pm_allocs
            ~shards:t.counters.premeld_shards ~states:t.states ~seq intention
        in
        gc_end t.inst ~stage:`Pm gc0;
        let t1 = Clock.now () in
        shard.Counters.seconds <- shard.Counters.seconds +. (t1 -. t0);
        if flighted then
          Flight.edge t.flight ~pos:intention.pos ~stage:Flight.Pm ~t0 ~t1;
        group_of_outcome ~seq intention outcome
  in
  tail t ~seq unit_group

(* ------------------------------------------------------------------ *)
(* Premeld windows: shared snapshot-seq arithmetic                      *)
(* ------------------------------------------------------------------ *)

(* Per-member snapshot sequence numbers for a premeld window, exactly as
   the sequential scheduler would compute them at each member's own
   submit time.  [poss].(i) / [snaps].(i) are member [i]'s log position
   and snapshot position.  A member's snapshot position may name an
   {e earlier window member}; the sequential scheduler would see that
   member's state recorded iff its group has already completed, which is
   pure arithmetic on the group assembly state at window start.  Must be
   called before the window mutates any group state. *)
let window_snap_seqs t ~snap ~s0 ~poss ~snaps =
  let b = Array.length poss in
  let g = max 1 t.config.group_size in
  let p0 = t.pending_members in
  (* (seq, pos) of the group members already pending at window start: the
     first group completion inside the window records their states too. *)
  let pending_positions =
    match t.pending with
    | None -> [||]
    | Some grp ->
        let all =
          List.map (fun (m : Group_meld.member) -> (m.seq, m.intention.pos))
            grp.members
          @ List.map
              (fun ((m : Group_meld.member), _, _) -> (m.seq, m.intention.pos))
              grp.early_aborts
        in
        let arr = Array.of_list all in
        Array.sort (fun (a, _) (b, _) -> Int.compare a b) arr;
        arr
  in
  let snap_seqs = Array.make b (-1) in
  let visible = ref (-1) in
  (* window index of the newest member whose state is visible *)
  for i = 0 to b - 1 do
    let pos = snaps.(i) in
    let rec member_at k =
      if k < 0 then None
      else if poss.(k) <= pos then Some k
      else member_at (k - 1)
    in
    let rec pending_at k =
      if k < 0 then None
      else if snd pending_positions.(k) <= pos then
        Some (fst pending_positions.(k))
      else pending_at (k - 1)
    in
    snap_seqs.(i) <-
      (match member_at !visible with
      | Some k -> s0 + k
      | None -> (
          (* Once any group has completed inside the window, the members
             pending at window start are recorded as well. *)
          match
            if !visible >= 0 then
              pending_at (Array.length pending_positions - 1)
            else None
          with
          | Some seq -> seq
          | None -> State_store.Snapshot.seq_of_pos snap pos));
    if (p0 + i + 1) mod g = 0 then visible := i
  done;
  snap_seqs

(* ------------------------------------------------------------------ *)
(* Parallel premeld windows                                             *)
(* ------------------------------------------------------------------ *)

(* Run one premeld window in parallel and then drain its tail in log
   order.  Preconditions established by [submit_batch]: premeld is on,
   [Array.length window <= threads * distance + 1 - pending_members]
   (so every member's designated input state is already recorded at
   window start — group assembly delays recording by up to
   [group_size - 1] states), and the intentions are the next ones in
   log order. *)
let run_window t (pc : Premeld.config) (window : Intention.t array) =
  let b = Array.length window in
  let s0 = t.next_seq in
  t.next_seq <- s0 + b;
  let snap = State_store.snapshot t.states in
  let snap_seqs =
    window_snap_seqs t ~snap ~s0
      ~poss:(Array.map (fun (i : Intention.t) -> i.Intention.pos) window)
      ~snaps:(Array.map (fun (i : Intention.t) -> i.Intention.snapshot) window)
  in
  let flighted = Flight.enabled t.flight in
  (* Per-member trial-meld wall brackets, written at disjoint indexes by
     the pool tasks (same single-writer argument as [outcomes]) and
     stamped into the recorder by the driver after the join. *)
  let pm_t0 = if flighted then Array.make b 0.0 else [||] in
  let pm_t1 = if flighted then Array.make b 0.0 else [||] in
  if flighted then begin
    let now = Clock.now () in
    Array.iter
      (fun (i : Intention.t) ->
        Flight.touch t.flight ~pos:i.Intention.pos ~now;
        Flight.note_identity t.flight ~pos:i.Intention.pos
          ~server:i.Intention.server ~txn_seq:i.Intention.txn_seq)
      window
  end;
  (* Fan the trial melds out, sharded by paper thread id: pool task [k]
     impersonates premeld thread [threads.(k)] and owns its allocator and
     counter shard, processing that thread's members in log order. *)
  let outcomes = Array.make b (Premeld.Unchanged window.(0)) in
  let by_thread = Array.make pc.Premeld.threads [] in
  for i = b - 1 downto 0 do
    let th = Premeld.thread_for pc ~seq:(s0 + i) in
    by_thread.(th - 1) <- i :: by_thread.(th - 1)
  done;
  let active =
    Array.of_seq
      (Seq.filter
         (fun k -> by_thread.(k) <> [])
         (Seq.init pc.Premeld.threads Fun.id))
  in
  let lookup = State_store.Snapshot.by_seq snap in
  Runtime.run_tasks t.runtime ~tasks:(Array.length active) (fun task ->
      let k = active.(task) in
      let shard = t.counters.premeld_shards.(k) in
      let t0 = Clock.now () in
      List.iter
        (fun i ->
          let ft0 = if flighted then Clock.now () else 0.0 in
          outcomes.(i) <-
            Premeld.trial ~trace:t.trace pc ~snap_seq:snap_seqs.(i) ~lookup
              ~alloc:t.pm_allocs.(k) ~counters:shard ~seq:(s0 + i)
              window.(i);
          if flighted then begin
            pm_t0.(i) <- ft0;
            pm_t1.(i) <- Clock.now ()
          end)
        by_thread.(k);
      let t1 = Clock.now () in
      shard.Counters.seconds <- shard.Counters.seconds +. (t1 -. t0);
      (* Envelope span for the whole pool task, on the same ring the
         task's trial melds write to (same impersonated thread = same
         single writer). *)
      if Trace.enabled t.trace then
        Trace.record t.trace ~track:(k + 1) ~stage:Trace.Premeld_window
          ~seq:s0 ~t0 ~t1
          ~nodes:(List.length by_thread.(k))
          ~detail:task);
  (* Merge back in submission order: group meld and final meld are the
     same sequential tail the inline scheduler uses. *)
  let decisions = ref [] in
  for i = 0 to b - 1 do
    if flighted then
      Flight.edge t.flight ~pos:window.(i).Intention.pos ~stage:Flight.Pm
        ~t0:pm_t0.(i) ~t1:pm_t1.(i);
    let dgroup = group_of_outcome ~seq:(s0 + i) window.(i) outcomes.(i) in
    decisions := List.rev_append (tail t ~seq:(s0 + i) dgroup) !decisions
  done;
  List.rev !decisions

(* ------------------------------------------------------------------ *)
(* Pipelined windows                                                    *)
(* ------------------------------------------------------------------ *)

(* Worker-side job execution.  Everything a job touches is either
   carried in the job, owned by the executing worker for the whole
   pipeline lifetime (scratch, the impersonated premeld threads'
   allocators and counter shards, the gm allocator and group state), or
   frozen per window by the driver before any job is pushed (snapshot,
   resolvers). *)
let pexec t (w : wctx) ~worker (c : carrier) =
  (match c.kind with
  | Cnone -> ()
  | Cds -> (
      let traced = Trace.enabled t.trace in
      let t0 = Clock.now () in
      (* Workers decode against the frozen snapshot alone.  A reference
         to a node the log melded away (alive only through the driver's
         intention cache) is unresolvable here — report failure and let
         the driver redo the decode inline, where the cache prefix is
         complete by log-order consumption. *)
      match
        Codec.decode_pooled ~scratch:w.scratches.(worker) ~pos:c.c_pos
          ~off:c.c_off ~len:c.c_len ~resolve:w.wresolvers.(worker) c.c_src
      with
      | exception Codec.Corrupt _ ->
          c.c_intention <- None;
          c.c_nodes <- [||];
          c.c_seconds_ns <- 0;
          c.c_t0_ns <- ns_of_s t0
      | i ->
          let t1 = Clock.now () in
          if traced then
            Trace.record t.trace
              ~track:(Trace.shards t.trace + 1 + worker)
              ~stage:Trace.Deserialize ~seq:c.c_seq ~t0 ~t1
              ~nodes:i.Intention.node_count ~detail:i.Intention.byte_size;
          c.c_intention <- Some i;
          c.c_nodes <- Codec.Scratch.export w.scratches.(worker);
          c.c_seconds_ns <- ns_of_s (t1 -. t0);
          c.c_t0_ns <- ns_of_s t0)
  | Cpm ->
      let pc =
        match t.config.premeld with Some pc -> pc | None -> assert false
      in
      let intention =
        match c.c_intention with Some i -> i | None -> assert false
      in
      let shard = t.counters.premeld_shards.(c.c_thread - 1) in
      let t0 = Clock.now () in
      let outcome =
        Premeld.trial ~trace:t.trace pc ~snap_seq:c.c_snap_seq
          ~lookup:(fun m ->
            Some (State_store.Snapshot.require w.wsnap ~stage:"premeld" m))
          ~alloc:t.pm_allocs.(c.c_thread - 1)
          ~counters:shard ~seq:c.c_seq intention
      in
      let dt = Clock.elapsed t0 in
      shard.Counters.seconds <- shard.Counters.seconds +. dt;
      c.c_outcome <- Some outcome;
      c.c_seconds_ns <- ns_of_s dt;
      c.c_t0_ns <- ns_of_s t0
  | Cgm ->
      (* Report the gm-counter delta, not a wrapper measurement, so the
         offloaded seconds subtract exactly from the stage total.  The gm
         counter is only ever touched by this worker while a window is in
         flight (every Cgm runs here), so the read is race-free.  Flight
         wall brackets are extra clock reads gated on the recorder (the
         recorder itself is driver-only; only timestamps cross back). *)
      let group = match c.c_group with Some g -> g | None -> assert false in
      let flighted = Flight.enabled t.flight in
      let ft0 = if flighted then Clock.now () else 0.0 in
      let s0 = t.counters.group_meld.Counters.seconds in
      let completed =
        gm_step t ~track:(Trace.shards t.trace + 1 + worker) ~seq:c.c_seq group
      in
      let ft1 = if flighted then Clock.now () else 0.0 in
      c.c_completed <- completed;
      c.c_seconds_ns <-
        ns_of_s (t.counters.group_meld.Counters.seconds -. s0);
      c.c_t0_ns <- ns_of_s ft0;
      c.c_t1_ns <- ns_of_s ft1);
  c

(* Run one window of work items through the staged pipeline:

     ds (workers)  ->  pm (workers, sharded by paper thread)
                   ->  gm (one dedicated worker, global log order)
                   ->  fm (the driver, log order)

   Stage assignment is a pure function of log position: the decode of
   item [i] runs on worker [i mod domains], premeld thread [k]'s trials
   run in seq order on worker [(k-1) mod domains], and every gm combine
   runs on worker [domains-1] in log order.  The bounded SPSC queues
   reorder wall-clock only: the driver releases pm jobs per thread in
   seq order (after the member's decode lands) and gm jobs in global
   order (after the member's premeld lands), so consumption order — and
   with it every allocator stream and counter — is independent of
   arrival timing. *)
let run_pipelined_window t (px : pctx) (window : witem array) =
  let b = Array.length window in
  let s0 = t.next_seq in
  t.next_seq <- s0 + b;
  let pool = px.ppool in
  let domains = px.pdomains in
  let qcap = px.qcap in
  let gm_worker = domains - 1 in
  let flighted = Flight.enabled t.flight in
  (* One shared clock read opens every member's flight record at window
     entry: time spent queued before a stage releases (SPSC residency,
     snapshot-lag holds) then lands in that stage's wait column. *)
  if flighted then begin
    let now = Clock.now () in
    Array.iter
      (function
        | Wi (i : Intention.t) ->
            Flight.touch t.flight ~pos:i.Intention.pos ~now;
            Flight.note_identity t.flight ~pos:i.Intention.pos
              ~server:i.Intention.server ~txn_seq:i.Intention.txn_seq
        | Ww { pos; _ } -> Flight.touch t.flight ~pos ~now)
      window
  end;
  (* Freeze the retention window and publish per-worker resolvers before
     any job of this window is pushed. *)
  let snap = State_store.snapshot t.states in
  px.wctx.wsnap <- snap;
  for w = 0 to domains - 1 do
    px.wctx.wresolvers.(w) <- State_store.Snapshot.resolver ~stage:"ds" snap
  done;
  let _, latest_pos0 = State_store.Snapshot.latest snap in
  let snap_seqs =
    match t.config.premeld with
    | None -> [||]
    | Some _ ->
        window_snap_seqs t ~snap ~s0
          ~poss:
            (Array.map
               (function Wi i -> i.Intention.pos | Ww w -> w.pos)
               window)
          ~snaps:
            (Array.map
               (function Wi i -> i.Intention.snapshot | Ww w -> w.psnap)
               window)
  in
  let intentions = Array.make b None in
  let outcomes = Array.make b None in
  (* ds classification: wire items whose snapshot state was recorded at
     window start are offloadable; the rest wait on the driver until
     final meld inside this window records their snapshot state. *)
  let ds_jobs = Array.make domains [] in
  let held = ref [] in
  for i = b - 1 downto 0 do
    match window.(i) with
    | Wi intent -> intentions.(i) <- Some intent
    | Ww { psnap; _ } ->
        if psnap <= latest_pos0 then
          ds_jobs.(i mod domains) <- i :: ds_jobs.(i mod domains)
        else held := i :: !held
  done;
  (* Premeld release state: per paper thread, the member indexes still to
     premeld, in seq order (head-of-line: a thread's next trial is only
     released once its member is decoded, keeping that thread's allocator
     stream in seq order on its owning worker). *)
  let pm_pending =
    match t.config.premeld with
    | None -> [||]
    | Some pc ->
        let bt = Array.make pc.Premeld.threads [] in
        for i = b - 1 downto 0 do
          let th = Premeld.thread_for pc ~seq:(s0 + i) in
          bt.(th - 1) <- i :: bt.(th - 1)
        done;
        bt
  in
  let gm_next = ref 0 in
  let rgm = ref 0 in
  let decisions = ref [] in
  let progress = ref false in
  (* Premeld jobs in flight per paper thread: stealing a thread's
     head-of-line trial is only safe while this is zero (the allocator
     stream must stay in seq order). *)
  let pm_inflight = Array.make (max 1 (Array.length pm_pending)) 0 in
  let inst = t.inst in
  let observe_batch n =
    match inst with
    | None -> ()
    | Some i -> Metrics.Histogram.observe i.m_spsc_batch (float_of_int n)
  in
  (* Pooled-carrier handoff: [take] pops worker [w]'s free stack (the
     outstanding budget proves it is never empty when a release gate
     passes), [put] stages the filled carrier for the next flush, and
     [flush] publishes every staged job with one ring publication and at
     most one doorbell.  Nothing in this path allocates. *)
  let take w =
    let top = px.free_top.(w) - 1 in
    px.free_top.(w) <- top;
    px.free.(w).(top)
  in
  let recycle w (c : carrier) =
    c.kind <- Cnone;
    c.c_src <- "";
    c.c_intention <- None;
    c.c_group <- None;
    c.c_completed <- None;
    c.c_nodes <- [||];
    c.c_outcome <- None;
    px.free.(w).(px.free_top.(w)) <- c;
    px.free_top.(w) <- px.free_top.(w) + 1
  in
  let flush w =
    let n = px.stage_n.(w) in
    if n > 0 then begin
      let accepted =
        Runtime.Stage_pool.submit_batch pool ~worker:w px.stage_buf.(w) ~len:n
      in
      if accepted <> n then
        failwith "Pipeline: stage pool job queue unexpectedly full";
      px.stage_n.(w) <- 0;
      px.handoff_batches <- px.handoff_batches + 1;
      px.handoff_items <- px.handoff_items + n;
      observe_batch n
    end
  in
  let flush_all () =
    for w = 0 to domains - 1 do
      flush w
    done
  in
  let put ~worker c =
    px.stage_buf.(worker).(px.stage_n.(worker)) <- c;
    px.stage_n.(worker) <- px.stage_n.(worker) + 1;
    px.outstanding.(worker) <- px.outstanding.(worker) + 1;
    if px.outstanding.(worker) > px.max_depth then
      px.max_depth <- px.outstanding.(worker);
    progress := true;
    if px.stage_n.(worker) >= Runtime.Adaptive.batch px.adapt then flush worker
  in
  (* In-flight window per worker: the adaptive controller can shrink it
     below [qcap] to bias toward latency; release gates check it, the
     budget proofs only need [limit () <= qcap] (guaranteed by the
     controller's clamp). *)
  let limit () = Runtime.Adaptive.window px.adapt in
  let release_ds () =
    for w = 0 to domains - 1 do
      let rec go () =
        match ds_jobs.(w) with
        | i :: rest when px.outstanding.(w) < limit () ->
            (match window.(i) with
            | Ww { pos; src; off; len; _ } ->
                let c = take w in
                c.kind <- Cds;
                c.c_idx <- i;
                c.c_seq <- s0 + i;
                c.c_pos <- pos;
                c.c_src <- src;
                c.c_off <- off;
                c.c_len <- len;
                put ~worker:w c;
                px.ds_offloaded <- px.ds_offloaded + 1
            | Wi _ -> assert false);
            ds_jobs.(w) <- rest;
            go ()
        | _ -> ()
      in
      go ()
    done
  in
  let release_pm () =
    for k = 0 to Array.length pm_pending - 1 do
      let w = k mod domains in
      let rec go () =
        match pm_pending.(k) with
        | i :: rest when px.outstanding.(w) < limit () -> (
            match intentions.(i) with
            | Some _ ->
                let c = take w in
                c.kind <- Cpm;
                c.c_idx <- i;
                c.c_seq <- s0 + i;
                c.c_thread <- k + 1;
                c.c_snap_seq <- snap_seqs.(i);
                c.c_intention <- intentions.(i);
                put ~worker:w c;
                pm_inflight.(k) <- pm_inflight.(k) + 1;
                pm_pending.(k) <- rest;
                go ()
            | None -> ())
        | _ -> ()
      in
      go ()
    done
  in
  let release_gm () =
    let rec go () =
      if !gm_next < b && px.outstanding.(gm_worker) < limit () then begin
        let i = !gm_next in
        let unit_group =
          match t.config.premeld with
          | Some _ -> (
              match (outcomes.(i), intentions.(i)) with
              | Some o, Some intent ->
                  Some (group_of_outcome ~seq:(s0 + i) intent o)
              | _ -> None)
          | None -> (
              match intentions.(i) with
              | Some intent -> Some (Group_meld.single ~seq:(s0 + i) intent)
              | None -> None)
        in
        match unit_group with
        | Some _ ->
            let c = take gm_worker in
            c.kind <- Cgm;
            c.c_idx <- i;
            c.c_seq <- s0 + i;
            c.c_group <- unit_group;
            put ~worker:gm_worker c;
            incr gm_next;
            go ()
        | None -> ()
      end
    in
    go ()
  in
  (* Inline-decode held-back wire items whose snapshot state final meld
     has recorded since window start (in log order: the head unlocks
     first in any valid stream). *)
  let release_held () =
    let rec go () =
      match !held with
      | i :: rest -> (
          match window.(i) with
          | Ww { pos; src; off; len; psnap } ->
              let _, lpos, _ = State_store.latest t.states in
              if psnap <= lpos then begin
                intentions.(i) <-
                  Some
                    (decode_slice t ~scratch:px.wctx.dscratch ~seq:(s0 + i)
                       ~pos ~off ~len src);
                px.ds_inline_n <- px.ds_inline_n + 1;
                held := rest;
                progress := true;
                go ()
              end
          | Wi _ -> assert false)
      | [] -> ()
    in
    go ()
  in
  let pos_of idx =
    match window.(idx) with
    | Wi i -> i.Intention.pos
    | Ww { pos; _ } -> pos
  in
  let handle (c : carrier) =
    match c.kind with
    | Cnone -> ()
    | Cds -> (
        match c.c_intention with
        | Some i ->
            (* Index the worker-decoded nodes so later decodes (driver
               inline, held releases, the next window's failures) resolve
               references to them even after melding replaces them in the
               state.  Log-order consumption guarantees the cache holds a
               complete prefix whenever the driver decodes inline. *)
            intentions.(c.c_idx) <- c.c_intention;
            Intention_cache.add t.cache ~pos:i.Intention.pos c.c_nodes;
            let seconds = s_of_ns c.c_seconds_ns in
            let ds = t.counters.deserialize in
            ds.intentions <- ds.intentions + 1;
            ds.nodes_visited <- ds.nodes_visited + i.Intention.node_count;
            ds.seconds <- ds.seconds +. seconds;
            Summary.add t.counters.intention_bytes
              (float_of_int i.Intention.byte_size);
            px.worker_ds_seconds <- px.worker_ds_seconds +. seconds;
            if flighted then begin
              let t0 = s_of_ns c.c_t0_ns in
              Flight.note_identity t.flight ~pos:i.Intention.pos
                ~server:i.Intention.server ~txn_seq:i.Intention.txn_seq;
              Flight.edge t.flight ~pos:i.Intention.pos ~stage:Flight.Ds ~t0
                ~t1:(t0 +. seconds)
            end
        | None -> (
            (* The worker's cache-free decode could not resolve a
               reference; every reference of an offloadable item predates
               the window, so the driver's cache already covers it — redo
               inline now. *)
            match window.(c.c_idx) with
            | Ww { pos; src; off; len; _ } ->
                intentions.(c.c_idx) <-
                  Some
                    (decode_slice t ~scratch:px.wctx.dscratch
                       ~seq:(s0 + c.c_idx) ~pos ~off ~len src);
                px.ds_offloaded <- px.ds_offloaded - 1;
                px.ds_inline_n <- px.ds_inline_n + 1
            | Wi _ -> assert false))
    | Cpm ->
        outcomes.(c.c_idx) <- c.c_outcome;
        pm_inflight.(c.c_thread - 1) <- pm_inflight.(c.c_thread - 1) - 1;
        let seconds = s_of_ns c.c_seconds_ns in
        px.worker_pm_seconds <- px.worker_pm_seconds +. seconds;
        if flighted then begin
          let t0 = s_of_ns c.c_t0_ns in
          Flight.edge t.flight ~pos:(pos_of c.c_idx) ~stage:Flight.Pm ~t0
            ~t1:(t0 +. seconds)
        end
    | Cgm -> (
        incr rgm;
        px.worker_gm_seconds <- px.worker_gm_seconds +. s_of_ns c.c_seconds_ns;
        if flighted then
          Flight.edge t.flight ~pos:(pos_of c.c_idx) ~stage:Flight.Gm
            ~t0:(s_of_ns c.c_t0_ns) ~t1:(s_of_ns c.c_t1_ns);
        match c.c_completed with
        | Some g -> decisions := List.rev_append (final_meld t g) !decisions
        | None -> ())
  in
  (* Driver work-stealing: called when a scheduling round neither drained
     a result nor released a job but work is still in flight — instead of
     parking, inline the oldest queued ds or pm item.  Steals only come
     off driver-owned backlog lists (never the rings), ds steals reuse
     the inline decode path (already bit-identical by the held-item
     argument), and a pm steal requires its paper thread quiescent, so
     stage assignment stays a pure function of log position and every
     allocator stream keeps its seq order. *)
  let steal () =
    let bw = ref (-1) and bi = ref max_int in
    for w = 0 to domains - 1 do
      match ds_jobs.(w) with
      | i :: _ when i < !bi ->
          bi := i;
          bw := w
      | _ -> ()
    done;
    if !bw >= 0 then begin
      (match window.(!bi) with
      | Ww { pos; src; off; len; _ } ->
          intentions.(!bi) <-
            Some
              (decode_slice t ~scratch:px.wctx.dscratch ~seq:(s0 + !bi) ~pos
                 ~off ~len src)
      | Wi _ -> assert false);
      ds_jobs.(!bw) <- List.tl ds_jobs.(!bw);
      px.ds_inline_n <- px.ds_inline_n + 1;
      px.driver_steals <- px.driver_steals + 1;
      (match inst with None -> () | Some m -> Metrics.Counter.incr m.m_steals);
      progress := true;
      true
    end
    else begin
      let bk = ref (-1) in
      bi := max_int;
      for k = 0 to Array.length pm_pending - 1 do
        match pm_pending.(k) with
        | i :: _
          when i < !bi && pm_inflight.(k) = 0 && Option.is_some intentions.(i)
          ->
            bi := i;
            bk := k
        | _ -> ()
      done;
      if !bk < 0 then false
      else begin
        let k = !bk and i = !bi in
        let pc =
          match t.config.premeld with Some pc -> pc | None -> assert false
        in
        let intent =
          match intentions.(i) with Some x -> x | None -> assert false
        in
        let shard = t.counters.premeld_shards.(k) in
        let t0 = Clock.now () in
        let outcome =
          Premeld.trial ~trace:t.trace pc ~snap_seq:snap_seqs.(i)
            ~lookup:(fun m ->
              Some
                (State_store.Snapshot.require px.wctx.wsnap ~stage:"premeld" m))
            ~alloc:t.pm_allocs.(k) ~counters:shard ~seq:(s0 + i) intent
        in
        let dt = Clock.elapsed t0 in
        shard.Counters.seconds <- shard.Counters.seconds +. dt;
        outcomes.(i) <- Some outcome;
        pm_pending.(k) <- List.tl pm_pending.(k);
        px.driver_steals <- px.driver_steals + 1;
        (match inst with
        | None -> ()
        | Some m -> Metrics.Counter.incr m.m_steals);
        if flighted then
          Flight.edge t.flight ~pos:(pos_of i) ~stage:Flight.Pm ~t0
            ~t1:(t0 +. dt);
        progress := true;
        true
      end
    end
  in
  while !rgm < b do
    (* Sample the doorbell before draining so a result pushed after the
       final drain pass makes the park below return immediately. *)
    let seen = Runtime.Stage_pool.events pool in
    progress := false;
    for w = 0 to domains - 1 do
      let n =
        Runtime.Stage_pool.result_batch pool ~worker:w px.drain_buf ~max:qcap
      in
      if n > 0 then begin
        observe_batch n;
        for i = 0 to n - 1 do
          let c = px.drain_buf.(i) in
          px.outstanding.(w) <- px.outstanding.(w) - 1;
          handle c;
          recycle w c
        done;
        progress := true
      end
    done;
    release_held ();
    release_pm ();
    release_gm ();
    release_ds ();
    (* Partial batches must reach the rings before this round can decide
       to park — staged-but-unpublished work never wakes a worker. *)
    flush_all ();
    (let depth = ref 0 in
     for w = 0 to domains - 1 do
       let d = Runtime.Stage_pool.job_depth pool ~worker:w in
       if d > !depth then depth := d
     done;
     Runtime.Adaptive.observe px.adapt ~depth:!depth);
    (match inst with
    | None -> ()
    | Some i ->
        Metrics.Gauge.set i.m_adaptive_window
          (float_of_int (Runtime.Adaptive.window px.adapt)));
    if (not !progress) && !rgm < b then begin
      let in_flight = Array.fold_left ( + ) 0 px.outstanding in
      if in_flight > 0 then begin
        if not (steal ()) then Runtime.Stage_pool.wait pool ~seen
      end
      else
        (* Nothing in flight and nothing releasable: the stream is
           invalid (a member names a snapshot state the log never
           records before it).  Name the starved member. *)
        match !held with
        | i :: _ ->
            let pos, psnap =
              match window.(i) with
              | Ww { pos; psnap; _ } -> (pos, psnap)
              | Wi _ -> assert false
            in
            let _, lpos, _ = State_store.latest t.states in
            failwith
              (Printf.sprintf
                 "Pipeline: pipelined window stalled: intention at log \
                  position %d names snapshot %d but only %d is recorded — \
                  invalid stream"
                 pos psnap lpos)
        | [] ->
            failwith
              "Pipeline: pipelined window stalled with no work in flight"
    end
  done;
  (* One counter scrape per window keeps the doorbell metric hot-path
     free: the wakeup totals live in plain producer-written fields. *)
  (match inst with
  | None -> ()
  | Some i ->
      let db = Runtime.Stage_pool.doorbell_wakeups pool in
      Metrics.Counter.incr ~by:(db - px.doorbells_seen) i.m_doorbells;
      px.doorbells_seen <- db);
  List.rev !decisions

(* Cut a stream of work items into safe windows and run each through the
   staged pipeline.  Same window bound as the parallel backend: every
   member's designated premeld input state must already be recorded at
   window start.  Windows are drained completely before the next starts —
   cross-window pipelining would require premelding against states the
   previous window has not recorded yet. *)
let run_pipelined t (px : pctx) (items : witem array) =
  let n = Array.length items in
  let decisions = ref [] in
  let off = ref 0 in
  while !off < n do
    let cap =
      match t.config.premeld with
      | Some pc ->
          (pc.Premeld.threads * pc.Premeld.distance) + 1 - t.pending_members
      | None -> 64
    in
    if cap < 1 then begin
      (* Pathological config (group_size > threads*distance + 1): no
         window is safe, fall back to the inline scheduler for one item
         and retry. *)
      let d =
        match items.(!off) with
        | Wi i -> submit t i
        | Ww { pos; src; off = o; len; psnap } ->
            let _, lpos, _ = State_store.latest t.states in
            if psnap > lpos then
              failwith
                (Printf.sprintf
                   "Pipeline: intention at log position %d names snapshot %d \
                    but only %d is recorded — invalid stream"
                   pos psnap lpos);
            let i =
              decode_slice t ~scratch:px.wctx.dscratch ~seq:t.next_seq ~pos
                ~off:o ~len src
            in
            px.ds_inline_n <- px.ds_inline_n + 1;
            submit t i
      in
      decisions := List.rev_append d !decisions;
      incr off
    end
    else begin
      let b = min cap (n - !off) in
      let window = Array.sub items !off b in
      decisions := List.rev_append (run_pipelined_window t px window) !decisions;
      off := !off + b
    end
  done;
  List.rev !decisions

let submit_batch t (intentions : Intention.t list) =
  match t.pstate with
  | Some px ->
      run_pipelined t px
        (Array.of_list (List.map (fun i -> Wi i) intentions))
  | None -> (
      match (Runtime.is_parallel t.runtime, t.config.premeld) with
      | false, _ | _, None ->
          (* Sequential backend (or nothing to parallelize): the original
             inline scheduler, one intention at a time. *)
          List.concat_map (submit t) intentions
      | true, Some pc ->
          let arr = Array.of_list intentions in
          let n = Array.length arr in
          let decisions = ref [] in
          let off = ref 0 in
          while !off < n do
            (* The designated input state of the window's last member must
               already be recorded: states lag submissions by the group
               members still being assembled, so the window shrinks by
               [pending_members] (it re-widens as soon as a group inside
               this window completes). *)
            let cap =
              (pc.Premeld.threads * pc.Premeld.distance) + 1
              - t.pending_members
            in
            if cap < 1 then begin
              (* Pathological config (group_size > threads*distance + 1):
                 no window is safe, fall back to the inline scheduler for
                 one intention and retry. *)
              decisions := List.rev_append (submit t arr.(!off)) !decisions;
              incr off
            end
            else begin
              let b = min cap (n - !off) in
              let window = Array.sub arr !off b in
              decisions := List.rev_append (run_window t pc window) !decisions;
              off := !off + b
            end
          done;
          List.rev !decisions)

let submit_wire_batch t (items : (int * string) list) =
  match t.pstate with
  | Some px ->
      run_pipelined t px
        (Array.of_list
           (List.map
              (fun (pos, src) ->
                Ww
                  {
                    pos;
                    src;
                    off = 0;
                    len = String.length src;
                    psnap = Codec.peek_snapshot src;
                  })
              items))
  | None ->
      (* Decode-then-submit in maximal safe prefixes: an intention can
         only be deserialized once the state its snapshot names is
         recorded, so each chunk is the longest prefix whose snapshots
         all precede the states recorded so far; melding the chunk then
         unlocks the next. *)
      let arr = Array.of_list items in
      let n = Array.length arr in
      let decisions = ref [] in
      let off = ref 0 in
      while !off < n do
        let _, lpos, _ = State_store.latest t.states in
        let chunk = ref [] in
        let stop = ref false in
        while (not !stop) && !off < n do
          let pos, src = arr.(!off) in
          if Codec.peek_snapshot src <= lpos then begin
            chunk := decode t ~pos src :: !chunk;
            incr off
          end
          else stop := true
        done;
        if !chunk = [] then begin
          let pos, src = arr.(!off) in
          failwith
            (Printf.sprintf
               "Pipeline.submit_wire_batch: intention at log position %d \
                names snapshot %d but only %d is recorded — invalid stream"
               pos (Codec.peek_snapshot src) lpos)
        end;
        decisions :=
          List.rev_append (submit_batch t (List.rev !chunk)) !decisions
      done;
      List.rev !decisions

let flush t =
  match t.pending with
  | None -> []
  | Some g ->
      t.pending <- None;
      t.pending_members <- 0;
      final_meld t g

let prune t ~keep =
  let floor_for_premeld =
    match t.config.premeld with
    | None -> 2
    | Some { Premeld.threads; distance } -> (threads * distance) + 2
  in
  State_store.prune t.states ~keep:(max keep floor_for_premeld)

(* Config/trace validation and worker-fabric setup shared by [create] and
   [restore]. *)
let validate_shape ~who ~config ~runtime ~trace =
  if config.group_size < 1 then
    invalid_arg (Printf.sprintf "Pipeline.%s: group_size" who);
  (match config.premeld with
  | Some { Premeld.threads; distance } when threads < 1 || distance < 1 ->
      invalid_arg (Printf.sprintf "Pipeline.%s: premeld config" who)
  | _ -> ());
  let pm_threads =
    match config.premeld with Some c -> c.Premeld.threads | None -> 0
  in
  if Trace.enabled trace && Trace.shards trace < pm_threads then
    invalid_arg
      (Printf.sprintf "Pipeline.%s: trace has fewer shards than premeld threads"
         who);
  (match runtime with
  | Runtime.Pipelined { domains; _ } ->
      if Trace.enabled trace && Trace.workers trace < domains then
        invalid_arg
          (Printf.sprintf
             "Pipeline.%s: trace has fewer worker rings than pipelined domains"
             who)
  | Runtime.Sequential | Runtime.Parallel _ -> ());
  pm_threads

let make_instruments metrics =
  Option.map
    (fun m ->
      {
        m_conflict_zone = Metrics.histogram m "pipeline_conflict_zone_intentions";
        m_fm_nodes = Metrics.histogram m "pipeline_fm_nodes_per_txn";
        m_commits = Metrics.counter m "pipeline_commits";
        m_aborts = Metrics.counter m "pipeline_aborts";
        m_aborts_write = Metrics.counter m "pipeline_aborts_write_conflict";
        m_aborts_read = Metrics.counter m "pipeline_aborts_read_conflict";
        m_aborts_phantom = Metrics.counter m "pipeline_aborts_phantom_conflict";
        m_ds_gc_minor = Metrics.fcounter m "pipeline_ds_gc_minor_words";
        m_ds_gc_promoted = Metrics.fcounter m "pipeline_ds_gc_promoted_words";
        m_pm_gc_minor = Metrics.fcounter m "pipeline_pm_gc_minor_words";
        m_pm_gc_promoted = Metrics.fcounter m "pipeline_pm_gc_promoted_words";
        m_gm_gc_minor = Metrics.fcounter m "pipeline_gm_gc_minor_words";
        m_gm_gc_promoted = Metrics.fcounter m "pipeline_gm_gc_promoted_words";
        m_fm_gc_minor = Metrics.fcounter m "pipeline_fm_gc_minor_words";
        m_fm_gc_promoted = Metrics.fcounter m "pipeline_fm_gc_promoted_words";
        m_mz_gc_minor = Metrics.fcounter m "pipeline_mz_gc_minor_words";
        m_spsc_batch = Metrics.histogram m "spsc_batch_size";
        m_doorbells = Metrics.counter m "spsc_doorbell_wakeups_total";
        m_steals = Metrics.counter m "driver_steals_total";
        m_adaptive_window = Metrics.gauge m "adaptive_window_size";
      })
    metrics

let attach_pstate t runtime =
  match runtime with
  | Runtime.Pipelined { domains; batch; adaptive } ->
      let wctx =
        {
          wsnap = State_store.snapshot t.states;
          wresolvers = Array.make domains null_resolver;
          scratches = Array.init domains (fun _ -> Codec.Scratch.create ());
          dscratch = Codec.Scratch.create ();
        }
      in
      let dummy = fresh_carrier () in
      let pool =
        Runtime.Stage_pool.create ~queue:32 ~domains ~dummy_job:dummy
          ~dummy_result:dummy
          ~exec:(fun ~worker c -> pexec t wctx ~worker c)
          ()
      in
      let qcap = Runtime.Stage_pool.queue_capacity pool in
      t.pstate <-
        Some
          {
            ppool = pool;
            pdomains = domains;
            qcap;
            outstanding = Array.make domains 0;
            wctx;
            adapt =
              Runtime.Adaptive.create ~enabled:adaptive ~batch ~capacity:qcap
                ();
            (* qcap carriers per worker pair: since staged + in-flight
               never exceeds qcap, a release gate passing implies a free
               carrier. *)
            free =
              Array.init domains (fun _ ->
                  Array.init qcap (fun _ -> fresh_carrier ()));
            free_top = Array.make domains qcap;
            stage_buf = Array.init domains (fun _ -> Array.make qcap dummy);
            stage_n = Array.make domains 0;
            drain_buf = Array.make qcap dummy;
            ds_offloaded = 0;
            ds_inline_n = 0;
            worker_ds_seconds = 0.0;
            worker_pm_seconds = 0.0;
            worker_gm_seconds = 0.0;
            max_depth = 0;
            handoff_batches = 0;
            handoff_items = 0;
            driver_steals = 0;
            doorbells_seen = 0;
          }
  | Runtime.Sequential | Runtime.Parallel _ -> ()

let create ?(config = plain) ?(runtime = Runtime.sequential)
    ?(lazy_decode = true) ?(trace = Trace.disabled) ?(flight = Flight.disabled)
    ?metrics ~genesis () =
  let pm_threads = validate_shape ~who:"create" ~config ~runtime ~trace in
  let t =
    {
      config;
      lazy_decode;
      runtime = Runtime.create ?metrics runtime;
      trace;
      flight;
      inst = make_instruments metrics;
      counters = Counters.create ~premeld_shards:(max 1 pm_threads) ();
      states = State_store.create ~genesis ();
      cache = Intention_cache.create ();
      fm_alloc = Vn.Alloc.create ~thread:0;
      pm_allocs =
        Array.init pm_threads (fun i -> Vn.Alloc.create ~thread:(i + 1));
      gm_alloc = Vn.Alloc.create ~thread:(pm_threads + 1);
      next_seq = 0;
      pending = None;
      pending_members = 0;
      pstate = None;
    }
  in
  attach_pstate t runtime;
  t

(* --- checkpoint / restore ----------------------------------------------- *)

let checkpoint t =
  match t.pending with
  | Some _ -> None
  | None ->
    Some
      (Checkpoint.capture
         ~store:(State_store.snapshot t.states)
         ~alloc_issued:
           (Array.concat
              [
                [| Vn.Alloc.issued t.fm_alloc |];
                Array.map Vn.Alloc.issued t.pm_allocs;
                [| Vn.Alloc.issued t.gm_alloc |];
              ])
         ~counters:t.counters)

let restore ?(config = plain) ?(runtime = Runtime.sequential)
    ?(lazy_decode = true) ?(trace = Trace.disabled) ?(flight = Flight.disabled)
    ?metrics (ckpt : Checkpoint.t) =
  let pm_threads = validate_shape ~who:"restore" ~config ~runtime ~trace in
  if Array.length ckpt.Checkpoint.alloc_issued <> pm_threads + 2 then
    invalid_arg
      (Printf.sprintf
         "Pipeline.restore: checkpoint has %d allocator cursors but this \
          config needs %d (captured under a different premeld config)"
         (Array.length ckpt.Checkpoint.alloc_issued)
         (pm_threads + 2));
  let counters = Counters.copy ckpt.Checkpoint.counters in
  if Array.length counters.Counters.premeld_shards <> max 1 pm_threads then
    invalid_arg
      "Pipeline.restore: checkpoint counter shards do not match this config";
  let resume alloc issued =
    Vn.Alloc.resume alloc ~issued;
    alloc
  in
  let issued = ckpt.Checkpoint.alloc_issued in
  let t =
    {
      config;
      lazy_decode;
      runtime = Runtime.create ?metrics runtime;
      trace;
      flight;
      inst = make_instruments metrics;
      counters;
      states = State_store.restore ckpt.Checkpoint.store;
      (* The intention cache died with the process; snapshot references of
         replayed intentions resolve through the restored window instead,
         which covers everything the original cache-missing path could. *)
      cache = Intention_cache.create ();
      fm_alloc = resume (Vn.Alloc.create ~thread:0) issued.(0);
      pm_allocs =
        Array.init pm_threads (fun i ->
            resume (Vn.Alloc.create ~thread:(i + 1)) issued.(i + 1));
      gm_alloc =
        resume (Vn.Alloc.create ~thread:(pm_threads + 1)) issued.(pm_threads + 1);
      next_seq = ckpt.Checkpoint.seq + 1;
      pending = None;
      pending_members = 0;
      pstate = None;
    }
  in
  attach_pstate t runtime;
  t
