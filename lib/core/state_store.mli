open Hyder_tree

(** Retained database states.

    Each server must keep recent committed states: premeld needs the state
    the index arithmetic of Algorithm 1 designates, the deserializer needs
    to resolve intention references against the originating transaction's
    snapshot, and executors need stable snapshots.  States are cheap to
    retain — consecutive states share all but O(log n) nodes.

    Two numberings coexist: the {e sequence number} (dense: the i-th
    intention melded, genesis = -1) and the {e log position} (sparse: the
    last-block position of that intention).  Premeld arithmetic uses
    sequence numbers; intention metadata uses log positions. *)

type t

val create : genesis:Tree.t -> unit -> t

val latest : t -> int * int * Tree.t
(** [(seq, pos, state)] of the current last committed state. *)

val record : t -> seq:int -> pos:int -> Tree.t -> unit
(** Record the state after melding intention [seq] at log position [pos]
    (for an aborted intention, the unchanged previous state).  [seq] must be
    consecutive and [pos] increasing. *)

val by_seq : t -> int -> Tree.t option
(** State after intention [seq]; [-1] is genesis.  [None] if pruned or not
    yet produced. *)

val by_pos : t -> int -> Tree.t option
(** State as of log position [pos]: the newest recorded state whose
    position is [<= pos].  [-1] is genesis. *)

val seq_of_pos : t -> int -> int
(** Sequence number of the newest intention with log position [<= pos]. *)

val require : t -> stage:string -> int -> Tree.t
(** State after sequence number [seq], or [Failure] naming the requesting
    [stage] and the retained range — prune-safety violations must say
    whose arithmetic was starved. *)

val resolver : ?stage:string -> t -> Hyder_codec.Codec.resolver
(** Resolver for the deserializer: looks the key up in the state at the
    intention's snapshot position.  [stage] (default ["ds"]) names the
    caller in prune-safety failures. *)

(** An immutable view of the retained states at a moment in time.

    {b Thread safety}: the store itself is single-writer, single-reader
    (the meld driver); a snapshot, by contrast, is a frozen copy of the
    retention window and may be read concurrently from any number of
    domains without synchronization.  The trees it hands out are
    immutable, so they are likewise safe to traverse in parallel.  The
    parallel premeld backend takes one snapshot per premeld window,
    before any trial meld is fanned out, and workers only ever read
    through it. *)
module Snapshot : sig
  type t

  val latest : t -> int * int
  (** [(seq, pos)] of the newest retained entry; [(-1, -1)] if none. *)

  val by_seq : t -> int -> Hyder_tree.Tree.t option
  (** Same contract as {!val:by_seq} on the live store, frozen. *)

  val by_pos : t -> int -> Hyder_tree.Tree.t option
  (** Same contract as {!val:by_pos} on the live store, frozen. *)

  val seq_of_pos : t -> int -> int
  (** Same contract as {!val:seq_of_pos} on the live store, frozen. *)

  val require : t -> stage:string -> int -> Hyder_tree.Tree.t
  (** Same contract as {!val:require} on the live store, frozen. *)

  val resolver : ?stage:string -> t -> Hyder_codec.Codec.resolver
  (** Same contract as {!val:resolver} on the live store, frozen — safe
      to call from worker domains (each call builds its own memo). *)
end

val snapshot : t -> Snapshot.t
(** O(retained) copy of the current retention window. *)

val restore : Snapshot.t -> t
(** Rebuild a live store from a frozen window — the crash-recovery path.
    The restored store retains exactly the snapshot's entries and keeps
    its pruned-history strictness, so every lookup answers as the source
    store would have at capture time; [record] continues from the
    snapshot's newest [(seq, pos)]. *)

val prune : t -> keep:int -> unit
(** Drop states older than the newest [keep] (genesis is always kept as the
    oldest retained state's stand-in). *)

val retained : t -> int
