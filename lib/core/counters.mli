(** Work counters for the meld pipeline.

    Figures 11, 13, 17, 19, 22 and 24 of the paper report exactly these
    quantities, so every stage keeps its own {!stage} record and the
    benchmark harness reads them after a run.

    {2 Premeld shards}

    Premeld work is counted into {e per-thread shards}, one per paper
    premeld thread id (Section 3.4), rather than one shared record.  Two
    reasons:

    - {b thread safety}: the parallel runtime runs one premeld thread's
      trial melds per pool task, so each shard has exactly one writer at
      any time and the hot counters need no locks or atomics;
    - {b determinism checking}: the shard an intention's work lands in is
      [seq mod t], identical under the sequential and parallel backends,
      so per-shard counts must match exactly across backends (seconds, of
      course, differ — that is the point).

    Readers merge the shards on demand with {!premeld_total}. *)

type stage = {
  mutable intentions : int;  (** intentions processed by this stage *)
  mutable nodes_visited : int;  (** tree nodes inspected by the meld operator *)
  mutable ephemerals : int;  (** ephemeral nodes created *)
  mutable grafts : int;  (** subtree grafts (early terminations) *)
  mutable aborts : int;  (** conflicts detected at this stage *)
  mutable seconds : float;  (** accumulated monotonic time in the stage *)
}

val make_stage : unit -> stage
val reset_stage : stage -> unit
val add_stage : into:stage -> stage -> unit
val copy_stage : stage -> stage

type t = {
  deserialize : stage;
  premeld_shards : stage array;
      (** per premeld-thread work records; shard [i] belongs to paper
          thread [i + 1] and is only ever written by the worker currently
          acting as that thread *)
  group_meld : stage;
  final_meld : stage;
  mutable committed : int;
  mutable aborted : int;
  conflict_zone : Hyder_util.Stats.Summary.t;
      (** intentions between (effective) snapshot and the LCS at final meld —
          the conflict zone length final meld observes (Figure 12) *)
  fm_nodes_per_txn : Hyder_util.Stats.Summary.t;
      (** nodes visited by final meld per intention (Figure 11) *)
  intention_bytes : Hyder_util.Stats.Summary.t;
      (** encoded intention sizes, when known (drives blocks-per-intention
          accounting in Figure 12) *)
}

val create : ?premeld_shards:int -> unit -> t
(** [premeld_shards] defaults to 1; the pipeline passes its premeld
    thread count. *)

val premeld_total : t -> stage
(** Merge the premeld shards into a fresh aggregate record (the
    merged-on-read view; never returns a shard itself). *)

val copy : t -> t
(** Independent copy of the stage records, commit/abort tallies {e and}
    the streaming summaries, for snapshotting counters at a
    measurement-window edge: window statistics are the difference between
    the live counters and the copy. *)

val reset : t -> unit
