open Hyder_tree

type entry = { seq : int; pos : int; state : Tree.t }

type t = {
  mutable entries : entry array;  (** circular buffer, ordered by seq *)
  mutable mask : int;  (** capacity - 1; capacity is a power of two *)
  mutable first : int;  (** index of oldest entry *)
  mutable count : int;
  mutable pruned_any : bool;
  genesis : Tree.t;
}

let initial_capacity = 4096 (* must stay a power of two: [nth] masks *)

let create ~genesis () =
  {
    entries =
      Array.make initial_capacity { seq = -1; pos = -1; state = genesis };
    mask = initial_capacity - 1;
    first = 0;
    count = 0;
    pruned_any = false;
    genesis;
  }

let nth t i = t.entries.((t.first + i) land t.mask)

(* Filler for slots that hold no live entry.  Unused and evacuated slots
   must not keep references to real states: a pruned [Tree.t] pinned by a
   stale slot survives until the ring wraps over it, which for a large
   capacity is effectively forever. *)
let dummy_entry t = { seq = -1; pos = -1; state = t.genesis }

let latest t =
  if t.count = 0 then (-1, -1, t.genesis)
  else begin
    let e = nth t (t.count - 1) in
    (e.seq, e.pos, e.state)
  end

let grow t =
  let cap = Array.length t.entries in
  let bigger = Array.make (2 * cap) (dummy_entry t) in
  for i = 0 to t.count - 1 do
    bigger.(i) <- nth t i
  done;
  t.entries <- bigger;
  t.mask <- (2 * cap) - 1;
  t.first <- 0

let record t ~seq ~pos state =
  let last_seq, last_pos, _ = latest t in
  if seq <> last_seq + 1 then
    invalid_arg
      (Printf.sprintf "State_store.record: seq %d after %d" seq last_seq);
  if pos <= last_pos then
    invalid_arg
      (Printf.sprintf "State_store.record: pos %d after %d" pos last_pos);
  if t.count = Array.length t.entries then grow t;
  t.entries.((t.first + t.count) land t.mask) <- { seq; pos; state };
  t.count <- t.count + 1

let by_seq t seq =
  if seq = -1 then Some t.genesis
  else if t.count = 0 then None
  else begin
    let first_seq = (nth t 0).seq in
    let i = seq - first_seq in
    if i < 0 || i >= t.count then None else Some (nth t i).state
  end

(* Newest entry with position <= pos, by binary search. *)
let find_by_pos t pos =
  if t.count = 0 || (nth t 0).pos > pos then None
  else begin
    let lo = ref 0 and hi = ref (t.count - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if (nth t mid).pos <= pos then lo := mid else hi := mid - 1
    done;
    Some (nth t !lo)
  end

let by_pos t pos =
  if pos = -1 then Some t.genesis
  else
    match find_by_pos t pos with
    | Some e -> Some e.state
    | None ->
        (* A position older than every recorded intention is the genesis
           state — unless history has been pruned away. *)
        if t.pruned_any then None else Some t.genesis

let seq_of_pos t pos =
  if pos = -1 then -1
  else match find_by_pos t pos with None -> -1 | Some e -> e.seq

(* Prune safety is a contract between the prune policy and every stage
   that looks states up; when it breaks, the error must say WHICH stage's
   arithmetic was starved (ds resolving a snapshot reference vs premeld
   fetching its designated input state need different retention floors). *)
let not_retained ~stage ~what v lo hi =
  failwith
    (Printf.sprintf
       "State_store: %s stage needs the state at %s %d but retention is \
        [%d..%d] — pruned too far for this stage"
       stage what v lo hi)

let require t ~stage seq =
  match by_seq t seq with
  | Some s -> s
  | None ->
      let lo = if t.count = 0 then 0 else (nth t 0).seq in
      not_retained ~stage ~what:"seq" seq lo (lo + t.count - 1)

(* Memoizing key resolver over an arbitrary position -> state lookup: one
   intention resolves many references against the same snapshot. *)
let make_resolver ~stage ~by_pos : Hyder_codec.Codec.resolver =
  let last = ref None in
  fun ~snapshot ~key ~vn ->
    ignore vn;
    let state =
      match !last with
      | Some (pos, state) when pos = snapshot -> Some state
      | _ ->
          let s = by_pos snapshot in
          (match s with Some st -> last := Some (snapshot, st) | None -> ());
          s
    in
    match state with
    | None -> not_retained ~stage ~what:"position" snapshot (-1) (-1)
    | Some state -> (
        match Tree.find state key with
        | None -> Node.empty
        | Some n -> n)

let resolver ?(stage = "ds") t = make_resolver ~stage ~by_pos:(by_pos t)

module Snapshot = struct
  type nonrec t = {
    entries : entry array;  (** oldest first, dense in seq *)
    genesis : Tree.t;
    pruned : bool;  (** whether the source store had ever pruned *)
  }

  let latest s =
    let n = Array.length s.entries in
    if n = 0 then (-1, -1) else (s.entries.(n - 1).seq, s.entries.(n - 1).pos)

  let by_seq s seq =
    if seq = -1 then Some s.genesis
    else begin
      let n = Array.length s.entries in
      if n = 0 then None
      else begin
        let i = seq - s.entries.(0).seq in
        if i < 0 || i >= n then None else Some s.entries.(i).state
      end
    end

  let require s ~stage seq =
    match by_seq s seq with
    | Some state -> state
    | None ->
        let n = Array.length s.entries in
        let lo = if n = 0 then 0 else s.entries.(0).seq in
        not_retained ~stage ~what:"seq" seq lo (lo + n - 1)

  (* Newest entry with position <= pos; same semantics as the live store's
     [by_pos], frozen. *)
  let by_pos s pos =
    let n = Array.length s.entries in
    if pos = -1 then Some s.genesis
    else if n = 0 || s.entries.(0).pos > pos then
      if s.pruned then None else Some s.genesis
    else begin
      let lo = ref 0 and hi = ref (n - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if s.entries.(mid).pos <= pos then lo := mid else hi := mid - 1
      done;
      Some s.entries.(!lo).state
    end

  let seq_of_pos s pos =
    let n = Array.length s.entries in
    if pos = -1 || n = 0 || s.entries.(0).pos > pos then -1
    else begin
      let lo = ref 0 and hi = ref (n - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if s.entries.(mid).pos <= pos then lo := mid else hi := mid - 1
      done;
      s.entries.(!lo).seq
    end

  let resolver ?(stage = "ds") s = make_resolver ~stage ~by_pos:(by_pos s)
end

let snapshot t =
  {
    Snapshot.entries = Array.init t.count (nth t);
    genesis = t.genesis;
    pruned = t.pruned_any;
  }

(* Rebuild a live store from a frozen retention window — the recovery
   path: a restarted pipeline resumes from a checkpointed window with
   exactly the lookup behaviour the original store had at capture time
   (same retained range, same pruned-history strictness). *)
let restore (s : Snapshot.t) =
  let n = Array.length s.Snapshot.entries in
  let cap = ref initial_capacity in
  while !cap < n + 1 do
    cap := 2 * !cap
  done;
  let entries =
    Array.make !cap { seq = -1; pos = -1; state = s.Snapshot.genesis }
  in
  Array.blit s.Snapshot.entries 0 entries 0 n;
  {
    entries;
    mask = !cap - 1;
    first = 0;
    count = n;
    pruned_any = s.Snapshot.pruned;
    genesis = s.Snapshot.genesis;
  }

let prune t ~keep =
  if keep < 0 then invalid_arg "State_store.prune";
  if t.count > keep then t.pruned_any <- true;
  let dummy = dummy_entry t in
  while t.count > keep do
    t.entries.(t.first) <- dummy;
    t.first <- (t.first + 1) land t.mask;
    t.count <- t.count - 1
  done

let retained t = t.count
