open Hyder_tree

type entry = { seq : int; pos : int; state : Tree.t }

type t = {
  mutable entries : entry array;  (** circular buffer, ordered by seq *)
  mutable first : int;  (** index of oldest entry *)
  mutable count : int;
  mutable pruned_any : bool;
  genesis : Tree.t;
}

let initial_capacity = 4096

let create ~genesis () =
  {
    entries =
      Array.make initial_capacity { seq = -1; pos = -1; state = genesis };
    first = 0;
    count = 0;
    pruned_any = false;
    genesis;
  }

let nth t i = t.entries.((t.first + i) mod Array.length t.entries)

let latest t =
  if t.count = 0 then (-1, -1, t.genesis)
  else begin
    let e = nth t (t.count - 1) in
    (e.seq, e.pos, e.state)
  end

let grow t =
  let cap = Array.length t.entries in
  let bigger = Array.make (2 * cap) t.entries.(0) in
  for i = 0 to t.count - 1 do
    bigger.(i) <- nth t i
  done;
  t.entries <- bigger;
  t.first <- 0

let record t ~seq ~pos state =
  let last_seq, last_pos, _ = latest t in
  if seq <> last_seq + 1 then
    invalid_arg
      (Printf.sprintf "State_store.record: seq %d after %d" seq last_seq);
  if pos <= last_pos then
    invalid_arg
      (Printf.sprintf "State_store.record: pos %d after %d" pos last_pos);
  if t.count = Array.length t.entries then grow t;
  t.entries.((t.first + t.count) mod Array.length t.entries) <-
    { seq; pos; state };
  t.count <- t.count + 1

let by_seq t seq =
  if seq = -1 then Some t.genesis
  else if t.count = 0 then None
  else begin
    let first_seq = (nth t 0).seq in
    let i = seq - first_seq in
    if i < 0 || i >= t.count then None else Some (nth t i).state
  end

(* Newest entry with position <= pos, by binary search. *)
let find_by_pos t pos =
  if t.count = 0 || (nth t 0).pos > pos then None
  else begin
    let lo = ref 0 and hi = ref (t.count - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if (nth t mid).pos <= pos then lo := mid else hi := mid - 1
    done;
    Some (nth t !lo)
  end

let by_pos t pos =
  if pos = -1 then Some t.genesis
  else
    match find_by_pos t pos with
    | Some e -> Some e.state
    | None ->
        (* A position older than every recorded intention is the genesis
           state — unless history has been pruned away. *)
        if t.pruned_any then None else Some t.genesis

let seq_of_pos t pos =
  if pos = -1 then -1
  else match find_by_pos t pos with None -> -1 | Some e -> e.seq

let resolver t =
  (* One intention resolves many references against the same snapshot, so
     memoize the last position -> state lookup. *)
  let last = ref None in
  fun ~snapshot ~key ~vn ->
    ignore vn;
    let state =
      match !last with
      | Some (pos, state) when pos = snapshot -> Some state
      | _ ->
          let s = by_pos t snapshot in
          (match s with Some st -> last := Some (snapshot, st) | None -> ());
          s
    in
    match state with
    | None ->
        failwith
          (Printf.sprintf
             "State_store.resolver: snapshot state at position %d not retained"
             snapshot)
    | Some state -> (
        match Tree.find state key with
        | None -> Node.Empty
        | Some n -> Node.Node n)

module Snapshot = struct
  type nonrec t = {
    entries : entry array;  (** oldest first, dense in seq *)
    genesis : Tree.t;
  }

  let latest s =
    let n = Array.length s.entries in
    if n = 0 then (-1, -1) else (s.entries.(n - 1).seq, s.entries.(n - 1).pos)

  let by_seq s seq =
    if seq = -1 then Some s.genesis
    else begin
      let n = Array.length s.entries in
      if n = 0 then None
      else begin
        let i = seq - s.entries.(0).seq in
        if i < 0 || i >= n then None else Some s.entries.(i).state
      end
    end

  let seq_of_pos s pos =
    let n = Array.length s.entries in
    if pos = -1 || n = 0 || s.entries.(0).pos > pos then -1
    else begin
      let lo = ref 0 and hi = ref (n - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if s.entries.(mid).pos <= pos then lo := mid else hi := mid - 1
      done;
      s.entries.(!lo).seq
    end
end

let snapshot t =
  { Snapshot.entries = Array.init t.count (nth t); genesis = t.genesis }

let prune t ~keep =
  if keep < 0 then invalid_arg "State_store.prune";
  if t.count > keep then t.pruned_any <- true;
  while t.count > keep do
    t.first <- (t.first + 1) mod Array.length t.entries;
    t.count <- t.count - 1
  done

let retained t = t.count
