open Hyder_tree
open Node

type mode = Final | Transaction of { out_owner : int }

type abort_reason =
  | Write_conflict of Key.t
  | Read_conflict of Key.t
  | Phantom_conflict of Key.t

let abort_reason_to_string = function
  | Write_conflict k -> Printf.sprintf "write-write conflict on key %d" k
  | Read_conflict k -> Printf.sprintf "read-write conflict on key %d" k
  | Phantom_conflict k -> Printf.sprintf "structure conflict at key %d" k

type result = Merged of Node.tree | Conflict of abort_reason

exception Abort of abort_reason

exception
  Corrupt_intention of string
    (* invariant violation: only raised on malformed inputs *)

(* Group meld subtlety (Section 4): when the state side is itself an earlier
   intention, it is NOT a superset of the later transaction's snapshot — the
   two snapshots can be ordered either way.  Conflict checks against data
   the earlier member did not itself write are therefore deferred to final
   meld (by carrying the dependency metadata into the merged node), and when
   both members depend on a key, the merged metadata refers to the EARLIER
   snapshot ("n12's readset must refer to the maximum of n1's and n2's
   conflict zones").  The adjacency of the two intentions in the log makes
   the single earlier reference sufficient: no third transaction can sit
   between them. *)

let meld ~mode ?(state_is_intention = false) ?(intention_snapshot = 0)
    ?(state_snapshot = -1) ~members ~alloc ~(counters : Counters.stage)
    ~intention ~state () =
  let transaction_mode, out_owner =
    match mode with
    | Final -> (false, Node.state_owner)
    | Transaction { out_owner } -> (true, out_owner)
  in
  (* [inside] runs on every node visit; members is almost always one
     intention or a group pair, so specialize those shapes to straight
     integer compares — no closure allocated per visit, no list walk. *)
  let inside =
    match members with
    | [] -> fun _ -> false
    | [ m0 ] -> fun owner -> owner = m0
    | [ m0; m1 ] -> fun owner -> owner = m0 || owner = m1
    | ms -> fun owner -> List.mem owner ms
  in
  let visit () = counters.nodes_visited <- counters.nodes_visited + 1 in
  let fresh () =
    counters.ephemerals <- counters.ephemerals + 1;
    Vn.Alloc.next alloc
  in
  let state_side_mine (nl : node) = state_is_intention && inside nl.owner in
  (* A node's ssv doubles as the graft precondition: "this subtree equals
     version ssv plus my own changes".  A copy made on a SPLIT PATH holds
     only half of its source's subtree, so it must never be graftable: it
     keeps its content metadata (scv) but takes its own fresh VN as ssv — a
     version no state will ever hold — unless it was an insert (ssv = None),
     which stays an insert. *)
  (* Under group meld every created node additionally degrafts: the merge
     can mix the newer member's view with the older member's stale snapshot
     subtrees, so no created node may claim its subtree is current.  Nodes
     adopted wholesale from one member keep their honest claims. *)
  let degraft ~restructured ~vn = function
    | None -> None
    | Some _ when restructured || state_is_intention -> Some vn
    | some -> some
  in
  (* Ephemeral copy of a state-side (or snapshot) node with new children. *)
  let eph_of_state ?(restructured = false) (nl : node) ~left ~right =
    let vn = fresh () in
    if transaction_mode then begin
      let mine = state_side_mine nl in
      let ssv, scv =
        if mine then (nl.ssv, nl.scv) else (Some nl.vn, Some nl.cv)
      in
      let ssv = degraft ~restructured ~vn ssv in
      Node.make ~key:nl.key ~payload:nl.payload ~left ~right ~vn ~cv:nl.cv
        ~ssv ~scv ~altered:(mine && nl.altered)
        ~depends_on_content:(mine && nl.depends_on_content)
        ~depends_on_structure:(mine && nl.depends_on_structure)
        ~owner:out_owner
    end
    else
      Node.make ~key:nl.key ~payload:nl.payload ~left ~right ~vn ~cv:nl.cv
        ~ssv:None ~scv:None ~altered:false ~depends_on_content:false
        ~depends_on_structure:false ~owner:state_owner
  in
  (* Ephemeral copy of an intention-side node whose conflict checks have not
     happened yet (restructuring around a concurrent insert): metadata and
     ownership must survive so the checks still fire deeper in the merge. *)
  let eph_of_intention ?(restructured = false) (ni : node) ~left ~right =
    let vn = fresh () in
    Node.make ~key:ni.key ~payload:ni.payload ~left ~right ~vn ~cv:ni.cv
      ~ssv:(degraft ~restructured ~vn ni.ssv)
      ~scv:ni.scv ~altered:ni.altered
      ~depends_on_content:ni.depends_on_content
      ~depends_on_structure:ni.depends_on_structure ~owner:ni.owner
  in
  let dependent (n : node) =
    n.altered || n.depends_on_content || n.depends_on_structure
  in
  (* Merged node for a key present on both sides, after conflict checks.
     The source metadata (ssv/scv) — and, for unaltered nodes, the payload
     it must stay consistent with — comes from whichever side speaks for the
     earlier history. *)
  let merged_node (ni : node) (nl : node) ~left ~right =
    if not transaction_mode then begin
      let payload, cv =
        if ni.altered then (ni.payload, ni.cv) else (nl.payload, nl.cv)
      in
      Node.make ~key:ni.key ~payload ~left ~right ~vn:(fresh ()) ~cv ~ssv:None
        ~scv:None ~altered:false ~depends_on_content:false
        ~depends_on_structure:false ~owner:state_owner
    end
    else begin
      let nl_mine = state_side_mine nl in
      let meta_from_state =
        if not state_is_intention then true (* premeld: refresh against LCS *)
        else begin
          let ni_dep = dependent ni in
          let nl_dep = nl_mine && dependent nl in
          if ni_dep && nl_dep then state_snapshot <= intention_snapshot
          else if nl_dep then true
          else if ni_dep then false
          else nl_mine
        end
      in
      let vn = fresh () in
      let ssv, scv =
        if meta_from_state then
          if nl_mine then (nl.ssv, nl.scv) else (Some nl.vn, Some nl.cv)
        else (ni.ssv, ni.scv)
      in
      let ssv = degraft ~restructured:false ~vn ssv in
      let payload, cv =
        if ni.altered then (ni.payload, ni.cv)
        else if nl_mine && nl.altered then (nl.payload, nl.cv)
        else if meta_from_state then (nl.payload, nl.cv)
        else (ni.payload, ni.cv)
      in
      Node.make ~key:ni.key ~payload ~left ~right ~vn ~cv ~ssv ~scv
        ~altered:(ni.altered || (nl_mine && nl.altered))
        ~depends_on_content:
          (ni.depends_on_content || (nl_mine && nl.depends_on_content))
        ~depends_on_structure:
          (ni.depends_on_structure || (nl_mine && nl.depends_on_structure))
        ~owner:out_owner
    end
  in
  (* Split the state side around a key it does not contain; the copies along
     the split path are ephemeral. *)
  let rec split_state l key =
    match l with
    | Empty -> (Empty, Empty)
    | Node nl ->
        visit ();
        if Key.compare nl.key key < 0 then begin
          let a, b = split_state nl.right key in
          (Node (eph_of_state ~restructured:true nl ~left:nl.left ~right:a), b)
        end
        else begin
          let a, b = split_state nl.left key in
          (a, Node (eph_of_state ~restructured:true nl ~left:b ~right:nl.right))
        end
  in
  (* Split the intention side around a concurrently inserted key. *)
  let rec split_intention i key =
    match i with
    | Empty -> (Empty, Empty)
    | Node ni ->
        visit ();
        let copy ~left ~right =
          if inside ni.owner then
            eph_of_intention ~restructured:true ni ~left ~right
          else eph_of_state ~restructured:true ni ~left ~right
        in
        if Key.compare ni.key key < 0 then begin
          let a, b = split_intention ni.right key in
          (Node (copy ~left:ni.left ~right:a), b)
        end
        else begin
          let a, b = split_intention ni.left key in
          (a, Node (copy ~left:b ~right:ni.right))
        end
  in
  (* Conflict checks for a key present on both sides. *)
  let check_node (ni : node) (nl : node) =
    match ni.ssv with
    | None ->
        (* T inserted the key, yet the state has it.  Even in group meld
           this is a genuine conflict: keys never disappear, so the key was
           created inside the later member's conflict zone. *)
        if ni.altered then raise (Abort (Write_conflict ni.key))
        else
          raise
            (Corrupt_intention
               (Printf.sprintf "non-insert node %d without ssv" ni.key))
    | Some _ ->
        let nl_mine = state_side_mine nl in
        if ni.altered || ni.depends_on_content then begin
          let do_check =
            if not state_is_intention then true
            else
              (* Against an earlier intention, only its own writes can
                 conflict here; anything else is older/newer snapshot skew
                 and is re-checked by final meld. *)
              nl_mine && nl.altered
          in
          if do_check then begin
            match ni.scv with
            | None ->
                raise
                  (Corrupt_intention
                     (Printf.sprintf "node %d has ssv but no scv" ni.key))
            | Some scv ->
                if not (Vn.equal scv nl.cv) then
                  raise
                    (Abort
                       (if ni.altered then Write_conflict ni.key
                        else Read_conflict ni.key))
          end
        end;
        if ni.depends_on_structure then begin
          (* The graft fast path did not fire, so the subtree version
             differs from what the transaction read. *)
          if not state_is_intention then raise (Abort (Phantom_conflict ni.key))
          else if nl_mine && nl.has_writes then
            (* The earlier member restructured this subtree. *)
            raise (Abort (Phantom_conflict ni.key))
          else if intention_snapshot < state_snapshot then
            (* The state side's view is newer: the structural change is
               committed and inside the conflict zone. *)
            raise (Abort (Phantom_conflict ni.key))
          (* else: our view is newer than the earlier member's; defer. *)
        end
  in
  let rec go i l =
    if i == l then l
    else
      match (i, l) with
      | Empty, _ -> l
      | Node ni, _ when not (inside ni.owner) ->
          (* The transaction did not touch this subtree: the state side wins
             unconditionally. *)
          l
      | Node _, Empty ->
          (* Virgin territory on the state side: adopt the intention's
             subtree wholesale.  (Under group meld the region may also be
             merely invisible to the earlier member; the metadata rides
             along and final meld revalidates it.) *)
          i
      | Node ni, Node nl -> begin
          visit ();
          match ni.ssv with
          | Some ssv when Vn.equal ssv nl.vn ->
              (* Graft fast path: the version this subtree was derived from
                 is still current — nothing concurrent happened below. *)
              counters.grafts <- counters.grafts + 1;
              if ni.has_writes then i
              else if transaction_mode then
                (* Section 3.3: keep the intention's read-only subtree so
                   the output retains readset metadata. *)
                i
              else l
          | _ ->
              let c = Key.compare ni.key nl.key in
              if c = 0 then begin
                check_node ni nl;
                let left = go ni.left nl.left in
                let right = go ni.right nl.right in
                let i_contributes = dependent ni in
                if (not i_contributes) && left == nl.left && right == nl.right
                then l
                else if
                  (not transaction_mode)
                  && ni.altered && left == ni.left && right == ni.right
                then i
                else if
                  (not transaction_mode)
                  && (not ni.altered)
                  && left == nl.left && right == nl.right
                then l
                else Node (merged_node ni nl ~left ~right)
              end
              else if Key.priority_greater ni.key nl.key then begin
                (* The intention holds a key that outranks this whole state
                   region: splice it in, splitting the state around it.  In
                   a full state this can only be a fresh insert; under group
                   meld it can also be snapshot data the earlier member
                   cannot see yet. *)
                if ni.ssv <> None && not state_is_intention then
                  raise
                    (Corrupt_intention
                       (Printf.sprintf
                          "node %d outranks state root %d but has a source \
                           (ssv=%s owner=%d altered=%b vn=%s mode=%s)"
                          ni.key nl.key
                          (match ni.ssv with
                          | Some v -> Vn.to_string v
                          | None -> "-")
                          ni.owner ni.altered (Vn.to_string ni.vn)
                          (if transaction_mode then "txn" else "final")));
                let ll, lr = split_state l ni.key in
                let left = go ni.left ll in
                let right = go ni.right lr in
                if left == ni.left && right == ni.right then i
                else Node (eph_of_intention ni ~left ~right)
              end
              else begin
                (* A key unknown to the intention outranks its region: the
                   state's node roots the merge and the intention splits. *)
                let il, ir = split_intention i nl.key in
                let left = go il nl.left in
                let right = go ir nl.right in
                if left == nl.left && right == nl.right then l
                else Node (eph_of_state nl ~left ~right)
              end
        end
  in
  match go intention state with
  | merged -> Merged merged
  | exception Abort reason ->
      counters.aborts <- counters.aborts + 1;
      Conflict reason
