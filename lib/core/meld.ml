open Hyder_tree
open Node
module View = Hyder_codec.View

type mode = Final | Transaction of { out_owner : int }

type abort_reason =
  | Write_conflict of Key.t
  | Read_conflict of Key.t
  | Phantom_conflict of Key.t

let abort_reason_to_string = function
  | Write_conflict k -> Printf.sprintf "write-write conflict on key %d" k
  | Read_conflict k -> Printf.sprintf "read-write conflict on key %d" k
  | Phantom_conflict k -> Printf.sprintf "structure conflict at key %d" k

type result = Merged of Node.tree | Conflict of abort_reason

exception Abort of abort_reason

exception
  Corrupt_intention of string
    (* invariant violation: only raised on malformed inputs *)

(* Group meld subtlety (Section 4): when the state side is itself an earlier
   intention, it is NOT a superset of the later transaction's snapshot — the
   two snapshots can be ordered either way.  Conflict checks against data
   the earlier member did not itself write are therefore deferred to final
   meld (by carrying the dependency metadata into the merged node), and when
   both members depend on a key, the merged metadata refers to the EARLIER
   snapshot ("n12's readset must refer to the maximum of n1's and n2's
   conflict zones").  The adjacency of the two intentions in the log makes
   the single earlier reference sufficient: no third transaction can sit
   between them. *)

(* The hot loop works directly on the packed metadata word (Node.Meta):
   every per-visit test is a mask-and-compare on [meta], every constructed
   node is a single [Node.pack] — no options, tuples or [caml_equal] per
   visit.  The workers below are top-level functions over one [env] record
   so a meld call allocates exactly one block of bookkeeping; the happy
   path then allocates only the ephemeral nodes themselves and their
   fresh VNs. *)

type env = {
  counters : Counters.stage;
  alloc : Vn.Alloc.t;
  (* Owner bits of the melding members: [b0]/[b1] cover the common
     one-intention and group-pair shapes with straight compares ([b1 = b0]
     for a singleton); [more] holds any further members (empty in
     practice).  [no_member] marks an empty member list. *)
  b0 : int;
  b1 : int;
  more : int list;
  transaction_mode : bool;
  state_is_intention : bool;
  out_bits : int;
  intention_snapshot : int;
  state_snapshot : int;
  (* Materialization hook: called with the minor words a lazy-view
     materialization allocated, so the pipeline can attribute that GC
     churn to its own bracket instead of the stage it happens inside. *)
  mz : (float -> unit) option;
}

(* Owner bits are [(owner + 1) lsl owner_shift] with owner >= -1, so any
   real value is >= 0 and a negative sentinel never matches. *)
let no_member = min_int

let[@inline] inside_meta env meta =
  let ob = meta land Meta.owner_mask in
  ob = env.b0 || ob = env.b1
  || (match env.more with [] -> false | ms -> List.mem ob ms)

let[@inline] visit env =
  env.counters.Counters.nodes_visited <-
    env.counters.Counters.nodes_visited + 1

let[@inline] fresh env =
  env.counters.Counters.ephemerals <- env.counters.Counters.ephemerals + 1;
  Vn.Alloc.next env.alloc

(* A node's ssv doubles as the graft precondition: "this subtree equals
   version ssv plus my own changes".  A copy made on a SPLIT PATH holds
   only half of its source's subtree, so it must never be graftable: it
   keeps its content metadata (scv) but takes its own fresh VN as ssv — a
   version no state will ever hold — unless it was an insert (no ssv),
   which stays an insert. *)
(* Under group meld every created node additionally degrafts: the merge
   can mix the newer member's view with the older member's stale snapshot
   subtrees, so no created node may claim its subtree is current.  Nodes
   adopted wholesale from one member keep their honest claims. *)

(* Ephemeral copy of a state-side (or snapshot) node with new children. *)
let eph_of_state env ~restructured (nl : node) ~left ~right =
  let vn = fresh env in
  if not env.transaction_mode then
    Node.pack ~key:nl.key ~payload:nl.payload ~left ~right ~vn ~cv:nl.cv
      ~meta:0 ~ssv_a:0 ~ssv_b:0 ~scv_a:0 ~scv_b:0
  else if env.state_is_intention && inside_meta env nl.meta then begin
    (* mine: keep snapshot-relative metadata, new owner *)
    let m = env.out_bits lor (nl.meta land Meta.flags_mask) in
    if
      nl.meta land Meta.ssv_present <> 0
      && (restructured || env.state_is_intention)
    then
      Node.pack ~key:nl.key ~payload:nl.payload ~left ~right ~vn ~cv:nl.cv
        ~meta:(m lor Meta.ssv_ephemeral)
        ~ssv_a:(Node.vn_a vn) ~ssv_b:(Node.vn_b vn) ~scv_a:nl.scv_a
        ~scv_b:nl.scv_b
    else
      Node.pack ~key:nl.key ~payload:nl.payload ~left ~right ~vn ~cv:nl.cv
        ~meta:m ~ssv_a:nl.ssv_a ~ssv_b:nl.ssv_b ~scv_a:nl.scv_a
        ~scv_b:nl.scv_b
  end
  else if restructured || env.state_is_intention then
    (* snapshot node becomes the source, immediately degrafted *)
    Node.pack ~key:nl.key ~payload:nl.payload ~left ~right ~vn ~cv:nl.cv
      ~meta:
        (env.out_bits lor Meta.ssv_present lor Meta.ssv_ephemeral
       lor Node.scv_class nl.cv)
      ~ssv_a:(Node.vn_a vn) ~ssv_b:(Node.vn_b vn) ~scv_a:(Node.vn_a nl.cv)
      ~scv_b:(Node.vn_b nl.cv)
  else
    Node.pack ~key:nl.key ~payload:nl.payload ~left ~right ~vn ~cv:nl.cv
      ~meta:(env.out_bits lor Node.ssv_class nl.vn lor Node.scv_class nl.cv)
      ~ssv_a:(Node.vn_a nl.vn) ~ssv_b:(Node.vn_b nl.vn)
      ~scv_a:(Node.vn_a nl.cv) ~scv_b:(Node.vn_b nl.cv)

(* Ephemeral copy of an intention-side node whose conflict checks have not
   happened yet (restructuring around a concurrent insert): metadata and
   ownership must survive so the checks still fire deeper in the merge. *)
let eph_of_intention env ~restructured (ni : node) ~left ~right =
  let vn = fresh env in
  if
    ni.meta land Meta.ssv_present <> 0
    && (restructured || env.state_is_intention)
  then
    Node.pack ~key:ni.key ~payload:ni.payload ~left ~right ~vn ~cv:ni.cv
      ~meta:(ni.meta lor Meta.ssv_ephemeral)
      ~ssv_a:(Node.vn_a vn) ~ssv_b:(Node.vn_b vn) ~scv_a:ni.scv_a
      ~scv_b:ni.scv_b
  else
    Node.pack ~key:ni.key ~payload:ni.payload ~left ~right ~vn ~cv:ni.cv
      ~meta:ni.meta ~ssv_a:ni.ssv_a ~ssv_b:ni.ssv_b ~scv_a:ni.scv_a
      ~scv_b:ni.scv_b

(* Merged node for a key present on both sides, after conflict checks.
   The source metadata (ssv/scv) — and, for unaltered nodes, the payload
   it must stay consistent with — comes from whichever side speaks for the
   earlier history. *)
let merged_node env (ni : node) (nl : node) ~left ~right =
  let vn = fresh env in
  if not env.transaction_mode then begin
    if ni.meta land Meta.altered <> 0 then
      Node.pack ~key:ni.key ~payload:ni.payload ~left ~right ~vn ~cv:ni.cv
        ~meta:0 ~ssv_a:0 ~ssv_b:0 ~scv_a:0 ~scv_b:0
    else
      Node.pack ~key:ni.key ~payload:nl.payload ~left ~right ~vn ~cv:nl.cv
        ~meta:0 ~ssv_a:0 ~ssv_b:0 ~scv_a:0 ~scv_b:0
  end
  else begin
    let nl_mine = env.state_is_intention && inside_meta env nl.meta in
    let meta_from_state =
      if not env.state_is_intention then true (* premeld: refresh vs LCS *)
      else begin
        let ni_dep = ni.meta land Meta.dependent_mask <> 0 in
        let nl_dep = nl_mine && nl.meta land Meta.dependent_mask <> 0 in
        if ni_dep && nl_dep then env.state_snapshot <= env.intention_snapshot
        else if nl_dep then true
        else if ni_dep then false
        else nl_mine
      end
    in
    let dep =
      ni.meta land Meta.dependent_mask
      lor if nl_mine then nl.meta land Meta.dependent_mask else 0
    in
    let ni_w = ni.meta land Meta.altered <> 0 in
    let nl_w = nl_mine && nl.meta land Meta.altered <> 0 in
    let payload =
      if ni_w then ni.payload
      else if nl_w || meta_from_state then nl.payload
      else ni.payload
    in
    let cv =
      if ni_w then ni.cv
      else if nl_w || meta_from_state then nl.cv
      else ni.cv
    in
    (* degraft created nodes under group meld *)
    if meta_from_state then
      if nl_mine then begin
        let m = env.out_bits lor dep lor (nl.meta land Meta.source_mask) in
        if env.state_is_intention && nl.meta land Meta.ssv_present <> 0 then
          Node.pack ~key:ni.key ~payload ~left ~right ~vn ~cv
            ~meta:(m lor Meta.ssv_ephemeral)
            ~ssv_a:(Node.vn_a vn) ~ssv_b:(Node.vn_b vn) ~scv_a:nl.scv_a
            ~scv_b:nl.scv_b
        else
          Node.pack ~key:ni.key ~payload ~left ~right ~vn ~cv ~meta:m
            ~ssv_a:nl.ssv_a ~ssv_b:nl.ssv_b ~scv_a:nl.scv_a ~scv_b:nl.scv_b
      end
      else if env.state_is_intention then
        Node.pack ~key:ni.key ~payload ~left ~right ~vn ~cv
          ~meta:
            (env.out_bits lor dep lor Meta.ssv_present lor Meta.ssv_ephemeral
           lor Node.scv_class nl.cv)
          ~ssv_a:(Node.vn_a vn) ~ssv_b:(Node.vn_b vn)
          ~scv_a:(Node.vn_a nl.cv) ~scv_b:(Node.vn_b nl.cv)
      else
        Node.pack ~key:ni.key ~payload ~left ~right ~vn ~cv
          ~meta:
            (env.out_bits lor dep lor Node.ssv_class nl.vn
           lor Node.scv_class nl.cv)
          ~ssv_a:(Node.vn_a nl.vn) ~ssv_b:(Node.vn_b nl.vn)
          ~scv_a:(Node.vn_a nl.cv) ~scv_b:(Node.vn_b nl.cv)
    else begin
      let m = env.out_bits lor dep lor (ni.meta land Meta.source_mask) in
      if env.state_is_intention && ni.meta land Meta.ssv_present <> 0 then
        Node.pack ~key:ni.key ~payload ~left ~right ~vn ~cv
          ~meta:(m lor Meta.ssv_ephemeral)
          ~ssv_a:(Node.vn_a vn) ~ssv_b:(Node.vn_b vn) ~scv_a:ni.scv_a
          ~scv_b:ni.scv_b
      else
        Node.pack ~key:ni.key ~payload ~left ~right ~vn ~cv ~meta:m
          ~ssv_a:ni.ssv_a ~ssv_b:ni.ssv_b ~scv_a:ni.scv_a ~scv_b:ni.scv_b
    end
  end

(* Split the state side around a key it does not contain; the copies along
   the split path are ephemeral. *)
let rec split_state env nl key =
  if nl == empty then (empty, empty)
  else begin
    visit env;
    if Key.compare nl.key key < 0 then begin
      let a, b = split_state env nl.right key in
      (eph_of_state env ~restructured:true nl ~left:nl.left ~right:a, b)
    end
    else begin
      let a, b = split_state env nl.left key in
      (a, eph_of_state env ~restructured:true nl ~left:b ~right:nl.right)
    end
  end

(* Split the intention side around a concurrently inserted key. *)
let rec split_intention env ni key =
  if ni == empty then (empty, empty)
  else begin
    visit env;
    if Key.compare ni.key key < 0 then begin
      let a, b = split_intention env ni.right key in
      let n =
        if inside_meta env ni.meta then
          eph_of_intention env ~restructured:true ni ~left:ni.left ~right:a
        else eph_of_state env ~restructured:true ni ~left:ni.left ~right:a
      in
      (n, b)
    end
    else begin
      let a, b = split_intention env ni.left key in
      let n =
        if inside_meta env ni.meta then
          eph_of_intention env ~restructured:true ni ~left:b ~right:ni.right
        else eph_of_state env ~restructured:true ni ~left:b ~right:ni.right
      in
      (a, n)
    end
  end

(* Conflict checks for a key present on both sides. *)
let check_node env (ni : node) (nl : node) =
  if ni.meta land Meta.ssv_present = 0 then begin
    (* T inserted the key, yet the state has it.  Even in group meld
       this is a genuine conflict: keys never disappear, so the key was
       created inside the later member's conflict zone. *)
    if ni.meta land Meta.altered <> 0 then raise (Abort (Write_conflict ni.key))
    else
      raise
        (Corrupt_intention
           (Printf.sprintf "non-insert node %d without ssv" ni.key))
  end
  else begin
    let nl_mine = env.state_is_intention && inside_meta env nl.meta in
    if ni.meta land (Meta.altered lor Meta.dep_content) <> 0 then begin
      let do_check =
        if not env.state_is_intention then true
        else
          (* Against an earlier intention, only its own writes can
             conflict here; anything else is older/newer snapshot skew
             and is re-checked by final meld. *)
          nl_mine && nl.meta land Meta.altered <> 0
      in
      if do_check then begin
        if ni.meta land Meta.scv_present = 0 then
          raise
            (Corrupt_intention
               (Printf.sprintf "node %d has ssv but no scv" ni.key));
        if not (Node.scv_equals ni nl.cv) then
          raise
            (Abort
               (if ni.meta land Meta.altered <> 0 then Write_conflict ni.key
                else Read_conflict ni.key))
      end
    end;
    if ni.meta land Meta.dep_structure <> 0 then begin
      (* The graft fast path did not fire, so the subtree version
         differs from what the transaction read. *)
      if not env.state_is_intention then raise (Abort (Phantom_conflict ni.key))
      else if nl_mine && nl.meta land Meta.has_writes <> 0 then
        (* The earlier member restructured this subtree. *)
        raise (Abort (Phantom_conflict ni.key))
      else if env.intention_snapshot < env.state_snapshot then
        (* The state side's view is newer: the structural change is
           committed and inside the conflict zone. *)
        raise (Abort (Phantom_conflict ni.key))
      (* else: our view is newer than the earlier member's; defer. *)
    end
  end

let rec go env i l =
  if i == l then l
  else if i == empty || not (inside_meta env i.meta) then
    (* Empty or untouched by the transaction: the state side wins
       unconditionally.  (The sentinel's meta is 0, which never matches a
       member's owner bits.) *)
    l
  else if l == empty then
    (* Virgin territory on the state side: adopt the intention's
       subtree wholesale.  (Under group meld the region may also be
       merely invisible to the earlier member; the metadata rides
       along and final meld revalidates it.) *)
    i
  else begin
    let ni = i and nl = l in
    visit env;
        if Node.ssv_equals ni nl.vn then begin
          (* Graft fast path: the version this subtree was derived from
             is still current — nothing concurrent happened below. *)
          env.counters.Counters.grafts <- env.counters.Counters.grafts + 1;
          if ni.meta land Meta.has_writes <> 0 then i
          else if env.transaction_mode then
            (* Section 3.3: keep the intention's read-only subtree so
               the output retains readset metadata. *)
            i
          else l
        end
        else begin
          let c = Key.compare ni.key nl.key in
          if c = 0 then begin
            check_node env ni nl;
            let left = go env ni.left nl.left in
            let right = go env ni.right nl.right in
            if
              ni.meta land Meta.dependent_mask = 0
              && left == nl.left && right == nl.right
            then l
            else if
              (not env.transaction_mode)
              && ni.meta land Meta.altered <> 0
              && left == ni.left && right == ni.right
            then i
            else if
              (not env.transaction_mode)
              && ni.meta land Meta.altered = 0
              && left == nl.left && right == nl.right
            then l
            else merged_node env ni nl ~left ~right
          end
          else if Key.priority_greater ni.key nl.key then begin
            (* The intention holds a key that outranks this whole state
               region: splice it in, splitting the state around it.  In
               a full state this can only be a fresh insert; under group
               meld it can also be snapshot data the earlier member
               cannot see yet. *)
            if ni.meta land Meta.ssv_present <> 0 && not env.state_is_intention
            then
              raise
                (Corrupt_intention
                   (Printf.sprintf
                      "node %d outranks state root %d but has a source \
                       (ssv=%s owner=%d altered=%b vn=%s mode=%s)"
                      ni.key nl.key
                      (match Node.ssv ni with
                      | Some v -> Vn.to_string v
                      | None -> "-")
                      (Node.owner ni) (Node.altered ni) (Vn.to_string ni.vn)
                      (if env.transaction_mode then "txn" else "final")));
            let ll, lr = split_state env l ni.key in
            let left = go env ni.left ll in
            let right = go env ni.right lr in
            if left == ni.left && right == ni.right then i
            else eph_of_intention env ~restructured:false ni ~left ~right
          end
          else begin
            (* A key unknown to the intention outranks its region: the
               state's node roots the merge and the intention splits. *)
            let il, ir = split_intention env i nl.key in
            let left = go env il nl.left in
            let right = go env ir nl.right in
            if left == nl.left && right == nl.right then l
            else eph_of_state env ~restructured:false nl ~left ~right
          end
        end
  end

(* ---- the same walk over a flyweight view ------------------------------ *)
(* [go_view] mirrors [go] branch for branch when the intention side is a
   [Codec.View] instead of a decoded tree: same visits, same ephemeral
   draws, same conflict checks, same output — but a heap node is built
   (via the view's memo) only when a branch of [go] would have returned
   or copied an intention node.  Aborted walks and state-resolved
   subtrees build nothing.

   Unreachable branches of [go], given that every view node is owned by
   the view's position (a member): [i == l] and the not-inside early
   return.  Child descriptors play those roles instead, in [go_kid]. *)

let matz env v idx =
  match env.mz with
  | None -> View.materialize v idx
  | Some f ->
      let t0 = Gc.minor_words () in
      let n = View.materialize v idx in
      f (Gc.minor_words () -. t0);
      n

(* Intact (non-split, non-melded) child of a view node as a tree. *)
let kid_tree env v c =
  if View.kid_is_inside c then matz env v c
  else if View.kid_is_empty c then empty
  else View.ref_of v c

(* Ephemeral copy of view node [j] with new children ([eph_of_intention]
   over the packed wire words). *)
let eph_of_intention_v env v j ~restructured ~left ~right =
  let vn = fresh env in
  let mi = View.meta v j in
  let key = View.key v j in
  let payload = View.payload v j in
  let cv = View.cv v j in
  let ssv_a, ssv_b, scv_a, scv_b = View.sources v j in
  if
    mi land Meta.ssv_present <> 0 && (restructured || env.state_is_intention)
  then
    Node.pack ~key ~payload ~left ~right ~vn ~cv
      ~meta:(mi lor Meta.ssv_ephemeral)
      ~ssv_a:(Node.vn_a vn) ~ssv_b:(Node.vn_b vn) ~scv_a ~scv_b
  else
    Node.pack ~key ~payload ~left ~right ~vn ~cv ~meta:mi ~ssv_a ~ssv_b ~scv_a
      ~scv_b

(* [merged_node] with the intention side read from the view. *)
let merged_node_v env v j (nl : node) ~left ~right =
  let vn = fresh env in
  let mi = View.meta v j in
  let key = View.key v j in
  if not env.transaction_mode then begin
    if mi land Meta.altered <> 0 then
      Node.pack ~key ~payload:(View.payload v j) ~left ~right ~vn
        ~cv:(View.cv v j) ~meta:0 ~ssv_a:0 ~ssv_b:0 ~scv_a:0 ~scv_b:0
    else
      Node.pack ~key ~payload:nl.payload ~left ~right ~vn ~cv:nl.cv ~meta:0
        ~ssv_a:0 ~ssv_b:0 ~scv_a:0 ~scv_b:0
  end
  else begin
    let nl_mine = env.state_is_intention && inside_meta env nl.meta in
    let meta_from_state =
      if not env.state_is_intention then true
      else begin
        let ni_dep = mi land Meta.dependent_mask <> 0 in
        let nl_dep = nl_mine && nl.meta land Meta.dependent_mask <> 0 in
        if ni_dep && nl_dep then env.state_snapshot <= env.intention_snapshot
        else if nl_dep then true
        else if ni_dep then false
        else nl_mine
      end
    in
    let dep =
      mi land Meta.dependent_mask
      lor if nl_mine then nl.meta land Meta.dependent_mask else 0
    in
    let ni_w = mi land Meta.altered <> 0 in
    let nl_w = nl_mine && nl.meta land Meta.altered <> 0 in
    let payload =
      if ni_w then View.payload v j
      else if nl_w || meta_from_state then nl.payload
      else View.payload v j
    in
    let cv =
      if ni_w then View.cv v j
      else if nl_w || meta_from_state then nl.cv
      else View.cv v j
    in
    if meta_from_state then
      if nl_mine then begin
        let m = env.out_bits lor dep lor (nl.meta land Meta.source_mask) in
        if env.state_is_intention && nl.meta land Meta.ssv_present <> 0 then
          Node.pack ~key ~payload ~left ~right ~vn ~cv
            ~meta:(m lor Meta.ssv_ephemeral)
            ~ssv_a:(Node.vn_a vn) ~ssv_b:(Node.vn_b vn) ~scv_a:nl.scv_a
            ~scv_b:nl.scv_b
        else
          Node.pack ~key ~payload ~left ~right ~vn ~cv ~meta:m ~ssv_a:nl.ssv_a
            ~ssv_b:nl.ssv_b ~scv_a:nl.scv_a ~scv_b:nl.scv_b
      end
      else if env.state_is_intention then
        Node.pack ~key ~payload ~left ~right ~vn ~cv
          ~meta:
            (env.out_bits lor dep lor Meta.ssv_present lor Meta.ssv_ephemeral
           lor Node.scv_class nl.cv)
          ~ssv_a:(Node.vn_a vn) ~ssv_b:(Node.vn_b vn) ~scv_a:(Node.vn_a nl.cv)
          ~scv_b:(Node.vn_b nl.cv)
      else
        Node.pack ~key ~payload ~left ~right ~vn ~cv
          ~meta:
            (env.out_bits lor dep lor Node.ssv_class nl.vn
           lor Node.scv_class nl.cv)
          ~ssv_a:(Node.vn_a nl.vn) ~ssv_b:(Node.vn_b nl.vn)
          ~scv_a:(Node.vn_a nl.cv) ~scv_b:(Node.vn_b nl.cv)
    else begin
      let m = env.out_bits lor dep lor (mi land Meta.source_mask) in
      let ssv_a, ssv_b, scv_a, scv_b = View.sources v j in
      if env.state_is_intention && mi land Meta.ssv_present <> 0 then
        Node.pack ~key ~payload ~left ~right ~vn ~cv
          ~meta:(m lor Meta.ssv_ephemeral)
          ~ssv_a:(Node.vn_a vn) ~ssv_b:(Node.vn_b vn) ~scv_a ~scv_b
      else
        Node.pack ~key ~payload ~left ~right ~vn ~cv ~meta:m ~ssv_a ~ssv_b
          ~scv_a ~scv_b
    end
  end

(* [check_node] with the intention side read from the view. *)
let check_node_v env v j (nl : node) =
  let mi = View.meta v j in
  let key = View.key v j in
  if mi land Meta.ssv_present = 0 then begin
    if mi land Meta.altered <> 0 then raise (Abort (Write_conflict key))
    else
      raise
        (Corrupt_intention
           (Printf.sprintf "non-insert node %d without ssv" key))
  end
  else begin
    let nl_mine = env.state_is_intention && inside_meta env nl.meta in
    if mi land (Meta.altered lor Meta.dep_content) <> 0 then begin
      let do_check =
        if not env.state_is_intention then true
        else nl_mine && nl.meta land Meta.altered <> 0
      in
      if do_check then begin
        if mi land Meta.scv_present = 0 then
          raise
            (Corrupt_intention
               (Printf.sprintf "node %d has ssv but no scv" key));
        if not (View.scv_equals v j nl.cv) then
          raise
            (Abort
               (if mi land Meta.altered <> 0 then Write_conflict key
                else Read_conflict key))
      end
    end;
    if mi land Meta.dep_structure <> 0 then begin
      if not env.state_is_intention then raise (Abort (Phantom_conflict key))
      else if nl_mine && nl.meta land Meta.has_writes <> 0 then
        raise (Abort (Phantom_conflict key))
      else if env.intention_snapshot < env.state_snapshot then
        raise (Abort (Phantom_conflict key))
    end
  end

(* Walk child descriptor [c] against state subtree [l].  The bool is the
   eager walk's [result == ni.child] test — physical adoption of the
   intention child — computed without materializing anything. *)
let rec go_kid env v c l =
  if View.kid_is_inside c then go_v env v c l
  else if View.kid_is_empty c then (l, l == empty)
  else (l, l == View.ref_of v c)

(* [go] with the intention side at view node [j] (always a member's). *)
and go_v env v j l =
  if l == empty then (matz env v j, true)
  else begin
    visit env;
    if View.ssv_equals v j l.vn then begin
      env.counters.Counters.grafts <- env.counters.Counters.grafts + 1;
      if View.meta v j land Meta.has_writes <> 0 then (matz env v j, true)
      else if env.transaction_mode then (matz env v j, true)
      else (l, false)
    end
    else begin
      let nl = l in
      let c = Key.compare (View.key v j) nl.key in
      if c = 0 then begin
        check_node_v env v j nl;
        let left, gl = go_kid env v (View.kid_l v j) nl.left in
        let right, gr = go_kid env v (View.kid_r v j) nl.right in
        let mi = View.meta v j in
        if
          mi land Meta.dependent_mask = 0
          && left == nl.left && right == nl.right
        then (l, false)
        else if (not env.transaction_mode) && mi land Meta.altered <> 0 && gl
                && gr
        then (matz env v j, true)
        else if
          (not env.transaction_mode)
          && mi land Meta.altered = 0
          && left == nl.left && right == nl.right
        then (l, false)
        else (merged_node_v env v j nl ~left ~right, false)
      end
      else if Key.priority_greater (View.key v j) nl.key then begin
        let mi = View.meta v j in
        if mi land Meta.ssv_present <> 0 && not env.state_is_intention then
          raise
            (Corrupt_intention
               (Printf.sprintf
                  "node %d outranks state root %d but has a source \
                   (ssv=%s owner=%d altered=%b vn=%s mode=%s)"
                  (View.key v j) nl.key
                  (match View.ssv v j with
                  | Some x -> Vn.to_string x
                  | None -> "-")
                  (View.pos v)
                  (mi land Meta.altered <> 0)
                  (Vn.to_string (View.vn v j))
                  (if env.transaction_mode then "txn" else "final")));
        let ll, lr = split_state env l (View.key v j) in
        let left, gl = go_kid env v (View.kid_l v j) ll in
        let right, gr = go_kid env v (View.kid_r v j) lr in
        if gl && gr then (matz env v j, true)
        else
          (eph_of_intention_v env v j ~restructured:false ~left ~right, false)
      end
      else begin
        let il, ir = split_intention_v env v j nl.key in
        let left = go env il nl.left in
        let right = go env ir nl.right in
        if left == nl.left && right == nl.right then (l, false)
        else (eph_of_state env ~restructured:false nl ~left ~right, false)
      end
    end
  end

(* [split_intention] over a view subtree: the split-path copies come from
   the view; an external reference on the path falls back to the eager
   split (its nodes are real). *)
and split_intention_kid env v c key =
  if View.kid_is_inside c then split_intention_v env v c key
  else if View.kid_is_empty c then (empty, empty)
  else split_intention env (View.ref_of v c) key

and split_intention_v env v j key =
  visit env;
  if Key.compare (View.key v j) key < 0 then begin
    let a, b = split_intention_kid env v (View.kid_r v j) key in
    let left = kid_tree env v (View.kid_l v j) in
    (eph_of_intention_v env v j ~restructured:true ~left ~right:a, b)
  end
  else begin
    let a, b = split_intention_kid env v (View.kid_l v j) key in
    let right = kid_tree env v (View.kid_r v j) in
    (a, eph_of_intention_v env v j ~restructured:true ~left:b ~right)
  end

let go_view env v state =
  if View.node_count v = 0 then go env empty state
  else fst (go_v env v (View.root_index v) state)

let meld ~mode ?(state_is_intention = false) ?(intention_snapshot = 0)
    ?(state_snapshot = -1) ?intention_view ?mz ~members ~alloc
    ~(counters : Counters.stage) ~intention ~state () =
  let transaction_mode, out_owner =
    match mode with
    | Final -> (false, Node.state_owner)
    | Transaction { out_owner } -> (true, out_owner)
  in
  let b0, b1, more =
    match members with
    | [] -> (no_member, no_member, [])
    | [ m0 ] ->
        let b = Meta.owner_bits m0 in
        (b, b, [])
    | [ m0; m1 ] -> (Meta.owner_bits m0, Meta.owner_bits m1, [])
    | m0 :: m1 :: ms ->
        (Meta.owner_bits m0, Meta.owner_bits m1, List.map Meta.owner_bits ms)
  in
  let env =
    {
      counters;
      alloc;
      b0;
      b1;
      more;
      transaction_mode;
      state_is_intention;
      out_bits = Meta.owner_bits out_owner;
      intention_snapshot;
      state_snapshot;
      mz;
    }
  in
  match
    match intention_view with
    | Some v -> go_view env v state
    | None -> go env intention state
  with
  | merged -> Merged merged
  | exception Abort reason ->
      counters.aborts <- counters.aborts + 1;
      Conflict reason
