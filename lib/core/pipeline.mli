open Hyder_tree

(** The meld pipeline (Figure 2): deserialize → premeld → group meld →
    final meld.

    This is the {e deterministic semantic machine}: it processes intentions
    strictly in log order and produces, for every intention, the same
    commit/abort decision and the same (physically identical) sequence of
    database states on every server, whatever the physical thread
    interleaving.  How stages are scheduled onto hardware is delegated to
    {!Runtime}: the [Sequential] backend runs everything inline (the
    cluster simulator models physical parallelism from its per-stage
    timings), the [Parallel] backend runs premeld trial melds on real
    domains via {!submit_batch}, and the [Pipelined] backend stages the
    whole pre-final-meld pipeline (deserialize, premeld, group meld)
    across worker domains fed through bounded SPSC queues, leaving only
    final meld on the driver — and, per the paper's Section 3.4 id
    scheme, every backend must produce bit-identical results.

    Stage thread ids for ephemeral VNs: final meld = 0, premeld threads =
    1..t, group meld = t+1. *)

type config = {
  premeld : Premeld.config option;  (** [None] = premeld off *)
  group_size : int;  (** 1 = group meld off; the paper uses 2 *)
}

val plain : config
(** No optimizations: the original meld of [8]. *)

val with_premeld : config
val with_group_meld : config
val with_both : config

type decided_at = At_premeld | At_group_meld | At_final_meld

type decision = {
  seq : int;  (** dense intention sequence number *)
  pos : int;  (** log position *)
  server : int;
  txn_seq : int;
  committed : bool;
  reason : Meld.abort_reason option;
  decided_at : decided_at;
}

type t

val create :
  ?config:config ->
  ?runtime:Runtime.backend ->
  ?lazy_decode:bool ->
  ?trace:Hyder_obs.Trace.t ->
  ?flight:Hyder_obs.Flight.t ->
  ?metrics:Hyder_obs.Metrics.t ->
  genesis:Tree.t ->
  unit ->
  t
(** [lazy_decode] (default [true]) makes the ds stage index wire records
    in place as flyweight {!Hyder_codec.View} values instead of eagerly
    building heap trees; meld walks the view and materializes only the
    nodes it grafts, and the allocation it does spend is booked under the
    [pipeline_mz_gc_minor_words] instrument rather than the ds bracket.
    Decisions, trees, ephemeral ids and integer counters are bit-identical
    either way (the eager path remains as the reference, and the
    cross-backend suites compare the two).

    [runtime] defaults to {!Runtime.sequential}.  A [Parallel] runtime
    spawns its domain pool here, a [Pipelined] runtime its stage-pool
    worker domains; call {!shutdown} when done with the pipeline to join
    them.

    [trace] (default {!Hyder_obs.Trace.disabled}) records per-stage spans:
    deserialize, group meld and final meld on ring 0 (the sequential
    tail), each premeld trial on its paper thread's ring, plus one
    envelope span per parallel pool task.  Under [Pipelined], offloaded
    deserialize and group-meld spans land on the executing worker's own
    ring instead of ring 0.  The recorder must have at least as many
    shard rings as premeld threads, and under [Pipelined] at least as
    many worker rings as domains ([Invalid_argument] otherwise).  [metrics], when given, registers pipeline instruments
    ([pipeline_commits], [pipeline_aborts], the per-reason
    [pipeline_aborts_{write,read,phantom}_conflict] breakdown,
    [pipeline_conflict_zone_intentions], [pipeline_fm_nodes_per_txn]) and
    is forwarded to {!Runtime.create}.

    [flight] (default {!Hyder_obs.Flight.disabled}) records one
    lifecycle record per intention, keyed by log position: per-stage
    queue-wait/service pairs at every edge (decode, premeld trial,
    group-meld combine, final meld) and the decision with abort reason
    and conflict-zone size.  The recorder is driver-only; under
    [Parallel]/[Pipelined] the worker-side stage brackets travel back in
    the runtime's result messages and are stamped on the driver, so the
    wait column measures real queue residency.

    Trace, metrics and flight are all provably observational: decisions,
    ephemeral node ids and integer counter values are bit-identical with
    them on or off (see [test/test_obs.ml]).

    Retention arithmetic constraint: with premeld on, [group_size] must
    not exceed [threads * distance + 1] — beyond that, a premeld-bound
    intention can designate an input state its own group assembly has not
    recorded yet, under either backend. *)

val decode : t -> pos:int -> string -> Hyder_codec.Intention.t
(** The ds stage: deserialize an encoded intention, resolving references
    against retained states.  Timed into the ds counters. *)

val submit : t -> Hyder_codec.Intention.t -> decision list
(** Feed the next intention in log order.  Returns the decisions that
    became final (possibly none while a group is filling, possibly several
    when a group completes), in sequence order.  Always runs the inline
    sequential scheduler, whatever the runtime backend. *)

val submit_batch : t -> Hyder_codec.Intention.t list -> decision list
(** Feed the next intentions in log order, allowing the runtime backend
    to overlap premeld work across them.  Under [Sequential] this is
    exactly [List.concat_map (submit t)].  Under [Parallel] the batch is
    cut into premeld windows of at most [threads * distance + 1 -
    pending_group_members] intentions — the bound that guarantees every
    member's designated input state is already recorded when the window's
    store snapshot is taken — each window's trial melds run
    concurrently on the domain pool (one task per paper premeld thread,
    owning that thread's allocator and counter shard), and the group/final
    meld tail then drains sequentially in log order.  Under [Pipelined]
    the same windows run through the staged ds/pm/gm worker fabric with
    only final meld on the caller.  Decisions are returned in sequence
    order and are bit-identical to the sequential backend's. *)

val submit_wire_batch : t -> (int * string) list -> decision list
(** Feed the next intentions in log order in wire form
    ([(log_position, encoded_bytes)]), letting the backend overlap
    deserialization with melding.  Under [Sequential] / [Parallel] this
    decodes maximal safe prefixes (every snapshot reference resolvable
    against already-recorded states) and melds each chunk before
    decoding the next.  Under [Pipelined], decodes whose snapshot state
    is already recorded at window start run on worker domains straight
    from the wire buffers; the rest decode on the driver as soon as
    final meld records their snapshot state.  Decisions are identical
    to decoding everything up front and calling {!submit_batch}.
    Raises [Failure] on a stream whose snapshot references can never be
    satisfied. *)

(** Offload accounting for the [Pipelined] backend: how much stage work
    left the driver's critical path, and how deep the bounded queues
    ran.  Worker seconds are summed across worker domains; subtracting
    them from the corresponding {!Counters} stage totals gives the
    driver-executed (critical-path) share. *)
type offload_stats = {
  ds_offloaded : int;  (** decodes executed on worker domains *)
  ds_inline : int;  (** decodes the driver ran inline (snapshot lag) *)
  worker_ds_seconds : float;
  worker_pm_seconds : float;
  worker_gm_seconds : float;
  max_queue_depth : int;
      (** peak jobs-in-flight to any single worker (never exceeds
          [queue_capacity] by construction) *)
  queue_capacity : int;
  handoff_batches : int;
      (** job-ring publications — each one tail publication and at most
          one doorbell, however many jobs it carried *)
  handoff_items : int;  (** jobs published through those batches *)
  doorbell_wakeups : int;
      (** condvar round-trips the handoff actually paid for (worker and
          driver parks that were woken) *)
  driver_steals : int;
      (** backlogged ds/pm items the driver inlined instead of parking *)
  adaptive_batch : int;  (** flush threshold at last observation *)
  adaptive_window : int;  (** per-worker in-flight window at last observation *)
  adaptive_adjustments : int;  (** batch resizes the controller applied *)
}

val offload : t -> offload_stats option
(** [None] unless the runtime backend is [Pipelined]. *)

val flush : t -> decision list
(** Force a partially filled group through final meld (stream end). *)

val lcs : t -> int * int * Tree.t
(** [(seq, pos, tree)] of the last committed state. *)

val states : t -> State_store.t
val counters : t -> Counters.t
val config : t -> config

val runtime : t -> Runtime.backend

val shutdown : t -> unit
(** Join the parallel runtime's domain pool, if any.  Idempotent; the
    pipeline remains usable for sequential [submit] afterwards but not
    for parallel [submit_batch]. *)

val prune : t -> keep:int -> unit
(** Drop old retained states, but never below what premeld arithmetic
    needs. *)

(** {1 Checkpoint / restore (crash recovery)} *)

val checkpoint : t -> Checkpoint.t option
(** Freeze a recovery checkpoint: the retained state window, ephemeral-id
    allocator cursors and a deep counter copy — everything a restarted
    pipeline needs to resume bit-identically at [seq + 1].  [None] while a
    meld group is partially assembled (checkpoints are only meaningful at
    group boundaries); retry after the next decision-producing submit. *)

val restore :
  ?config:config ->
  ?runtime:Runtime.backend ->
  ?lazy_decode:bool ->
  ?trace:Hyder_obs.Trace.t ->
  ?flight:Hyder_obs.Flight.t ->
  ?metrics:Hyder_obs.Metrics.t ->
  Checkpoint.t ->
  t
(** Build a fresh pipeline from a checkpoint, as a crashed server does on
    restart: the state store is rebuilt from the checkpointed window, the
    allocator cursors resume where they stopped, counters continue from
    their checkpointed values, and the next submitted intention receives
    sequence number [checkpoint.seq + 1].  Replaying the log suffix
    [(checkpoint.pos, tail]] then reproduces exactly the decisions, trees,
    ephemeral ids and (non-timing) counters a never-crashed server has.
    [config] must match the capturing pipeline's premeld shape
    ([Invalid_argument] otherwise); the runtime backend is free — recovery
    composes with any scheduler. *)
