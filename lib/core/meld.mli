open Hyder_tree

(** The meld operator: optimistic concurrency control by merging trees.

    [meld] takes an intention tree and a database-state tree and either
    detects a conflict (the transaction aborts) or produces the merged
    result (Section 2, Appendix A).  Per the paper's Section 3.3 insight,
    the {e same} operator implements final meld, premeld and group meld —
    only the interpretation of its inputs and output changes:

    - {b Final meld}: state side is the LCS, output is the next database
      state.  Read-only subtrees that match the LCS resolve to the LCS's
      nodes and ephemeral nodes carry no transaction metadata.
    - {b Premeld} ([mode = Transaction]): state side is an older committed
      state; the output is re-interpreted as an intention.  Read-only
      subtrees resolve to the {e intention's} nodes (the paper's one-line
      change to [8]) and ephemeral nodes carry refreshed ssv/scv metadata
      and the original dependency flags, so a later meld revalidates only
      the remaining conflict zone.
    - {b Group meld} ([mode = Transaction], [state_is_intention = true]):
      the state side is itself the earlier intention of the pair; merged
      nodes combine both transactions' dependency metadata, keeping the
      {e earlier} source versions so the group's conflict zone is the union
      of its members' (Section 4).

    Conflict rules (content-version formulation; see [Node] and DESIGN.md):
    a node the transaction wrote or validated-read conflicts iff the state
    holds a content version different from the one recorded at execution
    time; a structure-dependent node conflicts iff its source subtree
    version is no longer current; an insert conflicts iff the key
    meanwhile exists. *)

type mode =
  | Final
  | Transaction of { out_owner : int }
      (** [out_owner] tags ephemeral nodes so a later meld treats them as
          part of the (substitute) intention. *)

type abort_reason =
  | Write_conflict of Key.t  (** write–write: key written in the conflict zone *)
  | Read_conflict of Key.t  (** read–write: validated read overwritten *)
  | Phantom_conflict of Key.t
      (** structural dependency violated (range scan / absent-key read) *)

val abort_reason_to_string : abort_reason -> string

type result = Merged of Node.tree | Conflict of abort_reason

exception Corrupt_intention of string
(** Raised on malformed intention metadata — an internal-invariant
    violation, never an OCC conflict. *)

val meld :
  mode:mode ->
  ?state_is_intention:bool ->
  ?intention_snapshot:int ->
  ?state_snapshot:int ->
  ?intention_view:Hyder_codec.View.t ->
  ?mz:(float -> unit) ->
  members:int list ->
  alloc:Vn.Alloc.t ->
  counters:Counters.stage ->
  intention:Node.tree ->
  state:Node.tree ->
  unit ->
  result
(** [members] are the intention ids (log positions) whose nodes count as
    "inside" the intention side; [alloc] supplies deterministic ephemeral
    VNs (Section 3.4); [counters] accumulates visited/created/graft counts.
    [intention_snapshot]/[state_snapshot] are the members' snapshot log
    positions and matter only under group meld ([state_is_intention]),
    where they decide which side's source metadata refers to the earlier
    history and whether a structural mismatch is a committed change.

    [intention_view], when given, replaces [intention] (pass [Node.empty]
    there) with a lazily-decoded flyweight: the walk is branch-identical
    — same decisions, visits, grafts and ephemeral draws — but heap nodes
    are built only for subtrees the meld actually adopts or copies.
    [mz] is called with the minor words each such materialization
    allocated, letting callers attribute that churn separately. *)
