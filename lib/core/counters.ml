type stage = {
  mutable intentions : int;
  mutable nodes_visited : int;
  mutable ephemerals : int;
  mutable grafts : int;
  mutable aborts : int;
  mutable seconds : float;
}

let make_stage () =
  {
    intentions = 0;
    nodes_visited = 0;
    ephemerals = 0;
    grafts = 0;
    aborts = 0;
    seconds = 0.0;
  }

let reset_stage s =
  s.intentions <- 0;
  s.nodes_visited <- 0;
  s.ephemerals <- 0;
  s.grafts <- 0;
  s.aborts <- 0;
  s.seconds <- 0.0

let add_stage ~into s =
  into.intentions <- into.intentions + s.intentions;
  into.nodes_visited <- into.nodes_visited + s.nodes_visited;
  into.ephemerals <- into.ephemerals + s.ephemerals;
  into.grafts <- into.grafts + s.grafts;
  into.aborts <- into.aborts + s.aborts;
  into.seconds <- into.seconds +. s.seconds

let copy_stage s = { s with intentions = s.intentions }

type t = {
  deserialize : stage;
  premeld_shards : stage array;
  group_meld : stage;
  final_meld : stage;
  mutable committed : int;
  mutable aborted : int;
  conflict_zone : Hyder_util.Stats.Summary.t;
  fm_nodes_per_txn : Hyder_util.Stats.Summary.t;
  intention_bytes : Hyder_util.Stats.Summary.t;
}

let create ?(premeld_shards = 1) () =
  if premeld_shards < 1 then invalid_arg "Counters.create: premeld_shards";
  {
    deserialize = make_stage ();
    premeld_shards = Array.init premeld_shards (fun _ -> make_stage ());
    group_meld = make_stage ();
    final_meld = make_stage ();
    committed = 0;
    aborted = 0;
    conflict_zone = Hyder_util.Stats.Summary.create ();
    fm_nodes_per_txn = Hyder_util.Stats.Summary.create ();
    intention_bytes = Hyder_util.Stats.Summary.create ();
  }

let premeld_total t =
  let total = make_stage () in
  Array.iter (fun s -> add_stage ~into:total s) t.premeld_shards;
  total

let copy t =
  {
    deserialize = copy_stage t.deserialize;
    premeld_shards = Array.map copy_stage t.premeld_shards;
    group_meld = copy_stage t.group_meld;
    final_meld = copy_stage t.final_meld;
    committed = t.committed;
    aborted = t.aborted;
    conflict_zone = Hyder_util.Stats.Summary.copy t.conflict_zone;
    fm_nodes_per_txn = Hyder_util.Stats.Summary.copy t.fm_nodes_per_txn;
    intention_bytes = Hyder_util.Stats.Summary.copy t.intention_bytes;
  }

let reset t =
  reset_stage t.deserialize;
  Array.iter reset_stage t.premeld_shards;
  reset_stage t.group_meld;
  reset_stage t.final_meld;
  t.committed <- 0;
  t.aborted <- 0;
  Hyder_util.Stats.Summary.clear t.conflict_zone;
  Hyder_util.Stats.Summary.clear t.fm_nodes_per_txn;
  Hyder_util.Stats.Summary.clear t.intention_bytes
