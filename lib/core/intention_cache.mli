open Hyder_tree

(** Bounded cache of recently deserialized intentions, indexed by log
    position.

    Intention references name nodes by log address (position, post-order
    index).  Section 5.2: deserialization "transforms each node pointer in
    an intention into an object pointer if the object is in memory" — this
    table is that memory.  A reference to a cached intention's node resolves
    in O(1); anything older (or ephemeral) falls back to a key lookup in the
    retained snapshot state. *)

type t

val create : ?capacity:int -> ?view_capacity:int -> unit -> t
(** [capacity] bounds the number of cached intentions (FIFO eviction);
    default 16384, covering realistic conflict zones.  [view_capacity]
    (default 1024) separately bounds lazily-decoded views, which are held
    strongly — a view pins its wire buffer — so their window is smaller;
    references only reach back a bounded number of recent intentions. *)

val add : t -> pos:int -> Node.tree array -> unit

val add_view : t -> Hyder_codec.View.t -> unit
(** Register a lazily-decoded intention.  A later reference to one of its
    nodes materializes that node on demand (memoized in the view, so all
    resolutions of the same node share one object).  Driver-side only:
    materialization mutates the view's memo. *)

val find : t -> pos:int -> idx:int -> Node.tree option
val cached : t -> int
