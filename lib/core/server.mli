open Hyder_tree

(** A Hyder II transaction server (Section 5.2).

    Ties the pieces together the way a deployed server does: transactions
    execute against the server's current last-committed state and their
    intentions are serialized and appended to the shared log; every block
    observed on the log (its own appends and other servers' — in a real
    deployment via broadcast) is reassembled and fed through the meld
    pipeline in log order; commit/abort outcomes are delivered back to the
    issuing transaction's completion callback.

    Several servers sharing one log and observing every block converge to
    physically identical states — the architecture's core claim, and what
    the integration tests assert.  For the performance-model version of all
    this (simulated time, queueing), see {!Hyder_cluster.Cluster}. *)

type t

val create :
  ?config:Pipeline.config ->
  ?block_size:int ->
  server_id:int ->
  genesis:Tree.t ->
  unit ->
  t

val server_id : t -> int

(** {1 Transactions} *)

type outcome = Committed | Aborted of Meld.abort_reason

val txn :
  t ->
  ?isolation:Hyder_codec.Intention.isolation ->
  (Executor.t -> 'a) ->
  'a * (int * string list) option
(** Execute a transaction on the current LCS.  Read-only transactions
    return [None] (nothing to log).  Write transactions return
    [Some (txn_seq, blocks)]: the caller appends the blocks to the shared
    log (in order) and feeds every log block back via {!observe_block} —
    the decision arrives through {!on_decision} once this server's own
    pipeline melds the intention. *)

val on_decision : t -> (txn_seq:int -> outcome -> unit) -> unit
(** Register the decision callback for locally issued transactions. *)

(** {1 Log ingestion} *)

val observe_block : t -> pos:int -> string -> Pipeline.decision list
(** Feed the block at log position [pos].  Blocks must arrive in log order
    (a real deployment's reader guarantees this per server).  Completes
    intentions, melds them, and returns the decisions that became final
    (for any server's transactions). *)

val lcs : t -> int * int * Tree.t
val pipeline : t -> Pipeline.t
val counters : t -> Counters.t

val prune : t -> keep:int -> unit
(** Bound retained history (states + reassembly). *)

(** {1 Crash recovery}

    The broadcast is an optimization; the log is the ground truth.  A
    server checkpoints periodically; after a crash it restarts from its
    latest checkpoint and replays every log block from {!replay_from}
    through {!observe_block}, producing exactly the decisions and states
    it would have had — then rejoins the live feed. *)

val checkpoint : t -> Checkpoint.t option
(** Capture a recovery checkpoint of the meld pipeline.  [None] while a
    meld group is partially assembled — retry at the next group
    boundary. *)

val restore :
  ?config:Pipeline.config ->
  ?block_size:int ->
  ?next_txn_seq:int ->
  server_id:int ->
  Checkpoint.t ->
  t
(** Rebuild a server from a checkpoint.  [config] must match the shape
    the checkpoint was captured under.  In-flight transactions and
    partially reassembled blocks are lost (their blocks replay from the
    log); [next_txn_seq] restarts transaction numbering — give restarted
    transactions fresh numbers if old intentions of this server may still
    be in flight in peers' reassemblers. *)

val replay_from : Checkpoint.t -> int
(** First log position a restored server must replay: [checkpoint.pos + 1]. *)
