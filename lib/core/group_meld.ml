open Hyder_tree

type member = {
  seq : int;
  intention : Hyder_codec.Intention.t;
  premeld_input : int option;
}

type group = {
  members : member list;
  early_aborts : (member * Meld.abort_reason * [ `Premeld | `Group ]) list;
  root : Node.tree;
  member_positions : int list;
  snapshot : int;
  view : Hyder_codec.View.t option;
      (** lazily-decoded flyweight of a still-unmaterialized singleton;
          [root] is a placeholder while this is set.  {!combine} walks the
          {e second} (intention-side) group's view directly; the first
          (state-side) group must be a real tree, so the pipeline forces a
          group when it becomes the pending state side. *)
}

let single ?premeld_input ~seq intention =
  {
    members = [ { seq; intention; premeld_input } ];
    early_aborts = [];
    root = intention.Hyder_codec.Intention.root;
    member_positions = [ intention.Hyder_codec.Intention.pos ];
    snapshot = intention.Hyder_codec.Intention.snapshot;
    view = intention.Hyder_codec.Intention.view;
  }

let dead ?premeld_input ~seq intention reason =
  {
    members = [];
    early_aborts = [ ({ seq; intention; premeld_input }, reason, `Premeld) ];
    root = Node.empty;
    member_positions = [];
    snapshot = intention.Hyder_codec.Intention.snapshot;
    view = None;
  }

let combine ?mz ~alloc ~counters first second =
  let early_aborts = first.early_aborts @ second.early_aborts in
  match (first.members, second.members) with
  | [], _ -> { second with early_aborts }
  | _, [] -> { first with early_aborts }
  | _, second_members -> begin
      (* The state side is split and rebuilt, so it must be a real tree;
         the intention side is only walked, so a still-lazy view is fine
         (meld reads it in place and materializes just what it grafts). *)
      assert (first.view == None);
      (* Meld the later group's tree into the earlier one's, treating the
         earlier tree as the "state" side that still carries transaction
         metadata. *)
      let out_owner =
        match List.rev second.member_positions with
        | last :: _ -> last
        | [] -> assert false
      in
      let members = first.member_positions @ second.member_positions in
      counters.Counters.intentions <- counters.Counters.intentions + 1;
      match
        Meld.meld
          ~mode:(Meld.Transaction { out_owner })
          ~state_is_intention:true ~intention_snapshot:second.snapshot
          ~state_snapshot:first.snapshot ?intention_view:second.view ?mz
          ~members ~alloc ~counters ~intention:second.root ~state:first.root
          ()
      with
      | Meld.Merged root ->
          {
            members = first.members @ second_members;
            early_aborts;
            root;
            member_positions = members;
            snapshot = min first.snapshot second.snapshot;
            view = None;
          }
      | Meld.Conflict reason ->
          (* The earlier member conflicts with the later one: the later
             members abort and the earlier group survives alone (Figure 8:
             no fate sharing in this direction). *)
          {
            first with
            early_aborts =
              early_aborts
              @ List.map (fun m -> (m, reason, `Group)) second_members;
          }
    end
