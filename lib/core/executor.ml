open Hyder_tree
module Intention = Hyder_codec.Intention

type t = {
  snapshot_pos : int;
  server : int;
  txn_seq : int;
  isolation : Intention.isolation;
  current : unit -> Tree.t;
  mutable working : Tree.t;
  mutable next_draft : int;
  mutable reads : Key.t list;
  mutable writes : Key.t list;
  mutable wrote_anything : bool;
  mutable finished : bool;
}

let begin_txn ?current ~snapshot_pos ~snapshot ~server ~txn_seq ~isolation ()
    =
  {
    snapshot_pos;
    server;
    txn_seq;
    isolation;
    current = (match current with Some f -> f | None -> fun () -> snapshot);
    working = snapshot;
    next_draft = 0;
    reads = [];
    writes = [];
    wrote_anything = false;
    finished = false;
  }

let check_active t op =
  if t.finished then invalid_arg (Printf.sprintf "Executor.%s: finished" op)

let fresh t () =
  let idx = t.next_draft in
  t.next_draft <- idx + 1;
  Intention.draft_vn ~idx

let owner = Intention.draft_owner

let read t key =
  check_active t "read";
  match t.isolation with
  | Intention.Serializable ->
      let result = Tree.lookup t.working key in
      t.working <- Tree.touch_read t.working ~owner ~fresh:(fresh t) key;
      t.reads <- key :: t.reads;
      result
  | Intention.Snapshot_isolation ->
      t.reads <- key :: t.reads;
      Tree.lookup t.working key
  | Intention.Read_committed -> (
      t.reads <- key :: t.reads;
      (* Own writes first, then the freshest committed state. *)
      match Tree.find t.working key with
      | Some n when Node.owner n = owner ->
          if Payload.is_tombstone n.Node.payload then None
          else Some n.Node.payload
      | _ -> Tree.lookup (t.current ()) key)

let read_range t ~lo ~hi =
  check_active t "read_range";
  if Key.compare lo hi > 0 then invalid_arg "Executor.read_range: empty range";
  let items = Tree.range_items t.working ~lo ~hi in
  (match t.isolation with
  | Intention.Serializable ->
      t.working <- Tree.touch_range t.working ~owner ~fresh:(fresh t) ~lo ~hi
  | Intention.Snapshot_isolation | Intention.Read_committed -> ());
  items

let write t key value =
  check_active t "write";
  t.working <-
    Tree.upsert t.working ~owner ~fresh:(fresh t) key (Payload.value value);
  t.writes <- key :: t.writes;
  t.wrote_anything <- true

let delete t key =
  check_active t "delete";
  t.working <- Tree.upsert t.working ~owner ~fresh:(fresh t) key Payload.tombstone;
  t.writes <- key :: t.writes;
  t.wrote_anything <- true

let finish t =
  check_active t "finish";
  t.finished <- true;
  if not t.wrote_anything then None
  else
    Some
      {
        Intention.snapshot = t.snapshot_pos;
        server = t.server;
        txn_seq = t.txn_seq;
        isolation = t.isolation;
        root = t.working;
      }

let reads t = t.reads
let writes t = t.writes
let snapshot_pos t = t.snapshot_pos
let working_tree t = t.working
