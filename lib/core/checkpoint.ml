open Hyder_tree
open Node

type stats = { live_nodes : int; tombstones_dropped : int }

let compact ~pos state =
  (* Collect live nodes in key order, preserving payload and content
     version; rebuild canonically. *)
  let live = ref [] in
  let dropped = ref 0 in
  Tree.iter state (fun n ->
      if Payload.is_tombstone n.payload then incr dropped
      else live := (n.key, n.payload, n.cv) :: !live);
  let items = Array.of_list (List.rev !live) in
  let n = Array.length items in
  let rec build lo hi =
    if lo >= hi then Node.empty
    else begin
      let best = ref lo in
      for i = lo + 1 to hi - 1 do
        let k, _, _ = items.(i) and b, _, _ = items.(!best) in
        if Key.priority_greater k b then best := i
      done;
      let key, payload, cv = items.(!best) in
      let left = build lo !best in
      let right = build (!best + 1) hi in
      let vn = Vn.logged ~pos ~idx:!best in
      Node.make ~key ~payload ~left ~right ~vn ~cv ~ssv:None ~scv:None
        ~altered:false ~depends_on_content:false ~depends_on_structure:false
        ~owner:state_owner
    end
  in
  let tree = build 0 n in
  (tree, { live_nodes = n; tombstones_dropped = !dropped })

(* --- durable checkpoints ------------------------------------------------ *)

type t = {
  seq : int;
  pos : int;
  store : State_store.Snapshot.t;
  compacted : Tree.t;
  compact_stats : stats;
  alloc_issued : int array;
  counters : Counters.t;
}

let capture ~store ~alloc_issued ~counters =
  let seq, pos = State_store.Snapshot.latest store in
  let state =
    match State_store.Snapshot.by_seq store seq with
    | Some s -> s
    | None -> assert false (* seq = -1 resolves to genesis *)
  in
  let compacted, compact_stats = compact ~pos state in
  {
    seq;
    pos;
    store;
    compacted;
    compact_stats;
    alloc_issued = Array.copy alloc_issued;
    counters = Counters.copy counters;
  }

let state t =
  match State_store.Snapshot.by_seq t.store t.seq with
  | Some s -> s
  | None -> assert false
