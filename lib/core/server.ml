module Intention = Hyder_codec.Intention
module Codec = Hyder_codec.Codec

type outcome = Committed | Aborted of Meld.abort_reason

type t = {
  server_id : int;
  block_size : int;
  pipeline : Pipeline.t;
  reassembler : Codec.Blocks.Reassembler.t;
  mutable next_txn_seq : int;
  mutable decision_handler : (txn_seq:int -> outcome -> unit) option;
}

let create ?(config = Pipeline.plain) ?(block_size = 8192) ~server_id ~genesis
    () =
  {
    server_id;
    block_size;
    pipeline = Pipeline.create ~config ~genesis ();
    reassembler = Codec.Blocks.Reassembler.create ();
    next_txn_seq = 0;
    decision_handler = None;
  }

let checkpoint t = Pipeline.checkpoint t.pipeline

let restore ?(config = Pipeline.plain) ?(block_size = 8192)
    ?(next_txn_seq = 0) ~server_id ckpt =
  {
    server_id;
    block_size;
    pipeline = Pipeline.restore ~config ckpt;
    (* Partially reassembled intentions died with the process; their
       remaining blocks replay from the log, so reassembly restarts
       cleanly from the checkpoint position. *)
    reassembler = Codec.Blocks.Reassembler.create ();
    next_txn_seq;
    decision_handler = None;
  }

let replay_from ckpt = ckpt.Checkpoint.pos + 1

let server_id t = t.server_id
let lcs t = Pipeline.lcs t.pipeline
let pipeline t = t.pipeline
let counters t = Pipeline.counters t.pipeline
let on_decision t f = t.decision_handler <- Some f

let txn t ?(isolation = Intention.Serializable) body =
  let _, pos, tree = Pipeline.lcs t.pipeline in
  let txn_seq = t.next_txn_seq in
  t.next_txn_seq <- txn_seq + 1;
  let e =
    Executor.begin_txn ~snapshot_pos:pos ~snapshot:tree ~server:t.server_id
      ~txn_seq ~isolation ()
  in
  let result = body e in
  match Executor.finish e with
  | None -> (result, None)
  | Some draft ->
      let bytes = Codec.encode draft in
      let blocks =
        Codec.Blocks.split ~block_size:t.block_size ~server:t.server_id
          ~txn_seq bytes
      in
      (result, Some (txn_seq, blocks))

let observe_block t ~pos block =
  match Codec.Blocks.Reassembler.feed t.reassembler ~pos block with
  | None -> []
  | Some (intention_pos, bytes) ->
      let intention = Pipeline.decode t.pipeline ~pos:intention_pos bytes in
      let decisions = Pipeline.submit t.pipeline intention in
      (match t.decision_handler with
      | None -> ()
      | Some handler ->
          List.iter
            (fun (d : Pipeline.decision) ->
              if d.Pipeline.server = t.server_id then
                handler ~txn_seq:d.Pipeline.txn_seq
                  (if d.Pipeline.committed then Committed
                   else
                     Aborted
                       (Option.value
                          ~default:(Meld.Write_conflict (-1))
                          d.Pipeline.reason)))
            decisions);
      decisions

let prune t ~keep = Pipeline.prune t.pipeline ~keep
