(** Premeld (Section 3, Algorithm 1).

    A trial meld of an intention against a committed state {e earlier} than
    its final input LCS.  If it finds a conflict the intention is dead and
    final meld skips it; otherwise its output — re-interpreted as an
    intention with refreshed metadata — substitutes for the original, and
    final meld only revalidates the short post-premeld conflict zone.

    Determinism (Section 3.4): with [threads = t] and [distance = d],
    intention number [v] is premelded by thread [v mod t] against the state
    produced by intention [v - t*d - 1].  Every server runs the same
    arithmetic, so every server premelds every intention against the same
    state with the same ephemeral-id stream.

    The module is split into a {e pure trial-meld core} ({!trial}) that only
    reads immutable data and writes caller-owned records — safe to run on
    any domain — and a {e scheduling shell} ({!run}) that resolves the
    designated input state against the live state store for the inline
    sequential path.  The parallel runtime calls {!trial} directly with a
    {!State_store.Snapshot} lookup and window-corrected [snap_seq]. *)

type config = { threads : int; distance : int }

val default_config : config
(** 5 threads, distance 10 — the best setting found in Section 6.4.6. *)

val thread_for : config -> seq:int -> int
(** Pipeline thread id (1-based; 0 is final meld's). *)

val input_seq : config -> seq:int -> int
(** Sequence number of the state to premeld intention [seq] against. *)

type outcome =
  | Unchanged of Hyder_codec.Intention.t
      (** the designated state precedes the snapshot: nothing to do *)
  | Premelded of Hyder_codec.Intention.t * int
      (** substitute intention and the input state's sequence number *)
  | Dead of Meld.abort_reason  (** conflict found early *)

val trial :
  ?trace:Hyder_obs.Trace.t ->
  ?mz:(float -> unit) ->
  config ->
  snap_seq:int ->
  lookup:(int -> Hyder_tree.Tree.t option) ->
  alloc:Hyder_tree.Vn.Alloc.t ->
  counters:Counters.stage ->
  seq:int ->
  Hyder_codec.Intention.t ->
  outcome
(** The pure core.  [snap_seq] is the sequence number of the intention's
    snapshot state (what {!State_store.seq_of_pos} of its snapshot position
    would report at submit time); [lookup] resolves a state by sequence
    number and must cover the designated input state.  [alloc] and
    [counters] belong exclusively to the premeld thread [thread_for ~seq],
    making the call free of shared mutable state.

    [trace] (default {!Hyder_obs.Trace.disabled}) records one span per
    trial meld into ring [thread_for ~seq] — the thread that owns
    [counters], preserving the recorder's single-writer invariant.
    Tracing is observational: it never changes the outcome, the
    ephemeral-id stream or the integer counter fields.

    [mz] is forwarded to {!Meld.meld}: it observes the minor words spent
    materializing flyweight view nodes when the intention carries a lazy
    view.  Only pass it from a caller whose accumulator is single-writer
    (the inline sequential path). *)

val run :
  ?trace:Hyder_obs.Trace.t ->
  ?mz:(float -> unit) ->
  config ->
  allocs:Hyder_tree.Vn.Alloc.t array ->
  shards:Counters.stage array ->
  states:State_store.t ->
  seq:int ->
  Hyder_codec.Intention.t ->
  outcome
(** The inline scheduling shell: picks the thread's allocator and counter
    shard ([allocs.(i)] and [shards.(i)] belong to premeld thread [i+1])
    and resolves states against the live store, which must already hold
    the designated input state (final meld is always ahead of it). *)
