module Domain_pool = Hyder_util.Domain_pool
module Metrics = Hyder_obs.Metrics

type backend = Sequential | Parallel of { domains : int }

let sequential = Sequential

let parallel ~domains =
  if domains < 1 then invalid_arg "Runtime.parallel: domains";
  Parallel { domains }

let parse s =
  match String.split_on_char ':' (String.trim s) with
  | [ "seq" ] | [ "sequential" ] -> Ok Sequential
  | [ "par" ] | [ "parallel" ] -> Ok (Parallel { domains = 2 })
  | [ ("par" | "parallel"); n ] -> (
      match int_of_string_opt n with
      | Some d when d >= 1 -> Ok (Parallel { domains = d })
      | Some _ | None ->
          Error (Printf.sprintf "bad domain count %S in runtime spec" n))
  | _ -> Error (Printf.sprintf "unknown runtime %S (want seq | par:<n>)" s)

let to_string = function
  | Sequential -> "seq"
  | Parallel { domains } -> Printf.sprintf "par:%d" domains

(* Scheduling metrics, resolved once at create time so the per-batch cost
   is two counter bumps (and zero when no registry is wired). *)
type instruments = {
  batches : Metrics.Counter.t;  (** [run_tasks] invocations (fan-outs) *)
  tasks : Metrics.Counter.t;  (** tasks executed across all batches *)
}

type t = { backend : backend; pool : Domain_pool.t option; inst : instruments option }

let create ?metrics backend =
  let inst =
    Option.map
      (fun m ->
        let g = Metrics.gauge m "runtime_domains" in
        Metrics.Gauge.set g
          (match backend with
          | Sequential -> 0.0
          | Parallel { domains } -> float_of_int domains);
        {
          batches = Metrics.counter m "runtime_task_batches";
          tasks = Metrics.counter m "runtime_tasks";
        })
      metrics
  in
  match backend with
  | Sequential -> { backend = Sequential; pool = None; inst }
  | Parallel { domains } as b ->
      if domains < 1 then invalid_arg "Runtime.create: domains";
      { backend = b; pool = Some (Domain_pool.create ~domains); inst }

let backend t = t.backend
let is_parallel t = Option.is_some t.pool

let run_tasks t ~tasks f =
  (match t.inst with
  | None -> ()
  | Some i ->
      Metrics.Counter.incr i.batches;
      Metrics.Counter.incr ~by:tasks i.tasks);
  match t.pool with
  | None ->
      for i = 0 to tasks - 1 do
        f i
      done
  | Some pool -> Domain_pool.run pool ~tasks f

let shutdown t =
  match t.pool with None -> () | Some pool -> Domain_pool.shutdown pool
