module Domain_pool = Hyder_util.Domain_pool
module Spsc_queue = Hyder_util.Spsc_queue
module Metrics = Hyder_obs.Metrics

type backend =
  | Sequential
  | Parallel of { domains : int }
  | Pipelined of { domains : int; batch : int; adaptive : bool }

(* Default handoff batch for [pipe:<n>]: big enough to amortize the
   doorbell on bursty input, small enough that a latency-bound trickle
   is not delayed (the driver flushes partial batches every round). *)
let default_batch = 8
let sequential = Sequential

let parallel ~domains =
  if domains < 1 then invalid_arg "Runtime.parallel: domains";
  Parallel { domains }

let pipelined ~domains =
  if domains < 1 then invalid_arg "Runtime.pipelined: domains";
  Pipelined { domains; batch = default_batch; adaptive = false }

let parse s =
  match String.split_on_char ':' (String.trim s) with
  | [ "seq" ] | [ "sequential" ] -> Ok Sequential
  | [ "par" ] | [ "parallel" ] -> Ok (Parallel { domains = 2 })
  | [ ("par" | "parallel"); n ] -> (
      match int_of_string_opt n with
      | Some d when d >= 1 -> Ok (Parallel { domains = d })
      | Some _ | None ->
          Error (Printf.sprintf "bad domain count %S in runtime spec" n))
  | ("pipe" | "pipelined") :: rest -> (
      (* pipe[:<domains>[:<batch>]][:adaptive] *)
      let domains = ref 2
      and batch = ref default_batch
      and adaptive = ref false
      and ints_seen = ref 0
      and err = ref None in
      List.iter
        (fun tok ->
          match (int_of_string_opt tok, tok) with
          | Some d, _ when d >= 1 && !ints_seen = 0 ->
              domains := d;
              incr ints_seen
          | Some b, _ when b >= 1 && !ints_seen = 1 ->
              batch := b;
              incr ints_seen
          | None, ("adaptive" | "a") -> adaptive := true
          | _ ->
              if !err = None then
                err :=
                  Some
                    (Printf.sprintf "bad token %S in pipelined runtime spec" tok))
        rest;
      match !err with
      | Some e -> Error e
      | None ->
          Ok
            (Pipelined
               { domains = !domains; batch = !batch; adaptive = !adaptive }))
  | _ ->
      Error
        (Printf.sprintf
           "unknown runtime %S (want seq | par:<n> | pipe:<n>[:<batch>][:adaptive])"
           s)

let to_string = function
  | Sequential -> "seq"
  | Parallel { domains } -> Printf.sprintf "par:%d" domains
  | Pipelined { domains; batch; adaptive } ->
      Printf.sprintf "pipe:%d%s%s" domains
        (if batch <> default_batch then Printf.sprintf ":%d" batch else "")
        (if adaptive then ":adaptive" else "")

(* ------------------------------------------------------------------ *)
(* Stage pool: the pipelined backend's worker fabric                    *)
(* ------------------------------------------------------------------ *)

module Stage_pool = struct
  type ('j, 'r) t = {
    domains : int;
    jobs : 'j Spsc_queue.t array;  (** driver -> worker [w] *)
    results : 'r Spsc_queue.t array;  (** worker [w] -> driver *)
    stop : bool Atomic.t;
    failure : exn option Atomic.t;
    (* Doorbell: workers bump [events] after every result push; the
       driver parks on it when it has nothing runnable.  Dekker-style
       handshake: the driver publishes [parked] (SC) before re-checking
       [events]; a worker bumps [events] (SC) before reading [parked] —
       sequential consistency guarantees at least one side sees the
       other, so no wakeup is lost. *)
    events : int Atomic.t;
    parked : bool Atomic.t;
    mutable driver_wakeups : int;
        (** times the parked driver was actually woken; driver-written *)
    lock : Mutex.t;
    cond : Condition.t;
    mutable handles : unit Domain.t array;
    mutable shut : bool;
  }

  let ring_doorbell t =
    Atomic.incr t.events;
    if Atomic.get t.parked then begin
      Mutex.lock t.lock;
      Condition.broadcast t.cond;
      Mutex.unlock t.lock
    end

  (* First failure wins; losers are dropped (they are almost always the
     cascade of the first).  Waking every job queue lets sibling workers
     observe [stop] even while parked. *)
  let fail t e =
    ignore (Atomic.compare_and_set t.failure None (Some e) : bool);
    Atomic.set t.stop true;
    Array.iter Spsc_queue.wake t.jobs;
    ring_doorbell t

  (* Workers run batched: one blocking pop wakes the worker, then it
     opportunistically drains whatever else is already queued (a single
     head publication), executes the whole run, and pushes every result
     with a single tail publication and one doorbell.  The driver's
     outstanding-[qcap] budget guarantees the result push always fits
     (results in the ring + results in hand never exceed jobs in
     flight), so a short push here is a driver bug, not backpressure. *)
  let worker_loop t ~exec ~dummy_job ~dummy_result w =
    let jq = t.jobs.(w) and rq = t.results.(w) in
    let cap = Spsc_queue.capacity jq in
    let jbuf = Array.make cap dummy_job in
    let rbuf = Array.make cap dummy_result in
    let rec go () =
      match Spsc_queue.pop jq ~cancel:(fun () -> Atomic.get t.stop) with
      | None -> ()
      | Some j -> (
          match
            rbuf.(0) <- exec ~worker:w j;
            let n = ref 1 in
            let more = Spsc_queue.pop_batch jq jbuf ~max:(cap - 1) in
            for i = 0 to more - 1 do
              rbuf.(!n) <- exec ~worker:w jbuf.(i);
              jbuf.(i) <- dummy_job;
              incr n
            done;
            !n
          with
          | n ->
              let pushed = Spsc_queue.push_batch rq rbuf ~len:n in
              Array.fill rbuf 0 n dummy_result;
              if pushed = n then begin
                ring_doorbell t;
                go ()
              end
              else
                fail t
                  (Failure
                     "Runtime.Stage_pool: result queue overflow (driver \
                      exceeded its outstanding budget)")
          | exception e -> fail t e)
    in
    go ()

  let create ?(queue = 32) ~domains ~dummy_job ~dummy_result ~exec () =
    if domains < 1 then invalid_arg "Runtime.Stage_pool.create: domains";
    if queue < 1 then invalid_arg "Runtime.Stage_pool.create: queue";
    let t =
      {
        domains;
        jobs =
          Array.init domains (fun _ ->
              Spsc_queue.create ~capacity:queue ~dummy:dummy_job ());
        results =
          Array.init domains (fun _ ->
              Spsc_queue.create ~capacity:queue ~dummy:dummy_result ());
        stop = Atomic.make false;
        failure = Atomic.make None;
        events = Atomic.make 0;
        parked = Atomic.make false;
        driver_wakeups = 0;
        lock = Mutex.create ();
        cond = Condition.create ();
        handles = [||];
        shut = false;
      }
    in
    t.handles <-
      Array.init domains (fun w ->
          Domain.spawn (fun () ->
              worker_loop t ~exec ~dummy_job ~dummy_result w));
    t

  let domains t = t.domains
  let queue_capacity t = Spsc_queue.capacity t.jobs.(0)

  let check t =
    match Atomic.get t.failure with
    | None -> ()
    | Some e ->
        (* Make sure every worker is unwinding before we propagate. *)
        Atomic.set t.stop true;
        Array.iter Spsc_queue.wake t.jobs;
        raise e

  let try_submit t ~worker job =
    check t;
    Spsc_queue.try_push t.jobs.(worker) job

  let try_result t ~worker =
    check t;
    Spsc_queue.try_pop t.results.(worker)

  let submit_batch t ~worker buf ~len =
    check t;
    Spsc_queue.push_batch t.jobs.(worker) buf ~len

  let result_batch t ~worker buf ~max =
    check t;
    Spsc_queue.pop_batch t.results.(worker) buf ~max

  let job_depth t ~worker = Spsc_queue.length t.jobs.(worker)

  (* Worker-side parks woken by a job push, plus driver parks woken by a
     result doorbell — the total count of condvar round-trips the
     handoff actually paid for.  Batching exists to shrink this. *)
  let doorbell_wakeups t =
    Array.fold_left
      (fun acc q -> acc + Spsc_queue.wakeups q)
      t.driver_wakeups t.jobs

  let events t = Atomic.get t.events

  let wait t ~seen =
    check t;
    if Atomic.get t.events = seen then begin
      Mutex.lock t.lock;
      Atomic.set t.parked true;
      let slept = ref false in
      while
        Atomic.get t.events = seen
        && (match Atomic.get t.failure with None -> true | Some _ -> false)
      do
        slept := true;
        Condition.wait t.cond t.lock
      done;
      if !slept then t.driver_wakeups <- t.driver_wakeups + 1;
      Atomic.set t.parked false;
      Mutex.unlock t.lock;
      check t
    end

  let shutdown t =
    if not t.shut then begin
      t.shut <- true;
      Atomic.set t.stop true;
      Array.iter Spsc_queue.wake t.jobs;
      Array.iter Domain.join t.handles;
      t.handles <- [||];
      match Atomic.get t.failure with None -> () | Some e -> raise e
    end
end

(* ------------------------------------------------------------------ *)
(* Adaptive handoff controller                                          *)
(* ------------------------------------------------------------------ *)

(* Drives the driver's flush threshold (batch size) and in-flight window
   from observed queue depths.  Strictly a wall-clock scheduling knob:
   it decides *when* work is handed to a worker, never *which* worker
   runs it or in what order results are applied, so every backend stays
   bit-identical with the controller on or off.

   The rule is a slow-attack/fast-ish-decay AIMD-flavored doubler with
   hysteresis: [growth] consecutive backed-up observations (deepest
   queue at least half full) double the batch — sustained backlog means
   throughput mode, amortize the doorbells; [growth] consecutive dry
   observations halve it — the pipe is latency-bound, hand work over
   eagerly.  The in-flight window tracks [4 * batch], clamped to
   [batch, capacity]: small batches also shrink how much work the
   driver banks ahead of the workers, which keeps end-to-end latency
   proportional to the batch decision. *)
module Adaptive = struct
  type t = {
    enabled : bool;
    capacity : int;
    growth : int;
    mutable batch : int;
    mutable window : int;
    mutable hot : int;  (** consecutive backed-up observations *)
    mutable cold : int;  (** consecutive dry observations *)
    mutable adjustments : int;  (** batch-size changes applied *)
  }

  let clamp_window ~capacity ~batch =
    max batch (min capacity (4 * batch))

  let create ?(growth = 3) ~enabled ~batch ~capacity () =
    if capacity < 1 then invalid_arg "Runtime.Adaptive.create: capacity";
    let batch = max 1 (min batch capacity) in
    {
      enabled;
      capacity;
      growth;
      batch;
      window = (if enabled then clamp_window ~capacity ~batch else capacity);
      hot = 0;
      cold = 0;
      adjustments = 0;
    }

  let batch t = t.batch
  let window t = t.window
  let adjustments t = t.adjustments

  let set_batch t b =
    if b <> t.batch then begin
      t.batch <- b;
      t.window <- clamp_window ~capacity:t.capacity ~batch:b;
      t.adjustments <- t.adjustments + 1
    end

  let observe t ~depth =
    if t.enabled then
      if 2 * depth >= t.capacity then begin
        t.cold <- 0;
        t.hot <- t.hot + 1;
        if t.hot >= t.growth then begin
          t.hot <- 0;
          set_batch t (min t.capacity (2 * t.batch))
        end
      end
      else if depth = 0 then begin
        t.hot <- 0;
        t.cold <- t.cold + 1;
        if t.cold >= t.growth then begin
          t.cold <- 0;
          set_batch t (max 1 (t.batch / 2))
        end
      end
      else begin
        t.hot <- 0;
        t.cold <- 0
      end
end

(* Scheduling metrics, resolved once at create time so the per-batch cost
   is two counter bumps (and zero when no registry is wired). *)
type instruments = {
  batches : Metrics.Counter.t;  (** [run_tasks] invocations (fan-outs) *)
  tasks : Metrics.Counter.t;  (** tasks executed across all batches *)
}

type t = { backend : backend; pool : Domain_pool.t option; inst : instruments option }

let create ?metrics backend =
  let inst =
    Option.map
      (fun m ->
        let g = Metrics.gauge m "runtime_domains" in
        Metrics.Gauge.set g
          (match backend with
          | Sequential -> 0.0
          | Parallel { domains } | Pipelined { domains; _ } ->
              float_of_int domains);
        {
          batches = Metrics.counter m "runtime_task_batches";
          tasks = Metrics.counter m "runtime_tasks";
        })
      metrics
  in
  match backend with
  | Sequential -> { backend = Sequential; pool = None; inst }
  | Parallel { domains } as b ->
      if domains < 1 then invalid_arg "Runtime.create: domains";
      { backend = b; pool = Some (Domain_pool.create ~domains); inst }
  | Pipelined { domains; _ } as b ->
      if domains < 1 then invalid_arg "Runtime.create: domains";
      (* The pipelined backend owns its worker fabric (a [Stage_pool]
         inside the pipeline, typed by the pipeline's job variants); the
         generic task pool is not used. *)
      { backend = b; pool = None; inst }

let backend t = t.backend
let is_parallel t = Option.is_some t.pool

let is_pipelined t =
  match t.backend with Pipelined _ -> true | Sequential | Parallel _ -> false

let run_tasks t ~tasks f =
  (match t.inst with
  | None -> ()
  | Some i ->
      Metrics.Counter.incr i.batches;
      Metrics.Counter.incr ~by:tasks i.tasks);
  match t.pool with
  | None ->
      for i = 0 to tasks - 1 do
        f i
      done
  | Some pool -> Domain_pool.run pool ~tasks f

let shutdown t =
  match t.pool with None -> () | Some pool -> Domain_pool.shutdown pool
