module Domain_pool = Hyder_util.Domain_pool
module Spsc_queue = Hyder_util.Spsc_queue
module Metrics = Hyder_obs.Metrics

type backend =
  | Sequential
  | Parallel of { domains : int }
  | Pipelined of { domains : int }

let sequential = Sequential

let parallel ~domains =
  if domains < 1 then invalid_arg "Runtime.parallel: domains";
  Parallel { domains }

let pipelined ~domains =
  if domains < 1 then invalid_arg "Runtime.pipelined: domains";
  Pipelined { domains }

let parse s =
  match String.split_on_char ':' (String.trim s) with
  | [ "seq" ] | [ "sequential" ] -> Ok Sequential
  | [ "par" ] | [ "parallel" ] -> Ok (Parallel { domains = 2 })
  | [ ("par" | "parallel"); n ] -> (
      match int_of_string_opt n with
      | Some d when d >= 1 -> Ok (Parallel { domains = d })
      | Some _ | None ->
          Error (Printf.sprintf "bad domain count %S in runtime spec" n))
  | [ "pipe" ] | [ "pipelined" ] -> Ok (Pipelined { domains = 2 })
  | [ ("pipe" | "pipelined"); n ] -> (
      match int_of_string_opt n with
      | Some d when d >= 1 -> Ok (Pipelined { domains = d })
      | Some _ | None ->
          Error (Printf.sprintf "bad domain count %S in runtime spec" n))
  | _ ->
      Error
        (Printf.sprintf "unknown runtime %S (want seq | par:<n> | pipe:<n>)" s)

let to_string = function
  | Sequential -> "seq"
  | Parallel { domains } -> Printf.sprintf "par:%d" domains
  | Pipelined { domains } -> Printf.sprintf "pipe:%d" domains

(* ------------------------------------------------------------------ *)
(* Stage pool: the pipelined backend's worker fabric                    *)
(* ------------------------------------------------------------------ *)

module Stage_pool = struct
  type ('j, 'r) t = {
    domains : int;
    jobs : 'j Spsc_queue.t array;  (** driver -> worker [w] *)
    results : 'r Spsc_queue.t array;  (** worker [w] -> driver *)
    stop : bool Atomic.t;
    failure : exn option Atomic.t;
    (* Doorbell: workers bump [events] after every result push; the
       driver parks on it when it has nothing runnable.  Dekker-style
       handshake: the driver publishes [parked] (SC) before re-checking
       [events]; a worker bumps [events] (SC) before reading [parked] —
       sequential consistency guarantees at least one side sees the
       other, so no wakeup is lost. *)
    events : int Atomic.t;
    parked : bool Atomic.t;
    lock : Mutex.t;
    cond : Condition.t;
    mutable handles : unit Domain.t array;
    mutable shut : bool;
  }

  let ring_doorbell t =
    Atomic.incr t.events;
    if Atomic.get t.parked then begin
      Mutex.lock t.lock;
      Condition.broadcast t.cond;
      Mutex.unlock t.lock
    end

  (* First failure wins; losers are dropped (they are almost always the
     cascade of the first).  Waking every job queue lets sibling workers
     observe [stop] even while parked. *)
  let fail t e =
    ignore (Atomic.compare_and_set t.failure None (Some e) : bool);
    Atomic.set t.stop true;
    Array.iter Spsc_queue.wake t.jobs;
    ring_doorbell t

  let worker_loop t ~exec w =
    let jq = t.jobs.(w) and rq = t.results.(w) in
    let rec go () =
      match Spsc_queue.pop jq ~cancel:(fun () -> Atomic.get t.stop) with
      | None -> ()
      | Some j -> (
          match exec ~worker:w j with
          | r ->
              if Spsc_queue.try_push rq r then begin
                ring_doorbell t;
                go ()
              end
              else
                fail t
                  (Failure
                     "Runtime.Stage_pool: result queue overflow (driver \
                      exceeded its outstanding budget)")
          | exception e -> fail t e)
    in
    go ()

  let create ?(queue = 32) ~domains ~dummy_job ~dummy_result ~exec () =
    if domains < 1 then invalid_arg "Runtime.Stage_pool.create: domains";
    if queue < 1 then invalid_arg "Runtime.Stage_pool.create: queue";
    let t =
      {
        domains;
        jobs =
          Array.init domains (fun _ ->
              Spsc_queue.create ~capacity:queue ~dummy:dummy_job ());
        results =
          Array.init domains (fun _ ->
              Spsc_queue.create ~capacity:queue ~dummy:dummy_result ());
        stop = Atomic.make false;
        failure = Atomic.make None;
        events = Atomic.make 0;
        parked = Atomic.make false;
        lock = Mutex.create ();
        cond = Condition.create ();
        handles = [||];
        shut = false;
      }
    in
    t.handles <-
      Array.init domains (fun w -> Domain.spawn (fun () -> worker_loop t ~exec w));
    t

  let domains t = t.domains
  let queue_capacity t = Spsc_queue.capacity t.jobs.(0)

  let check t =
    match Atomic.get t.failure with
    | None -> ()
    | Some e ->
        (* Make sure every worker is unwinding before we propagate. *)
        Atomic.set t.stop true;
        Array.iter Spsc_queue.wake t.jobs;
        raise e

  let try_submit t ~worker job =
    check t;
    Spsc_queue.try_push t.jobs.(worker) job

  let try_result t ~worker =
    check t;
    Spsc_queue.try_pop t.results.(worker)

  let events t = Atomic.get t.events

  let wait t ~seen =
    check t;
    if Atomic.get t.events = seen then begin
      Mutex.lock t.lock;
      Atomic.set t.parked true;
      while
        Atomic.get t.events = seen
        && (match Atomic.get t.failure with None -> true | Some _ -> false)
      do
        Condition.wait t.cond t.lock
      done;
      Atomic.set t.parked false;
      Mutex.unlock t.lock;
      check t
    end

  let shutdown t =
    if not t.shut then begin
      t.shut <- true;
      Atomic.set t.stop true;
      Array.iter Spsc_queue.wake t.jobs;
      Array.iter Domain.join t.handles;
      t.handles <- [||];
      match Atomic.get t.failure with None -> () | Some e -> raise e
    end
end

(* Scheduling metrics, resolved once at create time so the per-batch cost
   is two counter bumps (and zero when no registry is wired). *)
type instruments = {
  batches : Metrics.Counter.t;  (** [run_tasks] invocations (fan-outs) *)
  tasks : Metrics.Counter.t;  (** tasks executed across all batches *)
}

type t = { backend : backend; pool : Domain_pool.t option; inst : instruments option }

let create ?metrics backend =
  let inst =
    Option.map
      (fun m ->
        let g = Metrics.gauge m "runtime_domains" in
        Metrics.Gauge.set g
          (match backend with
          | Sequential -> 0.0
          | Parallel { domains } | Pipelined { domains } -> float_of_int domains);
        {
          batches = Metrics.counter m "runtime_task_batches";
          tasks = Metrics.counter m "runtime_tasks";
        })
      metrics
  in
  match backend with
  | Sequential -> { backend = Sequential; pool = None; inst }
  | Parallel { domains } as b ->
      if domains < 1 then invalid_arg "Runtime.create: domains";
      { backend = b; pool = Some (Domain_pool.create ~domains); inst }
  | Pipelined { domains } as b ->
      if domains < 1 then invalid_arg "Runtime.create: domains";
      (* The pipelined backend owns its worker fabric (a [Stage_pool]
         inside the pipeline, typed by the pipeline's job variants); the
         generic task pool is not used. *)
      { backend = b; pool = None; inst }

let backend t = t.backend
let is_parallel t = Option.is_some t.pool

let is_pipelined t =
  match t.backend with Pipelined _ -> true | Sequential | Parallel _ -> false

let run_tasks t ~tasks f =
  (match t.inst with
  | None -> ()
  | Some i ->
      Metrics.Counter.incr i.batches;
      Metrics.Counter.incr ~by:tasks i.tasks);
  match t.pool with
  | None ->
      for i = 0 to tasks - 1 do
        f i
      done
  | Some pool -> Domain_pool.run pool ~tasks f

let shutdown t =
  match t.pool with None -> () | Some pool -> Domain_pool.shutdown pool
