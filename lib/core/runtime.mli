(** Pluggable stage runtime for the meld pipeline.

    The pipeline is a deterministic semantic machine; {e how} its stages
    are scheduled onto hardware is this module's concern.  Two backends:

    - {b Sequential} — every stage runs inline on the caller, one
      intention at a time, in log order.  This is the original scheduler,
      preserved bit-for-bit: the cluster simulator measures its per-stage
      wall-clock and models physical parallelism on top of it.
    - {b Parallel} — premeld trial melds run on a pool of real OCaml 5
      domains ({!Hyder_util.Domain_pool}).  Each pool task impersonates
      one paper premeld thread (Section 3.4): it owns that thread's
      ephemeral-id allocator and counter shard, so ephemeral node ids
      [(thread, seq)] are identical to the sequential backend's no matter
      which domain runs the task or in what order tasks finish.  Group
      meld and final meld stay sequential in log order; results are
      merged back in submission order.

    The determinism argument, concretely: a premeld window only contains
    intentions whose designated input states {e precede} the window
    (window size <= t*d + 1), those states are frozen in a
    {!State_store.Snapshot} before fan-out, and every job's inputs —
    snapshot sequence number, input state, allocator stream — are
    computed by log-order arithmetic, not by arrival order.  Parallelism
    therefore changes wall-clock and nothing else; the cross-backend
    property test in [test/test_runtime.ml] checks exactly this. *)

type backend = Sequential | Parallel of { domains : int }

val sequential : backend

val parallel : domains:int -> backend
(** [domains >= 1], [Invalid_argument] otherwise. *)

val parse : string -> (backend, string) result
(** ["seq"] or ["par:<n>"] (e.g. ["par:4"]); also accepts ["par"] as
    [par:2]. *)

val to_string : backend -> string
(** Inverse of {!parse}. *)

type t
(** An instantiated runtime: the backend descriptor plus, for [Parallel],
    the live domain pool. *)

val create : ?metrics:Hyder_obs.Metrics.t -> backend -> t
(** [metrics], when given, registers scheduling instruments
    ([runtime_domains] gauge, [runtime_task_batches] and [runtime_tasks]
    counters) that {!run_tasks} updates; purely observational. *)

val backend : t -> backend

val is_parallel : t -> bool

val run_tasks : t -> tasks:int -> (int -> unit) -> unit
(** Execute [tasks] independent tasks: [Sequential] runs them inline in
    index order; [Parallel] runs them concurrently on the pool (any
    order, any domain).  Tasks handed to this function must be pairwise
    independent — the pipeline shards premeld work by paper thread id to
    guarantee it. *)

val shutdown : t -> unit
(** Join the domain pool, if any.  Idempotent; a no-op for
    [Sequential]. *)
