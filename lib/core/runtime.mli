(** Pluggable stage runtime for the meld pipeline.

    The pipeline is a deterministic semantic machine; {e how} its stages
    are scheduled onto hardware is this module's concern.  Three
    backends:

    - {b Sequential} — every stage runs inline on the caller, one
      intention at a time, in log order.  This is the original scheduler,
      preserved bit-for-bit: the cluster simulator measures its per-stage
      wall-clock and models physical parallelism on top of it.
    - {b Parallel} — premeld trial melds run on a pool of real OCaml 5
      domains ({!Hyder_util.Domain_pool}).  Each pool task impersonates
      one paper premeld thread (Section 3.4): it owns that thread's
      ephemeral-id allocator and counter shard, so ephemeral node ids
      [(thread, seq)] are identical to the sequential backend's no matter
      which domain runs the task or in what order tasks finish.  Group
      meld and final meld stay sequential in log order; results are
      merged back in submission order.
    - {b Pipelined} — the whole pre-final-meld pipeline is staged across
      domains: deserialization runs on worker domains straight from wire
      buffers, premeld slices are dealt to workers per paper thread, and
      group-meld combining is offloaded to a dedicated worker, all fed
      and drained through bounded SPSC queues ({!Hyder_util.Spsc_queue})
      with backpressure.  Final meld alone stays on the driver, in log
      order.  Stage assignment is a pure function of log position, and
      the driver consumes every queue in log order, so queues reorder
      wall-clock only — decisions, ephemeral ids and per-shard counters
      stay bit-identical to [Sequential].

    The determinism argument, concretely: a premeld window only contains
    intentions whose designated input states {e precede} the window
    (window size <= t*d + 1), those states are frozen in a
    {!State_store.Snapshot} before fan-out, and every job's inputs —
    snapshot sequence number, input state, allocator stream — are
    computed by log-order arithmetic, not by arrival order.  Parallelism
    therefore changes wall-clock and nothing else; the cross-backend
    property test in [test/test_runtime.ml] checks exactly this. *)

type backend =
  | Sequential
  | Parallel of { domains : int }
  | Pipelined of { domains : int; batch : int; adaptive : bool }
      (** [batch] is the driver's handoff flush threshold (jobs staged
          per worker before a ring publication); [adaptive] lets the
          {!Adaptive} controller resize it (and the in-flight window)
          from observed queue depths at runtime.  Both are wall-clock
          scheduling knobs only — results are bit-identical across every
          setting. *)

val default_batch : int
(** Handoff batch used when a pipelined spec does not name one. *)

val sequential : backend

val parallel : domains:int -> backend
(** [domains >= 1], [Invalid_argument] otherwise. *)

val pipelined : domains:int -> backend
(** [domains >= 1], [Invalid_argument] otherwise; {!default_batch},
    non-adaptive.  Use the {!backend} record directly (or {!parse}) to
    set [batch] / [adaptive]. *)

val parse : string -> (backend, string) result
(** ["seq"], ["par:<n>"] or ["pipe:<n>[:<batch>][:adaptive]"] (e.g.
    ["pipe:4"], ["pipe:4:32"], ["pipe:2:adaptive"]); bare ["par"] /
    ["pipe"] mean two domains. *)

val to_string : backend -> string
(** Inverse of {!parse} (canonical: default batch and non-adaptive are
    elided). *)

(** Bounded worker fabric for the pipelined backend.

    [domains] worker domains, each fed by its own SPSC job queue and
    drained through its own SPSC result queue — the driver is the only
    producer of jobs and the only consumer of results, so every queue
    end is single-threaded.  Contract the driver must keep: at most
    {!Stage_pool.queue_capacity} results outstanding per worker, so a
    worker's result push can never fail and workers never block on the
    way out (this is what makes the fabric deadlock-free by
    construction).

    A worker exception cancels the fabric: the first exception is
    captured, every worker unwinds, and the exception re-raises on the
    driver from the next {!Stage_pool.wait} / submit / drain call. *)
module Stage_pool : sig
  type ('j, 'r) t

  val create :
    ?queue:int ->
    domains:int ->
    dummy_job:'j ->
    dummy_result:'r ->
    exec:(worker:int -> 'j -> 'r) ->
    unit ->
    ('j, 'r) t
  (** Spawn [domains] worker domains.  [queue] (default 32, rounded up
      to a power of two) bounds each job and each result queue.  [exec]
      runs on worker domains; it must only touch state the driver
      published before submitting the job (jobs for distinct workers
      must be pairwise independent). *)

  val domains : ('j, 'r) t -> int

  val queue_capacity : ('j, 'r) t -> int
  (** Per-queue bound after power-of-two rounding — also the driver's
      outstanding-results budget per worker. *)

  val try_submit : ('j, 'r) t -> worker:int -> 'j -> bool
  (** Driver only.  [false] iff worker [worker]'s job queue is full;
      the driver then drains results or runs the job inline. *)

  val try_result : ('j, 'r) t -> worker:int -> 'r option
  (** Driver only.  [None] iff worker [worker] has no finished result
      queued. *)

  val submit_batch : ('j, 'r) t -> worker:int -> 'j array -> len:int -> int
  (** Driver only.  Push [buf.(0 .. len-1)] to worker [worker]'s job
      queue with one tail publication and at most one doorbell; returns
      how many were accepted (short iff the queue filled). *)

  val result_batch : ('j, 'r) t -> worker:int -> 'r array -> max:int -> int
  (** Driver only.  Pop up to [max] finished results into [buf] with one
      head publication; returns how many were popped. *)

  val job_depth : ('j, 'r) t -> worker:int -> int
  (** Jobs currently queued (not yet popped) for worker [worker].  Exact
      for the driver between its own operations. *)

  val doorbell_wakeups : ('j, 'r) t -> int
  (** Condvar round-trips the handoff actually paid for, cumulative:
      worker parks woken by a job push plus driver parks woken by a
      result doorbell.  Batching exists to shrink this. *)

  val events : ('j, 'r) t -> int
  (** Doorbell counter: bumped by workers after every result push.
      Sample it, drain, and {!wait} on the sampled value to park
      race-free until more results arrive. *)

  val wait : ('j, 'r) t -> seen:int -> unit
  (** Driver only.  Park until {!events} differs from [seen] (i.e. some
      worker pushed a result after the driver sampled [seen]).  Returns
      immediately if it already differs.  Re-raises a captured worker
      exception. *)

  val shutdown : ('j, 'r) t -> unit
  (** Stop and join every worker domain.  Idempotent.  Re-raises a
      captured worker exception after the join. *)
end

(** Adaptive handoff controller for the pipelined driver.

    Resizes the handoff batch (flush threshold) and the in-flight window
    from queue depths the driver observes each scheduling round: a run
    of backed-up observations doubles the batch (throughput mode —
    amortize doorbells and publications), a run of dry observations
    halves it (latency mode — hand work over eagerly), with hysteresis
    so a single spike cannot flap the setting.  The window tracks
    [4 * batch] clamped to [\[batch, capacity\]].

    Strictly a wall-clock knob: it never changes which worker runs a
    job or the order results are applied, so melds stay bit-identical
    with the controller on or off.  When [enabled] is false, {!observe}
    is a no-op and the batch/window stay at their creation values. *)
module Adaptive : sig
  type t

  val create :
    ?growth:int -> enabled:bool -> batch:int -> capacity:int -> unit -> t
  (** [batch] is clamped to [\[1, capacity\]]; [growth] (default 3) is
      the hysteresis run length before a resize. *)

  val batch : t -> int
  val window : t -> int

  val adjustments : t -> int
  (** Batch-size changes applied so far. *)

  val observe : t -> depth:int -> unit
  (** Feed one scheduling-round observation: [depth] is the deepest job
      queue seen this round (relative to the capacity given at
      creation). *)
end

type t
(** An instantiated runtime: the backend descriptor plus, for [Parallel],
    the live domain pool.  A [Pipelined] runtime carries only the
    descriptor — the pipeline instantiates its own {!Stage_pool}, typed
    by its job/result variants. *)

val create : ?metrics:Hyder_obs.Metrics.t -> backend -> t
(** [metrics], when given, registers scheduling instruments
    ([runtime_domains] gauge, [runtime_task_batches] and [runtime_tasks]
    counters) that {!run_tasks} updates; purely observational. *)

val backend : t -> backend

val is_parallel : t -> bool

val is_pipelined : t -> bool

val run_tasks : t -> tasks:int -> (int -> unit) -> unit
(** Execute [tasks] independent tasks: [Sequential] and [Pipelined] run
    them inline in index order; [Parallel] runs them concurrently on the
    pool (any order, any domain).  Tasks handed to this function must be
    pairwise independent — the pipeline shards premeld work by paper
    thread id to guarantee it. *)

val shutdown : t -> unit
(** Join the domain pool, if any.  Idempotent; a no-op for [Sequential]
    and [Pipelined] (the pipeline owns and shuts down its own stage
    pool). *)
