open Hyder_tree
module View = Hyder_codec.View

(* Weak arrays: the cache is an address book, not an owner.  Nodes stay
   resolvable exactly as long as something real (a retained state, a newer
   intention) keeps them alive; aborted intentions' nodes vanish with them.

   Lazily-decoded intentions have no node array to register — their nodes
   may never exist.  Those go in a small STRONG view table instead: a view
   materializes a referenced node on demand (memoized, so repeated hits
   share objects).  Strong, because a view pins its wire buffer and the
   flyweight arrays — cheap per entry, but worth a much smaller bound than
   the weak table; references only ever reach back a bounded window of
   recent intentions. *)
type t = {
  capacity : int;
  table : (int, Node.tree Weak.t) Hashtbl.t;
  fifo : int Queue.t;
  vcapacity : int;
  vtable : (int, View.t) Hashtbl.t;
  vfifo : int Queue.t;
}

let create ?(capacity = 16384) ?(view_capacity = 1024) () =
  if capacity <= 0 || view_capacity <= 0 then
    invalid_arg "Intention_cache.create";
  {
    capacity;
    table = Hashtbl.create (2 * capacity);
    fifo = Queue.create ();
    vcapacity = view_capacity;
    vtable = Hashtbl.create (2 * view_capacity);
    vfifo = Queue.create ();
  }

let add t ~pos nodes =
  if not (Hashtbl.mem t.table pos) then begin
    let w = Weak.create (Array.length nodes) in
    Array.iteri (fun i n -> Weak.set w i (Some n)) nodes;
    Hashtbl.replace t.table pos w;
    Queue.push pos t.fifo;
    while Queue.length t.fifo > t.capacity do
      Hashtbl.remove t.table (Queue.pop t.fifo)
    done
  end

let add_view t v =
  let pos = View.pos v in
  if not (Hashtbl.mem t.vtable pos) then begin
    Hashtbl.replace t.vtable pos v;
    Queue.push pos t.vfifo;
    while Queue.length t.vfifo > t.vcapacity do
      Hashtbl.remove t.vtable (Queue.pop t.vfifo)
    done
  end

let find t ~pos ~idx =
  match Hashtbl.find_opt t.vtable pos with
  | Some v when idx >= 0 && idx < View.node_count v ->
      Some (View.materialize v idx)
  | Some _ -> None
  | None -> (
      match Hashtbl.find_opt t.table pos with
      | Some w when idx >= 0 && idx < Weak.length w -> Weak.get w idx
      | Some _ | None -> None)

let cached t = Hashtbl.length t.table + Hashtbl.length t.vtable
