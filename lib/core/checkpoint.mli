open Hyder_tree

(** Checkpointing and tombstone compaction.

    Deletes leave tombstone nodes in the tree (DESIGN.md §2).  A checkpoint
    rewrites a database state as a fresh canonical tree without them —
    the moral equivalent of writing the state as one big intention at a
    checkpoint log position, which is how a production Hyder would truncate
    its log.  The output is a valid genesis-style state: every server
    loading the same checkpoint at the same position obtains a physically
    identical tree. *)

type stats = {
  live_nodes : int;
  tombstones_dropped : int;
}

val compact : pos:int -> Tree.t -> Tree.t * stats
(** [compact ~pos state] rebuilds [state] without tombstones.  Nodes get
    VNs [Logged (pos, idx)] in key order and keep their content versions,
    so later conflict checks against pre-checkpoint readers still work:
    a key's [cv] is preserved verbatim. *)

(** {1 Durable checkpoints (crash recovery)}

    A checkpoint is everything a restarted meld pipeline needs to resume
    {e bit-identically} from sequence [seq + 1]: the retained state window
    (premeld input arithmetic and snapshot-reference resolution both read
    recent states, not just the newest one), the ephemeral-id allocator
    cursors, and a deep copy of the counters.  The [compacted] tree is the
    canonical durable encoding of the newest state — the form a production
    Hyder would serialize; melding the log suffix onto it yields identical
    decisions and a logically equal tree (see the compaction tests), while
    the exact window is what makes the replay {e physically} identical. *)

type t = {
  seq : int;  (** newest melded sequence number at capture *)
  pos : int;  (** its log position; replay covers [(pos, tail]] *)
  store : State_store.Snapshot.t;  (** frozen retention window *)
  compacted : Tree.t;  (** canonical tombstone-free form of the state *)
  compact_stats : stats;
  alloc_issued : int array;
      (** ephemeral-id cursors: final meld, premeld threads 1..t, group
          meld — in {!Pipeline}'s thread-id order *)
  counters : Counters.t;  (** deep copy at capture *)
}

val capture :
  store:State_store.Snapshot.t ->
  alloc_issued:int array ->
  counters:Counters.t ->
  t
(** Freeze a checkpoint.  Must only be called at a group boundary (no
    partially assembled meld group) — {!Pipeline.checkpoint} enforces
    this.  Copies its mutable inputs. *)

val state : t -> Tree.t
(** The exact (uncompacted) newest retained state. *)
