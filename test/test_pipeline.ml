open Hyder_tree
module Local = Hyder_core.Local
module Executor = Hyder_core.Executor
module Pipeline = Hyder_core.Pipeline
module Premeld = Hyder_core.Premeld
module Oracle = Hyder_core.Oracle
module Counters = Hyder_core.Counters
module I = Hyder_codec.Intention

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Deterministic workload scripts                                       *)
(* ------------------------------------------------------------------ *)

(* A transaction spec: how far behind the current LCS its snapshot is, and
   what it reads and writes.  Reads are restricted to genesis keys (which
   are never deleted here) so the oracle comparison is exact — meld's
   absent-key and range guards are deliberately conservative and are tested
   separately. *)
type spec = {
  lag : int;
  reads : Key.t list;
  writes : (Key.t * string) list;
  isolation : I.isolation;
}

let genesis_n = 2000

let random_specs ~txns ~seed ~isolation_mix =
  let rng = Hyder_util.Rng.create (Int64.of_int seed) in
  let fresh_key = ref 10_000 in
  List.init txns (fun i ->
      let lag = Hyder_util.Rng.int rng 12 in
      let reads =
        List.init (Hyder_util.Rng.int rng 4) (fun _ ->
            Hyder_util.Rng.int rng genesis_n)
      in
      let writes =
        List.init
          (1 + Hyder_util.Rng.int rng 3)
          (fun _ ->
            if Hyder_util.Rng.int rng 10 = 0 then begin
              incr fresh_key;
              (!fresh_key, Printf.sprintf "ins%d" i)
            end
            else (Hyder_util.Rng.int rng genesis_n, Printf.sprintf "w%d" i))
      in
      let isolation =
        if isolation_mix && Hyder_util.Rng.int rng 3 = 0 then
          I.Snapshot_isolation
        else I.Serializable
      in
      { lag; reads; writes; isolation })

(* Replay a script against a pipeline config; returns (decisions sorted by
   seq, final state, oracle inputs, pipeline). *)
let replay ?(config = Pipeline.plain) specs =
  let genesis = Helpers.genesis genesis_n in
  let p = Pipeline.create ~config ~genesis () in
  (* newest first: (seq, pos, tree) snapshots a transaction may run on.
     With group meld the LCS lags behind submissions, so entries can repeat;
     carrying the seq explicitly keeps the oracle aligned. *)
  let history = ref [ (-1, -1, genesis) ] in
  let decisions = ref [] in
  let oracle_inputs = ref [] in
  let next_pos = ref 0 in
  List.iteri
    (fun i spec ->
      let hist = !history in
      let lag = min spec.lag (List.length hist - 1) in
      let snapshot_seq, snapshot_pos, snapshot = List.nth hist lag in
      let e =
        Executor.begin_txn ~snapshot_pos ~snapshot ~server:0 ~txn_seq:i
          ~isolation:spec.isolation ()
      in
      List.iter (fun k -> ignore (Executor.read e k)) spec.reads;
      List.iter (fun (k, v) -> Executor.write e k v) spec.writes;
      (match Executor.finish e with
      | None -> Alcotest.fail "spec with writes produced no draft"
      | Some draft ->
          next_pos := !next_pos + 2;
          let intention = I.assign ~pos:!next_pos draft in
          decisions := Pipeline.submit p intention @ !decisions);
      oracle_inputs :=
        (snapshot_seq, spec.reads, List.map fst spec.writes, spec.isolation)
        :: !oracle_inputs;
      let seq, pos, tree = Pipeline.lcs p in
      history := (seq, pos, tree) :: hist)
    specs;
  decisions := Pipeline.flush p @ !decisions;
  let ds =
    List.sort (fun a b -> Int.compare a.Pipeline.seq b.Pipeline.seq) !decisions
  in
  let _, _, final = Pipeline.lcs p in
  (ds, final, List.rev !oracle_inputs, p)

(* ------------------------------------------------------------------ *)
(* Oracle equivalence                                                   *)
(* ------------------------------------------------------------------ *)

let check_oracle_equiv ~config ~seed ~isolation_mix () =
  let specs = random_specs ~txns:250 ~seed ~isolation_mix in
  let ds, final, oracle_inputs, _ = replay ~config specs in
  check_int "every txn decided" (List.length specs) (List.length ds);
  let oracle = Oracle.create () in
  List.iteri
    (fun i (snapshot_seq, reads, writes, isolation) ->
      let expected =
        Oracle.decide oracle ~snapshot_seq ~isolation ~reads ~writes
      in
      let d = List.nth ds i in
      if d.Pipeline.committed <> expected then
        Alcotest.failf "txn %d: meld says %b, oracle says %b (reason: %s)" i
          d.Pipeline.committed expected
          (match d.Pipeline.reason with
          | Some r -> Hyder_core.Meld.abort_reason_to_string r
          | None -> "none"))
    oracle_inputs;
  (* Final state must equal the committed writes replayed in order. *)
  let model = Hashtbl.create 512 in
  for k = 0 to genesis_n - 1 do
    Hashtbl.replace model k ("v" ^ string_of_int k)
  done;
  List.iteri
    (fun i spec ->
      if (List.nth ds i).Pipeline.committed then
        List.iter (fun (k, v) -> Hashtbl.replace model k v) spec.writes)
    specs;
  Hashtbl.iter
    (fun k v ->
      Alcotest.(check string)
        (Printf.sprintf "final key %d" k)
        v
        (Helpers.value_exn (Tree.lookup final k)))
    model;
  check_int "final live size" (Hashtbl.length model) (Tree.live_size final)

let test_oracle_plain () =
  check_oracle_equiv ~config:Pipeline.plain ~seed:11 ~isolation_mix:false ();
  check_oracle_equiv ~config:Pipeline.plain ~seed:12 ~isolation_mix:true ()

let test_oracle_premeld () =
  check_oracle_equiv ~config:Pipeline.with_premeld ~seed:21
    ~isolation_mix:false ();
  check_oracle_equiv ~config:Pipeline.with_premeld ~seed:22
    ~isolation_mix:true ()

let test_oracle_premeld_small_distance () =
  check_oracle_equiv
    ~config:
      {
        Pipeline.premeld = Some { Premeld.threads = 2; distance = 1 };
        group_size = 1;
      }
    ~seed:31 ~isolation_mix:true ()

(* ------------------------------------------------------------------ *)
(* Cross-configuration equivalence                                      *)
(* ------------------------------------------------------------------ *)

let test_premeld_preserves_decisions () =
  let specs = random_specs ~txns:300 ~seed:41 ~isolation_mix:true in
  let ds_plain, final_plain, _, _ = replay ~config:Pipeline.plain specs in
  let ds_pre, final_pre, _, _ = replay ~config:Pipeline.with_premeld specs in
  List.iter2
    (fun a b ->
      if a.Pipeline.committed <> b.Pipeline.committed then
        Alcotest.failf "txn seq %d: plain=%b premeld=%b" a.Pipeline.seq
          a.Pipeline.committed b.Pipeline.committed)
    ds_plain ds_pre;
  Alcotest.check Helpers.alist_testable "same logical state"
    (Tree.to_alist final_plain) (Tree.to_alist final_pre)

let test_same_config_physical_determinism () =
  let specs = random_specs ~txns:200 ~seed:51 ~isolation_mix:true in
  List.iter
    (fun config ->
      let _, a, _, _ = replay ~config specs in
      let _, b, _, _ = replay ~config specs in
      check "physically identical states" true (Tree.physically_equal a b))
    [
      Pipeline.plain;
      Pipeline.with_premeld;
      Pipeline.with_group_meld;
      Pipeline.with_both;
    ]

(* Exact reference model of group meld over point operations: pairs decide
   together; a later member whose validated set intersects its partner's
   writes dies alone at group meld (Figure 8); otherwise a conflict by
   either survivor against committed history aborts the whole group. *)
let group_oracle_decisions specs oracle_inputs =
  let last_writer = Hashtbl.create 512 in
  let n = List.length specs in
  let specs = Array.of_list specs in
  let inputs = Array.of_list oracle_inputs in
  let decisions = Array.make n false in
  let validated i =
    let snapshot_seq, reads, writes, isolation = inputs.(i) in
    ignore snapshot_seq;
    match isolation with
    | I.Serializable -> List.rev_append reads writes
    | I.Snapshot_isolation | I.Read_committed -> writes
  in
  let conflicts_with_history i =
    let snapshot_seq, _, _, _ = inputs.(i) in
    List.exists
      (fun k ->
        match Hashtbl.find_opt last_writer k with
        | Some w -> w > snapshot_seq
        | None -> false)
      (validated i)
  in
  let commit i =
    decisions.(i) <- true;
    List.iter (fun (k, _) -> Hashtbl.replace last_writer k i) specs.(i).writes
  in
  let rec go i =
    if i >= n then ()
    else if i + 1 >= n then begin
      (* trailing singleton (flush) *)
      if not (conflicts_with_history i) then commit i;
      go (i + 1)
    end
    else begin
      let w1 = List.map fst specs.(i).writes in
      let gm_kill =
        List.exists (fun k -> List.mem k w1) (validated (i + 1))
      in
      let survivors = if gm_kill then [ i ] else [ i; i + 1 ] in
      if not (List.exists conflicts_with_history survivors) then
        List.iter commit survivors;
      go (i + 2)
    end
  in
  go 0;
  decisions

let test_group_meld_matches_fate_sharing_oracle () =
  let specs = random_specs ~txns:300 ~seed:61 ~isolation_mix:false in
  let ds_grp, final_grp, oracle_inputs, _ =
    replay ~config:Pipeline.with_group_meld specs
  in
  check_int "every txn decided" (List.length specs) (List.length ds_grp);
  let expected = group_oracle_decisions specs oracle_inputs in
  List.iteri
    (fun i d ->
      if d.Pipeline.committed <> expected.(i) then
        Alcotest.failf "txn seq %d: group meld=%b, fate-sharing oracle=%b" i
          d.Pipeline.committed expected.(i))
    ds_grp;
  (* State must reflect exactly the group-meld commit set. *)
  let model = Hashtbl.create 512 in
  for k = 0 to genesis_n - 1 do
    Hashtbl.replace model k ("v" ^ string_of_int k)
  done;
  List.iteri
    (fun i spec ->
      if (List.nth ds_grp i).Pipeline.committed then
        List.iter (fun (k, v) -> Hashtbl.replace model k v) spec.writes)
    specs;
  Hashtbl.iter
    (fun k v ->
      Alcotest.(check string)
        (Printf.sprintf "group state key %d" k)
        v
        (Helpers.value_exn (Tree.lookup final_grp k)))
    model

(* ------------------------------------------------------------------ *)
(* Group meld corner cases                                              *)
(* ------------------------------------------------------------------ *)

let group_harness () =
  Local.create ~config:Pipeline.with_group_meld
    ~genesis:(Helpers.genesis ~gap:10 100) ()

let test_group_pairs_decide_together () =
  let h = group_harness () in
  let _, ds1 = Local.txn h (fun e -> Executor.write e 10 "a") in
  check_int "first buffered" 0 (List.length ds1);
  let _, ds2 = Local.txn h (fun e -> Executor.write e 20 "b") in
  check_int "pair decided" 2 (List.length ds2);
  List.iter (fun d -> check "committed" true d.Pipeline.committed) ds2

let test_group_figure8_no_fate_sharing () =
  (* I1 writes k, I2 (concurrent) writes k: I1 is in I2's conflict zone, so
     group meld aborts I2 alone and I1 survives (Figure 8). *)
  let h = group_harness () in
  let t1 = Helpers.begin_txn h in
  let t2 = Helpers.begin_txn h in
  Executor.write t1 10 "first";
  Executor.write t2 10 "second";
  let ds1 = Helpers.commit h t1 in
  check_int "buffered" 0 (List.length ds1);
  let ds2 = Helpers.commit h t2 in
  check_int "both decided" 2 (List.length ds2);
  (match ds2 with
  | [ d1; d2 ] ->
      check "I1 commits" true d1.Pipeline.committed;
      check "I2 aborts" false d2.Pipeline.committed;
      check "decided at group meld" true
        (d2.Pipeline.decided_at = Pipeline.At_group_meld)
  | _ -> Alcotest.fail "expected two decisions");
  let _, _, lcs = Local.lcs h in
  Alcotest.(check string)
    "first wins" "first"
    (Helpers.value_exn (Tree.lookup lcs 10))

let test_group_fate_sharing_partner_dragged_down () =
  (* A member that conflicts with an earlier *committed* transaction drags
     its innocent group partner down with it (fate sharing). *)
  let h = group_harness () in
  let w = Helpers.begin_txn h in
  let bad = Helpers.begin_txn h in
  let innocent = Helpers.begin_txn h in
  Executor.write w 30 "w";
  Executor.write bad 30 "bad" (* conflicts with w *);
  Executor.write innocent 40 "innocent";
  (* Groups: (w, filler) then (bad, innocent). *)
  ignore (Helpers.commit h w);
  let filler = Helpers.begin_txn h in
  Executor.write filler 50 "filler";
  ignore (Helpers.commit h filler);
  ignore (Helpers.commit h bad);
  let ds = Helpers.commit h innocent in
  check_int "group decided" 2 (List.length ds);
  List.iter
    (fun d ->
      check "fate shared: both abort" false d.Pipeline.committed;
      check "decided at final meld" true
        (d.Pipeline.decided_at = Pipeline.At_final_meld))
    ds;
  let _, _, lcs = Local.lcs h in
  Alcotest.(check string)
    "innocent's write absent" "v40"
    (Helpers.value_exn (Tree.lookup lcs 40));
  Alcotest.(check string)
    "w's write stands" "w"
    (Helpers.value_exn (Tree.lookup lcs 30))

(* ------------------------------------------------------------------ *)
(* Premeld mechanics                                                    *)
(* ------------------------------------------------------------------ *)

let test_premeld_actually_runs_and_helps () =
  let specs = random_specs ~txns:500 ~seed:71 ~isolation_mix:false in
  (* Large lags so premeld has a window to shrink. *)
  let specs = List.map (fun s -> { s with lag = 200 + s.lag }) specs in
  let config =
    {
      Pipeline.premeld = Some { Premeld.threads = 5; distance = 2 };
      group_size = 1;
    }
  in
  let _, _, _, p_pre = replay ~config specs in
  let _, _, _, p_plain = replay ~config:Pipeline.plain specs in
  let c_pre = Pipeline.counters p_pre in
  let c_plain = Pipeline.counters p_plain in
  check "premeld processed intentions" true
    ((Counters.premeld_total c_pre).Counters.intentions > 100);
  let fm_pre = Hyder_util.Stats.Summary.mean c_pre.Counters.fm_nodes_per_txn in
  let fm_plain =
    Hyder_util.Stats.Summary.mean c_plain.Counters.fm_nodes_per_txn
  in
  check
    (Printf.sprintf "premeld reduces final meld work (%.1f vs %.1f)" fm_pre
       fm_plain)
    true
    (fm_pre < fm_plain *. 0.75);
  (* Conflict zone observed by final meld shrinks dramatically. *)
  let cz_pre = Hyder_util.Stats.Summary.mean c_pre.Counters.conflict_zone in
  let cz_plain = Hyder_util.Stats.Summary.mean c_plain.Counters.conflict_zone in
  check
    (Printf.sprintf "conflict zone shrinks (%.1f vs %.1f)" cz_pre cz_plain)
    true
    (cz_pre < cz_plain /. 4.0)

let test_premeld_index_arithmetic () =
  let c = { Premeld.threads = 5; distance = 10 } in
  check_int "thread of seq 0" 1 (Premeld.thread_for c ~seq:0);
  check_int "thread of seq 4" 5 (Premeld.thread_for c ~seq:4);
  check_int "thread of seq 5" 1 (Premeld.thread_for c ~seq:5);
  check_int "input of seq 60" 9 (Premeld.input_seq c ~seq:60);
  check_int "input of seq 51" 0 (Premeld.input_seq c ~seq:51)

(* ------------------------------------------------------------------ *)
(* Codec-path equivalence                                               *)
(* ------------------------------------------------------------------ *)

let test_codec_path_equivalence () =
  let run use_codec =
    let h = Local.create ~use_codec ~genesis:(Helpers.genesis ~gap:10 100) () in
    let rng = Hyder_util.Rng.create 99L in
    let outcomes = ref [] in
    for _ = 1 to 100 do
      let t1 = Helpers.begin_txn h in
      let t2 = Helpers.begin_txn h in
      Executor.write t1 (10 * Hyder_util.Rng.int rng 120) "x";
      ignore (Executor.read t2 (10 * Hyder_util.Rng.int rng 100));
      Executor.write t2 (10 * Hyder_util.Rng.int rng 120) "y";
      outcomes := Helpers.commit1 h t1 :: !outcomes;
      outcomes := Helpers.commit1 h t2 :: !outcomes
    done;
    let _, _, lcs = Local.lcs h in
    (!outcomes, Tree.to_alist lcs)
  in
  Helpers.txn_counter := 1000;
  let d1, s1 = run false in
  Helpers.txn_counter := 1000;
  let d2, s2 = run true in
  check "same decisions" true (d1 = d2);
  Alcotest.check Helpers.alist_testable "same state" s1 s2

let () =
  Alcotest.run "pipeline"
    [
      ( "oracle",
        [
          Alcotest.test_case "plain matches oracle" `Quick test_oracle_plain;
          Alcotest.test_case "premeld matches oracle" `Quick
            test_oracle_premeld;
          Alcotest.test_case "small premeld distance" `Quick
            test_oracle_premeld_small_distance;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "premeld preserves decisions" `Quick
            test_premeld_preserves_decisions;
          Alcotest.test_case "physical determinism" `Quick
            test_same_config_physical_determinism;
          Alcotest.test_case "group meld fate-sharing oracle" `Quick
            test_group_meld_matches_fate_sharing_oracle;
        ] );
      ( "group meld",
        [
          Alcotest.test_case "pairs decide together" `Quick
            test_group_pairs_decide_together;
          Alcotest.test_case "figure 8" `Quick
            test_group_figure8_no_fate_sharing;
          Alcotest.test_case "partner dragged down" `Quick
            test_group_fate_sharing_partner_dragged_down;
        ] );
      ( "premeld",
        [
          Alcotest.test_case "premeld shrinks final meld" `Quick
            test_premeld_actually_runs_and_helps;
          Alcotest.test_case "index arithmetic" `Quick
            test_premeld_index_arithmetic;
        ] );
      ( "codec path",
        [
          Alcotest.test_case "equivalent to direct path" `Quick
            test_codec_path_equivalence;
        ] );
    ]
