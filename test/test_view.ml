(* The flyweight view must be indistinguishable from the eager decoder:
   field by field through the accessors, node by node through
   materialization, decision by decision through the pipeline, and
   outcome by outcome on corrupt input.  DESIGN.md §13. *)

open Hyder_tree
module I = Hyder_codec.Intention
module Codec = Hyder_codec.Codec
module View = Hyder_codec.View
module Executor = Hyder_core.Executor
module Pipeline = Hyder_core.Pipeline
module Premeld = Hyder_core.Premeld
module Runtime = Hyder_core.Runtime
module Counters = Hyder_core.Counters
module Rng = Hyder_util.Rng

let check = Alcotest.(check bool)

(* ---- random transactions over a fixed snapshot ----------------------- *)

let genesis_n = 500
let snapshot = Helpers.genesis ~gap:3 genesis_n

let resolve ~snapshot:_ ~key ~vn:_ =
  match Tree.find snapshot key with Some n -> n | None -> Node.empty

type txn = { reads : int list; writes : int list; dels : int list; si : bool }

let txn_gen =
  QCheck2.Gen.(
    let key = int_bound (genesis_n - 1) in
    map
      (fun (reads, writes, dels, si) -> { reads; writes; dels; si })
      (quad
         (list_size (int_range 0 6) key)
         (list_size (int_range 1 10) key)
         (list_size (int_range 0 3) key)
         bool))

(* Wire bytes for a random transaction; [None] when the executor elides
   it (e.g. every write cancelled by a delete of a missing key). *)
let encode_txn t =
  let isolation = if t.si then I.Snapshot_isolation else I.Serializable in
  let e =
    Executor.begin_txn ~snapshot_pos:(-1) ~snapshot ~server:3 ~txn_seq:17
      ~isolation ()
  in
  List.iter (fun k -> ignore (Executor.read e (k * 3))) t.reads;
  List.iter (fun k -> Executor.write e (k * 3) "w") t.writes;
  List.iter (fun k -> Executor.delete e (k * 3)) t.dels;
  match Executor.finish e with
  | Some d -> Some (Codec.encode d)
  | None -> None

let vn_opt_equal a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> Vn.equal x y
  | _ -> false

(* Every accessor agrees with the corresponding field of the eagerly
   decoded node, and materialization reproduces the eager tree. *)
let prop_view_matches_eager =
  QCheck2.Test.make ~name:"view accessors = eager decode, field by field"
    ~count:150 txn_gen (fun t ->
      match encode_txn t with
      | None -> true
      | Some bytes ->
          let eager, nodes = Codec.decode_indexed ~pos:11 ~resolve bytes in
          let li = Codec.decode_lazy ~pos:11 ~peer:snapshot ~resolve bytes in
          let v =
            match li.I.view with
            | Some v -> v
            | None -> QCheck2.Test.fail_report "decode_lazy carried no view"
          in
          let ok idx what b =
            if not b then
              QCheck2.Test.fail_reportf "node %d: %s disagrees" idx what
          in
          if View.node_count v <> eager.I.node_count then
            QCheck2.Test.fail_report "node_count disagrees";
          if
            not
              (li.I.snapshot = eager.I.snapshot
              && li.I.server = eager.I.server
              && li.I.txn_seq = eager.I.txn_seq
              && li.I.isolation = eager.I.isolation
              && li.I.byte_size = eager.I.byte_size)
          then QCheck2.Test.fail_report "header disagrees";
          let kid_agrees idx what c (n : Node.tree) =
            if View.kid_is_empty c then ok idx what (Node.is_empty n)
            else if View.kid_is_inside c then ok idx what (n == nodes.(c))
            else ok idx what (n == View.ref_of v c)
          in
          Array.iteri
            (fun idx (n : Node.node) ->
              ok idx "key" (View.key v idx = n.Node.key);
              ok idx "meta" (View.meta v idx = n.Node.meta);
              ok idx "vn" (Vn.equal (View.vn v idx) n.Node.vn);
              ok idx "cv" (Vn.equal (View.cv v idx) n.Node.cv);
              let sa, sb, ca, cb = View.sources v idx in
              ok idx "sources"
                (sa = n.Node.ssv_a && sb = n.Node.ssv_b && ca = n.Node.scv_a
                && cb = n.Node.scv_b);
              ok idx "payload" (Payload.equal (View.payload v idx) n.Node.payload);
              ok idx "ssv" (vn_opt_equal (View.ssv v idx) (Node.ssv n));
              (* the in-place source comparators mirror the packed ones *)
              ok idx "ssv_equals vn"
                (View.ssv_equals v idx n.Node.vn = Node.ssv_equals n n.Node.vn);
              (match Node.ssv n with
              | Some s -> ok idx "ssv_equals hit" (View.ssv_equals v idx s)
              | None -> ());
              ok idx "scv_equals cv"
                (View.scv_equals v idx n.Node.cv = Node.scv_equals n n.Node.cv);
              (match Node.scv n with
              | Some s -> ok idx "scv_equals hit" (View.scv_equals v idx s)
              | None -> ());
              kid_agrees idx "left child" (View.kid_l v idx) n.Node.left;
              kid_agrees idx "right child" (View.kid_r v idx) n.Node.right)
            nodes;
          Tree.physically_equal (View.materialize_root v) eager.I.root)

(* Every strict prefix of a valid encoding must be rejected with Corrupt
   — never accepted, never any other exception (pool/cursor state stays
   intact because parse fails before a view escapes). *)
let prop_truncation_rejected =
  QCheck2.Test.make ~name:"every truncation raises Corrupt" ~count:40 txn_gen
    (fun t ->
      match encode_txn t with
      | None -> true
      | Some bytes ->
          for len = 0 to String.length bytes - 1 do
            match
              Codec.decode_lazy ~pos:5 ~peer:snapshot ~resolve
                (String.sub bytes 0 len)
            with
            | _ ->
                QCheck2.Test.fail_reportf "prefix of %d/%d bytes accepted" len
                  (String.length bytes)
            | exception Codec.Corrupt _ -> ()
          done;
          true)

(* Differential fuzz: after a single bit flip, lazy and eager must agree
   on the outcome — both reject with Corrupt, or both accept with
   physically identical trees.  (The two decoders may report different
   Corrupt messages first — the view defers reference binding to a
   second pass — but the accept/reject decision must match.) *)
let prop_bit_flip_differential =
  QCheck2.Test.make ~name:"bit flips: lazy and eager agree" ~count:120
    QCheck2.Gen.(pair txn_gen (pair big_nat (int_bound 7)))
    (fun (t, (posn, bit)) ->
      match encode_txn t with
      | None -> true
      | Some bytes ->
          let i = posn mod String.length bytes in
          let b = Bytes.of_string bytes in
          Bytes.set b i
            (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
          let s = Bytes.to_string b in
          let eager_r =
            match Codec.decode ~pos:5 ~resolve s with
            | d -> Some d
            | exception Codec.Corrupt _ -> None
          in
          let lazy_r =
            match Codec.decode_lazy ~pos:5 ~peer:snapshot ~resolve s with
            | d -> Some d
            | exception Codec.Corrupt _ -> None
          in
          match (eager_r, lazy_r) with
          | None, None -> true
          | Some e, Some l ->
              let v =
                match l.I.view with
                | Some v -> v
                | None -> QCheck2.Test.fail_report "no view"
              in
              if Tree.physically_equal e.I.root (View.materialize_root v) then
                true
              else
                QCheck2.Test.fail_reportf
                  "flip at byte %d bit %d: both accepted, trees differ" i bit
          | Some _, None ->
              QCheck2.Test.fail_reportf
                "flip at byte %d bit %d: eager accepted, lazy rejected" i bit
          | None, Some _ ->
              QCheck2.Test.fail_reportf
                "flip at byte %d bit %d: lazy accepted, eager rejected" i bit)

(* ---- pipeline bit-identity: lazy vs eager across backends ------------ *)

let same_decision (a : Pipeline.decision) (b : Pipeline.decision) =
  a.Pipeline.seq = b.Pipeline.seq
  && a.Pipeline.pos = b.Pipeline.pos
  && a.Pipeline.committed = b.Pipeline.committed
  && a.Pipeline.reason = b.Pipeline.reason
  && a.Pipeline.decided_at = b.Pipeline.decided_at

(* Record a deterministic wire stream with a sequential generator, then
   replay it lazily and eagerly on every backend: decisions, final tree
   and premeld visit counters must be bit-identical throughout. *)
let test_pipeline_lazy_eager_identical () =
  let config =
    { Pipeline.premeld = Some { Premeld.threads = 3; distance = 8 };
      group_size = 2 }
  in
  let n = 2000 in
  let genesis = Helpers.genesis n in
  let rng = Rng.create 4242L in
  let gen = Pipeline.create ~config ~genesis () in
  let history = ref [ (-1, genesis) ] in
  let hist_len = ref 1 in
  let wires = ref [] in
  let next_pos = ref 0 in
  for txn_seq = 0 to 399 do
    let lag = min (Rng.int rng 40) (!hist_len - 1) in
    let snapshot_pos, snap = List.nth !history lag in
    let isolation =
      if Rng.int rng 4 = 0 then I.Snapshot_isolation else I.Serializable
    in
    let e =
      Executor.begin_txn ~snapshot_pos ~snapshot:snap ~server:0 ~txn_seq
        ~isolation ()
    in
    for _ = 1 to Rng.int rng 3 do
      ignore (Executor.read e (Rng.int rng n))
    done;
    for _ = 1 to 1 + Rng.int rng 2 do
      Executor.write e (Rng.int rng n) (Printf.sprintf "w%d" txn_seq)
    done;
    match Executor.finish e with
    | None -> ()
    | Some draft ->
        next_pos := !next_pos + 1 + Rng.int rng 2;
        let src = Codec.encode draft in
        let intention = Pipeline.decode gen ~pos:!next_pos src in
        wires := (!next_pos, src) :: !wires;
        ignore (Pipeline.submit gen intention);
        let _, pos, tree = Pipeline.lcs gen in
        history := (pos, tree) :: !history;
        incr hist_len
  done;
  ignore (Pipeline.flush gen);
  let wires = List.rev !wires in
  check "stream not trivial" true (List.length wires > 150);
  let replay ~lazy_decode ~runtime =
    let p = Pipeline.create ~config ~runtime ~lazy_decode ~genesis () in
    let decisions = Pipeline.submit_wire_batch p wires @ Pipeline.flush p in
    let _, _, final = Pipeline.lcs p in
    let counts =
      Array.map
        (fun (s : Counters.stage) ->
          (s.Counters.intentions, s.Counters.nodes_visited))
        (Pipeline.counters p).Counters.premeld_shards
    in
    Pipeline.shutdown p;
    (decisions, final, counts)
  in
  let bd, bfinal, bcounts =
    replay ~lazy_decode:false ~runtime:Runtime.sequential
  in
  check "baseline decided everything" true (List.length bd = List.length wires);
  List.iter
    (fun (name, lazy_decode, runtime) ->
      let d, final, counts = replay ~lazy_decode ~runtime in
      check (name ^ ": decisions identical to eager seq") true
        (List.length d = List.length bd && List.for_all2 same_decision d bd);
      check (name ^ ": final tree physically identical") true
        (Tree.physically_equal final bfinal);
      check (name ^ ": premeld work identical") true (counts = bcounts))
    [
      ("lazy seq", true, Runtime.sequential);
      ("lazy par:2", true, Runtime.parallel ~domains:2);
      ("lazy pipe:2", true, Runtime.pipelined ~domains:2);
      ("eager pipe:2", false, Runtime.pipelined ~domains:2);
    ]

let () =
  Alcotest.run "view"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_view_matches_eager;
            prop_truncation_rejected;
            prop_bit_flip_differential;
          ] );
      ( "pipeline",
        [
          Alcotest.test_case "lazy = eager across backends" `Quick
            test_pipeline_lazy_eager_identical;
        ] );
    ]
