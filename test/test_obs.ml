(* Hyder_obs: span recorder, metrics registry, exporters, flight
   recorder and its offline analyzer — and the inertness contract:
   wiring a trace recorder, a metrics registry or a flight recorder into
   the pipeline changes NOTHING observable (decisions, ephemeral node
   identities, per-shard integer counters), under the Sequential,
   Parallel and Pipelined runtime backends. *)

module Json = Hyder_obs.Json
module Metrics = Hyder_obs.Metrics
module Trace = Hyder_obs.Trace
module Flight = Hyder_obs.Flight
module Analyze = Hyder_obs.Analyze
module Tree = Hyder_tree.Tree
module Pipeline = Hyder_core.Pipeline
module Premeld = Hyder_core.Premeld
module Runtime = Hyder_core.Runtime
module Counters = Hyder_core.Counters
module Executor = Hyder_core.Executor
module I = Hyder_codec.Intention
module Summary = Hyder_util.Stats.Summary
module Rng = Hyder_util.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let with_temp_file prefix f =
  let path = Filename.temp_file prefix ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

(* ------------------------------------------------------------------ *)
(* Json                                                                 *)
(* ------------------------------------------------------------------ *)

let test_json () =
  check_string "scalars" "[null,true,false,42,-7,2.5,0]"
    (Json.to_string
       (Json.List
          [
            Json.Null; Json.Bool true; Json.Bool false; Json.Int 42;
            Json.Int (-7); Json.Float 2.5; Json.Float 0.0;
          ]));
  check_string "non-finite floats become null" "[null,null,null]"
    (Json.to_string
       (Json.List
          [ Json.Float Float.nan; Json.Float infinity; Json.Float neg_infinity ]));
  check_string "escaping"
    "{\"k\\\"\\\\\":\"a\\nb\\tc\\u0001\"}"
    (Json.to_string (Json.Obj [ ("k\"\\", Json.String "a\nb\tc\001") ]));
  check_string "integers stay compact" "500000"
    (Json.to_string (Json.Float 500000.0))

let test_json_parse () =
  check "null" true (Json.of_string " null " = Json.Null);
  check "bools" true
    (Json.of_string "true" = Json.Bool true
    && Json.of_string "false" = Json.Bool false);
  check "integral numbers parse to Int" true
    (Json.of_string "42" = Json.Int 42 && Json.of_string "-7" = Json.Int (-7));
  check "fractional numbers parse to Float" true
    (Json.of_string "2.5" = Json.Float 2.5);
  check "escapes decode" true
    (Json.of_string "\"a\\nb\\tc\\u0041\"" = Json.String "a\nb\tcA");
  (* serialized-form round-trip over the document shapes the sinks emit *)
  let doc =
    Json.Obj
      [
        ("pos", Json.Int 7);
        ("abort_reason", Json.Null);
        ("committed", Json.Bool true);
        ("wait", Json.Obj [ ("ds", Json.Float 0.25); ("pm", Json.Float 0.0) ]);
        ("tags", Json.List [ Json.String "a\"b"; Json.Int (-1) ]);
      ]
  in
  let s = Json.to_string doc in
  check_string "to_string . of_string round-trips" s
    (Json.to_string (Json.of_string s));
  check "empty input rejected" true (Json.of_string_opt "" = None);
  check "unterminated object rejected" true
    (Json.of_string_opt "{\"a\":" = None);
  check "trailing garbage rejected" true (Json.of_string_opt "42 x" = None);
  match Json.of_string "nope" with
  | exception Json.Parse_error _ -> ()
  | _ -> Alcotest.fail "bad literal accepted"

(* ------------------------------------------------------------------ *)
(* Trace rings                                                          *)
(* ------------------------------------------------------------------ *)

let test_ring_wrap () =
  let t = Trace.create ~capacity:8 ~shards:1 () in
  check_int "capacity rounds to a power of two" 8 (Trace.capacity t);
  check_int "shards" 1 (Trace.shards t);
  for s = 0 to 19 do
    Trace.record t ~track:0 ~stage:Trace.Deserialize ~seq:s
      ~t0:(float_of_int s) ~t1:(float_of_int s +. 0.5) ~nodes:s ~detail:0
  done;
  check_int "recorded counts overwritten spans" 20 (Trace.recorded t);
  check_int "dropped is exact" 12 (Trace.dropped t);
  let sp = Trace.spans t in
  check_int "only the newest capacity spans retained" 8 (List.length sp);
  check "oldest-first, newest window" true
    (List.map (fun (s : Trace.span) -> s.Trace.seq) sp
    = [ 12; 13; 14; 15; 16; 17; 18; 19 ]);
  (* the second ring is independent: no wrap, interleaves by t0 *)
  Trace.record t ~track:1 ~stage:Trace.Premeld ~seq:100 ~t0:13.25 ~t1:13.5
    ~nodes:1 ~detail:1;
  check_int "recorded sums rings" 21 (Trace.recorded t);
  check_int "dropped unchanged" 12 (Trace.dropped t);
  let seqs = List.map (fun (s : Trace.span) -> s.Trace.seq) (Trace.spans t) in
  check "merged sort by start time" true
    (seqs = [ 12; 13; 100; 14; 15; 16; 17; 18; 19 ])

let test_capacity_rounding () =
  check_int "9 rounds to 16" 16 (Trace.capacity (Trace.create ~capacity:9 ~shards:0 ()));
  check_int "1 stays 1" 1 (Trace.capacity (Trace.create ~capacity:1 ~shards:0 ()));
  check "disabled records nothing" true
    (Trace.record Trace.disabled ~track:0 ~stage:Trace.Final_meld ~seq:0
       ~t0:0.0 ~t1:1.0 ~nodes:0 ~detail:0;
     Trace.recorded Trace.disabled = 0);
  match Trace.create ~capacity:0 ~shards:1 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 accepted"

(* A wrapped ring announces its loss in the Chrome export, so a
   truncated trace can never masquerade as a complete one. *)
let test_trace_overflow_marker () =
  let t = Trace.create ~capacity:4 ~shards:0 () in
  for s = 0 to 9 do
    Trace.record t ~track:0 ~stage:Trace.Deserialize ~seq:s
      ~t0:(float_of_int s) ~t1:(float_of_int s +. 0.5) ~nodes:0 ~detail:0
  done;
  check_int "six spans fell off the ring" 6 (Trace.dropped t);
  check "TRUNCATED metadata event on overflow" true
    (contains (Trace.to_chrome_string t)
       "TRUNCATED: 6 spans dropped (ring overflow)");
  let t2 = Trace.create ~capacity:8 ~shards:0 () in
  Trace.record t2 ~track:0 ~stage:Trace.Premeld ~seq:0 ~t0:0.0 ~t1:0.5
    ~nodes:1 ~detail:0;
  check "no marker without drops" false
    (contains (Trace.to_chrome_string t2) "TRUNCATED")

(* ------------------------------------------------------------------ *)
(* Histogram buckets                                                    *)
(* ------------------------------------------------------------------ *)

let test_histogram_buckets () =
  let module H = Metrics.Histogram in
  (* every bucket's lower bound lands in that bucket, and the last value
     before the next bound does too *)
  for i = 0 to H.n_buckets - 1 do
    check_int
      (Printf.sprintf "lower_bound %d maps to itself" i)
      i
      (H.bucket_of (H.lower_bound i));
    check_int
      (Printf.sprintf "just below bound %d" (i + 1))
      i
      (H.bucket_of (Float.pred (H.lower_bound (i + 1))))
  done;
  check_int "zero clamps low" 0 (H.bucket_of 0.0);
  check_int "negative clamps low" 0 (H.bucket_of (-3.0));
  check_int "tiny clamps low" 0 (H.bucket_of 1e-30);
  check_int "huge clamps high" (H.n_buckets - 1) (H.bucket_of 1e30);
  check "1.0 sits at 2^0" true (H.lower_bound (H.bucket_of 1.0) = 1.0);
  let m = Metrics.create () in
  let h = Metrics.histogram m "h" in
  List.iter (H.observe h) [ 1.0; 1.5; 4.0 ];
  check_int "count" 3 (H.count h);
  check "sum" true (H.sum h = 6.5);
  let counts = H.bucket_counts h in
  check_int "[1,2) holds two" 2 counts.(H.bucket_of 1.0);
  check_int "[4,8) holds one" 1 counts.(H.bucket_of 4.0)

(* ------------------------------------------------------------------ *)
(* Registry: kinds, snapshot, diff                                      *)
(* ------------------------------------------------------------------ *)

let test_registry () =
  let m = Metrics.create () in
  let c = Metrics.counter m "c" in
  Metrics.Counter.incr c;
  Metrics.Counter.incr ~by:4 c;
  check_int "counter accumulates" 5 (Metrics.Counter.value c);
  check_int "same name, same instrument" 5
    (Metrics.Counter.value (Metrics.counter m "c"));
  (match Metrics.gauge m "c" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch accepted");
  let g = Metrics.gauge m "g" in
  Metrics.Gauge.set g 2.5;
  let h = Metrics.histogram m "h" in
  Metrics.Histogram.observe h 1.0;
  let base = Metrics.snapshot m in
  Metrics.Counter.incr ~by:3 c;
  Metrics.Gauge.set g 9.0;
  Metrics.Histogram.observe h 4.0;
  Metrics.Histogram.observe h 4.0;
  let d = Metrics.diff ~base (Metrics.snapshot m) in
  (match List.assoc "c" d with
  | Metrics.Counter_v n -> check_int "counter diff subtracts" 3 n
  | _ -> Alcotest.fail "c is not a counter");
  (match List.assoc "g" d with
  | Metrics.Gauge_v x -> check "gauge diff keeps current" true (x = 9.0)
  | _ -> Alcotest.fail "g is not a gauge");
  match List.assoc "h" d with
  | Metrics.Histogram_v { count; sum; counts } ->
      check_int "histogram diff count" 2 count;
      check "histogram diff sum" true (sum = 8.0);
      check_int "histogram diff buckets" 2
        counts.(Metrics.Histogram.bucket_of 4.0);
      check_int "base-only bucket cancels" 0
        counts.(Metrics.Histogram.bucket_of 1.0)
  | _ -> Alcotest.fail "h is not a histogram"

(* ------------------------------------------------------------------ *)
(* Exporter goldens                                                     *)
(* ------------------------------------------------------------------ *)

(* All timestamps are exact binary fractions so the float formatting is
   deterministic across platforms. *)
let test_chrome_golden () =
  let t = Trace.create ~capacity:4 ~shards:1 () in
  Trace.record t ~track:1 ~stage:Trace.Premeld ~seq:1 ~t0:0.5 ~t1:0.75
    ~nodes:3 ~detail:2;
  Trace.record t ~track:0 ~stage:Trace.Final_meld ~seq:0 ~t0:1.0 ~t1:1.25
    ~nodes:7 ~detail:1;
  let expected =
    "{\"traceEvents\":["
    ^ "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"final meld\"}},"
    ^ "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"deserialize\"}},"
    ^ "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":2,\"args\":{\"name\":\"group meld\"}},"
    ^ "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":10,\"args\":{\"name\":\"premeld shard 1\"}},"
    ^ "{\"name\":\"premeld\",\"cat\":\"meld\",\"ph\":\"X\",\"ts\":0,\"dur\":250000,\"pid\":1,\"tid\":10,\"args\":{\"seq\":1,\"nodes\":3,\"detail\":2}},"
    ^ "{\"name\":\"final meld\",\"cat\":\"meld\",\"ph\":\"X\",\"ts\":500000,\"dur\":250000,\"pid\":1,\"tid\":0,\"args\":{\"seq\":0,\"nodes\":7,\"detail\":1}}"
    ^ "],\"displayTimeUnit\":\"ms\"}"
  in
  check_string "chrome export (default origin = earliest span)" expected
    (Trace.to_chrome_string t);
  (* an explicit origin just shifts ts *)
  check "explicit origin shifts timestamps" true
    (let s = Trace.to_chrome_string ~origin:0.25 t in
     let has sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     has "\"ts\":250000" && has "\"ts\":750000")

let test_prometheus_golden () =
  let m = Metrics.create () in
  Metrics.Counter.incr ~by:3 (Metrics.counter m "c");
  Metrics.Gauge.set (Metrics.gauge m "g") 2.5;
  let h = Metrics.histogram m "h total" in
  List.iter (Metrics.Histogram.observe h) [ 1.0; 1.5; 4.0 ];
  let expected =
    "# TYPE c counter\n" ^ "c 3\n" ^ "# TYPE g gauge\n" ^ "g 2.5\n"
    ^ "# TYPE h_total histogram\n" ^ "h_total_bucket{le=\"2\"} 2\n"
    ^ "h_total_bucket{le=\"8\"} 3\n" ^ "h_total_bucket{le=\"+Inf\"} 3\n"
    ^ "h_total_sum 6.5\n" ^ "h_total_count 3\n"
  in
  check_string "prometheus text exposition (names sanitized)" expected
    (Metrics.to_prometheus (Metrics.snapshot m))

let test_metrics_json_golden () =
  let m = Metrics.create () in
  Metrics.Counter.incr ~by:2 (Metrics.counter m "c");
  let h = Metrics.histogram m "h" in
  List.iter (Metrics.Histogram.observe h) [ 1.0; 4.0 ];
  let expected =
    "{\"c\":2,\"h\":{\"count\":2,\"sum\":5,\"mean\":2.5,"
    ^ "\"buckets\":[[1,1],[4,1]]}}"
  in
  check_string "metrics json" expected
    (Json.to_string (Metrics.to_json (Metrics.snapshot m)))

(* ------------------------------------------------------------------ *)
(* Summary.copy / Counters.copy (streaming summaries survive the copy)  *)
(* ------------------------------------------------------------------ *)

let test_summary_copy () =
  let s = Summary.create () in
  List.iter (Summary.add s) [ 1.0; 2.0; 3.0 ];
  let c = Summary.copy s in
  Summary.add s 100.0;
  check_int "copy keeps its own count" 3 (Summary.count c);
  check "copy keeps its own mean" true (Summary.mean c = 2.0);
  check_int "original moved on" 4 (Summary.count s);
  Summary.add c 3.0;
  check_int "copies are independent both ways" 4 (Summary.count s)

let test_counters_copy_preserves_summaries () =
  let c = Counters.create ~premeld_shards:2 () in
  List.iter (Summary.add c.Counters.conflict_zone) [ 10.0; 20.0 ];
  Summary.add c.Counters.fm_nodes_per_txn 7.0;
  Summary.add c.Counters.intention_bytes 512.0;
  c.Counters.committed <- 5;
  let snap = Counters.copy c in
  List.iter (Summary.add c.Counters.conflict_zone) [ 30.0; 40.0 ];
  c.Counters.committed <- 9;
  check_int "copied conflict_zone count" 2
    (Summary.count snap.Counters.conflict_zone);
  check "copied conflict_zone total" true
    (Summary.total snap.Counters.conflict_zone = 30.0);
  check_int "copied fm_nodes_per_txn" 1
    (Summary.count snap.Counters.fm_nodes_per_txn);
  check "copied intention_bytes" true
    (Summary.total snap.Counters.intention_bytes = 512.0);
  check_int "copied scalar fields" 5 snap.Counters.committed;
  check_int "live kept moving" 4 (Summary.count c.Counters.conflict_zone)

(* ------------------------------------------------------------------ *)
(* Flight recorder lifecycle                                            *)
(* ------------------------------------------------------------------ *)

(* All timestamps are exact binary fractions: the wait/service chain
   arithmetic and the JSON sink line are then deterministic down to the
   last digit. *)
let test_flight_lifecycle () =
  with_temp_file "flight" @@ fun path ->
  let m = Metrics.create () in
  let oc = open_out path in
  let f = Flight.create ~label:"test" ~metrics:m ~sink:oc () in
  check "enabled" true (Flight.enabled f);
  check_string "label" "test" (Flight.label f);
  Flight.touch f ~pos:7 ~now:1.0;
  Flight.touch f ~pos:7 ~now:9.0 (* idempotent: t_submit stays 1.0 *);
  Flight.note_identity f ~pos:7 ~server:2 ~txn_seq:5;
  Flight.note_identity f ~pos:99 ~server:0 ~txn_seq:0 (* unknown: no-op *);
  check_int "one record in flight" 1 (Flight.in_flight f);
  (* ds: 0.25 queued behind submit, then 0.25 of work *)
  Flight.edge f ~pos:7 ~stage:Flight.Ds ~t0:1.25 ~t1:1.5;
  (* pm back-to-back with ds: no wait *)
  Flight.edge f ~pos:7 ~stage:Flight.Pm ~t0:1.5 ~t1:1.75;
  (* gm overlaps the pm edge (group stamps can): the clamp keeps the
     chain monotone — no negative wait, the cursor never moves back *)
  Flight.edge f ~pos:7 ~stage:Flight.Gm ~t0:1.625 ~t1:1.6875;
  (* fm after a 0.25 queue wait *)
  Flight.edge f ~pos:7 ~stage:Flight.Fm ~t0:2.0 ~t1:2.5;
  Flight.sim_edge f ~pos:7 ~at:`Submit 0.5;
  Flight.sim_edge f ~pos:7 ~at:`Deliver 1.125;
  Flight.sim_edge f ~pos:7 ~at:`Deliver 4.0 (* first-wins: 1.125 sticks *);
  Flight.sim_edge f ~pos:99 ~at:`Append 1.0 (* unknown pos: no-op *);
  (* decision stamped before the last edge's end: t_done clamps to the
     chain cursor so e2e can never undercut the attributed time *)
  Flight.complete f ~pos:7 ~now:2.25 ~seq:3 ~committed:true ~reason:""
    ~decided_at:"final_meld" ~conflict_zone:4;
  check_int "completed" 1 (Flight.completed f);
  check_int "record removed on completion" 0 (Flight.in_flight f);
  Flight.complete f ~pos:7 ~now:9.0 ~seq:3 ~committed:true ~reason:""
    ~decided_at:"final_meld" ~conflict_zone:4;
  check_int "re-completion is a no-op" 1 (Flight.completed f);
  Flight.export_percentiles f;
  close_out oc;
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  check_string "sink line"
    ("{\"pos\":7,\"seq\":3,\"server\":2,\"txn_seq\":5,\"label\":\"test\","
    ^ "\"committed\":true,\"abort_reason\":null,\"decided_at\":\"final_meld\","
    ^ "\"conflict_zone\":4,\"t_submit\":1,\"t_done\":2.5,\"e2e\":1.5,"
    ^ "\"wait\":{\"ds\":0.25,\"pm\":0,\"gm\":0,\"fm\":0.25},"
    ^ "\"service\":{\"ds\":0.25,\"pm\":0.25,\"gm\":0.0625,\"fm\":0.5},"
    ^ "\"sim\":{\"submit\":0.5,\"append\":-1,\"deliver\":1.125}}")
    line;
  (* the sink line parses back into exactly one analyzer txn whose chain
     sums decompose the end-to-end latency *)
  (match Analyze.txn_of_json (Json.of_string line) with
  | None -> Alcotest.fail "sink line is not a flight record"
  | Some t ->
      check "parsed e2e" true (t.Analyze.e2e = 1.5);
      let sum = ref 0.0 in
      Array.iter (fun w -> sum := !sum +. w) t.Analyze.wait;
      Array.iter (fun s -> sum := !sum +. s) t.Analyze.service;
      (* the chain invariant gives sum = (t_last - t_submit) for the
         sequential edges (1.5) plus the gm service that overlapped the
         pm edge (0.0625): attribution, not wall-clock accounting *)
      check "chain sums = span + overlapped group service" true
        (!sum = 1.5625));
  (* the metrics instruments saw exactly this record *)
  let snap = Metrics.snapshot m in
  (match List.assoc "flight_records_total" snap with
  | Metrics.Counter_v n -> check_int "records counter" 1 n
  | _ -> Alcotest.fail "flight_records_total missing");
  (match List.assoc "flight_e2e_p50_us" snap with
  | Metrics.Gauge_v v -> check "e2e p50 gauge (us)" true (v = 1.5e6)
  | _ -> Alcotest.fail "flight_e2e_p50_us missing");
  (* the disabled recorder is a black hole *)
  let d = Flight.disabled in
  check "disabled recorder off" false (Flight.enabled d);
  Flight.touch d ~pos:1 ~now:0.0;
  Flight.edge d ~pos:1 ~stage:Flight.Fm ~t0:0.0 ~t1:1.0;
  Flight.complete d ~pos:1 ~now:1.0 ~seq:0 ~committed:true ~reason:""
    ~decided_at:"final_meld" ~conflict_zone:0;
  check_int "disabled opens nothing" 0 (Flight.in_flight d);
  check_int "disabled completes nothing" 0 (Flight.completed d)

(* ------------------------------------------------------------------ *)
(* Analyzer                                                             *)
(* ------------------------------------------------------------------ *)

let jfield name = function
  | Json.Obj l -> (
      match List.assoc_opt name l with
      | Some v -> v
      | None -> Alcotest.fail ("report field missing: " ^ name))
  | _ -> Alcotest.fail ("not an object at: " ^ name)

let jint name j =
  match jfield name j with
  | Json.Int i -> i
  | _ -> Alcotest.fail ("not an int: " ^ name)

let jfloat name j =
  match jfield name j with
  | Json.Float f -> f
  | Json.Int i -> float_of_int i
  | _ -> Alcotest.fail ("not a number: " ^ name)

let jstring name j =
  match jfield name j with
  | Json.String s -> s
  | _ -> Alcotest.fail ("not a string: " ^ name)

(* A hand-written dump with exact binary-fraction times: three backends
   (first-seen order), one abort, one corrupted-looking record with a
   negative wait, plus blank/malformed/non-record lines the loader must
   skip.  Every aggregate the report derives from it is exact. *)
let analyze_fixture =
  [
    "";
    "{ not json";
    "{\"hello\":1}";
    "{\"pos\":1,\"seq\":10,\"label\":\"A\",\"committed\":true,\
     \"decided_at\":\"final_meld\",\"t_submit\":0,\"t_done\":0.5,\"e2e\":0.5,\
     \"wait\":{\"ds\":0.25,\"pm\":0,\"gm\":0,\"fm\":0},\
     \"service\":{\"ds\":0,\"pm\":0.25,\"gm\":0,\"fm\":0}}";
    "{\"pos\":2,\"seq\":11,\"label\":\"A\",\"committed\":true,\
     \"decided_at\":\"final_meld\",\"t_submit\":1,\"t_done\":1.5,\"e2e\":0.5,\
     \"wait\":{\"ds\":0,\"pm\":0,\"gm\":0,\"fm\":0.25},\
     \"service\":{\"ds\":0,\"pm\":0,\"gm\":0,\"fm\":0.25}}";
    "{\"pos\":3,\"seq\":-1,\"label\":\"A\",\"committed\":false,\
     \"abort_reason\":\"write_conflict\",\"decided_at\":\"premeld\",\
     \"t_submit\":2,\"t_done\":2.5,\"e2e\":0.5,\
     \"wait\":{\"ds\":0,\"pm\":0,\"gm\":0.25,\"fm\":0},\
     \"service\":{\"ds\":0,\"pm\":0.25,\"gm\":0,\"fm\":0}}";
    "{\"pos\":9,\"seq\":0,\"label\":\"B\",\"committed\":true,\
     \"decided_at\":\"final_meld\",\"t_submit\":0,\"t_done\":0.5,\"e2e\":0.5,\
     \"wait\":{\"ds\":0,\"pm\":0,\"gm\":0,\"fm\":0},\
     \"service\":{\"ds\":0,\"pm\":0,\"gm\":0,\"fm\":0.5}}";
    "{\"pos\":12,\"seq\":1,\"label\":\"C\",\"committed\":true,\
     \"decided_at\":\"final_meld\",\"t_submit\":0,\"t_done\":0.5,\"e2e\":0.5,\
     \"wait\":{\"ds\":-0.25,\"pm\":0,\"gm\":0,\"fm\":0},\
     \"service\":{\"ds\":0.75,\"pm\":0,\"gm\":0,\"fm\":0}}";
  ]

let test_analyze_report () =
  with_temp_file "flight_fixture" @@ fun path ->
  let oc = open_out path in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    analyze_fixture;
  close_out oc;
  let txns = Analyze.load_file path in
  check_int "blank/malformed/non-record lines skipped" 5 (List.length txns);
  let report = Analyze.report ~top_k:2 txns in
  check_int "total" 5 (jint "total" report);
  let backends =
    match jfield "backends" report with
    | Json.List l -> l
    | _ -> Alcotest.fail "backends not a list"
  in
  check_int "one section per label" 3 (List.length backends);
  let a = List.nth backends 0
  and b = List.nth backends 1
  and c = List.nth backends 2 in
  check_string "first-seen label order" "A" (jstring "label" a);
  check_int "A txns" 3 (jint "txns" a);
  check_int "A commits" 2 (jint "commits" a);
  check_int "A aborts" 1 (jint "aborts" a);
  check_int "A negative waits" 0 (jint "negative_waits" a);
  check "A e2e p50 is 500000us" true
    (jfloat "p50" (jfield "e2e_us" a) = 500000.0);
  check "A stage-sum p50 covers e2e p50 exactly" true
    (jfloat "coverage_p50" a = 1.0);
  (* critical path = largest total service: pm (0.5s) over fm (0.25s) *)
  check_string "A critical path" "pm" (jstring "stage" (jfield "critical_path" a));
  let shares =
    match jfield "stages" a with
    | Json.List l -> List.map (jfloat "share") l
    | _ -> Alcotest.fail "stages not a list"
  in
  check_int "four stages in the waterfall" 4 (List.length shares);
  check "A stage shares sum to 1" true
    (Float.abs (List.fold_left ( +. ) 0.0 shares -. 1.0) < 1e-9);
  (match jfield "abort_reasons" a with
  | Json.List [ row ] ->
      check_string "abort reason" "write_conflict" (jstring "reason" row);
      check_int "abort total" 1 (jint "total" row);
      check_int "abort decided at premeld" 1
        (jint "premeld" (jfield "decided_at" row))
  | _ -> Alcotest.fail "A abort matrix should have exactly one row");
  (match jfield "slowest" a with
  | Json.List l -> check_int "top_k bounds the drill-down" 2 (List.length l)
  | _ -> Alcotest.fail "slowest not a list");
  check_string "B critical path" "fm" (jstring "stage" (jfield "critical_path" b));
  check_int "B txns" 1 (jint "txns" b);
  check_int "C flags the negative wait" 1 (jint "negative_waits" c)

(* ------------------------------------------------------------------ *)
(* Inertness: tracing on vs off is bit-identical                        *)
(* ------------------------------------------------------------------ *)

let genesis_n = 2000

(* Same stream recorder as test_runtime: snapshots lag behind the LCS so
   the stream mixes premeld-bound and premeld-skipped intentions, with
   real conflicts. *)
let make_stream ~config ~txns ~seed =
  let genesis = Helpers.genesis genesis_n in
  let rng = Rng.create (Int64.of_int seed) in
  let gen = Pipeline.create ~config ~genesis () in
  let history = ref [ (-1, genesis) ] in
  let hist_len = ref 1 in
  let intentions = ref [] in
  let next_pos = ref 0 in
  for txn_seq = 0 to txns - 1 do
    let lag = min (Rng.int rng 80) (!hist_len - 1) in
    let snapshot_pos, snapshot = List.nth !history lag in
    let e =
      Executor.begin_txn ~snapshot_pos ~snapshot ~server:0 ~txn_seq
        ~isolation:I.Serializable ()
    in
    for _ = 1 to Rng.int rng 3 do
      ignore (Executor.read e (Rng.int rng genesis_n))
    done;
    for _ = 1 to 1 + Rng.int rng 2 do
      Executor.write e (Rng.int rng genesis_n) (Printf.sprintf "w%d" txn_seq)
    done;
    match Executor.finish e with
    | None -> ()
    | Some draft ->
        next_pos := !next_pos + 1 + Rng.int rng 2;
        let intention = I.assign ~pos:!next_pos draft in
        intentions := intention :: !intentions;
        ignore (Pipeline.submit gen intention);
        let _, pos, tree = Pipeline.lcs gen in
        history := (pos, tree) :: !history;
        incr hist_len
  done;
  ignore (Pipeline.flush gen);
  (genesis, List.rev !intentions)

let replay ?trace ?metrics ?flight ~config ~runtime ~slab genesis intentions =
  let p =
    Pipeline.create ~config ~runtime ?trace ?flight ?metrics ~genesis ()
  in
  let rec take k acc = function
    | x :: tl when k > 0 -> take (k - 1) (x :: acc) tl
    | rest -> (List.rev acc, rest)
  in
  let rec go acc = function
    | [] -> acc
    | l ->
        let batch, rest = take slab [] l in
        go (List.rev_append (Pipeline.submit_batch p batch) acc) rest
  in
  let decisions = List.rev (go [] intentions) @ Pipeline.flush p in
  let _, _, final = Pipeline.lcs p in
  let pm_counts =
    Array.map
      (fun (s : Counters.stage) ->
        (s.Counters.intentions, s.Counters.nodes_visited))
      (Pipeline.counters p).Counters.premeld_shards
  in
  Pipeline.shutdown p;
  (decisions, final, pm_counts)

let same_decision (a : Pipeline.decision) (b : Pipeline.decision) =
  a.Pipeline.seq = b.Pipeline.seq
  && a.Pipeline.pos = b.Pipeline.pos
  && a.Pipeline.committed = b.Pipeline.committed
  && a.Pipeline.reason = b.Pipeline.reason
  && a.Pipeline.decided_at = b.Pipeline.decided_at

let test_tracing_is_inert () =
  let config =
    {
      Pipeline.premeld = Some { Premeld.threads = 5; distance = 10 };
      group_size = 2;
    }
  in
  let genesis, intentions = make_stream ~config ~txns:300 ~seed:2024 in
  check "stream not trivial" true (List.length intentions > 150);
  let bd, bfinal, bcounts =
    replay ~config ~runtime:Runtime.sequential ~slab:max_int genesis intentions
  in
  List.iter
    (fun (name, runtime, slab) ->
      let trace = Trace.create ~shards:5 () in
      let metrics = Metrics.create () in
      let d, final, counts =
        replay ~trace ~metrics ~config ~runtime ~slab genesis intentions
      in
      check (name ^ ": spans were recorded") true (Trace.recorded trace > 0);
      check (name ^ ": decision count") true (List.length d = List.length bd);
      check (name ^ ": decisions identical") true
        (List.for_all2 same_decision d bd);
      check (name ^ ": final state physically identical") true
        (Tree.physically_equal final bfinal);
      check (name ^ ": per-thread premeld work identical") true
        (counts = bcounts);
      (* the instruments agree with the pipeline's own counters *)
      let commits =
        List.length (List.filter (fun d -> d.Pipeline.committed) bd)
      in
      match List.assoc "pipeline_commits" (Metrics.snapshot metrics) with
      | Metrics.Counter_v n -> check_int (name ^ ": metric commits") commits n
      | _ -> Alcotest.fail "pipeline_commits missing")
    [
      ("traced seq", Runtime.sequential, max_int);
      ("traced par:4", Runtime.parallel ~domains:4, 64);
    ]

(* The flight recorder rides the same contract: recording every
   intention's lifecycle changes nothing observable, under all three
   runtime backends.  The enabled runs double as a lifecycle audit at
   scale: every decision closes exactly one record, none leak, and the
   per-reason abort counters agree with the decision stream. *)
let test_flight_is_inert () =
  let config =
    {
      Pipeline.premeld = Some { Premeld.threads = 5; distance = 10 };
      group_size = 2;
    }
  in
  let genesis, intentions = make_stream ~config ~txns:300 ~seed:4096 in
  check "stream not trivial" true (List.length intentions > 150);
  let bd, bfinal, bcounts =
    replay ~config ~runtime:Runtime.sequential ~slab:max_int genesis intentions
  in
  let aborts =
    List.length (List.filter (fun d -> not d.Pipeline.committed) bd)
  in
  check "stream has aborts" true (aborts > 0);
  List.iter
    (fun (name, runtime, slab) ->
      let metrics = Metrics.create () in
      let flight = Flight.create ~label:name ~metrics () in
      let d, final, counts =
        replay ~flight ~metrics ~config ~runtime ~slab genesis intentions
      in
      check (name ^ ": every decision closed one record") true
        (Flight.completed flight = List.length d);
      check_int (name ^ ": no records leak") 0 (Flight.in_flight flight);
      check (name ^ ": decision count") true (List.length d = List.length bd);
      check (name ^ ": decisions identical") true
        (List.for_all2 same_decision d bd);
      check (name ^ ": final state physically identical") true
        (Tree.physically_equal final bfinal);
      check (name ^ ": per-thread premeld work identical") true
        (counts = bcounts);
      let counter n =
        match List.assoc_opt n (Metrics.snapshot metrics) with
        | Some (Metrics.Counter_v v) -> v
        | _ -> 0
      in
      check_int (name ^ ": per-reason abort counters sum to aborts") aborts
        (counter "pipeline_aborts_write_conflict"
        + counter "pipeline_aborts_read_conflict"
        + counter "pipeline_aborts_phantom_conflict");
      check_int
        (name ^ ": flight_records_total agrees")
        (List.length d)
        (counter "flight_records_total"))
    [
      ("flight seq", Runtime.sequential, max_int);
      ("flight par:2", Runtime.parallel ~domains:2, 64);
      ("flight pipe:2", Runtime.pipelined ~domains:2, 64);
    ]

let test_trace_shard_mismatch () =
  let config =
    {
      Pipeline.premeld = Some { Premeld.threads = 5; distance = 10 };
      group_size = 1;
    }
  in
  match
    Pipeline.create ~config
      ~trace:(Trace.create ~shards:2 ())
      ~genesis:(Helpers.genesis 16) ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "trace with too few shards accepted"

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "emitter: scalars and escaping" `Quick test_json;
          Alcotest.test_case "parser: round-trip and rejection" `Quick
            test_json_parse;
        ] );
      ( "trace rings",
        [
          Alcotest.test_case "wrap and overflow accounting" `Quick
            test_ring_wrap;
          Alcotest.test_case "capacity rounding, disabled recorder" `Quick
            test_capacity_rounding;
          Alcotest.test_case "overflow marks the chrome export" `Quick
            test_trace_overflow_marker;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram bucket boundaries" `Quick
            test_histogram_buckets;
          Alcotest.test_case "registry, snapshot, diff" `Quick test_registry;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "chrome trace golden" `Quick test_chrome_golden;
          Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
          Alcotest.test_case "metrics json golden" `Quick
            test_metrics_json_golden;
        ] );
      ( "counters copy",
        [
          Alcotest.test_case "Summary.copy is independent" `Quick
            test_summary_copy;
          Alcotest.test_case "Counters.copy keeps streaming summaries" `Quick
            test_counters_copy_preserves_summaries;
        ] );
      ( "flight",
        [
          Alcotest.test_case "lifecycle, chain accounting, sink line" `Quick
            test_flight_lifecycle;
          Alcotest.test_case "analyzer report over a mixed dump" `Quick
            test_analyze_report;
        ] );
      ( "inertness",
        [
          Alcotest.test_case "tracing on = tracing off (seq and par:4)"
            `Quick test_tracing_is_inert;
          Alcotest.test_case "flight on = flight off (seq, par:2, pipe:2)"
            `Quick test_flight_is_inert;
          Alcotest.test_case "trace shards must cover premeld threads" `Quick
            test_trace_shard_mismatch;
        ] );
    ]
