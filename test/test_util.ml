module Rng = Hyder_util.Rng
module Dist = Hyder_util.Dist
module Stats = Hyder_util.Stats
module Wire = Hyder_util.Wire
module Crc32 = Hyder_util.Crc32

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- rng ---------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    check "same stream" true (Rng.next_int64 a = Rng.next_int64 b)
  done;
  let c = Rng.create 43L in
  check "different seed differs" false (Rng.next_int64 a = Rng.next_int64 c)

let test_rng_bounds () =
  let r = Rng.create 7L in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    check "in range" true (v >= 0 && v < 17);
    let f = Rng.unit_float r in
    check "unit float" true (f >= 0.0 && f < 1.0);
    let x = Rng.int_in r (-5) 5 in
    check "int_in" true (x >= -5 && x <= 5)
  done

let test_rng_uniformity () =
  let r = Rng.create 11L in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Rng.int r 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      let expected = n / 10 in
      check "within 10% of uniform" true (abs (c - expected) < expected / 10))
    counts

let test_rng_split_independent () =
  let r = Rng.create 5L in
  let s = Rng.split r in
  check "split streams differ" false (Rng.next_int64 r = Rng.next_int64 s)

let test_exponential_mean () =
  let r = Rng.create 3L in
  let sum = ref 0.0 in
  let n = 50_000 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:2.0
  done;
  let mean = !sum /. float_of_int n in
  check (Printf.sprintf "mean ~2.0 (got %.3f)" mean) true
    (mean > 1.9 && mean < 2.1)

let test_shuffle_permutation () =
  let r = Rng.create 9L in
  let a = Array.init 100 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check "still a permutation" true (sorted = Array.init 100 (fun i -> i));
  check "actually shuffled" false (a = Array.init 100 (fun i -> i))

(* --- distributions ------------------------------------------------------ *)

let sample_many dist n =
  let r = Rng.create 123L in
  let counts = Hashtbl.create 64 in
  for _ = 1 to n do
    let k = Dist.sample dist r in
    Hashtbl.replace counts k
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  counts

let test_uniform_covers () =
  let counts = sample_many (Dist.uniform ~n:100) 100_000 in
  check "all keys hit" true (Hashtbl.length counts = 100);
  Hashtbl.iter (fun k _ -> check "in range" true (k >= 0 && k < 100)) counts

let test_zipfian_skew () =
  let d = Dist.zipfian ~n:10_000 () in
  let counts = sample_many d 100_000 in
  let hits k = Option.value ~default:0 (Hashtbl.find_opt counts k) in
  check "key 0 hottest" true (hits 0 > hits 100);
  check "head heavy" true (hits 0 + hits 1 + hits 2 > 100_000 / 10);
  let r = Rng.create 55L in
  for _ = 1 to 10_000 do
    let k = Dist.sample d r in
    check "range" true (k >= 0 && k < 10_000)
  done

let test_scrambled_zipfian_scatters () =
  let d = Dist.scrambled_zipfian ~n:10_000 () in
  let counts = sample_many d 100_000 in
  let hot =
    Hashtbl.fold (fun k c acc -> if c > 1000 then k :: acc else acc) counts []
  in
  check "has hot keys" true (List.length hot > 0);
  check "hot keys scattered" true (List.exists (fun k -> k > 1000) hot)

let test_hotspot () =
  (* x=0.1: 10% of keys get 90% of accesses. *)
  let d = Dist.hotspot ~x:0.1 ~n:1000 in
  let counts = sample_many d 100_000 in
  let hot_hits =
    Hashtbl.fold (fun k c acc -> if k < 100 then acc + c else acc) counts 0
  in
  check
    (Printf.sprintf "hot set gets ~90%% (got %d%%)" (hot_hits / 1000))
    true
    (hot_hits > 85_000 && hot_hits < 95_000)

let test_hotspot_degenerate_uniform () =
  let d = Dist.hotspot ~x:1.0 ~n:100 in
  let counts = sample_many d 50_000 in
  check "covers most keys" true (Hashtbl.length counts > 95)

let test_latest_follows_front () =
  let d = Dist.latest ~n:100 in
  Dist.set_max d 1000;
  let counts = sample_many d 50_000 in
  let hits k = Option.value ~default:0 (Hashtbl.find_opt counts k) in
  check "front is hottest" true (hits 999 > hits 100)

(* --- stats -------------------------------------------------------------- *)

let test_summary () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_int "count" 8 (Stats.Summary.count s);
  check "mean" true (abs_float (Stats.Summary.mean s -. 5.0) < 1e-9);
  check "stddev" true (abs_float (Stats.Summary.stddev s -. 2.138) < 0.01);
  check "min" true (Stats.Summary.min s = 2.0);
  check "max" true (Stats.Summary.max s = 9.0);
  check "total" true (Stats.Summary.total s = 40.0)

let test_sample_percentiles () =
  let s = Stats.Sample.create () in
  for i = 1 to 1000 do
    Stats.Sample.add s (float_of_int i)
  done;
  check "p50" true (Stats.Sample.percentile s 50.0 = 500.0);
  check "p95" true (Stats.Sample.percentile s 95.0 = 950.0);
  check "p99" true (Stats.Sample.percentile s 99.0 = 990.0);
  check "p100" true (Stats.Sample.percentile s 100.0 = 1000.0);
  check "mean" true (abs_float (Stats.Sample.mean s -. 500.5) < 1e-6)

let test_sample_interleaved_sort () =
  let s = Stats.Sample.create () in
  Stats.Sample.add s 5.0;
  Stats.Sample.add s 1.0;
  ignore (Stats.Sample.percentile s 50.0);
  Stats.Sample.add s 0.5;
  check "re-sorts after add" true (Stats.Sample.percentile s 0.0 = 0.5)

let test_histogram () =
  let h = Stats.Histogram.create ~bucket_width:10.0 ~buckets:5 in
  List.iter (Stats.Histogram.add h) [ 0.0; 5.0; 15.0; 100.0 ];
  let c = Stats.Histogram.bucket_counts h in
  check_int "bucket 0" 2 c.(0);
  check_int "bucket 1" 1 c.(1);
  check_int "overflow clamps" 1 c.(4);
  check_int "count" 4 (Stats.Histogram.count h)

(* --- wire --------------------------------------------------------------- *)

let test_wire_roundtrip () =
  let w = Wire.Writer.create () in
  Wire.Writer.u8 w 200;
  Wire.Writer.u32 w 0xDEADBEEFl;
  Wire.Writer.varint w 0;
  Wire.Writer.varint w 127;
  Wire.Writer.varint w 128;
  Wire.Writer.varint w 300_000_000;
  Wire.Writer.varint64 w Int64.max_int;
  Wire.Writer.varint64 w (-1L);
  Wire.Writer.bytes w "hello";
  Wire.Writer.bytes w "";
  let r = Wire.Reader.of_string (Wire.Writer.contents w) in
  check_int "u8" 200 (Wire.Reader.u8 r);
  check "u32" true (Wire.Reader.u32 r = 0xDEADBEEFl);
  check_int "v0" 0 (Wire.Reader.varint r);
  check_int "v127" 127 (Wire.Reader.varint r);
  check_int "v128" 128 (Wire.Reader.varint r);
  check_int "vbig" 300_000_000 (Wire.Reader.varint r);
  check "vmax" true (Wire.Reader.varint64 r = Int64.max_int);
  check "vneg" true (Wire.Reader.varint64 r = -1L);
  Alcotest.(check string) "bytes" "hello" (Wire.Reader.bytes r);
  Alcotest.(check string) "empty" "" (Wire.Reader.bytes r);
  check_int "drained" 0 (Wire.Reader.remaining r)

let test_wire_truncated () =
  let r = Wire.Reader.of_string "\x80" in
  Alcotest.check_raises "truncated varint" Wire.Truncated (fun () ->
      ignore (Wire.Reader.varint r))

let test_wire_varint_sizes () =
  let size v =
    let w = Wire.Writer.create () in
    Wire.Writer.varint w v;
    Wire.Writer.length w
  in
  check_int "1 byte" 1 (size 127);
  check_int "2 bytes" 2 (size 128);
  check_int "2 bytes max" 2 (size 16383);
  check_int "3 bytes" 3 (size 16384)

let prop_wire_varint_roundtrip =
  QCheck2.Test.make ~name:"varint64 roundtrips" ~count:1000
    QCheck2.Gen.(map Int64.of_int int)
    (fun v ->
      let w = Wire.Writer.create () in
      Wire.Writer.varint64 w v;
      let r = Wire.Reader.of_string (Wire.Writer.contents w) in
      Wire.Reader.varint64 r = v)

(* --- crc32 -------------------------------------------------------------- *)

let test_crc32_known_value () =
  (* IEEE CRC-32 of "123456789" is 0xCBF43926. *)
  check "check value" true
    (Int32.equal (Crc32.digest_string "123456789") 0xCBF43926l)

let test_crc32_detects_corruption () =
  let a = Crc32.digest_string "hello world" in
  let b = Crc32.digest_string "hello worle" in
  check "differs" false (Int32.equal a b)

(* ---- Spsc_queue ------------------------------------------------------ *)

module Spsc = Hyder_util.Spsc_queue

let test_spsc_fifo_and_capacity () =
  let q = Spsc.create ~capacity:5 ~dummy:(-1) () in
  check_int "capacity rounds up to a power of two" 8 (Spsc.capacity q);
  check "empty pop" true (Spsc.try_pop q = None);
  for i = 0 to 7 do
    check "push accepted" true (Spsc.try_push q i)
  done;
  check "push on full rejected" false (Spsc.try_push q 99);
  check_int "length" 8 (Spsc.length q);
  for i = 0 to 7 do
    check "fifo order" true (Spsc.try_pop q = Some i)
  done;
  check "drained" true (Spsc.try_pop q = None);
  (* wrap around the ring several times *)
  for round = 0 to 30 do
    check "push" true (Spsc.try_push q round);
    check "pop" true (Spsc.try_pop q = Some round)
  done

let test_spsc_cross_domain () =
  let n = 20_000 in
  let q = Spsc.create ~capacity:64 ~dummy:(-1) () in
  let producer =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          while not (Spsc.try_push q i) do
            Domain.cpu_relax ()
          done
        done)
  in
  let sum = ref 0 and seen = ref 0 and ordered = ref true and last = ref (-1) in
  while !seen < n do
    match Spsc.try_pop q with
    | Some v ->
        if v <= !last then ordered := false;
        last := v;
        sum := !sum + v;
        incr seen
    | None -> Domain.cpu_relax ()
  done;
  Domain.join producer;
  check "all elements in order" true !ordered;
  check "no element lost or duplicated" true (!sum = n * (n - 1) / 2);
  check "queue empty at the end" true (Spsc.try_pop q = None)

let test_spsc_pop_blocks_and_cancels () =
  let q = Spsc.create ~capacity:4 ~dummy:"" () in
  (* a parked consumer is woken by a push *)
  let consumer = Domain.spawn (fun () -> Spsc.pop q ~cancel:(fun () -> false)) in
  Unix.sleepf 0.02;
  check "push wakes parked consumer" true (Spsc.try_push q "hello");
  check "blocking pop returns the element" true
    (Domain.join consumer = Some "hello");
  (* a parked consumer is woken by cancellation *)
  let stop = Atomic.make false in
  let consumer =
    Domain.spawn (fun () -> Spsc.pop q ~cancel:(fun () -> Atomic.get stop))
  in
  Unix.sleepf 0.02;
  Atomic.set stop true;
  Spsc.wake q;
  check "cancelled pop returns None" true (Domain.join consumer = None)

(* A third domain — neither producer nor consumer — samples [length] while
   both endpoints run flat out.  The head/tail reads tear under this race;
   the contract is that an observer never sees a negative depth (the
   metrics queue-depth sampler feeds lengths to a histogram, which would
   reject them).  Over-counting past capacity is an allowed tear. *)
let test_spsc_length_never_negative () =
  let n = 50_000 in
  let q = Spsc.create ~capacity:16 ~dummy:(-1) () in
  let stop = Atomic.make false in
  let bad = Atomic.make 0 and samples = Atomic.make 0 in
  let sampler =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          let l = Spsc.length q in
          Atomic.incr samples;
          if l < 0 then Atomic.incr bad
        done)
  in
  let producer =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          while not (Spsc.try_push q i) do
            Domain.cpu_relax ()
          done
        done)
  in
  let seen = ref 0 in
  while !seen < n do
    match Spsc.try_pop q with
    | Some _ -> incr seen
    | None -> Domain.cpu_relax ()
  done;
  Domain.join producer;
  Atomic.set stop true;
  Domain.join sampler;
  check "sampler actually raced the endpoints" true (Atomic.get samples > 0);
  check_int "no negative length observed" 0 (Atomic.get bad)

(* The park/unpark handshake's narrowest window: the consumer has just
   decided the ring is empty and is about to park while the producer fills
   it to exactly capacity — if the producer's sleeper check could pass
   before the consumer registered (or the consumer's emptiness re-check
   could miss the published tail), the consumer would sleep through the
   only wakeup it will ever get and the handoff would deadlock.  Drive
   many fill-to-capacity bursts against a parking consumer; a missed
   doorbell shows up as the watchdog timing out. *)
let test_spsc_doorbell_fill_to_capacity () =
  let rounds = 400 in
  let q = Spsc.create ~capacity:4 ~dummy:(-1) () in
  let cap = Spsc.capacity q in
  let total = rounds * cap in
  let cancel = Atomic.make false in
  let consumed = Atomic.make 0 in
  let consumer =
    Domain.spawn (fun () ->
        let ok = ref true in
        for _ = 1 to total do
          match Spsc.pop q ~cancel:(fun () -> Atomic.get cancel) with
          | Some _ -> Atomic.incr consumed
          | None -> ok := false
        done;
        !ok)
  in
  let producer =
    Domain.spawn (fun () ->
        for round = 0 to rounds - 1 do
          (* Wait until the previous burst is fully drained (the consumer
             is heading for the park path), then fill the ring to exactly
             capacity in one burst. *)
          while Atomic.get consumed < round * cap && not (Atomic.get cancel) do
            Domain.cpu_relax ()
          done;
          for i = 0 to cap - 1 do
            while
              (not (Spsc.try_push q ((round * cap) + i)))
              && not (Atomic.get cancel)
            do
              Domain.cpu_relax ()
            done
          done
        done)
  in
  let deadline = Unix.gettimeofday () +. 30.0 in
  while Atomic.get consumed < total && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.002
  done;
  let timed_out = Atomic.get consumed < total in
  Atomic.set cancel true;
  Spsc.wake q;
  Domain.join producer;
  let consumer_ok = Domain.join consumer in
  check "no missed doorbell (every burst drained)" false timed_out;
  check "every blocking pop returned an element" true consumer_ok

(* Batched transfer semantics, single-domain: partial accepts against a
   full ring, FIFO across mixed single/batched pushes and pops, and slot
   scrubbing (popped slots revert to the dummy so the ring retains no
   consumed values). *)
let test_spsc_batch_basics () =
  let q = Spsc.create ~capacity:8 ~dummy:(-1) () in
  let buf = Array.init 16 (fun i -> i) in
  check_int "batch push capped by capacity" 8 (Spsc.push_batch q buf ~len:12);
  check_int "push on full accepts nothing" 0 (Spsc.push_batch q buf ~len:3);
  let out = Array.make 16 (-2) in
  check_int "batch pop returns what is there" 8 (Spsc.pop_batch q out ~max:16);
  for i = 0 to 7 do
    check_int "fifo across the batch" i out.(i)
  done;
  check_int "pop on empty returns nothing" 0 (Spsc.pop_batch q out ~max:4);
  (* mixed: single pushes drain through batched pops and vice versa *)
  check "single push" true (Spsc.try_push q 100);
  check_int "batched tail behind a single push" 2
    (Spsc.push_batch q [| 101; 102 |] ~len:2);
  check_int "batch pop spans both push kinds" 3 (Spsc.pop_batch q out ~max:8);
  check "order preserved" true
    (out.(0) = 100 && out.(1) = 101 && out.(2) = 102);
  check_int "batched push" 2 (Spsc.push_batch q [| 7; 8 |] ~len:2);
  check "single pop sees batched elements in order" true
    (Spsc.try_pop q = Some 7 && Spsc.try_pop q = Some 8);
  check "zero len accepted" true (Spsc.push_batch q [||] ~len:0 = 0);
  (match Spsc.push_batch q [| 1 |] ~len:2 with
  | _ -> Alcotest.fail "len beyond the buffer accepted"
  | exception Invalid_argument _ -> ());
  match Spsc.pop_batch q out ~max:17 with
  | _ -> Alcotest.fail "max beyond the buffer accepted"
  | exception Invalid_argument _ -> ()

(* QCheck2: an arbitrary schedule of batched/single pushes against
   batched/single pops, with a third domain sampling [length], keeps
   FIFO order end to end and never shows the observer a negative
   depth.  This is the wire-level contract the pipelined driver's
   batched handoff rides on. *)
let prop_spsc_batch_interleaving =
  let gen =
    QCheck2.Gen.(
      pair (list_size (int_range 1 40) (int_range 0 8))
        (list_size (int_range 1 40) (int_range 0 8)))
  in
  QCheck2.Test.make ~name:"spsc batched interleaving keeps fifo" ~count:25 gen
    (fun (push_sizes, pop_sizes) ->
      let q = Spsc.create ~capacity:8 ~dummy:(-1) () in
      let total = List.fold_left ( + ) 0 push_sizes in
      let stop = Atomic.make false in
      let negative = Atomic.make false in
      let sampler =
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              if Spsc.length q < 0 then Atomic.set negative true
            done)
      in
      let producer =
        Domain.spawn (fun () ->
            let next = ref 0 in
            List.iter
              (fun sz ->
                if sz = 1 then (
                  while not (Spsc.try_push q !next) do
                    Domain.cpu_relax ()
                  done;
                  incr next)
                else
                  let buf = Array.init sz (fun i -> !next + i) in
                  let sent = ref 0 in
                  while !sent < sz do
                    let accepted =
                      Spsc.push_batch q
                        (Array.sub buf !sent (sz - !sent))
                        ~len:(sz - !sent)
                    in
                    if accepted = 0 then Domain.cpu_relax ()
                    else sent := !sent + accepted
                  done;
                  next := !next + sz)
              push_sizes)
      in
      (* consume on this domain with the generated pop schedule, cycling
         through it until every pushed element arrived *)
      let out = Array.make 16 (-2) in
      let expect = ref 0 in
      let ok = ref true in
      let schedule = if pop_sizes = [] then [ 4 ] else pop_sizes in
      let rec consume = function
        | [] -> consume schedule
        | sz :: rest when !expect < total ->
            (if sz <= 1 then (
               match Spsc.try_pop q with
               | Some v ->
                   if v <> !expect then ok := false;
                   incr expect
               | None -> Domain.cpu_relax ())
             else
               let n = Spsc.pop_batch q out ~max:sz in
               for i = 0 to n - 1 do
                 if out.(i) <> !expect + i then ok := false
               done;
               if n = 0 then Domain.cpu_relax () else expect := !expect + n);
            consume rest
        | _ -> ()
      in
      consume schedule;
      Domain.join producer;
      Atomic.set stop true;
      Domain.join sampler;
      !ok && !expect = total && Spsc.try_pop q = None
      && not (Atomic.get negative))

(* The doorbell race of [test_spsc_doorbell_fill_to_capacity], but each
   burst is a single [push_batch] publication: the whole capacity lands
   under one tail store and at most one doorbell.  If the batched
   publication's sleeper check could miss a consumer that is heading to
   park, that one doorbell is the only wakeup the consumer will ever
   get and the handoff deadlocks (watchdog timeout). *)
let test_spsc_batched_doorbell_fill_to_capacity () =
  let rounds = 400 in
  let q = Spsc.create ~capacity:4 ~dummy:(-1) () in
  let cap = Spsc.capacity q in
  let total = rounds * cap in
  let cancel = Atomic.make false in
  let consumed = Atomic.make 0 in
  let consumer =
    Domain.spawn (fun () ->
        let ok = ref true in
        for _ = 1 to total do
          match Spsc.pop q ~cancel:(fun () -> Atomic.get cancel) with
          | Some _ -> Atomic.incr consumed
          | None -> ok := false
        done;
        !ok)
  in
  let producer =
    Domain.spawn (fun () ->
        let buf = Array.make cap 0 in
        for round = 0 to rounds - 1 do
          while Atomic.get consumed < round * cap && not (Atomic.get cancel) do
            Domain.cpu_relax ()
          done;
          for i = 0 to cap - 1 do
            buf.(i) <- (round * cap) + i
          done;
          let sent = ref 0 in
          while !sent < cap && not (Atomic.get cancel) do
            let accepted =
              Spsc.push_batch q (Array.sub buf !sent (cap - !sent))
                ~len:(cap - !sent)
            in
            if accepted = 0 then Domain.cpu_relax ()
            else sent := !sent + accepted
          done
        done)
  in
  let deadline = Unix.gettimeofday () +. 30.0 in
  while Atomic.get consumed < total && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.002
  done;
  let timed_out = Atomic.get consumed < total in
  Atomic.set cancel true;
  Spsc.wake q;
  Domain.join producer;
  let consumer_ok = Domain.join consumer in
  check "no missed doorbell (every batched burst drained)" false timed_out;
  check "every blocking pop returned an element" true consumer_ok;
  check "doorbells were actually exercised" true (Spsc.wakeups q > 0)

(* ---- Buf_pool -------------------------------------------------------- *)

module Buf_pool = Hyder_util.Buf_pool

let test_buf_pool_reuse () =
  let p = Buf_pool.create () in
  let b1 = Buf_pool.acquire p 100 in
  check "rounded to a power of two" true (Bytes.length b1 = 128);
  check_int "first acquire misses" 1 (Buf_pool.misses p);
  Buf_pool.release p b1;
  check_int "parked" 1 (Buf_pool.pooled p);
  let b2 = Buf_pool.acquire p 65 in
  check "same bucket reuses the buffer" true (b1 == b2);
  check_int "hit served from freelist" 1 (Buf_pool.hits p);
  check_int "freelist drained" 0 (Buf_pool.pooled p)

let test_buf_pool_size_classes () =
  let p = Buf_pool.create () in
  let small = Buf_pool.acquire p 10 in
  check "16-byte floor" true (Bytes.length small = 16);
  let big = Buf_pool.acquire p 5000 in
  check "large rounds up" true (Bytes.length big = 8192);
  Buf_pool.release p small;
  Buf_pool.release p big;
  let big' = Buf_pool.acquire p 4100 in
  check "buckets are per size class" true (big == big');
  let small' = Buf_pool.acquire p 16 in
  check "small bucket intact" true (small == small');
  (* foreign (non-power-of-two) buffers are not retained *)
  Buf_pool.release p (Bytes.create 100);
  let fresh = Buf_pool.acquire p 100 in
  check "odd-sized release left to the GC" true (Bytes.length fresh = 128)

let test_buf_pool_lifetime_canaries () =
  (* The accounting that caught the cluster encoder leak: in_flight
     balances acquires against pool-eligible releases, and the release
     canaries turn the two classic lifetime bugs — double release and
     releasing a buffer the pool never issued — into immediate
     Invalid_argument instead of silent aliasing. *)
  let p = Buf_pool.create () in
  let b1 = Buf_pool.acquire p 64 in
  let b2 = Buf_pool.acquire p 64 in
  check_int "two in flight" 2 (Buf_pool.in_flight p);
  Buf_pool.release p b1;
  check_int "one released" 1 (Buf_pool.in_flight p);
  (* a caller-made odd-sized buffer is not pool-eligible: ignored by
     both the freelist and the balance *)
  Buf_pool.release p (Bytes.create 100);
  check_int "foreign release not counted" 1 (Buf_pool.in_flight p);
  (match Buf_pool.release p b1 with
  | () -> Alcotest.fail "double release accepted"
  | exception Invalid_argument _ -> ());
  check_int "double release left the balance alone" 1 (Buf_pool.in_flight p);
  Buf_pool.release p b2;
  check_int "drained run balances to zero" 0 (Buf_pool.in_flight p);
  (* releasing a pool-eligible buffer that was never acquired would make
     the balance negative — a leak in the other direction *)
  match Buf_pool.release p (Bytes.create 128) with
  | () -> Alcotest.fail "over-release accepted"
  | exception Invalid_argument _ -> ()

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_wire_varint_roundtrip; prop_spsc_batch_interleaving ]

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "shuffle" `Quick test_shuffle_permutation;
        ] );
      ( "dist",
        [
          Alcotest.test_case "uniform" `Quick test_uniform_covers;
          Alcotest.test_case "zipfian" `Quick test_zipfian_skew;
          Alcotest.test_case "scrambled zipfian" `Quick
            test_scrambled_zipfian_scatters;
          Alcotest.test_case "hotspot" `Quick test_hotspot;
          Alcotest.test_case "hotspot x=1" `Quick
            test_hotspot_degenerate_uniform;
          Alcotest.test_case "latest" `Quick test_latest_follows_front;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_summary;
          Alcotest.test_case "percentiles" `Quick test_sample_percentiles;
          Alcotest.test_case "interleaved sort" `Quick
            test_sample_interleaved_sort;
          Alcotest.test_case "histogram" `Quick test_histogram;
        ] );
      ( "wire",
        [
          Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "truncated" `Quick test_wire_truncated;
          Alcotest.test_case "varint sizes" `Quick test_wire_varint_sizes;
        ] );
      ( "crc32",
        [
          Alcotest.test_case "known value" `Quick test_crc32_known_value;
          Alcotest.test_case "corruption" `Quick test_crc32_detects_corruption;
        ] );
      ( "spsc queue",
        [
          Alcotest.test_case "fifo, capacity, wrap" `Quick
            test_spsc_fifo_and_capacity;
          Alcotest.test_case "cross-domain handoff" `Quick
            test_spsc_cross_domain;
          Alcotest.test_case "blocking pop and cancel" `Quick
            test_spsc_pop_blocks_and_cancels;
          Alcotest.test_case "length never negative under race" `Quick
            test_spsc_length_never_negative;
          Alcotest.test_case "doorbell: fill to capacity cannot be slept \
                              through" `Quick
            test_spsc_doorbell_fill_to_capacity;
          Alcotest.test_case "batched push/pop semantics" `Quick
            test_spsc_batch_basics;
          Alcotest.test_case "batched doorbell: one publication per burst \
                              cannot be slept through" `Quick
            test_spsc_batched_doorbell_fill_to_capacity;
        ] );
      ( "buf pool",
        [
          Alcotest.test_case "reuse" `Quick test_buf_pool_reuse;
          Alcotest.test_case "size classes" `Quick test_buf_pool_size_classes;
          Alcotest.test_case "lifetime canaries" `Quick
            test_buf_pool_lifetime_canaries;
        ] );
      ("properties", qcheck_cases);
    ]
