open Hyder_tree
module State_store = Hyder_core.State_store
module Intention_cache = Hyder_core.Intention_cache
module Executor = Hyder_core.Executor
module Oracle = Hyder_core.Oracle
module I = Hyder_codec.Intention

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- state store --------------------------------------------------------- *)

let mini_state n =
  Tree.of_sorted_array (Array.init n (fun k -> (k, Helpers.payload k)))

let test_state_store_basics () =
  let genesis = mini_state 3 in
  let s = State_store.create ~genesis () in
  let seq, pos, tree = State_store.latest s in
  check_int "genesis seq" (-1) seq;
  check_int "genesis pos" (-1) pos;
  check "genesis tree" true (tree == genesis);
  let s0 = mini_state 4 and s1 = mini_state 5 in
  State_store.record s ~seq:0 ~pos:2 s0;
  State_store.record s ~seq:1 ~pos:7 s1;
  let seq, pos, tree = State_store.latest s in
  check_int "latest seq" 1 seq;
  check_int "latest pos" 7 pos;
  check "latest tree" true (tree == s1);
  let is_phys what opt t =
    check what true (match opt with Some x -> x == t | None -> false)
  in
  is_phys "by_seq genesis" (State_store.by_seq s (-1)) genesis;
  is_phys "by_seq 0" (State_store.by_seq s 0) s0;
  check "by_seq missing" true
    (match State_store.by_seq s 5 with None -> true | Some _ -> false)

let test_state_store_by_pos () =
  let genesis = mini_state 3 in
  let s = State_store.create ~genesis () in
  State_store.record s ~seq:0 ~pos:2 (mini_state 4);
  State_store.record s ~seq:1 ~pos:7 (mini_state 5);
  State_store.record s ~seq:2 ~pos:8 (mini_state 6);
  (* position between entries resolves to the newest at-or-before *)
  let is_phys what opt t =
    check what true (match opt with Some x -> x == t | None -> false)
  in
  is_phys "pos -1 genesis" (State_store.by_pos s (-1)) genesis;
  is_phys "pos 1 -> genesis (nothing recorded yet)" (State_store.by_pos s 1)
    genesis;
  check_int "seq_of_pos 7" 1 (State_store.seq_of_pos s 7);
  check_int "seq_of_pos 7.5-ish" 1 (State_store.seq_of_pos s 7);
  check_int "seq_of_pos big" 2 (State_store.seq_of_pos s 100);
  check "by_pos exact" true
    (match State_store.by_pos s 8 with
    | Some t -> Tree.live_size t = 6
    | None -> false)

let test_state_store_ordering_enforced () =
  let s = State_store.create ~genesis:(mini_state 1) () in
  State_store.record s ~seq:0 ~pos:5 (mini_state 2);
  (try
     State_store.record s ~seq:2 ~pos:9 (mini_state 2);
     Alcotest.fail "expected seq gap rejection"
   with Invalid_argument _ -> ());
  try
    State_store.record s ~seq:1 ~pos:5 (mini_state 2);
    Alcotest.fail "expected pos regression rejection"
  with Invalid_argument _ -> ()

let test_state_store_prune () =
  let s = State_store.create ~genesis:(mini_state 1) () in
  for i = 0 to 99 do
    State_store.record s ~seq:i ~pos:(2 * (i + 1)) (mini_state (i + 2))
  done;
  check_int "retained" 100 (State_store.retained s);
  State_store.prune s ~keep:10;
  check_int "pruned" 10 (State_store.retained s);
  check "old state gone" true (State_store.by_seq s 10 = None);
  check "recent state kept" true (State_store.by_seq s 95 <> None);
  (* pruned history: positions before the window are unknown, not genesis *)
  check "by_pos before window" true (State_store.by_pos s 50 = None);
  check "genesis still addressable" true (State_store.by_pos s (-1) <> None)

(* Pruning must actually release the evicted states to the GC.  The ring
   buffer's vacated slots used to keep their old [Tree.t] pointers until
   the ring wrapped over them — for a grown ring that is effectively
   forever, and the whole point of pruning (bounding memory) was lost.
   Finalisers on the recorded roots observe collection directly. *)
let test_state_store_prune_releases_states () =
  let s = State_store.create ~genesis:(mini_state 1) () in
  let freed = ref 0 in
  let n = 64 in
  for i = 0 to n - 1 do
    let st = mini_state 4 in
    Gc.finalise (fun _ -> incr freed) st;
    State_store.record s ~seq:i ~pos:i st
  done;
  State_store.prune s ~keep:4;
  check_int "window retained" 4 (State_store.retained s);
  Gc.full_major ();
  Gc.full_major ();
  check_int "every pruned state was collectable" (n - 4) !freed;
  (* the kept window is untouched and still addressable *)
  check "window intact" true (State_store.by_seq s (n - 1) <> None);
  (* growth after a prune compacts into the fresh array; the old array
     (and any stale pointers in it) is dropped wholesale *)
  for i = n to n + 2000 do
    State_store.record s ~seq:i ~pos:i (mini_state 2)
  done;
  Gc.full_major ();
  check_int "no retained-window state was freed" (n - 4) !freed;
  check "entries survive growth" true (State_store.by_seq s n <> None)

let test_state_store_grows_past_initial_capacity () =
  let s = State_store.create ~genesis:(mini_state 1) () in
  for i = 0 to 9_999 do
    State_store.record s ~seq:i ~pos:(i + 1) (mini_state 2)
  done;
  check_int "all retained" 10_000 (State_store.retained s);
  check_int "binary search still right" 5_000 (State_store.seq_of_pos s 5_001)

let test_resolver_finds_snapshot_nodes () =
  let genesis = mini_state 10 in
  let s = State_store.create ~genesis () in
  let resolve = State_store.resolver s in
  (let n = resolve ~snapshot:(-1) ~key:5 ~vn:(Vn.genesis ~idx:0) in
   if Node.is_empty n then Alcotest.fail "expected node"
   else check_int "found key" 5 n.Node.key);
  if not (Node.is_empty (resolve ~snapshot:(-1) ~key:555 ~vn:(Vn.genesis ~idx:0)))
  then Alcotest.fail "expected empty"

(* --- intention cache ------------------------------------------------------ *)

let node_for k =
  match Tree.find (mini_state (k + 1)) k with
  | Some n -> n
  | None -> assert false

let test_cache_add_find () =
  let c = Intention_cache.create ~capacity:4 () in
  let nodes = [| node_for 0; node_for 1 |] in
  Intention_cache.add c ~pos:10 nodes;
  check "hit" true
    (match Intention_cache.find c ~pos:10 ~idx:1 with
    | Some n -> n == nodes.(1)
    | None -> false);
  check "miss idx" true
    (match Intention_cache.find c ~pos:10 ~idx:9 with
    | None -> true
    | Some _ -> false);
  check "miss pos" true
    (match Intention_cache.find c ~pos:11 ~idx:0 with
    | None -> true
    | Some _ -> false)

let test_cache_eviction_fifo () =
  let c = Intention_cache.create ~capacity:2 () in
  let keep = [| node_for 1 |] in
  Intention_cache.add c ~pos:1 keep;
  Intention_cache.add c ~pos:2 keep;
  Intention_cache.add c ~pos:3 keep;
  check_int "bounded" 2 (Intention_cache.cached c);
  check "oldest evicted" true
    (match Intention_cache.find c ~pos:1 ~idx:0 with
    | None -> true
    | Some _ -> false);
  check "newest kept" true
    (match Intention_cache.find c ~pos:3 ~idx:0 with
    | Some _ -> true
    | None -> false)

let test_cache_is_weak () =
  let c = Intention_cache.create () in
  let make () = [| node_for 2 |] in
  Intention_cache.add c ~pos:5 (make ());
  (* Nothing else references the node: a full GC may reclaim it.  The cache
     must degrade to a miss, never a dangling value. *)
  Gc.full_major ();
  Gc.full_major ();
  match Intention_cache.find c ~pos:5 ~idx:0 with
  | None -> ()
  | Some n when Node.is_empty n -> Alcotest.fail "never empty"
  | Some n -> check_int "if alive, it is the right node" 2 n.Node.key

(* --- executor isolation paths --------------------------------------------- *)

let test_executor_read_committed_sees_fresh () =
  let snap = mini_state 10 in
  let current = ref snap in
  let e =
    Executor.begin_txn
      ~current:(fun () -> !current)
      ~snapshot_pos:(-1) ~snapshot:snap ~server:0 ~txn_seq:0
      ~isolation:I.Read_committed ()
  in
  check "initial" true
    (Executor.read e 3 = Some (Helpers.payload 3));
  (* another transaction commits meanwhile *)
  let fresh = ref 0 in
  let upd =
    Tree.upsert snap ~owner:Node.state_owner
      ~fresh:(fun () -> incr fresh; Vn.genesis ~idx:(1000 + !fresh))
      3 (Payload.value "fresh")
  in
  current := upd;
  check "read-committed sees it" true
    (Executor.read e 3 = Some (Payload.value "fresh"));
  (* but own writes still win *)
  Executor.write e 3 "mine";
  check "own write wins" true (Executor.read e 3 = Some (Payload.value "mine"))

let test_executor_si_records_no_deps () =
  let snap = mini_state 10 in
  let e =
    Executor.begin_txn ~snapshot_pos:(-1) ~snapshot:snap ~server:0 ~txn_seq:0
      ~isolation:I.Snapshot_isolation ()
  in
  ignore (Executor.read e 1);
  ignore (Executor.read_range e ~lo:2 ~hi:5);
  Executor.write e 7 "w";
  let draft = Option.get (Executor.finish e) in
  let deps = ref 0 in
  Tree.iter draft.I.root (fun n ->
      if Node.owner n = I.draft_owner
         && (Node.depends_on_content n || Node.depends_on_structure n)
      then incr deps);
  check_int "no dependency metadata under SI" 0 !deps

let test_executor_finish_read_only () =
  let e =
    Executor.begin_txn ~snapshot_pos:(-1) ~snapshot:(mini_state 5) ~server:0
      ~txn_seq:0 ~isolation:I.Serializable ()
  in
  ignore (Executor.read e 1);
  check "read-only yields no draft" true (Executor.finish e = None);
  Alcotest.check_raises "use after finish"
    (Invalid_argument "Executor.read: finished") (fun () ->
      ignore (Executor.read e 1))

let test_executor_introspection () =
  let e =
    Executor.begin_txn ~snapshot_pos:(-1) ~snapshot:(mini_state 10) ~server:0
      ~txn_seq:0 ~isolation:I.Serializable ()
  in
  ignore (Executor.read e 1);
  ignore (Executor.read e 2);
  Executor.write e 3 "x";
  Executor.delete e 4;
  check "reads tracked" true (List.sort compare (Executor.reads e) = [ 1; 2 ]);
  check "writes tracked" true (List.sort compare (Executor.writes e) = [ 3; 4 ]);
  check_int "snapshot pos" (-1) (Executor.snapshot_pos e)

(* --- checkpoint ------------------------------------------------------------ *)

let test_checkpoint_compacts_tombstones () =
  let module Local = Hyder_core.Local in
  let h = Local.create ~genesis:(mini_state 100) () in
  ignore (Local.txn h (fun e -> Executor.delete e 10));
  ignore (Local.txn h (fun e -> Executor.delete e 20));
  ignore (Local.txn h (fun e -> Executor.write e 30 "fresh"));
  let _, _, state = Local.lcs h in
  let compacted, stats = Hyder_core.Checkpoint.compact ~pos:1_000_000 state in
  check_int "tombstones dropped" 2 stats.Hyder_core.Checkpoint.tombstones_dropped;
  check_int "live nodes" 98 stats.Hyder_core.Checkpoint.live_nodes;
  check_int "structure shrinks" 98 (Tree.size compacted);
  (match Tree.validate compacted with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid checkpoint: %s" e);
  check "same logical content" true
    (Tree.to_alist compacted = Tree.to_alist state);
  (* content versions preserved so later conflict checks still work *)
  let before = Option.get (Tree.find state 30) in
  let after = Option.get (Tree.find compacted 30) in
  check "cv preserved" true (Vn.equal before.Node.cv after.Node.cv)

let test_checkpoint_deterministic () =
  let module Local = Hyder_core.Local in
  let h = Local.create ~genesis:(mini_state 50) () in
  ignore (Local.txn h (fun e -> Executor.delete e 5));
  let _, _, state = Local.lcs h in
  let a, _ = Hyder_core.Checkpoint.compact ~pos:777 state in
  let b, _ = Hyder_core.Checkpoint.compact ~pos:777 state in
  check "physically identical" true (Tree.physically_equal a b)

let test_checkpoint_usable_as_genesis () =
  let module Local = Hyder_core.Local in
  let h = Local.create ~genesis:(mini_state 50) () in
  ignore (Local.txn h (fun e -> Executor.delete e 5));
  let _, _, state = Local.lcs h in
  let compacted, _ = Hyder_core.Checkpoint.compact ~pos:777 state in
  let h2 = Local.create ~genesis:compacted () in
  let v, ds = Local.txn h2 (fun e -> Executor.write e 6 "after-checkpoint") in
  ignore v;
  check "txns run on checkpointed state" true
    (List.for_all (fun d -> d.Hyder_core.Pipeline.committed) ds)

(* Recovery correctness hinges on composition: melding a log suffix onto a
   compacted checkpoint must reach the same decisions and the same logical
   state as melding it onto the original (uncompacted) tree.  The compacted
   tree is physically rebuilt — different shape, different node objects —
   so graft fast paths may differ; decisions, live content and content
   versions must not. *)
let test_meld_after_compaction_matches_original () =
  let module Local = Hyder_core.Local in
  let module Checkpoint = Hyder_core.Checkpoint in
  let module Pipeline = Hyder_core.Pipeline in
  (* a history that leaves tombstones for compaction to drop *)
  let h = Local.create ~genesis:(mini_state 80) () in
  for k = 0 to 9 do
    ignore (Local.txn h (fun e -> Executor.delete e (k * 7)))
  done;
  ignore (Local.txn h (fun e -> Executor.write e 3 "latest"));
  let _, pos, state = Local.lcs h in
  let compacted, _ = Checkpoint.compact ~pos state in
  (* one suffix of intentions, all executed against the pre-suffix state:
     colliding keys make later members genuinely conflict with earlier
     ones, so the suffix carries both commits and aborts *)
  let intentions =
    List.init 24 (fun i ->
        let e =
          Executor.begin_txn ~snapshot_pos:(-1) ~snapshot:state ~server:0
            ~txn_seq:i ~isolation:I.Serializable ()
        in
        let k = 2 + (i mod 8) in
        ignore (Executor.read e k);
        Executor.write e k (Printf.sprintf "suffix-%d" i);
        if i mod 5 = 0 then Executor.delete e (40 + i);
        match Executor.finish e with
        (* suffix positions follow the history's: every vn already in the
           genesis tree ranks below every suffix intention *)
        | Some draft -> I.assign ~pos:(pos + (2 * (i + 1))) draft
        | None -> Alcotest.fail "suffix txn produced no intention")
  in
  let run genesis =
    let p = Pipeline.create ~genesis () in
    let ds = Pipeline.submit_batch p intentions @ Pipeline.flush p in
    let _, _, tree = Pipeline.lcs p in
    Pipeline.shutdown p;
    ( List.map
        (fun (d : Pipeline.decision) -> (d.seq, d.pos, d.committed, d.reason))
        ds,
      tree )
  in
  let da, ta = run state in
  let db, tb = run compacted in
  check "identical decisions" true (da = db);
  check "suffix has commits" true
    (List.exists (fun (_, _, c, _) -> c) da);
  check "suffix has conflicts" true
    (List.exists (fun (_, _, c, _) -> not c) da);
  check "logically equal trees" true (Tree.to_alist ta = Tree.to_alist tb);
  List.iter
    (fun (k, _) ->
      let a = Option.get (Tree.find ta k) and b = Option.get (Tree.find tb k) in
      check "content versions equal" true (Vn.equal a.Node.cv b.Node.cv))
    (Tree.to_alist ta)

(* --- oracle ---------------------------------------------------------------- *)

let test_oracle_basics () =
  let o = Oracle.create () in
  (* txn 0: writes k1 from genesis snapshot *)
  check "t0 commits" true
    (Oracle.decide o ~snapshot_seq:(-1) ~isolation:I.Serializable ~reads:[]
       ~writes:[ 1 ]);
  (* txn 1: stale snapshot, reads k1 -> conflict *)
  check "stale reader aborts" false
    (Oracle.decide o ~snapshot_seq:(-1) ~isolation:I.Serializable
       ~reads:[ 1 ] ~writes:[ 9 ]);
  (* txn 2: same stale snapshot but SI ignores the read *)
  check "SI reader commits" true
    (Oracle.decide o ~snapshot_seq:(-1) ~isolation:I.Snapshot_isolation
       ~reads:[ 1 ] ~writes:[ 8 ]);
  (* txn 3: fresh snapshot sees everything *)
  check "fresh commits" true
    (Oracle.decide o ~snapshot_seq:2 ~isolation:I.Serializable ~reads:[ 1; 8 ]
       ~writes:[ 1 ]);
  check_int "seq advances per decide" 4 (Oracle.next_seq o);
  (* aborted writes are not installed: reading k9 from genesis is fine *)
  check "aborted write not installed" true
    (Oracle.decide o ~snapshot_seq:(-1) ~isolation:I.Serializable
       ~reads:[ 9 ] ~writes:[ 9 ])

let () =
  Alcotest.run "core units"
    [
      ( "state store",
        [
          Alcotest.test_case "basics" `Quick test_state_store_basics;
          Alcotest.test_case "by_pos" `Quick test_state_store_by_pos;
          Alcotest.test_case "ordering" `Quick
            test_state_store_ordering_enforced;
          Alcotest.test_case "prune" `Quick test_state_store_prune;
          Alcotest.test_case "prune releases states to the GC" `Quick
            test_state_store_prune_releases_states;
          Alcotest.test_case "growth" `Quick
            test_state_store_grows_past_initial_capacity;
          Alcotest.test_case "resolver" `Quick
            test_resolver_finds_snapshot_nodes;
        ] );
      ( "intention cache",
        [
          Alcotest.test_case "add/find" `Quick test_cache_add_find;
          Alcotest.test_case "fifo eviction" `Quick test_cache_eviction_fifo;
          Alcotest.test_case "weak" `Quick test_cache_is_weak;
        ] );
      ( "executor",
        [
          Alcotest.test_case "read committed" `Quick
            test_executor_read_committed_sees_fresh;
          Alcotest.test_case "SI records no deps" `Quick
            test_executor_si_records_no_deps;
          Alcotest.test_case "read-only finish" `Quick
            test_executor_finish_read_only;
          Alcotest.test_case "introspection" `Quick
            test_executor_introspection;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "compacts" `Quick
            test_checkpoint_compacts_tombstones;
          Alcotest.test_case "deterministic" `Quick
            test_checkpoint_deterministic;
          Alcotest.test_case "usable as genesis" `Quick
            test_checkpoint_usable_as_genesis;
          Alcotest.test_case "meld suffix onto compacted = original" `Quick
            test_meld_after_compaction_matches_original;
        ] );
      ( "oracle",
        [ Alcotest.test_case "basics" `Quick test_oracle_basics ] );
    ]
