(* Chaos suite: seeded fault schedules, gap repair and crash recovery.

   The acceptance property: under any deterministic fault schedule —
   dropped/duplicated/delayed broadcasts, storage stalls, transient read
   failures, server crashes — every replica, including one restarted from
   a checkpoint, converges to trees, ephemeral ids and counters
   bit-identical to a fault-free run's, with replay bounded by the suffix
   after the last checkpoint. *)

module Faults = Hyder_sim.Faults
module Replica = Hyder_cluster.Replica
module Runtime = Hyder_core.Runtime
module Metrics = Hyder_obs.Metrics

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* {1 Fault schedule: purity and parsing} *)

let test_faults_pure () =
  let f =
    Faults.create ~drop:0.3 ~dup:0.2 ~delay_p:0.1 ~delay:1e-3 ~seed:42 ()
  in
  (* same event, same answer — however many times and in whatever order *)
  let probe () =
    List.map
      (fun msg -> Faults.delivery f ~from:(msg mod 3) ~receiver:1 ~msg)
      [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
  in
  let a = probe () in
  let _mixed = Faults.delivery f ~from:9 ~receiver:9 ~msg:999 in
  let b = List.rev_map (fun x -> x) (List.rev (probe ())) in
  check_bool "delivery fates replay identically" true (a = b);
  let g = Faults.create ~drop:0.3 ~seed:43 () in
  check_bool "different seeds give different schedules" true
    (List.exists2
       (fun x y -> x <> y)
       (List.init 200 (fun m -> Faults.delivery f ~from:0 ~receiver:1 ~msg:m))
       (List.init 200 (fun m -> Faults.delivery g ~from:0 ~receiver:1 ~msg:m)))

let test_faults_extremes () =
  let all = Faults.create ~drop:1.0 ~seed:7 () in
  for m = 0 to 50 do
    check_bool "drop=1 drops everything" true
      (Faults.delivery all ~from:0 ~receiver:1 ~msg:m = Faults.Drop)
  done;
  let none = Faults.create ~seed:7 () in
  for m = 0 to 50 do
    check_bool "no-fault schedule delivers" true
      (Faults.delivery none ~from:0 ~receiver:1 ~msg:m = Faults.Deliver)
  done;
  check_bool "none is none" true (Faults.is_none Faults.none);
  (* read failures are per-attempt independent draws: attempt numbers
     must matter, so retries terminate *)
  let rf = Faults.create ~read_fail:0.5 ~seed:11 () in
  check_bool "read failure draws vary by attempt" true
    (let draws =
       List.init 64 (fun a -> Faults.read_fails rf ~pos:3 ~attempt:a)
     in
     List.mem true draws && List.mem false draws)

let test_faults_spec_roundtrip () =
  let spec = "7:drop=0.02,dup=0.01@0.002,delay=0.05@0.001,stall=0.01@0.002,readfail=0.1,crash=1@0.05+0.03,crash=2@0.01+0.005" in
  (match Faults.of_string spec with
  | Error e -> Alcotest.failf "spec rejected: %s" e
  | Ok f -> (
      check_int "seed parsed" 7 (Faults.seed f);
      check_int "both crashes parsed" 2 (List.length (Faults.crashes f));
      match Faults.of_string (Faults.to_string f) with
      | Error e -> Alcotest.failf "round-trip rejected: %s" e
      | Ok f' ->
          check_string "round-trips" (Faults.to_string f) (Faults.to_string f');
          check_bool "round-tripped schedule behaves identically" true
            (List.init 100 (fun m -> Faults.delivery f ~from:0 ~receiver:2 ~msg:m)
            = List.init 100 (fun m ->
                  Faults.delivery f' ~from:0 ~receiver:2 ~msg:m))));
  List.iter
    (fun bad ->
      check_bool
        (Printf.sprintf "rejects %S" bad)
        true
        (Result.is_error (Faults.of_string bad)))
    [ ""; "x:drop=0.1"; "3:drop=1.5"; "3:bogus=1"; "3:crash=1@x+y" ]

(* {1 The cluster harness} *)

let base_config =
  { Replica.default_config with Replica.txns = 400; servers = 3 }

let test_fault_free_converges () =
  let r = Replica.run base_config in
  check_bool "fault-free run converges" true r.Replica.converged;
  check_int "all positions logged" base_config.Replica.txns
    r.Replica.log_length;
  List.iter
    (fun (rep : Replica.replica_report) ->
      check_int "no crashes" 0 rep.Replica.crashes;
      check_int "nothing replayed" 0 rep.Replica.replayed;
      check_bool "checkpoints captured" true (rep.Replica.checkpoints > 0);
      check_string "tree matches baseline" r.Replica.baseline_tree_digest
        rep.Replica.tree_digest;
      check_string "counters match baseline"
        r.Replica.baseline_counters_digest rep.Replica.counters_digest)
    r.Replica.replicas

(* The acceptance scenario from ISSUE.md: drops, duplicates, delays, a
   storage stall, transient read failures, and two crashes — one restarting
   from a checkpoint, one from scratch (it dies before its first
   checkpoint). *)
let chaos_spec =
  "1234:drop=0.02,dup=0.02@0.0004,delay=0.05@0.0008,stall=0.05@0.0005,readfail=0.2,crash=1@0.0075+0.002,crash=2@0.0005+0.001"

let chaos_faults () =
  match Faults.of_string chaos_spec with
  | Ok f -> f
  | Error e -> Alcotest.failf "chaos spec rejected: %s" e

let chaos_config ?(runtime = Runtime.sequential) ?metrics () =
  { base_config with Replica.faults = chaos_faults (); runtime; metrics }

let test_chaos_converges () =
  let m = Metrics.create () in
  let r = Replica.run (chaos_config ~metrics:m ()) in
  check_bool "chaos run converges bit-identically" true r.Replica.converged;
  check_bool "faults actually fired: drops" true (r.Replica.dropped > 0);
  check_bool "faults actually fired: duplicates" true (r.Replica.duplicated > 0);
  check_bool "faults actually fired: stalls" true (r.Replica.stalls > 0);
  check_bool "transient read failures retried" true (r.Replica.read_retries > 0);
  let rep i = List.nth r.Replica.replicas i in
  check_int "server 1 crashed once" 1 (rep 1).Replica.crashes;
  check_int "server 2 crashed once" 1 (rep 2).Replica.crashes;
  check_bool "server 1 restarted from a checkpoint" true
    ((rep 1).Replica.restarted_from_pos >= 0);
  check_int "server 2 crashed before its first checkpoint" (-1)
    (rep 2).Replica.restarted_from_pos;
  List.iter
    (fun (x : Replica.replica_report) ->
      check_int "no decision mismatches" 0 x.Replica.decision_mismatches;
      check_int "fully melded" r.Replica.log_length x.Replica.melded;
      if x.Replica.crashes > 0 then begin
        check_bool "crashed replica replayed a suffix" true
          (x.Replica.replayed > 0);
        (* checkpoint-bounded replay: only the log suffix after the
           checkpoint the restart resumed from is ever re-melded *)
        check_bool
          (Printf.sprintf "replay %d bounded by suffix after checkpoint %d"
             x.Replica.replayed x.Replica.restarted_from_pos)
          true
          (x.Replica.replayed
          <= r.Replica.log_length - 1 - x.Replica.restarted_from_pos);
        check_bool "caught-up time recorded" true (x.Replica.caught_up_in > 0.0)
      end)
    r.Replica.replicas;
  check_bool "some gap was repaired from the log" true
    (List.exists
       (fun (x : Replica.replica_report) -> x.Replica.repair_reads > 0)
       r.Replica.replicas);
  check_bool "some duplicate was ignored" true
    (List.exists
       (fun (x : Replica.replica_report) -> x.Replica.duplicates_ignored > 0)
       r.Replica.replicas);
  (* recovery observability *)
  let counter name = Metrics.Counter.value (Metrics.counter m name) in
  check_bool "repair reads exported" true (counter "recovery_repair_reads" > 0);
  check_int "crashes exported" 2 (counter "recovery_crashes");
  check_bool "drops exported" true (counter "broadcast_messages_dropped" > 0);
  check_int "replay histogram has one entry per crashed replica" 2
    (Metrics.Histogram.count (Metrics.histogram m "recovery_replay_length"))

let digests (r : Replica.result) =
  ( r.Replica.baseline_tree_digest,
    r.Replica.baseline_counters_digest,
    List.map
      (fun (x : Replica.replica_report) ->
        (x.Replica.tree_digest, x.Replica.counters_digest, x.Replica.commits,
         x.Replica.aborts, x.Replica.replayed, x.Replica.repair_reads,
         x.Replica.duplicates_ignored, x.Replica.checkpoints))
      r.Replica.replicas )

let test_chaos_deterministic () =
  let a = Replica.run (chaos_config ()) in
  let b = Replica.run (chaos_config ()) in
  check_bool "identical digests and recovery stats across runs" true
    (digests a = digests b);
  check_bool "identical sim clock" true
    (a.Replica.sim_seconds = b.Replica.sim_seconds)

let test_chaos_backend_independent () =
  let cfg = chaos_config () in
  let seq = Replica.run cfg in
  check_bool "seq converges" true seq.Replica.converged;
  List.iter
    (fun backend ->
      match Runtime.parse backend with
      | Error e -> Alcotest.failf "parse %s: %s" backend e
      | Ok runtime ->
          let r = Replica.run { cfg with Replica.runtime } in
          check_bool (backend ^ " converges") true r.Replica.converged;
          check_bool
            (backend ^ " bit-identical to sequential")
            true
            (digests r = digests seq))
    (* pipe:2:adaptive exercises the adaptive handoff controller under
       crash/replay: recovery re-melds log suffixes through the staged
       fabric, and resized batches/windows must stay invisible in the
       digests. *)
    [ "par:2"; "pipe:2"; "pipe:2:adaptive" ]

let () =
  Alcotest.run "chaos"
    [
      ( "faults",
        [
          Alcotest.test_case "pure function of seed and event" `Quick
            test_faults_pure;
          Alcotest.test_case "extreme probabilities" `Quick
            test_faults_extremes;
          Alcotest.test_case "spec parse round-trip" `Quick
            test_faults_spec_roundtrip;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "fault-free cluster converges" `Quick
            test_fault_free_converges;
          Alcotest.test_case "chaos schedule converges bit-identically" `Quick
            test_chaos_converges;
          Alcotest.test_case "chaos run is deterministic" `Quick
            test_chaos_deterministic;
          Alcotest.test_case "chaos convergence is backend-independent" `Slow
            test_chaos_backend_independent;
        ] );
    ]
