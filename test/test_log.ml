module Mem_log = Hyder_log.Mem_log
module Corfu = Hyder_log.Corfu
module Broadcast = Hyder_log.Broadcast
module Engine = Hyder_sim.Engine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_mem_log_basics () =
  let l = Mem_log.create ~block_size:16 () in
  let p0 = Mem_log.append l "hello" in
  let p1 = Mem_log.append l "world" in
  check_int "dense positions" 0 p0;
  check_int "dense positions" 1 p1;
  Alcotest.(check string) "read back" "hello" (Mem_log.read l 0);
  Alcotest.(check string) "read back" "world" (Mem_log.read l 1);
  check_int "length" 2 (Mem_log.length l);
  check_int "bytes" 10 (Mem_log.bytes_appended l)

let test_mem_log_rejects_oversized () =
  let l = Mem_log.create ~block_size:4 () in
  Alcotest.check_raises "oversized"
    (Invalid_argument
       "Mem_log.append: block of 5 bytes exceeds page size 4") (fun () ->
      ignore (Mem_log.append l "hello"))

let test_mem_log_read_bounds () =
  let l = Mem_log.create () in
  ignore (Mem_log.append l "x");
  Alcotest.check_raises "negative"
    (Invalid_argument "Mem_log.read: position -1 out of range") (fun () ->
      ignore (Mem_log.read l (-1)));
  Alcotest.check_raises "past end"
    (Invalid_argument "Mem_log.read: position 1 out of range") (fun () ->
      ignore (Mem_log.read l 1))

let test_mem_log_iter () =
  let l = Mem_log.create () in
  for i = 0 to 9 do
    ignore (Mem_log.append l (string_of_int i))
  done;
  let seen = ref [] in
  Mem_log.iter l ~from:5 (fun pos b -> seen := (pos, b) :: !seen);
  check_int "five blocks" 5 (List.length !seen);
  check "positions" true
    (List.rev !seen = List.init 5 (fun i -> (i + 5, string_of_int (i + 5))))

let test_mem_log_grows () =
  let l = Mem_log.create () in
  for i = 0 to 5000 do
    ignore (Mem_log.append l (string_of_int i))
  done;
  Alcotest.(check string) "growth preserved" "3000" (Mem_log.read l 3000)

(* --- corfu -------------------------------------------------------------- *)

let test_corfu_append_read () =
  let e = Engine.create () in
  let c = Corfu.create e in
  let results = ref [] in
  for i = 0 to 9 do
    Corfu.append c (Printf.sprintf "block%d" i) (fun pos ->
        results := (i, pos) :: !results)
  done;
  Engine.run e;
  check_int "all appended" 10 (List.length !results);
  check_int "positions dense" 10 (Corfu.length c);
  (* Sequencer order = request order: block i gets position i. *)
  List.iter (fun (i, pos) -> check_int "fifo positions" i pos) !results;
  let got = ref None in
  Corfu.read c 5 (fun b -> got := Some b);
  Engine.run e;
  Alcotest.(check (option string)) "read back" (Some "block5") !got

let test_corfu_latency_increases_under_load () =
  let measure clients =
    let e = Engine.create () in
    let c = Corfu.create e in
    (* closed loop: each client keeps one append in flight *)
    let rec loop remaining () =
      if remaining > 0 then
        Corfu.append c (String.make 512 'x') (fun _ -> loop (remaining - 1) ())
    in
    for _ = 1 to clients do
      loop 200 ()
    done;
    Engine.run e;
    Hyder_util.Stats.Sample.mean (Corfu.append_latencies c)
  in
  let light = measure 1 in
  let heavy = measure 512 in
  check
    (Printf.sprintf "queueing raises latency (%.6f vs %.6f)" light heavy)
    true (heavy > light *. 2.0)

let test_corfu_throughput_bounded_by_sequencer () =
  let e = Engine.create () in
  let config = Corfu.default_config in
  let c = Corfu.create ~config e in
  let n = 20_000 in
  let completed = ref 0 in
  let rec loop remaining () =
    if remaining > 0 then
      Corfu.append c "b" (fun _ ->
          incr completed;
          loop (remaining - 1) ())
  in
  (* 400 concurrent closed-loop appenders saturate the service. *)
  for _ = 1 to 400 do
    loop (n / 400) ()
  done;
  Engine.run e;
  let rate = float_of_int !completed /. Engine.now e in
  let sequencer_cap = 1.0 /. config.Corfu.sequencer_time in
  check
    (Printf.sprintf "rate %.0f <= sequencer cap %.0f" rate sequencer_cap)
    true (rate <= sequencer_cap +. 1.0);
  check "saturates near a bottleneck" true (rate > sequencer_cap *. 0.5)

(* --- broadcast ---------------------------------------------------------- *)

let test_broadcast_reaches_all () =
  let e = Engine.create () in
  let b = Broadcast.create e ~senders:3 ~receivers:3 in
  let got = Array.make 3 0 in
  Broadcast.send b ~from:1 ~size:1000 (fun ~receiver ->
      got.(receiver) <- got.(receiver) + 1);
  Engine.run e;
  Alcotest.(check (array int)) "one delivery each" [| 1; 1; 1 |] got;
  (* the sender's own delivery does not cross the network *)
  check_int "remote messages only" 2 (Broadcast.messages_sent b)

let test_broadcast_local_immediate () =
  let e = Engine.create () in
  let b = Broadcast.create e ~senders:2 ~receivers:2 in
  let local = ref false in
  Broadcast.send b ~from:0 ~size:10 (fun ~receiver ->
      if receiver = 0 then begin
        local := true;
        Alcotest.(check (float 1e-12)) "no delay locally" 0.0 (Engine.now e)
      end);
  (* scheduled through the event loop, not invoked synchronously: a
     delivery handler that reenters the broadcast must not run inside
     the sender's call stack *)
  check "local delivery waits for the event loop" false !local;
  Engine.run e;
  check "local delivered at zero simulated delay" true !local

let test_broadcast_faults () =
  let faults =
    match Hyder_sim.Faults.of_string "5:drop=0.3,dup=0.2@0.001" with
    | Ok f -> f
    | Error e -> Alcotest.fail e
  in
  let e = Engine.create () in
  let b = Broadcast.create ~faults e ~senders:2 ~receivers:2 in
  let local = ref 0 and remote = ref 0 in
  let n = 200 in
  for _ = 1 to n do
    Broadcast.send b ~from:0 ~size:100 (fun ~receiver ->
        if receiver = 0 then incr local else incr remote)
  done;
  Engine.run e;
  check_int "local deliveries are exempt from faults" n !local;
  check "drops happened" true (Broadcast.messages_dropped b > 0);
  check "duplicates happened" true (Broadcast.messages_duplicated b > 0);
  check_int "every remote delivery accounted for"
    (Broadcast.messages_sent b + Broadcast.messages_duplicated b)
    !remote;
  check_int "sent + dropped = attempts" n
    (Broadcast.messages_sent b + Broadcast.messages_dropped b)

let test_corfu_faulty_reads_retry () =
  let faults =
    match Hyder_sim.Faults.of_string "9:readfail=0.5,stall=0.2@0.002" with
    | Ok f -> f
    | Error e -> Alcotest.fail e
  in
  let e = Engine.create () in
  let c = Corfu.create ~faults e in
  let blocks = List.init 50 (fun i -> Printf.sprintf "block-%d" i) in
  List.iter (fun b -> Corfu.append c b (fun _ -> ())) blocks;
  Engine.run e;
  let got = ref 0 in
  List.iteri
    (fun i expect ->
      Corfu.read c i (fun b ->
          Alcotest.(check string) "read returns the appended block" expect b;
          incr got))
    blocks;
  Engine.run e;
  check_int "every read eventually completes" 50 !got;
  check "transient failures were retried" true (Corfu.read_retries c > 0);
  check "stalls were injected" true (Corfu.stalls_injected c > 0)

let test_broadcast_in_order_per_sender () =
  let e = Engine.create () in
  let b = Broadcast.create e ~senders:2 ~receivers:2 in
  let seen = ref [] in
  for i = 0 to 9 do
    Broadcast.send b ~from:0 ~size:5000 (fun ~receiver ->
        if receiver = 1 then seen := i :: !seen)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "TCP-like ordering"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (List.rev !seen)

let () =
  Alcotest.run "log"
    [
      ( "mem_log",
        [
          Alcotest.test_case "basics" `Quick test_mem_log_basics;
          Alcotest.test_case "oversized" `Quick test_mem_log_rejects_oversized;
          Alcotest.test_case "read bounds" `Quick test_mem_log_read_bounds;
          Alcotest.test_case "iter" `Quick test_mem_log_iter;
          Alcotest.test_case "grows" `Quick test_mem_log_grows;
        ] );
      ( "corfu",
        [
          Alcotest.test_case "append/read" `Quick test_corfu_append_read;
          Alcotest.test_case "latency under load" `Quick
            test_corfu_latency_increases_under_load;
          Alcotest.test_case "sequencer bound" `Quick
            test_corfu_throughput_bounded_by_sequencer;
          Alcotest.test_case "faulty reads retry" `Quick
            test_corfu_faulty_reads_retry;
        ] );
      ( "broadcast",
        [
          Alcotest.test_case "reaches all" `Quick test_broadcast_reaches_all;
          Alcotest.test_case "local immediate" `Quick
            test_broadcast_local_immediate;
          Alcotest.test_case "per-sender order" `Quick
            test_broadcast_in_order_per_sender;
          Alcotest.test_case "seeded faults" `Quick test_broadcast_faults;
        ] );
    ]
