open Hyder_tree
module I = Hyder_codec.Intention

let owner = I.draft_owner

let make_fresh () =
  let c = ref 0 in
  fun () ->
    incr c;
    I.draft_vn ~idx:!c

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_of_sorted_basic () =
  let t = Helpers.genesis 1000 in
  Helpers.check_tree_valid "genesis" t;
  check_int "size" 1000 (Tree.size t);
  check_int "live" 1000 (Tree.live_size t);
  for k = 0 to 999 do
    Alcotest.(check string)
      "lookup" ("v" ^ string_of_int k)
      (Helpers.value_exn (Tree.lookup t k))
  done;
  check "absent" true (Tree.lookup t 1000 = None)

let test_of_sorted_rejects_unsorted () =
  Alcotest.check_raises "unsorted" (Invalid_argument
      "Tree.of_sorted_array: keys must be strictly increasing") (fun () ->
      ignore (Tree.of_sorted_array [| (2, Helpers.payload 2); (1, Helpers.payload 1) |]))

let test_depth_logarithmic () =
  let t = Helpers.genesis 10000 in
  let d = Tree.depth t in
  (* Expected treap depth ~ 2.99 * ln n ≈ 27; allow generous slack. *)
  check "depth sane" true (d < 60)

let test_canonical_shape_any_insertion_order () =
  let keys = Array.init 200 (fun i -> (i * 37) + 11) in
  let build order_seed =
    let rng = Hyder_util.Rng.create (Int64.of_int order_seed) in
    let ks = Array.copy keys in
    Hyder_util.Rng.shuffle rng ks;
    Array.fold_left
      (fun t k ->
        Tree.upsert t ~owner ~fresh:(make_fresh ()) k (Helpers.payload k))
      Tree.empty ks
  in
  let a = build 1 and b = build 2 in
  Alcotest.(check string) "same shape" (Helpers.shape a) (Helpers.shape b);
  let direct =
    Tree.of_sorted_array
      (Array.map (fun k -> (k, Helpers.payload k)) (Array.copy keys |> fun a ->
        Array.sort compare a; a))
  in
  Alcotest.(check string) "matches of_sorted" (Helpers.shape direct) (Helpers.shape a)

let test_upsert_update () =
  let t0 = Helpers.genesis 100 in
  let fresh = make_fresh () in
  let t1 = Tree.upsert t0 ~owner ~fresh 42 (Payload.value "new") in
  Helpers.check_tree_valid "updated" t1;
  Alcotest.(check string) "new value" "new" (Helpers.value_exn (Tree.lookup t1 42));
  (* The snapshot is untouched (copy-on-write). *)
  Alcotest.(check string) "old value" "v42" (Helpers.value_exn (Tree.lookup t0 42));
  check_int "same size" 100 (Tree.size t1);
  (* The updated node is a draft with source metadata. *)
  let n = Option.get (Tree.find t1 42) in
  check "altered" true (Node.altered n);
  check "owner" true (Node.owner n = owner);
  let src = Option.get (Tree.find t0 42) in
  check "ssv points at source" true (Node.ssv_equals n src.Node.vn);
  check "scv is source content" true (Node.scv_equals n src.Node.cv)

let test_upsert_insert () =
  let t0 = Helpers.genesis ~gap:10 100 in
  let fresh = make_fresh () in
  let t1 = Tree.upsert t0 ~owner ~fresh 55 (Payload.value "inserted") in
  Helpers.check_tree_valid "inserted" t1;
  check_int "size +1" 1001 (Tree.size t1 + 1000 - Tree.size t0 + 1000 - 1000);
  check_int "size is 101" 101 (Tree.size t1);
  Alcotest.(check string) "insert visible" "inserted"
    (Helpers.value_exn (Tree.lookup t1 55));
  let n = Option.get (Tree.find t1 55) in
  check "insert has no ssv" false (Node.has_ssv n);
  check "insert altered" true (Node.altered n)

let test_delete_is_tombstone () =
  let t0 = Helpers.genesis 50 in
  let fresh = make_fresh () in
  let t1 = Tree.upsert t0 ~owner ~fresh 7 Payload.tombstone in
  check "gone" true (Tree.lookup t1 7 = None);
  check "not a member" false (Tree.mem t1 7);
  check_int "node remains" 50 (Tree.size t1);
  check_int "live shrinks" 49 (Tree.live_size t1);
  (* Re-inserting the key is an update of the tombstone node. *)
  let t2 = Tree.upsert t1 ~owner ~fresh 7 (Payload.value "back") in
  Alcotest.(check string) "back" "back" (Helpers.value_exn (Tree.lookup t2 7));
  let n = Option.get (Tree.find t2 7) in
  check "revival keeps source chain" true (Node.has_ssv n)

let test_touch_read_marks () =
  let t0 = Helpers.genesis 100 in
  let fresh = make_fresh () in
  let t1 = Tree.touch_read t0 ~owner ~fresh 10 in
  let n = Option.get (Tree.find t1 10) in
  check "dep content" true (Node.depends_on_content n);
  check "not altered" false (Node.altered n);
  check "payload kept" true (Payload.equal n.Node.payload (Helpers.payload 10));
  (* Marking again is a no-op (physically). *)
  let t2 = Tree.touch_read t1 ~owner ~fresh 10 in
  check "idempotent" true (t2 == t1)

let test_touch_read_own_write_noop () =
  let t0 = Helpers.genesis 100 in
  let fresh = make_fresh () in
  let t1 = Tree.upsert t0 ~owner ~fresh 10 (Payload.value "mine") in
  let t2 = Tree.touch_read t1 ~owner ~fresh 10 in
  check "no-op" true (t2 == t1)

let test_touch_read_absent_guards_structure () =
  let t0 = Helpers.genesis ~gap:10 100 in
  let fresh = make_fresh () in
  let t1 = Tree.touch_read t0 ~owner ~fresh 55 in
  (* Some node on the search path must carry the structural guard. *)
  let guarded = ref 0 in
  Tree.iter t1 (fun n -> if Node.depends_on_structure n then incr guarded);
  check_int "one guard" 1 !guarded

let test_touch_range_marks_in_range () =
  let t0 = Helpers.genesis 100 in
  let fresh = make_fresh () in
  let t1 = Tree.touch_range t0 ~owner ~fresh ~lo:10 ~hi:20 in
  let marked = ref [] in
  Tree.iter t1 (fun n ->
      if Node.depends_on_structure n then marked := n.Node.key :: !marked);
  List.iter
    (fun k -> check (Printf.sprintf "key %d marked" k) true (List.mem k !marked))
    [ 10; 11; 15; 20 ];
  check "nothing below lo" false (List.exists (fun k -> k < 10) !marked);
  check "nothing above hi" false (List.exists (fun k -> k > 20) !marked)

let test_touch_range_empty_guards_neighbours () =
  let t0 = Helpers.genesis ~gap:100 10 in
  let fresh = make_fresh () in
  (* Range (150, 180) is empty; neighbours 100 and 200 must be guarded. *)
  let t1 = Tree.touch_range t0 ~owner ~fresh ~lo:150 ~hi:180 in
  let marked = ref [] in
  Tree.iter t1 (fun n ->
      if Node.depends_on_structure n then marked := n.Node.key :: !marked);
  check "pred guarded" true (List.mem 100 !marked);
  check "succ guarded" true (List.mem 200 !marked)

let test_pred_succ () =
  let t = Helpers.genesis ~gap:10 10 in
  check_int "pred" 40 (Option.get (Tree.pred t 45)).Node.key;
  check_int "pred exact" 40 (Option.get (Tree.pred t 50)).Node.key;
  check "pred none" true (Tree.pred t 0 = None);
  check_int "succ" 50 (Option.get (Tree.succ t 45)).Node.key;
  check "succ none" true (Tree.succ t 90 = None)

let test_range_items () =
  let t = Helpers.genesis ~gap:10 20 in
  let items = Tree.range_items t ~lo:25 ~hi:62 in
  Alcotest.(check (list int)) "keys" [ 30; 40; 50; 60 ] (List.map fst items);
  (* Tombstoned key drops out of the scan. *)
  let fresh = make_fresh () in
  let t2 = Tree.upsert t ~owner ~fresh 40 Payload.tombstone in
  let items2 = Tree.range_items t2 ~lo:25 ~hi:62 in
  Alcotest.(check (list int)) "keys after delete" [ 30; 50; 60 ]
    (List.map fst items2)

let test_path_length () =
  let t = Helpers.genesis 1024 in
  let total = ref 0 in
  for k = 0 to 1023 do
    total := !total + Tree.path_length t k
  done;
  let avg = float_of_int !total /. 1024.0 in
  check "avg path logarithmic" true (avg < 30.0 && avg > 5.0)

(* ------------------------------------------------------------------ *)
(* Property-based tests                                                 *)
(* ------------------------------------------------------------------ *)

module KeyMap = Map.Make (Int)

let apply_op (tree, model, fresh) op =
  match op with
  | `Upsert (k, v) ->
      ( Tree.upsert tree ~owner ~fresh k (Payload.value v),
        KeyMap.add k v model,
        fresh )
  | `Delete k ->
      (Tree.upsert tree ~owner ~fresh k Payload.tombstone,
       KeyMap.remove k model, fresh)

let op_gen =
  QCheck2.Gen.(
    oneof
      [
        map2 (fun k v -> `Upsert (k, string_of_int v)) (int_bound 400) nat;
        map (fun k -> `Delete k) (int_bound 400);
      ])

let prop_model_agreement =
  QCheck2.Test.make ~name:"treap agrees with Map model" ~count:300
    QCheck2.Gen.(list_size (int_range 1 120) op_gen)
    (fun ops ->
      let fresh = make_fresh () in
      let tree, model, _ =
        List.fold_left apply_op (Helpers.genesis ~gap:7 30,
          (let m = ref KeyMap.empty in
           for i = 0 to 29 do m := KeyMap.add (i * 7) ("v" ^ string_of_int (i * 7)) !m done;
           !m), fresh) ops
      in
      (match Tree.validate tree with
      | Ok () -> ()
      | Error e -> QCheck2.Test.fail_reportf "invalid: %s" e);
      KeyMap.for_all
        (fun k v ->
          match Tree.lookup tree k with
          | Some (Payload.Value s) -> String.equal s v
          | Some Payload.Tombstone | None -> false)
        model
      && List.for_all
           (fun (k, _) -> KeyMap.mem k model)
           (Tree.to_alist tree))

let prop_shape_canonical =
  QCheck2.Test.make ~name:"shape independent of insertion order" ~count:200
    QCheck2.Gen.(
      pair (list_size (int_range 1 60) (int_bound 1000)) (int_bound 10000))
    (fun (keys, seed) ->
      let uniq = List.sort_uniq compare keys in
      let fresh = make_fresh () in
      let a =
        List.fold_left
          (fun t k -> Tree.upsert t ~owner ~fresh k (Helpers.payload k))
          Tree.empty uniq
      in
      let shuffled = Array.of_list uniq in
      Hyder_util.Rng.shuffle (Hyder_util.Rng.create (Int64.of_int seed)) shuffled;
      let b =
        Array.fold_left
          (fun t k -> Tree.upsert t ~owner ~fresh k (Helpers.payload k))
          Tree.empty shuffled
      in
      String.equal (Helpers.shape a) (Helpers.shape b))

let prop_range_matches_model =
  QCheck2.Test.make ~name:"range scan agrees with Map model" ~count:200
    QCheck2.Gen.(
      triple
        (list_size (int_range 1 80) op_gen)
        (int_bound 400) (int_bound 400))
    (fun (ops, a, b) ->
      let lo = min a b and hi = max a b in
      let fresh = make_fresh () in
      let tree, model, _ =
        List.fold_left apply_op (Tree.empty, KeyMap.empty, fresh) ops
      in
      let expected =
        KeyMap.bindings model
        |> List.filter (fun (k, _) -> k >= lo && k <= hi)
        |> List.map fst
      in
      let got = List.map fst (Tree.range_items tree ~lo ~hi) in
      expected = got)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_model_agreement; prop_shape_canonical; prop_range_matches_model ]

let () =
  Alcotest.run "tree"
    [
      ( "treap",
        [
          Alcotest.test_case "of_sorted basics" `Quick test_of_sorted_basic;
          Alcotest.test_case "of_sorted rejects unsorted" `Quick
            test_of_sorted_rejects_unsorted;
          Alcotest.test_case "depth logarithmic" `Quick test_depth_logarithmic;
          Alcotest.test_case "canonical shape" `Quick
            test_canonical_shape_any_insertion_order;
          Alcotest.test_case "upsert update" `Quick test_upsert_update;
          Alcotest.test_case "upsert insert" `Quick test_upsert_insert;
          Alcotest.test_case "delete tombstone" `Quick test_delete_is_tombstone;
          Alcotest.test_case "touch_read marks" `Quick test_touch_read_marks;
          Alcotest.test_case "touch_read own write" `Quick
            test_touch_read_own_write_noop;
          Alcotest.test_case "touch_read absent" `Quick
            test_touch_read_absent_guards_structure;
          Alcotest.test_case "touch_range marks" `Quick
            test_touch_range_marks_in_range;
          Alcotest.test_case "touch_range empty" `Quick
            test_touch_range_empty_guards_neighbours;
          Alcotest.test_case "pred/succ" `Quick test_pred_succ;
          Alcotest.test_case "range items" `Quick test_range_items;
          Alcotest.test_case "path length" `Quick test_path_length;
        ] );
      ("properties", qcheck_cases);
    ]
