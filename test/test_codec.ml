open Hyder_tree
module I = Hyder_codec.Intention
module Codec = Hyder_codec.Codec
module Executor = Hyder_core.Executor

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Build a draft by running an executor against a genesis snapshot. *)
let make_draft ?(isolation = I.Serializable) ~snapshot ~snapshot_pos body =
  let e =
    Executor.begin_txn ~snapshot_pos ~snapshot ~server:3 ~txn_seq:17
      ~isolation ()
  in
  body e;
  match Executor.finish e with
  | Some d -> d
  | None -> Alcotest.fail "expected a draft"

let resolver_of snapshot ~snapshot_pos : Codec.resolver =
 fun ~snapshot:pos ~key ~vn ->
  ignore vn;
  check_int "resolver asked for the right snapshot" snapshot_pos pos;
  match Tree.find snapshot key with
  | Some n -> n
  | None -> Node.empty

let test_roundtrip_matches_assign () =
  let snapshot = Helpers.genesis ~gap:10 500 in
  let draft =
    make_draft ~snapshot ~snapshot_pos:(-1) (fun e ->
        Executor.write e 100 "updated";
        Executor.write e 105 "inserted";
        ignore (Executor.read e 200);
        Executor.delete e 300)
  in
  let bytes = Codec.encode draft in
  let decoded =
    Codec.decode ~pos:7 ~resolve:(resolver_of snapshot ~snapshot_pos:(-1)) bytes
  in
  let assigned = I.assign ~pos:7 draft in
  check "physically identical to assign" true
    (Tree.physically_equal decoded.I.root assigned.I.root);
  check_int "node counts agree" assigned.I.node_count decoded.I.node_count;
  check_int "snapshot" (-1) decoded.I.snapshot;
  check_int "server" 3 decoded.I.server;
  check_int "txn_seq" 17 decoded.I.txn_seq;
  check "isolation" true (decoded.I.isolation = I.Serializable);
  check_int "byte size recorded" (String.length bytes) decoded.I.byte_size

let test_roundtrip_snapshot_isolation_smaller () =
  let snapshot = Helpers.genesis ~gap:10 500 in
  let body e =
    for i = 0 to 7 do
      ignore (Executor.read e (i * 50))
    done;
    Executor.write e 100 "x";
    Executor.write e 200 "y"
  in
  let sr = make_draft ~isolation:I.Serializable ~snapshot ~snapshot_pos:(-1) body in
  let si =
    make_draft ~isolation:I.Snapshot_isolation ~snapshot ~snapshot_pos:(-1) body
  in
  let sr_size = Codec.encoded_size sr in
  let si_size = Codec.encoded_size si in
  check
    (Printf.sprintf "SI intention much smaller (%d vs %d)" si_size sr_size)
    true
    (si_size * 2 < sr_size)

let test_decode_rejects_corruption () =
  let snapshot = Helpers.genesis ~gap:10 100 in
  let draft =
    make_draft ~snapshot ~snapshot_pos:(-1) (fun e -> Executor.write e 10 "v")
  in
  let bytes = Codec.encode draft in
  let resolve = resolver_of snapshot ~snapshot_pos:(-1) in
  (* Truncation *)
  (try
     ignore
       (Codec.decode ~pos:1 ~resolve (String.sub bytes 0 (String.length bytes / 2)));
     Alcotest.fail "expected Corrupt"
   with Codec.Corrupt _ -> ());
  (* Trailing garbage *)
  try
    ignore (Codec.decode ~pos:1 ~resolve (bytes ^ "zz"));
    Alcotest.fail "expected Corrupt"
  with Codec.Corrupt _ -> ()

(* ---- pooled / zero-copy codec paths ---------------------------------- *)

let test_peek_snapshot () =
  let snapshot = Helpers.genesis ~gap:10 500 in
  let draft =
    make_draft ~snapshot ~snapshot_pos:31 (fun e -> Executor.write e 100 "x")
  in
  let bytes = Codec.encode draft in
  check_int "snapshot peeked without decoding" 31 (Codec.peek_snapshot bytes);
  (* at an offset inside a larger buffer *)
  let padded = "\xff\xff\xff" ^ bytes in
  check_int "peek honours off" 31 (Codec.peek_snapshot ~off:3 padded);
  (* truncated header *)
  match Codec.peek_snapshot "" with
  | exception Codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "expected Corrupt on empty header"

let test_decode_pooled_matches_decode () =
  let snapshot = Helpers.genesis ~gap:10 500 in
  let resolve = resolver_of snapshot ~snapshot_pos:(-1) in
  let scratch = Codec.Scratch.create () in
  let drafts =
    List.map
      (fun k ->
        make_draft ~snapshot ~snapshot_pos:(-1) (fun e ->
            Executor.write e (k * 10) ("p" ^ string_of_int k);
            ignore (Executor.read e ((k * 10) + 200));
            Executor.delete e ((k * 10) + 400)))
      [ 1; 2; 3; 4 ]
  in
  (* reuse one scratch across decodes, at an offset inside a shared
     buffer, exactly as the pipelined runtime reads wire slices *)
  List.iteri
    (fun n draft ->
      let bytes = Codec.encode draft in
      let shifted = String.make (3 * n) '\xee' ^ bytes ^ "tail" in
      let pooled =
        Codec.decode_pooled ~scratch ~pos:(n + 5) ~off:(3 * n)
          ~len:(String.length bytes) ~resolve shifted
      in
      let plain = Codec.decode ~pos:(n + 5) ~resolve bytes in
      check "pooled decode physically identical to plain decode" true
        (Tree.physically_equal pooled.I.root plain.I.root);
      check_int "node_count agrees" plain.I.node_count pooled.I.node_count;
      check_int "byte_size agrees" plain.I.byte_size pooled.I.byte_size;
      let nodes = Codec.Scratch.export scratch in
      check_int "export is the node table" plain.I.node_count
        (Array.length nodes))
    drafts

let test_encoder_matches_encode () =
  let snapshot = Helpers.genesis ~gap:10 500 in
  let pool = Hyder_util.Buf_pool.create () in
  let enc = Codec.Encoder.create ~pool () in
  (* interleave drafts of very different sizes so the writer grows and is
     reused across encodes *)
  let drafts =
    List.map
      (fun ops ->
        make_draft ~snapshot ~snapshot_pos:(-1) (fun e ->
            for i = 0 to ops - 1 do
              Executor.write e (i * 7 mod 5000) ("v" ^ string_of_int i)
            done))
      [ 1; 40; 2; 25; 3 ]
  in
  List.iter
    (fun draft ->
      Alcotest.(check string)
        "pooled encoder byte-identical to Codec.encode" (Codec.encode draft)
        (Codec.Encoder.encode enc draft))
    drafts;
  Codec.Encoder.free enc;
  check "backing buffer returned to the pool" true
    (Hyder_util.Buf_pool.pooled pool > 0)

let test_encoder_steady_state_allocation () =
  (* Regression guard for the encode hot-path copy bug: once the backing
     buffer has grown to steady state, each encode must allocate only the
     returned string — no intermediate buffer copy, no regrowth.  The
     budget is the result string's own words plus slack for Gc counter
     noise; the copy bug doubled the real figure. *)
  let snapshot = Helpers.genesis ~gap:10 500 in
  let pool = Hyder_util.Buf_pool.create () in
  let enc = Codec.Encoder.create ~pool () in
  let draft =
    make_draft ~snapshot ~snapshot_pos:(-1) (fun e ->
        for i = 0 to 24 do
          Executor.write e (i * 20) ("v" ^ string_of_int i)
        done)
  in
  let bytes = Codec.Encoder.encode enc draft in
  let reps = 200 in
  let w0 = Gc.minor_words () in
  for _ = 1 to reps do
    ignore (Sys.opaque_identity (Codec.Encoder.encode enc draft))
  done;
  let per = (Gc.minor_words () -. w0) /. float_of_int reps in
  let result_words = float_of_int ((String.length bytes + 8) / 8 + 1) in
  Codec.Encoder.free enc;
  check
    (Printf.sprintf
       "steady-state encode allocates only the result string (%.1f words \
        for a %.0f-word string)"
       per result_words)
    true
    (per < (result_words *. 1.25) +. 16.)

let test_blocks_roundtrip_single () =
  let payload = "some intention bytes" in
  let blocks = Codec.Blocks.split ~block_size:8192 ~server:1 ~txn_seq:5 payload in
  check_int "one block" 1 (List.length blocks);
  let r = Codec.Blocks.Reassembler.create () in
  match Codec.Blocks.Reassembler.feed r ~pos:42 (List.hd blocks) with
  | Some (pos, bytes) ->
      check_int "position of last block" 42 pos;
      Alcotest.(check string) "payload" payload bytes
  | None -> Alcotest.fail "expected completion"

let test_blocks_roundtrip_multi () =
  let payload = String.init 20_000 (fun i -> Char.chr (i mod 256)) in
  let blocks = Codec.Blocks.split ~block_size:4096 ~server:2 ~txn_seq:9 payload in
  check "multiple blocks" true (List.length blocks > 4);
  List.iter
    (fun b -> check "fits page" true (String.length b <= 4096))
    blocks;
  check_int "count formula agrees"
    (List.length blocks)
    (Codec.Blocks.blocks_needed ~block_size:4096 (String.length payload));
  let r = Codec.Blocks.Reassembler.create () in
  let result = ref None in
  List.iteri
    (fun i b ->
      match Codec.Blocks.Reassembler.feed r ~pos:(100 + i) b with
      | Some (pos, bytes) ->
          check_int "last block position" (100 + List.length blocks - 1) pos;
          result := Some bytes
      | None -> check "only last completes" true (i < List.length blocks - 1))
    blocks;
  Alcotest.(check (option string)) "payload intact" (Some payload) !result;
  check_int "no pending" 0 (Codec.Blocks.Reassembler.pending r)

let test_blocks_interleaved_servers () =
  let pa = String.make 9000 'a' and pb = String.make 9000 'b' in
  let ba = Codec.Blocks.split ~block_size:4096 ~server:0 ~txn_seq:1 pa in
  let bb = Codec.Blocks.split ~block_size:4096 ~server:1 ~txn_seq:1 pb in
  let r = Codec.Blocks.Reassembler.create () in
  let done_ = ref [] in
  let pos = ref 0 in
  let feed b =
    (match Codec.Blocks.Reassembler.feed r ~pos:!pos b with
    | Some (p, bytes) -> done_ := (p, bytes) :: !done_
    | None -> ());
    incr pos
  in
  (* Interleave the two servers' block streams. *)
  List.iter2 (fun a b -> feed a; feed b) ba bb;
  check_int "both completed" 2 (List.length !done_);
  let by_content c = List.find (fun (_, b) -> b.[0] = c) !done_ in
  check "a intact" true (snd (by_content 'a') = pa);
  check "b intact" true (snd (by_content 'b') = pb)

let test_blocks_checksum_detects_flip () =
  let blocks = Codec.Blocks.split ~block_size:8192 ~server:0 ~txn_seq:0 "data" in
  let b = Bytes.of_string (List.hd blocks) in
  Bytes.set b (Bytes.length b - 1) 'X';
  let r = Codec.Blocks.Reassembler.create () in
  try
    ignore (Codec.Blocks.Reassembler.feed r ~pos:0 (Bytes.to_string b));
    Alcotest.fail "expected Corrupt"
  with Codec.Corrupt _ -> ()

let test_read_only_regions_become_refs () =
  (* A write touches one path; the rest of the tree must serialize as
     references, keeping intentions small. *)
  let snapshot = Helpers.genesis 10_000 in
  let draft =
    make_draft ~snapshot ~snapshot_pos:(-1) (fun e -> Executor.write e 5000 "v")
  in
  let size = Codec.encoded_size draft in
  check (Printf.sprintf "intention is small (%d bytes)" size) true (size < 2000);
  let assigned = I.assign ~pos:3 draft in
  check
    (Printf.sprintf "path-sized node count (%d)" assigned.I.node_count)
    true
    (assigned.I.node_count < 40)

(* Property: encode/decode roundtrip equals assign for random transactions. *)
let prop_roundtrip =
  QCheck2.Test.make ~name:"codec roundtrip = assign" ~count:100
    QCheck2.Gen.(
      pair (list_size (int_range 1 10) (int_bound 499))
        (list_size (int_range 0 6) (int_bound 499)))
    (fun (writes, reads) ->
      let snapshot = Helpers.genesis ~gap:3 500 in
      let draft =
        make_draft ~snapshot ~snapshot_pos:(-1) (fun e ->
            List.iter (fun k -> ignore (Executor.read e (k * 3))) reads;
            List.iter (fun k -> Executor.write e (k * 3) "w") writes)
      in
      let bytes = Codec.encode draft in
      let decoded =
        Codec.decode ~pos:11
          ~resolve:(fun ~snapshot:_ ~key ~vn:_ ->
            match Tree.find snapshot key with
            | Some n -> n
            | None -> Node.empty)
          bytes
      in
      Tree.physically_equal decoded.I.root (I.assign ~pos:11 draft).I.root)

let () =
  Alcotest.run "codec"
    [
      ( "intentions",
        [
          Alcotest.test_case "roundtrip = assign" `Quick
            test_roundtrip_matches_assign;
          Alcotest.test_case "SI smaller than SR" `Quick
            test_roundtrip_snapshot_isolation_smaller;
          Alcotest.test_case "rejects corruption" `Quick
            test_decode_rejects_corruption;
          Alcotest.test_case "untouched regions are refs" `Quick
            test_read_only_regions_become_refs;
        ] );
      ( "pooled paths",
        [
          Alcotest.test_case "peek_snapshot" `Quick test_peek_snapshot;
          Alcotest.test_case "decode_pooled = decode" `Quick
            test_decode_pooled_matches_decode;
          Alcotest.test_case "Encoder = encode" `Quick
            test_encoder_matches_encode;
          Alcotest.test_case "Encoder steady state allocates nothing extra"
            `Quick test_encoder_steady_state_allocation;
        ] );
      ( "blocks",
        [
          Alcotest.test_case "single block" `Quick test_blocks_roundtrip_single;
          Alcotest.test_case "multi block" `Quick test_blocks_roundtrip_multi;
          Alcotest.test_case "interleaved servers" `Quick
            test_blocks_interleaved_servers;
          Alcotest.test_case "checksum" `Quick test_blocks_checksum_detects_flip;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_roundtrip ] );
    ]
