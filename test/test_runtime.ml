(* The Runtime contract (Section 3.4): scheduling premeld onto domains
   changes wall-clock and nothing else.  Sequential and Parallel backends
   must produce identical commit/abort decisions, identical ephemeral node
   identities (checked via physical tree equality), and identical premeld
   work counts, over randomized histories including group_size > 1 and
   premeld distance > 1.  Also unit-tests the Domain_pool and Clock
   utilities the Parallel backend is built from. *)

module Tree = Hyder_tree.Tree
module Pipeline = Hyder_core.Pipeline
module Premeld = Hyder_core.Premeld
module Runtime = Hyder_core.Runtime
module Counters = Hyder_core.Counters
module Executor = Hyder_core.Executor
module I = Hyder_codec.Intention
module Codec = Hyder_codec.Codec
module Domain_pool = Hyder_util.Domain_pool
module Clock = Hyder_util.Clock
module Rng = Hyder_util.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let genesis_n = 2000

(* Record a deterministic intention stream by running a sequential
   pipeline.  Snapshots lag 0..79 states behind the LCS, so the stream
   mixes premeld-skipped (designated state predates snapshot) with
   genuinely premeld-bound intentions; writes land in a small key range
   so real conflicts and aborts occur.

   The generator is wire-fed, like a real replica: each draft is encoded
   and the generator melds the *decoded* intention.  The log is the wire
   — executors take snapshots of wire-built states, so the payload
   elisions and version references the encoder emits resolve on any
   replica that replays the same bytes, and every replay world (decoded
   or re-fed with these same intention objects) evolves isomorphically
   to the generator's. *)
let make_stream ~config ~txns ~seed =
  let genesis = Helpers.genesis genesis_n in
  let rng = Rng.create (Int64.of_int seed) in
  let gen = Pipeline.create ~config ~genesis () in
  let history = ref [ (-1, genesis) ] (* newest first *) in
  let hist_len = ref 1 in
  let intentions = ref [] in
  let wires = ref [] in
  let next_pos = ref 0 in
  for txn_seq = 0 to txns - 1 do
    let lag = min (Rng.int rng 80) (!hist_len - 1) in
    let snapshot_pos, snapshot = List.nth !history lag in
    let isolation =
      if Rng.int rng 4 = 0 then I.Snapshot_isolation else I.Serializable
    in
    let e =
      Executor.begin_txn ~snapshot_pos ~snapshot ~server:0 ~txn_seq ~isolation
        ()
    in
    for _ = 1 to Rng.int rng 3 do
      ignore (Executor.read e (Rng.int rng genesis_n))
    done;
    for _ = 1 to 1 + Rng.int rng 2 do
      Executor.write e (Rng.int rng genesis_n) (Printf.sprintf "w%d" txn_seq)
    done;
    match Executor.finish e with
    | None -> ()
    | Some draft ->
        next_pos := !next_pos + 1 + Rng.int rng 2;
        let src = Codec.encode draft in
        let intention = Pipeline.decode gen ~pos:!next_pos src in
        intentions := intention :: !intentions;
        wires := (!next_pos, src) :: !wires;
        ignore (Pipeline.submit gen intention);
        let _, pos, tree = Pipeline.lcs gen in
        history := (pos, tree) :: !history;
        incr hist_len
  done;
  ignore (Pipeline.flush gen);
  (genesis, List.rev !intentions, List.rev !wires)

(* Replay a recorded stream through a fresh pipeline, feeding
   [submit_batch] in slabs of [slab] intentions. *)
let replay ~config ~runtime ~slab genesis intentions =
  let p = Pipeline.create ~config ~runtime ~genesis () in
  let rec take k acc = function
    | x :: tl when k > 0 -> take (k - 1) (x :: acc) tl
    | rest -> (List.rev acc, rest)
  in
  let rec go acc = function
    | [] -> acc
    | l ->
        let batch, rest = take slab [] l in
        go (List.rev_append (Pipeline.submit_batch p batch) acc) rest
  in
  let decisions = List.rev (go [] intentions) @ Pipeline.flush p in
  let _, _, final = Pipeline.lcs p in
  let pm_counts =
    Array.map
      (fun (s : Counters.stage) -> (s.Counters.intentions, s.Counters.nodes_visited))
      (Pipeline.counters p).Counters.premeld_shards
  in
  Pipeline.shutdown p;
  (decisions, final, pm_counts)

let same_decision (a : Pipeline.decision) (b : Pipeline.decision) =
  a.Pipeline.seq = b.Pipeline.seq
  && a.Pipeline.pos = b.Pipeline.pos
  && a.Pipeline.committed = b.Pipeline.committed
  && a.Pipeline.reason = b.Pipeline.reason
  && a.Pipeline.decided_at = b.Pipeline.decided_at

(* Replay a recorded stream from its wire form, feeding
   [submit_wire_batch] in slabs of [slab] encoded intentions. *)
let replay_wire ~config ~runtime ~slab genesis wires =
  let p = Pipeline.create ~config ~runtime ~genesis () in
  let rec take k acc = function
    | x :: tl when k > 0 -> take (k - 1) (x :: acc) tl
    | rest -> (List.rev acc, rest)
  in
  let rec go acc = function
    | [] -> acc
    | l ->
        let batch, rest = take slab [] l in
        go (List.rev_append (Pipeline.submit_wire_batch p batch) acc) rest
  in
  let decisions = List.rev (go [] wires) @ Pipeline.flush p in
  let _, _, final = Pipeline.lcs p in
  let pm_counts =
    Array.map
      (fun (s : Counters.stage) -> (s.Counters.intentions, s.Counters.nodes_visited))
      (Pipeline.counters p).Counters.premeld_shards
  in
  let off = Pipeline.offload p in
  Pipeline.shutdown p;
  (decisions, final, pm_counts, off)

let compare_to_baseline ~name ~bd ~bfinal ~bcounts (d, final, counts) =
  check (name ^ ": decision count") true (List.length d = List.length bd);
  check (name ^ ": decisions identical") true
    (List.for_all2 same_decision d bd);
  check (name ^ ": final state physically identical") true
    (Tree.physically_equal final bfinal);
  check (name ^ ": per-thread premeld work identical") true (counts = bcounts)

let check_backends ?(wire_runs = []) ~config ~txns ~seed ~runs () =
  let genesis, intentions, wires = make_stream ~config ~txns ~seed in
  check "stream not trivial" true (List.length intentions > txns / 2);
  let bd, bfinal, bcounts =
    replay ~config ~runtime:Runtime.sequential ~slab:max_int genesis intentions
  in
  check_int "every intention decided" (List.length intentions)
    (List.length bd);
  if config.Pipeline.premeld <> None then
    check "premeld actually ran" true
      (Array.exists (fun (n, _) -> n > 0) bcounts);
  List.iter
    (fun (name, runtime, slab) ->
      compare_to_baseline ~name ~bd ~bfinal ~bcounts
        (replay ~config ~runtime ~slab genesis intentions))
    runs;
  (* Wire-fed runs: decisions must match the in-memory baseline exactly
     (the semantic contract), but trees and visit counters are compared
     against a wire-fed *sequential* baseline.  Meld's pointer-sharing
     shortcuts make the physical output depend on how the intention's
     outside pointers alias the replica's own state nodes, and a decoded
     stream aliases differently from an assign-fed one — what must hold
     is that every backend agrees bit-for-bit on the same feed. *)
  (if wire_runs <> [] then
     let wd, wfinal, wcounts, _ =
       replay_wire ~config ~runtime:Runtime.sequential ~slab:max_int genesis
         wires
     in
     check "wire baseline: decision count" true
       (List.length wd = List.length bd);
     check "wire baseline: decisions identical to in-memory" true
       (List.for_all2 same_decision wd bd);
     List.iter
       (fun (name, runtime, slab) ->
         let d, final, counts, off =
           replay_wire ~config ~runtime ~slab genesis wires
         in
         compare_to_baseline ~name ~bd:wd ~bfinal:wfinal ~bcounts:wcounts
           (d, final, counts);
         match off with
         | None -> ()
         | Some o ->
             check (name ^ ": every decode accounted") true
               (o.Pipeline.ds_offloaded + o.Pipeline.ds_inline
               = List.length intentions);
             check (name ^ ": queue depth bounded") true
               (o.Pipeline.max_queue_depth <= o.Pipeline.queue_capacity))
       wire_runs)

(* The paper's configuration: 5 premeld threads, distance 10, groups of
   2 — windows span group boundaries and the snapshot-visibility
   arithmetic inside a window is fully exercised. *)
let test_paper_config () =
  check_backends
    ~config:
      {
        Pipeline.premeld = Some { Premeld.threads = 5; distance = 10 };
        group_size = 2;
      }
    ~txns:400 ~seed:7
    ~runs:
      [
        ("seq slab 1", Runtime.sequential, 1);
        ("par:2", Runtime.parallel ~domains:2, max_int);
        ("par:3 slab 37", Runtime.parallel ~domains:3, 37);
        ("par:2 slab 1", Runtime.parallel ~domains:2, 1);
        ("pipe:1", Runtime.pipelined ~domains:1, max_int);
        ("pipe:2 slab 37", Runtime.pipelined ~domains:2, 37);
        ("pipe:4", Runtime.pipelined ~domains:4, max_int);
      ]
    ~wire_runs:
      [
        ("wire seq slab 19", Runtime.sequential, 19);
        ("wire par:2", Runtime.parallel ~domains:2, max_int);
        ("wire pipe:2", Runtime.pipelined ~domains:2, max_int);
        ("wire pipe:3 slab 23", Runtime.pipelined ~domains:3, 23);
      ]
    ()

let test_small_distance () =
  check_backends
    ~config:
      {
        Pipeline.premeld = Some { Premeld.threads = 2; distance = 1 };
        group_size = 1;
      }
    ~txns:300 ~seed:21
    ~runs:
      [
        ("par:2", Runtime.parallel ~domains:2, max_int);
        ("par:4 slab 5", Runtime.parallel ~domains:4, 5);
        ("pipe:2 slab 5", Runtime.pipelined ~domains:2, 5);
      ]
    ~wire_runs:[ ("wire pipe:2", Runtime.pipelined ~domains:2, max_int) ]
    ()

let test_big_groups () =
  check_backends
    ~config:
      {
        Pipeline.premeld = Some { Premeld.threads = 3; distance = 2 };
        group_size = 4;
      }
    ~txns:300 ~seed:33
    ~runs:
      [
        ("par:2", Runtime.parallel ~domains:2, max_int);
        ("par:3 slab 11", Runtime.parallel ~domains:3, 11);
        ("pipe:3", Runtime.pipelined ~domains:3, max_int);
      ]
    ~wire_runs:[ ("wire pipe:3 slab 11", Runtime.pipelined ~domains:3, 11) ]
    ()

(* group_size = threads*distance + 1, the boundary of the retention
   arithmetic: just before a group completes, every state a premeld
   could designate is still pending, so parallel windows shrink all the
   way down to a single intention — and must still match the inline
   scheduler bit for bit.  (group_size beyond this bound is unsupported:
   premeld-bound intentions would designate states the group assembly
   has not recorded yet, under either backend.) *)
let test_group_at_window_bound () =
  check_backends
    ~config:
      {
        Pipeline.premeld = Some { Premeld.threads = 2; distance = 2 };
        group_size = 5;
      }
    ~txns:200 ~seed:55
    ~runs:
      [
        ("par:2", Runtime.parallel ~domains:2, max_int);
        ("par:2 slab 3", Runtime.parallel ~domains:2, 3);
        ("pipe:2 slab 3", Runtime.pipelined ~domains:2, 3);
      ]
    ()

let test_premeld_off () =
  check_backends
    ~config:{ Pipeline.premeld = None; group_size = 2 }
    ~txns:200 ~seed:77
    ~runs:
      [
        ("par:2", Runtime.parallel ~domains:2, max_int);
        ("pipe:2", Runtime.pipelined ~domains:2, max_int);
      ]
    ~wire_runs:[ ("wire pipe:2 slab 7", Runtime.pipelined ~domains:2, 7) ]
    ()

(* One giant wire burst through the pipelined backend: the bounded SPSC
   queues must absorb it with backpressure (peak depth within capacity),
   work must actually be offloaded, and the decisions must still match
   the sequential baseline. *)
let test_pipelined_burst () =
  let config =
    {
      Pipeline.premeld = Some { Premeld.threads = 5; distance = 10 };
      group_size = 2;
    }
  in
  let genesis, intentions, wires = make_stream ~config ~txns:500 ~seed:11 in
  let bd, _, _ =
    replay ~config ~runtime:Runtime.sequential ~slab:max_int genesis intentions
  in
  let wd, wfinal, wcounts, _ =
    replay_wire ~config ~runtime:Runtime.sequential ~slab:max_int genesis wires
  in
  check "burst wire baseline: decisions identical to in-memory" true
    (List.length wd = List.length bd && List.for_all2 same_decision wd bd);
  let d, final, counts, off =
    replay_wire ~config
      ~runtime:(Runtime.pipelined ~domains:2)
      ~slab:max_int genesis wires
  in
  compare_to_baseline ~name:"burst pipe:2" ~bd:wd ~bfinal:wfinal
    ~bcounts:wcounts (d, final, counts);
  match off with
  | None -> Alcotest.fail "pipelined replay reported no offload stats"
  | Some o ->
      check "queues actually used" true (o.Pipeline.max_queue_depth > 0);
      check "queue depth bounded by capacity" true
        (o.Pipeline.max_queue_depth <= o.Pipeline.queue_capacity);
      check "some decodes offloaded" true (o.Pipeline.ds_offloaded > 0);
      check "every decode accounted" true
        (o.Pipeline.ds_offloaded + o.Pipeline.ds_inline
        = List.length intentions);
      check "worker ds time measured" true (o.Pipeline.worker_ds_seconds > 0.0)

(* The batched-handoff sweep: every handoff batch size and the adaptive
   controller are pure wall-clock knobs, so a bursty wire replay must be
   bit-identical to the sequential baseline at batch 1 (the pre-batching
   behaviour), the default, and a batch far above the queue capacity,
   with the controller on or off.  Slab sizes mix one giant burst with a
   trickle so both the flush-on-threshold and flush-partial paths run. *)
let test_batched_handoff_sweep () =
  let config =
    {
      Pipeline.premeld = Some { Premeld.threads = 5; distance = 10 };
      group_size = 2;
    }
  in
  let genesis, intentions, wires = make_stream ~config ~txns:300 ~seed:99 in
  let wd, wfinal, wcounts, _ =
    replay_wire ~config ~runtime:Runtime.sequential ~slab:max_int genesis wires
  in
  check_int "sweep baseline decided everything" (List.length intentions)
    (List.length wd);
  List.iter
    (fun (batch, adaptive, slab) ->
      let runtime = Runtime.Pipelined { domains = 2; batch; adaptive } in
      let name =
        Printf.sprintf "%s slab %d" (Runtime.to_string runtime)
          (min slab 999_999)
      in
      let d, final, counts, off =
        replay_wire ~config ~runtime ~slab genesis wires
      in
      compare_to_baseline ~name ~bd:wd ~bfinal:wfinal ~bcounts:wcounts
        (d, final, counts);
      match off with
      | None -> Alcotest.fail (name ^ ": no offload stats")
      | Some o ->
          check (name ^ ": publications recorded") true
            (o.Pipeline.handoff_batches > 0);
          check (name ^ ": items cover publications") true
            (o.Pipeline.handoff_items >= o.Pipeline.handoff_batches);
          check (name ^ ": adaptive batch within bounds") true
            (o.Pipeline.adaptive_batch >= 1
            && o.Pipeline.adaptive_batch <= o.Pipeline.queue_capacity);
          check (name ^ ": window covers the batch") true
            (o.Pipeline.adaptive_window >= o.Pipeline.adaptive_batch);
          if not adaptive then
            check (name ^ ": controller off means no adjustments") true
              (o.Pipeline.adaptive_adjustments = 0))
    [
      (1, false, max_int);
      (4, false, 17);
      (32, false, max_int);
      (1, true, 17);
      (4, true, max_int);
      (32, true, 1);
    ]

(* Satellite of the batched-handoff work: one steady-state round of the
   stage-pool fabric — batched submit, worker exec, batched drain — must
   allocate nothing on the driver domain.  Jobs and results are
   immediates here, so every word the bracket sees would come from the
   handoff machinery itself (ring slots are preallocated, publications
   are index stores, the doorbell is an atomic bump).  Gc.minor_words
   is per-domain in OCaml 5: worker-side allocation cannot leak into
   the bracket. *)
let test_stage_pool_handoff_allocates_nothing () =
  let domains = 2 in
  let pool =
    Runtime.Stage_pool.create ~queue:8 ~domains ~dummy_job:(-1)
      ~dummy_result:(-1)
      ~exec:(fun ~worker:_ j -> j + 1)
      ()
  in
  Fun.protect ~finally:(fun () -> Runtime.Stage_pool.shutdown pool)
  @@ fun () ->
  let cap = Runtime.Stage_pool.queue_capacity pool in
  let buf = Array.init cap (fun i -> i) in
  let out = Array.make cap (-1) in
  let total = domains * cap in
  let got = ref 0 in
  let short = ref false in
  (* One round: fill every worker's (empty) job ring in a single batched
     publication each, then spin-drain every result.  All buffers and
     refs are preallocated — the loop body itself must not cons. *)
  let round () =
    for w = 0 to domains - 1 do
      if
        Runtime.Stage_pool.submit_batch pool ~worker:w buf ~len:cap <> cap
      then short := true
    done;
    got := 0;
    while !got < total do
      for w = 0 to domains - 1 do
        got := !got + Runtime.Stage_pool.result_batch pool ~worker:w out ~max:cap
      done;
      if !got < total then Domain.cpu_relax ()
    done
  in
  (* Warm the rings, the workers and the condvar paths out of the
     measurement. *)
  for _ = 1 to 50 do
    round ()
  done;
  let rounds = 200 in
  let mw0 = Gc.minor_words () in
  for _ = 1 to rounds do
    round ()
  done;
  let delta = Gc.minor_words () -. mw0 in
  check "rings never refused a full-capacity batch" false !short;
  check "last round drained" true (!got = total);
  (* Budget covers only the Gc.minor_words probe's own float boxing; a
     single word allocated per handoff round would cost 200+. *)
  check
    (Printf.sprintf
       "steady-state handoff allocated ~nothing on the driver (%.0f words \
        over %d rounds)"
       delta rounds)
    true
    (delta < 64.0)

(* Tracing must stay observational under the pipelined backend too:
   decisions, trees and counters bit-identical with the recorder on or
   off, with offloaded spans landing on worker rings. *)
let test_pipelined_trace_inert () =
  let config =
    {
      Pipeline.premeld = Some { Premeld.threads = 3; distance = 4 };
      group_size = 2;
    }
  in
  let genesis, intentions, wires = make_stream ~config ~txns:200 ~seed:43 in
  let bd, _, _ =
    replay ~config ~runtime:Runtime.sequential ~slab:max_int genesis intentions
  in
  let wd, bfinal, bcounts, _ =
    replay_wire ~config ~runtime:Runtime.sequential ~slab:max_int genesis wires
  in
  check "traced wire baseline: decisions identical to in-memory" true
    (List.length wd = List.length bd && List.for_all2 same_decision wd bd);
  let trace = Hyder_obs.Trace.create ~shards:3 ~workers:2 () in
  let p =
    Pipeline.create ~config ~runtime:(Runtime.pipelined ~domains:2)
      ~trace ~genesis ()
  in
  let d = Pipeline.submit_wire_batch p wires @ Pipeline.flush p in
  let _, _, final = Pipeline.lcs p in
  let counts =
    Array.map
      (fun (s : Counters.stage) -> (s.Counters.intentions, s.Counters.nodes_visited))
      (Pipeline.counters p).Counters.premeld_shards
  in
  Pipeline.shutdown p;
  compare_to_baseline ~name:"traced pipe:2" ~bd:wd ~bfinal ~bcounts
    (d, final, counts);
  let spans = Hyder_obs.Trace.spans trace in
  check "spans recorded" true (spans <> []);
  check "offloaded ds spans land on worker rings" true
    (List.exists
       (fun (s : Hyder_obs.Trace.span) ->
         s.Hyder_obs.Trace.track > 3
         && s.Hyder_obs.Trace.stage = Hyder_obs.Trace.Deserialize)
       spans);
  (* a recorder with too few worker rings must be rejected up front *)
  let small = Hyder_obs.Trace.create ~shards:3 ~workers:1 () in
  match
    Pipeline.create ~config ~runtime:(Runtime.pipelined ~domains:2)
      ~trace:small ~genesis ()
  with
  | exception Invalid_argument _ -> ()
  | p ->
      Pipeline.shutdown p;
      Alcotest.fail "trace with too few worker rings accepted"

(* ------------------------------------------------------------------ *)
(* Domain_pool                                                          *)
(* ------------------------------------------------------------------ *)

let test_pool_runs_every_task () =
  let pool = Domain_pool.create ~domains:3 in
  Fun.protect ~finally:(fun () -> Domain_pool.shutdown pool) @@ fun () ->
  check_int "size" 3 (Domain_pool.size pool);
  let n = 200 in
  let hits = Array.make n 0 in
  Domain_pool.run pool ~tasks:n (fun i -> hits.(i) <- hits.(i) + 1);
  check "each task ran exactly once" true
    (Array.for_all (fun h -> h = 1) hits);
  (* the pool is persistent: a second round reuses the same domains *)
  Domain_pool.run pool ~tasks:n (fun i -> hits.(i) <- hits.(i) + 1);
  check "reusable" true (Array.for_all (fun h -> h = 2) hits)

let test_pool_propagates_exception () =
  let pool = Domain_pool.create ~domains:2 in
  Fun.protect ~finally:(fun () -> Domain_pool.shutdown pool) @@ fun () ->
  (match Domain_pool.run pool ~tasks:8 (fun i -> if i = 5 then failwith "boom")
   with
  | () -> Alcotest.fail "expected the task's exception to propagate"
  | exception Failure m -> check "message" true (m = "boom"));
  (* a failed round must not poison the pool *)
  let c = Atomic.make 0 in
  Domain_pool.run pool ~tasks:4 (fun _ -> Atomic.incr c);
  check_int "usable after failure" 4 (Atomic.get c)

let test_pool_single_domain_and_shutdown () =
  let pool = Domain_pool.create ~domains:1 in
  let c = Atomic.make 0 in
  Domain_pool.run pool ~tasks:10 (fun _ -> Atomic.incr c);
  check_int "ran" 10 (Atomic.get c);
  Domain_pool.shutdown pool;
  Domain_pool.shutdown pool (* idempotent *)

(* ------------------------------------------------------------------ *)
(* Clock and Runtime descriptors                                        *)
(* ------------------------------------------------------------------ *)

let test_clock_monotonic () =
  let prev = ref (Clock.now ()) in
  for _ = 1 to 1000 do
    let t = Clock.now () in
    check "never goes backwards" true (t >= !prev);
    prev := t
  done;
  check "elapsed is non-negative" true (Clock.elapsed (Clock.now ()) >= 0.0)

let test_runtime_parse () =
  check "seq" true (Runtime.parse "seq" = Ok Runtime.sequential);
  check "sequential" true
    (Runtime.parse "sequential" = Ok Runtime.sequential);
  check "par:3" true (Runtime.parse "par:3" = Ok (Runtime.parallel ~domains:3));
  check "bare par" true (Runtime.parse "par" = Ok (Runtime.parallel ~domains:2));
  check "pipe:4" true
    (Runtime.parse "pipe:4" = Ok (Runtime.pipelined ~domains:4));
  check "bare pipe" true
    (Runtime.parse "pipe" = Ok (Runtime.pipelined ~domains:2));
  check "pipelined:3" true
    (Runtime.parse "pipelined:3" = Ok (Runtime.pipelined ~domains:3));
  (match Runtime.parse "nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parse accepted garbage");
  (match Runtime.parse "par:0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parse accepted par:0");
  (match Runtime.parse "pipe:0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parse accepted pipe:0");
  check "pipe:4:32 sets the batch" true
    (Runtime.parse "pipe:4:32"
    = Ok (Runtime.Pipelined { domains = 4; batch = 32; adaptive = false }));
  check "pipe:2:adaptive" true
    (Runtime.parse "pipe:2:adaptive"
    = Ok
        (Runtime.Pipelined
           { domains = 2; batch = Runtime.default_batch; adaptive = true }));
  check "pipe:2:4:adaptive" true
    (Runtime.parse "pipe:2:4:adaptive"
    = Ok (Runtime.Pipelined { domains = 2; batch = 4; adaptive = true }));
  check "a is shorthand for adaptive" true
    (Runtime.parse "pipe:3:a"
    = Ok
        (Runtime.Pipelined
           { domains = 3; batch = Runtime.default_batch; adaptive = true }));
  (match Runtime.parse "pipe:2:0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parse accepted batch 0");
  (match Runtime.parse "pipe:2:4:bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parse accepted a bogus pipe token");
  check "round-trip" true
    (Runtime.to_string (Runtime.parallel ~domains:4) = "par:4"
    && Runtime.to_string (Runtime.pipelined ~domains:4) = "pipe:4"
    && Runtime.to_string Runtime.sequential = "seq");
  check "round-trip elides defaults only" true
    (Runtime.to_string
       (Runtime.Pipelined { domains = 4; batch = 32; adaptive = false })
     = "pipe:4:32"
    && Runtime.to_string
         (Runtime.Pipelined
            { domains = 2; batch = Runtime.default_batch; adaptive = true })
       = "pipe:2:adaptive"
    && Runtime.to_string
         (Runtime.Pipelined { domains = 2; batch = 4; adaptive = true })
       = "pipe:2:4:adaptive");
  check "canonical strings re-parse to themselves" true
    (List.for_all
       (fun s ->
         match Runtime.parse s with
         | Ok b -> Runtime.to_string b = s
         | Error _ -> false)
       [ "seq"; "par:4"; "pipe:4"; "pipe:4:32"; "pipe:2:adaptive";
         "pipe:2:4:adaptive" ]);
  (match Runtime.parallel ~domains:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "parallel ~domains:0 accepted");
  match Runtime.pipelined ~domains:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "pipelined ~domains:0 accepted"

let () =
  Alcotest.run "runtime"
    [
      ( "cross-backend determinism",
        [
          Alcotest.test_case "paper config (t=5 d=10 g=2)" `Quick
            test_paper_config;
          Alcotest.test_case "small distance" `Quick test_small_distance;
          Alcotest.test_case "big groups" `Quick test_big_groups;
          Alcotest.test_case "group at the window bound" `Quick
            test_group_at_window_bound;
          Alcotest.test_case "premeld off" `Quick test_premeld_off;
        ] );
      ( "pipelined backend",
        [
          Alcotest.test_case "bursty wire batch, bounded queues" `Quick
            test_pipelined_burst;
          Alcotest.test_case "batch {1,4,32} x adaptive on/off sweep" `Quick
            test_batched_handoff_sweep;
          Alcotest.test_case "stage-pool handoff round allocates nothing"
            `Quick test_stage_pool_handoff_allocates_nothing;
          Alcotest.test_case "tracing stays observational" `Quick
            test_pipelined_trace_inert;
        ] );
      ( "domain pool",
        [
          Alcotest.test_case "runs every task once" `Quick
            test_pool_runs_every_task;
          Alcotest.test_case "propagates exceptions" `Quick
            test_pool_propagates_exception;
          Alcotest.test_case "single domain, shutdown idempotent" `Quick
            test_pool_single_domain_and_shutdown;
        ] );
      ( "clock and descriptors",
        [
          Alcotest.test_case "monotonic clock" `Quick test_clock_monotonic;
          Alcotest.test_case "runtime parse/print" `Quick test_runtime_parse;
        ] );
    ]
