(* Shared helpers for the test suites. *)
open Hyder_tree
module Intention = Hyder_codec.Intention
module Local = Hyder_core.Local
module Executor = Hyder_core.Executor
module Pipeline = Hyder_core.Pipeline

let payload k = Payload.value ("v" ^ string_of_int k)

(* Genesis with keys [0; gap; 2*gap; ...] — gaps leave room for inserts. *)
let genesis ?(gap = 1) n =
  Tree.of_sorted_array (Array.init n (fun i -> (i * gap, payload (i * gap))))

let value_exn = function
  | Some (Payload.Value s) -> s
  | Some Payload.Tombstone -> failwith "unexpected tombstone"
  | None -> failwith "expected a value"

let check_tree_valid name t =
  match Tree.validate t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: invalid tree: %s" name e

(* Structural key shape, ignoring versions: canonical-form comparisons. *)
let rec shape t =
  if Node.is_empty t then "."
  else
    Printf.sprintf "(%d %s %s)" t.Node.key (shape t.Node.left)
      (shape t.Node.right)

let txn_counter = ref 1000

(* Begin a transaction against the harness's current LCS without committing
   it yet, so tests can create genuinely concurrent transactions. *)
let begin_txn ?(isolation = Intention.Serializable) h =
  let _, pos, tree = Local.lcs h in
  incr txn_counter;
  Executor.begin_txn ~snapshot_pos:pos ~snapshot:tree ~server:0
    ~txn_seq:!txn_counter ~isolation ()

(* Commit: returns the pipeline decisions that became final. *)
let commit h e =
  match Executor.finish e with
  | None -> []
  | Some draft -> Local.submit_draft h draft

(* Commit and expect exactly one decision; return whether it committed. *)
let commit1 h e =
  match commit h e with
  | [ d ] -> d.Pipeline.committed
  | ds -> Alcotest.failf "expected one decision, got %d" (List.length ds)

let committed_decisions ds =
  List.filter (fun d -> d.Pipeline.committed) ds

let alist_testable =
  let pp fmt l =
    Format.fprintf fmt "[%s]"
      (String.concat "; "
         (List.map
            (fun (k, p) ->
              Printf.sprintf "%d=%s" k
                (match p with
                | Payload.Value s -> s
                | Payload.Tombstone -> "<dead>"))
            l))
  in
  Alcotest.testable pp (fun a b ->
      List.equal
        (fun (k1, p1) (k2, p2) -> k1 = k2 && Payload.equal p1 p2)
        a b)
