(* Randomized end-to-end properties, complementing the fixed-seed scenarios
   in test_pipeline.ml:

   - arbitrary transaction streams (mixed isolation, stale snapshots,
     inserts, deletes) decided by meld == decided by the OCC oracle, and the
     final state equals the committed-writes replay;
   - the decisions are identical with premeld on;
   - block streams survive arbitrary single-byte corruption (CRC) and
     truncation without undefined behaviour;
   - tree mutators never break the structural invariants. *)

open Hyder_tree
module Executor = Hyder_core.Executor
module Pipeline = Hyder_core.Pipeline
module Premeld = Hyder_core.Premeld
module Oracle = Hyder_core.Oracle
module Codec = Hyder_codec.Codec
module I = Hyder_codec.Intention

(* ---------------- random stream vs oracle, via qcheck ---------------- *)

type op = R of int | W of int | D of int

type spec = { lag : int; ops : op list; si : bool }

let genesis_n = 150

let spec_gen =
  QCheck2.Gen.(
    let op =
      oneof
        [
          map (fun k -> R k) (int_bound (genesis_n - 1));
          map (fun k -> W k) (int_bound (genesis_n - 1));
          (* deletes target a small key range so delete/write/delete chains
             actually collide *)
          map (fun k -> D k) (int_bound 20);
        ]
    in
    map3
      (fun lag ops si -> { lag; ops; si })
      (int_bound 8)
      (list_size (int_range 1 6) op)
      bool)

let has_write spec =
  List.exists (function W _ | D _ -> true | R _ -> false) spec.ops

let replay ~config specs =
  let genesis = Helpers.genesis genesis_n in
  let p = Pipeline.create ~config ~genesis () in
  let history = ref [ (-1, -1, genesis) ] in
  let next_pos = ref 0 in
  let results = ref [] in
  let oracle = Oracle.create () in
  let model = Hashtbl.create 64 in
  for k = 0 to genesis_n - 1 do
    Hashtbl.replace model k (Payload.value ("v" ^ string_of_int k))
  done;
  let decisions = ref [] in
  List.iter
    (fun spec ->
      if has_write spec then begin
        let hist = !history in
        let lag = min spec.lag (List.length hist - 1) in
        let snapshot_seq, snapshot_pos, snapshot = List.nth hist lag in
        let isolation =
          if spec.si then I.Snapshot_isolation else I.Serializable
        in
        let e =
          Executor.begin_txn ~snapshot_pos ~snapshot ~server:0 ~txn_seq:0
            ~isolation ()
        in
        (* reads of genesis keys that might be deleted: restrict validated
           reads to keys >= 30, which are never deleted, so the oracle
           comparison stays exact (absent-key reads are conservative). *)
        let reads = ref [] and writes = ref [] in
        List.iter
          (function
            | R k ->
                let k = 30 + (k mod (genesis_n - 30)) in
                ignore (Executor.read e k);
                reads := k :: !reads
            | W k ->
                Executor.write e k "w";
                writes := (k, Some "w") :: !writes
            | D k ->
                Executor.delete e k;
                writes := (k, None) :: !writes)
          spec.ops;
        match Executor.finish e with
        | None -> ()
        | Some draft ->
            next_pos := !next_pos + 2;
            let intention = I.assign ~pos:!next_pos draft in
            let expected =
              Oracle.decide oracle ~snapshot_seq ~isolation ~reads:!reads
                ~writes:(List.map fst !writes)
            in
            if expected then
              List.iter
                (fun (k, v) ->
                  match v with
                  | Some s -> Hashtbl.replace model k (Payload.value s)
                  | None -> Hashtbl.remove model k)
                (List.rev !writes);
            results := expected :: !results;
            decisions := Pipeline.submit p intention @ !decisions
      end;
      let seq, pos, tree = Pipeline.lcs p in
      history := (seq, pos, tree) :: !history)
    specs;
  decisions := Pipeline.flush p @ !decisions;
  let got =
    List.map
      (fun (d : Pipeline.decision) -> d.Pipeline.committed)
      (List.sort
         (fun (a : Pipeline.decision) b -> Int.compare a.Pipeline.seq b.Pipeline.seq)
         !decisions)
  in
  let _, _, final = Pipeline.lcs p in
  (List.rev !results, got, final, model)

let prop_stream_matches_oracle config =
  QCheck2.Test.make
    ~name:
      (Printf.sprintf "random stream == oracle (%s)"
         (match config.Pipeline.premeld with
         | Some _ -> "premeld"
         | None -> "plain"))
    ~count:60
    QCheck2.Gen.(list_size (int_range 1 60) spec_gen)
    (fun specs ->
      let expected, got, final, model = replay ~config specs in
      if expected <> got then
        QCheck2.Test.fail_reportf "decision mismatch: %s vs %s"
          (String.concat "" (List.map (fun b -> if b then "C" else "a") expected))
          (String.concat "" (List.map (fun b -> if b then "C" else "a") got));
      (* state equals model *)
      Hashtbl.iter
        (fun k v ->
          match Tree.lookup final k with
          | Some p when Payload.equal p v -> ()
          | other ->
              QCheck2.Test.fail_reportf "key %d: model %s, tree %s" k
                (match v with Payload.Value s -> s | _ -> "?")
                (match other with
                | Some (Payload.Value s) -> s
                | Some Payload.Tombstone -> "<dead>"
                | None -> "<absent>"))
        model;
      Tree.live_size final = Hashtbl.length model
      && Result.is_ok (Tree.validate final))

let prop_premeld_equals_plain =
  QCheck2.Test.make ~name:"premeld decisions == plain decisions" ~count:40
    QCheck2.Gen.(list_size (int_range 5 50) spec_gen)
    (fun specs ->
      let _, plain, final_plain, _ = replay ~config:Pipeline.plain specs in
      let _, pre, final_pre, _ =
        replay
          ~config:
            {
              Pipeline.premeld = Some { Premeld.threads = 3; distance = 2 };
              group_size = 1;
            }
          specs
      in
      plain = pre
      && Tree.to_alist final_plain = Tree.to_alist final_pre)

(* ---------------- codec robustness ---------------- *)

let make_blocks seed =
  let rng = Hyder_util.Rng.create (Int64.of_int seed) in
  let snapshot = Helpers.genesis 200 in
  let e =
    Executor.begin_txn ~snapshot_pos:(-1) ~snapshot ~server:1 ~txn_seq:seed
      ~isolation:I.Serializable ()
  in
  for _ = 1 to 5 do
    ignore (Executor.read e (Hyder_util.Rng.int rng 200));
    Executor.write e (Hyder_util.Rng.int rng 200) "x"
  done;
  let draft = Option.get (Executor.finish e) in
  Codec.Blocks.split ~block_size:256 ~server:1 ~txn_seq:seed
    (Codec.encode draft)

let prop_block_corruption_detected =
  QCheck2.Test.make ~name:"flipping any block byte raises Corrupt" ~count:200
    QCheck2.Gen.(triple (int_bound 1000) (int_bound 10_000) (int_range 1 255))
    (fun (seed, byte_pos, delta) ->
      let blocks = make_blocks seed in
      let blocks = Array.of_list blocks in
      let bi = byte_pos mod Array.length blocks in
      let b = Bytes.of_string blocks.(bi) in
      let off = byte_pos mod Bytes.length b in
      Bytes.set b off
        (Char.chr ((Char.code (Bytes.get b off) + delta) land 0xFF));
      blocks.(bi) <- Bytes.to_string b;
      let r = Codec.Blocks.Reassembler.create () in
      try
        Array.iteri
          (fun pos block ->
            ignore (Codec.Blocks.Reassembler.feed r ~pos block))
          blocks;
        false (* corruption must not slip through *)
      with Codec.Corrupt _ -> true)

let prop_block_truncation_detected =
  QCheck2.Test.make ~name:"truncating a block raises Corrupt" ~count:100
    QCheck2.Gen.(pair (int_bound 1000) (int_bound 10_000))
    (fun (seed, cut) ->
      let blocks = Array.of_list (make_blocks seed) in
      let bi = cut mod Array.length blocks in
      let b = blocks.(bi) in
      let keep = cut mod max 1 (String.length b - 1) in
      blocks.(bi) <- String.sub b 0 keep;
      let r = Codec.Blocks.Reassembler.create () in
      try
        Array.iteri
          (fun pos block ->
            ignore (Codec.Blocks.Reassembler.feed r ~pos block))
          blocks;
        false
      with Codec.Corrupt _ -> true)

(* ---------------- tree invariants under mixed mutation ---------------- *)

let prop_mutators_preserve_invariants =
  QCheck2.Test.make ~name:"mutators preserve tree invariants" ~count:150
    QCheck2.Gen.(
      list_size (int_range 1 80)
        (pair (int_bound 5) (pair (int_bound 300) (int_bound 300))))
    (fun script ->
      let c = ref 0 in
      let fresh () =
        incr c;
        I.draft_vn ~idx:!c
      in
      let owner = I.draft_owner in
      let t =
        List.fold_left
          (fun t (kind, (a, b)) ->
            match kind with
            | 0 -> Tree.upsert t ~owner ~fresh a (Payload.value "v")
            | 1 -> Tree.upsert t ~owner ~fresh a Payload.tombstone
            | 2 -> Tree.touch_read t ~owner ~fresh a
            | 3 ->
                Tree.touch_range t ~owner ~fresh ~lo:(min a b) ~hi:(max a b)
            | 4 -> (
                match Tree.pred t a with
                | Some _ | None -> t)
            | _ -> (
                ignore (Tree.range_items t ~lo:(min a b) ~hi:(max a b));
                t))
          (Helpers.genesis ~gap:3 60)
          script
      in
      Result.is_ok (Tree.validate t))

(* ---------------- packed node metadata vs reference record ----------- *)

(* Reference implementation of the pre-packing per-node metadata: options
   and booleans, compared with [Vn.equal] — the semantics the packed
   [Node.Meta] bitfield must reproduce exactly.  Kept here, in the test,
   so the library carries only the packed form. *)
type ref_meta = {
  r_ssv : Vn.t option;
  r_scv : Vn.t option;
  r_altered : bool;
  r_dep_content : bool;
  r_dep_structure : bool;
  r_owner : int;
}

let ref_has_writes ~left ~right r =
  (* old smart-constructor rule: own write, insert (no ssv), or a
     same-owner child subtree with writes *)
  let child_writes c =
    (not (Node.is_empty c)) && Node.owner c = r.r_owner && Node.has_writes c
  in
  r.r_altered
  || (match r.r_ssv with None -> true | Some _ -> false)
  || child_writes left || child_writes right

(* The meld conflict tests the bitfield replaces: presence and equality of
   the packed source versions against a state node's versions. *)
let ref_scv_conflict r ~state_cv =
  match r.r_scv with None -> true | Some v -> not (Vn.equal v state_cv)

let ref_graftable r ~state_vn =
  match r.r_ssv with None -> false | Some v -> Vn.equal v state_vn

let vn_gen =
  QCheck2.Gen.(
    oneof
      [
        map2 (fun pos idx -> Vn.logged ~pos ~idx)
          (int_range (-1) 200) (int_bound 50);
        map2 (fun thread seq -> Vn.ephemeral ~thread ~seq)
          (int_bound 7) (int_bound 200);
      ])

let ref_meta_gen =
  QCheck2.Gen.(
    map3
      (fun (ssv, scv) (a, (dc, ds)) owner ->
        {
          r_ssv = ssv;
          r_scv = scv;
          r_altered = a;
          r_dep_content = dc;
          r_dep_structure = ds;
          r_owner = owner;
        })
      (pair (option vn_gen) (option vn_gen))
      (pair bool (pair bool bool))
      (oneofl [ -1; 0; 3; 77; I.draft_owner ]))

let node_of_ref ?(left = Node.empty) ?(right = Node.empty) ~vn ~cv r =
  Node.make ~key:1 ~payload:(Payload.value "p") ~left ~right ~vn ~cv
    ~ssv:r.r_ssv ~scv:r.r_scv ~altered:r.r_altered
    ~depends_on_content:r.r_dep_content ~depends_on_structure:r.r_dep_structure
    ~owner:r.r_owner

let prop_packed_meta_matches_reference =
  QCheck2.Test.make ~name:"packed Node.Meta == reference record semantics"
    ~count:2000
    QCheck2.Gen.(
      pair
        (pair ref_meta_gen (pair vn_gen vn_gen))
        (pair (pair vn_gen vn_gen) (pair ref_meta_gen ref_meta_gen)))
    (fun ((r, (vn, cv)), ((state_vn, state_cv), (rl, rr))) ->
      let opt_eq = Option.equal Vn.equal in
      (* leaf round-trip: every accessor recovers the reference fields *)
      let n = node_of_ref ~vn ~cv r in
      let roundtrip =
        opt_eq (Node.ssv n) r.r_ssv
        && opt_eq (Node.scv n) r.r_scv
        && Node.altered n = r.r_altered
        && Node.depends_on_content n = r.r_dep_content
        && Node.depends_on_structure n = r.r_dep_structure
        && Node.owner n = r.r_owner
        && Node.has_writes n
           = ref_has_writes ~left:Node.empty ~right:Node.empty r
      in
      (* the mask tests meld uses decide exactly like the option compares *)
      let decisions =
        Node.ssv_equals n state_vn = ref_graftable r ~state_vn
        && Node.scv_equals n state_cv
           = not (ref_scv_conflict r ~state_cv)
      in
      (* has_writes summary over same/other-owner children *)
      let left = node_of_ref ~vn:state_vn ~cv:state_cv rl in
      let right = node_of_ref ~vn:state_vn ~cv:state_cv rr in
      let parent = node_of_ref ~left ~right ~vn ~cv r in
      let summary =
        Node.has_writes parent = ref_has_writes ~left ~right r
      in
      (* re-packing an existing node (the meld hot path's [pack] on carried
         meta words) changes nothing *)
      let repacked =
        Node.pack ~key:parent.Node.key ~payload:parent.Node.payload ~left
          ~right ~vn ~cv ~meta:parent.Node.meta ~ssv_a:parent.Node.ssv_a
          ~ssv_b:parent.Node.ssv_b ~scv_a:parent.Node.scv_a
          ~scv_b:parent.Node.scv_b
      in
      let stable = repacked.Node.meta = parent.Node.meta in
      roundtrip && decisions && summary && stable)

let () =
  Alcotest.run "properties"
    [
      ( "end-to-end",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_stream_matches_oracle Pipeline.plain;
            prop_stream_matches_oracle
              {
                Pipeline.premeld = Some { Premeld.threads = 2; distance = 3 };
                group_size = 1;
              };
            prop_premeld_equals_plain;
          ] );
      ( "codec robustness",
        List.map QCheck_alcotest.to_alcotest
          [ prop_block_corruption_detected; prop_block_truncation_detected ] );
      ( "tree invariants",
        List.map QCheck_alcotest.to_alcotest
          [ prop_mutators_preserve_invariants ] );
      ( "packed metadata",
        List.map QCheck_alcotest.to_alcotest
          [ prop_packed_meta_matches_reference ] );
    ]
